// Disconnected mobile feed — durable subscriptions for intermittently
// connected clients (the Elvin-style disconnected-operation scenario the
// related-work section contrasts against, done with broker-side durability
// instead of per-client proxies).
//
// A news-alert feed publishes continuously; mobile clients connect for
// short windows (push sync), then vanish. Each reconnect presents the
// client's Checkpoint Token and replays exactly the alerts that matched its
// interests while it was away — logged once at the PHB, located via the
// PFS, never refiltered.
#include <cstdio>

#include "harness/system.hpp"
#include "util/rng.hpp"

using namespace gryphon;

namespace {

const char* kTopics[] = {"sports", "markets", "weather", "politics"};

}  // namespace

int main() {
  harness::SystemConfig config;
  config.num_pubends = 1;
  config.num_shbs = 1;
  harness::System system(config);

  // The alert feed: 50 alerts/s across four topics with a priority level.
  auto& feed = system.add_publisher(PubendId{1}, msec(20), [](std::uint64_t seq) {
    return std::make_shared<matching::EventData>(
        std::map<std::string, matching::Value>{
            {"topic", matching::Value(kTopics[seq % 4])},
            {"priority", matching::Value(static_cast<std::int64_t>(seq % 3))}},
        "alert-body", 120);
  });
  feed.start();

  // Eight phones with different interests. Note high-priority-only filters:
  // the broker filters on their behalf while they sleep.
  std::vector<core::DurableSubscriber*> phones;
  for (std::uint32_t i = 0; i < 8; ++i) {
    core::DurableSubscriber::Options opts;
    opts.id = SubscriberId{i + 1};
    opts.predicate = std::string("topic == '") + kTopics[i % 4] +
                     "' && priority >= " + std::to_string(i % 2 + 1);
    opts.auto_reconnect = false;  // the "device" decides when to sync
    auto& phone = system.add_subscriber(opts, 0, static_cast<int>(i));
    phone.connect();
    phones.push_back(&phone);
  }
  system.run_for(sec(2));

  // A day of patchy connectivity: each phone syncs briefly, then sleeps.
  Rng rng(2026);
  for (int round = 0; round < 6; ++round) {
    for (auto* phone : phones) {
      if (rng.next_bool(0.7)) phone->disconnect();
    }
    system.run_for(sec(5 + static_cast<SimDuration>(rng.next_below(5))));
    for (auto* phone : phones) {
      if (!phone->connected()) phone->connect();
    }
    system.run_for(sec(3));  // sync window: catch up on missed alerts
  }
  system.run_for(sec(10));

  std::printf("phone  selector                                alerts  gaps\n");
  for (auto* phone : phones) {
    std::printf("%-6u %-38s  %-6llu  %llu\n", phone->id().value(), "(durable filter)",
                (unsigned long long)phone->events_received(),
                (unsigned long long)phone->gaps_received());
  }

  system.verify_exactly_once();
  std::printf(
      "\nall %llu published alerts accounted for: every phone received exactly\n"
      "the matching alerts for its connected+disconnected lifetime, exactly once.\n",
      (unsigned long long)system.oracle().published_count());
  return 0;
}
