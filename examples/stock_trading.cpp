// Stock trading — the paper's §1 motivating scenario: "all orders to trade
// must arrive reliably at the application processes that will execute the
// trades, and also be recorded reliably by data backup applications, at
// multiple locations, for disaster recovery."
//
// Deployment here:
//   * one PHB hosting an order stream, fed by three order-entry gateways,
//   * two SHBs ("data centers"),
//   * per-symbol trade executors with content-based selectors (exactly-once
//     matters: a duplicated or lost order is money),
//   * two backup recorders subscribed to everything, at different sites,
//   * an SHB failure in the middle of the trading day — executors and
//     recorders reconnect and recover every order they missed.
#include <cstdio>

#include "harness/system.hpp"

using namespace gryphon;

namespace {

const char* kSymbols[] = {"IBM", "MSFT", "SUNW", "ORCL"};

matching::EventDataPtr make_order(std::uint64_t seq, int gateway) {
  const char* symbol = kSymbols[(seq + static_cast<std::uint64_t>(gateway)) % 4];
  const bool buy = (seq / 4) % 2 == 0;
  return std::make_shared<matching::EventData>(
      std::map<std::string, matching::Value>{
          {"symbol", matching::Value(symbol)},
          {"side", matching::Value(buy ? "BUY" : "SELL")},
          {"quantity", matching::Value(static_cast<std::int64_t>(100 + seq % 900))},
          {"price", matching::Value(50.0 + static_cast<double>(seq % 1000) / 10.0)},
      },
      "order-ticket", 250);
}

}  // namespace

int main() {
  harness::SystemConfig config;
  config.num_pubends = 1;
  config.num_shbs = 2;  // two data centers
  harness::System system(config);

  // Three order-entry gateways, 100 orders/s each.
  for (int g = 0; g < 3; ++g) {
    auto& pub = system.add_publisher(
        PubendId{1}, msec(10), [g](std::uint64_t seq) { return make_order(seq, g); },
        /*start_offset=*/msec(3) * g);
    pub.start();
  }

  // Trade executors: one per symbol, large orders only, on data center 0.
  std::vector<core::DurableSubscriber*> executors;
  for (std::uint32_t i = 0; i < 4; ++i) {
    core::DurableSubscriber::Options opts;
    opts.id = SubscriberId{10 + i};
    opts.predicate = std::string("symbol == '") + kSymbols[i] + "'";
    auto& sub = system.add_subscriber(opts, /*shb_index=*/0, /*machine=*/0);
    sub.connect();
    executors.push_back(&sub);
  }

  // Backup recorders: subscribe to every order, one per data center.
  core::DurableSubscriber::Options backup0;
  backup0.id = SubscriberId{100};
  backup0.predicate = "true";
  auto& recorder0 = system.add_subscriber(backup0, 0, 1);
  recorder0.connect();

  core::DurableSubscriber::Options backup1;
  backup1.id = SubscriberId{101};
  backup1.predicate = "true";
  auto& recorder1 = system.add_subscriber(backup1, 1, 2);
  recorder1.connect();

  std::printf("trading day opens: 3 gateways x 100 orders/s, 4 executors, "
              "2 backup recorders on 2 data centers\n");
  system.run_for(sec(10));
  std::printf("t=10s  executors: %llu/%llu/%llu/%llu orders; backups: %llu and %llu\n",
              (unsigned long long)executors[0]->events_received(),
              (unsigned long long)executors[1]->events_received(),
              (unsigned long long)executors[2]->events_received(),
              (unsigned long long)executors[3]->events_received(),
              (unsigned long long)recorder0.events_received(),
              (unsigned long long)recorder1.events_received());

  // Data center 0 loses its subscriber hosting broker for 8 seconds. Orders
  // keep flowing: the PHB logs each exactly once; data center 1's recorder
  // is unaffected.
  std::printf("t=10s  DATA CENTER 0 BROKER FAILS\n");
  system.crash_shb(0);
  system.run_for(sec(8));
  system.restart_shb(0);
  std::printf("t=18s  broker restarted; executors and recorder reconnect and "
              "recover missed orders\n");
  system.run_for(sec(20));

  std::printf("t=38s  executors: %llu/%llu/%llu/%llu orders; backups: %llu and %llu\n",
              (unsigned long long)executors[0]->events_received(),
              (unsigned long long)executors[1]->events_received(),
              (unsigned long long)executors[2]->events_received(),
              (unsigned long long)executors[3]->events_received(),
              (unsigned long long)recorder0.events_received(),
              (unsigned long long)recorder1.events_received());

  system.verify_exactly_once();
  std::printf("every order delivered exactly once to every matching durable "
              "subscription, across the broker failure.\n");
  std::printf("orders published: %llu; the PHB logged each exactly once.\n",
              (unsigned long long)system.oracle().published_count());
  return 0;
}
