// JMS-style application — the facade the paper mentions ("we have also
// implemented JMS durable subscriptions on top of our model"), §5.2.
//
// A producer publishes quotes; two durable subscribers consume them through
// the JMS object model: one in auto-acknowledge mode (broker-held CT,
// committed per message) and one in client-CT mode (the paper's native,
// faster model). Both survive a stop/start cycle without losing a message.
#include <cstdio>

#include "core/jms/jms.hpp"
#include "harness/system.hpp"

using namespace gryphon;
using namespace gryphon::core::jms;

int main() {
  harness::SystemConfig config;
  config.num_pubends = 1;
  config.shb_db_connections = 4;           // the paper's JDBC connection pool
  config.shb_disk.sync_latency = msec(2);  // battery-backed write cache
  harness::System system(config);

  ConnectionFactory factory(system.simulator(), system.network(),
                            system.phb().endpoint(), system.shb().endpoint());
  auto connection = factory.create_connection();
  auto auto_session = connection->create_session(AcknowledgeMode::kAutoAcknowledge);
  auto ct_session = connection->create_session(AcknowledgeMode::kClientCt);

  auto producer = auto_session->create_producer(Topic{PubendId{1}});

  int audit_count = 0;
  auto audit = auto_session->create_durable_subscriber(
      SubscriberId{1}, "true", [&](const Message& m) {
        ++audit_count;
        (void)m;
      });

  int ibm_count = 0;
  auto trader = ct_session->create_durable_subscriber(
      SubscriberId{2}, "symbol == 'IBM' && price > 100", [&](const Message& m) {
        ++ibm_count;
        if (ibm_count <= 3) {
          std::printf("  [trader] IBM @ %.2f (message id %lld)\n",
                      m.property("price")->as_double(),
                      static_cast<long long>(m.message_id()));
        }
      });

  audit->start();
  trader->start();
  system.run_for(sec(1));

  const char* symbols[] = {"IBM", "MSFT", "SUNW"};
  auto publish_burst = [&](int n, double base_price) {
    for (int i = 0; i < n; ++i) {
      producer->send({{"symbol", matching::Value(symbols[i % 3])},
                      {"price", matching::Value(base_price + i % 20)}},
                     "quote#" + std::to_string(i));
    }
  };

  std::printf("publishing 300 quotes...\n");
  publish_burst(300, 95.0);
  system.run_for(sec(3));
  std::printf("audit (auto-ack): %d messages; trader (client-CT, filtered): %d\n",
              audit_count, ibm_count);

  std::printf("trader goes offline; 300 more quotes flow...\n");
  trader->stop();
  publish_burst(300, 95.0);
  system.run_for(sec(3));

  std::printf("trader returns and replays exactly its missed matches...\n");
  trader->start();
  system.run_for(sec(5));
  std::printf("audit: %d; trader: %d (both complete, exactly once)\n", audit_count,
              ibm_count);
  return 0;
}
