// Quickstart — the smallest useful deployment:
//   one PHB, one SHB, one publisher, two durable subscribers with
//   content-based selectors, one disconnect/reconnect cycle.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "harness/system.hpp"

using namespace gryphon;

int main() {
  // A System owns the simulator, the network and the broker topology:
  // publishers host at the PHB, durable subscribers at the SHB.
  harness::SystemConfig config;
  config.num_pubends = 1;
  config.num_shbs = 1;
  harness::System system(config);

  // A publisher emitting one event every 10ms (100 ev/s). Events carry
  // typed attributes; the payload is opaque.
  auto& publisher = system.add_publisher(
      PubendId{1}, msec(10),
      [](std::uint64_t seq) {
        return std::make_shared<matching::EventData>(
            std::map<std::string, matching::Value>{
                {"category", matching::Value(seq % 2 == 0 ? "even" : "odd")},
                {"seq", matching::Value(static_cast<std::int64_t>(seq))}},
            "payload#" + std::to_string(seq));
      });
  publisher.start();

  // Durable subscriptions are created with a selector (a JMS-style
  // predicate over event attributes) and survive disconnections.
  core::DurableSubscriber::Options even_opts;
  even_opts.id = SubscriberId{1};
  even_opts.predicate = "category == 'even'";
  auto& even_sub = system.add_subscriber(even_opts);
  even_sub.connect();

  core::DurableSubscriber::Options all_opts;
  all_opts.id = SubscriberId{2};
  all_opts.predicate = "true";
  auto& all_sub = system.add_subscriber(all_opts);
  all_sub.connect();

  // Run 5 simulated seconds of steady delivery.
  system.run_for(sec(5));
  std::printf("after 5s:   even-subscriber=%llu events, all-subscriber=%llu events\n",
              static_cast<unsigned long long>(even_sub.events_received()),
              static_cast<unsigned long long>(all_sub.events_received()));

  // Disconnect one subscriber for 3 seconds. Its subscription is durable:
  // the broker keeps filtering on its behalf (into the PFS) while it is
  // away, and replays exactly the missed events on reconnection.
  even_sub.disconnect();
  system.run_for(sec(3));
  std::printf("while away: even-subscriber=%llu (disconnected, missing ~150)\n",
              static_cast<unsigned long long>(even_sub.events_received()));

  even_sub.connect();
  system.run_for(sec(4));
  std::printf("caught up:  even-subscriber=%llu events, gaps=%llu\n",
              static_cast<unsigned long long>(even_sub.events_received()),
              static_cast<unsigned long long>(even_sub.gaps_received()));

  // The delivery oracle has been watching everything: assert the
  // exactly-once contract held for both subscribers.
  system.verify_exactly_once();
  std::printf("exactly-once contract verified. published=%llu delivered=%llu\n",
              static_cast<unsigned long long>(system.oracle().published_count()),
              static_cast<unsigned long long>(system.oracle().delivered_count()));
  return 0;
}
