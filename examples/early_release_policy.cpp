// Early release — administratively bounding persistent storage against
// misbehaving durable subscribers (paper §3).
//
// Without early release, one subscriber that disconnects and never returns
// pins every event since its departure in the PHB's log forever. The
// maxRetain(p) policy discards events after a retention window, and the
// protocol guarantees two things demonstrated here:
//   * connected, caught-up subscribers NEVER see a gap (no tick beyond
//     Td(p) is ever released early),
//   * a reconnecting laggard gets explicit gap notifications for the
//     discarded span — silent loss is impossible.
#include <cstdio>

#include "harness/system.hpp"

using namespace gryphon;

namespace {

std::size_t retained_events(harness::System& system) {
  std::size_t total = 0;
  for (PubendId p : system.pubends()) {
    total += system.phb().pubend(p).retained_events();
  }
  return total;
}

}  // namespace

int main() {
  harness::SystemConfig config;
  config.num_pubends = 1;
  config.num_shbs = 1;
  // Retain at most 5 seconds of stream beyond what every constream has
  // delivered.
  config.policy = std::make_shared<core::MaxRetainPolicy>(5000);
  // A small SHB cache, so recovery really depends on PHB retention.
  config.broker.costs.cache_span_ticks = 2000;
  harness::System system(config);

  auto& pub = system.add_publisher(PubendId{1}, msec(5), [](std::uint64_t seq) {
    return std::make_shared<matching::EventData>(
        std::map<std::string, matching::Value>{
            {"seq", matching::Value(static_cast<std::int64_t>(seq))}},
        "tick", 100);
  });
  pub.start();

  core::DurableSubscriber::Options good_opts;
  good_opts.id = SubscriberId{1};
  good_opts.predicate = "true";
  auto& good = system.add_subscriber(good_opts);
  good.connect();

  core::DurableSubscriber::Options rogue_opts;
  rogue_opts.id = SubscriberId{2};
  rogue_opts.predicate = "true";
  auto& rogue = system.add_subscriber(rogue_opts);
  rogue.connect();

  system.run_for(sec(5));
  std::printf("t=5s   both connected;        PHB retains %zu events\n",
              retained_events(system));

  // The rogue disconnects... and stays away far beyond maxRetain.
  rogue.disconnect();
  system.run_for(sec(30));
  std::printf("t=35s  rogue gone for 30s;    PHB retains %zu events "
              "(bounded by maxRetain=5s, NOT 30s of stream)\n",
              retained_events(system));
  std::printf("       well-behaved subscriber: %llu events, %llu gaps "
              "(the constream never sees L ticks)\n",
              (unsigned long long)good.events_received(),
              (unsigned long long)good.gaps_received());

  // The rogue returns: it gets the retained suffix as events and an
  // explicit gap notification for the released span.
  rogue.connect();
  system.run_for(sec(15));
  std::printf("t=50s  rogue reconnected:     %llu events, %llu gap "
              "notification(s) covering the released span\n",
              (unsigned long long)rogue.events_received(),
              (unsigned long long)rogue.gaps_received());

  system.verify_exactly_once();
  std::printf("\ncontract verified: every matching event was delivered or "
              "explicitly gapped — nothing was lost silently.\n");
  return 0;
}
