#include "net/event_loop.hpp"

#include <poll.h>

#include <algorithm>

#include "util/assert.hpp"

namespace gryphon::net {

EventLoop::EventLoop() : start_(std::chrono::steady_clock::now()) {}

EventLoop::~EventLoop() = default;

SimTime EventLoop::elapsed() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - start_)
      .count();
}

sim::TaskId EventLoop::schedule_at(SimTime t, Task fn) {
  // Wall time moves between the caller's now() read and this call; a
  // nominally-past deadline just means "as soon as possible".
  return timers_.schedule_at(std::max(t, timers_.now()), std::move(fn));
}

void EventLoop::cancel(sim::TaskId id) { timers_.cancel(id); }

void EventLoop::watch_fd(int fd, bool want_read, bool want_write, IoCallback cb) {
  GRYPHON_CHECK(fd >= 0);
  GRYPHON_CHECK(cb != nullptr);
  Watcher& w = watchers_[fd];
  w.want_read = want_read;
  w.want_write = want_write;
  w.cb = std::move(cb);
  w.gen = ++watcher_gen_;
}

void EventLoop::update_fd(int fd, bool want_read, bool want_write) {
  auto it = watchers_.find(fd);
  GRYPHON_CHECK_MSG(it != watchers_.end(), "update of unwatched fd " << fd);
  it->second.want_read = want_read;
  it->second.want_write = want_write;
}

void EventLoop::unwatch_fd(int fd) { watchers_.erase(fd); }

void EventLoop::fire_due_timers() {
  const SimTime t = elapsed();
  now_ = t;
  // Tasks run with timer-store time advancing through their due instants;
  // now_ (what brokers read) is the wall clock at loop-dispatch time.
  timers_.run_until(t);
}

void EventLoop::tick(SimDuration max_wait) {
  fire_due_timers();

  // Poll timeout: up to the next timer, rounded *up* so a due-in-200us
  // timer doesn't busy-spin at timeout 0 forever.
  const SimTime due = timers_.next_due();
  SimDuration wait = max_wait;
  if (due != sim::Simulator::kNoTaskDue) {
    wait = std::clamp<SimDuration>(due - elapsed(), 0, max_wait);
  }
  const int timeout_ms = static_cast<int>((wait + 999) / 1000);

  pollfds_.clear();
  pollfds_.reserve(watchers_.size());
  for (const auto& [fd, w] : watchers_) {
    short events = 0;
    if (w.want_read) events |= POLLIN;
    if (w.want_write) events |= POLLOUT;
    pollfds_.push_back(pollfd{fd, events, 0});
  }

  const int n = ::poll(pollfds_.data(), pollfds_.size(), timeout_ms);
  ++polls_;
  fire_due_timers();
  if (n <= 0) return;  // timeout or EINTR: timers already handled

  // Dispatch on a snapshot; a callback may mutate the watcher table, so
  // each entry is revalidated by (fd, generation) before its callback runs.
  for (const pollfd& p : pollfds_) {
    if (p.revents == 0) continue;
    auto it = watchers_.find(p.fd);
    if (it == watchers_.end()) continue;  // unwatched by an earlier callback
    std::uint32_t events = 0;
    if ((p.revents & (POLLIN | POLLHUP)) != 0) events |= kReadable;
    if ((p.revents & POLLOUT) != 0) events |= kWritable;
    if ((p.revents & (POLLERR | POLLNVAL)) != 0) events |= kError;
    if (events == 0) continue;
    // Copy the callback: the watcher may deregister itself mid-call.
    IoCallback cb = it->second.cb;
    cb(events);
  }
}

void EventLoop::run() {
  stopped_ = false;
  while (!stopped_) tick(msec(500));
}

void EventLoop::run_for(SimDuration duration) {
  stopped_ = false;
  const SimTime deadline = elapsed() + duration;
  while (!stopped_) {
    const SimTime left = deadline - elapsed();
    if (left <= 0) break;
    tick(std::min<SimDuration>(left, msec(500)));
  }
  fire_due_timers();
}

}  // namespace gryphon::net
