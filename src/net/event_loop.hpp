// EventLoop — the real-time implementation of the sim::Scheduler seam.
//
// A single-threaded poll(2) loop: nonblocking fds are watched for
// read/write readiness, and timers are stored in an embedded sim::Simulator
// used purely as a deterministic timer wheel (same slab/heap/generation
// machinery, same TaskId contract — cancel tokens issued by brokers work
// identically in both worlds). now() is microseconds of wall-clock time
// since the loop was created, so every SimDuration constant in the broker
// configs (nack timeouts, commit intervals, disk sync latencies) means the
// same thing under the simulator and under this loop.
//
// Each iteration: advance now_ to the wall clock, fire every timer that is
// due, then poll() with a timeout reaching exactly to the next timer (or a
// bounded idle wait), then dispatch io callbacks. Timer tasks scheduled for
// a past instant run on the next iteration — the loop never sleeps past a
// due timer, but real time may overshoot one; schedule_at clamps to now
// rather than asserting, because wall time, unlike sim time, moves on its
// own.
//
// Not thread-safe: everything — schedule, cancel, watch, dispatch — happens
// on the loop thread, exactly like the simulator it substitutes for.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "sim/scheduler.hpp"
#include "sim/simulator.hpp"

struct pollfd;  // <poll.h>, included only by the .cpp

namespace gryphon::net {

class EventLoop final : public sim::Scheduler {
 public:
  /// Readiness bits handed to io callbacks (mirrors POLLIN/POLLOUT/POLLERR
  /// without leaking <poll.h> into every include site).
  static constexpr std::uint32_t kReadable = 1;
  static constexpr std::uint32_t kWritable = 2;
  static constexpr std::uint32_t kError = 4;

  using IoCallback = std::function<void(std::uint32_t events)>;

  EventLoop();
  ~EventLoop();  // out of line: pollfds_ element type is complete in the .cpp

  // --- sim::Scheduler ---
  sim::TaskId schedule_at(SimTime t, Task fn) override;
  void cancel(sim::TaskId id) override;

  // --- fd watchers ---
  /// Registers `fd` (must be nonblocking) with its readiness callback.
  /// The callback may watch/unwatch any fd, including its own.
  void watch_fd(int fd, bool want_read, bool want_write, IoCallback cb);

  /// Changes the readiness interest of a watched fd.
  void update_fd(int fd, bool want_read, bool want_write);

  /// Deregisters a watched fd (the caller closes it). Safe from inside its
  /// own callback. Unknown fds are a no-op.
  void unwatch_fd(int fd);

  // --- driving ---
  /// Runs until stop(). Idle iterations block in poll() up to the next
  /// timer (or 500ms when no timer is pending).
  void run();

  /// Runs until now() reaches the given elapsed time (bounded drivers,
  /// tests). Returns early on stop().
  void run_for(SimDuration duration);

  /// One poll + dispatch iteration with the given maximum wait.
  void tick(SimDuration max_wait);

  /// Makes run()/run_for() return after the current iteration. Signal-safe
  /// only in the sense of setting a flag; call it from a callback or timer.
  void stop() { stopped_ = true; }

  [[nodiscard]] bool stopped() const { return stopped_; }
  [[nodiscard]] std::size_t watched_fds() const { return watchers_.size(); }
  [[nodiscard]] std::uint64_t polls() const { return polls_; }
  [[nodiscard]] std::uint64_t timers_fired() const { return timers_.executed_tasks(); }

 private:
  /// Wall-clock microseconds since construction.
  [[nodiscard]] SimTime elapsed() const;

  /// Advances now_/timer time to the wall clock and fires due timers.
  void fire_due_timers();

  struct Watcher {
    bool want_read = false;
    bool want_write = false;
    IoCallback cb;
    std::uint64_t gen = 0;  // guards dispatch against unwatch-during-dispatch
  };

  std::chrono::steady_clock::time_point start_;
  sim::Simulator timers_;  // timer store only; never sees an fd
  std::unordered_map<int, Watcher> watchers_;
  std::uint64_t watcher_gen_ = 0;
  std::uint64_t polls_ = 0;
  bool stopped_ = false;
  std::vector<::pollfd> pollfds_;  // reused across iterations
};

}  // namespace gryphon::net
