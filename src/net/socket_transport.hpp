// SocketTransport — the Transport seam implementation that carries a
// process's local Network traffic to and from real TCP sockets.
//
// In a gryphon_broker process the Network holds the local protocol endpoint
// (the broker or client object) plus one *proxy* endpoint per remote peer.
// A proxy's delivery handler writes frame bytes to the peer's socket;
// inbound frames are injected as sends from the proxy to the local
// endpoint. The transport routes accordingly:
//
//  * to_wire: struct messages from the local endpoint are codec-encoded
//    (pooled arenas, wire-size parity asserts — the same byte path as
//    --wire=codec); messages that are already frames (socket injections)
//    pass through untouched.
//  * from_wire: a delivery INTO a proxy endpoint stays bytes (the handler
//    needs the frame, not the struct); a delivery into the local endpoint
//    is codec-decoded, nullptr on corruption — the Network counts the
//    decode reject exactly as in the simulation.
//
// Net effect: broker state machines, CPU pricing, and byte accounting see
// the identical codec wire form in both worlds; only the hop between
// proxy handler and socket is new.
#pragma once

#include <unordered_set>

#include "sim/transport.hpp"
#include "wire/codec_transport.hpp"

namespace gryphon::net {

class SocketTransport final : public sim::Transport {
 public:
  SocketTransport() : SocketTransport(wire::CodecTransport::Options{}) {}
  explicit SocketTransport(const wire::CodecTransport::Options& options)
      : codec_(options) {}

  [[nodiscard]] const char* name() const override { return "socket"; }

  /// Declares `ep` a proxy for a remote peer: deliveries to it keep their
  /// byte form so the handler can write them to the socket.
  void mark_proxy(sim::EndpointId ep) { proxies_.insert(ep); }

  [[nodiscard]] sim::MessagePtr to_wire(sim::EndpointId from, sim::EndpointId to,
                                        sim::MessagePtr msg) override {
    if (!msg->wire_bytes().empty()) return msg;  // socket injection: already a frame
    return codec_.to_wire(from, to, std::move(msg));
  }

  [[nodiscard]] sim::MessagePtr from_wire(sim::EndpointId from, sim::EndpointId to,
                                          sim::MessagePtr msg) override {
    if (proxies_.contains(to)) return msg;  // crossing to a socket: stay bytes
    return codec_.from_wire(from, to, std::move(msg));
  }

  [[nodiscard]] const wire::CodecTransport& codec() const { return codec_; }

 private:
  wire::CodecTransport codec_;
  std::unordered_set<sim::EndpointId> proxies_;
};

}  // namespace gryphon::net
