#include "net/broker_process.hpp"

#include <algorithm>
#include <filesystem>
#include <sstream>

#include "core/messages.hpp"
#include "matching/event.hpp"
#include "util/assert.hpp"
#include "util/logging.hpp"

namespace gryphon::net {

namespace {

// Proxy links only model the in-process hop between the role endpoint and
// the socket; the real network cost is the socket itself.
constexpr sim::LinkConfig kProxyLink{/*latency=*/0,
                                     /*bandwidth_bytes_per_sec=*/1e12};

constexpr SimDuration kRedialDelay = msec(300);
constexpr SimDuration kClientPollInterval = msec(20);

FrameReassembler::Options reassembly_options() {
  FrameReassembler::Options o;
  o.max_kind = static_cast<std::uint8_t>(core::MsgKind::kJmsConsumed);
  return o;
}

bool wal_dir_populated(const std::string& dir) {
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (entry.is_regular_file(ec) &&
        entry.path().filename().string().ends_with(".wal")) {
      return true;
    }
  }
  return false;
}

core::Publisher::EventFactory make_event_factory(int groups,
                                                 std::size_t payload_bytes) {
  return [groups, payload_bytes](std::uint64_t seq) {
    matching::EventData::AttributeList attrs;
    attrs.reserve(2);
    attrs.emplace_back("g", matching::Value(static_cast<std::int64_t>(
                                seq % static_cast<std::uint64_t>(groups))));
    attrs.emplace_back("seq", matching::Value(static_cast<std::int64_t>(seq)));
    return std::make_shared<matching::EventData>(std::move(attrs), std::string{},
                                                 payload_bytes);
  };
}

}  // namespace

BrokerProcess::BrokerProcess(EventLoop& loop, ProcessOptions options)
    : loop_(loop),
      options_(std::move(options)),
      net_(loop),
      transport_(options_.codec) {
  GRYPHON_CHECK_MSG(is_broker() || is_client(),
                    "unknown role '" << options_.role << "'");
  net_.set_transport(&transport_);

  if (is_broker()) {
    setup_listener();
    adopted_ = !options_.storage.file_dir.empty() &&
               wal_dir_populated(options_.storage.file_dir);
    node_ = std::make_unique<core::NodeResources>(
        loop_, net_, options_.name, options_.broker, options_.disk,
        options_.role == "shb" ? options_.shb_db_connections : 1,
        options_.storage);
    if (adopted_) {
      // A fresh process over a previous incarnation's WAL files: replay
      // what the FileBackend found on disk. (crash_and_recover would
      // truncate to *this* process's watermarks — zero — and wipe it.)
      node_->log_volume.adopt();
      node_->database.adopt();
    }
    std::vector<PubendId> pubends;
    pubends.reserve(static_cast<std::size_t>(options_.num_pubends));
    for (int i = 1; i <= options_.num_pubends; ++i) {
      pubends.emplace_back(static_cast<std::uint32_t>(i));
    }
    if (options_.role == "phb") {
      phb_ = std::make_unique<core::PublisherHostingBroker>(*node_, options_.broker,
                                                            pubends);
    } else if (options_.role == "imb") {
      imb_ = std::make_unique<core::IntermediateBroker>(*node_, options_.broker,
                                                        pubends);
    } else {
      shb_ = std::make_unique<core::SubscriberHostingBroker>(*node_, options_.broker,
                                                             pubends);
    }
  }

  if (options_.role != "phb") {
    GRYPHON_CHECK_MSG(options_.parent_port != 0,
                      options_.role << " requires a parent address");
    // An intermediate holds its hello back until its own children are in:
    // the parent starts streaming the moment it sees a broker child's hello,
    // and stream data must never reach a broker that cannot start yet (its
    // children gate is still open). Dialing late makes READY -> start
    // atomic on this side. Roles without a children gate dial immediately.
    if (options_.role != "imb" || options_.expected_children == 0) dial_parent();
  }

  if (options_.role == "pub") {
    core::Publisher::Options po;
    po.id = PublisherId(options_.client_id);
    po.pubend = PubendId((options_.client_id - 1) %
                             static_cast<std::uint32_t>(options_.num_pubends) +
                         1);
    po.interval = core::Publisher::Options::kManualOnly;
    event_factory_ = make_event_factory(options_.groups, options_.payload_bytes);
    publisher_ = std::make_unique<core::Publisher>(loop_, net_, po, parent_proxy_,
                                                   event_factory_);
  } else if (options_.role == "sub") {
    core::DurableSubscriber::Options so;
    so.id = SubscriberId(options_.client_id);
    so.predicate = options_.predicate;
    subscriber_ = std::make_unique<core::DurableSubscriber>(loop_, net_, so,
                                                            parent_proxy_);
  }

  // Client endpoints come to exist only now; link them to the parent proxy
  // their dial_parent() call created above (brokers self-link in dial).
  if (is_client() && parent_proxy_set_) {
    net_.connect(local_endpoint(), parent_proxy_, kProxyLink);
  }

  maybe_start();  // a PHB expecting zero children starts immediately
}

BrokerProcess::~BrokerProcess() = default;

bool BrokerProcess::is_broker() const {
  return options_.role == "phb" || options_.role == "imb" || options_.role == "shb";
}

bool BrokerProcess::is_client() const {
  return options_.role == "pub" || options_.role == "sub";
}

sim::EndpointId BrokerProcess::local_endpoint() const {
  if (node_ != nullptr) return node_->endpoint;
  if (publisher_ != nullptr) return publisher_->endpoint();
  GRYPHON_CHECK(subscriber_ != nullptr);
  return subscriber_->endpoint();
}

std::uint16_t BrokerProcess::port() const {
  return listener_ != nullptr ? listener_->port() : 0;
}

std::uint64_t BrokerProcess::reassembly_rejects() const {
  std::uint64_t total = rejects_closed_;
  for (const auto& [name, peer] : peers_) {
    if (peer.conn != nullptr) total += peer.conn->reassembly_rejects();
  }
  for (const auto& conn : pending_) total += conn->reassembly_rejects();
  return total;
}

void BrokerProcess::setup_listener() {
  std::string err;
  const int fd = tcp_listen(options_.listen_port, &err);
  GRYPHON_CHECK_MSG(fd >= 0, options_.name << " listen failed: " << err);
  listener_ = std::make_unique<TcpListener>(loop_, fd,
                                            [this](int peer) { adopt_socket(peer); });
  GRYPHON_LOG(kInfo, options_.name, " listening on port " << listener_->port());
}

void BrokerProcess::adopt_socket(int fd) {
  auto conn = std::make_unique<Connection>(loop_, fd, options_.name + ".accept",
                                           /*connecting=*/false, reassembly_options());
  Connection* raw = conn.get();
  raw->set_on_line([this, raw](const std::string& line) {
    auto it = std::find_if(pending_.begin(), pending_.end(),
                           [raw](const auto& c) { return c.get() == raw; });
    GRYPHON_CHECK(it != pending_.end());
    std::unique_ptr<Connection> owned = std::move(*it);
    pending_.erase(it);
    on_hello(std::move(owned), line);
  });
  raw->set_on_close([this, raw](const std::string&) {
    // Died before naming itself: forget it.
    auto it = std::find_if(pending_.begin(), pending_.end(),
                           [raw](const auto& c) { return c.get() == raw; });
    if (it != pending_.end()) {
      rejects_closed_ += (*it)->reassembly_rejects();
      pending_.erase(it);
    }
  });
  conn->start();
  pending_.push_back(std::move(conn));
}

void BrokerProcess::on_hello(std::unique_ptr<Connection> conn,
                             const std::string& line) {
  std::istringstream in(line);
  std::string verb, name, role;
  in >> verb >> name >> role;
  const bool broker_child = role == "imb" || role == "shb";
  const bool client = role == "pub" || role == "sub";
  if (verb != "GRYHELLO" || name.empty() || !(broker_child || client)) {
    GRYPHON_LOG(kWarn, options_.name, " rejecting bad hello: '" << line << "'");
    rejects_closed_ += conn->reassembly_rejects();
    conn->close();
    return;
  }
  const bool known = peers_.contains(name);
  Peer& peer = attach_peer(name, role, std::move(conn));
  if (broker_child) {
    if (!started_) {
      if (!known) {
        ++children_seen_;
        // Children complete: an intermediate may now announce itself upward
        // (see the constructor for why the dial waits on the gate).
        if (!parent_dial_started_ && options_.role == "imb" &&
            children_seen_ >= options_.expected_children) {
          dial_parent();
        }
        maybe_start();  // start_role() sends READY to everyone when the gate opens
      }
      return;
    }
    // A child arriving after boot: a restarted peer resumes on its existing
    // proxy; a genuinely new one is wired into the running broker.
    if (!known) {
      if (phb_ != nullptr) phb_->add_child(peer.proxy);
      if (imb_ != nullptr) imb_->add_child(peer.proxy);
    }
    send_ready(peer);
    return;
  }
  if (started_) send_ready(peer);  // clients wait for boot otherwise
}

BrokerProcess::Peer& BrokerProcess::attach_peer(const std::string& name,
                                                const std::string& role,
                                                std::unique_ptr<Connection> conn) {
  Peer& peer = peers_[name];
  peer.role = role;
  if (!peer.proxy_set) {
    peer.proxy_set = true;
    peer.proxy = net_.add_endpoint(
        "proxy." + name, [this, name](sim::EndpointId, sim::MessagePtr msg) {
          auto it = peers_.find(name);
          if (it == peers_.end() || it->second.conn == nullptr ||
              !it->second.conn->is_open()) {
            return;  // peer is away: the wire drops it, protocols repair
          }
          it->second.conn->send_bytes(msg->wire_bytes());
        });
    transport_.mark_proxy(peer.proxy);
    net_.connect(local_endpoint(), peer.proxy, kProxyLink);
  } else {
    net_.set_down(peer.proxy, false);  // reconnect revives the proxy
  }
  peer.conn = std::move(conn);
  peer.ready_sent = false;
  wire_frame_sink(name, *peer.conn);
  peer.conn->set_on_close(
      [this, name](const std::string& reason) { on_peer_closed(name, reason); });
  return peer;
}

void BrokerProcess::wire_frame_sink(const std::string& name, Connection& conn) {
  conn.set_on_frame([this, name](std::shared_ptr<const sim::FrameMessage> frame) {
    auto it = peers_.find(name);
    if (it == peers_.end()) return;
    net_.send(it->second.proxy, local_endpoint(), std::move(frame));
  });
}

void BrokerProcess::on_peer_closed(const std::string& name,
                                   const std::string& reason) {
  auto it = peers_.find(name);
  if (it == peers_.end()) return;
  GRYPHON_LOG(kInfo, options_.name, " lost peer " << name << ": " << reason);
  net_.set_down(it->second.proxy, true);
  if (it->second.conn != nullptr) {
    rejects_closed_ += it->second.conn->reassembly_rejects();
    it->second.conn.reset();
  }
}

void BrokerProcess::dial_parent() {
  parent_dial_started_ = true;
  std::string err;
  const int fd = tcp_connect_start(options_.parent_host, options_.parent_port, &err);
  if (fd < 0) {
    GRYPHON_LOG(kWarn, options_.name, " dial failed (" << err << "); retrying");
    loop_.schedule_after(kRedialDelay, [this] { dial_parent(); });
    return;
  }
  if (!parent_proxy_set_) {
    parent_proxy_set_ = true;
    parent_proxy_ = net_.add_endpoint(
        "proxy.parent", [this](sim::EndpointId, sim::MessagePtr msg) {
          auto it = peers_.find("__parent");
          if (it == peers_.end() || it->second.conn == nullptr ||
              !it->second.conn->is_open()) {
            return;
          }
          it->second.conn->send_bytes(msg->wire_bytes());
        });
    transport_.mark_proxy(parent_proxy_);
    // Brokers already own their role endpoint, so the role<->proxy link can
    // be made here (an intermediate dials only once its children gate is
    // satisfied, well after construction). Clients are built after the
    // first dial; the constructor links them once the endpoint exists.
    if (node_ != nullptr) {
      net_.connect(local_endpoint(), parent_proxy_, kProxyLink);
    }
  }
  Peer& peer = peers_["__parent"];
  peer.role = "parent";
  peer.proxy = parent_proxy_;
  peer.proxy_set = true;
  peer.conn = std::make_unique<Connection>(loop_, fd, options_.name + "->parent",
                                           /*connecting=*/true, reassembly_options());
  peer.conn->set_on_line([this](const std::string& line) {
    if (line == "GRYREADY") {
      on_parent_ready();
      return;
    }
    GRYPHON_LOG(kWarn, options_.name, " unexpected preamble '" << line << "'");
    peers_["__parent"].conn->fail("bad preamble");
  });
  wire_frame_sink("__parent", *peer.conn);
  peer.conn->set_on_close([this](const std::string& reason) {
    GRYPHON_LOG(kInfo, options_.name, " parent link down: " << reason);
    net_.set_down(parent_proxy_, true);
    auto it = peers_.find("__parent");
    if (it != peers_.end() && it->second.conn != nullptr) {
      rejects_closed_ += it->second.conn->reassembly_rejects();
      it->second.conn.reset();
    }
    if (subscriber_ != nullptr && started_) subscriber_->notify_connection_reset();
    loop_.schedule_after(kRedialDelay, [this] { dial_parent(); });
  });
  peer.conn->start();
  peer.conn->send_line("GRYHELLO " + options_.name + " " + options_.role);
}

void BrokerProcess::on_parent_ready() {
  net_.set_down(parent_proxy_, false);
  parent_ready_ = true;
  maybe_start();
}

void BrokerProcess::maybe_start() {
  if (started_) return;
  if (options_.role == "phb") {
    if (children_seen_ < options_.expected_children) return;
    start_role();
  } else if (options_.role == "imb") {
    if (!parent_ready_ || children_seen_ < options_.expected_children) return;
    start_role();
  } else if (options_.role == "shb") {
    if (!parent_ready_) return;
    start_role();
  } else {
    if (!parent_ready_) return;
    start_client();
  }
}

void BrokerProcess::start_role() {
  for (auto& [name, peer] : peers_) {
    if (peer.role == "imb" || peer.role == "shb") {
      if (phb_ != nullptr) phb_->add_child(peer.proxy);
      if (imb_ != nullptr) imb_->add_child(peer.proxy);
    }
  }
  if (phb_ != nullptr) {
    if (adopted_) phb_->recover();
    phb_->start();
  } else if (imb_ != nullptr) {
    imb_->set_parent(parent_proxy_);
    if (adopted_) {
      imb_->recover();
      imb_->start(/*fresh=*/false);
    } else {
      imb_->start(/*fresh=*/true);
    }
  } else if (shb_ != nullptr) {
    shb_->set_parent(parent_proxy_);
    if (adopted_) {
      shb_->recover();  // resumes timers and re-nacks the missed span itself
    } else {
      shb_->start();
    }
  }
  started_ = true;
  GRYPHON_LOG(kInfo, options_.name, (adopted_ ? " recovered" : " started"));
  for (auto& [name, peer] : peers_) {
    if (peer.role != "parent") send_ready(peer);
  }
}

void BrokerProcess::start_client() {
  started_ = true;
  if (publisher_ != nullptr) pump_publisher();
  if (subscriber_ != nullptr) subscriber_->connect();
  check_client_done();
}

void BrokerProcess::pump_publisher() {
  // Manual-mode driving publishes exactly publish_count events (the timed
  // loop in Publisher has no stop-at-count and would overshoot, breaking
  // the demo's published == received accounting). Retries of unacked seqs
  // stay Publisher-internal either way.
  for (int i = 0; i < options_.publish_burst; ++i) {
    if (options_.publish_count != 0 &&
        publisher_->published() >= options_.publish_count) {
      return;
    }
    publisher_->publish(event_factory_(publisher_->published() + 1));
  }
  loop_.schedule_after(options_.publish_interval, [this] { pump_publisher(); });
}

void BrokerProcess::check_client_done() {
  bool finished = false;
  if (publisher_ != nullptr && options_.publish_count != 0) {
    finished = publisher_->published() >= options_.publish_count &&
               publisher_->acked() >= options_.publish_count;
  } else if (subscriber_ != nullptr && options_.expect_events != 0) {
    finished = subscriber_->events_received() >= options_.expect_events;
  }
  if (finished) {
    done_ = true;
    loop_.stop();
    return;
  }
  loop_.schedule_after(kClientPollInterval, [this] { check_client_done(); });
}

void BrokerProcess::send_ready(Peer& peer) {
  if (peer.ready_sent || peer.conn == nullptr || !peer.conn->is_open()) return;
  peer.conn->send_line("GRYREADY");
  peer.ready_sent = true;
}

std::string BrokerProcess::result_json() const {
  std::ostringstream out;
  out << "{\"name\":\"" << options_.name << "\",\"role\":\"" << options_.role
      << "\",\"started\":" << (started_ ? "true" : "false")
      << ",\"adopted\":" << (adopted_ ? "true" : "false")
      << ",\"done\":" << (done_ ? "true" : "false")
      << ",\"published\":" << (publisher_ != nullptr ? publisher_->published() : 0)
      << ",\"acked\":" << (publisher_ != nullptr ? publisher_->acked() : 0)
      << ",\"received\":"
      << (subscriber_ != nullptr ? subscriber_->events_received() : 0)
      << ",\"gaps\":" << (subscriber_ != nullptr ? subscriber_->gaps_received() : 0)
      << ",\"decode_rejects\":" << net_.decode_rejects()
      << ",\"reassembly_rejects\":" << reassembly_rejects() << "}";
  return out.str();
}

}  // namespace gryphon::net
