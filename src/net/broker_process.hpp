// BrokerProcess — one gryphon process hosting a single role over TCP.
//
// This is the composition root of the stand-alone runtime: it owns the
// per-process sim::Network (driven by the EventLoop scheduler instead of
// the Simulator), installs a SocketTransport, and hosts exactly one role —
// a PHB / intermediate / SHB broker over FileBackend WALs, or a publisher /
// durable-subscriber client driver.
//
// Topology model. Every remote peer is represented locally by a *proxy*
// endpoint on this process's Network:
//
//     [role endpoint] <--zero-latency link--> [proxy ep] <--> TCP socket
//
// An outbound message is codec-encoded by the SocketTransport on its way
// to the proxy, whose delivery handler writes the frame bytes to the
// peer's Connection. Inbound frames are injected as sends from the proxy
// to the role endpoint and codec-decoded on delivery (corruption counts a
// decode reject at the Network, exactly as in the simulation). The broker
// and client state machines are byte-for-byte the code the simulator runs;
// no EndpointId ever crosses the wire, so per-process endpoint numbering
// is free to differ on every host.
//
// Handshake. The dialer opens with one text line `GRYHELLO <name> <role>`;
// the acceptor answers `GRYREADY` only once its own role has started, and
// queues READY ahead of any frames on that connection. Boot therefore
// settles root-first: the PHB starts once all expected broker children
// have said hello; an intermediate needs its parent's READY plus its own
// children; an SHB needs only its parent; clients drive traffic only after
// their hosting broker's READY. Restarted peers re-hello under the same
// name and are re-attached to their existing proxy endpoint.
//
// Restart. When the WAL directory already holds segments from a previous
// incarnation, the process adopts them (LogVolume/Database::adopt — a
// replay of what the FileBackend found on disk, *not* a truncation to this
// process's watermarks) and boots the broker through its recover() path.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "core/intermediate.hpp"
#include "core/node_resources.hpp"
#include "core/phb.hpp"
#include "core/publisher_client.hpp"
#include "core/shb.hpp"
#include "core/subscriber_client.hpp"
#include "net/event_loop.hpp"
#include "net/socket_transport.hpp"
#include "net/tcp.hpp"
#include "sim/network.hpp"
#include "storage/sim_disk.hpp"
#include "storage/storage_backend.hpp"

namespace gryphon::net {

struct ProcessOptions {
  std::string name;  // unique across the topology; keys proxy reuse on re-hello
  std::string role;  // "phb" | "imb" | "shb" | "pub" | "sub"

  // Brokers listen; everyone except the PHB dials a parent.
  std::uint16_t listen_port = 0;  // 0 = ephemeral (read back via port())
  std::string parent_host = "127.0.0.1";
  std::uint16_t parent_port = 0;
  int expected_children = 0;  // broker children to await before starting

  int num_pubends = 4;
  core::BrokerConfig broker{};
  storage::DiskConfig disk{};
  storage::StorageOptions storage{};  // file_dir set => FileBackend WALs
  int shb_db_connections = 1;
  wire::CodecTransport::Options codec{};

  // Client-role knobs.
  std::uint32_t client_id = 1;
  std::string predicate = "g >= 0";       // sub: selector (default matches all)
  std::uint64_t publish_count = 0;        // pub: stop after this many (0 = forever)
  SimDuration publish_interval = msec(2); // pub: inter-publish gap
  int publish_burst = 1;                  // pub: events per pump tick (throughput)
  std::size_t payload_bytes = 64;
  int groups = 4;                         // event factory: g = seq % groups
  std::uint64_t expect_events = 0;        // sub: done at this count (0 = run until stopped)
};

class BrokerProcess {
 public:
  BrokerProcess(EventLoop& loop, ProcessOptions options);
  ~BrokerProcess();
  BrokerProcess(const BrokerProcess&) = delete;
  BrokerProcess& operator=(const BrokerProcess&) = delete;

  /// The actual listening port (resolves listen_port 0). 0 for clients.
  [[nodiscard]] std::uint16_t port() const;

  /// The role has booted (brokers: start()/recover() ran; clients: the
  /// hosting broker sent READY and traffic is flowing).
  [[nodiscard]] bool started() const { return started_; }

  /// Client roles: the configured workload completed (publisher fully
  /// acked / subscriber reached expect_events). Always false for brokers.
  [[nodiscard]] bool done() const { return done_; }

  /// This process booted over pre-existing WAL segments.
  [[nodiscard]] bool adopted() const { return adopted_; }

  /// One-line JSON summary of the process's counters (result files).
  [[nodiscard]] std::string result_json() const;

  // Role accessors (null unless hosting that role).
  [[nodiscard]] core::Publisher* publisher() { return publisher_.get(); }
  [[nodiscard]] core::DurableSubscriber* subscriber() { return subscriber_.get(); }
  [[nodiscard]] core::SubscriberHostingBroker* shb() { return shb_.get(); }
  [[nodiscard]] core::PublisherHostingBroker* phb() { return phb_.get(); }
  [[nodiscard]] core::IntermediateBroker* imb() { return imb_.get(); }
  [[nodiscard]] sim::Network& network() { return net_; }
  [[nodiscard]] core::NodeResources* node() { return node_.get(); }

  /// Frame-reassembly rejects across all peer connections, living and dead.
  [[nodiscard]] std::uint64_t reassembly_rejects() const;

 private:
  struct Peer {
    std::string role;
    sim::EndpointId proxy = 0;
    bool proxy_set = false;  // id 0 is valid; see parent_proxy_set_
    std::unique_ptr<Connection> conn;
    bool ready_sent = false;  // acceptor side: READY already queued on conn
  };

  [[nodiscard]] bool is_broker() const;
  [[nodiscard]] bool is_client() const;
  [[nodiscard]] sim::EndpointId local_endpoint() const;

  void setup_listener();
  void dial_parent();
  void adopt_socket(int fd);
  void on_hello(std::unique_ptr<Connection> conn, const std::string& line);
  /// Attaches a live connection to `name`'s peer slot, creating the proxy
  /// endpoint + link on first sight and reviving it on reconnect.
  Peer& attach_peer(const std::string& name, const std::string& role,
                    std::unique_ptr<Connection> conn);
  void wire_frame_sink(const std::string& name, Connection& conn);
  void on_peer_closed(const std::string& name, const std::string& reason);
  void on_parent_ready();
  void maybe_start();
  void start_role();
  void start_client();
  void pump_publisher();
  void send_ready(Peer& peer);
  void check_client_done();

  EventLoop& loop_;
  ProcessOptions options_;
  sim::Network net_;
  SocketTransport transport_;

  std::unique_ptr<TcpListener> listener_;
  int listen_fd_ = -1;
  // Accepted connections that have not said hello yet (owned here until the
  // preamble names them).
  std::vector<std::unique_ptr<Connection>> pending_;
  std::map<std::string, Peer> peers_;
  std::uint64_t rejects_closed_ = 0;  // reassembly rejects of dead connections

  // Parent link (dialer side). EndpointId 0 is a valid id (the first
  // endpoint a client process creates IS the parent proxy), so creation is
  // tracked by flag, not by sentinel value.
  sim::EndpointId parent_proxy_ = 0;
  bool parent_proxy_set_ = false;
  bool parent_dial_started_ = false;  // first dial issued (redials reuse it)
  bool parent_ready_ = false;
  int children_seen_ = 0;

  bool adopted_ = false;
  bool started_ = false;
  bool done_ = false;

  // Broker roles.
  std::unique_ptr<core::NodeResources> node_;
  std::unique_ptr<core::PublisherHostingBroker> phb_;
  std::unique_ptr<core::IntermediateBroker> imb_;
  std::unique_ptr<core::SubscriberHostingBroker> shb_;

  // Client roles.
  core::Publisher::EventFactory event_factory_;
  std::unique_ptr<core::Publisher> publisher_;
  std::unique_ptr<core::DurableSubscriber> subscriber_;
};

}  // namespace gryphon::net
