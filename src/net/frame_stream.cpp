#include "net/frame_stream.hpp"

#include <cstring>

#include "wire/frame.hpp"

namespace gryphon::net {

namespace {

std::uint64_t read_u64le(const std::byte* p) {
  std::uint64_t v;
  std::memcpy(&v, p, sizeof v);
  return v;  // little-endian hosts only, same as the codec itself
}

std::uint32_t read_u32le(const std::byte* p) {
  std::uint32_t v;
  std::memcpy(&v, p, sizeof v);
  return v;
}

}  // namespace

void FrameReassembler::feed(std::span<const std::byte> bytes) {
  compact();
  buf_.insert(buf_.end(), bytes.begin(), bytes.end());
}

void FrameReassembler::compact() {
  // Drop the consumed prefix once it dominates the buffer; amortized O(1)
  // per byte, and the buffer's capacity is reused across frames.
  if (head_ >= 4096 && head_ * 2 >= buf_.size()) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(head_));
    head_ = 0;
  }
}

void FrameReassembler::resync() {
  // Scan for the next magic strictly past the current position. A sliding
  // byte-at-a-time window is fine here: resync only runs on corruption,
  // never on the clean-stream fast path.
  const std::uint64_t magic = wire::kFrameMagic;
  std::size_t pos = head_ + 1;
  while (pos + sizeof magic <= buf_.size()) {
    if (read_u64le(buf_.data() + pos) == magic) {
      head_ = pos;
      return;
    }
    ++pos;
  }
  // No magic found: keep the last 7 bytes (a magic may straddle the next
  // feed), consume the rest of the garbage.
  if (buf_.size() > 7 && buf_.size() - 7 > head_) head_ = buf_.size() - 7;
}

std::shared_ptr<const sim::FrameMessage> FrameReassembler::next() {
  while (true) {
    if (buffered() < wire::kFrameHeaderBytes) return nullptr;
    const std::byte* p = buf_.data() + head_;
    if (read_u64le(p) != wire::kFrameMagic) {
      // Mid-stream garbage (e.g. the tail of a truncated frame). One reject
      // per contiguous run, however many bytes it takes to resync.
      if (!in_garbage_run_) {
        ++rejects_;
        in_garbage_run_ = true;
      }
      resync();
      continue;
    }
    const std::uint32_t len = read_u32le(p + 12);
    if (len > options_.max_payload_bytes) {
      // A corrupt length prefix could stall the stream forever waiting for
      // bytes that never come; bound it, count it, rescan.
      ++rejects_;
      in_garbage_run_ = true;
      resync();
      continue;
    }
    const std::size_t total = wire::kFrameHeaderBytes + len;
    if (buffered() < total) {
      // An incomplete frame with a plausible header: await the rest. This is
      // the normal mid-frame TCP boundary, not corruption.
      return nullptr;
    }
    const wire::FrameParse parse =
        wire::parse_frame({p, total}, options_.max_kind);
    if (parse.consumed == 0) {
      // Complete but corrupt (CRC / version / kind): counted, then the
      // stream resyncs at the next magic. The corrupt frame's own length
      // field is not trusted for the skip — it may be the corrupt byte.
      ++rejects_;
      in_garbage_run_ = true;
      resync();
      continue;
    }
    in_garbage_run_ = false;
    std::vector<std::byte> copy(p, p + total);
    head_ += total;
    compact();
    ++frames_;
    return std::make_shared<sim::FrameMessage>(std::move(copy));
  }
}

}  // namespace gryphon::net
