#include "net/tcp.hpp"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include "util/assert.hpp"
#include "util/logging.hpp"

namespace gryphon::net {

namespace {

bool set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

void set_nodelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

bool resolve(const std::string& host, std::uint16_t port, sockaddr_in* out) {
  ::memset(out, 0, sizeof *out);
  out->sin_family = AF_INET;
  out->sin_port = htons(port);
  const char* addr = (host.empty() || host == "localhost") ? "127.0.0.1" : host.c_str();
  return ::inet_pton(AF_INET, addr, &out->sin_addr) == 1;
}

}  // namespace

int tcp_listen(std::uint16_t port, std::string* err) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    if (err != nullptr) *err = std::string("socket: ") + ::strerror(errno);
    return -1;
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr;
  ::memset(&addr, 0, sizeof addr);
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0 ||
      ::listen(fd, 64) != 0 || !set_nonblocking(fd)) {
    if (err != nullptr) *err = std::string("bind/listen: ") + ::strerror(errno);
    ::close(fd);
    return -1;
  }
  return fd;
}

int tcp_connect_start(const std::string& host, std::uint16_t port, std::string* err) {
  sockaddr_in addr;
  if (!resolve(host, port, &addr)) {
    if (err != nullptr) *err = "unresolvable host '" + host + "'";
    return -1;
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0 || !set_nonblocking(fd)) {
    if (err != nullptr) *err = std::string("socket: ") + ::strerror(errno);
    if (fd >= 0) ::close(fd);
    return -1;
  }
  set_nodelay(fd);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0 &&
      errno != EINPROGRESS) {
    if (err != nullptr) *err = std::string("connect: ") + ::strerror(errno);
    ::close(fd);
    return -1;
  }
  return fd;
}

std::uint16_t local_port(int fd) {
  sockaddr_in addr;
  socklen_t len = sizeof addr;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) return 0;
  return ntohs(addr.sin_port);
}

TcpListener::TcpListener(EventLoop& loop, int listen_fd, AcceptHandler on_accept)
    : loop_(loop), fd_(listen_fd), port_(local_port(listen_fd)),
      on_accept_(std::move(on_accept)) {
  GRYPHON_CHECK(fd_ >= 0);
  GRYPHON_CHECK(on_accept_ != nullptr);
  loop_.watch_fd(fd_, /*want_read=*/true, /*want_write=*/false,
                 [this](std::uint32_t) {
                   while (true) {
                     const int peer = ::accept(fd_, nullptr, nullptr);
                     if (peer < 0) return;  // EAGAIN or transient error
                     if (!set_nonblocking(peer)) {
                       ::close(peer);
                       continue;
                     }
                     set_nodelay(peer);
                     on_accept_(peer);
                   }
                 });
}

TcpListener::~TcpListener() {
  loop_.unwatch_fd(fd_);
  ::close(fd_);
}

Connection::Connection(EventLoop& loop, int fd, std::string label, bool connecting,
                       FrameReassembler::Options reassembly)
    : loop_(loop),
      fd_(fd),
      label_(std::move(label)),
      connecting_(connecting),
      reassembler_(reassembly),
      alive_(std::make_shared<const char>('c')) {
  GRYPHON_CHECK(fd_ >= 0);
}

Connection::~Connection() {
  if (fd_ >= 0) {
    loop_.unwatch_fd(fd_);
    ::close(fd_);
  }
}

void Connection::start() {
  GRYPHON_CHECK(on_close_ != nullptr);
  loop_.watch_fd(fd_, /*want_read=*/!connecting_,
                 /*want_write=*/connecting_ || outbox_bytes() > 0,
                 [this](std::uint32_t events) { on_events(events); });
}

void Connection::send_line(const std::string& line) {
  const std::string framed = line + "\n";
  send_bytes(std::as_bytes(std::span<const char>(framed.data(), framed.size())));
}

void Connection::send_bytes(std::span<const std::byte> bytes) {
  if (fd_ < 0) return;  // already dead: the owner will hear via on_close
  // Compact the sent prefix before it grows unbounded.
  if (out_head_ >= 65536 && out_head_ * 2 >= outbox_.size()) {
    outbox_.erase(outbox_.begin(), outbox_.begin() + static_cast<std::ptrdiff_t>(out_head_));
    out_head_ = 0;
  }
  outbox_.insert(outbox_.end(), bytes.begin(), bytes.end());
  if (!connecting_) flush();
  update_interest();
}

void Connection::close() {
  if (fd_ < 0) return;
  loop_.unwatch_fd(fd_);
  ::close(fd_);
  fd_ = -1;
}

void Connection::fail(const std::string& reason) {
  if (fd_ < 0) return;
  loop_.unwatch_fd(fd_);
  ::close(fd_);
  fd_ = -1;
  if (on_close_ != nullptr) {
    // The handler may destroy this Connection; nothing touches members
    // after the call.
    CloseHandler h = on_close_;
    h(reason);
  }
}

void Connection::update_interest() {
  if (fd_ < 0) return;
  loop_.update_fd(fd_, /*want_read=*/!connecting_,
                  /*want_write=*/connecting_ || outbox_bytes() > 0);
}

void Connection::flush() {
  while (outbox_bytes() > 0) {
    const ssize_t n = ::send(fd_, outbox_.data() + out_head_, outbox_bytes(),
                             MSG_NOSIGNAL);
    if (n > 0) {
      out_head_ += static_cast<std::size_t>(n);
      bytes_out_ += static_cast<std::uint64_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
    fail(std::string("send: ") + ::strerror(errno));
    return;
  }
  if (out_head_ > 0 && out_head_ == outbox_.size()) {
    outbox_.clear();
    out_head_ = 0;
  }
}

void Connection::on_events(std::uint32_t events) {
  const std::shared_ptr<const char> guard = alive_;
  if (connecting_) {
    // Nonblocking connect resolution: writability (or an error bit) means
    // the handshake finished; SO_ERROR says how.
    int soerr = 0;
    socklen_t len = sizeof soerr;
    ::getsockopt(fd_, SOL_SOCKET, SO_ERROR, &soerr, &len);
    if (soerr != 0 || (events & EventLoop::kError) != 0) {
      fail(std::string("connect: ") + ::strerror(soerr != 0 ? soerr : ECONNREFUSED));
      return;
    }
    connecting_ = false;
    update_interest();
    if (on_connected_ != nullptr) on_connected_();
    if (guard.use_count() == 1 || fd_ < 0) return;
    flush();
    update_interest();
    return;
  }
  if ((events & EventLoop::kReadable) != 0) {
    handle_readable(guard);
    if (guard.use_count() == 1 || fd_ < 0) return;
  }
  if ((events & EventLoop::kWritable) != 0) {
    flush();
    if (guard.use_count() == 1 || fd_ < 0) return;
    update_interest();
  } else if ((events & EventLoop::kError) != 0) {
    fail("socket error");
  }
}

void Connection::handle_readable(const std::shared_ptr<const char>& guard) {
  std::byte buf[65536];
  while (fd_ >= 0) {
    const ssize_t n = ::recv(fd_, buf, sizeof buf, 0);
    if (n == 0) {
      const bool torn = reassembler_.buffered() > 0;
      fail(torn ? "peer closed mid-frame" : "peer closed");
      return;
    }
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      fail(std::string("recv: ") + ::strerror(errno));
      return;
    }
    bytes_in_ += static_cast<std::uint64_t>(n);
    std::span<const std::byte> chunk(buf, static_cast<std::size_t>(n));
    if (line_mode_) {
      // One preamble line, then frames forever.
      std::size_t i = 0;
      for (; i < chunk.size(); ++i) {
        if (chunk[i] == std::byte{'\n'}) break;
        line_buf_.push_back(static_cast<char>(chunk[i]));
        if (line_buf_.size() > 4096) {
          fail("preamble line too long");
          return;
        }
      }
      if (i == chunk.size()) continue;  // newline not seen yet
      chunk = chunk.subspan(i + 1);
      line_mode_ = false;
      if (on_line_ != nullptr) {
        LineHandler h = on_line_;
        h(line_buf_);
        if (guard.use_count() == 1 || fd_ < 0) return;
      }
    }
    reassembler_.feed(chunk);
    while (auto frame = reassembler_.next()) {
      if (on_frame_ != nullptr) {
        FrameHandler h = on_frame_;
        h(std::move(frame));
        if (guard.use_count() == 1 || fd_ < 0) return;
      }
    }
  }
}

}  // namespace gryphon::net
