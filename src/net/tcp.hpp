// Nonblocking TCP building blocks for the broker runtime.
//
//  * tcp_listen / tcp_connect_start / local_port: thin POSIX wrappers, all
//    sockets nonblocking and TCP_NODELAY (frames are latency-sensitive
//    control traffic; batching is the codec arena's job, not Nagle's).
//  * TcpListener: accept loop on the event loop.
//  * Connection: one peer socket. Outbound bytes are buffered and flushed
//    on writability; inbound bytes pass through a one-line text preamble
//    (the process handshake: HELLO from the dialer, READY from the
//    acceptor) and then a FrameReassembler, so the owner receives whole
//    validated frames regardless of TCP boundaries.
//
// Reentrancy: handlers may close/destroy the connection they were invoked
// from; Connection guards itself with an alive token and returns
// immediately if a handler tore it down.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "net/event_loop.hpp"
#include "net/frame_stream.hpp"

namespace gryphon::net {

/// Creates a nonblocking listening socket on `port` (0 = ephemeral).
/// Returns the fd, or -1 with `*err` set.
int tcp_listen(std::uint16_t port, std::string* err);

/// Starts a nonblocking connect to host:port ("localhost" or dotted quad).
/// Returns the fd (connect may still be in progress), or -1 with `*err`.
int tcp_connect_start(const std::string& host, std::uint16_t port, std::string* err);

/// The locally bound port of a socket (resolves port 0 after listen).
std::uint16_t local_port(int fd);

/// Accept loop: watches a listening fd and hands accepted peer sockets
/// (already nonblocking + TCP_NODELAY) to the callback.
class TcpListener {
 public:
  using AcceptHandler = std::function<void(int fd)>;

  TcpListener(EventLoop& loop, int listen_fd, AcceptHandler on_accept);
  ~TcpListener();
  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  [[nodiscard]] std::uint16_t port() const { return port_; }

 private:
  EventLoop& loop_;
  int fd_;
  std::uint16_t port_;
  AcceptHandler on_accept_;
};

class Connection {
 public:
  /// The single preamble line from the peer (without the newline).
  using LineHandler = std::function<void(const std::string&)>;
  using FrameHandler = std::function<void(std::shared_ptr<const sim::FrameMessage>)>;
  /// Invoked once when the connection dies (peer close, error, failed
  /// connect). The fd is already closed; the owner usually destroys the
  /// Connection from here (safe).
  using CloseHandler = std::function<void(const std::string& reason)>;
  /// Nonblocking connect completion (dialer side), success already checked.
  using ConnectHandler = std::function<void()>;

  /// Adopts a socket. `connecting` = a tcp_connect_start fd whose handshake
  /// may still be in flight.
  Connection(EventLoop& loop, int fd, std::string label, bool connecting,
             FrameReassembler::Options reassembly = {});
  ~Connection();
  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  void set_on_line(LineHandler h) { on_line_ = std::move(h); }
  void set_on_frame(FrameHandler h) { on_frame_ = std::move(h); }
  void set_on_close(CloseHandler h) { on_close_ = std::move(h); }
  void set_on_connected(ConnectHandler h) { on_connected_ = std::move(h); }

  /// Begins watching the socket. Handlers must be set first.
  void start();

  /// Queues one preamble line (newline appended) ahead of any frames.
  void send_line(const std::string& line);

  /// Queues frame bytes for transmission.
  void send_bytes(std::span<const std::byte> bytes);

  /// Closes immediately; on_close is NOT invoked (owner-initiated).
  void close();

  /// Tears the socket down and reports `reason` to on_close (for protocol
  /// violations detected by the owner, e.g. a bad handshake line).
  void fail(const std::string& reason);

  [[nodiscard]] bool is_open() const { return fd_ >= 0; }
  [[nodiscard]] const std::string& label() const { return label_; }
  [[nodiscard]] std::uint64_t bytes_in() const { return bytes_in_; }
  [[nodiscard]] std::uint64_t bytes_out() const { return bytes_out_; }
  [[nodiscard]] std::uint64_t frames_in() const { return reassembler_.frames(); }
  [[nodiscard]] std::uint64_t reassembly_rejects() const {
    return reassembler_.rejects();
  }
  [[nodiscard]] std::size_t outbox_bytes() const { return outbox_.size() - out_head_; }

 private:
  void on_events(std::uint32_t events);
  void handle_readable(const std::shared_ptr<const char>& guard);
  void flush();
  void update_interest();

  EventLoop& loop_;
  int fd_;
  std::string label_;
  bool connecting_;
  bool line_mode_ = true;  // preamble not yet consumed
  std::string line_buf_;
  FrameReassembler reassembler_;
  LineHandler on_line_;
  FrameHandler on_frame_;
  CloseHandler on_close_;
  ConnectHandler on_connected_;
  std::vector<std::byte> outbox_;
  std::size_t out_head_ = 0;
  std::uint64_t bytes_in_ = 0;
  std::uint64_t bytes_out_ = 0;
  std::shared_ptr<const char> alive_;  // dropped by the destructor
};

}  // namespace gryphon::net
