// FrameReassembler — turns an arbitrary-boundary TCP byte stream back into
// whole wire frames.
//
// TCP delivers bytes, not frames: a read may return half a header, three
// frames and a tail, or one byte. The reassembler buffers fed bytes and
// emits one complete frame at a time, validated end-to-end (magic, version,
// length bound, CRC32C over the whole frame) with wire::parse_frame's
// never-throwing consumed==0 contract.
//
// Corruption policy (a hostile/buggy peer, or chaos-injected mangling):
//  * a complete frame whose CRC (or structure) fails is CONSUMED and
//    counted in rejects() — never emitted, never silently skipped;
//  * after a reject — or when the stream position doesn't even hold the
//    frame magic — the reassembler resynchronizes by scanning forward for
//    the next 8-byte magic, so one corrupt frame cannot desync the frames
//    behind it. A contiguous garbage run counts as one reject.
//  * an incomplete frame at the tail is simply awaited; if the connection
//    closes first, buffered() > 0 tells the caller the tail was torn.
//
// Emitted frames are owning copies (FrameMessage over its own buffer): the
// receive buffer is recycled immediately, and the frame can ride through
// the local Network/Transport seam with arbitrary lifetime.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "sim/message.hpp"

namespace gryphon::net {

class FrameReassembler {
 public:
  struct Options {
    /// Largest valid message-kind byte (the frame layer is vocabulary-
    /// agnostic; callers pass their protocol's max kind).
    std::uint8_t max_kind = 0xff;
    /// Length prefixes above this are treated as corruption.
    std::size_t max_payload_bytes = 64u << 20;
  };

  FrameReassembler() : FrameReassembler(Options{}) {}
  explicit FrameReassembler(Options options) : options_(options) {}

  /// Appends received bytes to the stream buffer.
  void feed(std::span<const std::byte> bytes);

  /// Extracts the next complete frame, or nullptr when the buffer holds no
  /// complete frame (more bytes needed). Corrupt frames encountered on the
  /// way are consumed and counted, never returned.
  [[nodiscard]] std::shared_ptr<const sim::FrameMessage> next();

  /// Complete frames emitted so far.
  [[nodiscard]] std::uint64_t frames() const { return frames_; }
  /// Corrupt frames / garbage runs consumed so far.
  [[nodiscard]] std::uint64_t rejects() const { return rejects_; }
  /// Bytes buffered but not yet consumed (a torn tail when the peer closed).
  [[nodiscard]] std::size_t buffered() const { return buf_.size() - head_; }

 private:
  /// Drops consumed bytes once the dead prefix dominates the buffer.
  void compact();

  /// Advances head_ to the next magic occurrence at or after head_ + 1;
  /// keeps the last 7 bytes when none is found (a magic may straddle the
  /// next feed). Counts one reject for the garbage run unless one was
  /// already charged for it.
  void resync();

  Options options_;
  std::vector<std::byte> buf_;
  std::size_t head_ = 0;        // consumed prefix of buf_
  bool in_garbage_run_ = false;  // reject already charged for current run
  std::uint64_t frames_ = 0;
  std::uint64_t rejects_ = 0;
};

}  // namespace gryphon::net
