// Application events: a bag of typed attributes (matched by predicates) plus
// an opaque payload (delivered, never inspected).
#pragma once

#include <algorithm>
#include <cstddef>
#include <map>
#include <memory>
#include <string>

#include "matching/value.hpp"

namespace gryphon::matching {

class EventData {
 public:
  EventData() = default;
  EventData(std::map<std::string, Value> attributes, std::string payload,
            std::size_t padded_payload_size = 0)
      : attributes_(std::move(attributes)),
        payload_(std::move(payload)),
        padded_payload_size_(padded_payload_size) {}

  [[nodiscard]] const std::map<std::string, Value>& attributes() const {
    return attributes_;
  }
  [[nodiscard]] const Value* attribute(const std::string& name) const {
    auto it = attributes_.find(name);
    return it == attributes_.end() ? nullptr : &it->second;
  }

  [[nodiscard]] const std::string& payload() const { return payload_; }

  /// Application payload size. Workload generators set a padded size (the
  /// paper uses 250-byte payloads) without materializing the bytes.
  [[nodiscard]] std::size_t payload_size() const {
    return std::max(payload_.size(), padded_payload_size_);
  }

  /// Serialized event size: attributes + payload (headers are charged by the
  /// enclosing protocol message).
  [[nodiscard]] std::size_t encoded_size() const {
    std::size_t n = payload_size();
    for (const auto& [name, value] : attributes_) {
      n += 4 + name.size() + value.encoded_size();
    }
    return n;
  }

 private:
  std::map<std::string, Value> attributes_;
  std::string payload_;
  std::size_t padded_payload_size_ = 0;
};

using EventDataPtr = std::shared_ptr<const EventData>;

}  // namespace gryphon::matching
