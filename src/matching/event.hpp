// Application events: a bag of typed attributes (matched by predicates) plus
// an opaque payload (delivered, never inspected).
//
// Attributes live in a flat vector sorted by name: events carry a handful of
// attributes, and predicate evaluation probes them once per subscription per
// hop, so lookup is the hottest read in the whole matching path. A sorted
// vector keeps it a short branch-predictable scan with no per-node heap
// cells (the previous std::map cost one allocation per attribute per event
// and a pointer chase per probe).
#pragma once

#include <algorithm>
#include <cstddef>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "matching/value.hpp"

namespace gryphon::matching {

class EventData {
 public:
  using Attribute = std::pair<std::string, Value>;
  using AttributeList = std::vector<Attribute>;

  EventData() = default;
  EventData(AttributeList attributes, std::string payload,
            std::size_t padded_payload_size = 0)
      : attributes_(std::move(attributes)),
        payload_(std::move(payload)),
        padded_payload_size_(padded_payload_size) {
    std::sort(attributes_.begin(), attributes_.end(),
              [](const Attribute& a, const Attribute& b) { return a.first < b.first; });
    encoded_size_ = compute_encoded_size();
  }
  EventData(const std::map<std::string, Value>& attributes, std::string payload,
            std::size_t padded_payload_size = 0)
      : EventData(AttributeList(attributes.begin(), attributes.end()),
                  std::move(payload), padded_payload_size) {}
  EventData(std::initializer_list<Attribute> attributes, std::string payload,
            std::size_t padded_payload_size = 0)
      : EventData(AttributeList(attributes), std::move(payload),
                  padded_payload_size) {}

  /// Attributes sorted by name.
  [[nodiscard]] const AttributeList& attributes() const { return attributes_; }

  [[nodiscard]] const Value* attribute(const std::string& name) const {
    for (const auto& [attr_name, value] : attributes_) {
      if (attr_name == name) return &value;
      if (attr_name > name) return nullptr;  // sorted: passed the slot
    }
    return nullptr;
  }

  [[nodiscard]] const std::string& payload() const { return payload_; }

  /// Application payload size. Workload generators set a padded size (the
  /// paper uses 250-byte payloads) without materializing the bytes.
  [[nodiscard]] std::size_t payload_size() const {
    return std::max(payload_.size(), padded_payload_size_);
  }

  /// Serialized event size: attributes + payload (headers are charged by the
  /// enclosing protocol message). Precomputed: it is re-read on every cache
  /// insert / log append / wire send of the event.
  [[nodiscard]] std::size_t encoded_size() const { return encoded_size_; }

 private:
  [[nodiscard]] std::size_t compute_encoded_size() const {
    std::size_t n = payload_size();
    for (const auto& [name, value] : attributes_) {
      n += 4 + name.size() + value.encoded_size();
    }
    return n;
  }

  AttributeList attributes_;
  std::string payload_;
  std::size_t padded_payload_size_ = 0;
  std::size_t encoded_size_ = 0;
};

using EventDataPtr = std::shared_ptr<const EventData>;

}  // namespace gryphon::matching
