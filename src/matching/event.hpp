// Application events: a bag of typed attributes (matched by predicates) plus
// an opaque payload (delivered, never inspected).
//
// Attributes live in a flat vector sorted by name: events carry a handful of
// attributes, and predicate evaluation probes them once per subscription per
// hop, so lookup is the hottest read in the whole matching path. A sorted
// vector keeps it a short branch-predictable scan with no per-node heap
// cells (the previous std::map cost one allocation per attribute per event
// and a pointer chase per probe).
#pragma once

#include <algorithm>
#include <cstddef>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "matching/value.hpp"

namespace gryphon::matching {

class EventData {
 public:
  using Attribute = std::pair<std::string, Value>;
  using AttributeList = std::vector<Attribute>;

  EventData() = default;
  EventData(AttributeList attributes, std::string payload,
            std::size_t padded_payload_size = 0)
      : attributes_(std::move(attributes)),
        payload_storage_(std::move(payload)),
        padded_payload_size_(padded_payload_size) {
    std::sort(attributes_.begin(), attributes_.end(),
              [](const Attribute& a, const Attribute& b) { return a.first < b.first; });
    encoded_size_ = compute_encoded_size();
  }
  EventData(const std::map<std::string, Value>& attributes, std::string payload,
            std::size_t padded_payload_size = 0)
      : EventData(AttributeList(attributes.begin(), attributes.end()),
                  std::move(payload), padded_payload_size) {}
  EventData(std::initializer_list<Attribute> attributes, std::string payload,
            std::size_t padded_payload_size = 0)
      : EventData(AttributeList(attributes), std::move(payload),
                  padded_payload_size) {}

  /// Zero-copy construction (wire decode path): the payload stays a view
  /// into externally owned bytes — a received frame's arena — kept alive by
  /// `owner`. No payload bytes are copied or allocated; the event remains
  /// valid for as long as this EventData lives, however long it outlives
  /// the frame message it arrived in.
  EventData(AttributeList attributes, std::string_view payload_view,
            std::size_t padded_payload_size, std::shared_ptr<const void> owner)
      : attributes_(std::move(attributes)),
        payload_view_(payload_view),
        payload_owner_(std::move(owner)),
        padded_payload_size_(padded_payload_size) {
    std::sort(attributes_.begin(), attributes_.end(),
              [](const Attribute& a, const Attribute& b) { return a.first < b.first; });
    encoded_size_ = compute_encoded_size();
  }

  /// Copies rebind the view when it points into the source's own storage
  /// (view-mode copies keep sharing the external owner instead).
  EventData(const EventData& other)
      : attributes_(other.attributes_),
        payload_storage_(other.payload_storage_),
        payload_view_(),
        payload_owner_(other.payload_owner_),
        padded_payload_size_(other.padded_payload_size_),
        encoded_size_(other.encoded_size_) {
    if (other.payload_owner_ != nullptr) payload_view_ = other.payload_view_;
  }
  EventData& operator=(const EventData&) = delete;

  /// Attributes sorted by name.
  [[nodiscard]] const AttributeList& attributes() const { return attributes_; }

  [[nodiscard]] const Value* attribute(const std::string& name) const {
    for (const auto& [attr_name, value] : attributes_) {
      if (attr_name == name) return &value;
      if (attr_name > name) return nullptr;  // sorted: passed the slot
    }
    return nullptr;
  }

  /// The payload bytes: a view into this object's own storage (owned mode)
  /// or into the received frame's arena (zero-copy wire decode).
  [[nodiscard]] std::string_view payload() const {
    return payload_owner_ != nullptr ? payload_view_
                                     : std::string_view(payload_storage_);
  }

  /// Application payload size. Workload generators set a padded size (the
  /// paper uses 250-byte payloads) without materializing the bytes.
  [[nodiscard]] std::size_t payload_size() const {
    return std::max(payload().size(), padded_payload_size_);
  }

  /// Serialized event size: attributes + payload (headers are charged by the
  /// enclosing protocol message). Precomputed: it is re-read on every cache
  /// insert / log append / wire send of the event.
  [[nodiscard]] std::size_t encoded_size() const { return encoded_size_; }

 private:
  [[nodiscard]] std::size_t compute_encoded_size() const {
    std::size_t n = payload_size();
    for (const auto& [name, value] : attributes_) {
      n += 4 + name.size() + value.encoded_size();
    }
    return n;
  }

  AttributeList attributes_;
  std::string payload_storage_;       // owned mode
  std::string_view payload_view_;     // view mode (into payload_owner_)
  std::shared_ptr<const void> payload_owner_;  // keeps a frame arena alive
  std::size_t padded_payload_size_ = 0;
  std::size_t encoded_size_ = 0;
};

using EventDataPtr = std::shared_ptr<const EventData>;

}  // namespace gryphon::matching
