// Textual predicate language (JMS-message-selector flavored).
//
// Grammar (case-insensitive keywords; whitespace insignificant):
//   expr       := or
//   or         := and   ( ("||" | "or")  and   )*
//   and        := unary ( ("&&" | "and") unary )*
//   unary      := ("!" | "not") unary | primary
//   primary    := "(" expr ")" | "true" | "exists" "(" ident ")" | comparison
//   comparison := ident op literal
//   op         := "==" | "=" | "!=" | "<>" | "<=" | ">=" | "<" | ">"
//   literal    := integer | float | 'single-quoted string' | true | false
//
// Examples:
//   symbol == 'IBM' && price > 100
//   (side = 'BUY' or side = 'SELL') and quantity >= 1000 and !test
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

#include "matching/predicate.hpp"

namespace gryphon::matching {

/// Thrown on malformed predicate text, with position info in what().
class ParseError : public std::runtime_error {
 public:
  ParseError(const std::string& message, std::size_t position)
      : std::runtime_error(message + " at offset " + std::to_string(position)),
        position_(position) {}

  [[nodiscard]] std::size_t position() const { return position_; }

 private:
  std::size_t position_;
};

/// Parses predicate text. Throws ParseError on malformed input.
[[nodiscard]] PredicatePtr parse_predicate(std::string_view text);

}  // namespace gryphon::matching
