#include "matching/predicate.hpp"

#include <sstream>

#include "util/assert.hpp"

namespace gryphon::matching {

std::string to_string(CompareOp op) {
  switch (op) {
    case CompareOp::kEq: return "==";
    case CompareOp::kNe: return "!=";
    case CompareOp::kLt: return "<";
    case CompareOp::kLe: return "<=";
    case CompareOp::kGt: return ">";
    case CompareOp::kGe: return ">=";
  }
  return "?";
}

bool Predicate::equality_key(EqualityKey&) const { return false; }

namespace {

class MatchAll final : public Predicate {
 public:
  bool matches(const EventData&) const override { return true; }
  std::string to_string() const override { return "true"; }
  bool is_match_all() const override { return true; }
};

class Compare final : public Predicate {
 public:
  Compare(std::string attribute, CompareOp op, Value value)
      : attribute_(std::move(attribute)), op_(op), value_(std::move(value)) {}

  bool matches(const EventData& event) const override {
    const Value* v = event.attribute(attribute_);
    if (v == nullptr) return false;
    switch (op_) {
      case CompareOp::kEq: return *v == value_;
      case CompareOp::kNe: return !(*v == value_);
      case CompareOp::kLt: return v->orderable_with(value_) && v->less_than(value_);
      case CompareOp::kLe:
        return v->orderable_with(value_) && !value_.less_than(*v);
      case CompareOp::kGt: return v->orderable_with(value_) && value_.less_than(*v);
      case CompareOp::kGe:
        return v->orderable_with(value_) && !v->less_than(value_);
    }
    return false;
  }

  std::string to_string() const override {
    std::ostringstream os;
    os << attribute_ << ' ' << matching::to_string(op_) << ' ' << value_;
    return os.str();
  }

  bool equality_key(EqualityKey& out) const override {
    if (op_ != CompareOp::kEq) return false;
    out = {attribute_, value_};
    return true;
  }

  bool compare_view(CompareView& out) const override {
    out = {&attribute_, op_, &value_};
    return true;
  }

 private:
  std::string attribute_;
  CompareOp op_;
  Value value_;
};

class Exists final : public Predicate {
 public:
  explicit Exists(std::string attribute) : attribute_(std::move(attribute)) {}

  bool matches(const EventData& event) const override {
    return event.attribute(attribute_) != nullptr;
  }

  std::string to_string() const override { return "exists(" + attribute_ + ")"; }

  const std::string* exists_attribute() const override { return &attribute_; }

 private:
  std::string attribute_;
};

class And final : public Predicate {
 public:
  explicit And(std::vector<PredicatePtr> terms) : terms_(std::move(terms)) {}

  bool matches(const EventData& event) const override {
    for (const auto& t : terms_) {
      if (!t->matches(event)) return false;
    }
    return true;
  }

  std::string to_string() const override {
    std::string s = "(";
    for (std::size_t i = 0; i < terms_.size(); ++i) {
      if (i) s += " && ";
      s += terms_[i]->to_string();
    }
    return s + ")";
  }

  bool equality_key(EqualityKey& out) const override {
    for (const auto& t : terms_) {
      if (t->equality_key(out)) return true;
    }
    return false;
  }

  const std::vector<PredicatePtr>* and_terms() const override { return &terms_; }

 private:
  std::vector<PredicatePtr> terms_;
};

class Or final : public Predicate {
 public:
  explicit Or(std::vector<PredicatePtr> terms) : terms_(std::move(terms)) {}

  bool matches(const EventData& event) const override {
    for (const auto& t : terms_) {
      if (t->matches(event)) return true;
    }
    return false;
  }

  std::string to_string() const override {
    std::string s = "(";
    for (std::size_t i = 0; i < terms_.size(); ++i) {
      if (i) s += " || ";
      s += terms_[i]->to_string();
    }
    return s + ")";
  }

  const std::vector<PredicatePtr>* or_terms() const override { return &terms_; }

 private:
  std::vector<PredicatePtr> terms_;
};

class Not final : public Predicate {
 public:
  explicit Not(PredicatePtr term) : term_(std::move(term)) {}

  bool matches(const EventData& event) const override {
    return !term_->matches(event);
  }

  std::string to_string() const override { return "!" + term_->to_string(); }

 private:
  PredicatePtr term_;
};

// Does "x <op> v" hold under Compare::matches semantics, with x playing the
// event-attribute role?
bool eval_compare(CompareOp op, const Value& x, const Value& v) {
  switch (op) {
    case CompareOp::kEq: return x == v;
    case CompareOp::kNe: return !(x == v);
    case CompareOp::kLt: return x.orderable_with(v) && x.less_than(v);
    case CompareOp::kLe: return x.orderable_with(v) && !v.less_than(x);
    case CompareOp::kGt: return x.orderable_with(v) && v.less_than(x);
    case CompareOp::kGe: return x.orderable_with(v) && !x.less_than(v);
  }
  return false;
}

bool ordered_op(CompareOp op) {
  return op == CompareOp::kLt || op == CompareOp::kLe || op == CompareOp::kGt ||
         op == CompareOp::kGe;
}

bool lower_bound_op(CompareOp op) {
  return op == CompareOp::kGt || op == CompareOp::kGe;
}

// q ⇒ p for two attribute comparisons. Sound rules only; anything outside
// them is "unknown" (false).
bool compare_covers(const Predicate::CompareView& p, const Predicate::CompareView& q) {
  if (*p.attribute != *q.attribute) return false;
  // Q is an equality: its match set is exactly the values Value-equal to
  // q.value, and Value equality is substitutive under every op (equal
  // numerics share as_double; strings/bools are identical), so testing
  // q.value against P decides coverage.
  if (q.op == CompareOp::kEq) return eval_compare(p.op, *q.value, *p.value);
  if (p.op == CompareOp::kNe) {
    if (q.op == CompareOp::kNe) return *p.value == *q.value;
    // Q is ordered: covered unless p.value itself could satisfy Q.
    return !eval_compare(q.op, *p.value, *q.value);
  }
  if (q.op == CompareOp::kNe || p.op == CompareOp::kEq) return false;
  // Both ordered: interval containment over a shared ordered domain. Bounds
  // in different directions or different domains never contain each other.
  if (!p.value->orderable_with(*q.value)) return false;
  if (lower_bound_op(p.op) != lower_bound_op(q.op)) return false;
  if (lower_bound_op(p.op)) {
    if (p.value->less_than(*q.value)) return true;
    if (*p.value == *q.value) {
      return !(p.op == CompareOp::kGt && q.op == CompareOp::kGe);
    }
    return false;
  }
  if (q.value->less_than(*p.value)) return true;
  if (*p.value == *q.value) {
    return !(p.op == CompareOp::kLt && q.op == CompareOp::kLe);
  }
  return false;
}

}  // namespace

bool Predicate::covers(const Predicate& other) const {
  if (is_match_all()) return true;
  CompareView q;
  const bool q_is_compare = other.compare_view(q);
  // An ordered comparison against a non-orderable constant (e.g. "a < true")
  // matches nothing, so anything covers it.
  if (q_is_compare && ordered_op(q.op) && !q.value->orderable_with(*q.value)) {
    return true;
  }
  // Q = Or(q1..qn): must cover every branch.
  if (const auto* qor = other.or_terms()) {
    for (const auto& t : *qor) {
      if (!covers(*t)) return false;
    }
    return true;
  }
  // P = And(p1..pn): every conjunct must cover Q.
  if (const auto* pand = and_terms()) {
    for (const auto& t : *pand) {
      if (!t->covers(other)) return false;
    }
    return true;
  }
  // P = Or(p1..pn): one covering branch suffices.
  if (const auto* por = or_terms()) {
    for (const auto& t : *por) {
      if (t->covers(other)) return true;
    }
    return false;
  }
  // Q = And(q1..qn): Q implies each conjunct, so covering one suffices.
  if (const auto* qand = other.and_terms()) {
    for (const auto& t : *qand) {
      if (covers(*t)) return true;
    }
    return false;
  }
  if (const auto* pe = exists_attribute()) {
    if (const auto* qe = other.exists_attribute()) return *pe == *qe;
    // Every comparison is false on a missing attribute, so any compare on
    // the attribute implies exists(attribute).
    if (q_is_compare) return *pe == *q.attribute;
    return false;
  }
  CompareView p;
  if (compare_view(p) && q_is_compare) return compare_covers(p, q);
  // Conservative catch-all for shapes with no structural rule (Not vs Not,
  // mixed leaves): identical text is identical semantics.
  return to_string() == other.to_string();
}

PredicatePtr match_all() { return std::make_shared<MatchAll>(); }

PredicatePtr compare(std::string attribute, CompareOp op, Value value) {
  GRYPHON_CHECK(!attribute.empty());
  return std::make_shared<Compare>(std::move(attribute), op, std::move(value));
}

PredicatePtr exists(std::string attribute) {
  GRYPHON_CHECK(!attribute.empty());
  return std::make_shared<Exists>(std::move(attribute));
}

PredicatePtr p_and(std::vector<PredicatePtr> terms) {
  GRYPHON_CHECK(!terms.empty());
  if (terms.size() == 1) return terms.front();
  return std::make_shared<And>(std::move(terms));
}

PredicatePtr p_or(std::vector<PredicatePtr> terms) {
  GRYPHON_CHECK(!terms.empty());
  if (terms.size() == 1) return terms.front();
  return std::make_shared<Or>(std::move(terms));
}

PredicatePtr p_not(PredicatePtr term) {
  GRYPHON_CHECK(term != nullptr);
  return std::make_shared<Not>(std::move(term));
}

}  // namespace gryphon::matching
