#include "matching/predicate.hpp"

#include <sstream>

#include "util/assert.hpp"

namespace gryphon::matching {

std::string to_string(CompareOp op) {
  switch (op) {
    case CompareOp::kEq: return "==";
    case CompareOp::kNe: return "!=";
    case CompareOp::kLt: return "<";
    case CompareOp::kLe: return "<=";
    case CompareOp::kGt: return ">";
    case CompareOp::kGe: return ">=";
  }
  return "?";
}

bool Predicate::equality_key(EqualityKey&) const { return false; }

namespace {

class MatchAll final : public Predicate {
 public:
  bool matches(const EventData&) const override { return true; }
  std::string to_string() const override { return "true"; }
};

class Compare final : public Predicate {
 public:
  Compare(std::string attribute, CompareOp op, Value value)
      : attribute_(std::move(attribute)), op_(op), value_(std::move(value)) {}

  bool matches(const EventData& event) const override {
    const Value* v = event.attribute(attribute_);
    if (v == nullptr) return false;
    switch (op_) {
      case CompareOp::kEq: return *v == value_;
      case CompareOp::kNe: return !(*v == value_);
      case CompareOp::kLt: return v->orderable_with(value_) && v->less_than(value_);
      case CompareOp::kLe:
        return v->orderable_with(value_) && !value_.less_than(*v);
      case CompareOp::kGt: return v->orderable_with(value_) && value_.less_than(*v);
      case CompareOp::kGe:
        return v->orderable_with(value_) && !v->less_than(value_);
    }
    return false;
  }

  std::string to_string() const override {
    std::ostringstream os;
    os << attribute_ << ' ' << matching::to_string(op_) << ' ' << value_;
    return os.str();
  }

  bool equality_key(EqualityKey& out) const override {
    if (op_ != CompareOp::kEq) return false;
    out = {attribute_, value_};
    return true;
  }

 private:
  std::string attribute_;
  CompareOp op_;
  Value value_;
};

class Exists final : public Predicate {
 public:
  explicit Exists(std::string attribute) : attribute_(std::move(attribute)) {}

  bool matches(const EventData& event) const override {
    return event.attribute(attribute_) != nullptr;
  }

  std::string to_string() const override { return "exists(" + attribute_ + ")"; }

 private:
  std::string attribute_;
};

class And final : public Predicate {
 public:
  explicit And(std::vector<PredicatePtr> terms) : terms_(std::move(terms)) {}

  bool matches(const EventData& event) const override {
    for (const auto& t : terms_) {
      if (!t->matches(event)) return false;
    }
    return true;
  }

  std::string to_string() const override {
    std::string s = "(";
    for (std::size_t i = 0; i < terms_.size(); ++i) {
      if (i) s += " && ";
      s += terms_[i]->to_string();
    }
    return s + ")";
  }

  bool equality_key(EqualityKey& out) const override {
    for (const auto& t : terms_) {
      if (t->equality_key(out)) return true;
    }
    return false;
  }

 private:
  std::vector<PredicatePtr> terms_;
};

class Or final : public Predicate {
 public:
  explicit Or(std::vector<PredicatePtr> terms) : terms_(std::move(terms)) {}

  bool matches(const EventData& event) const override {
    for (const auto& t : terms_) {
      if (t->matches(event)) return true;
    }
    return false;
  }

  std::string to_string() const override {
    std::string s = "(";
    for (std::size_t i = 0; i < terms_.size(); ++i) {
      if (i) s += " || ";
      s += terms_[i]->to_string();
    }
    return s + ")";
  }

 private:
  std::vector<PredicatePtr> terms_;
};

class Not final : public Predicate {
 public:
  explicit Not(PredicatePtr term) : term_(std::move(term)) {}

  bool matches(const EventData& event) const override {
    return !term_->matches(event);
  }

  std::string to_string() const override { return "!" + term_->to_string(); }

 private:
  PredicatePtr term_;
};

}  // namespace

PredicatePtr match_all() { return std::make_shared<MatchAll>(); }

PredicatePtr compare(std::string attribute, CompareOp op, Value value) {
  GRYPHON_CHECK(!attribute.empty());
  return std::make_shared<Compare>(std::move(attribute), op, std::move(value));
}

PredicatePtr exists(std::string attribute) {
  GRYPHON_CHECK(!attribute.empty());
  return std::make_shared<Exists>(std::move(attribute));
}

PredicatePtr p_and(std::vector<PredicatePtr> terms) {
  GRYPHON_CHECK(!terms.empty());
  if (terms.size() == 1) return terms.front();
  return std::make_shared<And>(std::move(terms));
}

PredicatePtr p_or(std::vector<PredicatePtr> terms) {
  GRYPHON_CHECK(!terms.empty());
  if (terms.size() == 1) return terms.front();
  return std::make_shared<Or>(std::move(terms));
}

PredicatePtr p_not(PredicatePtr term) {
  GRYPHON_CHECK(term != nullptr);
  return std::make_shared<Not>(std::move(term));
}

}  // namespace gryphon::matching
