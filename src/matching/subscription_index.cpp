#include "matching/subscription_index.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace gryphon::matching {

void SubscriptionIndex::add(SubscriberId id, PredicatePtr predicate) {
  GRYPHON_CHECK(predicate != nullptr);
  remove(id);

  Entry entry{std::move(predicate), false, {}};
  Predicate::EqualityKey eq;
  if (entry.predicate->equality_key(eq)) {
    entry.bucketed = true;
    entry.bucket = bucket_key(eq.attribute, eq.value);
    buckets_[entry.bucket].push_back(id);
  } else {
    scan_list_.push_back(id);
  }
  all_.emplace(id, std::move(entry));
}

void SubscriptionIndex::remove(SubscriberId id) {
  auto it = all_.find(id);
  if (it == all_.end()) return;
  auto erase_from = [id](std::vector<SubscriberId>& v) {
    v.erase(std::remove(v.begin(), v.end(), id), v.end());
  };
  if (it->second.bucketed) {
    auto b = buckets_.find(it->second.bucket);
    GRYPHON_CHECK(b != buckets_.end());
    erase_from(b->second);
    if (b->second.empty()) buckets_.erase(b);
  } else {
    erase_from(scan_list_);
  }
  all_.erase(it);
}

const PredicatePtr* SubscriptionIndex::predicate_of(SubscriberId id) const {
  auto it = all_.find(id);
  return it == all_.end() ? nullptr : &it->second.predicate;
}

std::vector<SubscriberId> SubscriptionIndex::match(const EventData& event) const {
  std::vector<SubscriberId> out;
  auto eval = [&](SubscriberId id) {
    const auto& entry = all_.at(id);
    if (entry.predicate->matches(event)) out.push_back(id);
  };
  for (SubscriberId id : scan_list_) eval(id);
  // A bucketed subscription can only match events carrying its equality
  // attribute with its value, so probing per event attribute is exhaustive.
  for (const auto& [attr, value] : event.attributes()) {
    auto b = buckets_.find(bucket_key(attr, value));
    if (b == buckets_.end()) continue;
    for (SubscriberId id : b->second) eval(id);
  }
  std::sort(out.begin(), out.end());
  return out;
}

bool SubscriptionIndex::matches_any(const EventData& event) const {
  for (SubscriberId id : scan_list_) {
    if (all_.at(id).predicate->matches(event)) return true;
  }
  for (const auto& [attr, value] : event.attributes()) {
    auto b = buckets_.find(bucket_key(attr, value));
    if (b == buckets_.end()) continue;
    for (SubscriberId id : b->second) {
      if (all_.at(id).predicate->matches(event)) return true;
    }
  }
  return false;
}

std::vector<SubscriberId> SubscriptionIndex::ids() const {
  std::vector<SubscriberId> out;
  out.reserve(all_.size());
  for (const auto& [id, entry] : all_) out.push_back(id);
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace gryphon::matching
