#include "matching/subscription_index.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace gryphon::matching {

void SubscriptionIndex::add(SubscriberId id, PredicatePtr predicate) {
  GRYPHON_CHECK(predicate != nullptr);
  remove(id);

  Entry entry{std::move(predicate), false, {}};
  const Predicate* raw = entry.predicate.get();
  Predicate::EqualityKey eq;
  if (entry.predicate->equality_key(eq)) {
    entry.bucketed = true;
    entry.bucket = BucketKey{eq.attribute, eq.value};
    buckets_[entry.bucket].push_back(Candidate{id, raw});
  } else {
    scan_list_.push_back(Candidate{id, raw});
  }
  all_.emplace(id, std::move(entry));
}

void SubscriptionIndex::remove(SubscriberId id) {
  auto it = all_.find(id);
  if (it == all_.end()) return;
  auto erase_from = [id](Bucket& v) {
    v.erase(std::remove_if(v.begin(), v.end(),
                           [id](const Candidate& c) { return c.id == id; }),
            v.end());
  };
  if (it->second.bucketed) {
    auto b = buckets_.find(
        BucketRef{it->second.bucket.attribute, it->second.bucket.value});
    GRYPHON_CHECK(b != buckets_.end());
    erase_from(b->second);
    if (b->second.empty()) buckets_.erase(b);
  } else {
    erase_from(scan_list_);
  }
  all_.erase(it);
}

const PredicatePtr* SubscriptionIndex::predicate_of(SubscriberId id) const {
  auto it = all_.find(id);
  return it == all_.end() ? nullptr : &it->second.predicate;
}

std::vector<SubscriberId> SubscriptionIndex::match(const EventData& event) const {
  // First size the candidate set (scan list + every hit bucket), then
  // evaluate: the output is reserved once and sorted in place, with no
  // intermediate copy and no allocation beyond the result itself.
  std::size_t candidates = scan_list_.size();
  // A bucketed subscription can only match events carrying its equality
  // attribute with its value, so probing per event attribute is exhaustive.
  constexpr std::size_t kMaxInlineHits = 16;
  const Bucket* hits[kMaxInlineHits];
  std::size_t num_hits = 0;
  bool overflowed = false;  // more hit buckets than the inline array holds
  for (const auto& [attr, value] : event.attributes()) {
    auto b = buckets_.find(BucketRef{attr, value});
    if (b == buckets_.end()) continue;
    candidates += b->second.size();
    if (num_hits < kMaxInlineHits) {
      hits[num_hits++] = &b->second;
    } else {
      overflowed = true;
    }
  }

  std::vector<SubscriberId> out;
  out.reserve(candidates);
  auto eval = [&](const Candidate& c) {
    if (c.predicate->matches(event)) out.push_back(c.id);
  };
  for (const Candidate& c : scan_list_) eval(c);
  if (!overflowed) {
    for (std::size_t i = 0; i < num_hits; ++i) {
      for (const Candidate& c : *hits[i]) eval(c);
    }
  } else {
    // Pathologically wide event: re-probe rather than cap the hit array.
    for (const auto& [attr, value] : event.attributes()) {
      auto b = buckets_.find(BucketRef{attr, value});
      if (b == buckets_.end()) continue;
      for (const Candidate& c : b->second) eval(c);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

bool SubscriptionIndex::matches_any(const EventData& event) const {
  for (const Candidate& c : scan_list_) {
    if (c.predicate->matches(event)) return true;
  }
  for (const auto& [attr, value] : event.attributes()) {
    auto b = buckets_.find(BucketRef{attr, value});
    if (b == buckets_.end()) continue;
    for (const Candidate& c : b->second) {
      if (c.predicate->matches(event)) return true;
    }
  }
  return false;
}

std::vector<SubscriberId> SubscriptionIndex::ids() const {
  std::vector<SubscriberId> out;
  out.reserve(all_.size());
  for (const auto& [id, entry] : all_) out.push_back(id);
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace gryphon::matching
