#include "matching/subscription_index.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace gryphon::matching {

void SubscriptionIndex::add(SubscriberId id, PredicatePtr predicate) {
  GRYPHON_CHECK(predicate != nullptr);
  remove(id);
  insert_member(id, std::move(predicate));
}

void SubscriptionIndex::join_exact(Group* group, SubscriberId id) {
  if (!group->exact.empty() && id < group->exact.back()) {
    group->exact_sorted = false;
  }
  group->exact.push_back(id);
}

std::vector<SubscriptionIndex::Group*>* SubscriptionIndex::home_of(
    bool bucketed, const BucketKey& key) {
  if (!bucketed) return &scan_groups_;
  auto it = buckets_.find(BucketRef{key.attribute, key.value});
  return it == buckets_.end() ? nullptr : &it->second;
}

SubscriptionIndex::CheckedSet* SubscriptionIndex::find_checked(
    Group* group, const std::string& canon) {
  for (CheckedSet& s : group->checked) {
    if (s.canon == canon) return &s;
  }
  return nullptr;
}

void SubscriptionIndex::insert_member(SubscriberId id, PredicatePtr predicate) {
  std::string canon = predicate->to_string();
  // Tier 1: canonical-text join. Identical text is identical semantics, so
  // the member lands next to its twins — exact when the text is the
  // representative's, into that text's checked set otherwise. This is the
  // O(1) path that absorbs the huge duplicate populations of a skewed
  // workload.
  if (auto it = by_canon_.find(canon); it != by_canon_.end()) {
    Group* g = it->second;
    if (canon == g->canon) {
      join_exact(g, id);
      all_.emplace(id, MemberInfo{std::move(predicate), g, true});
    } else {
      CheckedSet* set = find_checked(g, canon);
      GRYPHON_CHECK(set != nullptr);
      set->ids.push_back(id);
      all_.emplace(id, MemberInfo{std::move(predicate), g, false});
    }
    return;
  }

  Predicate::EqualityKey eq;
  const bool bucketed = predicate->equality_key(eq);
  BucketKey key;
  if (bucketed) key = BucketKey{std::move(eq.attribute), std::move(eq.value)};

  // Tier 2: probe the groups this predicate would share a bucket (or the
  // scan list) with for a representative that covers it. First covering
  // group in insertion order wins — deterministic.
  if (std::vector<Group*>* home = home_of(bucketed, key)) {
    for (Group* g : *home) {
      if (!g->rep->covers(*predicate)) continue;
      const bool equivalent = predicate->covers(*g->rep);
      if (equivalent) {
        join_exact(g, id);
      } else {
        g->checked.push_back(CheckedSet{predicate, canon, {id}});
        by_canon_.emplace(std::move(canon), g);
      }
      all_.emplace(id, MemberInfo{std::move(predicate), g, equivalent});
      return;
    }
  }

  // Fresh group: this predicate is its own representative.
  auto owned = std::make_unique<Group>();
  Group* g = owned.get();
  g->rep = predicate;
  g->canon = std::move(canon);
  g->exact.push_back(id);
  g->bucketed = bucketed;
  g->bucket = std::move(key);
  if (bucketed) {
    buckets_[g->bucket].push_back(g);
  } else {
    scan_groups_.push_back(g);
  }
  by_canon_.emplace(g->canon, g);
  groups_.emplace(g, std::move(owned));
  all_.emplace(id, MemberInfo{std::move(predicate), g, true});
}

void SubscriptionIndex::destroy_group(Group* group) {
  for (const CheckedSet& s : group->checked) {
    if (auto it = by_canon_.find(s.canon);
        it != by_canon_.end() && it->second == group) {
      by_canon_.erase(it);
    }
  }
  if (group->bucketed) {
    auto it = buckets_.find(BucketRef{group->bucket.attribute, group->bucket.value});
    GRYPHON_CHECK(it != buckets_.end());
    auto& list = it->second;
    list.erase(std::remove(list.begin(), list.end(), group), list.end());
    if (list.empty()) buckets_.erase(it);
  } else {
    scan_groups_.erase(std::remove(scan_groups_.begin(), scan_groups_.end(), group),
                       scan_groups_.end());
  }
  if (auto it = by_canon_.find(group->canon);
      it != by_canon_.end() && it->second == group) {
    by_canon_.erase(it);
  }
  groups_.erase(group);
}

void SubscriptionIndex::promote(Group* group) {
  GRYPHON_CHECK(group->exact.empty() && !group->checked.empty());
  // First checked set (insertion order) becomes the representative; its
  // whole duplicate population turns exact in one move.
  CheckedSet next = std::move(group->checked.front());
  group->checked.erase(group->checked.begin());
  if (auto it = by_canon_.find(group->canon);
      it != by_canon_.end() && it->second == group) {
    by_canon_.erase(it);
  }
  group->rep = next.predicate;
  group->canon = std::move(next.canon);
  group->exact = std::move(next.ids);
  group->exact_sorted = group->exact.size() <= 1;
  for (SubscriberId id : group->exact) all_.at(id).exact = true;
  by_canon_.emplace(group->canon, group);  // already maps here (set canon)
  // A member's bucket placement always equals its group's (see Group doc),
  // so the promoted rep cannot move the group between buckets.
  Predicate::EqualityKey eq;
  GRYPHON_CHECK(group->rep->equality_key(eq) == group->bucketed);

  // Reclassify the remaining checked sets against the new, narrower
  // representative; any set it no longer covers re-enters through the
  // normal insert path.
  std::vector<CheckedSet> keep;
  std::vector<CheckedSet> eject;
  keep.reserve(group->checked.size());
  for (CheckedSet& s : group->checked) {
    if (!group->rep->covers(*s.predicate)) {
      if (auto it = by_canon_.find(s.canon);
          it != by_canon_.end() && it->second == group) {
        by_canon_.erase(it);
      }
      eject.push_back(std::move(s));
      continue;
    }
    if (s.predicate->covers(*group->rep)) {
      // Equivalent to the new rep under a different spelling: exact-join
      // the set. Drop its canon entry so a later insert of that spelling
      // re-derives equivalence through tier 2 instead of expecting a
      // checked set that no longer exists.
      if (auto it = by_canon_.find(s.canon);
          it != by_canon_.end() && it->second == group) {
        by_canon_.erase(it);
      }
      for (SubscriberId id : s.ids) {
        join_exact(group, id);
        all_.at(id).exact = true;
      }
    } else {
      keep.push_back(std::move(s));
    }
  }
  group->checked = std::move(keep);
  for (CheckedSet& s : eject) {
    for (SubscriberId id : s.ids) {
      PredicatePtr own = all_.at(id).predicate;
      all_.erase(id);
      insert_member(id, std::move(own));
    }
  }
}

void SubscriptionIndex::remove(SubscriberId id) {
  auto it = all_.find(id);
  if (it == all_.end()) return;
  Group* g = it->second.group;
  const bool was_exact = it->second.exact;
  if (!was_exact) {
    const std::string canon = it->second.predicate->to_string();
    CheckedSet* set = find_checked(g, canon);
    GRYPHON_CHECK(set != nullptr);
    auto& ids = set->ids;
    ids.erase(std::remove(ids.begin(), ids.end(), id), ids.end());
    if (ids.empty()) {
      if (auto ci = by_canon_.find(set->canon);
          ci != by_canon_.end() && ci->second == g) {
        by_canon_.erase(ci);
      }
      auto& list = g->checked;
      list.erase(list.begin() + (set - list.data()));
    }
    all_.erase(it);
    return;
  }
  auto& exact = g->exact;
  exact.erase(std::remove(exact.begin(), exact.end(), id), exact.end());
  all_.erase(it);
  if (!exact.empty()) return;
  if (g->checked.empty()) {
    destroy_group(g);
    return;
  }
  promote(g);
}

const PredicatePtr* SubscriptionIndex::predicate_of(SubscriberId id) const {
  auto it = all_.find(id);
  return it == all_.end() ? nullptr : &it->second.predicate;
}

void SubscriptionIndex::eval_group(const Group* g, const EventData& event,
                                   std::vector<SubscriberId>& out,
                                   std::size_t& contributing, bool& unsorted) const {
  ++evals_;
  if (!g->rep->matches(event)) return;  // covered members cannot match either
  const std::size_t before = out.size();
  if (!g->exact.empty()) {
    if (!g->exact_sorted) {
      std::sort(g->exact.begin(), g->exact.end());
      g->exact_sorted = true;
    }
    out.insert(out.end(), g->exact.begin(), g->exact.end());
  }
  bool checked_hit = false;
  for (const CheckedSet& s : g->checked) {
    ++evals_;
    if (s.predicate->matches(event)) {
      out.insert(out.end(), s.ids.begin(), s.ids.end());
      checked_hit = true;
    }
  }
  if (out.size() > before) {
    ++contributing;
    if (checked_hit) unsorted = true;
  }
}

void SubscriptionIndex::match_into(const EventData& event,
                                   std::vector<SubscriberId>& out) const {
  out.clear();
  // Size the candidate set (scan groups + every hit bucket), then evaluate:
  // the output is reserved once, with no allocation beyond the result
  // itself — and none at all when the caller reuses a scratch vector.
  const auto members_of = [](const Group* g) {
    std::size_t n = g->exact.size();
    for (const CheckedSet& s : g->checked) n += s.ids.size();
    return n;
  };
  std::size_t candidates = 0;
  for (const Group* g : scan_groups_) {
    candidates += members_of(g);
  }
  // A bucketed group can only match events carrying its equality attribute
  // with its value, so probing per event attribute is exhaustive.
  constexpr std::size_t kMaxInlineHits = 16;
  const std::vector<Group*>* hits[kMaxInlineHits];
  std::size_t num_hits = 0;
  bool overflowed = false;  // more hit buckets than the inline array holds
  for (const auto& [attr, value] : event.attributes()) {
    auto b = buckets_.find(BucketRef{attr, value});
    if (b == buckets_.end()) continue;
    for (const Group* g : b->second) {
      candidates += members_of(g);
    }
    if (num_hits < kMaxInlineHits) {
      hits[num_hits++] = &b->second;
    } else {
      overflowed = true;
    }
  }
  out.reserve(candidates);

  std::size_t contributing = 0;
  bool unsorted = false;
  for (const Group* g : scan_groups_) {
    eval_group(g, event, out, contributing, unsorted);
  }
  if (!overflowed) {
    for (std::size_t i = 0; i < num_hits; ++i) {
      for (const Group* g : *hits[i]) eval_group(g, event, out, contributing, unsorted);
    }
  } else {
    // Pathologically wide event: re-probe rather than cap the hit array.
    for (const auto& [attr, value] : event.attributes()) {
      auto b = buckets_.find(BucketRef{attr, value});
      if (b == buckets_.end()) continue;
      for (const Group* g : b->second) eval_group(g, event, out, contributing, unsorted);
    }
  }
  // A single contributing group's exact run is already sorted — the common
  // single-bucket case skips the re-sort entirely.
  if (contributing > 1 || unsorted) std::sort(out.begin(), out.end());
}

std::vector<SubscriberId> SubscriptionIndex::match(const EventData& event) const {
  std::vector<SubscriberId> out;
  match_into(event, out);
  return out;
}

bool SubscriptionIndex::matches_any(const EventData& event) const {
  // Only representatives are evaluated: every group keeps an exact member,
  // so a rep hit is a live subscription matching, and a rep miss rules out
  // the whole group.
  for (const Group* g : scan_groups_) {
    ++evals_;
    if (g->rep->matches(event)) return true;
  }
  for (const auto& [attr, value] : event.attributes()) {
    auto b = buckets_.find(BucketRef{attr, value});
    if (b == buckets_.end()) continue;
    for (const Group* g : b->second) {
      ++evals_;
      if (g->rep->matches(event)) return true;
    }
  }
  return false;
}

std::vector<SubscriberId> SubscriptionIndex::ids() const {
  std::vector<SubscriberId> out;
  out.reserve(all_.size());
  for (const auto& [id, entry] : all_) out.push_back(id);
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace gryphon::matching
