// Subscription predicates: a small boolean algebra over event attributes.
//
// Predicates are immutable trees shared by reference (a subscription's
// predicate is held at its SHB and summarized at upstream brokers). Build
// them with the factory functions below or parse_predicate() from a string.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "matching/event.hpp"

namespace gryphon::matching {

enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe };

[[nodiscard]] std::string to_string(CompareOp op);

class Predicate;
using PredicatePtr = std::shared_ptr<const Predicate>;

class Predicate {
 public:
  virtual ~Predicate() = default;

  /// True iff the event satisfies this predicate. A comparison on a missing
  /// or non-orderable attribute is false (SQL-92-style semantics used by
  /// JMS message selectors, minus ternary NULL logic).
  [[nodiscard]] virtual bool matches(const EventData& event) const = 0;

  [[nodiscard]] virtual std::string to_string() const = 0;

  /// If this predicate is an equality test on an attribute, or a conjunction
  /// containing one, expose (attribute, value) so the subscription index can
  /// bucket it. Returns false otherwise.
  struct EqualityKey {
    std::string attribute;
    Value value;
  };
  [[nodiscard]] virtual bool equality_key(EqualityKey& out) const;
};

/// Always true ("subscribe to everything on this stream").
[[nodiscard]] PredicatePtr match_all();

/// attribute <op> constant.
[[nodiscard]] PredicatePtr compare(std::string attribute, CompareOp op, Value value);

/// exists(attribute).
[[nodiscard]] PredicatePtr exists(std::string attribute);

[[nodiscard]] PredicatePtr p_and(std::vector<PredicatePtr> terms);
[[nodiscard]] PredicatePtr p_or(std::vector<PredicatePtr> terms);
[[nodiscard]] PredicatePtr p_not(PredicatePtr term);

}  // namespace gryphon::matching
