// Subscription predicates: a small boolean algebra over event attributes.
//
// Predicates are immutable trees shared by reference (a subscription's
// predicate is held at its SHB and summarized at upstream brokers). Build
// them with the factory functions below or parse_predicate() from a string.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "matching/event.hpp"

namespace gryphon::matching {

enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe };

[[nodiscard]] std::string to_string(CompareOp op);

class Predicate;
using PredicatePtr = std::shared_ptr<const Predicate>;

class Predicate {
 public:
  virtual ~Predicate() = default;

  /// True iff the event satisfies this predicate. A comparison on a missing
  /// or non-orderable attribute is false (SQL-92-style semantics used by
  /// JMS message selectors, minus ternary NULL logic).
  [[nodiscard]] virtual bool matches(const EventData& event) const = 0;

  [[nodiscard]] virtual std::string to_string() const = 0;

  /// If this predicate is an equality test on an attribute, or a conjunction
  /// containing one, expose (attribute, value) so the subscription index can
  /// bucket it. Returns false otherwise.
  struct EqualityKey {
    std::string attribute;
    Value value;
  };
  [[nodiscard]] virtual bool equality_key(EqualityKey& out) const;

  /// Conservative subsumption test: true only when it is *provable* that
  /// every event matched by `other` is also matched by this predicate
  /// (other ⇒ this). False means "unknown", never "disjoint" — callers may
  /// act only on a true result. Mutual coverage is equivalence. The
  /// subscription index uses this to group covered subscriptions under one
  /// representative (DESIGN.md §4.8); it is an add/remove-path operation,
  /// never evaluated per event.
  [[nodiscard]] bool covers(const Predicate& other) const;

  /// Structural views backing covers(). A node that is not the named shape
  /// keeps the default (false / nullptr); each concrete node overrides the
  /// one describing it.
  struct CompareView {
    const std::string* attribute = nullptr;
    CompareOp op = CompareOp::kEq;
    const Value* value = nullptr;
  };
  [[nodiscard]] virtual bool compare_view(CompareView&) const { return false; }
  [[nodiscard]] virtual const std::string* exists_attribute() const { return nullptr; }
  [[nodiscard]] virtual bool is_match_all() const { return false; }
  [[nodiscard]] virtual const std::vector<PredicatePtr>* and_terms() const {
    return nullptr;
  }
  [[nodiscard]] virtual const std::vector<PredicatePtr>* or_terms() const {
    return nullptr;
  }
};

/// Always true ("subscribe to everything on this stream").
[[nodiscard]] PredicatePtr match_all();

/// attribute <op> constant.
[[nodiscard]] PredicatePtr compare(std::string attribute, CompareOp op, Value value);

/// exists(attribute).
[[nodiscard]] PredicatePtr exists(std::string attribute);

[[nodiscard]] PredicatePtr p_and(std::vector<PredicatePtr> terms);
[[nodiscard]] PredicatePtr p_or(std::vector<PredicatePtr> terms);
[[nodiscard]] PredicatePtr p_not(PredicatePtr term);

}  // namespace gryphon::matching
