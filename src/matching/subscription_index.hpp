// Subscription index: maps an event to the set of matching subscriber ids.
//
// Every broker filters events against the subscriptions (or subscription
// summaries) downstream of each link; the SHB additionally matches against
// all hosted durable subscriptions to build PFS records. Following the
// matching-engine lineage the paper builds on (Aguilera et al. [7]),
// subscriptions whose predicate contains a top-level equality test are
// bucketed by (attribute, value) so matching cost scales with the number of
// *candidate* subscriptions, not all of them; the remainder fall back to a
// scan list.
#pragma once

#include <cstdint>
#include <sstream>
#include <string>
#include <unordered_map>
#include <vector>

#include "matching/predicate.hpp"
#include "util/ids.hpp"

namespace gryphon::matching {

class SubscriptionIndex {
 public:
  /// Adds or replaces the subscription of `id`.
  void add(SubscriberId id, PredicatePtr predicate);

  /// Removes a subscription; no-op if absent.
  void remove(SubscriberId id);

  [[nodiscard]] bool contains(SubscriberId id) const { return all_.contains(id); }
  [[nodiscard]] std::size_t size() const { return all_.size(); }
  [[nodiscard]] const PredicatePtr* predicate_of(SubscriberId id) const;

  /// All subscriber ids whose predicate matches, sorted ascending (the PFS
  /// relies on a deterministic order).
  [[nodiscard]] std::vector<SubscriberId> match(const EventData& event) const;

  /// True iff at least one subscription matches (link-level filtering).
  [[nodiscard]] bool matches_any(const EventData& event) const;

  /// Ids of all subscriptions, sorted (diagnostics / iteration).
  [[nodiscard]] std::vector<SubscriberId> ids() const;

 private:
  /// Bucket key for an equality conjunct: attribute NUL value-rendering.
  static std::string bucket_key(const std::string& attribute, const Value& value) {
    std::ostringstream os;
    os << attribute << '\0' << value;
    return os.str();
  }

  struct Entry {
    PredicatePtr predicate;
    bool bucketed = false;
    std::string bucket;  // key in buckets_ when bucketed
  };

  std::unordered_map<SubscriberId, Entry> all_;
  std::unordered_map<std::string, std::vector<SubscriberId>> buckets_;
  std::vector<SubscriberId> scan_list_;  // no usable equality conjunct
};

}  // namespace gryphon::matching
