// Subscription index: maps an event to the set of matching subscriber ids.
//
// Every broker filters events against the subscriptions (or subscription
// summaries) downstream of each link; the SHB additionally matches against
// all hosted durable subscriptions to build PFS records. Following the
// matching-engine lineage the paper builds on (Aguilera et al. [7]),
// subscriptions whose predicate contains a top-level equality test are
// bucketed by (attribute, value) so matching cost scales with the number of
// *candidate* subscriptions, not all of them; the remainder fall back to a
// scan list.
//
// The bucket table is keyed by the (attribute, value) pair directly and
// probed with a borrowed-reference key type (C++20 heterogeneous lookup),
// so match()/matches_any() never materialize a key: probing is hash +
// compare over the event's own strings. Candidate lists carry the raw
// predicate pointer next to the id, which keeps evaluation a linear walk
// with no side lookup into the id map.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "matching/predicate.hpp"
#include "util/ids.hpp"

namespace gryphon::matching {

class SubscriptionIndex {
 public:
  /// Adds or replaces the subscription of `id`.
  void add(SubscriberId id, PredicatePtr predicate);

  /// Removes a subscription; no-op if absent.
  void remove(SubscriberId id);

  [[nodiscard]] bool contains(SubscriberId id) const { return all_.contains(id); }
  [[nodiscard]] std::size_t size() const { return all_.size(); }
  [[nodiscard]] const PredicatePtr* predicate_of(SubscriberId id) const;

  /// All subscriber ids whose predicate matches, sorted ascending (the PFS
  /// relies on a deterministic order).
  [[nodiscard]] std::vector<SubscriberId> match(const EventData& event) const;

  /// True iff at least one subscription matches (link-level filtering).
  [[nodiscard]] bool matches_any(const EventData& event) const;

  /// Ids of all subscriptions, sorted (diagnostics / iteration).
  [[nodiscard]] std::vector<SubscriberId> ids() const;

 private:
  struct BucketKey {
    std::string attribute;
    Value value;
  };
  /// Borrowed-reference probe key: lets bucket lookup reuse the event's own
  /// attribute name and value without building a BucketKey.
  struct BucketRef {
    const std::string& attribute;
    const Value& value;
  };
  struct KeyHash {
    using is_transparent = void;
    static std::size_t mix(std::size_t a, std::size_t b) {
      return a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2));
    }
    std::size_t operator()(const BucketKey& k) const {
      return mix(std::hash<std::string>{}(k.attribute), k.value.hash());
    }
    std::size_t operator()(const BucketRef& k) const {
      return mix(std::hash<std::string>{}(k.attribute), k.value.hash());
    }
  };
  struct KeyEq {
    using is_transparent = void;
    template <typename A, typename B>
    bool operator()(const A& a, const B& b) const {
      return a.attribute == b.attribute && a.value == b.value;
    }
  };

  struct Candidate {
    SubscriberId id;
    const Predicate* predicate;
  };
  using Bucket = std::vector<Candidate>;

  struct Entry {
    PredicatePtr predicate;
    bool bucketed = false;
    BucketKey bucket;  // key in buckets_ when bucketed
  };

  std::unordered_map<SubscriberId, Entry> all_;
  std::unordered_map<BucketKey, Bucket, KeyHash, KeyEq> buckets_;
  Bucket scan_list_;  // no usable equality conjunct
};

}  // namespace gryphon::matching
