// Subscription index: maps an event to the set of matching subscriber ids.
//
// Every broker filters events against the subscriptions (or subscription
// summaries) downstream of each link; the SHB additionally matches against
// all hosted durable subscriptions to build PFS records. Following the
// matching-engine lineage the paper builds on (Aguilera et al. [7]),
// subscriptions whose predicate contains a top-level equality test are
// bucketed by (attribute, value) so matching cost scales with the number of
// *candidate* subscriptions, not all of them; the remainder fall back to a
// scan list.
//
// On top of the buckets sits a *covering* tier (DESIGN.md §4.8): members
// whose predicate is subsumed by another subscription's predicate
// (Predicate::covers) are grouped under one canonical representative, so
// match() evaluates one predicate per group and expands to member ids
// lazily:
//   * `exact` members are equivalent to the representative — a rep hit
//     appends them without evaluating anything,
//   * `checked` members are strictly covered — grouped by canonical text
//     into sets, each set's predicate evaluated once per event when the rep
//     hits (so a covered selector's duplicate population costs one
//     evaluation, not one per subscriber); a rep miss skips the whole group
//     soundly.
// Every group keeps at least one exact member (removal of the last one
// promotes a checked member to representative in place, without rebuilding
// the index), which is what makes matches_any() O(groups): a rep hit *is* a
// live subscription matching. At million-subscriber scale with skewed
// predicates this collapses match cost from O(subscriptions) to
// O(covering groups).
//
// The bucket table is keyed by the (attribute, value) pair directly and
// probed with a borrowed-reference key type (C++20 heterogeneous lookup),
// so match()/matches_any() never materialize a key: probing is hash +
// compare over the event's own strings.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "matching/predicate.hpp"
#include "util/ids.hpp"

namespace gryphon::matching {

class SubscriptionIndex {
 public:
  /// Adds or replaces the subscription of `id`.
  void add(SubscriberId id, PredicatePtr predicate);

  /// Removes a subscription; no-op if absent. Removing the last exact
  /// member of a covering group promotes a checked member to representative
  /// (local to that group; no index rebuild).
  void remove(SubscriberId id);

  [[nodiscard]] bool contains(SubscriberId id) const { return all_.contains(id); }
  [[nodiscard]] std::size_t size() const { return all_.size(); }
  [[nodiscard]] const PredicatePtr* predicate_of(SubscriberId id) const;

  /// All subscriber ids whose predicate matches, sorted ascending (the PFS
  /// relies on a deterministic order).
  [[nodiscard]] std::vector<SubscriberId> match(const EventData& event) const;

  /// match() into a caller-owned scratch vector (cleared first): the hot
  /// match loop reuses one buffer, so steady state allocates nothing.
  void match_into(const EventData& event, std::vector<SubscriberId>& out) const;

  /// True iff at least one subscription matches (link-level filtering).
  /// O(covering groups): only representatives are evaluated.
  [[nodiscard]] bool matches_any(const EventData& event) const;

  /// Ids of all subscriptions, sorted (diagnostics / iteration).
  [[nodiscard]] std::vector<SubscriberId> ids() const;

  /// Covering groups currently live (== representative predicates actually
  /// evaluated per event in the worst case). The compression ratio
  /// group_count()/size() is the aggregation win.
  [[nodiscard]] std::size_t group_count() const { return groups_.size(); }

  /// Cumulative predicates evaluated by match()/match_into()/matches_any()
  /// — representatives plus checked members. Feeds the
  /// matching.match_candidates probe.
  [[nodiscard]] std::uint64_t candidates_evaluated() const { return evals_; }

 private:
  struct BucketKey {
    std::string attribute;
    Value value;
  };
  /// Borrowed-reference probe key: lets bucket lookup reuse the event's own
  /// attribute name and value without building a BucketKey.
  struct BucketRef {
    const std::string& attribute;
    const Value& value;
  };
  struct KeyHash {
    using is_transparent = void;
    static std::size_t mix(std::size_t a, std::size_t b) {
      return a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2));
    }
    std::size_t operator()(const BucketKey& k) const {
      return mix(std::hash<std::string>{}(k.attribute), k.value.hash());
    }
    std::size_t operator()(const BucketRef& k) const {
      return mix(std::hash<std::string>{}(k.attribute), k.value.hash());
    }
  };
  struct KeyEq {
    using is_transparent = void;
    template <typename A, typename B>
    bool operator()(const A& a, const B& b) const {
      return a.attribute == b.attribute && a.value == b.value;
    }
  };

  /// Checked members sharing one canonical text. The set's predicate is
  /// evaluated once per event for all of them — the same duplicate-
  /// absorption exact members get, one tier down.
  struct CheckedSet {
    PredicatePtr predicate;
    std::string canon;  // predicate->to_string(), key in by_canon_
    std::vector<SubscriberId> ids;
  };

  /// One covering group. Invariant outside remove(): exact is non-empty,
  /// and every member's predicate is covered by rep (exact members
  /// mutually). Bucketed groups and all their members share the group's
  /// equality bucket; scan groups hold only members without one — so a
  /// promotion never moves a group between buckets.
  struct Group {
    PredicatePtr rep;
    std::string canon;  // rep->to_string(), key in by_canon_
    /// Sorted lazily: appends just clear the flag, the first rep hit sorts
    /// once, and a hit then splices a pre-sorted run into the output.
    mutable std::vector<SubscriberId> exact;
    mutable bool exact_sorted = true;
    std::vector<CheckedSet> checked;
    bool bucketed = false;
    BucketKey bucket;  // key in buckets_ when bucketed
  };

  struct MemberInfo {
    PredicatePtr predicate;
    Group* group = nullptr;
    bool exact = false;
  };

  /// Places a member that is not currently in the index (canonical-text
  /// join, covering-group probe, or a fresh group).
  void insert_member(SubscriberId id, PredicatePtr predicate);
  /// Group list a predicate with `bucketed`/`key` placement probes/joins.
  std::vector<Group*>* home_of(bool bucketed, const BucketKey& key);
  void destroy_group(Group* group);
  /// Rebuilds the group around its first checked member after the last
  /// exact member left. Members no longer covered are re-inserted.
  void promote(Group* group);
  void join_exact(Group* group, SubscriberId id);
  static CheckedSet* find_checked(Group* group, const std::string& canon);
  void eval_group(const Group* group, const EventData& event,
                  std::vector<SubscriberId>& out, std::size_t& contributing,
                  bool& unsorted) const;

  std::unordered_map<SubscriberId, MemberInfo> all_;
  std::unordered_map<BucketKey, std::vector<Group*>, KeyHash, KeyEq> buckets_;
  std::vector<Group*> scan_groups_;  // reps without a usable equality conjunct
  /// Canonical text -> owning group, for representative AND checked-set
  /// canons: the O(1) join path that absorbs duplicate populations.
  std::unordered_map<std::string, Group*> by_canon_;
  std::unordered_map<const Group*, std::unique_ptr<Group>> groups_;
  mutable std::uint64_t evals_ = 0;
};

}  // namespace gryphon::matching
