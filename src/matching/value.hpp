// Typed attribute values carried by events and compared by predicates.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <variant>

namespace gryphon::matching {

/// An event attribute value. Numeric comparisons promote int64 to double
/// when the two sides differ; strings and bools only support (in)equality
/// ordering rules noted on each operator.
class Value {
 public:
  Value() : v_(std::int64_t{0}) {}
  Value(std::int64_t v) : v_(v) {}          // NOLINT(google-explicit-constructor)
  Value(int v) : v_(std::int64_t{v}) {}     // NOLINT(google-explicit-constructor)
  Value(double v) : v_(v) {}                // NOLINT(google-explicit-constructor)
  Value(bool v) : v_(v) {}                  // NOLINT(google-explicit-constructor)
  Value(std::string v) : v_(std::move(v)) {}  // NOLINT(google-explicit-constructor)
  Value(const char* v) : v_(std::string(v)) {}  // NOLINT(google-explicit-constructor)

  [[nodiscard]] bool is_numeric() const {
    return std::holds_alternative<std::int64_t>(v_) || std::holds_alternative<double>(v_);
  }
  [[nodiscard]] bool is_string() const { return std::holds_alternative<std::string>(v_); }
  [[nodiscard]] bool is_bool() const { return std::holds_alternative<bool>(v_); }

  [[nodiscard]] double as_double() const {
    if (const auto* i = std::get_if<std::int64_t>(&v_)) return static_cast<double>(*i);
    return std::get<double>(v_);
  }
  [[nodiscard]] const std::string& as_string() const { return std::get<std::string>(v_); }
  [[nodiscard]] bool as_bool() const { return std::get<bool>(v_); }

  /// Equality: numerics compare numerically; mixed category is unequal.
  friend bool operator==(const Value& a, const Value& b) {
    if (a.is_numeric() && b.is_numeric()) return a.as_double() == b.as_double();
    return a.v_ == b.v_;
  }

  /// Ordering is defined for numeric/numeric and string/string pairs;
  /// anything else is unordered (returns false for both < directions).
  [[nodiscard]] bool less_than(const Value& other) const {
    if (is_numeric() && other.is_numeric()) return as_double() < other.as_double();
    if (is_string() && other.is_string()) return as_string() < other.as_string();
    return false;
  }
  [[nodiscard]] bool orderable_with(const Value& other) const {
    return (is_numeric() && other.is_numeric()) || (is_string() && other.is_string());
  }

  /// Serialized size contribution, for wire-size accounting.
  [[nodiscard]] std::size_t encoded_size() const {
    if (is_string()) return 4 + as_string().size();
    return 8;
  }

  /// Hash consistent with operator== — int64 and double holding the same
  /// number must collide, so numerics hash their as_double() image (with
  /// -0.0 folded into +0.0, which compares equal).
  [[nodiscard]] std::size_t hash() const {
    if (is_numeric()) {
      double d = as_double();
      if (d == 0.0) d = 0.0;  // collapse -0.0
      return std::hash<double>{}(d);
    }
    if (const auto* b = std::get_if<bool>(&v_)) {
      return *b ? 0x9e3779b97f4a7c15ULL : 0x517cc1b727220a95ULL;
    }
    return std::hash<std::string>{}(std::get<std::string>(v_));
  }

  friend std::ostream& operator<<(std::ostream& os, const Value& v);

 private:
  std::variant<std::int64_t, double, bool, std::string> v_;
};

inline std::ostream& operator<<(std::ostream& os, const Value& v) {
  if (const auto* i = std::get_if<std::int64_t>(&v.v_)) return os << *i;
  if (const auto* d = std::get_if<double>(&v.v_)) return os << *d;
  if (const auto* b = std::get_if<bool>(&v.v_)) return os << (*b ? "true" : "false");
  return os << '\'' << std::get<std::string>(v.v_) << '\'';
}

}  // namespace gryphon::matching
