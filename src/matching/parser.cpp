#include "matching/parser.hpp"

#include <cctype>
#include <charconv>
#include <vector>

namespace gryphon::matching {

namespace {

enum class TokKind {
  kIdent,
  kInt,
  kFloat,
  kString,
  kOp,      // comparison operator text
  kAnd,
  kOr,
  kNot,
  kLParen,
  kRParen,
  kTrue,
  kFalse,
  kExists,
  kEnd,
};

struct Token {
  TokKind kind;
  std::string text;
  std::int64_t int_value = 0;
  double float_value = 0.0;
  std::size_t pos = 0;
};

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) {}

  Token next() {
    skip_ws();
    const std::size_t pos = i_;
    if (i_ >= text_.size()) return {TokKind::kEnd, "", 0, 0.0, pos};

    const char c = text_[i_];
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') return ident(pos);
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '-' && i_ + 1 < text_.size() &&
         std::isdigit(static_cast<unsigned char>(text_[i_ + 1])))) {
      return number(pos);
    }
    if (c == '\'') return quoted(pos);

    auto two = [&](std::string_view op) {
      return text_.substr(i_, 2) == op;
    };
    if (two("&&")) { i_ += 2; return {TokKind::kAnd, "&&", 0, 0.0, pos}; }
    if (two("||")) { i_ += 2; return {TokKind::kOr, "||", 0, 0.0, pos}; }
    if (two("==")) { i_ += 2; return {TokKind::kOp, "==", 0, 0.0, pos}; }
    if (two("!=")) { i_ += 2; return {TokKind::kOp, "!=", 0, 0.0, pos}; }
    if (two("<>")) { i_ += 2; return {TokKind::kOp, "!=", 0, 0.0, pos}; }
    if (two("<=")) { i_ += 2; return {TokKind::kOp, "<=", 0, 0.0, pos}; }
    if (two(">=")) { i_ += 2; return {TokKind::kOp, ">=", 0, 0.0, pos}; }
    switch (c) {
      case '=': ++i_; return {TokKind::kOp, "==", 0, 0.0, pos};
      case '<': ++i_; return {TokKind::kOp, "<", 0, 0.0, pos};
      case '>': ++i_; return {TokKind::kOp, ">", 0, 0.0, pos};
      case '!': ++i_; return {TokKind::kNot, "!", 0, 0.0, pos};
      case '(': ++i_; return {TokKind::kLParen, "(", 0, 0.0, pos};
      case ')': ++i_; return {TokKind::kRParen, ")", 0, 0.0, pos};
      default: break;
    }
    throw ParseError(std::string("unexpected character '") + c + "'", pos);
  }

 private:
  void skip_ws() {
    while (i_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[i_]))) ++i_;
  }

  Token ident(std::size_t pos) {
    std::size_t j = i_;
    while (j < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[j])) || text_[j] == '_' ||
            text_[j] == '.')) {
      ++j;
    }
    std::string word(text_.substr(i_, j - i_));
    i_ = j;
    if (iequals(word, "and")) return {TokKind::kAnd, word, 0, 0.0, pos};
    if (iequals(word, "or")) return {TokKind::kOr, word, 0, 0.0, pos};
    if (iequals(word, "not")) return {TokKind::kNot, word, 0, 0.0, pos};
    if (iequals(word, "true")) return {TokKind::kTrue, word, 0, 0.0, pos};
    if (iequals(word, "false")) return {TokKind::kFalse, word, 0, 0.0, pos};
    if (iequals(word, "exists")) return {TokKind::kExists, word, 0, 0.0, pos};
    return {TokKind::kIdent, std::move(word), 0, 0.0, pos};
  }

  Token number(std::size_t pos) {
    std::size_t j = i_;
    if (text_[j] == '-') ++j;
    bool is_float = false;
    while (j < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[j])) || text_[j] == '.' ||
            text_[j] == 'e' || text_[j] == 'E' ||
            ((text_[j] == '+' || text_[j] == '-') && j > i_ &&
             (text_[j - 1] == 'e' || text_[j - 1] == 'E')))) {
      if (text_[j] == '.' || text_[j] == 'e' || text_[j] == 'E') is_float = true;
      ++j;
    }
    const std::string_view s = text_.substr(i_, j - i_);
    Token t{is_float ? TokKind::kFloat : TokKind::kInt, std::string(s), 0, 0.0, pos};
    if (is_float) {
      t.float_value = std::stod(t.text);
    } else {
      auto [p, ec] = std::from_chars(s.data(), s.data() + s.size(), t.int_value);
      if (ec != std::errc{} || p != s.data() + s.size()) {
        throw ParseError("malformed number '" + t.text + "'", pos);
      }
    }
    i_ = j;
    return t;
  }

  Token quoted(std::size_t pos) {
    std::size_t j = i_ + 1;
    std::string out;
    while (j < text_.size()) {
      if (text_[j] == '\'') {
        // '' escapes a quote, SQL style.
        if (j + 1 < text_.size() && text_[j + 1] == '\'') {
          out += '\'';
          j += 2;
          continue;
        }
        i_ = j + 1;
        return {TokKind::kString, std::move(out), 0, 0.0, pos};
      }
      out += text_[j++];
    }
    throw ParseError("unterminated string literal", pos);
  }

  std::string_view text_;
  std::size_t i_ = 0;
};

class Parser {
 public:
  explicit Parser(std::string_view text) : lexer_(text) { advance(); }

  PredicatePtr parse() {
    PredicatePtr p = parse_or();
    expect(TokKind::kEnd, "end of input");
    return p;
  }

 private:
  void advance() { cur_ = lexer_.next(); }

  void expect(TokKind kind, const char* what) {
    if (cur_.kind != kind) {
      throw ParseError(std::string("expected ") + what + ", found '" + cur_.text + "'",
                       cur_.pos);
    }
  }

  PredicatePtr parse_or() {
    std::vector<PredicatePtr> terms{parse_and()};
    while (cur_.kind == TokKind::kOr) {
      advance();
      terms.push_back(parse_and());
    }
    return p_or(std::move(terms));
  }

  PredicatePtr parse_and() {
    std::vector<PredicatePtr> terms{parse_unary()};
    while (cur_.kind == TokKind::kAnd) {
      advance();
      terms.push_back(parse_unary());
    }
    return p_and(std::move(terms));
  }

  PredicatePtr parse_unary() {
    if (cur_.kind == TokKind::kNot) {
      advance();
      return p_not(parse_unary());
    }
    return parse_primary();
  }

  PredicatePtr parse_primary() {
    switch (cur_.kind) {
      case TokKind::kLParen: {
        advance();
        PredicatePtr p = parse_or();
        expect(TokKind::kRParen, "')'");
        advance();
        return p;
      }
      case TokKind::kTrue:
        advance();
        return match_all();
      case TokKind::kFalse:
        advance();
        return p_not(match_all());
      case TokKind::kExists: {
        advance();
        expect(TokKind::kLParen, "'(' after exists");
        advance();
        expect(TokKind::kIdent, "attribute name");
        std::string attr = cur_.text;
        advance();
        expect(TokKind::kRParen, "')'");
        advance();
        return exists(std::move(attr));
      }
      case TokKind::kIdent:
        return parse_comparison();
      default:
        throw ParseError("expected predicate, found '" + cur_.text + "'", cur_.pos);
    }
  }

  PredicatePtr parse_comparison() {
    std::string attr = cur_.text;
    advance();
    // A bare identifier is a boolean attribute test: `flag` == (flag == true).
    if (cur_.kind != TokKind::kOp) {
      return compare(std::move(attr), CompareOp::kEq, Value(true));
    }
    const std::string op_text = cur_.text;
    const std::size_t op_pos = cur_.pos;
    advance();
    Value literal = parse_literal();
    CompareOp op;
    if (op_text == "==") op = CompareOp::kEq;
    else if (op_text == "!=") op = CompareOp::kNe;
    else if (op_text == "<") op = CompareOp::kLt;
    else if (op_text == "<=") op = CompareOp::kLe;
    else if (op_text == ">") op = CompareOp::kGt;
    else if (op_text == ">=") op = CompareOp::kGe;
    else throw ParseError("unknown operator '" + op_text + "'", op_pos);
    return compare(std::move(attr), op, std::move(literal));
  }

  Value parse_literal() {
    Value v;
    switch (cur_.kind) {
      case TokKind::kInt: v = Value(cur_.int_value); break;
      case TokKind::kFloat: v = Value(cur_.float_value); break;
      case TokKind::kString: v = Value(cur_.text); break;
      case TokKind::kTrue: v = Value(true); break;
      case TokKind::kFalse: v = Value(false); break;
      default:
        throw ParseError("expected literal, found '" + cur_.text + "'", cur_.pos);
    }
    advance();
    return v;
  }

  Lexer lexer_;
  Token cur_{TokKind::kEnd, "", 0, 0.0, 0};
};

}  // namespace

PredicatePtr parse_predicate(std::string_view text) { return Parser(text).parse(); }

}  // namespace gryphon::matching
