// Checkpoint Token (CT) — a vector clock of (pubend, timestamp) pairs
// (paper §2). CT(s,p) is the latest tick of pubend p that subscriber s has
// consumed (and everything before it). Subscribers persist their CT and
// present it on reconnection as the resumption point.
#pragma once

#include <map>
#include <ostream>

#include "util/byte_buffer.hpp"
#include "util/ids.hpp"
#include "util/time.hpp"

namespace gryphon::core {

class CheckpointToken {
 public:
  CheckpointToken() = default;

  [[nodiscard]] Tick of(PubendId p) const {
    auto it = entries_.find(p);
    return it == entries_.end() ? kTickZero : it->second;
  }

  void set(PubendId p, Tick t) { entries_[p] = t; }

  /// Monotonic update: never moves a component backwards.
  void advance(PubendId p, Tick t) {
    auto [it, inserted] = entries_.emplace(p, t);
    if (!inserted && t > it->second) it->second = t;
  }

  /// Component-wise max with another token.
  void merge(const CheckpointToken& other) {
    for (const auto& [p, t] : other.entries_) advance(p, t);
  }

  [[nodiscard]] const std::map<PubendId, Tick>& entries() const { return entries_; }
  [[nodiscard]] bool empty() const { return entries_.empty(); }

  /// True iff every component of this token is <= the other's.
  [[nodiscard]] bool dominated_by(const CheckpointToken& other) const {
    for (const auto& [p, t] : entries_) {
      if (t > other.of(p)) return false;
    }
    return true;
  }

  /// Exact serialize() output size: entry-count u32 + 12 bytes per entry.
  [[nodiscard]] std::size_t encoded_size() const { return 4 + 12 * entries_.size(); }

  void serialize(BufWriter& w) const {
    w.put_u32(static_cast<std::uint32_t>(entries_.size()));
    for (const auto& [p, t] : entries_) {
      w.put_u32(p.value());
      w.put_i64(t);
    }
  }

  static CheckpointToken deserialize(BufReader& r) {
    CheckpointToken ct;
    const auto n = r.get_u32();
    for (std::uint32_t i = 0; i < n; ++i) {
      const PubendId p{r.get_u32()};
      const Tick t = r.get_i64();
      ct.set(p, t);
    }
    return ct;
  }

  friend std::ostream& operator<<(std::ostream& os, const CheckpointToken& ct) {
    os << '{';
    bool first = true;
    for (const auto& [p, t] : ct.entries_) {
      if (!first) os << ", ";
      os << p << ':' << t;
      first = false;
    }
    return os << '}';
  }

 private:
  std::map<PubendId, Tick> entries_;
};

}  // namespace gryphon::core
