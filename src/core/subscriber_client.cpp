#include "core/subscriber_client.hpp"

#include <algorithm>
#include <cmath>

namespace gryphon::core {

DurableSubscriber::DurableSubscriber(sim::Scheduler& scheduler, sim::Network& network,
                                     Options options, sim::EndpointId shb,
                                     SubscriberObserver* observer)
    : Client(scheduler, network, "sub-" + std::to_string(options.id.value())),
      options_(std::move(options)),
      shb_(shb),
      observer_(observer) {
  GRYPHON_CHECK(!options_.predicate.empty());
  GRYPHON_CHECK(options_.backoff.base > 0 &&
                options_.backoff.max >= options_.backoff.base &&
                options_.backoff.multiplier >= 1.0 &&
                options_.backoff.jitter >= 0.0 && options_.backoff.jitter < 1.0);
  // Periodic acknowledgment of the consumed CT (client-owned-CT mode).
  every(options_.ack_interval, [this] {
    if (connected_ && !options_.jms_auto_ack && !ct_.empty()) {
      send(shb_, std::make_shared<AckMsg>(options_.id, ct_));
    }
  });
}

void DurableSubscriber::connect() {
  if (connected_ || connecting_) return;
  connecting_ = true;
  ++connect_attempt_;
  retry_count_ = 0;  // a fresh attempt starts fast again
  try_connect();
}

void DurableSubscriber::try_connect() {
  if (!connecting_ || connected_) return;
  // The send may be refused (SHB down, uplink partitioned) — either way the
  // backoff timer below retries until a ConnectedMsg arrives.
  send(shb_, std::make_shared<ConnectMsg>(
                 options_.id, /*first=*/!subscribed_, options_.predicate, ct_,
                 options_.jms_auto_ack,
                 /*use_stored_ct=*/options_.jms_auto_ack && subscribed_));
  const std::uint64_t attempt = connect_attempt_;
  defer(backoff_delay(retry_count_), [this, attempt] {
    // Retry while this connection attempt is still the current one.
    if (connecting_ && !connected_ && attempt == connect_attempt_) {
      ++retry_count_;
      try_connect();
    }
  });
}

SimDuration DurableSubscriber::backoff_delay(std::uint64_t retry) const {
  const ReconnectBackoff& b = options_.backoff;
  const auto cap = static_cast<double>(b.max);
  double delay = static_cast<double>(b.base);
  for (std::uint64_t i = 0; i < retry && delay < cap; ++i) delay *= b.multiplier;
  delay = std::min(delay, cap);
  // Deterministic jitter: a splitmix-style hash of (subscriber id, attempt,
  // retry) mapped to [1 - jitter, 1 + jitter). Same inputs give the same
  // delay, so runs replay exactly; different subscribers spread out.
  std::uint64_t h = (options_.id.value() + 1) * 0x9e3779b97f4a7c15ULL;
  h ^= (connect_attempt_ + 1) * 0xbf58476d1ce4e5b9ULL;
  h ^= (retry + 1) * 0x94d049bb133111ebULL;
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 27;
  h *= 0x94d049bb133111ebULL;
  h ^= h >> 31;
  const double unit = static_cast<double>(h >> 11) * 0x1.0p-53;  // [0, 1)
  delay *= 1.0 - b.jitter + 2.0 * b.jitter * unit;
  return std::max<SimDuration>(1, static_cast<SimDuration>(std::llround(delay)));
}

void DurableSubscriber::disconnect() {
  if (!connected_ && !connecting_) return;
  connected_ = false;
  connecting_ = false;
  send(shb_, std::make_shared<DisconnectMsg>(options_.id));
}

void DurableSubscriber::unsubscribe() {
  connected_ = false;
  connecting_ = false;
  subscribed_ = false;
  send(shb_, std::make_shared<UnsubscribeReqMsg>(options_.id));
}

void DurableSubscriber::migrate(sim::EndpointId new_shb) {
  GRYPHON_CHECK_MSG(!options_.jms_auto_ack,
                    "JMS subscriptions cannot reconnect anywhere: the broker "
                    "owns their checkpoint token");
  GRYPHON_CHECK_MSG(subscribed_, "nothing to migrate: never subscribed");
  if (new_shb == shb_) return;  // already home
  // Subscribe at the new home FIRST; the old subscription is destroyed only
  // once the new one is confirmed, so its released(s,p) pin at the new SHB
  // reaches the pubend before the old pin is dropped — otherwise the
  // release protocol could discard the missed span mid-handover.
  pending_unsubscribe_ = shb_;
  connected_ = false;
  connecting_ = false;
  shb_ = new_shb;
  connect();
}

void DurableSubscriber::notify_connection_reset() {
  const bool was_up = connected_ || connecting_;
  connected_ = false;
  connecting_ = false;
  if (was_up && options_.auto_reconnect && !reconnect_hold_) connect();
}

void DurableSubscriber::set_reconnect_hold(bool hold) {
  reconnect_hold_ = hold;
  if (!hold && !connected_ && !connecting_ && subscribed_ && options_.auto_reconnect) {
    connect();
  }
}

void DurableSubscriber::handle(sim::EndpointId from, const Msg& msg) {
  // Stragglers from a previous hosting (reconnect-anywhere migration leaves
  // deliveries in flight from the old SHB) are not part of this session.
  if (from != shb_) return;
  switch (msg.kind()) {
    case MsgKind::kConnected: {
      const auto& m = static_cast<const ConnectedMsg&>(msg);
      if (!connecting_) return;  // duplicate confirmation
      connecting_ = false;
      connected_ = true;
      subscribed_ = true;
      if (!m.initial_ct.empty()) ct_ = m.initial_ct;
      if (pending_unsubscribe_ != 0) {
        // Migration hand-off complete: drop the old hosting.
        send(pending_unsubscribe_, std::make_shared<UnsubscribeReqMsg>(options_.id));
        pending_unsubscribe_ = 0;
      }
      if (observer_ != nullptr) observer_->on_connected(options_.id, now());
      return;
    }
    case MsgKind::kEventDelivery: {
      if (!connected_) return;  // in-flight leftovers from a dead session
      const auto& m = static_cast<const EventDeliveryMsg&>(msg);
      // The delivery contract: strictly increasing timestamps per pubend.
      GRYPHON_CHECK_MSG(m.tick > ct_.of(m.pubend),
                        "duplicate/out-of-order delivery to " << options_.id << ": "
                            << m.pubend << ':' << m.tick << " with CT "
                            << ct_.of(m.pubend));
      ct_.advance(m.pubend, m.tick);
      ++events_received_;
      if (observer_ != nullptr) {
        observer_->on_event(options_.id, m.pubend, m.tick, m.event, m.from_catchup,
                            now());
      }
      if (options_.jms_auto_ack) {
        // Auto-acknowledge: consume-and-ack each message individually.
        send(shb_, std::make_shared<JmsConsumedMsg>(options_.id, m.pubend, m.tick));
      }
      return;
    }
    case MsgKind::kSilenceDelivery: {
      if (!connected_) return;
      const auto& m = static_cast<const SilenceDeliveryMsg&>(msg);
      ct_.advance(m.pubend, m.upto);
      if (observer_ != nullptr) {
        observer_->on_silence(options_.id, m.pubend, m.upto, now());
      }
      return;
    }
    case MsgKind::kGapDelivery: {
      if (!connected_) return;
      const auto& m = static_cast<const GapDeliveryMsg&>(msg);
      ++gaps_received_;
      ct_.advance(m.pubend, m.range.to);
      if (observer_ != nullptr) {
        observer_->on_gap(options_.id, m.pubend, m.range, now());
      }
      return;
    }
    default:
      GRYPHON_CHECK_MSG(false, "subscriber cannot handle message kind "
                                   << static_cast<int>(msg.kind()));
  }
}

}  // namespace gryphon::core
