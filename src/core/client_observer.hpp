// Observation hooks for clients: the experiment harness (oracle, metrics)
// implements these to validate exactly-once delivery and to record rates
// and latencies without the core protocols knowing about it.
#pragma once

#include "matching/event.hpp"
#include "util/ids.hpp"
#include "util/interval_set.hpp"
#include "util/time.hpp"

namespace gryphon::core {

class SubscriberObserver {
 public:
  virtual ~SubscriberObserver() = default;
  virtual void on_event(SubscriberId, PubendId, Tick, const matching::EventDataPtr&,
                        bool /*catchup*/, SimTime) {}
  virtual void on_silence(SubscriberId, PubendId, Tick, SimTime) {}
  virtual void on_gap(SubscriberId, PubendId, TickRange, SimTime) {}
  virtual void on_connected(SubscriberId, SimTime) {}
};

class PublisherObserver {
 public:
  virtual ~PublisherObserver() = default;
  virtual void on_published(PublisherId, PubendId, Tick,
                            const matching::EventDataPtr&, SimTime /*publish time*/,
                            SimTime /*ack time*/) {}
};

}  // namespace gryphon::core
