#include "core/publisher_client.hpp"

namespace gryphon::core {

Publisher::Publisher(sim::Scheduler& scheduler, sim::Network& network, Options options,
                     sim::EndpointId phb, EventFactory factory,
                     PublisherObserver* observer)
    : Client(scheduler, network, "pub-" + std::to_string(options.id.value())),
      options_(std::move(options)),
      phb_(phb),
      factory_(std::move(factory)),
      observer_(observer) {
  every(options_.retry_timeout, [this] { retry_pending(); });
}

void Publisher::start() {
  GRYPHON_CHECK_MSG(options_.interval > 0, "start() requires a publish interval");
  if (running_) return;
  running_ = true;
  defer(options_.start_offset, [this] { tick(); });
}

void Publisher::tick() {
  if (!running_) return;
  publish(factory_(next_seq_));
  defer(options_.interval, [this] { tick(); });
}

std::uint64_t Publisher::acked_below() const {
  // Everything below the lowest still-pending seq has been acked.
  return pending_.empty() ? next_seq_ : pending_.begin()->first;
}

void Publisher::publish(matching::EventDataPtr event) {
  GRYPHON_CHECK(event != nullptr);
  const std::uint64_t seq = next_seq_++;
  pending_.emplace(seq, Pending{event, now(), now()});
  send(phb_, std::make_shared<PublishMsg>(options_.id, seq, acked_below(),
                                          options_.pubend, std::move(event)));
}

void Publisher::retry_pending() {
  for (auto& [seq, p] : pending_) {
    if (now() - p.last_sent < options_.retry_timeout) continue;
    p.last_sent = now();
    send(phb_, std::make_shared<PublishMsg>(options_.id, seq, acked_below(),
                                            options_.pubend, p.event));
  }
}

void Publisher::handle(sim::EndpointId /*from*/, const Msg& msg) {
  GRYPHON_CHECK(msg.kind() == MsgKind::kPublishAck);
  const auto& m = static_cast<const PublishAckMsg&>(msg);
  auto it = pending_.find(m.seq);
  if (it == pending_.end()) return;  // duplicate ack
  ++acked_;
  if (observer_ != nullptr) {
    observer_->on_published(options_.id, options_.pubend, m.assigned_tick,
                            it->second.event, it->second.first_sent, now());
  }
  pending_.erase(it);
}

}  // namespace gryphon::core
