// Publisher client: publishes at a configured rate with at-least-once
// delivery to the PHB (retry until acknowledged); the pubend's seq-based
// dedup turns that into exactly-once logging.
#pragma once

#include <functional>
#include <map>

#include "core/client.hpp"
#include "core/client_observer.hpp"

namespace gryphon::core {

class Publisher final : public Client {
 public:
  /// Builds the event for the publisher's `seq`-th publish.
  using EventFactory = std::function<matching::EventDataPtr(std::uint64_t seq)>;

  struct Options {
    PublisherId id;
    PubendId pubend;
    /// Interval between publishes; <= 0 means manual publishing only.
    SimDuration interval = kManualOnly;
    /// Phase offset of the first timed publish.
    SimDuration start_offset = 0;
    SimDuration retry_timeout = msec(500);

    static constexpr SimDuration kManualOnly = 0;
  };

  Publisher(sim::Scheduler& scheduler, sim::Network& network, Options options,
            sim::EndpointId phb, EventFactory factory,
            PublisherObserver* observer = nullptr);

  /// Starts / stops the timed publishing loop.
  void start();
  void stop() { running_ = false; }

  /// Publishes one event immediately (manual mode or extra traffic).
  void publish(matching::EventDataPtr event);

  [[nodiscard]] std::uint64_t published() const { return next_seq_ - 1; }
  [[nodiscard]] std::uint64_t acked() const { return acked_; }
  [[nodiscard]] std::size_t unacked() const { return pending_.size(); }

 protected:
  void handle(sim::EndpointId from, const Msg& msg) override;

 private:
  void tick();
  void retry_pending();
  [[nodiscard]] std::uint64_t acked_below() const;

  Options options_;
  sim::EndpointId phb_;
  EventFactory factory_;
  PublisherObserver* observer_;
  bool running_ = false;

  struct Pending {
    matching::EventDataPtr event;
    SimTime first_sent;
    SimTime last_sent;
  };
  std::uint64_t next_seq_ = 1;
  std::uint64_t acked_ = 0;
  std::map<std::uint64_t, Pending> pending_;
};

}  // namespace gryphon::core
