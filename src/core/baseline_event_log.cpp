#include "core/baseline_event_log.hpp"

#include "core/event_codec.hpp"
#include "util/assert.hpp"

namespace gryphon::core {

void PerSubscriberEventLog::register_subscriber(SubscriberId s) {
  GRYPHON_CHECK(!subs_.contains(s));
  subs_.emplace(
      s, PerSub{volume_.open_stream("sublog:" + std::to_string(s.value())), {}});
}

void PerSubscriberEventLog::log_event(Tick tick, const matching::EventDataPtr& event,
                                      const std::vector<SubscriberId>& matching) {
  // The full event (headers + payload) is written once per matching
  // subscriber — the redundancy the PFS design eliminates.
  const auto record =
      encode_logged_event({tick, PublisherId{0}, 0, event}, volume_.acquire_buffer());
  for (SubscriberId s : matching) {
    auto it = subs_.find(s);
    GRYPHON_CHECK_MSG(it != subs_.end(), "unregistered subscriber " << s);
    auto copy = volume_.acquire_buffer();
    copy.assign(record.begin(), record.end());
    const auto idx = volume_.append(it->second.stream, std::move(copy));
    it->second.retained.emplace_back(tick, idx);
    ++records_;
    bytes_ += record.size();
  }
}

void PerSubscriberEventLog::ack(SubscriberId s, Tick tick) {
  auto it = subs_.find(s);
  GRYPHON_CHECK(it != subs_.end());
  storage::LogIndex chop_to = storage::kNoIndex;
  auto& retained = it->second.retained;
  while (!retained.empty() && retained.front().first <= tick) {
    chop_to = retained.front().second;
    retained.pop_front();
  }
  if (chop_to != storage::kNoIndex) volume_.chop(it->second.stream, chop_to);
}

}  // namespace gryphon::core
