#include "core/child_stream.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace gryphon::core {

using routing::KnowledgeItem;
using routing::TickValue;

std::vector<KnowledgeItem> filter_items(const std::vector<KnowledgeItem>& items,
                                        const matching::SubscriptionIndex* filter) {
  std::vector<KnowledgeItem> out;
  out.reserve(items.size());
  auto push = [&out](KnowledgeItem item) {
    if (!out.empty() && item.value != TickValue::kD &&
        out.back().value == item.value && out.back().range.to + 1 == item.range.from) {
      out.back().range.to = item.range.to;  // merge adjacent S/S or L/L
      return;
    }
    out.push_back(std::move(item));
  };
  for (const auto& item : items) {
    if (item.value == TickValue::kD && filter != nullptr &&
        !filter->matches_any(*item.event)) {
      push({TickValue::kS, item.range, nullptr});
    } else {
      push(item);
    }
  }
  return out;
}

std::vector<KnowledgeItem> ChildStream::on_items(
    const std::vector<KnowledgeItem>& items) {
  std::vector<KnowledgeItem> out;
  Tick max_end = sent_upto_;
  for (const auto& item : items) {
    const TickRange r = item.range;
    max_end = std::max(max_end, r.to);
    if (item.value == TickValue::kD) {
      if (r.from > sent_upto_ || pending_nacks_.contains(r.from)) {
        out.push_back(item);
        pending_nacks_.subtract(r);
      }
      continue;
    }
    // S/L range: the child wants the pending sub-ranges plus the fresh tail.
    IntervalSet wanted;
    for (const TickRange& p : pending_nacks_.intersection(r.from, r.to)) wanted.add(p);
    if (r.to > sent_upto_) wanted.add(std::max(r.from, sent_upto_ + 1), r.to);
    for (const TickRange& w : wanted.ranges()) {
      out.push_back({item.value, w, nullptr});
      pending_nacks_.subtract(w);
    }
  }
  sent_upto_ = max_end;
  return out;
}

ChildStream::NackOutcome ChildStream::on_nack(const std::vector<TickRange>& ranges,
                                              const routing::TickMap& cache) {
  NackOutcome outcome;
  for (const TickRange& r : ranges) {
    GRYPHON_CHECK(r.from <= r.to);
    // Serve the parts the cache knows; everything else becomes pending.
    IntervalSet known;
    for (const auto& item : cache.items(r.from, r.to)) {
      outcome.respond.push_back(item);
      known.add(item.range);
    }
    for (const TickRange& q : known.complement_within(r.from, r.to)) {
      pending_nacks_.add(q);
      outcome.unknown.push_back(q);
    }
  }
  return outcome;
}

}  // namespace gryphon::core
