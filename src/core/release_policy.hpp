// Early-release policies (paper §3).
//
// The release protocol gives the pubend two aggregated timestamps:
//   Tr(p) = min released over all SHBs   — everyone has acknowledged
//   Td(p) = min latestDelivered over all SHBs — every constream has passed
// Ticks <= Tr are always releasable. A policy may additionally release
// ticks in (Tr, Td] — never beyond Td, so connected non-catchup subscribers
// never receive gap messages.
#pragma once

#include <algorithm>
#include <memory>

#include "util/time.hpp"

namespace gryphon::core {

class ReleasePolicy {
 public:
  virtual ~ReleasePolicy() = default;

  /// Highest tick that may be converted to L, given Tr, Td and the pubend's
  /// current time T. Must return a value <= Td and >= Tr.
  [[nodiscard]] virtual Tick release_upto(Tick tr, Tick td, Tick t) const = 0;
};

/// No early release: only fully acknowledged ticks are discarded. A
/// misbehaving disconnected subscriber pins storage forever.
class NoEarlyReleasePolicy final : public ReleasePolicy {
 public:
  [[nodiscard]] Tick release_upto(Tick tr, Tick /*td*/, Tick /*t*/) const override {
    return tr;
  }
};

/// The paper's example policy: the pubend retains at most maxRetain(p) worth
/// of ticks beyond what every constream has delivered. Formally a tick t' is
/// released when  t' <= Tr  or  (t' <= Td and T - t' > maxRetain).
class MaxRetainPolicy final : public ReleasePolicy {
 public:
  explicit MaxRetainPolicy(Tick max_retain_ticks) : max_retain_(max_retain_ticks) {}

  [[nodiscard]] Tick release_upto(Tick tr, Tick td, Tick t) const override {
    return std::max(tr, std::min(td, t - max_retain_ - 1));
  }

  [[nodiscard]] Tick max_retain() const { return max_retain_; }

 private:
  Tick max_retain_;
};

using ReleasePolicyPtr = std::shared_ptr<const ReleasePolicy>;

}  // namespace gryphon::core
