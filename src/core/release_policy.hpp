// Early-release policies (paper §3).
//
// The release protocol gives the pubend two aggregated timestamps:
//   Tr(p) = min released over all SHBs   — everyone has acknowledged
//   Td(p) = min latestDelivered over all SHBs — every constream has passed
// Ticks <= Tr are always releasable. A policy may additionally release
// ticks in (Tr, Td] — never beyond Td, so connected non-catchup subscribers
// never receive gap messages.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>

#include "util/assert.hpp"
#include "util/time.hpp"

namespace gryphon::core {

class ReleasePolicy {
 public:
  virtual ~ReleasePolicy() = default;

  /// Highest tick that may be converted to L, given Tr, Td and the pubend's
  /// current time T. Must return a value <= Td and >= Tr.
  [[nodiscard]] virtual Tick release_upto(Tick tr, Tick td, Tick t) const = 0;

  /// Storage-pressure feed: the hosting broker reports its event-log live
  /// bytes before each release application. Ignored by the static policies;
  /// AdaptiveRetainPolicy folds it into its watermark state.
  virtual void observe_live_bytes(std::uint64_t /*live_bytes*/) {}

  /// Degradation pressure in [0, 1] (the pubend.retain_pressure gauge):
  /// 0 = full retention, 1 = retention shrunk all the way to its floor.
  [[nodiscard]] virtual double pressure() const { return 0.0; }
};

/// No early release: only fully acknowledged ticks are discarded. A
/// misbehaving disconnected subscriber pins storage forever.
class NoEarlyReleasePolicy final : public ReleasePolicy {
 public:
  [[nodiscard]] Tick release_upto(Tick tr, Tick /*td*/, Tick /*t*/) const override {
    return tr;
  }
};

/// The paper's example policy: the pubend retains at most maxRetain(p) worth
/// of ticks beyond what every constream has delivered. Formally a tick t' is
/// released when  t' <= Tr  or  (t' <= Td and T - t' > maxRetain).
class MaxRetainPolicy final : public ReleasePolicy {
 public:
  explicit MaxRetainPolicy(Tick max_retain_ticks) : max_retain_(max_retain_ticks) {}

  [[nodiscard]] Tick release_upto(Tick tr, Tick td, Tick t) const override {
    return std::max(tr, std::min(td, t - max_retain_ - 1));
  }

  [[nodiscard]] Tick max_retain() const { return max_retain_; }

 private:
  Tick max_retain_;
};

/// Storage-pressure degradation: maxRetain shrinks toward Td when the
/// hosting broker's event-log live bytes cross a high watermark, and relaxes
/// back once they fall below a low watermark (hysteresis, so retention does
/// not flap while the log oscillates around the boundary).
///
/// Between the watermarks the effective retention ramps linearly from
/// max_retain_ticks down toward min_retain_ticks; once the high watermark is
/// crossed it is pinned at the floor until bytes drop below the low
/// watermark again. Shrinking retention past a straggler's catchup position
/// trades catchup completeness for bounded storage: the straggler receives
/// gap messages for the released span, which the delivery contract already
/// permits (it is exactly the paper's maxRetain degradation, applied
/// adaptively). Connected non-catchup subscribers are still never gapped —
/// release never passes Td.
class AdaptiveRetainPolicy final : public ReleasePolicy {
 public:
  struct Options {
    /// Retention under no storage pressure (a plain MaxRetainPolicy).
    Tick max_retain_ticks = 30'000;
    /// Retention floor under full pressure (release chases Td this closely).
    Tick min_retain_ticks = 1'000;
    /// Live bytes at which retention is pinned at the floor (engaged).
    std::uint64_t high_watermark_bytes = 4u << 20;
    /// Live bytes below which an engaged policy relaxes back to max.
    std::uint64_t low_watermark_bytes = 2u << 20;
  };

  explicit AdaptiveRetainPolicy(Options options) : opt_(options) {
    GRYPHON_CHECK(opt_.min_retain_ticks >= 0 &&
                  opt_.max_retain_ticks >= opt_.min_retain_ticks);
    GRYPHON_CHECK(opt_.low_watermark_bytes <= opt_.high_watermark_bytes);
  }

  [[nodiscard]] Tick release_upto(Tick tr, Tick td, Tick t) const override {
    return std::max(tr, std::min(td, t - effective_retain() - 1));
  }

  void observe_live_bytes(std::uint64_t live_bytes) override {
    if (engaged_) {
      if (live_bytes < opt_.low_watermark_bytes) engaged_ = false;
    } else if (live_bytes >= opt_.high_watermark_bytes) {
      engaged_ = true;
    }
    if (engaged_) {
      pressure_ = 1.0;
    } else if (live_bytes <= opt_.low_watermark_bytes) {
      pressure_ = 0.0;
    } else {
      const auto span =
          static_cast<double>(opt_.high_watermark_bytes - opt_.low_watermark_bytes);
      pressure_ = static_cast<double>(live_bytes - opt_.low_watermark_bytes) / span;
    }
  }

  [[nodiscard]] double pressure() const override { return pressure_; }

  [[nodiscard]] Tick effective_retain() const {
    const auto shrink = static_cast<Tick>(
        pressure_ * static_cast<double>(opt_.max_retain_ticks - opt_.min_retain_ticks));
    return opt_.max_retain_ticks - shrink;
  }

  [[nodiscard]] bool engaged() const { return engaged_; }
  [[nodiscard]] const Options& options() const { return opt_; }

 private:
  Options opt_;
  bool engaged_ = false;
  double pressure_ = 0.0;
};

/// Non-const: AdaptiveRetainPolicy consumes a live-bytes feed from the
/// hosting broker; the static policies simply ignore it.
using ReleasePolicyPtr = std::shared_ptr<ReleasePolicy>;

}  // namespace gryphon::core
