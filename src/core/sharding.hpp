// Subscriber-id hash sharding, shared by the PFS log streams and the SHB
// session table (DESIGN.md §4.8).
//
// Both subsystems must agree on the mapping: a subscriber's PFS records,
// back-pointer chain, durable metadata rows and session state all live in
// the shard this function names, so per-shard work (catchup admission,
// retention minima, record fan-out) never consults another shard. The hash
// is a full-avalanche mix (splitmix64) rather than `id % shards` so the
// sequential id blocks the harness allocates spread evenly.
//
// One shard is the configured default and is special: the mapping is the
// constant 0 and every on-disk name/key collapses to the unsharded spelling,
// keeping single-shard deployments bit-identical with the pre-sharding
// layout (and its WALs recoverable either way).
#pragma once

#include <cstddef>
#include <cstdint>

#include "util/ids.hpp"

namespace gryphon::core {

[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

[[nodiscard]] constexpr std::size_t subscriber_shard(SubscriberId s,
                                                     std::size_t shards) {
  if (shards <= 1) return 0;
  return static_cast<std::size_t>(splitmix64(s.value()) % shards);
}

}  // namespace gryphon::core
