// Per-(child link, pubend) downstream stream state, shared by the PHB and
// intermediate brokers.
//
// Two flows reach a child: the fresh in-order stream (everything past
// sent_upto) and responses to the child's nacks (pending_nacks). on_items()
// routes incoming/locally-generated knowledge into both, so a nack response
// fetched from upstream for one child is forwarded to every child that is
// curious about it — the nack-consolidation fan-out of paper §3.
#pragma once

#include <vector>

#include "matching/subscription_index.hpp"
#include "routing/tick_map.hpp"
#include "util/interval_set.hpp"
#include "util/time.hpp"

namespace gryphon::core {

/// Converts items for a downstream link: D events that match no subscription
/// in `filter` become S (content filtering at interior nodes); adjacent
/// S/S and L/L ranges are merged. A null filter forwards everything.
[[nodiscard]] std::vector<routing::KnowledgeItem> filter_items(
    const std::vector<routing::KnowledgeItem>& items,
    const matching::SubscriptionIndex* filter);

class ChildStream {
 public:
  explicit ChildStream(Tick start = kTickZero) : sent_upto_(start) {}

  [[nodiscard]] Tick sent_upto() const { return sent_upto_; }

  /// Child (re)connected: resume the fresh stream from `resume`, dropping
  /// stale curiosity.
  void reset(Tick resume) {
    sent_upto_ = resume;
    pending_nacks_.clear();
  }

  /// Routes knowledge (tick-ordered items) to this child: returns the parts
  /// it should receive — nack responses plus fresh stream past sent_upto —
  /// and advances sent_upto/pending accordingly.
  [[nodiscard]] std::vector<routing::KnowledgeItem> on_items(
      const std::vector<routing::KnowledgeItem>& items);

  struct NackOutcome {
    /// Items servable right now from the local cache.
    std::vector<routing::KnowledgeItem> respond;
    /// Ranges unknown locally; recorded pending here, to be consolidated
    /// upstream by the caller.
    std::vector<TickRange> unknown;
  };

  /// Child nacked `ranges`; serve what `cache` knows, remember the rest.
  [[nodiscard]] NackOutcome on_nack(const std::vector<TickRange>& ranges,
                                    const routing::TickMap& cache);

  /// Records curiosity without serving (authoritative-only nacks passing
  /// through: the response from upstream will be routed here).
  void add_pending(TickRange r) { pending_nacks_.add(r); }

  [[nodiscard]] const IntervalSet& pending_nacks() const { return pending_nacks_; }

  /// Release-protocol values last reported by this child.
  Tick released = kTickZero;
  Tick latest_delivered = kTickZero;

 private:
  Tick sent_upto_;
  IntervalSet pending_nacks_;
};

}  // namespace gryphon::core
