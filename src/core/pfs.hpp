// Persistent Filtering Subsystem (paper §4.2).
//
// Stores, per pubend, which timestamps matched which durable subscribers, so
// a reconnecting subscriber recovers the *positions* of its missed events
// without refiltering them. One Log Volume stream per pubend; one record per
// timestamp that matched >= 1 subscriber:
//
//   record = { tick range, [(subscriber, prev-index-of-that-subscriber)] }
//
// i.e. the paper's 8 + 16*n bytes for a precise (single-tick) record.
// Timestamps with no matching subscriber write nothing (they are implicitly
// S for everyone) — this cross-subscriber compaction is what makes the PFS
// ~25x cheaper than logging events per subscriber.
//
// PRECISION (paper §4.2): "A precise PFS implementation stores a Q tick for
// subscriber s only if there is an event at that timestamp which matches the
// subscriber. An imprecise implementation may represent some S ticks as Q,
// which does not affect correctness... It can be used to trade off PFS write
// performance with respect to the cost of retrieving and refiltering
// unnecessary events." Setting imprecise_batch > 1 coalesces that many
// matched timestamps into ONE record covering their whole tick range with
// the UNION of their subscriber lists — fewer, denser records; readers see
// coarser Q ranges and refilter the extras. Pending batches are flushed by
// sync(), so a range never spans more than one sync interval.
//
// Reads walk a subscriber's back-pointer chain from lastIndex(s) down to the
// requested start, filling a bounded buffer; S ticks between the returned Q
// ranges are implicit. Metadata (lastTimestamp, lastIndex(s), durable scan
// position) lives in database tables and is re-synchronized on recovery by a
// forward scan of the durable log suffix.
//
// SHARDING (DESIGN.md §4.8): with `shards` > 1 each pubend keeps one log
// stream *per subscriber-id-hash shard* and an append splits its matching
// list into one record per non-empty shard. A subscriber's whole chain —
// records, back-pointers, lastIndex rows — lives in its shard, so reads,
// recovery scans and fan-out accounting touch one shard's state only, and
// no per-subscriber map scales with the full population. Shard 0 keeps the
// unsharded stream name and metadata keys, so `shards == 1` (the default)
// is bit-identical with the pre-sharding layout.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <set>
#include <unordered_map>
#include <vector>

#include "core/config.hpp"
#include "core/node_resources.hpp"
#include "storage/log_volume.hpp"
#include "util/ids.hpp"
#include "util/interval_set.hpp"
#include "util/time.hpp"

namespace gryphon::core {

class PersistentFilteringSubsystem {
 public:
  PersistentFilteringSubsystem(NodeResources& resources, const CostModel& costs,
                               std::size_t shards = 1);

  /// Opens (or reopens) the per-pubend log streams and loads + repairs
  /// metadata from the database (recovery = forward scan of the durable
  /// suffix past the last committed metadata snapshot).
  void open(const std::vector<PubendId>& pubends);

  /// Accepts one filtering fact: `tick` matched exactly `matching` (sorted,
  /// non-empty); `tick` must exceed last_accepted(pubend). A precise PFS
  /// writes one record now; an imprecise one may buffer and coalesce.
  void append(PubendId pubend, Tick tick, const std::vector<SubscriberId>& matching);

  /// Requests durability of all appends so far (flushing any imprecise
  /// batch); on_durable fires when the covering barrier completes.
  void sync(std::function<void()> on_durable);

  /// Latest accepted / record-covered / durable filtering timestamp.
  [[nodiscard]] Tick last_accepted(PubendId pubend) const;
  [[nodiscard]] Tick last_timestamp(PubendId pubend) const;
  [[nodiscard]] Tick durable_timestamp(PubendId pubend) const;

  /// Reads must not claim silence past this point: facts at later ticks may
  /// still be sitting in an unflushed imprecise batch. kTickInfinity when
  /// nothing is buffered.
  [[nodiscard]] Tick read_coverage_limit(PubendId pubend) const;

  struct ReadResult {
    /// Q ranges for the subscriber, ascending, within (from, covered_upto].
    /// Precise mode yields single-tick ranges (exactly the missed events);
    /// imprecise mode yields coarser ranges the caller must refilter.
    std::vector<TickRange> q_ranges;
    /// Knowledge is complete in (complete_from, covered_upto]: every tick
    /// there not covered by q_ranges is S. complete_from > from only when
    /// the walk was cut short by a chopped prefix.
    Tick complete_from = 0;
    Tick covered_upto = 0;
    /// True when the walk reached lastTimestamp (the §5.3 "87% of reads"
    /// statistic); false when the buffer limit truncated the result.
    bool reached_last = false;
    /// Captured at walk time: silence past covered_upto may be inferred only
    /// up to here (an unflushed imprecise batch may hold later facts; a
    /// batch flushing while the disk read is in flight must not be skipped).
    Tick safe_extension_upto = kTickZero;
    std::size_t records_traversed = 0;
    std::size_t bytes_read = 0;
  };

  /// Batch read: Q ranges for `subscriber` in (from, lastTimestamp], capped
  /// at `max_positions` covered ticks (oldest first). Asynchronous: costs
  /// one disk read sized by the records traversed.
  void read(PubendId pubend, SubscriberId subscriber, Tick from,
            std::size_t max_positions, std::function<void(ReadResult)> done);

  /// Discards records entirely at or below `upto` (everything released).
  void chop_upto(PubendId pubend, Tick upto);

  /// Dirty metadata rows for the SHB's periodic database commit. Only
  /// durable (synced) state is ever exposed here, so recovery never sees a
  /// metadata snapshot pointing past the durable log.
  [[nodiscard]] std::vector<storage::Database::Put> dirty_metadata();

  // --- statistics (microbenchmark / Fig. 8 analysis) ---
  [[nodiscard]] std::uint64_t records_written() const { return records_written_; }
  [[nodiscard]] std::uint64_t payload_bytes_written() const { return bytes_written_; }
  [[nodiscard]] std::uint64_t reads_issued() const { return reads_; }
  [[nodiscard]] std::uint64_t reads_reached_last() const { return reads_reached_last_; }

  /// Paper §4.2 accounting constants: a single-tick record is charged
  /// kRecordFixedBytes + kPerSubscriberBytes·n ("8 + 16·n bytes per matched
  /// timestamp"); an imprecise record pays kRangeRecordFixedBytes for its
  /// two timestamps. The wire encoding must fit these budgets — static-
  /// asserted next to encode() in pfs.cpp, unit-tested in test_pfs.cpp —
  /// so format drift fails the build, not the Fig. 8 byte counts.
  static constexpr std::size_t kRecordFixedBytes = 8;        // one timestamp
  static constexpr std::size_t kRangeRecordFixedBytes = 16;  // two timestamps
  static constexpr std::size_t kPerSubscriberBytes = 16;     // id + back-pointer

  /// Per-record byte size as the paper counts it (single-tick record).
  static constexpr std::size_t record_bytes(std::size_t n_subscribers) {
    return kRecordFixedBytes + kPerSubscriberBytes * n_subscribers;
  }
  /// Imprecise records carry a range (two timestamps).
  static constexpr std::size_t range_record_bytes(std::size_t n_subscribers,
                                                  bool ranged) {
    return (ranged ? kRangeRecordFixedBytes : kRecordFixedBytes) +
           kPerSubscriberBytes * n_subscribers;
  }

  [[nodiscard]] std::size_t shards() const { return shards_; }

 private:
  /// Per-(pubend, shard) log stream + chain state: everything keyed by a
  /// subscriber lives here, in the shard its id hashes to.
  struct Shard {
    storage::LogStreamId stream = 0;
    Tick last_timestamp = kTickZero;  // newest tick covered by a record here
    Tick chopped_upto = kTickZero;    // everything at or below was chopped
    std::unordered_map<SubscriberId, storage::LogIndex> last_index;
    // Durable snapshot (advanced at sync completion) + DB dirty tracking.
    Tick durable_timestamp = kTickZero;
    storage::LogIndex durable_scan_index = storage::kNoIndex;
    std::unordered_map<SubscriberId, storage::LogIndex> durable_last_index;
    bool meta_dirty = false;
  };

  struct PerPubend {
    PubendId id{};
    Tick last_accepted = kTickZero;   // newest fact handed to append()
    Tick last_timestamp = kTickZero;  // max over shards
    Tick durable_timestamp = kTickZero;
    std::vector<Shard> shards;
    // Imprecise write batch (empty in precise mode), pubend-level: a flush
    // emits one record per shard with members in that shard.
    Tick batch_first = kTickZero;
    Tick batch_last = kTickZero;
    std::size_t batch_count = 0;
    std::set<SubscriberId> batch_union;
  };

  struct Record {
    TickRange range{0, 0};
    std::vector<std::pair<SubscriberId, storage::LogIndex>> entries;
  };

  /// `reuse` (optional) is an empty buffer whose capacity is recycled.
  [[nodiscard]] static std::vector<std::byte> encode(const Record& r,
                                                     std::vector<std::byte> reuse = {});
  [[nodiscard]] static Record decode(const std::vector<std::byte>& bytes);

  void flush_batch(PerPubend& state);
  void write_record(PerPubend& state, Shard& shard, TickRange range,
                    const std::vector<SubscriberId>& matching);
  /// Splits `matching` by shard into split_scratch_ and writes one record
  /// per non-empty shard (the single-shard path bypasses the split).
  void write_sharded(PerPubend& state, TickRange range,
                     const std::vector<SubscriberId>& matching);

  PerPubend& per(PubendId p);
  [[nodiscard]] const PerPubend& per(PubendId p) const;

  NodeResources& res_;
  const CostModel& costs_;
  std::size_t shards_;
  std::map<PubendId, PerPubend> pubends_;
  std::vector<std::vector<SubscriberId>> split_scratch_;

  std::uint64_t records_written_ = 0;
  std::uint64_t bytes_written_ = 0;
  std::uint64_t reads_ = 0;
  std::uint64_t reads_reached_last_ = 0;

  // Registry slots (cumulative per node; resolved once in the constructor).
  MetricsRegistry::Counter* m_records_written_;
  MetricsRegistry::Counter* m_bytes_written_;
  MetricsRegistry::Counter* m_reads_;
};

}  // namespace gryphon::core
