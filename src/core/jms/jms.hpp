// JMS-flavored facade (paper: "For programmers writing to the Java Message
// Service (JMS) API, we have also implemented JMS durable subscriptions on
// top of our model").
//
// Thin sugar over the native clients, shaped like the JMS 1.x object model:
//
//   ConnectionFactory factory(scheduler, network, phb, shb);
//   auto connection = factory.create_connection();
//   auto session    = connection->create_session(AcknowledgeMode::kAutoAcknowledge);
//   auto producer   = session->create_producer(Topic{PubendId{1}});
//   producer->send(session->create_message({{"symbol", Value("IBM")}}, "payload"));
//   auto subscriber = session->create_durable_subscriber(
//       "trades", "symbol == 'IBM'", [](const Message& m) { ... });
//
// Durable subscribers created here run in auto-acknowledge mode: the SHB
// owns their checkpoint token in its database tables and commits it per
// consumed message (§5.2). kClientCt mode uses the paper's native model
// (client-held CT) behind the same API.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/publisher_client.hpp"
#include "core/subscriber_client.hpp"

namespace gryphon::core::jms {

/// A destination: one of the PHB's publishing endpoints.
struct Topic {
  PubendId pubend;
};

/// A received message, JMS-style: typed properties + text body.
class Message {
 public:
  Message(matching::EventDataPtr data, PubendId pubend, Tick tick)
      : data_(std::move(data)), pubend_(pubend), tick_(tick) {}

  [[nodiscard]] const matching::Value* property(const std::string& name) const {
    return data_->attribute(name);
  }
  [[nodiscard]] std::string_view text() const { return data_->payload(); }
  [[nodiscard]] PubendId destination() const { return pubend_; }
  /// The provider-assigned message id (the pubend timestamp).
  [[nodiscard]] Tick message_id() const { return tick_; }
  [[nodiscard]] const matching::EventDataPtr& raw() const { return data_; }

 private:
  matching::EventDataPtr data_;
  PubendId pubend_;
  Tick tick_;
};

using MessageListener = std::function<void(const Message&)>;

enum class AcknowledgeMode {
  /// Broker-held CT, committed per consumed message (paper §5.2). The most
  /// severe mode: throughput is bounded by database commit throughput.
  kAutoAcknowledge,
  /// The paper's native model: the client holds its checkpoint token and
  /// acknowledges periodically. Faster; survives broker failures without
  /// the redelivery window auto-ack has.
  kClientCt,
};

class Session;

class MessageProducer {
 public:
  MessageProducer(Session& session, Topic topic);

  /// Sends an event; returns once handed to the provider (delivery to the
  /// PHB is at-least-once with provider-side dedup).
  void send(std::map<std::string, matching::Value> properties, std::string text,
            std::size_t padded_size = 0);

  [[nodiscard]] std::uint64_t sent() const;

 private:
  Session& session_;
  Topic topic_;
  std::unique_ptr<Publisher> publisher_;
};

class TopicSubscriber {
 public:
  TopicSubscriber(Session& session, SubscriberId id, std::string selector,
                  AcknowledgeMode mode, MessageListener listener);
  ~TopicSubscriber();  // out of line: ListenerAdapter is incomplete here

  /// JMS connection-level start/stop maps to connect/disconnect — the
  /// subscription stays durable either way.
  void start();
  void stop();
  /// Destroys the durable subscription (JMS unsubscribe()).
  void unsubscribe();

  [[nodiscard]] std::uint64_t received() const { return client_->events_received(); }
  [[nodiscard]] DurableSubscriber& client() { return *client_; }

 private:
  class ListenerAdapter;
  std::unique_ptr<ListenerAdapter> adapter_;
  std::unique_ptr<DurableSubscriber> client_;
};

class Session {
 public:
  Session(sim::Scheduler& scheduler, sim::Network& network, sim::EndpointId phb,
          sim::EndpointId shb, AcknowledgeMode mode);

  [[nodiscard]] std::unique_ptr<MessageProducer> create_producer(Topic topic) {
    return std::make_unique<MessageProducer>(*this, topic);
  }

  /// Creates (or re-attaches to) a durable subscription. The numeric id
  /// plays the role of JMS's (client id, subscription name) pair.
  [[nodiscard]] std::unique_ptr<TopicSubscriber> create_durable_subscriber(
      SubscriberId id, const std::string& selector, MessageListener listener);

  [[nodiscard]] sim::Scheduler& scheduler() { return sim_; }
  [[nodiscard]] sim::Network& network() { return net_; }
  [[nodiscard]] sim::EndpointId phb() const { return phb_; }
  [[nodiscard]] sim::EndpointId shb() const { return shb_; }
  [[nodiscard]] AcknowledgeMode mode() const { return mode_; }

 private:
  sim::Scheduler& sim_;
  sim::Network& net_;
  sim::EndpointId phb_;
  sim::EndpointId shb_;
  AcknowledgeMode mode_;
};

class Connection {
 public:
  Connection(sim::Scheduler& scheduler, sim::Network& network, sim::EndpointId phb,
             sim::EndpointId shb)
      : sim_(scheduler), net_(network), phb_(phb), shb_(shb) {}

  [[nodiscard]] std::unique_ptr<Session> create_session(AcknowledgeMode mode) {
    return std::make_unique<Session>(sim_, net_, phb_, shb_, mode);
  }

 private:
  sim::Scheduler& sim_;
  sim::Network& net_;
  sim::EndpointId phb_;
  sim::EndpointId shb_;
};

class ConnectionFactory {
 public:
  ConnectionFactory(sim::Scheduler& scheduler, sim::Network& network,
                    sim::EndpointId phb, sim::EndpointId shb)
      : sim_(scheduler), net_(network), phb_(phb), shb_(shb) {}

  [[nodiscard]] std::unique_ptr<Connection> create_connection() {
    return std::make_unique<Connection>(sim_, net_, phb_, shb_);
  }

 private:
  sim::Scheduler& sim_;
  sim::Network& net_;
  sim::EndpointId phb_;
  sim::EndpointId shb_;
};

}  // namespace gryphon::core::jms
