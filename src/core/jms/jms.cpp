#include "core/jms/jms.hpp"

#include "core/client_observer.hpp"

namespace gryphon::core::jms {

namespace {
/// Producer/subscriber ids in the JMS layer share the client id spaces with
/// native clients; JMS producers take ids from a high block to stay clear of
/// hand-assigned ones.
std::uint32_t next_producer_id = 1'000'000;
}  // namespace

Session::Session(sim::Scheduler& scheduler, sim::Network& network, sim::EndpointId phb,
                 sim::EndpointId shb, AcknowledgeMode mode)
    : sim_(scheduler), net_(network), phb_(phb), shb_(shb), mode_(mode) {}

// ----------------------------------------------------------- MessageProducer

MessageProducer::MessageProducer(Session& session, Topic topic)
    : session_(session), topic_(topic) {
  Publisher::Options options;
  options.id = PublisherId{next_producer_id++};
  options.pubend = topic.pubend;
  options.interval = Publisher::Options::kManualOnly;
  publisher_ = std::make_unique<Publisher>(
      session_.scheduler(), session_.network(), options, session_.phb(),
      [](std::uint64_t) -> matching::EventDataPtr {
        GRYPHON_CHECK_MSG(false, "JMS producers publish explicitly");
        return nullptr;
      });
  session_.network().connect(publisher_->endpoint(), session_.phb());
}

void MessageProducer::send(std::map<std::string, matching::Value> properties,
                           std::string text, std::size_t padded_size) {
  publisher_->publish(std::make_shared<matching::EventData>(
      std::move(properties), std::move(text), padded_size));
}

std::uint64_t MessageProducer::sent() const { return publisher_->published(); }

// ----------------------------------------------------------- TopicSubscriber

/// Bridges the native observer callbacks onto the JMS MessageListener.
class TopicSubscriber::ListenerAdapter final : public SubscriberObserver {
 public:
  explicit ListenerAdapter(MessageListener listener) : listener_(std::move(listener)) {}

  void on_event(SubscriberId, PubendId p, Tick t, const matching::EventDataPtr& data,
                bool, SimTime) override {
    if (listener_) listener_(Message(data, p, t));
  }

 private:
  MessageListener listener_;
};

TopicSubscriber::TopicSubscriber(Session& session, SubscriberId id,
                                 std::string selector, AcknowledgeMode mode,
                                 MessageListener listener)
    : adapter_(std::make_unique<ListenerAdapter>(std::move(listener))) {
  DurableSubscriber::Options options;
  options.id = id;
  options.predicate = std::move(selector);
  options.jms_auto_ack = (mode == AcknowledgeMode::kAutoAcknowledge);
  client_ = std::make_unique<DurableSubscriber>(session.scheduler(), session.network(),
                                                options, session.shb(), adapter_.get());
  session.network().connect(client_->endpoint(), session.shb());
}

TopicSubscriber::~TopicSubscriber() = default;

void TopicSubscriber::start() { client_->connect(); }
void TopicSubscriber::stop() { client_->disconnect(); }
void TopicSubscriber::unsubscribe() { client_->unsubscribe(); }

std::unique_ptr<TopicSubscriber> Session::create_durable_subscriber(
    SubscriberId id, const std::string& selector, MessageListener listener) {
  return std::make_unique<TopicSubscriber>(*this, id, selector, mode_,
                                           std::move(listener));
}

}  // namespace gryphon::core::jms
