// Serialization of events for the PHB's persistent event log.
//
// A log record is {tick, publisher, seq, attributes, payload, padded size};
// recovery replays records to rebuild the pubend's D ladder and the
// per-publisher dedup table.
#pragma once

#include <cstdint>
#include <vector>

#include "matching/event.hpp"
#include "util/byte_buffer.hpp"
#include "util/ids.hpp"
#include "util/time.hpp"

namespace gryphon::core {

struct LoggedEvent {
  Tick tick = kTickZero;
  PublisherId publisher;
  std::uint64_t seq = 0;
  matching::EventDataPtr event;
};

/// `reuse` (optional) is an empty buffer whose capacity is recycled — pair
/// with LogVolume::acquire_buffer() to keep steady-state logging allocation-free.
[[nodiscard]] std::vector<std::byte> encode_logged_event(
    const LoggedEvent& e, std::vector<std::byte> reuse = {});
[[nodiscard]] LoggedEvent decode_logged_event(std::span<const std::byte> bytes);

// The event-data portion of a record — attributes then payload — shared by
// the persistent log format above and the wire codecs (src/wire/): one
// encoding of an event, on disk and on the wire.

void encode_event_data(BufWriter& w, const matching::EventData& e);

/// `owner` (optional) enables zero-copy decode: when non-null, the decoded
/// event's payload is a view into the reader's underlying bytes, kept alive
/// by `owner` (a received frame's arena). With a null owner the payload is
/// materialized — callers whose buffer dies before the event must pass
/// null (the WAL recovery scan does).
[[nodiscard]] matching::EventDataPtr decode_event_data(
    BufReader& r, const std::shared_ptr<const void>& owner = nullptr);

/// Exact byte count encode_event_data() produces. This differs from
/// EventData::encoded_size() (the cache/log *cost-model* size, which omits
/// count/tag/length framing): it is the measured wire size, and the wire
/// message wire_size() formulas are stated in terms of it.
[[nodiscard]] std::size_t encoded_event_bytes(const matching::EventData& e);

}  // namespace gryphon::core
