// Serialization of events for the PHB's persistent event log.
//
// A log record is {tick, publisher, seq, attributes, payload, padded size};
// recovery replays records to rebuild the pubend's D ladder and the
// per-publisher dedup table.
#pragma once

#include <cstdint>
#include <vector>

#include "matching/event.hpp"
#include "util/byte_buffer.hpp"
#include "util/ids.hpp"
#include "util/time.hpp"

namespace gryphon::core {

struct LoggedEvent {
  Tick tick = kTickZero;
  PublisherId publisher;
  std::uint64_t seq = 0;
  matching::EventDataPtr event;
};

/// `reuse` (optional) is an empty buffer whose capacity is recycled — pair
/// with LogVolume::acquire_buffer() to keep steady-state logging allocation-free.
[[nodiscard]] std::vector<std::byte> encode_logged_event(
    const LoggedEvent& e, std::vector<std::byte> reuse = {});
[[nodiscard]] LoggedEvent decode_logged_event(std::span<const std::byte> bytes);

}  // namespace gryphon::core
