// Publisher Hosting Broker.
//
// Hosts pubends: accepts publishes, logs each event once (group-committed),
// announces durable events/silence down the broker tree with per-link
// content filtering, serves nacks from the authoritative ladder, aggregates
// the release protocol, and applies the early-release policy.
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "core/broker.hpp"
#include "core/child_stream.hpp"
#include "core/pubend.hpp"
#include "matching/parser.hpp"
#include "matching/subscription_index.hpp"

namespace gryphon::core {

class PublisherHostingBroker final : public Broker {
 public:
  PublisherHostingBroker(NodeResources& resources, BrokerConfig config,
                         const std::vector<PubendId>& pubends,
                         ReleasePolicyPtr policy = std::make_shared<NoEarlyReleasePolicy>());

  /// Registers a downstream broker link (topology wiring; links themselves
  /// are created by the harness).
  void add_child(sim::EndpointId child);

  /// Starts timers (silence generation, release application). Call once
  /// after wiring, or after a restart recovery.
  void start();

  /// Restart path: rebuild pubends from the log, child subscription filters
  /// from the database.
  void recover();

  [[nodiscard]] Pubend& pubend(PubendId p);
  [[nodiscard]] std::vector<PubendId> pubend_ids() const;

  struct Stats {
    std::uint64_t publishes = 0;
    std::uint64_t duplicates = 0;
    std::uint64_t nacks_received = 0;
    std::uint64_t nack_response_events = 0;
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

 protected:
  void handle(sim::EndpointId from, const Msg& msg) override;
  [[nodiscard]] SimDuration cost_of(const Msg& msg) const override;

 private:
  struct Child {
    sim::EndpointId endpoint;
    matching::SubscriptionIndex filter;
    std::map<PubendId, ChildStream> streams;
  };

  Child& child(sim::EndpointId ep);

  void on_publish(sim::EndpointId from, const PublishMsg& msg);
  void on_nack(sim::EndpointId from, const NackMsg& msg);
  void on_release_update(sim::EndpointId from, const ReleaseUpdateMsg& msg);
  void on_subscribe(sim::EndpointId from, const SubscribeMsg& msg);
  void on_unsubscribe(sim::EndpointId from, const UnsubscribeMsg& msg);
  void on_broker_resume(sim::EndpointId from, const BrokerResumeMsg& msg);

  /// Fans freshly announced knowledge out to every child.
  void fanout(PubendId p, const std::vector<routing::KnowledgeItem>& items);

  /// Sends items to one child, filtered and chunked.
  void send_items(Child& c, PubendId p, const std::vector<routing::KnowledgeItem>& items);

  /// Recomputes release mins for a pubend and feeds them to it.
  void refresh_release_mins(PubendId p);

  /// Persists one child subscription row (for restart).
  void persist_subscription(sim::EndpointId child, SubscriberId sub,
                            const std::string& predicate, bool add);

  std::map<PubendId, std::unique_ptr<Pubend>> pubends_;
  std::map<sim::EndpointId, Child> children_;
  ReleasePolicyPtr policy_;
  Stats stats_;

  // Registry slots, resolved once at construction (hot path = one add
  // through the pointer). The probes are broker-owned so a crash removes
  // their callbacks with the broker; the cumulative slots live on in the
  // node's registry.
  MetricsRegistry::Counter* m_publishes_;
  MetricsRegistry::Counter* m_duplicates_;
  MetricsRegistry::Counter* m_nacks_;
  MetricsRegistry::Counter* m_nack_events_served_;
  MetricsRegistry::Gauge* m_ack_floor_;
  Histogram* m_nack_span_;
  std::vector<MetricsRegistry::Probe> probes_;
};

}  // namespace gryphon::core
