// Intermediate broker (paper §3): a pure cache-and-relay node.
//
// Downstream: routes knowledge to children (content-filtered per link),
// serving nack responses from its volatile event cache. Upstream: forwards
// subscription changes, aggregates release mins, and *consolidates* nacks —
// overlapping curiosity from several children becomes one upstream nack, and
// the single response fans back out to every curious child. The cache is a
// TickMap with bounded span; losing cached knowledge never affects
// correctness, only where nacks must travel.
#pragma once

#include <map>
#include <vector>

#include "core/broker.hpp"
#include "core/child_stream.hpp"
#include "matching/parser.hpp"
#include "matching/subscription_index.hpp"
#include "routing/tick_map.hpp"

namespace gryphon::core {

class IntermediateBroker final : public Broker {
 public:
  IntermediateBroker(NodeResources& resources, BrokerConfig config,
                     const std::vector<PubendId>& pubends);

  void set_parent(sim::EndpointId parent) { parent_ = parent; }
  void add_child(sim::EndpointId child);

  /// Starts timers and performs the resume handshake with the parent.
  /// `fresh` distinguishes first boot (resume from stream start) from a
  /// restart (resume from the parent's head; children repair via nacks).
  void start(bool fresh = true);

  /// Restart path: reload child subscription filters; cache starts cold.
  void recover();

  [[nodiscard]] Tick cache_head(PubendId p) const { return per(p).cache.head(); }
  [[nodiscard]] std::size_t cached_events(PubendId p) const {
    return per(p).cache.retained_events();
  }

  struct Stats {
    std::uint64_t items_relayed = 0;
    std::uint64_t nacks_from_children = 0;
    std::uint64_t nacks_forwarded_upstream = 0;
    std::uint64_t nack_events_served_from_cache = 0;
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

 protected:
  void handle(sim::EndpointId from, const Msg& msg) override;
  [[nodiscard]] SimDuration cost_of(const Msg& msg) const override;

 private:
  struct Child {
    sim::EndpointId endpoint;
    matching::SubscriptionIndex filter;
    std::map<PubendId, ChildStream> streams;
  };

  struct PerPubend {
    routing::TickMap cache{kTickZero};
    IntervalSet upstream_pending;  // consolidated nacks awaiting response
  };

  Child& child(sim::EndpointId ep);
  PerPubend& per(PubendId p);
  [[nodiscard]] const PerPubend& per(PubendId p) const;

  void on_stream_data(const StreamDataMsg& msg);
  void on_nack(sim::EndpointId from, const NackMsg& msg);
  void on_release_update(sim::EndpointId from, const ReleaseUpdateMsg& msg);
  void on_broker_resume(sim::EndpointId from, const BrokerResumeMsg& msg);

  void send_items(Child& c, PubendId p, const std::vector<routing::KnowledgeItem>& items);
  void send_release_mins();
  void persist_subscription(sim::EndpointId child, SubscriberId sub,
                            const std::string& predicate, bool add);

  sim::EndpointId parent_ = 0;
  std::map<PubendId, PerPubend> pubends_;
  std::map<sim::EndpointId, Child> children_;
  /// Which child to route a pending SubscribeAck back to.
  std::map<SubscriberId, sim::EndpointId> subscribe_origin_;
  Stats stats_;

  // Registry slots, resolved once at construction.
  MetricsRegistry::Counter* m_items_relayed_;
  MetricsRegistry::Counter* m_nacks_from_children_;
  MetricsRegistry::Counter* m_nacks_consolidated_upstream_;
  MetricsRegistry::Counter* m_cache_hit_events_;
  MetricsRegistry::Counter* m_cache_miss_ticks_;
};

}  // namespace gryphon::core
