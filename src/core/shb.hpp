// Subscriber Hosting Broker (paper §4) — the paper's main contribution.
//
// Per pubend the SHB runs:
//   istream    — knowledge received from upstream plus consolidated
//                curiosity (nacks) for everything its consumers are missing;
//   constream  — ONE consolidated stream for all connected, caught-up
//                subscribers: delivers events in timestamp order, writes the
//                PFS filtering record for every matched tick (for ALL hosted
//                durable subscriptions, connected or not), generates
//                silences, and advances latestDelivered(p) once delivery is
//                enqueued AND the PFS record is durable;
//   catchup streams — one per (reconnecting subscriber, pubend): seeded from
//                PFS batch reads (Q at missed-event ticks, implicit S
//                between), nacked upstream under flow control, serving
//                events from the istream cache when possible, emitting gap
//                messages over L, and discarded at switchover back to the
//                constream.
//
// Durable state (database + log volume): subscription predicates,
// released(s,p), latestDelivered(p), PFS records + metadata, JMS-managed
// CTs. Everything else is rebuilt on restart; missed stream state is
// re-nacked from upstream (the Fig. 7 "constream nacking" phase).
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "core/broker.hpp"
#include "core/pfs.hpp"
#include "matching/parser.hpp"
#include "matching/subscription_index.hpp"
#include "routing/tick_map.hpp"

namespace gryphon::core {

class SubscriberHostingBroker final : public Broker {
 public:
  SubscriberHostingBroker(NodeResources& resources, BrokerConfig config,
                          const std::vector<PubendId>& pubends);

  void set_parent(sim::EndpointId parent) { parent_ = parent; }

  /// First boot: open a fresh PFS, start timers, resume from stream start.
  void start();

  /// Restart after a crash: reload durable state, rebuild the PFS metadata,
  /// re-announce subscriptions, resume from latestDelivered and re-nack the
  /// missed span (paper §5.3).
  void recover();

  // --- observability (sampled by the experiment harness) ---
  [[nodiscard]] Tick latest_delivered(PubendId p) const;
  [[nodiscard]] Tick released(PubendId p) const;
  [[nodiscard]] std::size_t catchup_stream_count() const;
  [[nodiscard]] std::size_t connected_subscribers() const;
  /// Admission control: streams actively catching up / waiting for a slot.
  [[nodiscard]] std::size_t catchup_active_count() const { return catchup_active_; }
  [[nodiscard]] std::size_t catchup_queue_depth() const { return catchup_queued_; }
  [[nodiscard]] PersistentFilteringSubsystem& pfs() { return pfs_; }

  struct Stats {
    std::uint64_t constream_deliveries = 0;
    std::uint64_t catchup_deliveries = 0;
    std::uint64_t silences_sent = 0;
    std::uint64_t gaps_sent = 0;
    std::uint64_t pfs_records = 0;
    std::uint64_t catchup_completions = 0;
    std::uint64_t nacks_sent_upstream = 0;
    std::uint64_t catchup_events_served_from_istream = 0;
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

  /// Fired when a subscriber leaves catchup mode for all pubends:
  /// (subscriber, reconnect time, completion time).
  std::function<void(SubscriberId, SimTime, SimTime)> on_catchup_complete;

 protected:
  void handle(sim::EndpointId from, const Msg& msg) override;
  [[nodiscard]] SimDuration cost_of(const Msg& msg) const override;

 private:
  // ---- per-(subscriber, pubend) catchup stream ----
  struct CatchupStream {
    explicit CatchupStream(Tick base)
        : map(base), delivered_upto(base), pfs_read_from(base), last_silence(base) {}

    routing::TickMap map;          // per-subscriber knowledge (from PFS + net)
    Tick delivered_upto;           // events delivered in order up to here
    IntervalSet outstanding;       // nacked (or istream-pending) Q ticks
    std::deque<Tick> unnacked_q;   // PFS-reported Q ticks awaiting the window
    Tick pfs_read_from;            // next PFS read position
    bool pfs_read_inflight = false;
    Tick last_silence;             // throttle catchup silence messages
    bool repump_scheduled = false;
    // Reconnect-anywhere (paper §1 feature 5): this SHB has no PFS history
    // for the subscriber (it migrated here), so instead of PFS batch reads
    // the stream *refilters* — it scans forward through the istream cache
    // and nacks the uncached remainder, evaluating the predicate on every
    // event that comes back. Strictly a performance difference; the
    // delivery contract is identical.
    bool refilter = false;
    Tick scan_cursor = 0;  // refiltering has covered (base, scan_cursor]
    /// Below this tick the istream's silence is not trustworthy for this
    /// subscriber (it predates the subscription reaching the pubend's
    /// filter): refiltering must ask upstream instead.
    Tick distrust_upto = kTickZero;
    /// Admission control (reconnect herds): a stream is inert — no PFS
    /// reads, no upstream nacks, no deliveries — until it holds one of the
    /// catchup_admission_limit active slots.
    bool admitted = true;
    /// Nack-retry backoff: consecutive unanswered retries / generation
    /// counter bumped on any response progress (resets the backoff).
    std::uint32_t nack_attempt = 0;
    std::uint64_t nack_progress = 0;
    bool nack_retry_scheduled = false;
  };

  struct SubscriberState {
    SubscriberId id{};
    std::string predicate_text;
    matching::PredicatePtr predicate;
    bool jms_auto_ack = false;
    bool connected = false;
    std::uint64_t session = 0;  // bumped per (dis)connect; stale sends drop
    sim::EndpointId client = 0;
    SimTime reconnect_time = 0;
    SimTime last_delivery = 0;
    // Client flow control (one bucket per subscriber, shared by all of its
    // catchup streams): refilled at catchup_rate_limit_eps.
    double catchup_tokens = 0.0;
    SimTime catchup_refill = 0;
    std::map<PubendId, Tick> released;       // released(s,p)
    std::map<PubendId, Tick> suppress_upto;  // constream join points
    std::map<PubendId, Tick> silence_sent_upto;
    std::map<PubendId, std::unique_ptr<CatchupStream>> catchup;
    // JMS auto-acknowledge: per-subscriber delivery gate + queue.
    std::deque<std::pair<PubendId, std::shared_ptr<const EventDeliveryMsg>>> jms_queue;
    bool jms_commit_inflight = false;
  };

  struct PerPubend {
    PubendId id{};
    routing::TickMap istream{kTickZero};
    IntervalSet upstream_pending;  // consolidated outstanding nacks
    Tick processed_upto = kTickZero;    // constream has matched/PFS'd/enqueued
    Tick latest_delivered = kTickZero;  // min(processed, PFS-durable); persisted
    std::deque<Tick> pending_pfs;       // PFS'd ticks awaiting durability
    /// Subscribers with an open catchup stream for this pubend; lets the
    /// constream trim / knowledge routing touch only catching-up sessions
    /// instead of scanning the whole hosted population.
    std::set<SubscriberId> catchup_subs;
    /// Per-shard cached min released(s,p) (DESIGN.md §4.8): computed_released
    /// recomputes only shards whose membership or released values changed, so
    /// the periodic release sweep is O(dirty shard) not O(population).
    mutable std::vector<Tick> shard_released_min;
    mutable std::vector<std::uint8_t> shard_released_dirty;
    /// Istream nack-retry backoff (mirrors CatchupStream's trio).
    std::uint32_t nack_attempt = 0;
    std::uint64_t nack_progress = 0;
    bool nack_retry_scheduled = false;
    /// Registry slot mirroring latest_delivered (figure benches plot it
    /// directly from the node registry); resolved at broker construction.
    MetricsRegistry::Gauge* g_latest_delivered = nullptr;
  };

  PerPubend& per(PubendId p);
  [[nodiscard]] const PerPubend& per(PubendId p) const;
  SubscriberState& sub(SubscriberId s);
  /// Shard-local lookup; nullptr when the subscriber is not hosted here.
  SubscriberState* try_sub(SubscriberId s);
  std::map<SubscriberId, SubscriberState>& shard_map(SubscriberId s);
  /// Visits every hosted subscription, shard by shard (id order within a
  /// shard; identical to the old flat-map order when pfs_shards == 1).
  template <typename F>
  void for_each_sub(F&& f) {
    for (auto& shard : sub_shards_) {
      for (auto& [sid, s] : shard) f(s);
    }
  }
  void mark_released_dirty(SubscriberId s, PubendId p);
  void mark_released_dirty_all(SubscriberId s);

  // message handlers
  void on_stream_data(const StreamDataMsg& msg);
  void on_connect(sim::EndpointId from, const ConnectMsg& msg);
  void on_disconnect(const DisconnectMsg& msg);
  void on_ack(const AckMsg& msg);
  void on_unsubscribe_req(const UnsubscribeReqMsg& msg);
  void on_jms_consumed(const JmsConsumedMsg& msg);

  // constream machinery
  void advance_constream(PubendId p);
  void update_latest_delivered(PerPubend& state);
  void request_pfs_sync();
  void deliver_to_subscriber(SubscriberState& s, PubendId p, Tick tick,
                             matching::EventDataPtr event, bool catchup);
  void pump_jms(SubscriberState& s);

  // Creation handshake: a new subscription's session starts only once its
  // durable rows are committed AND the pubend has acknowledged applying the
  // subscription filter (closing the propagation window).
  struct PendingSetup {
    sim::EndpointId from = 0;
    CheckpointToken ct;
    bool migration = false;
    bool db_done = false;
    bool ack_done = false;
    std::map<PubendId, Tick> ack_heads;
    std::uint32_t announce_attempt = 0;
    bool announce_retry_scheduled = false;
  };
  void maybe_finish_setup(SubscriberId sid);

  // catchup machinery
  void create_or_resume_session(SubscriberState& s, sim::EndpointId from,
                                const CheckpointToken& ct, bool send_initial_ct,
                                bool refilter_catchup = false,
                                const std::map<PubendId, Tick>* distrust = nullptr);
  void issue_pfs_read(SubscriberState& s, PubendId p);
  void pump_catchup_nacks(SubscriberState& s, PubendId p);
  /// Fills [from, to] of the catchup map from the istream cache; returns the
  /// sub-ranges the cache could not cover (to be nacked upstream).
  std::vector<TickRange> fill_catchup_from_istream(SubscriberState& s,
                                                   CatchupStream& cs, PerPubend& state,
                                                   Tick from, Tick to,
                                                   Tick distrust_upto = kTickZero);
  /// Sends a consolidated upstream nack for the given ranges (skipping
  /// anything already outstanding at the istream level).
  void consolidate_nack(PubendId p, PerPubend& state,
                        const std::vector<TickRange>& ranges);
  void advance_catchup(SubscriberState& s, PubendId p);
  void route_to_catchup_streams(PubendId p, const std::vector<routing::KnowledgeItem>& items);
  void maybe_switchover(SubscriberState& s, PubendId p);
  void check_all_caught_up(SubscriberState& s);

  // catchup admission control (reconnect-herd degradation)
  void admit_or_queue_catchup(SubscriberState& s, PubendId p);
  void activate_catchup(SubscriberState& s, PubendId p);
  void release_catchup_slot(CatchupStream& cs);
  void release_all_catchup(SubscriberState& s);
  void drain_admission_queue();

  // seeded deterministic jittered exponential nack-retry backoff
  [[nodiscard]] SimDuration nack_backoff_delay(std::uint64_t salt,
                                               std::uint32_t attempt) const;
  void schedule_catchup_nack_retry(SubscriberState& s, PubendId p);
  void schedule_istream_nack_retry(PubendId p);
  void schedule_setup_retry(SubscriberId sid);

  // curiosity (istream nacking) + release + persistence timers
  void start_timers();
  void nack_istream_gaps();
  void send_release_updates();
  void commit_dirty_state();
  void silence_sweep();

  [[nodiscard]] Tick computed_released(PubendId p) const;

  sim::EndpointId parent_ = 0;
  std::vector<PubendId> pubend_ids_;
  std::map<PubendId, PerPubend> pubends_;
  /// Session table, sharded by subscriber-id hash (core/sharding.hpp); one
  /// shard with pfs_shards == 1, bit-identical with the old flat map.
  std::vector<std::map<SubscriberId, SubscriberState>> sub_shards_;
  /// Connected subscribers, id-ordered: the silence sweep walks only live
  /// sessions instead of the whole durable population.
  std::set<SubscriberId> connected_;
  matching::SubscriptionIndex hosted_;  // all durable subscriptions (for PFS)
  std::vector<SubscriberId> match_scratch_;  // constream match() reuse buffer
  PersistentFilteringSubsystem pfs_;
  std::size_t pfs_unsynced_ = 0;
  bool pfs_sync_scheduled_ = false;
  std::map<PubendId, Tick> committed_ld_;  // last DB-committed latestDelivered
  std::set<std::pair<SubscriberId, PubendId>> dirty_released_;
  std::map<SubscriberId, PendingSetup> pending_setups_;
  Stats stats_;

  // Catchup admission control: bounded active streams + FIFO pending queue.
  // Queue entries are validated lazily against (subscriber, session) — a
  // disconnect or re-resume simply strands its old entry, which is skipped.
  struct QueuedAdmission {
    SubscriberId sid{};
    PubendId p{};
    std::uint64_t session = 0;
  };
  std::size_t catchup_active_ = 0;
  std::size_t catchup_queued_ = 0;  // streams currently in admitted == false
  std::deque<QueuedAdmission> admission_queue_;
  bool admission_draining_ = false;

  // Registry slots, resolved once at construction; probes are broker-owned
  // (RAII-removed on crash) while the cumulative slots persist in the node.
  MetricsRegistry::Counter* m_matched_;
  MetricsRegistry::Counter* m_constream_deliveries_;
  MetricsRegistry::Counter* m_catchup_deliveries_;
  MetricsRegistry::Counter* m_silences_;
  MetricsRegistry::Counter* m_gaps_;
  MetricsRegistry::Counter* m_catchup_opened_;
  MetricsRegistry::Counter* m_catchup_closed_;
  MetricsRegistry::Counter* m_switchovers_;
  MetricsRegistry::Counter* m_catchup_completions_;
  MetricsRegistry::Counter* m_nacks_upstream_;
  MetricsRegistry::Counter* m_catchup_istream_serves_;
  MetricsRegistry::Counter* m_catchup_admitted_;
  MetricsRegistry::Counter* m_catchup_queued_;
  Histogram* m_pfs_read_records_;
  std::vector<MetricsRegistry::Probe> probes_;
};

}  // namespace gryphon::core
