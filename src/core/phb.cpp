#include "core/phb.hpp"

#include <algorithm>
#include <cstring>

namespace gryphon::core {

namespace {
constexpr const char* kSubsTable = "phb_child_subs";

std::string subs_key(sim::EndpointId child, SubscriberId sub) {
  return std::to_string(child) + ':' + std::to_string(sub.value());
}
}  // namespace

PublisherHostingBroker::PublisherHostingBroker(NodeResources& resources,
                                               BrokerConfig config,
                                               const std::vector<PubendId>& pubends,
                                               ReleasePolicyPtr policy)
    : Broker(resources, config), policy_(std::move(policy)) {
  for (PubendId p : pubends) {
    pubends_.emplace(p, std::make_unique<Pubend>(p, res_, policy_));
  }
  auto& m = res_.metrics;
  m_publishes_ = m.counter("phb.publishes");
  m_duplicates_ = m.counter("phb.duplicates");
  m_nacks_ = m.counter("phb.nacks_received");
  m_nack_events_served_ = m.counter("phb.nack_events_served");
  m_ack_floor_ = m.gauge("phb.ack_floor");
  m_nack_span_ = m.histogram("phb.nack_span_ticks", 1.0, 1e6);
  // Per-pubend tick-ladder windows, read only at snapshot time.
  for (auto& [p, pe] : pubends_) {
    const std::string prefix = "pubend.p" + std::to_string(p.value()) + ".";
    Pubend* raw = pe.get();
    probes_.push_back(m.probe(prefix + "head", [raw] {
      return static_cast<double>(raw->head());
    }));
    probes_.push_back(m.probe(prefix + "l_window", [raw] {
      return static_cast<double>(raw->lost_upto());
    }));
    probes_.push_back(m.probe(prefix + "d_window", [raw] {
      return static_cast<double>(raw->retained_events());
    }));
    probes_.push_back(m.probe(prefix + "s_window", [raw] {
      const double span = static_cast<double>(raw->head() - raw->lost_upto());
      return std::max(0.0, span - static_cast<double>(raw->retained_events()));
    }));
    probes_.push_back(m.probe(prefix + "doubt_span", [raw] {
      return static_cast<double>(raw->head() - raw->delivered_min());
    }));
  }
  // Storage-pressure gauge of the shared release policy (0 for static ones).
  probes_.push_back(m.probe("pubend.retain_pressure", [this] {
    return policy_->pressure();
  }));
}

void PublisherHostingBroker::add_child(sim::EndpointId child) {
  GRYPHON_CHECK_MSG(!children_.contains(child), "duplicate child " << child);
  Child c;
  c.endpoint = child;
  for (auto& [p, pe] : pubends_) {
    c.streams.emplace(p, ChildStream{pe->head()});
  }
  children_.emplace(child, std::move(c));
}

void PublisherHostingBroker::start() {
  // Silence generation: keeps every downstream doubt horizon advancing at
  // ~wall-clock rate even when no events are published.
  every(config_.costs.silence_interval, [this] {
    for (auto& [p, pe] : pubends_) {
      if (auto region = pe->announce_silence(now())) {
        fanout(p, pe->ticks().items(region->from, region->to));
      }
    }
  });
  // Release application. The policy first observes the event-log live bytes
  // so AdaptiveRetainPolicy can squeeze retention under storage pressure.
  every(config_.costs.release_update_interval, [this] {
    policy_->observe_live_bytes(res_.log_volume.wal().live_bytes());
    for (auto& [p, pe] : pubends_) {
      refresh_release_mins(p);
      pe->apply_release(now());
    }
  });
}

void PublisherHostingBroker::recover() {
  for (auto& [p, pe] : pubends_) pe->recover();
  // Child filters were persisted on every (un)subscribe.
  for (const auto& [key, value] : res_.database.scan(kSubsTable)) {
    const auto colon = key.find(':');
    GRYPHON_CHECK(colon != std::string::npos);
    const auto child_ep =
        static_cast<sim::EndpointId>(std::stoul(key.substr(0, colon)));
    const SubscriberId sub{static_cast<std::uint32_t>(std::stoul(key.substr(colon + 1)))};
    auto it = children_.find(child_ep);
    if (it == children_.end()) continue;
    const std::string text(reinterpret_cast<const char*>(value.data()), value.size());
    it->second.filter.add(sub, matching::parse_predicate(text));
  }
}

Pubend& PublisherHostingBroker::pubend(PubendId p) {
  auto it = pubends_.find(p);
  GRYPHON_CHECK_MSG(it != pubends_.end(), "unknown pubend " << p);
  return *it->second;
}

std::vector<PubendId> PublisherHostingBroker::pubend_ids() const {
  std::vector<PubendId> out;
  out.reserve(pubends_.size());
  for (const auto& [p, pe] : pubends_) out.push_back(p);
  return out;
}

PublisherHostingBroker::Child& PublisherHostingBroker::child(sim::EndpointId ep) {
  auto it = children_.find(ep);
  GRYPHON_CHECK_MSG(it != children_.end(), "message from unknown child " << ep);
  return it->second;
}

SimDuration PublisherHostingBroker::cost_of(const Msg& msg) const {
  const auto& costs = config_.costs;
  switch (msg.kind()) {
    case MsgKind::kPublish:
      return costs.publish_base +
             static_cast<SimDuration>(children_.size()) * costs.per_child_forward;
    case MsgKind::kNack:
      return costs.nack_process;
    default:
      return costs.control_process;
  }
}

void PublisherHostingBroker::handle(sim::EndpointId from, const Msg& msg) {
  switch (msg.kind()) {
    case MsgKind::kPublish:
      on_publish(from, static_cast<const PublishMsg&>(msg));
      break;
    case MsgKind::kNack:
      on_nack(from, static_cast<const NackMsg&>(msg));
      break;
    case MsgKind::kReleaseUpdate:
      on_release_update(from, static_cast<const ReleaseUpdateMsg&>(msg));
      break;
    case MsgKind::kSubscribe:
      on_subscribe(from, static_cast<const SubscribeMsg&>(msg));
      break;
    case MsgKind::kUnsubscribe:
      on_unsubscribe(from, static_cast<const UnsubscribeMsg&>(msg));
      break;
    case MsgKind::kBrokerResume:
      on_broker_resume(from, static_cast<const BrokerResumeMsg&>(msg));
      break;
    default:
      GRYPHON_CHECK_MSG(false, "PHB cannot handle message kind "
                                   << static_cast<int>(msg.kind()));
  }
}

void PublisherHostingBroker::on_publish(sim::EndpointId from, const PublishMsg& msg) {
  ++stats_.publishes;
  m_publishes_->inc();
  m_ack_floor_->set(static_cast<double>(msg.acked_below));
  Pubend& pe = pubend(msg.pubend);
  const auto accepted =
      pe.accept_publish(msg.publisher, msg.seq, msg.acked_below, msg.event, now());
  if (accepted.duplicate) {
    ++stats_.duplicates;
    m_duplicates_->inc();
    send(from, std::make_shared<PublishAckMsg>(msg.publisher, msg.seq, accepted.tick));
    return;
  }
  // Announce only once durable (only-once logging is the paper's point: the
  // event exists nowhere else yet, so it must hit stable storage before the
  // system takes responsibility for it).
  const Tick tick = accepted.tick;
  auto event = msg.event;
  const PubendId p = msg.pubend;
  res_.log_volume.sync(guarded([this, from, p, tick, event = std::move(event),
                                publisher = msg.publisher, seq = msg.seq] {
    Pubend& pend = pubend(p);
    const TickRange region = pend.announce_data(tick, event);
    fanout(p, pend.ticks().items(region.from, region.to));
    send(from, std::make_shared<PublishAckMsg>(publisher, seq, tick));
  }));
}

void PublisherHostingBroker::fanout(PubendId p,
                                    const std::vector<routing::KnowledgeItem>& items) {
  if (items.empty()) return;
  for (auto& [ep, c] : children_) {
    auto it = c.streams.find(p);
    GRYPHON_CHECK(it != c.streams.end());
    send_items(c, p, it->second.on_items(items));
  }
}

void PublisherHostingBroker::send_items(Child& c, PubendId p,
                                        const std::vector<routing::KnowledgeItem>& items) {
  if (items.empty()) return;
  auto filtered = filter_items(items, &c.filter);
  const std::size_t chunk = config_.costs.max_items_per_msg;
  for (std::size_t i = 0; i < filtered.size(); i += chunk) {
    const auto end = std::min(filtered.size(), i + chunk);
    send(c.endpoint,
         std::make_shared<StreamDataMsg>(
             p, std::vector<routing::KnowledgeItem>(filtered.begin() + i,
                                                    filtered.begin() + end)));
  }
}

void PublisherHostingBroker::on_nack(sim::EndpointId from, const NackMsg& msg) {
  ++stats_.nacks_received;
  m_nacks_->inc();
  for (const TickRange& r : msg.ranges) {
    m_nack_span_->add(static_cast<double>(r.to - r.from + 1));
  }
  Child& c = child(from);
  Pubend& pe = pubend(msg.pubend);
  auto it = c.streams.find(msg.pubend);
  GRYPHON_CHECK(it != c.streams.end());
  auto outcome = it->second.on_nack(msg.ranges, pe.ticks());
  // The pubend is authoritative: every announced tick is D, S or L, so the
  // only unknown ranges a well-behaved child could produce lie beyond the
  // announcement horizon (e.g. a nack raced with a crash-recovery reset);
  // they stay pending and the fresh stream will cover them.
  std::size_t served_events = 0;
  for (const auto& item : outcome.respond) {
    if (item.value == routing::TickValue::kD) ++served_events;
  }
  stats_.nack_response_events += served_events;
  m_nack_events_served_->inc(served_events);
  // Serving cached events costs CPU proportional to the events shipped.
  cpu_then(static_cast<SimDuration>(served_events) *
               config_.costs.per_nack_response_event,
           [this, from, p = msg.pubend, items = std::move(outcome.respond)]() mutable {
             Child& c2 = child(from);
             send_items(c2, p, items);
           });
}

void PublisherHostingBroker::on_release_update(sim::EndpointId from,
                                               const ReleaseUpdateMsg& msg) {
  Child& c = child(from);
  auto it = c.streams.find(msg.pubend);
  GRYPHON_CHECK(it != c.streams.end());
  // Taken as reported, not max-merged: a subscription migrating onto a
  // child legitimately LOWERS its release pin (links are FIFO, so there is
  // no reordering to defend against). A lowered pin only delays future
  // releases — the lost prefix itself never regresses.
  it->second.released = msg.released;
  it->second.latest_delivered = std::max(it->second.latest_delivered, msg.latest_delivered);
  refresh_release_mins(msg.pubend);
}

void PublisherHostingBroker::refresh_release_mins(PubendId p) {
  if (children_.empty()) return;
  Tick rel = kTickInfinity;
  Tick del = kTickInfinity;
  for (auto& [ep, c] : children_) {
    const ChildStream& s = c.streams.at(p);
    rel = std::min(rel, s.released);
    del = std::min(del, s.latest_delivered);
  }
  pubend(p).update_mins(rel, del);
}

void PublisherHostingBroker::persist_subscription(sim::EndpointId child_ep,
                                                  SubscriberId sub,
                                                  const std::string& predicate,
                                                  bool add) {
  std::vector<std::byte> value;
  if (add) {
    value.resize(predicate.size());
    std::memcpy(value.data(), predicate.data(), predicate.size());
  }
  res_.database.commit(0, {{kSubsTable, subs_key(child_ep, sub), std::move(value)}});
}

void PublisherHostingBroker::on_subscribe(sim::EndpointId from, const SubscribeMsg& msg) {
  Child& c = child(from);
  c.filter.add(msg.subscriber, matching::parse_predicate(msg.predicate_text));
  persist_subscription(from, msg.subscriber, msg.predicate_text, /*add=*/true);
  // Acknowledge with the application boundary: everything after these heads
  // is filtered with this subscription included (idempotent on re-sends).
  std::vector<std::pair<PubendId, Tick>> heads;
  heads.reserve(pubends_.size());
  for (auto& [p, pe] : pubends_) heads.emplace_back(p, pe->head());
  send(from, std::make_shared<SubscribeAckMsg>(msg.subscriber, std::move(heads)));
}

void PublisherHostingBroker::on_unsubscribe(sim::EndpointId from,
                                            const UnsubscribeMsg& msg) {
  Child& c = child(from);
  c.filter.remove(msg.subscriber);
  persist_subscription(from, msg.subscriber, {}, /*add=*/false);
}

void PublisherHostingBroker::on_broker_resume(sim::EndpointId from,
                                              const BrokerResumeMsg& msg) {
  Child& c = child(from);
  for (const auto& [p, resume] : msg.resume_from) {
    Pubend& pe = pubend(p);
    // The fresh stream resumes at the head; the span the child missed while
    // down — (its resume point, head] — is recovered through its curiosity
    // stream under the child's own flow control (paper §5.3: the constream
    // "nacks the events it missed"), not by an unbounded replay burst.
    (void)resume;
    auto it = c.streams.find(p);
    GRYPHON_CHECK(it != c.streams.end());
    it->second.reset(pe.head());
  }
}

}  // namespace gryphon::core
