// The "machine" a broker process runs on: CPU, disk, log volume, database
// and network address. These survive a broker *process* crash — the broker
// object is destroyed and a fresh one is constructed over the same
// NodeResources, finding exactly the durable state a real restart would
// find on disk.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "sim/cpu.hpp"
#include "sim/network.hpp"
#include "sim/scheduler.hpp"
#include "storage/database.hpp"
#include "storage/log_volume.hpp"
#include "storage/sim_disk.hpp"
#include "util/logging.hpp"
#include "util/metrics.hpp"
#include "util/trace.hpp"

namespace gryphon::core {

class Broker;

class NodeResources {
 public:
  NodeResources(sim::Scheduler& scheduler, sim::Network& network, std::string name,
                const BrokerConfig& broker_config, storage::DiskConfig disk_config,
                int db_connections = 1, storage::StorageOptions storage_options = {})
      : sim(scheduler),
        network(network),
        name(std::move(name)),
        metrics(this->name),
        tracer(this->name),
        cpu(scheduler, this->name + ".cpu", broker_config.cores),
        disk(scheduler, this->name + ".disk", disk_config),
        log_volume(disk, storage_options, "log"),
        database(disk, db_connections, storage_options, "db") {
    // wal.* torn-tail totals are *counters* (not probes) so they land in the
    // bench JSON metrics block; the two WALs of a node share the slots.
    {
      storage::LogVolume::Instruments ins;
      ins.recoveries = metrics.counter("wal.recoveries");
      ins.recovery_truncated_bytes = metrics.counter("wal.recovery_truncated_bytes");
      ins.torn_tail_recoveries = metrics.counter("wal.torn_tail_recoveries");
      ins.group_commit_bytes = metrics.histogram("wal.group_commit_size", 1.0, 1e8);
      log_volume.bind_instruments(ins);
      storage::Database::Instruments db_ins;
      db_ins.recoveries = ins.recoveries;
      db_ins.recovery_truncated_bytes = ins.recovery_truncated_bytes;
      db_ins.torn_tail_recoveries = ins.torn_tail_recoveries;
      database.bind_instruments(db_ins);
    }
    endpoint = network.add_endpoint(this->name, [this](sim::EndpointId from,
                                                       sim::MessagePtr msg) {
      route(from, std::move(msg));
    });
    // Pull probes over node-owned storage: read at snapshot time only, and
    // lifetime-safe because the registry and these objects die together.
    probes_.push_back(metrics.probe("disk.bytes_written", [this] {
      return static_cast<double>(disk.total_bytes_written());
    }));
    probes_.push_back(metrics.probe("disk.bytes_read", [this] {
      return static_cast<double>(disk.total_bytes_read());
    }));
    probes_.push_back(metrics.probe(
        "disk.syncs", [this] { return static_cast<double>(disk.total_syncs()); }));
    probes_.push_back(metrics.probe(
        "disk.reads", [this] { return static_cast<double>(disk.total_reads()); }));
    probes_.push_back(metrics.probe("disk.busy_usec", [this] {
      return static_cast<double>(disk.total_busy());
    }));
    probes_.push_back(metrics.probe("disk.stall_time_usec", [this] {
      return static_cast<double>(disk.total_stall_time());
    }));
    probes_.push_back(metrics.probe("disk.torn_syncs", [this] {
      return static_cast<double>(disk.total_torn_syncs());
    }));
    probes_.push_back(metrics.probe("log.appended_records", [this] {
      return static_cast<double>(log_volume.appended_records());
    }));
    probes_.push_back(metrics.probe("log.appended_bytes", [this] {
      return static_cast<double>(log_volume.appended_bytes());
    }));
    probes_.push_back(metrics.probe("log.retained_bytes", [this] {
      return static_cast<double>(log_volume.retained_bytes());
    }));
    probes_.push_back(metrics.probe("log.barrier_batches", [this] {
      return static_cast<double>(log_volume.barrier_batches());
    }));
    probes_.push_back(metrics.probe("disk.synced_bytes", [this] {
      return static_cast<double>(disk.total_synced_bytes());
    }));
    probes_.push_back(metrics.probe("disk.dropped_bytes", [this] {
      return static_cast<double>(disk.total_dropped_bytes());
    }));
    probes_.push_back(metrics.probe("wal.segments", [this] {
      return static_cast<double>(log_volume.wal().segment_count() +
                                 database.wal().segment_count());
    }));
    probes_.push_back(metrics.probe("wal.live_bytes", [this] {
      return static_cast<double>(log_volume.wal().live_bytes() +
                                 database.wal().live_bytes());
    }));
    probes_.push_back(metrics.probe("wal.gc_dropped_segments", [this] {
      return static_cast<double>(log_volume.wal().gc_dropped_segments() +
                                 database.wal().gc_dropped_segments());
    }));
    // Per-link wire accounting (Transport seam): what this node put on the
    // wire, what arrived, and how many frames the transport rejected as
    // corrupt (always 0 in struct mode and in clean codec runs).
    probes_.push_back(metrics.probe("net.tx_bytes", [this] {
      return static_cast<double>(this->network.sent_bytes_from(endpoint));
    }));
    probes_.push_back(metrics.probe("net.rx_bytes", [this] {
      return static_cast<double>(this->network.delivered_bytes_to(endpoint));
    }));
    probes_.push_back(metrics.probe("net.decode_rejects", [this] {
      return static_cast<double>(this->network.decode_rejects_at(endpoint));
    }));
    probes_.push_back(metrics.probe("net.frames_encoded", [this] {
      return static_cast<double>(this->network.frames_encoded_from(endpoint));
    }));
    probes_.push_back(metrics.probe("net.frames_decoded", [this] {
      return static_cast<double>(this->network.frames_decoded_at(endpoint));
    }));
  }

  NodeResources(const NodeResources&) = delete;
  NodeResources& operator=(const NodeResources&) = delete;

  /// Process crash: the network address goes dark, queued CPU work and all
  /// unsynced storage state are lost. Call before destroying the Broker.
  void crash() {
    GRYPHON_LOG(kWarn, name, "broker process crashed (volatile state lost)");
    metrics.counter("node.crashes")->inc();
    network.set_down(endpoint, true);
    cpu.clear();
    disk.crash();
    log_volume.crash();
    database.crash();
    current_broker = nullptr;
  }

  /// Bring the address back up for a restarted broker (set current_broker
  /// first).
  void restart() {
    GRYPHON_LOG(kInfo, name, "broker restarted over surviving durable state");
    network.set_down(endpoint, false);
    disk.restart();
  }

  /// Torn sync on the node's disk: dirty data under the in-flight barrier
  /// is lost but the process stays up; LogVolume/Database re-issue it.
  /// `entropy` seeds how much of the torn barrier's WAL bytes a crash that
  /// beats the retry would find on disk (a mid-frame tail, usually).
  void torn_sync(std::uint64_t entropy = 0) {
    GRYPHON_LOG(kWarn, name, "torn sync: in-flight disk barrier lost, retrying");
    log_volume.set_crash_entropy(entropy);
    database.set_crash_entropy(entropy >> 7);
    disk.drop_unsynced();
    log_volume.on_torn_sync();
    database.on_torn_sync();
  }

  sim::Scheduler& sim;
  sim::Network& network;
  std::string name;
  /// Cumulative per-node instruments + recent-milestone ring; both survive
  /// broker process crashes (they are the node's external observability).
  MetricsRegistry metrics;
  Tracer tracer;
  sim::Cpu cpu;
  storage::SimDisk disk;
  storage::LogVolume log_volume;
  storage::Database database;
  sim::EndpointId endpoint = 0;

  /// The live broker process, or nullptr while crashed.
  Broker* current_broker = nullptr;

 private:
  void route(sim::EndpointId from, sim::MessagePtr msg);

  std::vector<MetricsRegistry::Probe> probes_;
};

}  // namespace gryphon::core
