// The "machine" a broker process runs on: CPU, disk, log volume, database
// and network address. These survive a broker *process* crash — the broker
// object is destroyed and a fresh one is constructed over the same
// NodeResources, finding exactly the durable state a real restart would
// find on disk.
#pragma once

#include <memory>
#include <string>

#include "core/config.hpp"
#include "sim/cpu.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"
#include "storage/database.hpp"
#include "storage/log_volume.hpp"
#include "storage/sim_disk.hpp"
#include "util/logging.hpp"

namespace gryphon::core {

class Broker;

class NodeResources {
 public:
  NodeResources(sim::Simulator& simulator, sim::Network& network, std::string name,
                const BrokerConfig& broker_config, storage::DiskConfig disk_config,
                int db_connections = 1)
      : sim(simulator),
        network(network),
        name(std::move(name)),
        cpu(simulator, this->name + ".cpu", broker_config.cores),
        disk(simulator, this->name + ".disk", disk_config),
        log_volume(disk),
        database(disk, db_connections) {
    endpoint = network.add_endpoint(this->name, [this](sim::EndpointId from,
                                                       sim::MessagePtr msg) {
      route(from, std::move(msg));
    });
  }

  NodeResources(const NodeResources&) = delete;
  NodeResources& operator=(const NodeResources&) = delete;

  /// Process crash: the network address goes dark, queued CPU work and all
  /// unsynced storage state are lost. Call before destroying the Broker.
  void crash() {
    GRYPHON_LOG(kWarn, name, "broker process crashed (volatile state lost)");
    network.set_down(endpoint, true);
    cpu.clear();
    disk.crash();
    log_volume.crash();
    database.crash();
    current_broker = nullptr;
  }

  /// Bring the address back up for a restarted broker (set current_broker
  /// first).
  void restart() {
    GRYPHON_LOG(kInfo, name, "broker restarted over surviving durable state");
    network.set_down(endpoint, false);
    disk.restart();
  }

  /// Torn sync on the node's disk: dirty data under the in-flight barrier
  /// is lost but the process stays up; LogVolume/Database re-issue it.
  void torn_sync() {
    GRYPHON_LOG(kWarn, name, "torn sync: in-flight disk barrier lost, retrying");
    disk.drop_unsynced();
    log_volume.on_torn_sync();
    database.on_torn_sync();
  }

  sim::Simulator& sim;
  sim::Network& network;
  std::string name;
  sim::Cpu cpu;
  storage::SimDisk disk;
  storage::LogVolume log_volume;
  storage::Database database;
  sim::EndpointId endpoint = 0;

  /// The live broker process, or nullptr while crashed.
  Broker* current_broker = nullptr;

 private:
  void route(sim::EndpointId from, sim::MessagePtr msg);
};

}  // namespace gryphon::core
