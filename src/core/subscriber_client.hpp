// Durable subscriber client (paper §2).
//
// Owns its Checkpoint Token: advances it as Event/Silence/Gap messages are
// consumed, persists it across its own disconnections (modeled as a member —
// the client process does not crash; deliberate CT loss is available via
// set_checkpoint for experiments), and pushes it to the SHB periodically as
// an acknowledgment. In JMS mode the SHB owns the CT instead: the client
// acks each consumed event (auto-acknowledge) and reconnects with
// use_stored_ct.
//
// The client also enforces the delivery contract as it consumes: timestamps
// per pubend must be strictly increasing — a violation throws, so every test
// and benchmark doubles as an exactly-once check on the wire.
#pragma once

#include <functional>
#include <map>

#include "core/client.hpp"
#include "core/client_observer.hpp"
#include "core/config.hpp"

namespace gryphon::core {

class DurableSubscriber final : public Client {
 public:
  struct Options {
    SubscriberId id;
    std::string predicate;
    bool jms_auto_ack = false;
    SimDuration ack_interval = msec(250);
    /// Connection retries back off exponentially with deterministic jitter;
    /// backoff.base is the first retry delay (previously a fixed period).
    ReconnectBackoff backoff{};
    bool auto_reconnect = true;  // reconnect after a connection reset
  };

  DurableSubscriber(sim::Scheduler& scheduler, sim::Network& network, Options options,
                    sim::EndpointId shb, SubscriberObserver* observer = nullptr);

  /// Initiates a (re)connection; retries until the SHB confirms.
  void connect();

  /// Graceful disconnect (the paper's voluntary disconnection).
  void disconnect();

  /// Destroys the durable subscription at the SHB.
  void unsubscribe();

  /// Reconnect-anywhere (paper §1 feature 5): move the durable subscription
  /// to a different SHB. The old broker's durable state is destroyed (the
  /// client-held CT is the source of truth), and the new broker recovers
  /// the missed span by refiltering from the network — correctness is
  /// unaffected, since the PFS is only a performance optimization. Not
  /// available in JMS mode, where the broker owns the CT.
  void migrate(sim::EndpointId new_shb);

  /// The hosting broker's connection died (broker crash). With
  /// auto_reconnect the client retries until the broker is back.
  void notify_connection_reset();

  /// Harness control: while held, auto-reconnect attempts are suppressed
  /// (used by the Fig. 7/8 experiment to separate constream recovery from
  /// subscriber catchup).
  void set_reconnect_hold(bool hold);

  /// Deliberately replace the CT (models a subscriber that lost its state
  /// and resumes from an older token; it may then observe gaps/duplicates
  /// relative to what it had acknowledged — paper §2).
  void set_checkpoint(CheckpointToken ct) { ct_ = std::move(ct); }

  [[nodiscard]] bool connected() const { return connected_; }
  [[nodiscard]] const CheckpointToken& checkpoint() const { return ct_; }
  [[nodiscard]] SubscriberId id() const { return options_.id; }
  [[nodiscard]] std::uint64_t events_received() const { return events_received_; }
  [[nodiscard]] std::uint64_t gaps_received() const { return gaps_received_; }

 protected:
  void handle(sim::EndpointId from, const Msg& msg) override;

 private:
  void try_connect();

  /// Delay before retry number `retry` (0-based) of the current connection
  /// attempt: capped exponential with deterministic jitter.
  [[nodiscard]] SimDuration backoff_delay(std::uint64_t retry) const;

  Options options_;
  sim::EndpointId shb_;
  SubscriberObserver* observer_;

  bool subscribed_ = false;  // the durable subscription exists at the SHB
  bool connected_ = false;
  bool connecting_ = false;
  bool reconnect_hold_ = false;
  sim::EndpointId pending_unsubscribe_ = 0;  // old SHB awaiting migration teardown
  std::uint64_t connect_attempt_ = 0;
  std::uint64_t retry_count_ = 0;  // retries within the current attempt
  CheckpointToken ct_;
  std::uint64_t events_received_ = 0;
  std::uint64_t gaps_received_ = 0;
};

}  // namespace gryphon::core
