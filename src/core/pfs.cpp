#include "core/pfs.hpp"

#include <algorithm>

#include "core/sharding.hpp"
#include "util/assert.hpp"
#include "util/byte_buffer.hpp"

namespace gryphon::core {

namespace {

constexpr const char* kMetaTable = "pfs_meta";
constexpr const char* kSubTable = "pfs_sub";

// Shard 0 keeps the unsharded spellings ("pfs:<p>", "<p>:last_ts"), so a
// single-shard PFS is bit-identical with the pre-sharding layout and its
// WALs recover either way.
std::string stream_name(PubendId p, std::size_t shard) {
  std::string name = "pfs:" + std::to_string(p.value());
  if (shard > 0) name += ":s" + std::to_string(shard);
  return name;
}

std::string meta_key(PubendId p, std::size_t shard, const char* what) {
  std::string key = std::to_string(p.value()) + ':';
  if (shard > 0) key += 's' + std::to_string(shard) + ':';
  return key + what;
}

std::string sub_key(PubendId p, SubscriberId s) {
  return std::to_string(p.value()) + ':' + std::to_string(s.value());
}

std::vector<std::byte> encode_i64(std::int64_t v) {
  BufWriter w;
  w.put_i64(v);
  return w.take();
}

std::int64_t decode_i64(const std::vector<std::byte>& bytes) {
  BufReader r(bytes);
  return r.get_i64();
}

}  // namespace

PersistentFilteringSubsystem::PersistentFilteringSubsystem(NodeResources& resources,
                                                           const CostModel& costs,
                                                           std::size_t shards)
    : res_(resources), costs_(costs), shards_(shards) {
  GRYPHON_CHECK(costs_.pfs_imprecise_batch >= 1);
  GRYPHON_CHECK(shards_ >= 1);
  m_records_written_ = res_.metrics.counter("pfs.records_written");
  m_bytes_written_ = res_.metrics.counter("pfs.record_bytes_written");
  m_reads_ = res_.metrics.counter("pfs.reads_issued");
  split_scratch_.resize(shards_);
}

// Format-drift guards for the paper's "8 + 16·n bytes" accounting: each
// wire entry is a u32 subscriber id + u64 back-pointer and must fit the
// per-subscriber budget; the fixed part (two i64 timestamps + u32 entry
// count) must fit the ranged-record budget plus the u32 the accounting
// model leaves to the volume's record header. If the encoder below gains a
// field, these fire before any benchmark number quietly moves.
static_assert(sizeof(std::uint32_t) + sizeof(storage::LogIndex) <=
                  PersistentFilteringSubsystem::kPerSubscriberBytes,
              "PFS wire entry outgrew the paper's 16-byte/subscriber budget");
static_assert(2 * sizeof(std::int64_t) + sizeof(std::uint32_t) <=
                  PersistentFilteringSubsystem::kRangeRecordFixedBytes +
                      sizeof(std::uint32_t),
              "PFS wire fixed part outgrew the paper's record budget");
static_assert(PersistentFilteringSubsystem::record_bytes(1) == 8 + 16 &&
                  PersistentFilteringSubsystem::record_bytes(200) == 8 + 16 * 200,
              "record_bytes must stay the paper's 8 + 16*n formula");

std::vector<std::byte> PersistentFilteringSubsystem::encode(
    const Record& r, std::vector<std::byte> reuse) {
  BufWriter w(std::move(reuse));
  w.put_i64(r.range.from);
  w.put_i64(r.range.to);
  w.put_u32(static_cast<std::uint32_t>(r.entries.size()));
  for (const auto& [sub, prev] : r.entries) {
    w.put_u32(sub.value());
    w.put_u64(prev);
  }
  return w.take();
}

PersistentFilteringSubsystem::Record PersistentFilteringSubsystem::decode(
    const std::vector<std::byte>& bytes) {
  BufReader r(bytes);
  Record rec;
  rec.range.from = r.get_i64();
  rec.range.to = r.get_i64();
  const auto n = r.get_u32();
  rec.entries.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    const SubscriberId sub{r.get_u32()};
    const storage::LogIndex prev = r.get_u64();
    rec.entries.emplace_back(sub, prev);
  }
  return rec;
}

PersistentFilteringSubsystem::PerPubend& PersistentFilteringSubsystem::per(PubendId p) {
  auto it = pubends_.find(p);
  GRYPHON_CHECK_MSG(it != pubends_.end(), "unknown pubend " << p);
  return it->second;
}

const PersistentFilteringSubsystem::PerPubend& PersistentFilteringSubsystem::per(
    PubendId p) const {
  auto it = pubends_.find(p);
  GRYPHON_CHECK_MSG(it != pubends_.end(), "unknown pubend " << p);
  return it->second;
}

void PersistentFilteringSubsystem::open(const std::vector<PubendId>& pubends) {
  auto& db = res_.database;
  auto& volume = res_.log_volume;

  for (PubendId p : pubends) {
    PerPubend state;
    state.id = p;
    state.shards.resize(shards_);
    for (std::size_t k = 0; k < shards_; ++k) {
      Shard& shard = state.shards[k];
      shard.stream = volume.open_stream(stream_name(p, k));
      // Last committed metadata snapshot (may lag the durable log).
      if (auto v = db.get(kMetaTable, meta_key(p, k, "last_ts"))) {
        shard.durable_timestamp = decode_i64(*v);
      }
      if (auto v = db.get(kMetaTable, meta_key(p, k, "scan"))) {
        shard.durable_scan_index = static_cast<storage::LogIndex>(decode_i64(*v));
      }
      if (auto v = db.get(kMetaTable, meta_key(p, k, "chopped"))) {
        shard.chopped_upto = decode_i64(*v);
      }
    }
    pubends_.emplace(p, std::move(state));
  }

  // Per-subscriber lastIndex rows: an ordered-index range scan per pubend
  // prefix, not a full-table pass — recovery cost follows the configured
  // pubends' rows, routed to each subscriber's shard.
  for (auto& [p, state] : pubends_) {
    const std::string prefix = std::to_string(p.value()) + ':';
    for (const auto& [key, value] : db.scan_prefix(kSubTable, prefix)) {
      const SubscriberId s{
          static_cast<std::uint32_t>(std::stoul(key.substr(prefix.size())))};
      state.shards[subscriber_shard(s, shards_)].durable_last_index[s] =
          static_cast<storage::LogIndex>(decode_i64(value));
    }
  }

  // Repair: forward-scan each shard's durable log suffix that postdates the
  // metadata snapshot, rebuilding lastTimestamp and lastIndex(s).
  for (auto& [p, state] : pubends_) {
    for (Shard& shard : state.shards) {
      shard.last_index = shard.durable_last_index;
      shard.last_timestamp = shard.durable_timestamp;
      const storage::LogIndex durable = volume.durable_index(shard.stream);
      storage::LogIndex from = std::max<storage::LogIndex>(
          shard.durable_scan_index + 1, volume.first_index(shard.stream));
      for (storage::LogIndex i = from; i <= durable; ++i) {
        const auto* bytes = volume.read(shard.stream, i);
        if (bytes == nullptr) continue;  // chopped
        Record rec = decode(*bytes);
        GRYPHON_CHECK(rec.range.to > shard.last_timestamp);
        shard.last_timestamp = rec.range.to;
        for (const auto& [sub, prev] : rec.entries) shard.last_index[sub] = i;
      }
      shard.durable_scan_index = std::max(shard.durable_scan_index, durable);
      shard.durable_timestamp = shard.last_timestamp;
      shard.durable_last_index = shard.last_index;
      shard.meta_dirty = true;

      // Re-chop records resurrected below the committed chop boundary: the
      // byte-level recovery can bring back records whose chop frame was
      // still in the page cache when the crash hit, while the DB commit of
      // `chopped` was already durable.
      while (volume.first_index(shard.stream) < volume.next_index(shard.stream)) {
        const storage::LogIndex first = volume.first_index(shard.stream);
        const auto* bytes = volume.read(shard.stream, first);
        if (bytes == nullptr || decode(*bytes).range.to > shard.chopped_upto) break;
        volume.chop(shard.stream, first);
      }
      state.last_timestamp = std::max(state.last_timestamp, shard.last_timestamp);
    }
    state.durable_timestamp = state.last_timestamp;
    state.last_accepted = state.last_timestamp;
  }
}

void PersistentFilteringSubsystem::write_record(
    PerPubend& state, Shard& shard, TickRange range,
    const std::vector<SubscriberId>& matching) {
  Record rec;
  rec.range = range;
  rec.entries.reserve(matching.size());
  for (SubscriberId s : matching) {
    auto it = shard.last_index.find(s);
    rec.entries.emplace_back(s, it == shard.last_index.end() ? storage::kNoIndex
                                                             : it->second);
  }
  const storage::LogIndex idx = res_.log_volume.append(
      shard.stream, encode(rec, res_.log_volume.acquire_buffer()));
  for (SubscriberId s : matching) shard.last_index[s] = idx;
  shard.last_timestamp = range.to;
  state.last_timestamp = std::max(state.last_timestamp, range.to);
  ++records_written_;
  const std::size_t bytes = range_record_bytes(matching.size(), range.from != range.to);
  bytes_written_ += bytes;
  m_records_written_->inc();
  m_bytes_written_->inc(bytes);
  res_.tracer.record_range(res_.sim.now(), state.id.value(), range.from, range.to,
                           TraceMilestone::kPfsLog);
}

void PersistentFilteringSubsystem::write_sharded(
    PerPubend& state, TickRange range, const std::vector<SubscriberId>& matching) {
  if (shards_ == 1) {
    write_record(state, state.shards[0], range, matching);
    return;
  }
  for (auto& bucket : split_scratch_) bucket.clear();
  for (SubscriberId s : matching) {
    split_scratch_[subscriber_shard(s, shards_)].push_back(s);
  }
  for (std::size_t k = 0; k < shards_; ++k) {
    if (split_scratch_[k].empty()) continue;
    write_record(state, state.shards[k], range, split_scratch_[k]);
  }
}

void PersistentFilteringSubsystem::flush_batch(PerPubend& state) {
  if (state.batch_count == 0) return;
  std::vector<SubscriberId> matching(state.batch_union.begin(), state.batch_union.end());
  write_sharded(state, {state.batch_first, state.batch_last}, matching);
  state.batch_count = 0;
  state.batch_union.clear();
}

void PersistentFilteringSubsystem::append(PubendId pubend, Tick tick,
                                          const std::vector<SubscriberId>& matching) {
  GRYPHON_CHECK_MSG(!matching.empty(), "PFS records require >= 1 subscriber");
  PerPubend& state = per(pubend);
  GRYPHON_CHECK_MSG(tick > state.last_accepted,
                    "non-monotonic PFS write " << tick << " after "
                                               << state.last_accepted);
  state.last_accepted = tick;

  if (costs_.pfs_imprecise_batch <= 1) {
    write_sharded(state, {tick, tick}, matching);
    return;
  }

  // Imprecise mode: coalesce consecutive matched timestamps into one record
  // covering their range with the union of their subscriber lists.
  if (state.batch_count == 0) state.batch_first = tick;
  state.batch_last = tick;
  state.batch_union.insert(matching.begin(), matching.end());
  if (++state.batch_count >= costs_.pfs_imprecise_batch) flush_batch(state);
}

void PersistentFilteringSubsystem::sync(std::function<void()> on_durable) {
  for (auto& [p, state] : pubends_) flush_batch(state);

  // Capture the state the barrier will cover; it becomes the durable
  // snapshot (and thus DB-committable metadata) at completion. All shards
  // share every barrier, so the pubend-level durable timestamp stays the
  // pubend-level lastTimestamp at capture time.
  struct ShardSnapshot {
    Tick last_timestamp;
    storage::LogIndex scan_index;
    std::unordered_map<SubscriberId, storage::LogIndex> last_index;
  };
  struct Snapshot {
    PubendId pubend;
    Tick last_timestamp;
    std::vector<ShardSnapshot> shards;
  };
  std::vector<Snapshot> snaps;
  snaps.reserve(pubends_.size());
  for (auto& [p, state] : pubends_) {
    Snapshot snap;
    snap.pubend = p;
    snap.last_timestamp = state.last_timestamp;
    snap.shards.reserve(state.shards.size());
    for (Shard& shard : state.shards) {
      snap.shards.push_back({shard.last_timestamp,
                             res_.log_volume.next_index(shard.stream) - 1,
                             shard.last_index});
    }
    snaps.push_back(std::move(snap));
  }
  res_.log_volume.sync(
      [this, snaps = std::move(snaps), on_durable = std::move(on_durable)] {
        for (const auto& snap : snaps) {
          PerPubend& state = per(snap.pubend);
          state.durable_timestamp =
              std::max(state.durable_timestamp, snap.last_timestamp);
          for (std::size_t k = 0; k < snap.shards.size(); ++k) {
            Shard& shard = state.shards[k];
            const ShardSnapshot& ss = snap.shards[k];
            if (ss.last_timestamp > shard.durable_timestamp) {
              shard.durable_timestamp = ss.last_timestamp;
              shard.durable_scan_index = ss.scan_index;
              shard.durable_last_index = ss.last_index;
              shard.meta_dirty = true;
            }
          }
        }
        if (on_durable) on_durable();
      });
}

Tick PersistentFilteringSubsystem::last_accepted(PubendId pubend) const {
  return per(pubend).last_accepted;
}

Tick PersistentFilteringSubsystem::last_timestamp(PubendId pubend) const {
  return per(pubend).last_timestamp;
}

Tick PersistentFilteringSubsystem::durable_timestamp(PubendId pubend) const {
  return per(pubend).durable_timestamp;
}

Tick PersistentFilteringSubsystem::read_coverage_limit(PubendId pubend) const {
  const PerPubend& state = per(pubend);
  return state.batch_count == 0 ? kTickInfinity : state.batch_first - 1;
}

void PersistentFilteringSubsystem::read(PubendId pubend, SubscriberId subscriber,
                                        Tick from, std::size_t max_positions,
                                        std::function<void(ReadResult)> done) {
  GRYPHON_CHECK(max_positions > 0);
  PerPubend& state = per(pubend);
  // The subscriber's whole chain lives in its shard; records in other
  // shards never name it, so silence inference against the pubend-level
  // lastTimestamp stays sound.
  Shard& shard = state.shards[subscriber_shard(subscriber, shards_)];
  ReadResult result;
  result.covered_upto = state.last_timestamp;
  result.complete_from = from;
  result.reached_last = true;
  result.safe_extension_upto = read_coverage_limit(pubend);

  // Walk the subscriber's back-pointer chain, newest to oldest.
  bool truncated_by_chop = false;
  storage::LogIndex cur = storage::kNoIndex;
  if (auto it = shard.last_index.find(subscriber); it != shard.last_index.end()) {
    cur = it->second;
  }
  std::vector<TickRange> descending;
  while (cur != storage::kNoIndex) {
    const auto* bytes = res_.log_volume.read(shard.stream, cur);
    if (bytes == nullptr) {
      truncated_by_chop = true;
      break;
    }
    ++result.records_traversed;
    result.bytes_read += bytes->size() + storage::kLogRecordHeaderBytes;
    Record rec = decode(*bytes);
    if (rec.range.to <= from) break;
    descending.push_back({std::max(rec.range.from, from + 1), rec.range.to});
    storage::LogIndex prev = storage::kNoIndex;
    bool found = false;
    for (const auto& [sub, p] : rec.entries) {
      if (sub == subscriber) {
        prev = p;
        found = true;
        break;
      }
    }
    GRYPHON_CHECK_MSG(found, "back-pointer chain visited foreign record");
    cur = prev;
  }

  if (truncated_by_chop) {
    // Records below the chop are gone; the region (from, chopped_upto] is
    // unknown to the PFS (the caller leaves it Q and lets the network — and
    // ultimately the pubend's L ladder — resolve it).
    result.complete_from = std::max(from, shard.chopped_upto);
  }

  std::reverse(descending.begin(), descending.end());
  // Buffer limit: keep the oldest max_positions covered ticks (splitting
  // the last range if needed); coverage stops where the buffer does.
  std::size_t kept_positions = 0;
  std::vector<TickRange> kept;
  for (const TickRange& r : descending) {
    if (kept_positions >= max_positions) {
      result.reached_last = false;
      break;
    }
    const auto room = static_cast<Tick>(max_positions - kept_positions);
    if (r.length() > room) {
      kept.push_back({r.from, r.from + room - 1});
      kept_positions += static_cast<std::size_t>(room);
      result.reached_last = false;
      break;
    }
    kept.push_back(r);
    kept_positions += static_cast<std::size_t>(r.length());
  }
  if (!result.reached_last && !kept.empty()) result.covered_upto = kept.back().to;
  if (!result.reached_last && kept.empty()) result.covered_upto = from;
  result.q_ranges = std::move(kept);

  ++reads_;
  m_reads_->inc();
  if (result.reached_last) ++reads_reached_last_;

  // One seek + sequential transfer of the traversed records.
  const std::size_t io_bytes = std::max<std::size_t>(result.bytes_read, 512);
  res_.disk.read(io_bytes, [result = std::move(result), done = std::move(done)] {
    done(result);
  });
}

void PersistentFilteringSubsystem::chop_upto(PubendId pubend, Tick upto) {
  PerPubend& state = per(pubend);
  auto& volume = res_.log_volume;
  for (Shard& shard : state.shards) {
    if (upto <= shard.chopped_upto) continue;
    while (volume.first_index(shard.stream) < volume.next_index(shard.stream)) {
      const storage::LogIndex first = volume.first_index(shard.stream);
      const auto* bytes = volume.read(shard.stream, first);
      GRYPHON_CHECK(bytes != nullptr);
      if (decode(*bytes).range.to > upto) break;
      volume.chop(shard.stream, first);
    }
    shard.chopped_upto = upto;
    shard.meta_dirty = true;
  }
}

std::vector<storage::Database::Put> PersistentFilteringSubsystem::dirty_metadata() {
  std::vector<storage::Database::Put> puts;
  for (auto& [p, state] : pubends_) {
    for (std::size_t k = 0; k < state.shards.size(); ++k) {
      Shard& shard = state.shards[k];
      if (!shard.meta_dirty) continue;
      puts.push_back({kMetaTable, meta_key(p, k, "last_ts"),
                      encode_i64(shard.durable_timestamp)});
      puts.push_back({kMetaTable, meta_key(p, k, "scan"),
                      encode_i64(static_cast<std::int64_t>(shard.durable_scan_index))});
      puts.push_back(
          {kMetaTable, meta_key(p, k, "chopped"), encode_i64(shard.chopped_upto)});
      for (const auto& [s, idx] : shard.durable_last_index) {
        puts.push_back(
            {kSubTable, sub_key(p, s), encode_i64(static_cast<std::int64_t>(idx))});
      }
      shard.meta_dirty = false;
    }
  }
  return puts;
}

}  // namespace gryphon::core
