// The wire-message vocabulary of the broker network and the client protocol.
//
// Broker <-> broker:
//   StreamDataMsg     knowledge (D/S/L items) flowing down the tree, both
//                     fresh in-order streaming and nack responses
//   NackMsg           curiosity flowing up: "these ranges are Q for me"
//   ReleaseUpdateMsg  (released, latestDelivered) mins flowing up
//   SubscribeMsg /    subscription (predicate) propagation up the tree, for
//   UnsubscribeMsg    link-level filtering
//   BrokerResumeMsg   child (re)connects and tells the parent where to
//                     resume each pubend's stream
//
// Client <-> broker:
//   PublishMsg / PublishAckMsg          publisher <-> PHB (at-least-once +
//                                       pubend-side dedup = exactly-once log)
//   ConnectMsg / ConnectedMsg /         durable subscriber session control
//   DisconnectMsg / UnsubscribeReqMsg
//   AckMsg                              subscriber pushes its CT (paper §2)
//   EventDeliveryMsg / SilenceDeliveryMsg / GapDeliveryMsg
//                                       the three message kinds of §2
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/checkpoint_token.hpp"
#include "core/event_codec.hpp"
#include "matching/event.hpp"
#include "routing/tick_map.hpp"
#include "sim/message.hpp"
#include "util/ids.hpp"
#include "util/interval_set.hpp"
#include "util/time.hpp"

namespace gryphon::core {

enum class MsgKind : std::uint8_t {
  kStreamData,
  kNack,
  kReleaseUpdate,
  kSubscribe,
  kSubscribeAck,
  kUnsubscribe,
  kBrokerResume,
  kPublish,
  kPublishAck,
  kConnect,
  kConnected,
  kDisconnect,
  kUnsubscribeReq,
  kAck,
  kEventDelivery,
  kSilenceDelivery,
  kGapDelivery,
  kJmsConsumed,
};

/// Fixed per-message envelope size — exactly the wire frame header
/// (wire/frame.hpp: magic, version, kind, length, CRC32C, padded to 64
/// bytes). Single source of truth; the frame static-asserts against it.
///
/// Every wire_size() below is kEnvelopeBytes + the exact payload byte count
/// the wire codec (src/wire/codec.cpp) produces for that kind — CodecTransport
/// asserts the parity on every send, so the timing model stays honest.
constexpr std::size_t kEnvelopeBytes = 64;

class Msg : public sim::Message {
 public:
  explicit Msg(MsgKind kind) : kind_(kind) {}
  [[nodiscard]] MsgKind kind() const { return kind_; }

 private:
  MsgKind kind_;
};

// ---------------------------------------------------------------- brokers

struct StreamDataMsg final : Msg {
  StreamDataMsg(PubendId p, std::vector<routing::KnowledgeItem> its)
      : Msg(MsgKind::kStreamData), pubend(p), items(std::move(its)) {}

  PubendId pubend;
  std::vector<routing::KnowledgeItem> items;

  [[nodiscard]] std::size_t wire_size() const override {
    std::size_t n = kEnvelopeBytes + 8;  // pubend + item count
    for (const auto& item : items) {
      n += 17;  // value tag + range {from, to}
      if (item.event) n += encoded_event_bytes(*item.event);
    }
    return n;
  }
};

struct NackMsg final : Msg {
  NackMsg(PubendId p, std::vector<TickRange> rs, bool authoritative = false)
      : Msg(MsgKind::kNack),
        pubend(p),
        ranges(std::move(rs)),
        authoritative_only(authoritative) {}

  PubendId pubend;
  std::vector<TickRange> ranges;
  /// Refiltering recovery (reconnect-anywhere): intermediate caches must
  /// not answer — their S knowledge was filtered against an older
  /// subscription set; only the pubend's ladder is authoritative.
  bool authoritative_only;

  [[nodiscard]] std::size_t wire_size() const override {
    return kEnvelopeBytes + 9 + 16 * ranges.size();
  }
};

struct ReleaseUpdateMsg final : Msg {
  ReleaseUpdateMsg(PubendId p, Tick rel, Tick ld)
      : Msg(MsgKind::kReleaseUpdate), pubend(p), released(rel), latest_delivered(ld) {}

  PubendId pubend;
  Tick released;
  Tick latest_delivered;

  [[nodiscard]] std::size_t wire_size() const override { return kEnvelopeBytes + 20; }
};

struct SubscribeMsg final : Msg {
  SubscribeMsg(SubscriberId s, std::string pred)
      : Msg(MsgKind::kSubscribe), subscriber(s), predicate_text(std::move(pred)) {}

  SubscriberId subscriber;
  std::string predicate_text;

  [[nodiscard]] std::size_t wire_size() const override {
    return kEnvelopeBytes + 8 + predicate_text.size();
  }
};

struct SubscribeAckMsg final : Msg {
  SubscribeAckMsg(SubscriberId s, std::vector<std::pair<PubendId, Tick>> hs)
      : Msg(MsgKind::kSubscribeAck), subscriber(s), heads(std::move(hs)) {}

  SubscriberId subscriber;
  /// Pubend heads at the instant the PHB applied the subscription: every
  /// tick after these is filtered with the new subscription included. The
  /// SHB needs this boundary to start new subscribers without a propagation
  /// hole and to bound refiltering for migrated ones.
  std::vector<std::pair<PubendId, Tick>> heads;

  [[nodiscard]] std::size_t wire_size() const override {
    return kEnvelopeBytes + 8 + 12 * heads.size();
  }
};

struct UnsubscribeMsg final : Msg {
  explicit UnsubscribeMsg(SubscriberId s) : Msg(MsgKind::kUnsubscribe), subscriber(s) {}

  SubscriberId subscriber;

  [[nodiscard]] std::size_t wire_size() const override { return kEnvelopeBytes + 4; }
};

struct BrokerResumeMsg final : Msg {
  explicit BrokerResumeMsg(std::vector<std::pair<PubendId, Tick>> points)
      : Msg(MsgKind::kBrokerResume), resume_from(std::move(points)) {}

  /// Per pubend: the child has everything <= tick; stream from tick+1.
  std::vector<std::pair<PubendId, Tick>> resume_from;

  [[nodiscard]] std::size_t wire_size() const override {
    return kEnvelopeBytes + 4 + 12 * resume_from.size();
  }
};

// ---------------------------------------------------------------- publishers

struct PublishMsg final : Msg {
  PublishMsg(PublisherId pub, std::uint64_t s, std::uint64_t floor, PubendId p,
             matching::EventDataPtr ev)
      : Msg(MsgKind::kPublish),
        publisher(pub),
        seq(s),
        acked_below(floor),
        pubend(p),
        event(std::move(ev)) {}

  PublisherId publisher;
  std::uint64_t seq;  // publisher-assigned, for PHB-side dedup on retry
  /// Cumulative ack floor: every seq below this has been acked to the
  /// publisher and will never be retried. Lets the pubend prune its exact
  /// per-seq dedup window (a plain "latest seq" comparison is wrong: after a
  /// PHB outage, retried old seqs arrive behind fresh higher seqs and would
  /// be dropped-but-acked as duplicates).
  std::uint64_t acked_below;
  PubendId pubend;
  matching::EventDataPtr event;

  [[nodiscard]] std::size_t wire_size() const override {
    return kEnvelopeBytes + 24 + encoded_event_bytes(*event);
  }
};

struct PublishAckMsg final : Msg {
  PublishAckMsg(PublisherId pub, std::uint64_t s, Tick t)
      : Msg(MsgKind::kPublishAck), publisher(pub), seq(s), assigned_tick(t) {}

  PublisherId publisher;
  std::uint64_t seq;
  Tick assigned_tick;

  [[nodiscard]] std::size_t wire_size() const override { return kEnvelopeBytes + 20; }
};

// ---------------------------------------------------------------- subscribers

struct ConnectMsg final : Msg {
  ConnectMsg(SubscriberId s, bool first, std::string pred, CheckpointToken token,
             bool jms = false, bool stored_ct = false)
      : Msg(MsgKind::kConnect),
        subscriber(s),
        first_connect(first),
        predicate_text(std::move(pred)),
        ct(std::move(token)),
        jms_auto_ack(jms),
        use_stored_ct(stored_ct) {}

  SubscriberId subscriber;
  bool first_connect;          // create the durable subscription
  std::string predicate_text;  // used when the SHB does not know the sub yet
  CheckpointToken ct;          // resumption point (ignored on first connect)
  bool jms_auto_ack;           // SHB-managed CT, committed per event (§5.2)
  bool use_stored_ct;          // resume from the SHB's stored CT (JMS mode)

  [[nodiscard]] std::size_t wire_size() const override {
    return kEnvelopeBytes + 9 + predicate_text.size() + ct.encoded_size();
  }
};

struct ConnectedMsg final : Msg {
  ConnectedMsg(SubscriberId s, CheckpointToken token)
      : Msg(MsgKind::kConnected), subscriber(s), initial_ct(std::move(token)) {}

  SubscriberId subscriber;
  /// On first connect: the starting CT (latestDelivered of every pubend).
  CheckpointToken initial_ct;

  [[nodiscard]] std::size_t wire_size() const override {
    return kEnvelopeBytes + 4 + initial_ct.encoded_size();
  }
};

struct DisconnectMsg final : Msg {
  explicit DisconnectMsg(SubscriberId s) : Msg(MsgKind::kDisconnect), subscriber(s) {}

  SubscriberId subscriber;

  [[nodiscard]] std::size_t wire_size() const override { return kEnvelopeBytes + 4; }
};

struct UnsubscribeReqMsg final : Msg {
  explicit UnsubscribeReqMsg(SubscriberId s)
      : Msg(MsgKind::kUnsubscribeReq), subscriber(s) {}

  SubscriberId subscriber;

  [[nodiscard]] std::size_t wire_size() const override { return kEnvelopeBytes + 4; }
};

struct AckMsg final : Msg {
  AckMsg(SubscriberId s, CheckpointToken token)
      : Msg(MsgKind::kAck), subscriber(s), ct(std::move(token)) {}

  SubscriberId subscriber;
  CheckpointToken ct;

  [[nodiscard]] std::size_t wire_size() const override {
    return kEnvelopeBytes + 4 + ct.encoded_size();
  }
};

struct EventDeliveryMsg final : Msg {
  EventDeliveryMsg(SubscriberId s, PubendId p, Tick t, matching::EventDataPtr ev,
                   bool catchup)
      : Msg(MsgKind::kEventDelivery),
        subscriber(s),
        pubend(p),
        tick(t),
        event(std::move(ev)),
        from_catchup(catchup) {}

  SubscriberId subscriber;
  PubendId pubend;
  Tick tick;
  matching::EventDataPtr event;
  bool from_catchup;  // diagnostics only

  [[nodiscard]] std::size_t wire_size() const override {
    return kEnvelopeBytes + 17 + encoded_event_bytes(*event);
  }
};

struct SilenceDeliveryMsg final : Msg {
  SilenceDeliveryMsg(SubscriberId s, PubendId p, Tick t)
      : Msg(MsgKind::kSilenceDelivery), subscriber(s), pubend(p), upto(t) {}

  SubscriberId subscriber;
  PubendId pubend;
  Tick upto;  // guarantees no matching events in (previous, upto]

  [[nodiscard]] std::size_t wire_size() const override { return kEnvelopeBytes + 16; }
};

struct JmsConsumedMsg final : Msg {
  JmsConsumedMsg(SubscriberId s, PubendId p, Tick t)
      : Msg(MsgKind::kJmsConsumed), subscriber(s), pubend(p), tick(t) {}

  SubscriberId subscriber;
  PubendId pubend;
  Tick tick;

  [[nodiscard]] std::size_t wire_size() const override { return kEnvelopeBytes + 16; }
};

struct GapDeliveryMsg final : Msg {
  GapDeliveryMsg(SubscriberId s, PubendId p, TickRange r)
      : Msg(MsgKind::kGapDelivery), subscriber(s), pubend(p), range(r) {}

  SubscriberId subscriber;
  PubendId pubend;
  TickRange range;  // there MAY have been matching events in (prev, range.to]

  [[nodiscard]] std::size_t wire_size() const override { return kEnvelopeBytes + 24; }
};

}  // namespace gryphon::core
