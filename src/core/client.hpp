// Light base for client endpoints (publishers, durable subscribers).
//
// Clients are simulated as free network endpoints: unlike brokers they have
// no CPU/disk model (the paper's experiments use enough client machines that
// clients are never the bottleneck) and they do not crash in-process —
// subscriber "failure" is modeled as disconnection, which is exactly the
// paper's durable-subscription model.
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "core/messages.hpp"
#include "sim/network.hpp"
#include "sim/scheduler.hpp"

namespace gryphon::core {

class Client {
 public:
  Client(sim::Scheduler& scheduler, sim::Network& network, std::string name)
      : sim_(scheduler), network_(network), alive_(std::make_shared<std::monostate>()) {
    endpoint_ = network_.add_endpoint(
        std::move(name), [this](sim::EndpointId from, sim::MessagePtr msg) {
          handle(from, static_cast<const Msg&>(*msg));
        });
  }

  virtual ~Client() = default;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  [[nodiscard]] sim::EndpointId endpoint() const { return endpoint_; }

 protected:
  virtual void handle(sim::EndpointId from, const Msg& msg) = 0;

  void send(sim::EndpointId to, sim::MessagePtr msg) {
    network_.send(endpoint_, to, std::move(msg));
  }

  void defer(SimDuration delay, std::function<void()> fn) {
    sim_.schedule_after(delay,
                        [weak = std::weak_ptr<std::monostate>(alive_),
                         fn = std::move(fn)] {
                          if (weak.lock()) fn();
                        });
  }

  void every(SimDuration period, std::function<void()> fn) {
    defer(period, [this, period, fn = std::move(fn)]() mutable {
      fn();
      every(period, std::move(fn));
    });
  }

  [[nodiscard]] SimTime now() const { return sim_.now(); }

  sim::Scheduler& sim_;
  sim::Network& network_;

 private:
  sim::EndpointId endpoint_ = 0;
  std::shared_ptr<std::monostate> alive_;
};

}  // namespace gryphon::core
