// Tunable timing and CPU-cost parameters of the broker network.
//
// The cost model is the hardware-substitution layer (DESIGN.md §4): per-op
// CPU charges are calibrated so that one 6-core SHB saturates around 20K
// deliveries/s, as the paper's F80 does, and all scalability/idle-time
// results then *emerge* from queueing rather than being scripted.
#pragma once

#include <cstddef>

#include "util/time.hpp"

namespace gryphon::core {

struct CostModel {
  // --- CPU costs (total work; the Cpu divides by its core count) ---
  /// PHB per published event: timestamping, matching, log-buffer handling.
  SimDuration publish_base = usec(1800);
  /// PHB/intermediate per child link an event is forwarded on.
  SimDuration per_child_forward = usec(250);
  /// SHB per D tick arriving at the istream/constream: accumulate, match
  /// against hosted subscriptions, build the PFS record.
  SimDuration shb_event_process = usec(560);
  /// Constream per (event, non-catchup subscriber) delivery. Dominates SHB
  /// load; 6 cores / this cost ~= 20K deliveries/s.
  SimDuration per_delivery = usec(280);
  /// Catchup-stream per (event, subscriber) delivery — separate stream
  /// processing makes this roughly twice as expensive (paper §5: ~10K ev/s
  /// when every subscriber runs its own catchup stream).
  SimDuration per_catchup_delivery = usec(470);
  /// Handling one nack message (either direction).
  SimDuration nack_process = usec(120);
  /// Serving one cached event in a nack response.
  SimDuration per_nack_response_event = usec(80);
  /// PFS batch read: per record traversed (CPU part; IO is on the disk).
  SimDuration pfs_read_per_record = usec(4);
  /// Any small control message (acks, release updates, connects).
  SimDuration control_process = usec(60);

  // --- protocol timers ---
  /// Pubend announces silence up to T(p) at this interval when idle.
  SimDuration silence_interval = msec(100);
  /// Curiosity: how long a Q gap may stall the doubt horizon before nacking.
  SimDuration nack_timeout = msec(100);
  /// Re-nack outstanding ranges that received no response: base delay of the
  /// per-stream retry backoff (retry k waits min(nack_retry *
  /// nack_retry_multiplier^k, nack_retry_max), scaled by a deterministic
  /// jitter factor in [1 - nack_retry_jitter, 1 + nack_retry_jitter) hashed
  /// from (broker, stream, attempt) — no shared RNG, so retry timing is
  /// replayable). Any response progress resets k to 0, so a live-but-slow
  /// upstream sees the base period while a severed one is probed ever more
  /// gently up to the cap.
  SimDuration nack_retry = msec(1000);
  SimDuration nack_retry_max = sec(4);
  double nack_retry_multiplier = 2.0;
  double nack_retry_jitter = 0.2;
  /// Brokers push (released, latestDelivered) mins upstream at this period.
  SimDuration release_update_interval = msec(250);
  /// SHB commits dirty released(s,p) / latestDelivered(p) rows (paper: 250ms).
  SimDuration db_commit_interval = msec(250);
  /// SHB sends a silence message to a subscriber idle for this long.
  SimDuration subscriber_silence_after = msec(500);
  /// Disconnected clients retry connection at this period.
  SimDuration reconnect_retry = msec(500);

  // --- PFS ---
  /// Force a PFS log sync after this many appended records (paper: 200).
  std::size_t pfs_sync_every_records = 200;
  /// ... or after this long with unsynced records, whichever first.
  SimDuration pfs_sync_interval = msec(1000);
  /// Batch-read buffer capacity in Q ticks (paper §5.3: 5000).
  std::size_t pfs_read_buffer_q_ticks = 5000;
  /// PFS precision (paper §4.2): 1 = precise (one record per matched tick,
  /// the paper's implementation); > 1 coalesces that many matched ticks
  /// into one range record with the union of subscriber lists — cheaper
  /// writes, coarser Q knowledge, extra refiltering on catchup.
  std::size_t pfs_imprecise_batch = 1;

  // --- flow control / batching ---
  /// Max knowledge items per StreamDataMsg.
  std::size_t max_items_per_msg = 128;
  /// Max outstanding nacked ticks per catchup stream.
  Tick catchup_nack_window = 1200;
  /// Client flow control (paper §4.1/[14]): a catchup stream recovers at
  /// most this many missed-event positions per second, so reconnecting
  /// clients are not overwhelmed. With the paper's 200 ev/s live rate this
  /// yields the observed 5-6s catchup after a 5s disconnection.
  double catchup_rate_limit_eps = 380.0;
  /// How long a token-starved catchup stream waits before pumping again.
  SimDuration catchup_pump_interval = msec(50);
  /// Congestion control [14]: stop pumping catchup positions while the SHB
  /// CPU is this far behind, so catchup consumes spare capacity instead of
  /// inflating an unbounded delivery backlog.
  SimDuration catchup_backpressure_backlog = msec(200);
  /// Max nacked ticks per nack-timer firing for the SHB istream. Together
  /// with nack_timeout this paces constream recovery: 500 ticks / 100 ms =
  /// the paper's ~5x latestDelivered slope during post-crash recovery.
  Tick istream_nack_window = 500;
  /// Intermediate brokers / SHB istreams cache this many trailing ticks of
  /// knowledge+events for serving catchup nacks locally.
  Tick cache_span_ticks = 30'000;
  /// Reconnect-herd admission control: at most this many catchup streams may
  /// be *active* (issuing PFS reads, nacking upstream, delivering) per SHB at
  /// once; further resumed sessions queue FIFO and are admitted as active
  /// streams switch over. 0 = unbounded (every stream activates on arrival).
  std::size_t catchup_admission_limit = 64;

  // Per-message envelope bytes are NOT configurable: the envelope is the
  // wire frame header, core::kEnvelopeBytes (messages.hpp), static-asserted
  // against wire::kFrameHeaderBytes.
};

/// Client reconnect backoff (see DESIGN.md "Fault model"). Retry k (0-based)
/// of one connection attempt waits min(base * multiplier^k, max), scaled by
/// a deterministic jitter factor in [1 - jitter, 1 + jitter) derived from
/// (subscriber id, connection attempt, k). No shared RNG is consumed, so
/// backoff timing is replayable and never perturbs determinism elsewhere;
/// distinct subscribers still spread out instead of thundering back in sync.
struct ReconnectBackoff {
  SimDuration base = msec(500);
  SimDuration max = sec(4);
  double multiplier = 2.0;
  double jitter = 0.2;
};

struct BrokerConfig {
  int cores = 6;  // RS/6000 F80
  CostModel costs{};
  /// Shards for the SHB session table and the PFS log streams, keyed by
  /// subscriber-id hash (core/sharding.hpp). 1 = the unsharded layout,
  /// bit-identical with pre-sharding deployments (DESIGN.md §4.8).
  std::size_t pfs_shards = 1;
};

}  // namespace gryphon::core
