#include "core/event_codec.hpp"

#include "util/assert.hpp"

namespace gryphon::core {

namespace {

enum class ValueTag : std::uint8_t { kInt = 0, kDouble = 1, kBool = 2, kString = 3 };

void encode_value(BufWriter& w, const matching::Value& v) {
  if (v.is_string()) {
    w.put_u8(static_cast<std::uint8_t>(ValueTag::kString));
    w.put_string(v.as_string());
  } else if (v.is_bool()) {
    w.put_u8(static_cast<std::uint8_t>(ValueTag::kBool));
    w.put_u8(v.as_bool() ? 1 : 0);
  } else {
    // Both int64 and double attributes round-trip as double here; the
    // matching layer compares numerics numerically, so this is lossless for
    // protocol purposes (int64 attrs beyond 2^53 are not used by workloads).
    w.put_u8(static_cast<std::uint8_t>(ValueTag::kDouble));
    const double d = v.as_double();
    std::uint64_t bits;
    static_assert(sizeof bits == sizeof d);
    std::memcpy(&bits, &d, sizeof bits);
    w.put_u64(bits);
  }
}

matching::Value decode_value(BufReader& r) {
  switch (static_cast<ValueTag>(r.get_u8())) {
    case ValueTag::kString:
      return matching::Value(r.get_string());
    case ValueTag::kBool:
      return matching::Value(r.get_u8() != 0);
    case ValueTag::kDouble: {
      const std::uint64_t bits = r.get_u64();
      double d;
      std::memcpy(&d, &bits, sizeof d);
      return matching::Value(d);
    }
    case ValueTag::kInt:
      return matching::Value(static_cast<std::int64_t>(r.get_u64()));
  }
  GRYPHON_CHECK_MSG(false, "corrupt value tag");
  return {};
}

}  // namespace

void encode_event_data(BufWriter& w, const matching::EventData& e) {
  w.put_u32(static_cast<std::uint32_t>(e.attributes().size()));
  for (const auto& [name, value] : e.attributes()) {
    w.put_string(name);
    encode_value(w, value);
  }
  // The record carries the full application payload: payload_size() bytes
  // on disk and on the wire (workload generators pad without materializing,
  // but the byte accounting must reflect the real size).
  w.put_string(e.payload());
  const auto padded = static_cast<std::uint32_t>(e.payload_size());
  w.put_u32(padded);
  w.put_zeros(padded - e.payload().size());
}

matching::EventDataPtr decode_event_data(BufReader& r,
                                          const std::shared_ptr<const void>& owner) {
  const auto n_attrs = r.get_u32();
  matching::EventData::AttributeList attrs;
  attrs.reserve(n_attrs);
  for (std::uint32_t i = 0; i < n_attrs; ++i) {
    std::string name = r.get_string();
    attrs.emplace_back(std::move(name), decode_value(r));
  }
  // Zero-copy path: the payload stays a view into the frame bytes, pinned
  // by the owner handle; only attribute names/values (small, usually SSO)
  // are materialized. An empty payload needs no pin at all.
  if (owner != nullptr) {
    const std::string_view payload = r.get_string_view();
    const auto padded = r.get_u32();
    if (padded > payload.size()) r.get_bytes(padded - payload.size());
    return std::make_shared<matching::EventData>(
        std::move(attrs), payload, padded,
        payload.empty() ? nullptr : owner);
  }
  std::string payload = r.get_string();
  const auto padded = r.get_u32();
  if (padded > payload.size()) r.get_bytes(padded - payload.size());
  return std::make_shared<matching::EventData>(std::move(attrs), std::move(payload),
                                               padded);
}

std::size_t encoded_event_bytes(const matching::EventData& e) {
  std::size_t n = 4;  // attribute count
  for (const auto& [name, value] : e.attributes()) {
    n += 4 + name.size() + 1;  // length-prefixed name + value tag
    if (value.is_string()) {
      n += 4 + value.as_string().size();
    } else if (value.is_bool()) {
      n += 1;
    } else {
      n += 8;  // int64 and double both travel as a double
    }
  }
  return n + 8 + e.payload_size();  // payload string + padded-size u32
}

std::vector<std::byte> encode_logged_event(const LoggedEvent& e,
                                           std::vector<std::byte> reuse) {
  GRYPHON_CHECK(e.event != nullptr);
  BufWriter w(std::move(reuse));
  w.put_i64(e.tick);
  w.put_u32(e.publisher.value());
  w.put_u64(e.seq);
  encode_event_data(w, *e.event);
  return w.take();
}

LoggedEvent decode_logged_event(std::span<const std::byte> bytes) {
  BufReader r(bytes);
  LoggedEvent e;
  e.tick = r.get_i64();
  e.publisher = PublisherId{r.get_u32()};
  e.seq = r.get_u64();
  e.event = decode_event_data(r);
  GRYPHON_CHECK_MSG(r.done(), "trailing bytes in event record");
  return e;
}

}  // namespace gryphon::core
