#include "core/shb.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "core/sharding.hpp"
#include "util/byte_buffer.hpp"
#include "util/logging.hpp"

namespace gryphon::core {

namespace {

constexpr const char* kSubsTable = "shb_subs";
constexpr const char* kReleasedTable = "shb_released";
constexpr const char* kLdTable = "shb_ld";

std::string rel_key(SubscriberId s, PubendId p) {
  return std::to_string(s.value()) + ':' + std::to_string(p.value());
}

std::vector<std::byte> encode_i64(std::int64_t v) {
  BufWriter w;
  w.put_i64(v);
  return w.take();
}

std::int64_t decode_i64(const std::vector<std::byte>& bytes) {
  BufReader r(bytes);
  return r.get_i64();
}

std::vector<std::byte> encode_sub_row(bool jms, const std::string& predicate) {
  BufWriter w;
  w.put_u8(jms ? 1 : 0);
  w.put_string(predicate);
  return w.take();
}

}  // namespace

SubscriberHostingBroker::SubscriberHostingBroker(NodeResources& resources,
                                                 BrokerConfig config,
                                                 const std::vector<PubendId>& pubends)
    : Broker(resources, config),
      pubend_ids_(pubends),
      sub_shards_(std::max<std::size_t>(1, config_.pfs_shards)),
      pfs_(resources, config_.costs, std::max<std::size_t>(1, config_.pfs_shards)) {
  auto& m = res_.metrics;
  for (PubendId p : pubend_ids_) {
    PerPubend state;
    state.id = p;
    state.shard_released_min.assign(sub_shards_.size(), kTickZero);
    state.shard_released_dirty.assign(sub_shards_.size(), 1);
    state.g_latest_delivered =
        m.gauge("shb.p" + std::to_string(p.value()) + ".latest_delivered");
    pubends_.emplace(p, std::move(state));
  }
  m_matched_ = m.counter("shb.matched");
  m_constream_deliveries_ = m.counter("shb.constream_deliveries");
  m_catchup_deliveries_ = m.counter("shb.catchup_deliveries");
  m_silences_ = m.counter("shb.silences_sent");
  m_gaps_ = m.counter("shb.gaps_sent");
  m_catchup_opened_ = m.counter("shb.catchup_streams_opened");
  m_catchup_closed_ = m.counter("shb.catchup_streams_closed");
  m_switchovers_ = m.counter("shb.switchovers");
  m_catchup_completions_ = m.counter("shb.catchup_completions");
  m_nacks_upstream_ = m.counter("shb.nacks_sent_upstream");
  m_catchup_istream_serves_ = m.counter("shb.catchup_events_served_from_istream");
  m_catchup_admitted_ = m.counter("shb.catchup_admitted");
  m_catchup_queued_ = m.counter("shb.catchup_queued");
  m_pfs_read_records_ = m.histogram("shb.pfs_read_records", 1.0, 1e6);
  // Snapshot-time probes over stream positions (std::map nodes are stable).
  for (auto& [p, state] : pubends_) {
    const std::string prefix = "shb.p" + std::to_string(p.value()) + ".";
    PerPubend* raw = &state;
    probes_.push_back(m.probe(prefix + "processed_upto", [raw] {
      return static_cast<double>(raw->processed_upto);
    }));
    probes_.push_back(m.probe(prefix + "doubt_span", [raw] {
      return static_cast<double>(raw->istream.head() - raw->processed_upto);
    }));
    probes_.push_back(m.probe(prefix + "istream_events", [raw] {
      return static_cast<double>(raw->istream.retained_events());
    }));
  }
  probes_.push_back(m.probe("shb.catchup_streams", [this] {
    return static_cast<double>(catchup_stream_count());
  }));
  probes_.push_back(m.probe("shb.catchup_active", [this] {
    return static_cast<double>(catchup_active_);
  }));
  probes_.push_back(m.probe("shb.catchup_queue_depth", [this] {
    return static_cast<double>(catchup_queued_);
  }));
  probes_.push_back(m.probe("shb.connected_subscribers", [this] {
    return static_cast<double>(connected_subscribers());
  }));
  // Covering-index health (DESIGN.md §4.8): hosted population, how far the
  // subsumption grouping compresses it, and the cumulative number of
  // predicate evaluations the matcher actually performed.
  probes_.push_back(m.probe("matching.subscriptions", [this] {
    return static_cast<double>(hosted_.size());
  }));
  probes_.push_back(m.probe("matching.covering_groups", [this] {
    return static_cast<double>(hosted_.group_count());
  }));
  probes_.push_back(m.probe("matching.match_candidates", [this] {
    return static_cast<double>(hosted_.candidates_evaluated());
  }));
}

SubscriberHostingBroker::PerPubend& SubscriberHostingBroker::per(PubendId p) {
  auto it = pubends_.find(p);
  GRYPHON_CHECK_MSG(it != pubends_.end(), "unknown pubend " << p);
  return it->second;
}

const SubscriberHostingBroker::PerPubend& SubscriberHostingBroker::per(PubendId p) const {
  auto it = pubends_.find(p);
  GRYPHON_CHECK_MSG(it != pubends_.end(), "unknown pubend " << p);
  return it->second;
}

std::map<SubscriberId, SubscriberHostingBroker::SubscriberState>&
SubscriberHostingBroker::shard_map(SubscriberId s) {
  return sub_shards_[subscriber_shard(s, sub_shards_.size())];
}

SubscriberHostingBroker::SubscriberState* SubscriberHostingBroker::try_sub(SubscriberId s) {
  auto& shard = shard_map(s);
  auto it = shard.find(s);
  return it == shard.end() ? nullptr : &it->second;
}

SubscriberHostingBroker::SubscriberState& SubscriberHostingBroker::sub(SubscriberId s) {
  SubscriberState* found = try_sub(s);
  GRYPHON_CHECK_MSG(found != nullptr, "unknown subscriber " << s);
  return *found;
}

void SubscriberHostingBroker::mark_released_dirty(SubscriberId s, PubendId p) {
  per(p).shard_released_dirty[subscriber_shard(s, sub_shards_.size())] = 1;
}

void SubscriberHostingBroker::mark_released_dirty_all(SubscriberId s) {
  const std::size_t k = subscriber_shard(s, sub_shards_.size());
  for (auto& [p, state] : pubends_) state.shard_released_dirty[k] = 1;
}

// --------------------------------------------------------------- lifecycle

void SubscriberHostingBroker::start() {
  pfs_.open(pubend_ids_);

  std::vector<std::pair<PubendId, Tick>> resume;
  resume.reserve(pubend_ids_.size());
  for (PubendId p : pubend_ids_) resume.emplace_back(p, kTickZero);
  send(parent_, std::make_shared<BrokerResumeMsg>(std::move(resume)));

  start_timers();
}

void SubscriberHostingBroker::recover() {
  pfs_.open(pubend_ids_);  // loads + repairs PFS metadata from the log

  // latestDelivered(p): the constream resumes from here (paper §4.1).
  for (auto& [p, state] : pubends_) {
    if (auto v = res_.database.get(kLdTable, std::to_string(p.value()))) {
      state.latest_delivered = decode_i64(*v);
    }
    state.g_latest_delivered->set(static_cast<double>(state.latest_delivered));
    state.processed_upto = state.latest_delivered;
    state.istream = routing::TickMap(state.latest_delivered);
    committed_ld_[p] = state.latest_delivered;
  }

  // Durable subscriptions + released(s,p).
  for (const auto& [key, value] : res_.database.scan(kSubsTable)) {
    SubscriberState s;
    s.id = SubscriberId{static_cast<std::uint32_t>(std::stoul(key))};
    BufReader r(value);
    s.jms_auto_ack = r.get_u8() != 0;
    s.predicate_text = r.get_string();
    s.predicate = matching::parse_predicate(s.predicate_text);
    for (PubendId p : pubend_ids_) s.released[p] = kTickZero;
    hosted_.add(s.id, s.predicate);
    shard_map(s.id).emplace(s.id, std::move(s));
  }
  for (const auto& [key, value] : res_.database.scan(kReleasedTable)) {
    const auto colon = key.find(':');
    GRYPHON_CHECK(colon != std::string::npos);
    const SubscriberId sid{static_cast<std::uint32_t>(std::stoul(key.substr(0, colon)))};
    const PubendId p{static_cast<std::uint32_t>(std::stoul(key.substr(colon + 1)))};
    SubscriberState* found = try_sub(sid);
    if (found == nullptr) continue;
    found->released[p] = decode_i64(value);
  }

  // Re-announce subscriptions upstream (idempotent) and resume the streams
  // from latestDelivered — everything after it is re-nacked (Fig. 7).
  for_each_sub([this](const SubscriberState& s) {
    send(parent_, std::make_shared<SubscribeMsg>(s.id, s.predicate_text));
  });
  std::vector<std::pair<PubendId, Tick>> resume;
  resume.reserve(pubend_ids_.size());
  for (PubendId p : pubend_ids_) resume.emplace_back(p, per(p).latest_delivered);
  send(parent_, std::make_shared<BrokerResumeMsg>(std::move(resume)));

  start_timers();
}

void SubscriberHostingBroker::start_timers() {
  every(config_.costs.nack_timeout, [this] { nack_istream_gaps(); });
  // There is deliberately no fixed-period nack retransmission timer here:
  // unanswered curiosity is re-sent by the per-stream exponential backoff
  // (schedule_*_retry), so a severed upstream is probed ever more gently
  // instead of being hammered by every straggler at the same frequency.
  every(config_.costs.release_update_interval, [this] { send_release_updates(); });
  every(config_.costs.db_commit_interval, [this] { commit_dirty_state(); });
  every(config_.costs.subscriber_silence_after, [this] { silence_sweep(); });
  every(config_.costs.pfs_sync_interval, [this] {
    if (pfs_unsynced_ > 0) request_pfs_sync();
  });
}

// ------------------------------------------------------------ observability

Tick SubscriberHostingBroker::latest_delivered(PubendId p) const {
  return per(p).latest_delivered;
}

Tick SubscriberHostingBroker::released(PubendId p) const { return computed_released(p); }

std::size_t SubscriberHostingBroker::catchup_stream_count() const {
  std::size_t n = 0;
  for (const auto& [p, state] : pubends_) n += state.catchup_subs.size();
  return n;
}

std::size_t SubscriberHostingBroker::connected_subscribers() const {
  return connected_.size();
}

Tick SubscriberHostingBroker::computed_released(PubendId p) const {
  const PerPubend& state = per(p);
  Tick rel = state.latest_delivered;
  for (std::size_t k = 0; k < sub_shards_.size(); ++k) {
    if (state.shard_released_dirty[k] != 0) {
      Tick shard_min = kTickInfinity;
      for (const auto& [sid, s] : sub_shards_[k]) {
        auto it = s.released.find(p);
        GRYPHON_CHECK(it != s.released.end());
        shard_min = std::min(shard_min, it->second);
      }
      state.shard_released_min[k] = shard_min;
      state.shard_released_dirty[k] = 0;
    }
    rel = std::min(rel, state.shard_released_min[k]);
  }
  return rel;
}

// ----------------------------------------------------------------- dispatch

SimDuration SubscriberHostingBroker::cost_of(const Msg& msg) const {
  const auto& costs = config_.costs;
  switch (msg.kind()) {
    case MsgKind::kStreamData: {
      const auto& m = static_cast<const StreamDataMsg&>(msg);
      std::size_t n_data = 0;
      for (const auto& item : m.items) {
        if (item.value == routing::TickValue::kD) ++n_data;
      }
      return costs.control_process +
             static_cast<SimDuration>(n_data) * costs.shb_event_process;
    }
    default:
      return costs.control_process;
  }
}

void SubscriberHostingBroker::handle(sim::EndpointId from, const Msg& msg) {
  switch (msg.kind()) {
    case MsgKind::kStreamData:
      on_stream_data(static_cast<const StreamDataMsg&>(msg));
      break;
    case MsgKind::kConnect:
      on_connect(from, static_cast<const ConnectMsg&>(msg));
      break;
    case MsgKind::kDisconnect:
      on_disconnect(static_cast<const DisconnectMsg&>(msg));
      break;
    case MsgKind::kAck:
      on_ack(static_cast<const AckMsg&>(msg));
      break;
    case MsgKind::kUnsubscribeReq:
      on_unsubscribe_req(static_cast<const UnsubscribeReqMsg&>(msg));
      break;
    case MsgKind::kJmsConsumed:
      on_jms_consumed(static_cast<const JmsConsumedMsg&>(msg));
      break;
    case MsgKind::kSubscribeAck: {
      const auto& m = static_cast<const SubscribeAckMsg&>(msg);
      auto pit = pending_setups_.find(m.subscriber);
      if (pit == pending_setups_.end()) return;  // recovery re-announce etc.
      for (const auto& [p, head] : m.heads) pit->second.ack_heads[p] = head;
      pit->second.ack_done = true;
      maybe_finish_setup(m.subscriber);
      break;
    }
    default:
      GRYPHON_CHECK_MSG(false, "SHB cannot handle message kind "
                                   << static_cast<int>(msg.kind()));
  }
}

// ---------------------------------------------------------------- constream

void SubscriberHostingBroker::on_stream_data(const StreamDataMsg& msg) {
  PerPubend& state = per(msg.pubend);
  const Tick pending_before = state.upstream_pending.total_length();
  for (const auto& item : msg.items) {
    state.istream.apply(item);
    state.upstream_pending.subtract(item.range);
  }
  if (state.upstream_pending.total_length() < pending_before) {
    // Upstream answered some curiosity: the retry backoff restarts.
    ++state.nack_progress;
    state.nack_attempt = 0;
  }
  advance_constream(msg.pubend);
  route_to_catchup_streams(msg.pubend, msg.items);
}

void SubscriberHostingBroker::advance_constream(PubendId p) {
  PerPubend& state = per(p);
  const Tick dh = state.istream.doubt_horizon(state.processed_upto);
  if (dh <= state.processed_upto) return;

  struct PendingSend {
    SubscriberId sid;
    std::uint64_t session;
    Tick tick;
    matching::EventDataPtr event;
    bool jms;
  };
  std::vector<PendingSend> sends;
  std::size_t direct_sends = 0;

  state.istream.for_each_data(
      state.processed_upto + 1, dh,
      [&](Tick t, const matching::EventDataPtr& event) {
        // Reuses the broker-owned scratch vector: the constream match is the
        // hottest allocation site at scale, and the result is consumed before
        // the next callback fires.
        hosted_.match_into(*event, match_scratch_);
        const auto& matches = match_scratch_;
        if (!matches.empty()) {
          m_matched_->inc();
          res_.tracer.record(now(), p.value(), t, TraceMilestone::kMatch);
        }
        if (!matches.empty() && t > pfs_.last_accepted(p)) {
          pfs_.append(p, t, matches);
          state.pending_pfs.push_back(t);
          ++pfs_unsynced_;
          ++stats_.pfs_records;
        }
        for (SubscriberId sid : matches) {
          SubscriberState& s = sub(sid);
          if (!s.connected || s.catchup.contains(p)) continue;
          if (auto it = s.suppress_upto.find(p);
              it != s.suppress_upto.end() && t <= it->second) {
            continue;
          }
          sends.push_back({sid, s.session, t, event, s.jms_auto_ack});
          if (!s.jms_auto_ack) ++direct_sends;
        }
      });
  state.processed_upto = dh;

  if (!sends.empty()) {
    // JMS sends are queued here but pay their delivery CPU at the gated
    // send in pump_jms(), not at enqueue.
    const auto cost = static_cast<SimDuration>(direct_sends) *
                      config_.costs.per_delivery;
    cpu_then(cost, [this, p, sends = std::move(sends)] {
      for (const auto& d : sends) {
        SubscriberState* found = try_sub(d.sid);
        if (found == nullptr) continue;
        SubscriberState& s = *found;
        if (!s.connected || s.session != d.session) continue;
        deliver_to_subscriber(s, p, d.tick, d.event, /*catchup=*/false);
        ++stats_.constream_deliveries;
      }
    });
  }

  if (pfs_unsynced_ >= config_.costs.pfs_sync_every_records) request_pfs_sync();
  update_latest_delivered(state);

  // Trim the istream cache: nothing below what every consumer has passed is
  // needed for ordering, and only cache_span_ticks of history is kept for
  // serving catchup locally.
  Tick min_keep = state.processed_upto;
  for (SubscriberId sid : state.catchup_subs) {
    min_keep = std::min(min_keep, sub(sid).catchup.at(p)->delivered_upto);
  }
  const Tick evict =
      std::min(min_keep, state.processed_upto - config_.costs.cache_span_ticks);
  if (evict > state.istream.origin()) state.istream.discard_upto(evict);
}

void SubscriberHostingBroker::update_latest_delivered(PerPubend& state) {
  const Tick ld = state.pending_pfs.empty()
                      ? state.processed_upto
                      : std::min(state.processed_upto, state.pending_pfs.front() - 1);
  if (ld > state.latest_delivered) {
    state.latest_delivered = ld;
    state.g_latest_delivered->set(static_cast<double>(ld));
  }
}

void SubscriberHostingBroker::request_pfs_sync() {
  if (pfs_sync_scheduled_) return;
  pfs_sync_scheduled_ = true;
  pfs_unsynced_ = 0;
  pfs_.sync(guarded([this] {
    pfs_sync_scheduled_ = false;
    for (auto& [p, state] : pubends_) {
      const Tick durable = pfs_.durable_timestamp(p);
      while (!state.pending_pfs.empty() && state.pending_pfs.front() <= durable) {
        state.pending_pfs.pop_front();
      }
      update_latest_delivered(state);
    }
    if (pfs_unsynced_ >= config_.costs.pfs_sync_every_records) request_pfs_sync();
  }));
}

void SubscriberHostingBroker::deliver_to_subscriber(SubscriberState& s, PubendId p,
                                                    Tick tick,
                                                    matching::EventDataPtr event,
                                                    bool catchup) {
  auto msg = std::make_shared<EventDeliveryMsg>(s.id, p, tick, std::move(event), catchup);
  s.last_delivery = now();
  s.silence_sent_upto[p] = tick;
  (catchup ? m_catchup_deliveries_ : m_constream_deliveries_)->inc();
  res_.tracer.record(now(), p.value(), tick,
                     catchup ? TraceMilestone::kDeliverCatchup
                             : TraceMilestone::kDeliverConstream,
                     s.id.value());
  if (s.jms_auto_ack) {
    s.jms_queue.emplace_back(p, std::move(msg));
    pump_jms(s);
    return;
  }
  send(s.client, std::move(msg));
}

void SubscriberHostingBroker::pump_jms(SubscriberState& s) {
  if (!s.connected || s.jms_commit_inflight || s.jms_queue.empty()) return;
  s.jms_commit_inflight = true;  // covers send -> consume -> CT commit
  cpu_then(config_.costs.per_delivery,
           [this, sid = s.id, session = s.session] {
             SubscriberState* found = try_sub(sid);
             if (found == nullptr) return;
             SubscriberState& s2 = *found;
             if (!s2.connected || s2.session != session || s2.jms_queue.empty()) return;
             send(s2.client, s2.jms_queue.front().second);
           });
}

void SubscriberHostingBroker::on_jms_consumed(const JmsConsumedMsg& msg) {
  SubscriberState* found = try_sub(msg.subscriber);
  if (found == nullptr) return;
  SubscriberState& s = *found;
  if (s.jms_queue.empty()) return;  // stale ack from a previous session
  const auto& [p, front] = s.jms_queue.front();
  if (front->pubend != msg.pubend || front->tick != msg.tick) return;  // stale

  // JMS auto-acknowledge: the CT update is committed per consumed event,
  // batched with other subscribers assigned to the same JDBC connection.
  const int conn = static_cast<int>(msg.subscriber.value()) %
                   res_.database.connections();
  const std::uint64_t session = s.session;
  res_.database.commit(
      conn,
      {{kReleasedTable, rel_key(msg.subscriber, msg.pubend), encode_i64(msg.tick)}},
      guarded([this, sid = msg.subscriber, p = msg.pubend, t = msg.tick, session] {
        SubscriberState* found2 = try_sub(sid);
        if (found2 == nullptr) return;
        SubscriberState& s2 = *found2;
        auto r = s2.released.find(p);
        if (r != s2.released.end() && t > r->second) {
          r->second = t;
          mark_released_dirty(sid, p);
        }
        if (s2.session != session) return;  // reconnected meanwhile
        GRYPHON_CHECK(!s2.jms_queue.empty());
        s2.jms_queue.pop_front();
        s2.jms_commit_inflight = false;
        pump_jms(s2);
      }));
}

// ------------------------------------------------------------------ clients

void SubscriberHostingBroker::on_connect(sim::EndpointId from, const ConnectMsg& msg) {
  SubscriberState* found = try_sub(msg.subscriber);
  if (found == nullptr) {
    GRYPHON_CHECK_MSG(!msg.predicate_text.empty(),
                      "cannot create subscription " << msg.subscriber
                                                    << " without a predicate");
    // A non-first connect for a subscription this broker does not host is a
    // reconnect-anywhere migration: honor the presented CT, and recover the
    // missed span by refiltering (there is no PFS history here).
    const bool migration = !msg.first_connect && !msg.ct.empty();

    SubscriberState s;
    s.id = msg.subscriber;
    s.predicate_text = msg.predicate_text;
    s.predicate = matching::parse_predicate(msg.predicate_text);
    s.jms_auto_ack = msg.jms_auto_ack;
    // A brand-new subscriber starts at the constream's delivery position
    // (the paper's latestDelivered): born non-catchup, owing nothing older
    // than its creation. A migrated one starts at its CT.
    for (PubendId p : pubend_ids_) {
      s.released[p] = migration ? msg.ct.of(p) : per(p).processed_upto;
    }
    hosted_.add(s.id, s.predicate);
    SubscriberState& stored =
        shard_map(s.id).emplace(s.id, std::move(s)).first->second;
    mark_released_dirty_all(msg.subscriber);
    send(parent_, std::make_shared<SubscribeMsg>(msg.subscriber, msg.predicate_text));

    // The subscription must be durable before the client is told it exists.
    std::vector<storage::Database::Put> puts;
    puts.push_back({kSubsTable, std::to_string(msg.subscriber.value()),
                    encode_sub_row(msg.jms_auto_ack, msg.predicate_text)});
    for (PubendId p : pubend_ids_) {
      puts.push_back({kReleasedTable, rel_key(msg.subscriber, p),
                      encode_i64(stored.released.at(p))});
    }
    // The session starts only when both the durable rows are committed and
    // the pubend acknowledged the subscription filter (maybe_finish_setup).
    PendingSetup pending;
    pending.from = from;
    pending.ct = msg.ct;
    pending.migration = migration;
    pending_setups_[msg.subscriber] = std::move(pending);
    schedule_setup_retry(msg.subscriber);

    res_.database.commit(0, std::move(puts), guarded([this, sid = msg.subscriber] {
                           auto it2 = pending_setups_.find(sid);
                           if (it2 == pending_setups_.end()) return;
                           it2->second.db_done = true;
                           maybe_finish_setup(sid);
                         }));
    return;
  }

  if (auto pit = pending_setups_.find(msg.subscriber); pit != pending_setups_.end()) {
    // Client retry while the creation handshake is in flight: refresh the
    // reply address; the session starts when the handshake completes.
    pit->second.from = from;
    return;
  }

  SubscriberState& s = *found;
  CheckpointToken ct;
  if (msg.first_connect || msg.use_stored_ct) {
    // Duplicate first-connect (lost ConnectedMsg) or JMS-style SHB-held CT.
    for (PubendId p : pubend_ids_) ct.set(p, s.released.at(p));
  } else {
    ct = msg.ct;
  }
  create_or_resume_session(s, from, ct, msg.first_connect || msg.use_stored_ct);
}

void SubscriberHostingBroker::maybe_finish_setup(SubscriberId sid) {
  auto pit = pending_setups_.find(sid);
  if (pit == pending_setups_.end()) return;
  PendingSetup& pending = pit->second;
  if (!pending.db_done || !pending.ack_done) return;

  SubscriberState* found = try_sub(sid);
  if (found == nullptr) {  // unsubscribed while the handshake was in flight
    pending_setups_.erase(pit);
    return;
  }

  CheckpointToken ct;
  std::map<PubendId, Tick> distrust;
  if (pending.migration) {
    // Resume from the presented CT; istream silence below the pubend's
    // subscription-application head is untrustworthy for this subscriber.
    ct = pending.ct;
    distrust = pending.ack_heads;
  } else {
    // A brand-new subscriber owes nothing before its subscription was live
    // everywhere: the later of the constream position and the pubend's
    // application boundary.
    for (PubendId p : pubend_ids_) {
      const auto head_it = pending.ack_heads.find(p);
      const Tick head = head_it == pending.ack_heads.end() ? kTickZero : head_it->second;
      ct.set(p, std::max(per(p).processed_upto, head));
    }
  }
  const sim::EndpointId from = pending.from;
  const bool migration = pending.migration;
  pending_setups_.erase(pit);
  create_or_resume_session(*found, from, ct, /*send_initial_ct=*/!migration,
                           /*refilter_catchup=*/migration,
                           migration ? &distrust : nullptr);
}

void SubscriberHostingBroker::create_or_resume_session(SubscriberState& s,
                                                       sim::EndpointId from,
                                                       const CheckpointToken& ct,
                                                       bool send_initial_ct,
                                                       bool refilter_catchup,
                                                       const std::map<PubendId, Tick>* distrust) {
  GRYPHON_LOG(kInfo, res_.name,
              "subscriber " << s.id << " session starts"
                            << (refilter_catchup ? " (migrated: refiltering)" : ""));
  s.connected = true;
  connected_.insert(s.id);
  ++s.session;
  s.client = from;
  s.reconnect_time = now();
  s.jms_queue.clear();
  s.jms_commit_inflight = false;
  release_all_catchup(s);
  s.catchup.clear();
  s.catchup_tokens = 0.0;
  s.catchup_refill = now();

  bool any_catchup = false;
  for (PubendId p : pubend_ids_) {
    PerPubend& state = per(p);
    // The resumption point; presenting a CT acknowledges everything <= it.
    // A CT *ahead* of the constream position happens after an SHB crash
    // (the subscriber consumed ticks the recovered broker has not yet
    // reprocessed) and must suppress redelivery up to the full CT.
    const Tick base = ct.of(p);
    auto rel = s.released.find(p);
    GRYPHON_CHECK(rel != s.released.end());
    if (base > rel->second) {
      rel->second = base;
      dirty_released_.emplace(s.id, p);
      mark_released_dirty(s.id, p);
    }
    if (base >= state.processed_upto) {
      s.suppress_upto[p] = base;  // nothing missed: non-catchup from birth
    } else {
      auto cs = std::make_unique<CatchupStream>(base);
      cs->refilter = refilter_catchup;
      cs->scan_cursor = base;
      if (distrust != nullptr) {
        if (auto dit = distrust->find(p); dit != distrust->end()) {
          cs->distrust_upto = dit->second;
        }
      }
      s.catchup.emplace(p, std::move(cs));
      state.catchup_subs.insert(s.id);
      m_catchup_opened_->inc();
      any_catchup = true;
    }
  }

  send(from, std::make_shared<ConnectedMsg>(
                 s.id, send_initial_ct ? ct : CheckpointToken{}));
  // Push the (possibly lowered) release pin upstream right away — a
  // migrated subscription must be pinned at the pubend before the old
  // hosting lets go.
  send_release_updates();

  if (any_catchup) {
    for (PubendId p : pubend_ids_) {
      if (s.catchup.contains(p)) admit_or_queue_catchup(s, p);
    }
  }
}

// ------------------------------------------------- catchup admission control

void SubscriberHostingBroker::admit_or_queue_catchup(SubscriberState& s, PubendId p) {
  auto cit = s.catchup.find(p);
  GRYPHON_CHECK(cit != s.catchup.end());
  CatchupStream& cs = *cit->second;
  const std::size_t limit = config_.costs.catchup_admission_limit;
  if (limit == 0 || catchup_active_ < limit) {
    cs.admitted = true;
    ++catchup_active_;
    m_catchup_admitted_->inc();
    res_.tracer.record(now(), p.value(), cs.delivered_upto,
                       TraceMilestone::kCatchupAdmitted, s.id.value());
    activate_catchup(s, p);
    return;
  }
  // Herd overflow: the stream stays inert in FIFO order until an active
  // stream switches over (or dies) and frees its slot.
  cs.admitted = false;
  ++catchup_queued_;
  m_catchup_queued_->inc();
  admission_queue_.push_back({s.id, p, s.session});
  res_.tracer.record(now(), p.value(), cs.delivered_upto,
                     TraceMilestone::kCatchupQueued, s.id.value());
}

void SubscriberHostingBroker::activate_catchup(SubscriberState& s, PubendId p) {
  auto cit = s.catchup.find(p);
  if (cit == s.catchup.end()) return;
  if (cit->second->refilter) {
    pump_catchup_nacks(s, p);
    advance_catchup(s, p);
  } else {
    issue_pfs_read(s, p);
  }
}

void SubscriberHostingBroker::release_catchup_slot(CatchupStream& cs) {
  if (cs.admitted) {
    GRYPHON_CHECK(catchup_active_ > 0);
    --catchup_active_;
    drain_admission_queue();
  } else {
    GRYPHON_CHECK(catchup_queued_ > 0);
    --catchup_queued_;
  }
}

void SubscriberHostingBroker::release_all_catchup(SubscriberState& s) {
  for (auto& [p, cs] : s.catchup) {
    release_catchup_slot(*cs);
    per(p).catchup_subs.erase(s.id);
  }
}

void SubscriberHostingBroker::drain_admission_queue() {
  // Activation can synchronously switch a short stream over and free its
  // slot again (which re-enters via release_catchup_slot): the guard
  // collapses that recursion into this loop's next iteration.
  if (admission_draining_) return;
  admission_draining_ = true;
  const std::size_t limit = config_.costs.catchup_admission_limit;
  while (!admission_queue_.empty() && (limit == 0 || catchup_active_ < limit)) {
    const QueuedAdmission next = admission_queue_.front();
    admission_queue_.pop_front();
    SubscriberState* found = try_sub(next.sid);
    if (found == nullptr || found->session != next.session) continue;
    auto cit = found->catchup.find(next.p);
    if (cit == found->catchup.end() || cit->second->admitted) continue;
    CatchupStream& cs = *cit->second;
    cs.admitted = true;
    --catchup_queued_;
    ++catchup_active_;
    m_catchup_admitted_->inc();
    res_.tracer.record(now(), next.p.value(), cs.delivered_upto,
                       TraceMilestone::kCatchupAdmitted, next.sid.value());
    activate_catchup(*found, next.p);
  }
  admission_draining_ = false;
}

void SubscriberHostingBroker::on_disconnect(const DisconnectMsg& msg) {
  SubscriberState* found = try_sub(msg.subscriber);
  if (found == nullptr) return;
  SubscriberState& s = *found;
  s.connected = false;
  connected_.erase(s.id);
  ++s.session;
  m_catchup_closed_->inc(s.catchup.size());
  release_all_catchup(s);
  s.catchup.clear();
  s.jms_queue.clear();
  s.jms_commit_inflight = false;
}

void SubscriberHostingBroker::on_ack(const AckMsg& msg) {
  SubscriberState* found = try_sub(msg.subscriber);
  if (found == nullptr) return;
  SubscriberState& s = *found;
  for (const auto& [p, t] : msg.ct.entries()) {
    if (!pubends_.contains(p)) continue;
    auto r = s.released.find(p);
    GRYPHON_CHECK(r != s.released.end());
    if (t > r->second) {
      res_.tracer.record_range(now(), p.value(), r->second + 1, t,
                               TraceMilestone::kAck, s.id.value());
      r->second = t;
      dirty_released_.emplace(s.id, p);
      mark_released_dirty(s.id, p);
    }
  }
}

void SubscriberHostingBroker::on_unsubscribe_req(const UnsubscribeReqMsg& msg) {
  SubscriberState* found = try_sub(msg.subscriber);
  if (found == nullptr) return;
  hosted_.remove(msg.subscriber);
  pending_setups_.erase(msg.subscriber);
  std::vector<storage::Database::Put> puts;
  puts.push_back({kSubsTable, std::to_string(msg.subscriber.value()), {}});
  for (PubendId p : pubend_ids_) {
    puts.push_back({kReleasedTable, rel_key(msg.subscriber, p), {}});
  }
  res_.database.commit(0, std::move(puts));
  release_all_catchup(*found);
  connected_.erase(msg.subscriber);
  shard_map(msg.subscriber).erase(msg.subscriber);
  mark_released_dirty_all(msg.subscriber);
  send(parent_, std::make_shared<UnsubscribeMsg>(msg.subscriber));
}

// ------------------------------------------------------------------ catchup

void SubscriberHostingBroker::issue_pfs_read(SubscriberState& s, PubendId p) {
  auto cit = s.catchup.find(p);
  if (cit == s.catchup.end()) return;
  CatchupStream& cs = *cit->second;
  GRYPHON_CHECK_MSG(!cs.refilter, "refiltering streams never read the PFS");
  if (!cs.admitted) return;  // inert until an admission slot frees up
  if (cs.pfs_read_inflight) return;
  cs.pfs_read_inflight = true;

  const Tick processed_at_issue = per(p).processed_upto;
  const Tick from_at_issue = cs.pfs_read_from;
  const std::uint64_t session = s.session;
  pfs_.read(
      p, s.id, cs.pfs_read_from, config_.costs.pfs_read_buffer_q_ticks,
      guarded_fn([this, sid = s.id, p, session, processed_at_issue, from_at_issue](
                  PersistentFilteringSubsystem::ReadResult result) {
        SubscriberState* found = try_sub(sid);
        if (found == nullptr || found->session != session) return;
        SubscriberState& s2 = *found;
        auto cit2 = s2.catchup.find(p);
        if (cit2 == s2.catchup.end()) return;
        CatchupStream& cs2 = *cit2->second;
        cs2.pfs_read_inflight = false;

        // Walking the back-pointer chain costs CPU per record traversed.
        cpu_then(static_cast<SimDuration>(result.records_traversed) *
                     config_.costs.pfs_read_per_record,
                 [] {});
        m_pfs_read_records_->add(
            static_cast<double>(std::max<std::size_t>(1, result.records_traversed)));

        // Chopped prefix (early release raced the read): the region below
        // complete_from is unknown to the PFS. Fill it from the istream
        // cache where possible; nack the remainder — the pubend answers
        // with L (it released the span) or the events themselves.
        if (result.complete_from > from_at_issue) {
          auto remaining = fill_catchup_from_istream(
              s2, cs2, per(p), from_at_issue + 1, result.complete_from);
          for (const TickRange& r : remaining) cs2.outstanding.add(r);
          consolidate_nack(p, per(p), remaining);
          schedule_catchup_nack_retry(s2, p);
        }

        // Fold the batch into the per-subscriber knowledge stream: covered
        // ranges are Q (possibly-matching positions — exact events in
        // precise mode, coarser spans in imprecise mode); everything
        // between them is S.
        Tick prev = result.complete_from;
        for (const TickRange& r : result.q_ranges) {
          if (r.from > prev + 1) cs2.map.set_silence(prev + 1, r.from - 1);
          for (Tick t = r.from; t <= r.to; ++t) cs2.unnacked_q.push_back(t);
          prev = r.to;
        }
        if (result.covered_upto > prev) cs2.map.set_silence(prev + 1, result.covered_upto);
        Tick covered = result.covered_upto;
        const Tick extension_cap =
            std::min(processed_at_issue, result.safe_extension_upto);
        if (result.reached_last && extension_cap > covered) {
          // Ticks past lastTimestamp had no matching subscriber at all (an
          // unflushed imprecise batch caps how far that claim reaches); the
          // constream had processed through processed_at_issue when the
          // read was issued, so that region is S for this subscriber too.
          cs2.map.set_silence(covered + 1, extension_cap);
          covered = extension_cap;
        }
        cs2.pfs_read_from = std::max(cs2.pfs_read_from, covered);

        pump_catchup_nacks(s2, p);
        advance_catchup(s2, p);
      }));
}

std::vector<TickRange> SubscriberHostingBroker::fill_catchup_from_istream(
    SubscriberState& s, CatchupStream& cs, PerPubend& state, Tick from, Tick to,
    Tick distrust_upto) {
  std::vector<TickRange> remaining;
  if (from > to) return remaining;
  IntervalSet covered;
  std::size_t served = 0;
  for (const auto& item : state.istream.items(from, to)) {
    switch (item.value) {
      case routing::TickValue::kD:
        if (s.predicate->matches(*item.event)) {
          cs.map.set_data(item.range.from, item.event);
          s.catchup_tokens -= 1.0;
          ++served;
          ++stats_.catchup_events_served_from_istream;
          m_catchup_istream_serves_->inc();
        } else {
          cs.map.set_silence(item.range.from, item.range.to);
        }
        break;
      case routing::TickValue::kS: {
        // Silence recorded before this subscriber's filter reached the
        // pubend may hide events that match it: within the distrusted
        // prefix, ask upstream instead of believing the cache.
        const Tick trusted_from = std::max(item.range.from, distrust_upto + 1);
        if (trusted_from > item.range.to) continue;  // fully distrusted
        cs.map.set_silence(trusted_from, item.range.to);
        covered.add(trusted_from, item.range.to);
        continue;
      }
      case routing::TickValue::kL:
        cs.map.set_lost(item.range.from, item.range.to);
        break;
      case routing::TickValue::kQ:
        GRYPHON_CHECK(false);
    }
    covered.add(item.range);
  }
  if (served > 0) {
    cpu_then(static_cast<SimDuration>(served) * config_.costs.per_nack_response_event,
             [] {});
  }
  return covered.complement_within(from, to);
}

void SubscriberHostingBroker::consolidate_nack(PubendId p, PerPubend& state,
                                               const std::vector<TickRange>& ranges) {
  std::vector<TickRange> forward;
  for (const TickRange& r : ranges) {
    for (const TickRange& fresh :
         state.upstream_pending.complement_within(r.from, r.to)) {
      forward.push_back(fresh);
      state.upstream_pending.add(fresh);
    }
  }
  if (!forward.empty()) {
    ++stats_.nacks_sent_upstream;
    m_nacks_upstream_->inc();
    send(parent_, std::make_shared<NackMsg>(p, std::move(forward)));
    schedule_istream_nack_retry(p);
  }
}

// ------------------------------------------------------- nack-retry backoff

SimDuration SubscriberHostingBroker::nack_backoff_delay(std::uint64_t salt,
                                                        std::uint32_t attempt) const {
  const auto& c = config_.costs;
  double delay = static_cast<double>(c.nack_retry);
  for (std::uint32_t k = 0;
       k < attempt && delay < static_cast<double>(c.nack_retry_max); ++k) {
    delay *= c.nack_retry_multiplier;
  }
  delay = std::min(delay, static_cast<double>(c.nack_retry_max));
  // Deterministic jitter, same scheme as the client reconnect backoff: a
  // splitmix-style hash of (broker, stream, attempt) spreads stragglers out
  // without consuming any shared RNG, so retry timing stays replayable.
  std::uint64_t h =
      (static_cast<std::uint64_t>(res_.endpoint) + 1) * 0x9e3779b97f4a7c15ULL;
  h ^= (salt + 1) * 0xbf58476d1ce4e5b9ULL;
  h ^= (static_cast<std::uint64_t>(attempt) + 1) * 0x94d049bb133111ebULL;
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 27;
  h *= 0x94d049bb133111ebULL;
  h ^= h >> 31;
  const double unit = static_cast<double>(h >> 11) * 0x1.0p-53;
  delay *= 1.0 - c.nack_retry_jitter + 2.0 * c.nack_retry_jitter * unit;
  return std::max<SimDuration>(1, static_cast<SimDuration>(std::llround(delay)));
}

void SubscriberHostingBroker::schedule_catchup_nack_retry(SubscriberState& s,
                                                          PubendId p) {
  auto cit = s.catchup.find(p);
  if (cit == s.catchup.end()) return;
  CatchupStream& cs = *cit->second;
  if (cs.nack_retry_scheduled || cs.outstanding.empty()) return;
  cs.nack_retry_scheduled = true;
  const std::uint64_t salt = (static_cast<std::uint64_t>(s.id.value()) << 32) |
                             (static_cast<std::uint64_t>(p.value()) << 8) | 1;
  defer(nack_backoff_delay(salt, cs.nack_attempt),
        [this, sid = s.id, session = s.session, p, progress = cs.nack_progress] {
          SubscriberState* found = try_sub(sid);
          if (found == nullptr || found->session != session) return;
          auto cit2 = found->catchup.find(p);
          if (cit2 == found->catchup.end()) return;
          CatchupStream& cs2 = *cit2->second;
          cs2.nack_retry_scheduled = false;
          if (cs2.outstanding.empty()) {
            cs2.nack_attempt = 0;
            return;
          }
          if (cs2.nack_progress != progress) {
            // A response landed meanwhile: re-probe at the base period.
            cs2.nack_attempt = 0;
          } else {
            // Still unanswered (e.g. the parent restarted and lost its
            // pending-nack state): re-send everything outstanding, wait
            // longer next time.
            ++cs2.nack_attempt;
            ++stats_.nacks_sent_upstream;
            m_nacks_upstream_->inc();
            send(parent_, std::make_shared<NackMsg>(p, cs2.outstanding.ranges(),
                                                    /*authoritative=*/cs2.refilter));
          }
          schedule_catchup_nack_retry(*found, p);
        });
}

void SubscriberHostingBroker::schedule_istream_nack_retry(PubendId p) {
  PerPubend& state = per(p);
  if (state.nack_retry_scheduled || state.upstream_pending.empty()) return;
  state.nack_retry_scheduled = true;
  const std::uint64_t salt = (static_cast<std::uint64_t>(p.value()) << 8) | 2;
  defer(nack_backoff_delay(salt, state.nack_attempt),
        [this, p, progress = per(p).nack_progress] {
          PerPubend& st = per(p);
          st.nack_retry_scheduled = false;
          if (st.upstream_pending.empty()) {
            st.nack_attempt = 0;
            return;
          }
          if (st.nack_progress != progress) {
            st.nack_attempt = 0;
          } else {
            ++st.nack_attempt;
            ++stats_.nacks_sent_upstream;
            m_nacks_upstream_->inc();
            send(parent_, std::make_shared<NackMsg>(p, st.upstream_pending.ranges()));
          }
          schedule_istream_nack_retry(p);
        });
}

void SubscriberHostingBroker::schedule_setup_retry(SubscriberId sid) {
  auto pit = pending_setups_.find(sid);
  if (pit == pending_setups_.end() || pit->second.ack_done ||
      pit->second.announce_retry_scheduled) {
    return;
  }
  pit->second.announce_retry_scheduled = true;
  const std::uint64_t salt = (static_cast<std::uint64_t>(sid.value()) << 8) | 3;
  defer(nack_backoff_delay(salt, pit->second.announce_attempt), [this, sid] {
    auto pit2 = pending_setups_.find(sid);
    if (pit2 == pending_setups_.end()) return;
    pit2->second.announce_retry_scheduled = false;
    if (pit2->second.ack_done) return;
    SubscriberState* found = try_sub(sid);
    if (found == nullptr) return;
    // Re-announce the creation handshake (covers a PHB crash between
    // subscribe and acknowledgment).
    ++pit2->second.announce_attempt;
    send(parent_, std::make_shared<SubscribeMsg>(sid, found->predicate_text));
    schedule_setup_retry(sid);
  });
}

void SubscriberHostingBroker::pump_catchup_nacks(SubscriberState& s, PubendId p) {
  auto cit = s.catchup.find(p);
  if (cit == s.catchup.end()) return;
  CatchupStream& cs = *cit->second;
  if (!cs.admitted) return;  // inert until an admission slot frees up
  PerPubend& state = per(p);

  // Congestion control: when the broker is saturated, let the backlog drain
  // before taking on more catchup work (tokens keep accruing meanwhile, so
  // this only reshapes the schedule, never the budget).
  const bool congested =
      res_.cpu.backlog() > config_.costs.catchup_backpressure_backlog;

  // Client flow control: refill the subscriber's token bucket (shared by
  // all of its catchup streams), then pump at most that many missed-event
  // positions this round.
  const double rate = config_.costs.catchup_rate_limit_eps;
  const auto window = static_cast<double>(config_.costs.catchup_nack_window);
  s.catchup_tokens = std::clamp(
      s.catchup_tokens + rate * to_seconds(now() - s.catchup_refill), -window, window);
  s.catchup_refill = now();

  // Tokens are spent when a missed EVENT is recovered (locally or via a
  // nack response), not per stream position — imprecise PFS ranges and
  // refiltering catchup scan many positions per event. The bucket may dip
  // negative (responses land after their nacks); pumping stalls until it
  // refills, so the average delivery rate converges to the limit. The
  // outstanding window bounds the in-flight burst.
  IntervalSet to_request;
  std::size_t served = 0;

  if (cs.refilter) {
    // Reconnect-anywhere recovery: scan forward through the istream cache
    // in bounded quanta, nacking the uncached remainder upstream. Token
    // charges happen per matched event inside the fill / response paths.
    constexpr Tick kScanQuantum = 256;
    while (!congested && s.catchup_tokens > 0.0 &&
           cs.outstanding.total_length() < config_.costs.catchup_nack_window &&
           cs.scan_cursor < state.processed_upto) {
      const Tick to = std::min(cs.scan_cursor + kScanQuantum, state.processed_upto);
      for (const TickRange& r :
           fill_catchup_from_istream(s, cs, state, cs.scan_cursor + 1, to,
                                     cs.distrust_upto)) {
        cs.outstanding.add(r);
        to_request.add(r);
      }
      cs.scan_cursor = to;
    }
    if (!to_request.empty()) {
      // Straight to the pubend: intermediate caches may hold silence that
      // predates this subscriber's filter.
      ++stats_.nacks_sent_upstream;
    m_nacks_upstream_->inc();
      send(parent_, std::make_shared<NackMsg>(p, to_request.ranges(),
                                              /*authoritative=*/true));
      schedule_catchup_nack_retry(s, p);
    }
    advance_catchup(s, p);
    if (auto cit2 = s.catchup.find(p);
        cit2 != s.catchup.end() && !cit2->second->repump_scheduled &&
        cit2->second->scan_cursor < state.processed_upto) {
      cit2->second->repump_scheduled = true;
      defer(config_.costs.catchup_pump_interval,
            [this, sid = s.id, session = s.session, p] {
              SubscriberState* found = try_sub(sid);
              if (found == nullptr || found->session != session) return;
              auto cit3 = found->catchup.find(p);
              if (cit3 == found->catchup.end()) return;
              cit3->second->repump_scheduled = false;
              pump_catchup_nacks(*found, p);
            });
    }
    return;
  }

  while (!congested && !cs.unnacked_q.empty() && s.catchup_tokens > 0.0 &&
         cs.outstanding.total_length() < config_.costs.catchup_nack_window) {
    const Tick t = cs.unnacked_q.front();
    cs.unnacked_q.pop_front();
    // Serve from the istream cache when possible (caching events at SHBs).
    const bool cached = t > state.istream.origin();
    const routing::TickValue v =
        cached ? state.istream.value_at(t) : routing::TickValue::kQ;
    switch (v) {
      case routing::TickValue::kD: {
        auto event = state.istream.event_at(t);
        if (s.predicate->matches(*event)) {
          cs.map.set_data(t, std::move(event));
          s.catchup_tokens -= 1.0;
        } else {
          cs.map.set_silence(t, t);  // imprecise PFS record
        }
        ++served;
        ++stats_.catchup_events_served_from_istream;
          m_catchup_istream_serves_->inc();
        break;
      }
      case routing::TickValue::kS:
        cs.map.set_silence(t, t);
        break;
      case routing::TickValue::kL:
        cs.map.set_lost(t, t);
        break;
      case routing::TickValue::kQ:
        cs.outstanding.add(t, t);
        to_request.add(t, t);
        break;
    }
  }

  // Consolidate with curiosity already outstanding at the istream level.
  consolidate_nack(p, state, to_request.ranges());
  schedule_catchup_nack_retry(s, p);
  if (served > 0) {
    cpu_then(static_cast<SimDuration>(served) * config_.costs.per_nack_response_event,
             [] {});
    advance_catchup(s, p);
  }

  // Token-starved with work left: come back when the bucket refills.
  if (auto cit2 = s.catchup.find(p);
      cit2 != s.catchup.end() && !cit2->second->unnacked_q.empty() &&
      !cit2->second->repump_scheduled) {
    cit2->second->repump_scheduled = true;
    defer(config_.costs.catchup_pump_interval,
          [this, sid = s.id, session = s.session, p] {
            SubscriberState* found = try_sub(sid);
            if (found == nullptr || found->session != session) return;
            auto cit3 = found->catchup.find(p);
            if (cit3 == found->catchup.end()) return;
            cit3->second->repump_scheduled = false;
            pump_catchup_nacks(*found, p);
            advance_catchup(*found, p);
          });
  }
}

void SubscriberHostingBroker::route_to_catchup_streams(
    PubendId p, const std::vector<routing::KnowledgeItem>& items) {
  // Copy the registry first: advance_catchup can erase streams (switchover),
  // which mutates catchup_subs under us.
  const PerPubend& state = per(p);
  const std::vector<SubscriberId> with_catchup(state.catchup_subs.begin(),
                                               state.catchup_subs.end());
  for (SubscriberId sid : with_catchup) {
    SubscriberState* found = try_sub(sid);
    if (found == nullptr) continue;
    SubscriberState& s = *found;
    auto cit = s.catchup.find(p);
    if (cit == s.catchup.end()) continue;
    CatchupStream& cs = *cit->second;

    bool touched = false;
    for (const auto& item : items) {
      const auto overlap =
          cs.outstanding.intersection(item.range.from, item.range.to);
      if (overlap.empty()) continue;
      if (!touched) {
        touched = true;
        // Response progress: this stream's retry backoff restarts.
        ++cs.nack_progress;
        cs.nack_attempt = 0;
      }
      for (const TickRange& r : overlap) {
        switch (item.value) {
          case routing::TickValue::kD: {
            GRYPHON_CHECK(r.from == r.to);
            if (s.predicate->matches(*item.event)) {
              cs.map.set_data(r.from, item.event);
              s.catchup_tokens -= 1.0;  // the nack's deferred token charge
            } else {
              cs.map.set_silence(r.from, r.to);
            }
            break;
          }
          case routing::TickValue::kS:
            cs.map.set_silence(r.from, r.to);
            break;
          case routing::TickValue::kL:
            cs.map.set_lost(r.from, r.to);
            break;
          case routing::TickValue::kQ:
            GRYPHON_CHECK(false);
        }
        cs.outstanding.subtract(r);
      }
    }
    if (touched) {
      pump_catchup_nacks(s, p);
      advance_catchup(s, p);
    }
  }
}

void SubscriberHostingBroker::advance_catchup(SubscriberState& s, PubendId p) {
  auto cit = s.catchup.find(p);
  if (cit == s.catchup.end()) return;
  CatchupStream& cs = *cit->second;
  PerPubend& state = per(p);

  const Tick dh =
      std::min(cs.map.doubt_horizon(cs.delivered_upto), state.processed_upto);
  if (dh > cs.delivered_upto) {
    // One ordered batch per advance: events, gaps and (possibly) a trailing
    // silence travel through the same CPU-serialized send so nothing can
    // overtake anything for this subscriber.
    struct OutMsg {
      enum class Kind { kEvent, kGap, kSilence } kind;
      Tick tick;              // event tick / silence horizon
      TickRange range{0, 0};  // gap range
      matching::EventDataPtr event;
    };
    std::vector<OutMsg> batch;
    std::size_t n_events = 0;
    for (const auto& item : cs.map.items(cs.delivered_upto + 1, dh)) {
      if (item.value == routing::TickValue::kD) {
        batch.push_back({OutMsg::Kind::kEvent, item.range.from, {}, item.event});
        ++n_events;
      } else if (item.value == routing::TickValue::kL) {
        // Early-release discarded this span before the subscriber caught up.
        batch.push_back({OutMsg::Kind::kGap, item.range.to, item.range, nullptr});
      }
    }
    cs.delivered_upto = dh;
    if (n_events > 0 || !batch.empty()) {
      cs.last_silence = dh;
    } else if (dh - cs.last_silence >=
               config_.costs.subscriber_silence_after / 1000) {
      batch.push_back({OutMsg::Kind::kSilence, dh, {}, nullptr});
      cs.last_silence = dh;
    }
    if (!batch.empty()) {
      const auto cost = static_cast<SimDuration>(n_events) *
                        config_.costs.per_catchup_delivery;
      cpu_then(cost, [this, sid = s.id, session = s.session, p,
                      batch = std::move(batch)] {
        SubscriberState* found = try_sub(sid);
        if (found == nullptr) return;
        SubscriberState& s2 = *found;
        if (!s2.connected || s2.session != session) return;
        for (const auto& m : batch) {
          switch (m.kind) {
            case OutMsg::Kind::kEvent:
              deliver_to_subscriber(s2, p, m.tick, m.event, /*catchup=*/true);
              ++stats_.catchup_deliveries;
              break;
            case OutMsg::Kind::kGap:
              send(s2.client, std::make_shared<GapDeliveryMsg>(s2.id, p, m.range));
              ++stats_.gaps_sent;
              m_gaps_->inc();
              res_.tracer.record_range(now(), p.value(), m.range.from, m.range.to,
                                       TraceMilestone::kGap, s2.id.value());
              break;
            case OutMsg::Kind::kSilence:
              send(s2.client, std::make_shared<SilenceDeliveryMsg>(s2.id, p, m.tick));
              ++stats_.silences_sent;
              m_silences_->inc();
              break;
          }
        }
      });
    }
  }

  maybe_switchover(s, p);
  // Paper §4.2/§5.3: the next read is triggered once the current buffer has
  // been fully nacked and its events delivered, if the constream has moved
  // on. (Refiltering streams are driven by their scan pump instead.)
  if (auto cit2 = s.catchup.find(p); cit2 != s.catchup.end()) {
    CatchupStream& cs2 = *cit2->second;
    if (!cs2.refilter && !cs2.pfs_read_inflight && cs2.unnacked_q.empty() &&
        cs2.outstanding.empty() && cs2.pfs_read_from < state.processed_upto) {
      issue_pfs_read(s, p);
    }
  }
}

void SubscriberHostingBroker::maybe_switchover(SubscriberState& s, PubendId p) {
  auto cit = s.catchup.find(p);
  if (cit == s.catchup.end()) return;
  CatchupStream& cs = *cit->second;
  PerPubend& state = per(p);
  // Paper §4.1: switchover once the catchup doubt horizon reaches
  // latestDelivered(p). The (latestDelivered, processed_upto] tail — ticks
  // the constream already passed but whose PFS records are not yet durable,
  // plus the last read's latency — is bridged directly from the istream
  // cache, which by construction still holds it.
  if (cs.delivered_upto < state.latest_delivered) return;
  if (cs.delivered_upto < state.istream.origin()) return;
  // A migrated subscriber may not join the constream before its distrusted
  // prefix is resolved — the bridge below reads the istream, which is only
  // trustworthy for it past that boundary.
  if (cs.delivered_upto < std::min(cs.distrust_upto, state.processed_upto)) return;

  struct PendingSend {
    Tick tick;
    matching::EventDataPtr event;
  };
  std::vector<PendingSend> bridge;
  state.istream.for_each_data(cs.delivered_upto + 1, state.processed_upto,
                              [&](Tick t, const matching::EventDataPtr& event) {
                                if (s.predicate->matches(*event)) {
                                  bridge.push_back({t, event});
                                }
                              });

  // Caught up: discard the separate stream, join the constream.
  GRYPHON_LOG(kDebug, res_.name,
              "subscriber " << s.id << " switches to constream for pubend " << p
                            << " at tick " << state.processed_upto);
  res_.tracer.record(now(), p.value(), state.processed_upto,
                     TraceMilestone::kCatchupCaughtUp, s.id.value());
  s.suppress_upto[p] = state.processed_upto;
  release_catchup_slot(cs);
  s.catchup.erase(cit);
  state.catchup_subs.erase(s.id);
  m_catchup_closed_->inc();
  m_switchovers_->inc();

  if (!bridge.empty()) {
    const auto cost = static_cast<SimDuration>(bridge.size()) *
                      config_.costs.per_catchup_delivery;
    cpu_then(cost, [this, sid = s.id, session = s.session, p,
                    bridge = std::move(bridge)] {
      SubscriberState* found = try_sub(sid);
      if (found == nullptr) return;
      SubscriberState& s2 = *found;
      if (!s2.connected || s2.session != session) return;
      for (const auto& d : bridge) {
        deliver_to_subscriber(s2, p, d.tick, d.event, /*catchup=*/true);
        ++stats_.catchup_deliveries;
      }
    });
  }
  check_all_caught_up(s);
}

void SubscriberHostingBroker::check_all_caught_up(SubscriberState& s) {
  if (!s.catchup.empty()) return;
  GRYPHON_LOG(kInfo, res_.name, "subscriber " << s.id << " caught up on all pubends");
  ++stats_.catchup_completions;
  m_catchup_completions_->inc();
  if (on_catchup_complete) on_catchup_complete(s.id, s.reconnect_time, now());
}

// ----------------------------------------------------- curiosity & timers

void SubscriberHostingBroker::nack_istream_gaps() {
  for (auto& [p, state] : pubends_) {
    const Tick head = state.istream.head();
    if (head <= state.processed_upto) continue;
    const Tick limit =
        std::min(head, state.processed_upto + config_.costs.istream_nack_window);
    std::vector<TickRange> forward;
    for (const TickRange& q : state.istream.q_ranges(state.processed_upto + 1, limit)) {
      for (const TickRange& fresh :
           state.upstream_pending.complement_within(q.from, q.to)) {
        forward.push_back(fresh);
        state.upstream_pending.add(fresh);
      }
    }
    if (!forward.empty()) {
      ++stats_.nacks_sent_upstream;
      m_nacks_upstream_->inc();
      send(parent_, std::make_shared<NackMsg>(p, std::move(forward)));
      schedule_istream_nack_retry(p);
    }
  }
}

void SubscriberHostingBroker::send_release_updates() {
  for (auto& [p, state] : pubends_) {
    const Tick rel = computed_released(p);
    send(parent_, std::make_shared<ReleaseUpdateMsg>(p, rel, state.latest_delivered));
    // Filtering records below released(p) can never be read again.
    pfs_.chop_upto(p, rel);
  }
}

void SubscriberHostingBroker::commit_dirty_state() {
  std::vector<storage::Database::Put> puts;
  for (auto& [p, state] : pubends_) {
    auto it = committed_ld_.find(p);
    if (it == committed_ld_.end() || it->second != state.latest_delivered) {
      puts.push_back({kLdTable, std::to_string(p.value()),
                      encode_i64(state.latest_delivered)});
      committed_ld_[p] = state.latest_delivered;
    }
  }
  for (const auto& [sid, p] : dirty_released_) {
    const SubscriberState* found = try_sub(sid);
    if (found == nullptr) continue;
    puts.push_back({kReleasedTable, rel_key(sid, p), encode_i64(found->released.at(p))});
  }
  dirty_released_.clear();
  for (auto& put : pfs_.dirty_metadata()) puts.push_back(std::move(put));
  if (!puts.empty()) res_.database.commit(0, std::move(puts));
}

void SubscriberHostingBroker::silence_sweep() {
  // Only live sessions can be owed a silence: the sweep walks the connected
  // set (id order, same visit order as the old full-population scan) instead
  // of every durable subscription.
  for (SubscriberId sid : connected_) {
    SubscriberState& s = sub(sid);
    if (now() - s.last_delivery < config_.costs.subscriber_silence_after) continue;
    for (PubendId p : pubend_ids_) {
      if (s.catchup.contains(p)) continue;  // the catchup stream handles it
      const Tick upto = per(p).processed_upto;
      Tick& sent = s.silence_sent_upto[p];
      if (upto <= sent) continue;
      sent = upto;
      if (s.jms_auto_ack) {
        // The SHB owns a JMS subscriber's CT: with no deliveries pending,
        // everything up to the constream position is implicitly consumed.
        if (s.jms_queue.empty() && !s.jms_commit_inflight) {
          auto r = s.released.find(p);
          if (r != s.released.end() && upto > r->second) {
            r->second = upto;
            dirty_released_.emplace(sid, p);
            mark_released_dirty(sid, p);
          }
        }
        continue;
      }
      // Through the CPU queue so a silence cannot overtake deferred event
      // sends to the same subscriber.
      cpu_then(config_.costs.control_process,
               [this, sid2 = sid, session = s.session, p, upto] {
                 SubscriberState* found = try_sub(sid2);
                 if (found == nullptr) return;
                 SubscriberState& s2 = *found;
                 if (!s2.connected || s2.session != session) return;
                 if (s2.catchup.contains(p)) return;
                 send(s2.client, std::make_shared<SilenceDeliveryMsg>(sid2, p, upto));
                 ++stats_.silences_sent;
                 m_silences_->inc();
               });
    }
  }
}

}  // namespace gryphon::core
