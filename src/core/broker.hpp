// Broker base: message dispatch through the CPU model, crash-safe timers and
// callbacks.
//
// Lifetime rules: a Broker is destroyed on crash while its NodeResources
// live on. Anything asynchronous a broker schedules — simulator timers, disk
// completions, DB commit callbacks — must not touch the dead object, so all
// of them go through defer()/guarded(), which hold a weak alive token.
// (CPU-queued work is additionally cleared by Cpu::clear(), and disk/DB
// completions by their generation bumps; the guard makes destruction safe
// even for paths that bypass those.)
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "core/config.hpp"
#include "core/messages.hpp"
#include "core/node_resources.hpp"

namespace gryphon::core {

class Broker {
 public:
  Broker(NodeResources& resources, BrokerConfig config);
  virtual ~Broker();

  Broker(const Broker&) = delete;
  Broker& operator=(const Broker&) = delete;

  [[nodiscard]] sim::EndpointId endpoint() const { return res_.endpoint; }
  [[nodiscard]] const std::string& name() const { return res_.name; }
  [[nodiscard]] NodeResources& resources() { return res_; }

  /// Network entry point: charges CPU for the message, then handles it.
  void deliver(sim::EndpointId from, sim::MessagePtr msg);

 protected:
  /// Per-message CPU cost; default covers control messages.
  [[nodiscard]] virtual SimDuration cost_of(const Msg& msg) const;

  virtual void handle(sim::EndpointId from, const Msg& msg) = 0;

  /// Schedules fn after `delay`; dropped if this broker dies first.
  void defer(SimDuration delay, std::function<void()> fn);

  /// Repeats fn every `period` until the broker dies.
  void every(SimDuration period, std::function<void()> fn);

  /// Wraps an async completion so it is a no-op after this broker dies.
  [[nodiscard]] std::function<void()> guarded(std::function<void()> fn);

  /// Argument-taking variant of guarded().
  template <typename F>
  [[nodiscard]] auto guarded_fn(F fn) {
    return [weak = std::weak_ptr<std::monostate>(alive_),
            fn = std::move(fn)](auto&&... args) {
      if (weak.lock()) fn(std::forward<decltype(args)>(args)...);
    };
  }

  /// Runs `fn` after charging `cost` of CPU (serialized behind prior work).
  void cpu_then(SimDuration cost, std::function<void()> fn);

  void send(sim::EndpointId to, sim::MessagePtr msg) {
    res_.network.send(res_.endpoint, to, std::move(msg));
  }

  sim::Scheduler& sim() { return res_.sim; }
  [[nodiscard]] SimTime now() const { return res_.sim.now(); }

  NodeResources& res_;
  BrokerConfig config_;

 private:
  friend class PersistentFilteringSubsystem;
  std::shared_ptr<std::monostate> alive_;
};

}  // namespace gryphon::core
