#include "core/intermediate.hpp"

#include <algorithm>
#include <cstring>

namespace gryphon::core {

namespace {
constexpr const char* kSubsTable = "imb_child_subs";

std::string subs_key(sim::EndpointId child, SubscriberId sub) {
  return std::to_string(child) + ':' + std::to_string(sub.value());
}
}  // namespace

IntermediateBroker::IntermediateBroker(NodeResources& resources, BrokerConfig config,
                                       const std::vector<PubendId>& pubends)
    : Broker(resources, config) {
  for (PubendId p : pubends) pubends_.emplace(p, PerPubend{});
  auto& m = res_.metrics;
  m_items_relayed_ = m.counter("imb.items_relayed");
  m_nacks_from_children_ = m.counter("imb.nacks_from_children");
  m_nacks_consolidated_upstream_ = m.counter("imb.nacks_forwarded_upstream");
  m_cache_hit_events_ = m.counter("imb.cache_hit_events");
  m_cache_miss_ticks_ = m.counter("imb.cache_miss_ticks");
}

void IntermediateBroker::add_child(sim::EndpointId child) {
  GRYPHON_CHECK(!children_.contains(child));
  Child c;
  c.endpoint = child;
  for (auto& [p, state] : pubends_) c.streams.emplace(p, ChildStream{kTickZero});
  children_.emplace(child, std::move(c));
}

void IntermediateBroker::start(bool fresh) {
  // Resume handshake with the parent.
  std::vector<std::pair<PubendId, Tick>> resume;
  resume.reserve(pubends_.size());
  for (auto& [p, state] : pubends_) {
    resume.emplace_back(p, fresh ? kTickZero : Tick{-1});
  }
  send(parent_, std::make_shared<BrokerResumeMsg>(std::move(resume)));

  // Retry unanswered consolidated nacks (covers a parent restart losing
  // pending-nack state).
  every(config_.costs.nack_retry, [this] {
    for (auto& [p, state] : pubends_) {
      if (state.upstream_pending.empty()) continue;
      send(parent_, std::make_shared<NackMsg>(p, state.upstream_pending.ranges()));
      ++stats_.nacks_forwarded_upstream;
      m_nacks_consolidated_upstream_->inc();
    }
  });

  // Release aggregation upstream.
  every(config_.costs.release_update_interval, [this] { send_release_mins(); });
}

void IntermediateBroker::recover() {
  for (const auto& [key, value] : res_.database.scan(kSubsTable)) {
    const auto colon = key.find(':');
    GRYPHON_CHECK(colon != std::string::npos);
    const auto child_ep =
        static_cast<sim::EndpointId>(std::stoul(key.substr(0, colon)));
    const SubscriberId sub{static_cast<std::uint32_t>(std::stoul(key.substr(colon + 1)))};
    auto it = children_.find(child_ep);
    if (it == children_.end()) continue;
    const std::string text(reinterpret_cast<const char*>(value.data()), value.size());
    it->second.filter.add(sub, matching::parse_predicate(text));
    // Re-announce upstream: the parent may have restarted too; adds are
    // idempotent.
    send(parent_, std::make_shared<SubscribeMsg>(sub, text));
  }
}

IntermediateBroker::Child& IntermediateBroker::child(sim::EndpointId ep) {
  auto it = children_.find(ep);
  GRYPHON_CHECK_MSG(it != children_.end(), "message from unknown child " << ep);
  return it->second;
}

IntermediateBroker::PerPubend& IntermediateBroker::per(PubendId p) {
  auto it = pubends_.find(p);
  GRYPHON_CHECK_MSG(it != pubends_.end(), "unknown pubend " << p);
  return it->second;
}

const IntermediateBroker::PerPubend& IntermediateBroker::per(PubendId p) const {
  auto it = pubends_.find(p);
  GRYPHON_CHECK_MSG(it != pubends_.end(), "unknown pubend " << p);
  return it->second;
}

SimDuration IntermediateBroker::cost_of(const Msg& msg) const {
  const auto& costs = config_.costs;
  switch (msg.kind()) {
    case MsgKind::kStreamData: {
      const auto& m = static_cast<const StreamDataMsg&>(msg);
      std::size_t n_data = 0;
      for (const auto& item : m.items) {
        if (item.value == routing::TickValue::kD) ++n_data;
      }
      return costs.control_process +
             static_cast<SimDuration>(n_data) *
                 static_cast<SimDuration>(children_.size()) * costs.per_child_forward;
    }
    case MsgKind::kNack:
      return costs.nack_process;
    default:
      return costs.control_process;
  }
}

void IntermediateBroker::handle(sim::EndpointId from, const Msg& msg) {
  switch (msg.kind()) {
    case MsgKind::kStreamData:
      GRYPHON_CHECK_MSG(from == parent_, "stream data from non-parent");
      on_stream_data(static_cast<const StreamDataMsg&>(msg));
      break;
    case MsgKind::kNack:
      on_nack(from, static_cast<const NackMsg&>(msg));
      break;
    case MsgKind::kReleaseUpdate:
      on_release_update(from, static_cast<const ReleaseUpdateMsg&>(msg));
      break;
    case MsgKind::kSubscribe: {
      const auto& m = static_cast<const SubscribeMsg&>(msg);
      child(from).filter.add(m.subscriber, matching::parse_predicate(m.predicate_text));
      persist_subscription(from, m.subscriber, m.predicate_text, true);
      subscribe_origin_[m.subscriber] = from;  // route the PHB's ack back
      send(parent_, std::make_shared<SubscribeMsg>(m.subscriber, m.predicate_text));
      break;
    }
    case MsgKind::kSubscribeAck: {
      const auto& m = static_cast<const SubscribeAckMsg&>(msg);
      auto it = subscribe_origin_.find(m.subscriber);
      if (it != subscribe_origin_.end()) {
        send(it->second, std::make_shared<SubscribeAckMsg>(m.subscriber, m.heads));
      }
      break;
    }
    case MsgKind::kUnsubscribe: {
      const auto& m = static_cast<const UnsubscribeMsg&>(msg);
      child(from).filter.remove(m.subscriber);
      persist_subscription(from, m.subscriber, {}, false);
      send(parent_, std::make_shared<UnsubscribeMsg>(m.subscriber));
      break;
    }
    case MsgKind::kBrokerResume:
      on_broker_resume(from, static_cast<const BrokerResumeMsg&>(msg));
      break;
    default:
      GRYPHON_CHECK_MSG(false, "intermediate cannot handle message kind "
                                   << static_cast<int>(msg.kind()));
  }
}

void IntermediateBroker::on_stream_data(const StreamDataMsg& msg) {
  PerPubend& state = per(msg.pubend);
  stats_.items_relayed += msg.items.size();
  m_items_relayed_->inc(msg.items.size());

  // Route to children first (directly from the incoming items, so responses
  // for ranges this node chooses not to cache still reach curious children).
  for (auto& [ep, c] : children_) {
    auto it = c.streams.find(msg.pubend);
    GRYPHON_CHECK(it != c.streams.end());
    send_items(c, msg.pubend, it->second.on_items(msg.items));
  }

  // Then fold into the local cache and trim it.
  for (const auto& item : msg.items) {
    state.cache.apply(item);
    state.upstream_pending.subtract(item.range);
  }
  const Tick evict = state.cache.head() - config_.costs.cache_span_ticks;
  if (evict > state.cache.origin()) state.cache.discard_upto(evict);
}

void IntermediateBroker::on_nack(sim::EndpointId from, const NackMsg& msg) {
  ++stats_.nacks_from_children;
  m_nacks_from_children_->inc();
  Child& c = child(from);
  PerPubend& state = per(msg.pubend);
  auto it = c.streams.find(msg.pubend);
  GRYPHON_CHECK(it != c.streams.end());

  if (msg.authoritative_only) {
    // The local cache's silence may predate the relevant subscription:
    // record curiosity and pass the question through to the pubend.
    for (const TickRange& r : msg.ranges) it->second.add_pending(r);
    send(parent_,
         std::make_shared<NackMsg>(msg.pubend, msg.ranges, /*authoritative=*/true));
    ++stats_.nacks_forwarded_upstream;
    m_nacks_consolidated_upstream_->inc();
    return;
  }

  auto outcome = it->second.on_nack(msg.ranges, state.cache);

  std::size_t served = 0;
  for (const auto& item : outcome.respond) {
    if (item.value == routing::TickValue::kD) ++served;
  }
  stats_.nack_events_served_from_cache += served;
  m_cache_hit_events_->inc(served);
  if (!outcome.respond.empty()) {
    cpu_then(static_cast<SimDuration>(served) * config_.costs.per_nack_response_event,
             [this, from, p = msg.pubend, items = std::move(outcome.respond)] {
               send_items(child(from), p, items);
             });
  }

  // Consolidate the unknown ranges upstream: forward only what is not
  // already outstanding.
  std::vector<TickRange> forward;
  for (const TickRange& r : outcome.unknown) {
    for (const TickRange& fresh : state.upstream_pending.complement_within(r.from, r.to)) {
      forward.push_back(fresh);
      state.upstream_pending.add(fresh);
    }
  }
  if (!forward.empty()) {
    ++stats_.nacks_forwarded_upstream;
    m_nacks_consolidated_upstream_->inc();
    std::uint64_t miss_ticks = 0;
    for (const TickRange& r : forward) {
      miss_ticks += static_cast<std::uint64_t>(r.to - r.from + 1);
    }
    m_cache_miss_ticks_->inc(miss_ticks);
    send(parent_, std::make_shared<NackMsg>(msg.pubend, std::move(forward)));
  }
}

void IntermediateBroker::on_release_update(sim::EndpointId from,
                                           const ReleaseUpdateMsg& msg) {
  Child& c = child(from);
  auto it = c.streams.find(msg.pubend);
  GRYPHON_CHECK(it != c.streams.end());
  // As at the PHB: released is taken as reported (migrations may lower it).
  it->second.released = msg.released;
  it->second.latest_delivered = std::max(it->second.latest_delivered, msg.latest_delivered);
}

void IntermediateBroker::send_release_mins() {
  if (children_.empty()) return;
  for (auto& [p, state] : pubends_) {
    Tick rel = kTickInfinity;
    Tick del = kTickInfinity;
    for (auto& [ep, c] : children_) {
      const ChildStream& s = c.streams.at(p);
      rel = std::min(rel, s.released);
      del = std::min(del, s.latest_delivered);
    }
    if (del == kTickZero && rel == kTickZero) continue;  // nothing reported yet
    send(parent_, std::make_shared<ReleaseUpdateMsg>(p, rel, del));
  }
}

void IntermediateBroker::on_broker_resume(sim::EndpointId from,
                                          const BrokerResumeMsg& msg) {
  Child& c = child(from);
  for (const auto& [p, resume] : msg.resume_from) {
    PerPubend& state = per(p);
    // As at the PHB: resume the fresh stream from the local head; the
    // missed span comes back as flow-controlled nacks (served from this
    // cache where it still holds the span, consolidated upstream where not).
    (void)resume;
    auto it = c.streams.find(p);
    GRYPHON_CHECK(it != c.streams.end());
    it->second.reset(state.cache.head());
  }
}

void IntermediateBroker::send_items(Child& c, PubendId p,
                                    const std::vector<routing::KnowledgeItem>& items) {
  if (items.empty()) return;
  auto filtered = filter_items(items, &c.filter);
  const std::size_t chunk = config_.costs.max_items_per_msg;
  for (std::size_t i = 0; i < filtered.size(); i += chunk) {
    const auto end = std::min(filtered.size(), i + chunk);
    send(c.endpoint,
         std::make_shared<StreamDataMsg>(
             p, std::vector<routing::KnowledgeItem>(filtered.begin() + i,
                                                    filtered.begin() + end)));
  }
}

void IntermediateBroker::persist_subscription(sim::EndpointId child_ep, SubscriberId sub,
                                              const std::string& predicate, bool add) {
  std::vector<std::byte> value;
  if (add) {
    value.resize(predicate.size());
    std::memcpy(value.data(), predicate.data(), predicate.size());
  }
  res_.database.commit(0, {{kSubsTable, subs_key(child_ep, sub), std::move(value)}});
}

}  // namespace gryphon::core
