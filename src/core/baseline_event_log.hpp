// Baseline comparator (paper §1's "obvious, but undesirable" design, typical
// of store-and-forward message queuing products): the SHB keeps a persistent
// event log *per durable subscriber* and appends the full event to every
// matching subscriber's log. Exists to reproduce the PFS microbenchmark
// (§5.1.2: PFS logs ~25x less data and finishes >5x faster).
#pragma once

#include <deque>
#include <functional>
#include <map>

#include "matching/event.hpp"
#include "storage/log_volume.hpp"
#include "util/ids.hpp"
#include "util/time.hpp"

namespace gryphon::core {

class PerSubscriberEventLog {
 public:
  explicit PerSubscriberEventLog(storage::LogVolume& volume) : volume_(volume) {}

  void register_subscriber(SubscriberId s);

  /// Appends the serialized event to every matching subscriber's log.
  void log_event(Tick tick, const matching::EventDataPtr& event,
                 const std::vector<SubscriberId>& matching);

  /// Group-commits everything appended so far.
  void sync(std::function<void()> on_durable) { volume_.sync(std::move(on_durable)); }

  /// Subscriber consumed everything <= tick: discard its log prefix.
  void ack(SubscriberId s, Tick tick);

  [[nodiscard]] std::uint64_t records_written() const { return records_; }
  [[nodiscard]] std::uint64_t payload_bytes_written() const { return bytes_; }

 private:
  struct PerSub {
    storage::LogStreamId stream;
    std::deque<std::pair<Tick, storage::LogIndex>> retained;
  };

  storage::LogVolume& volume_;
  std::map<SubscriberId, PerSub> subs_;
  std::uint64_t records_ = 0;
  std::uint64_t bytes_ = 0;
};

}  // namespace gryphon::core
