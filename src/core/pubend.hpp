// Pubend — a publishing endpoint at the PHB (paper §2, §3).
//
// Owns the authoritative, persistent, ordered event stream: assigns strictly
// monotonic tick timestamps, logs each event exactly once (in the PHB's Log
// Volume), maintains the Q/S/D/L ladder rooted at this node, dedups
// publisher retries, and runs the release protocol that converts an
// ever-growing prefix of the ladder to L and chops the log.
#pragma once

#include <deque>
#include <map>
#include <optional>
#include <set>
#include <unordered_map>

#include "core/event_codec.hpp"
#include "core/node_resources.hpp"
#include "core/release_policy.hpp"
#include "routing/tick_map.hpp"
#include "util/ids.hpp"
#include "util/time.hpp"

namespace gryphon::core {

class Pubend {
 public:
  Pubend(PubendId id, NodeResources& resources, ReleasePolicyPtr policy);

  /// Rebuilds the ladder, dedup table and release boundary from the durable
  /// log + database metadata (PHB restart).
  void recover();

  [[nodiscard]] PubendId id() const { return id_; }

  /// Result of accepting a publish: `duplicate` is a retry the log already
  /// holds (re-ack with the previously assigned tick).
  struct Accepted {
    bool duplicate = false;
    Tick tick = kTickZero;
  };

  /// Assigns a tick (or detects a duplicate) and appends the event to the
  /// log. Volatile until the volume syncs; announce via announce_data() once
  /// durable.
  Accepted accept_publish(PublisherId publisher, std::uint64_t seq,
                          std::uint64_t acked_below, const matching::EventDataPtr& event,
                          SimTime now);

  /// Marks `tick` D in the ladder (and the ticks since the previous
  /// announcement S). Returns the newly announced contiguous region.
  TickRange announce_data(Tick tick, matching::EventDataPtr event);

  /// Advances the announced silence horizon toward the current time,
  /// stopping short of any accepted-but-not-yet-durable event. Returns the
  /// announced region, if it advanced.
  std::optional<TickRange> announce_silence(SimTime now);

  /// The ladder (authoritative; L prefix + S/D suffix).
  [[nodiscard]] const routing::TickMap& ticks() const { return ticks_; }

  /// T(p): the latest announced tick.
  [[nodiscard]] Tick head() const { return announced_upto_; }

  /// Release protocol: new mins of (released, latestDelivered) across all
  /// downstream SHBs.
  void update_mins(Tick released_min, Tick delivered_min);

  /// Applies the release policy: converts the releasable prefix to L, chops
  /// the event log, persists the boundary. Returns the newly lost range.
  std::optional<TickRange> apply_release(SimTime now);

  [[nodiscard]] Tick released_min() const { return released_min_; }
  [[nodiscard]] Tick delivered_min() const { return delivered_min_; }
  [[nodiscard]] Tick lost_upto() const { return lost_upto_; }

  [[nodiscard]] std::uint64_t events_logged() const { return events_logged_; }
  [[nodiscard]] std::size_t retained_events() const { return ticks_.retained_events(); }

 private:
  [[nodiscard]] std::string meta_key(const char* what) const;

  PubendId id_;
  NodeResources& res_;
  ReleasePolicyPtr policy_;
  storage::LogStreamId log_stream_;

  routing::TickMap ticks_{kTickZero};
  Tick last_assigned_ = kTickZero;   // highest tick handed to an event
  Tick announced_upto_ = kTickZero;  // S/D ladder is complete up to here
  std::set<Tick> pending_durable_;   // accepted events not yet announced

  Tick released_min_ = kTickZero;   // Tr(p)
  Tick delivered_min_ = kTickZero;  // Td(p)
  Tick lost_upto_ = kTickZero;

  /// Exact retry-dedup window: per publisher, the accepted seq -> tick pairs
  /// not yet covered by the publisher's cumulative ack floor. A "latest seq"
  /// comparison is not enough — after a PHB outage the publisher's retried
  /// backlog arrives behind fresh (higher-seq) publishes, and collapsing the
  /// window to one seq would ack-and-drop every backlog event.
  std::unordered_map<PublisherId, std::map<std::uint64_t, Tick>> accepted_pubs_;

  /// Retained (tick, log index) pairs for chopping by tick.
  std::deque<std::pair<Tick, storage::LogIndex>> retained_records_;

  std::uint64_t events_logged_ = 0;

  // Registry slots (cumulative per node; resolved once in the constructor).
  MetricsRegistry::Counter* m_events_logged_;
  MetricsRegistry::Counter* m_persisted_;
  MetricsRegistry::Counter* m_ticks_chopped_;
  MetricsRegistry::Counter* m_pressure_released_;
};

}  // namespace gryphon::core
