#include "core/broker.hpp"

#include <variant>

namespace gryphon::core {

Broker::Broker(NodeResources& resources, BrokerConfig config)
    : res_(resources), config_(config), alive_(std::make_shared<std::monostate>()) {
  res_.current_broker = this;
}

Broker::~Broker() {
  if (res_.current_broker == this) res_.current_broker = nullptr;
}

void NodeResources::route(sim::EndpointId from, sim::MessagePtr msg) {
  if (current_broker != nullptr) current_broker->deliver(from, std::move(msg));
}

void Broker::deliver(sim::EndpointId from, sim::MessagePtr msg) {
  auto m = std::static_pointer_cast<const Msg>(std::move(msg));
  res_.cpu.execute(cost_of(*m), guarded([this, from, m] { handle(from, *m); }));
}

SimDuration Broker::cost_of(const Msg&) const { return config_.costs.control_process; }

void Broker::defer(SimDuration delay, std::function<void()> fn) {
  res_.sim.schedule_after(delay, guarded(std::move(fn)));
}

void Broker::every(SimDuration period, std::function<void()> fn) {
  GRYPHON_CHECK(period > 0);
  defer(period, [this, period, fn = std::move(fn)]() mutable {
    fn();
    every(period, std::move(fn));
  });
}

std::function<void()> Broker::guarded(std::function<void()> fn) {
  return [weak = std::weak_ptr<std::monostate>(alive_), fn = std::move(fn)] {
    if (weak.lock()) fn();
  };
}

void Broker::cpu_then(SimDuration cost, std::function<void()> fn) {
  res_.cpu.execute(cost, guarded(std::move(fn)));
}

}  // namespace gryphon::core
