#include "core/pubend.hpp"

#include <algorithm>

#include "util/byte_buffer.hpp"
#include "util/logging.hpp"

namespace gryphon::core {

namespace {
constexpr const char* kPubendMetaTable = "pubend_meta";

std::vector<std::byte> encode_i64(std::int64_t v) {
  BufWriter w;
  w.put_i64(v);
  return w.take();
}
}  // namespace

Pubend::Pubend(PubendId id, NodeResources& resources, ReleasePolicyPtr policy)
    : id_(id), res_(resources), policy_(std::move(policy)) {
  GRYPHON_CHECK(policy_ != nullptr);
  log_stream_ = res_.log_volume.open_stream("events:" + std::to_string(id_.value()));
  auto& m = res_.metrics;
  m_events_logged_ = m.counter("pubend.events_logged");
  m_persisted_ = m.counter("pubend.events_persisted");
  m_ticks_chopped_ = m.counter("pubend.ticks_chopped");
  m_pressure_released_ = m.counter("pubend.pressure_released_ticks");
}

std::string Pubend::meta_key(const char* what) const {
  return std::to_string(id_.value()) + ':' + what;
}

void Pubend::recover() {
  // Durable boundary of the L prefix (committed on every release application).
  if (auto v = res_.database.get(kPubendMetaTable, meta_key("lost_upto"))) {
    BufReader r(*v);
    lost_upto_ = r.get_i64();
  }
  if (auto v = res_.database.get(kPubendMetaTable, meta_key("last_tick"))) {
    BufReader r(*v);
    last_assigned_ = r.get_i64();
  }
  if (lost_upto_ > kTickZero) ticks_.force_lost(kTickZero + 1, lost_upto_);

  // Replay the durable log suffix: D ticks, with S in between (the pubend is
  // authoritative — every non-D tick up to the last logged one is S).
  auto& volume = res_.log_volume;
  Tick prev = lost_upto_;
  storage::LogIndex rechop_upto = storage::kNoIndex;
  for (storage::LogIndex i = volume.first_index(log_stream_);
       i <= volume.durable_index(log_stream_); ++i) {
    const auto* bytes = volume.read(log_stream_, i);
    if (bytes == nullptr) continue;
    LoggedEvent e = decode_logged_event(*bytes);
    if (e.tick <= lost_upto_) {
      // Resurrected below the released boundary: the release-protocol chop
      // frame for these records was still in the page cache at the crash,
      // but the DB commit of lost_upto was durable. The ticks are already
      // forced-lost; drop the records again instead of replaying them.
      rechop_upto = i;
      last_assigned_ = std::max(last_assigned_, e.tick);
      continue;
    }
    GRYPHON_CHECK(e.tick > prev);
    if (e.tick > prev + 1) ticks_.set_silence(prev + 1, e.tick - 1);
    ticks_.set_data(e.tick, e.event);
    retained_records_.emplace_back(e.tick, i);
    accepted_pubs_[e.publisher][e.seq] = e.tick;
    prev = e.tick;
    last_assigned_ = std::max(last_assigned_, e.tick);
  }
  if (rechop_upto != storage::kNoIndex) volume.chop(log_stream_, rechop_upto);
  announced_upto_ = std::max(prev, lost_upto_);
  last_assigned_ = std::max(last_assigned_, announced_upto_);
  released_min_ = std::min(released_min_, announced_upto_);
}

Pubend::Accepted Pubend::accept_publish(PublisherId publisher, std::uint64_t seq,
                                        std::uint64_t acked_below,
                                        const matching::EventDataPtr& event,
                                        SimTime now) {
  auto& window = accepted_pubs_[publisher];
  window.erase(window.begin(), window.lower_bound(acked_below));
  if (auto it = window.find(seq); it != window.end()) {
    return {true, it->second};  // retry of an accepted publish: re-ack its tick
  }
  if (seq < acked_below) {
    // The publisher already saw this seq's ack, so it cannot be waiting for
    // this one; any tick satisfies the (discarded) duplicate ack.
    return {true, last_assigned_};
  }
  const Tick tick =
      std::max({last_assigned_ + 1, announced_upto_ + 1, tick_of_simtime(now)});
  last_assigned_ = tick;
  window.emplace(seq, tick);
  pending_durable_.insert(tick);

  const storage::LogIndex idx = res_.log_volume.append(
      log_stream_, encode_logged_event({tick, publisher, seq, event},
                                       res_.log_volume.acquire_buffer()));
  retained_records_.emplace_back(tick, idx);
  ++events_logged_;
  m_events_logged_->inc();
  res_.tracer.record(now, id_.value(), tick, TraceMilestone::kPublish);
  return {false, tick};
}

TickRange Pubend::announce_data(Tick tick, matching::EventDataPtr event) {
  GRYPHON_CHECK_MSG(tick > announced_upto_,
                    "announce " << tick << " behind horizon " << announced_upto_);
  pending_durable_.erase(tick);
  const Tick from = announced_upto_ + 1;
  if (tick > from) ticks_.set_silence(from, tick - 1);
  ticks_.set_data(tick, std::move(event));
  announced_upto_ = tick;
  m_persisted_->inc();
  res_.tracer.record(res_.sim.now(), id_.value(), tick, TraceMilestone::kPersist);
  return {from, tick};
}

std::optional<TickRange> Pubend::announce_silence(SimTime now) {
  // Silence may not pass an accepted event still waiting for durability.
  Tick horizon = tick_of_simtime(now) - 1;
  if (!pending_durable_.empty()) {
    horizon = std::min(horizon, *pending_durable_.begin() - 1);
  }
  if (horizon <= announced_upto_) return std::nullopt;
  const TickRange region{announced_upto_ + 1, horizon};
  ticks_.set_silence(region.from, region.to);
  announced_upto_ = horizon;
  return region;
}

void Pubend::update_mins(Tick released_min, Tick delivered_min) {
  GRYPHON_CHECK(released_min <= delivered_min);
  // A regressed Tr (a subscription migrated onto some SHB with an older
  // checkpoint) simply delays future releases; the already-lost prefix is
  // monotone regardless.
  released_min_ = released_min;
  delivered_min_ = std::max(delivered_min_, delivered_min);
}

std::optional<TickRange> Pubend::apply_release(SimTime now) {
  const Tick boundary = std::min(
      policy_->release_upto(released_min_, delivered_min_, tick_of_simtime(now)),
      announced_upto_);
  if (boundary <= lost_upto_) return std::nullopt;
  const TickRange lost{lost_upto_ + 1, boundary};
  ticks_.force_lost(lost.from, lost.to);

  // Chop the event log behind the boundary.
  storage::LogIndex chop_to = storage::kNoIndex;
  while (!retained_records_.empty() && retained_records_.front().first <= boundary) {
    chop_to = retained_records_.front().second;
    retained_records_.pop_front();
  }
  if (chop_to != storage::kNoIndex) res_.log_volume.chop(log_stream_, chop_to);
  lost_upto_ = boundary;
  m_ticks_chopped_->inc(static_cast<std::uint64_t>(lost.to - lost.from + 1));
  if (policy_->pressure() > 0.0) {
    // Degradation accounting: ticks chopped while the adaptive policy was
    // squeezing retention below its relaxed maximum.
    m_pressure_released_->inc(static_cast<std::uint64_t>(lost.to - lost.from + 1));
  }
  res_.tracer.record_range(now, id_.value(), lost.from, lost.to,
                           TraceMilestone::kReleaseToL);
  GRYPHON_LOG(kDebug, res_.name,
              "pubend " << id_ << " released ticks " << lost.from << ".." << lost.to
                        << " (Tr=" << released_min_ << " Td=" << delivered_min_ << ")");

  // Persist the boundary so recovery reproduces the L prefix. Group-batched
  // by the database; no callback needed (recovery tolerates a stale value —
  // it just recovers a smaller L prefix and re-releases).
  res_.database.commit(0, {{kPubendMetaTable, meta_key("lost_upto"), encode_i64(lost_upto_)},
                           {kPubendMetaTable, meta_key("last_tick"), encode_i64(last_assigned_)}});
  return lost;
}

}  // namespace gryphon::core
