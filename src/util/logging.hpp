// Structured component logging.
//
// Protocol-visible events (broker lifecycle, session changes, release
// application, recovery milestones) are logged through a process-wide
// Logger. Off by default so the simulator's hot loop pays one branch per
// suppressed call site; experiments and debugging sessions raise the level
// or install a capturing sink. A clock hook lets the harness stamp entries
// with *simulated* time, which is the only time that means anything here.
//
//   Logger::instance().set_level(LogLevel::kInfo);
//   GRYPHON_LOG(kInfo, "shb0", "subscriber " << id << " switched to constream");
#pragma once

#include <functional>
#include <sstream>
#include <string>

#include "util/time.hpp"

namespace gryphon {

enum class LogLevel : int {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarn = 3,
  kError = 4,
  kOff = 5,
};

[[nodiscard]] const char* to_string(LogLevel level);

class Logger {
 public:
  /// (level, component, message, sim time) — installed sinks receive every
  /// emitted entry; the default sink writes to stderr.
  using Sink = std::function<void(LogLevel, const std::string&, const std::string&,
                                  SimTime)>;
  using Clock = std::function<SimTime()>;

  static Logger& instance();

  void set_level(LogLevel level) { level_ = level; }
  [[nodiscard]] LogLevel level() const { return level_; }
  [[nodiscard]] bool enabled(LogLevel level) const { return level >= level_; }

  /// Replaces the sink (nullptr restores the stderr default).
  void set_sink(Sink sink);

  /// Installs the time source (the harness points this at its Simulator).
  void set_clock(Clock clock) { clock_ = std::move(clock); }

  void log(LogLevel level, const std::string& component, const std::string& message);

  [[nodiscard]] std::uint64_t emitted() const { return emitted_; }

 private:
  Logger();

  LogLevel level_ = LogLevel::kOff;
  Sink sink_;
  Clock clock_;
  std::uint64_t emitted_ = 0;
};

}  // namespace gryphon

/// Stream-style logging; evaluates its arguments only when the level is on.
#define GRYPHON_LOG(level, component, stream_expr)                              \
  do {                                                                          \
    auto& logger_ = ::gryphon::Logger::instance();                              \
    if (logger_.enabled(::gryphon::LogLevel::level)) {                          \
      std::ostringstream os_;                                                   \
      os_ << stream_expr; /* NOLINT */                                          \
      logger_.log(::gryphon::LogLevel::level, component, os_.str());            \
    }                                                                           \
  } while (false)
