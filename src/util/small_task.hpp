// SmallTask — a move-only `void()` callable with a large inline buffer.
//
// The simulator schedules and runs millions of short-lived closures per
// simulated second; std::function's small-buffer is too small for the
// broker-layer lambdas (a `this` pointer plus a couple of shared_ptrs), so
// nearly every schedule_at() paid a heap allocation. SmallTask stores
// callables up to kInlineBytes in place — sized so the common broker
// closures, including Cpu's {this, generation, user-lambda} wrapper around
// a typical caller closure, stay inline — and falls back to the heap only
// for outsized captures.
//
// Move-only (like the closures it holds: timers capture unique state), and
// moving leaves the source empty.
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace gryphon {

class SmallTask {
 public:
  static constexpr std::size_t kInlineBytes = 64;

  SmallTask() noexcept = default;
  SmallTask(std::nullptr_t) noexcept {}  // NOLINT(google-explicit-constructor)

  template <typename F,
            typename D = std::decay_t<F>,
            std::enable_if_t<!std::is_same_v<D, SmallTask> &&
                                 std::is_invocable_r_v<void, D&>,
                             int> = 0>
  SmallTask(F&& fn) {  // NOLINT(google-explicit-constructor)
    if constexpr (kFitsInline<D>) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(fn));
      ops_ = &kInlineOps<D>;
    } else {
      ::new (static_cast<void*>(buf_)) D*(new D(std::forward<F>(fn)));
      ops_ = &kHeapOps<D>;
    }
  }

  SmallTask(SmallTask&& other) noexcept { move_from(other); }
  SmallTask& operator=(SmallTask&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }
  SmallTask(const SmallTask&) = delete;
  SmallTask& operator=(const SmallTask&) = delete;
  ~SmallTask() { reset(); }

  SmallTask& operator=(std::nullptr_t) noexcept {
    reset();
    return *this;
  }

  explicit operator bool() const noexcept { return ops_ != nullptr; }
  friend bool operator==(const SmallTask& t, std::nullptr_t) noexcept { return !t; }
  friend bool operator!=(const SmallTask& t, std::nullptr_t) noexcept {
    return static_cast<bool>(t);
  }

  void operator()() { ops_->call(buf_); }

 private:
  struct Ops {
    void (*call)(void*);
    void (*relocate)(void* dst, void* src) noexcept;  // move + destroy source
    void (*destroy)(void*) noexcept;
  };

  template <typename D>
  static constexpr bool kFitsInline = sizeof(D) <= kInlineBytes &&
                                      alignof(D) <= alignof(std::max_align_t) &&
                                      std::is_nothrow_move_constructible_v<D>;

  template <typename D>
  static D* object(void* p) noexcept {
    return std::launder(reinterpret_cast<D*>(p));
  }

  template <typename D>
  static constexpr Ops kInlineOps = {
      [](void* p) { (*object<D>(p))(); },
      [](void* dst, void* src) noexcept {
        D* s = object<D>(src);
        ::new (dst) D(std::move(*s));
        s->~D();
      },
      [](void* p) noexcept { object<D>(p)->~D(); },
  };

  template <typename D>
  static constexpr Ops kHeapOps = {
      [](void* p) { (**object<D*>(p))(); },
      [](void* dst, void* src) noexcept {
        ::new (dst) D*(*object<D*>(src));  // steal the pointer
      },
      [](void* p) noexcept { delete *object<D*>(p); },
  };

  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

  void move_from(SmallTask& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->relocate(buf_, other.buf_);
      other.ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) std::byte buf_[kInlineBytes];
  const Ops* ops_ = nullptr;
};

}  // namespace gryphon
