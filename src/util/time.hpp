// Time representations.
//
// Two distinct clocks exist in the system and must never be confused:
//
//  * SimTime  — simulated wall-clock time, in microseconds, advanced by the
//               discrete-event simulator. All latencies, timers and rates are
//               expressed against it.
//  * Tick     — an event timestamp in a pubend's stream, in "tick
//               milliseconds" (the paper's unit). Ticks are assigned by the
//               pubend, are strictly monotonic per pubend, and index the
//               knowledge streams (Q/S/D/L ladders). A pubend derives Ticks
//               from SimTime but consumers must treat them as opaque stream
//               positions.
#pragma once

#include <cstdint>

namespace gryphon {

/// Simulated wall-clock time in microseconds since simulation start.
using SimTime = std::int64_t;

/// Duration in simulated microseconds.
using SimDuration = std::int64_t;

constexpr SimDuration usec(std::int64_t n) { return n; }
constexpr SimDuration msec(std::int64_t n) { return n * 1000; }
constexpr SimDuration sec(std::int64_t n) { return n * 1'000'000; }
constexpr double to_seconds(SimTime t) { return static_cast<double>(t) / 1e6; }
constexpr double to_millis(SimTime t) { return static_cast<double>(t) / 1e3; }

/// Event-stream timestamp in tick-milliseconds (paper §2: fine-grained enough
/// that no two events of one pubend share a tick).
using Tick = std::int64_t;

/// Sentinel for "no tick yet" / stream origin. All real ticks are > kTickZero.
constexpr Tick kTickZero = 0;

/// Sentinel upper bound, never assigned to an event.
constexpr Tick kTickInfinity = INT64_MAX;

/// A pubend's tick for a given simulated time: 1 tick == 1 ms of sim time.
constexpr Tick tick_of_simtime(SimTime t) { return t / 1000; }

}  // namespace gryphon
