// MetricsRegistry — per-node named counters, gauges and histograms with a
// ~1-cycle hot path.
//
// The registry is the broker-internal observability surface the figure
// benches, `gryphon_sim --metrics-json` and the bench JSON `metrics` block
// all read from. Design constraints, in order:
//
//  * Hot-path cost: instruments are *slots* with stable addresses
//    (std::deque never reallocates elements); callers resolve a slot once at
//    registration time (broker construction) and keep the raw pointer. An
//    increment is then a single add through that pointer — no map lookup, no
//    branch, no allocation.
//  * Crash semantics: the registry lives in NodeResources, which survives a
//    broker *process* crash. counter()/gauge() are get-or-create, so a
//    restarted broker re-resolves the same cumulative per-node slot and the
//    counters keep counting across incarnations (what an operator's external
//    metrics store would see).
//  * Pull probes: objects that already keep their own totals (SimDisk,
//    LogVolume, Pubend windows) are read lazily via registered callbacks,
//    evaluated only at snapshot time — zero steady-state cost. A Probe is an
//    RAII token: broker-owned probes die with the broker, so a crashed
//    broker can never leave a dangling callback behind; the backing gauge
//    slot retains its last refreshed value.
//  * Determinism: slots are iterated in sorted name order; snapshots of two
//    same-seed runs are byte-identical.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "util/stats.hpp"

namespace gryphon {

/// Canonical JSON number formatting shared by every metrics/latency
/// serializer in the repo: integral values print without a fractional part,
/// everything else as %.6g — stable, diffable, locale-free.
void append_json_number(std::string& out, double v);

class MetricsRegistry {
 public:
  /// Monotone event count. inc() is the hot-path operation.
  class Counter {
   public:
    void inc(std::uint64_t n = 1) { v_ += n; }
    [[nodiscard]] std::uint64_t get() const { return v_; }

   private:
    friend class MetricsRegistry;
    std::uint64_t v_ = 0;
  };

  /// Last-value instrument. set() is a plain store.
  class Gauge {
   public:
    void set(double v) { v_ = v; }
    [[nodiscard]] double get() const { return v_; }

   private:
    friend class MetricsRegistry;
    double v_ = 0;
  };

  /// RAII registration token for a pull probe (see probe()). Move-only;
  /// destruction (or release()) unregisters the callback. The registry must
  /// outlive the token — guaranteed for broker-owned probes, since
  /// NodeResources outlives every broker incarnation run on it.
  class Probe {
   public:
    Probe() = default;
    Probe(Probe&& o) noexcept : registry_(o.registry_), token_(o.token_) {
      o.registry_ = nullptr;
    }
    Probe& operator=(Probe&& o) noexcept;
    Probe(const Probe&) = delete;
    Probe& operator=(const Probe&) = delete;
    ~Probe() { release(); }

    void release();

   private:
    friend class MetricsRegistry;
    Probe(MetricsRegistry* registry, std::uint64_t token)
        : registry_(registry), token_(token) {}
    MetricsRegistry* registry_ = nullptr;
    std::uint64_t token_ = 0;
  };

  explicit MetricsRegistry(std::string node) : node_(std::move(node)) {}
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Get-or-create; the returned pointer is stable for the registry's
  /// lifetime. Resolve once, keep the pointer.
  Counter* counter(std::string_view name);
  Gauge* gauge(std::string_view name);
  /// Get-or-create; bounds are fixed by the first caller (later callers get
  /// the existing histogram regardless of the bounds they pass).
  Histogram* histogram(std::string_view name, double min_value, double max_value,
                       int buckets_per_decade = 10);

  /// Registers a pull probe writing into gauge(gauge_name) whenever
  /// refresh_probes() runs (i.e. at snapshot time). Keep the returned token
  /// alive exactly as long as whatever `fn` reads.
  [[nodiscard]] Probe probe(std::string_view gauge_name, std::function<double()> fn);

  /// Evaluates all live probes into their gauge slots.
  void refresh_probes();

  [[nodiscard]] const std::string& node() const { return node_; }

  /// Sorted-order iteration (after refresh_probes()).
  void for_each_counter(const std::function<void(const std::string&, std::uint64_t)>& f) const;
  void for_each_gauge(const std::function<void(const std::string&, double)>& f) const;

  /// Appends this node's snapshot as a JSON object value (callers emit the
  /// surrounding key). Refreshes probes first. Deterministic (sorted names).
  /// This is the one canonical snapshot serializer: the end-of-run
  /// --metrics-json file uses the pretty form, the periodic NDJSON scrape
  /// the compact (pretty=false, single-line) form — same sort order, same
  /// number formatting, only whitespace differs.
  void append_json(std::string& out, const std::string& indent,
                   bool pretty = true);

 private:
  struct ProbeEntry {
    std::uint64_t token = 0;
    Gauge* target = nullptr;
    std::function<double()> fn;
  };

  std::string node_;
  std::deque<Counter> counters_;
  std::deque<Gauge> gauges_;
  std::deque<Histogram> histograms_;
  // std::map keys the sorted iteration order; values index the deques.
  std::map<std::string, std::size_t, std::less<>> counter_index_;
  std::map<std::string, std::size_t, std::less<>> gauge_index_;
  std::map<std::string, std::size_t, std::less<>> histogram_index_;
  std::vector<ProbeEntry> probes_;
  std::uint64_t next_token_ = 1;
};

}  // namespace gryphon
