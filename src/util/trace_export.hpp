// TraceExporter — Chrome trace-event (Perfetto-loadable) export of the
// tick-milestone stream plus chaos fault windows.
//
// The exporter is a TraceSink: it captures every accepted (post-sampling)
// trace record live, instead of scraping the tracer rings afterwards, so the
// export is complete even when a ring has wrapped. At write time it builds a
// JSON Object Format trace (https://docs.google.com/document/d/1CvAClvFfyA5R-
// PhYUmn5OOQtYMH4h6I0nSsKchNAySU) with:
//
//  * pid 1 "faults": chaos fault windows as complete ("X") / instant ("i")
//    events on a dedicated track — partitions, crashes, disk stalls, frame
//    corruption, power loss all land here so a Perfetto timeline shows the
//    fault schedule above the milestone noise.
//  * pid 2 "ticks": one async span ("b"/"e") per sampled (pubend, tick),
//    opened at kPublish and closed at the first record that proves the tick
//    is finished (ack / gap / release-to-L covering it). This is the causal
//    end-to-end lane; a span still open at export time stays unfinished,
//    which Perfetto renders as running off the right edge.
//  * pid 3+i: one process per broker node (in topology order), each
//    milestone an instant event with args {pubend, tick[, tick2][, sub]}.
//
// Timestamps: trace-event ts is microseconds, exactly SimTime's unit, so
// records pass through untranslated. Events are sorted by (ts, insertion
// order) — same seed => byte-identical file (the repo-wide determinism
// invariant extends to the trace artifact).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/trace.hpp"

namespace gryphon {

class TraceExporter final : public TraceSink {
 public:
  void on_trace(std::uint32_t node_id, const TraceRecord& rec) override {
    records_.push_back({node_id, rec});
  }

  /// Names the per-node track for `node_id` ("phb", "imb0", "shb1", ...).
  void set_node_name(std::uint32_t node_id, std::string name) {
    node_names_[node_id] = std::move(name);
  }

  /// Chaos fault window [from, to] on the faults track (e.g. "partition
  /// shb0", "crash phb"). Zero-length windows degrade to instants.
  void add_fault_span(SimTime from, SimTime to, std::string name);
  /// Instantaneous fault (torn sync, injected frame corruption).
  void add_fault_instant(SimTime at, std::string name);

  [[nodiscard]] std::size_t record_count() const { return records_.size(); }
  [[nodiscard]] std::size_t fault_count() const { return faults_.size(); }

  /// Serializes the whole trace. Deterministic for a deterministic input
  /// stream; one event per line so diffs and line-oriented checks work.
  [[nodiscard]] std::string to_json() const;

  /// to_json() to a file; returns false on I/O failure.
  bool write(const std::string& path) const;

  void clear() {
    records_.clear();
    faults_.clear();
  }

 private:
  struct Captured {
    std::uint32_t node_id;
    TraceRecord rec;
  };
  struct Fault {
    SimTime from;
    SimTime to;
    bool instant;
    std::string name;
  };

  std::vector<Captured> records_;
  std::vector<Fault> faults_;
  std::map<std::uint32_t, std::string> node_names_;
};

}  // namespace gryphon
