// Binary serialization primitives.
//
// Persistent records (log-volume records, database rows, checkpoint tokens)
// are serialized to byte vectors via BufWriter and parsed back via BufReader.
// Encoding is little-endian fixed-width — simple, portable, and the byte
// counts are exactly what the storage cost model charges for, which matters
// because the paper's PFS claim ("8 + 16·n bytes per record, 25x less data")
// is a byte-accounting claim.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "util/assert.hpp"

namespace gryphon {

/// Appends fixed-width little-endian values to a growable byte vector.
class BufWriter {
 public:
  BufWriter() = default;

  /// Adopts `reuse` as the output buffer (cleared, capacity retained) so hot
  /// encoders can run off a recycled allocation.
  explicit BufWriter(std::vector<std::byte> reuse) : buf_(std::move(reuse)) {
    buf_.clear();
  }

  /// Adopts `buf` *without* clearing it, so an encoder can append behind
  /// bytes already written (e.g. a frame header hole in a shared arena).
  [[nodiscard]] static BufWriter appending(std::vector<std::byte> buf) {
    BufWriter w;
    w.buf_ = std::move(buf);
    return w;
  }

  void put_u8(std::uint8_t v) { buf_.push_back(static_cast<std::byte>(v)); }

  /// Appends `n` zero bytes in one resize (padding regions; the per-byte
  /// push_back loop this replaces dominated encode cost for padded payloads).
  void put_zeros(std::size_t n) { buf_.resize(buf_.size() + n, std::byte{0}); }

  void put_u16(std::uint16_t v) { put_raw(&v, sizeof v); }
  void put_u32(std::uint32_t v) { put_raw(&v, sizeof v); }
  void put_u64(std::uint64_t v) { put_raw(&v, sizeof v); }
  void put_i64(std::int64_t v) { put_raw(&v, sizeof v); }

  void put_bytes(std::span<const std::byte> bytes) {
    buf_.insert(buf_.end(), bytes.begin(), bytes.end());
  }

  /// Length-prefixed (u32) string.
  void put_string(std::string_view s) {
    put_u32(static_cast<std::uint32_t>(s.size()));
    put_raw(s.data(), s.size());
  }

  [[nodiscard]] std::size_t size() const { return buf_.size(); }
  [[nodiscard]] const std::vector<std::byte>& bytes() const { return buf_; }
  std::vector<std::byte> take() { return std::move(buf_); }

 private:
  void put_raw(const void* p, std::size_t n) {
    const auto* b = static_cast<const std::byte*>(p);
    buf_.insert(buf_.end(), b, b + n);
  }

  std::vector<std::byte> buf_;
};

/// Reads fixed-width little-endian values from a byte span. Throws
/// InvariantViolation on truncated input (corrupt record).
class BufReader {
 public:
  explicit BufReader(std::span<const std::byte> data) : data_(data) {}

  std::uint8_t get_u8() { return static_cast<std::uint8_t>(take(1)[0]); }

  std::uint16_t get_u16() { return get_raw<std::uint16_t>(); }
  std::uint32_t get_u32() { return get_raw<std::uint32_t>(); }
  std::uint64_t get_u64() { return get_raw<std::uint64_t>(); }
  std::int64_t get_i64() { return get_raw<std::int64_t>(); }

  std::string get_string() {
    const auto n = get_u32();
    auto s = take(n);
    return {reinterpret_cast<const char*>(s.data()), s.size()};
  }

  /// Zero-copy variant: a view into the underlying buffer. Only valid while
  /// the buffer the reader was constructed over stays alive and unmoved —
  /// pair with a shared ownership handle (wire/codec.hpp DecodeResult).
  std::string_view get_string_view() {
    const auto n = get_u32();
    auto s = take(n);
    return {reinterpret_cast<const char*>(s.data()), s.size()};
  }

  std::span<const std::byte> get_bytes(std::size_t n) { return take(n); }

  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }
  [[nodiscard]] bool done() const { return remaining() == 0; }

 private:
  template <typename T>
  T get_raw() {
    auto s = take(sizeof(T));
    T v;
    std::memcpy(&v, s.data(), sizeof(T));
    return v;
  }

  std::span<const std::byte> take(std::size_t n) {
    GRYPHON_CHECK_MSG(remaining() >= n, "truncated record: need " << n << " have "
                                                                  << remaining());
    auto s = data_.subspan(pos_, n);
    pos_ += n;
    return s;
  }

  std::span<const std::byte> data_;
  std::size_t pos_ = 0;
};

}  // namespace gryphon
