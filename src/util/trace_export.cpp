#include "util/trace_export.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <map>
#include <utility>

namespace gryphon {

void TraceExporter::add_fault_span(SimTime from, SimTime to, std::string name) {
  if (to <= from) {
    add_fault_instant(from, std::move(name));
    return;
  }
  faults_.push_back({from, to, /*instant=*/false, std::move(name)});
}

void TraceExporter::add_fault_instant(SimTime at, std::string name) {
  faults_.push_back({at, at, /*instant=*/true, std::move(name)});
}

namespace {

void append_escaped(std::string& out, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
}

struct Event {
  SimTime ts;
  std::uint64_t seq;  // insertion order: deterministic tiebreak at equal ts
  std::string line;
};

}  // namespace

std::string TraceExporter::to_json() const {
  constexpr int kFaultsPid = 1;
  constexpr int kTicksPid = 2;
  constexpr int kNodePidBase = 3;
  char buf[256];

  std::vector<Event> events;
  events.reserve(faults_.size() + 3 * records_.size());
  std::uint64_t seq = 0;

  for (const Fault& f : faults_) {
    std::string line;
    if (f.instant) {
      std::snprintf(buf, sizeof buf,
                    "{\"ph\":\"i\",\"pid\":%d,\"tid\":1,\"ts\":%" PRId64
                    ",\"s\":\"p\",\"cat\":\"fault\",\"name\":\"",
                    kFaultsPid, f.from);
    } else {
      std::snprintf(buf, sizeof buf,
                    "{\"ph\":\"X\",\"pid\":%d,\"tid\":1,\"ts\":%" PRId64
                    ",\"dur\":%" PRId64 ",\"cat\":\"fault\",\"name\":\"",
                    kFaultsPid, f.from, f.to - f.from);
    }
    line = buf;
    append_escaped(line, f.name);
    line += "\"}";
    events.push_back({f.from, seq++, std::move(line)});
  }

  // One async span per sampled (pubend, tick): opened by kPublish, closed by
  // the first ack / gap / release-to-L record covering the tick. Spans with
  // no closing record stay open (Perfetto draws them running off the edge).
  std::map<std::pair<std::int64_t, Tick>, bool> open_spans;
  const auto span_id = [&](std::int64_t pubend, Tick tick) {
    std::snprintf(buf, sizeof buf, "\"0x%llx\"",
                  static_cast<unsigned long long>(
                      (static_cast<std::uint64_t>(pubend) << 40) ^
                      static_cast<std::uint64_t>(tick)));
    return std::string(buf);
  };
  const auto span_event = [&](const char* ph, SimTime ts, std::int64_t pubend,
                              Tick tick) {
    std::snprintf(buf, sizeof buf,
                  "{\"ph\":\"%s\",\"pid\":%d,\"tid\":1,\"ts\":%" PRId64
                  ",\"cat\":\"tick\",\"id\":%s,\"name\":\"pubend %" PRId64
                  " tick %" PRId64 "\"}",
                  ph, kTicksPid, ts, span_id(pubend, tick).c_str(), pubend,
                  tick);
    events.push_back({ts, seq++, std::string(buf)});
  };

  for (const Captured& c : records_) {
    const TraceRecord& r = c.rec;

    // Per-node milestone instant.
    std::string line;
    std::snprintf(buf, sizeof buf,
                  "{\"ph\":\"i\",\"pid\":%d,\"tid\":1,\"ts\":%" PRId64
                  ",\"s\":\"p\",\"cat\":\"milestone\",\"name\":\"%s\","
                  "\"args\":{\"pubend\":%" PRId64 ",\"tick\":%" PRId64,
                  kNodePidBase + static_cast<int>(c.node_id), r.at,
                  trace_milestone_name(r.milestone), r.pubend, r.tick);
    line = buf;
    if (r.tick2 != r.tick) {
      std::snprintf(buf, sizeof buf, ",\"tick2\":%" PRId64, r.tick2);
      line += buf;
    }
    if (r.detail != 0) {
      std::snprintf(buf, sizeof buf, ",\"sub\":%u", r.detail);
      line += buf;
    }
    line += "}}";
    events.push_back({r.at, seq++, std::move(line)});

    // Causal tick-span lane.
    if (r.milestone == TraceMilestone::kPublish) {
      auto [it, inserted] = open_spans.try_emplace({r.pubend, r.tick}, true);
      (void)it;
      if (inserted) span_event("b", r.at, r.pubend, r.tick);
    } else if (r.milestone == TraceMilestone::kAck ||
               r.milestone == TraceMilestone::kGap ||
               r.milestone == TraceMilestone::kReleaseToL) {
      auto it = open_spans.lower_bound({r.pubend, r.tick});
      const auto end = open_spans.upper_bound({r.pubend, r.tick2});
      while (it != end) {
        span_event("e", r.at, it->first.first, it->first.second);
        it = open_spans.erase(it);
      }
    }
  }

  std::stable_sort(events.begin(), events.end(),
                   [](const Event& a, const Event& b) {
                     if (a.ts != b.ts) return a.ts < b.ts;
                     return a.seq < b.seq;
                   });

  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  bool first = true;
  const auto emit = [&](const std::string& line) {
    if (!first) out += ",\n";
    first = false;
    out += line;
  };
  // Metadata first: track names for the fixed lanes and each node.
  emit("{\"ph\":\"M\",\"pid\":1,\"name\":\"process_name\",\"args\":{\"name\":\"faults\"}}");
  emit("{\"ph\":\"M\",\"pid\":2,\"name\":\"process_name\",\"args\":{\"name\":\"ticks\"}}");
  for (const auto& [node_id, name] : node_names_) {
    std::string line;
    std::snprintf(buf, sizeof buf, "{\"ph\":\"M\",\"pid\":%d,\"name\":\"process_name\",\"args\":{\"name\":\"",
                  kNodePidBase + static_cast<int>(node_id));
    line = buf;
    append_escaped(line, name);
    line += "\"}}";
    emit(line);
  }
  for (const Event& e : events) emit(e.line);
  out += "\n]}\n";
  return out;
}

bool TraceExporter::write(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const std::string json = to_json();
  const std::size_t n = std::fwrite(json.data(), 1, json.size(), f);
  const bool ok = n == json.size() && std::fclose(f) == 0;
  if (n != json.size()) std::fclose(f);
  return ok;
}

}  // namespace gryphon
