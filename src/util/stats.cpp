#include "util/stats.hpp"

#include <cmath>

namespace gryphon {

double Summary::stddev() const { return std::sqrt(variance()); }

std::vector<TimeSeries::Point> TimeSeries::rate_of_change(SimDuration window) const {
  GRYPHON_CHECK(window > 0);
  std::vector<Point> out;
  if (points_.size() < 2) return out;

  const SimTime start = points_.front().time;
  const SimTime end = points_.back().time;
  // Step-interpolated value at time t: value of the last point <= t.
  auto value_at = [this](SimTime t) {
    auto it = std::upper_bound(points_.begin(), points_.end(), t,
                               [](SimTime x, const Point& p) { return x < p.time; });
    GRYPHON_CHECK(it != points_.begin());
    return std::prev(it)->value;
  };

  for (SimTime w = start; w + window <= end; w += window) {
    const double dv = value_at(w + window) - value_at(w);
    out.push_back({w, dv / to_seconds(window)});
  }
  return out;
}

double TimeSeries::average_over(SimTime from, SimTime to) const {
  GRYPHON_CHECK(from < to);
  if (points_.empty()) return 0.0;
  double area = 0.0;
  double cur = points_.front().value;
  SimTime cursor = from;
  for (const auto& p : points_) {
    if (p.time <= from) {
      cur = p.value;
      continue;
    }
    if (p.time >= to) break;
    area += cur * to_seconds(p.time - cursor);
    cur = p.value;
    cursor = p.time;
  }
  area += cur * to_seconds(to - cursor);
  return area / to_seconds(to - from);
}

void RateMeter::record(SimTime t, std::uint64_t n) {
  GRYPHON_CHECK_MSG(t >= 0, "negative sim time");
  const auto idx = static_cast<std::size_t>(t / window_);
  if (idx >= counts_.size()) counts_.resize(idx + 1, 0);
  counts_[idx] += n;
  last_time_ = std::max(last_time_, t);
  total_ += n;
}

std::vector<RateMeter::Window> RateMeter::windows() const {
  std::vector<Window> out;
  if (counts_.empty()) return out;
  // The window containing last_time_ is still accumulating; exclude it.
  const auto open = static_cast<std::size_t>(last_time_ / window_);
  for (std::size_t i = 0; i < counts_.size() && i < open; ++i) {
    out.push_back({static_cast<SimTime>(i) * window_,
                   static_cast<double>(counts_[i]) / to_seconds(window_)});
  }
  return out;
}

Histogram::Histogram(double min_value, double max_value, int buckets_per_decade)
    : min_value_(min_value) {
  GRYPHON_CHECK(min_value > 0 && max_value > min_value && buckets_per_decade > 0);
  log_min_ = std::log10(min_value);
  log_step_ = 1.0 / buckets_per_decade;
  const double decades = std::log10(max_value) - log_min_;
  buckets_.assign(static_cast<std::size_t>(std::ceil(decades / log_step_)) + 2, 0);
}

std::size_t Histogram::bucket_of(double v) const {
  if (v <= min_value_) return 0;
  const double d = (std::log10(v) - log_min_) / log_step_;
  const auto i = static_cast<std::size_t>(d) + 1;
  return std::min(i, buckets_.size() - 1);
}

double Histogram::bucket_upper(std::size_t i) const {
  if (i == 0) return min_value_;
  return std::pow(10.0, log_min_ + static_cast<double>(i) * log_step_);
}

void Histogram::add(double v) {
  ++buckets_[bucket_of(v)];
  ++count_;
}

double Histogram::percentile(double p) const {
  GRYPHON_CHECK(p >= 0.0 && p <= 100.0);
  if (count_ == 0) return 0.0;
  const auto target =
      static_cast<std::uint64_t>(std::ceil(p / 100.0 * static_cast<double>(count_)));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen >= target && buckets_[i] > 0) return bucket_upper(i);
  }
  return bucket_upper(buckets_.size() - 1);
}

}  // namespace gryphon
