#include "util/rng.hpp"

#include <cmath>

namespace gryphon {

double Rng::next_exponential(double mean) {
  GRYPHON_CHECK(mean > 0.0);
  // Inverse-CDF; guard against log(0).
  double u = next_double();
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

}  // namespace gryphon
