#include "util/logging.hpp"

#include <cstdio>

namespace gryphon {

const char* to_string(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

Logger::Logger() { set_sink(nullptr); }

void Logger::set_sink(Sink sink) {
  if (sink) {
    sink_ = std::move(sink);
    return;
  }
  sink_ = [](LogLevel level, const std::string& component, const std::string& message,
             SimTime t) {
    std::fprintf(stderr, "[%10.3fs] %-5s %-10s %s\n", to_seconds(t), to_string(level),
                 component.c_str(), message.c_str());
  };
}

void Logger::log(LogLevel level, const std::string& component,
                 const std::string& message) {
  if (!enabled(level)) return;
  ++emitted_;
  sink_(level, component, message, clock_ ? clock_() : 0);
}

}  // namespace gryphon
