// TickSet — a set of ticks tuned for the delivery oracle's access pattern.
//
// Steady-state deliveries arrive in ascending tick order per pubend, so the
// common insert is an O(1) append to a sorted vector. Catchup interleaves a
// second ascending run below the live frontier; those land in a small sorted
// side buffer that is merged into the main vector when it fills. Compared to
// std::set<Tick> this removes the per-element node allocation and the
// pointer-chasing — the oracle's delivered-set insert was the single largest
// line item in the wall-clock profile.
//
// Not a general-purpose set: erase is only supported above a tick
// (checkpoint rewind) and membership queries are binary searches over the
// two sorted runs.
#pragma once

#include <algorithm>
#include <cstddef>
#include <optional>
#include <vector>

#include "util/time.hpp"

namespace gryphon {

class TickSet {
 public:
  /// Inserts `t`; returns false (and changes nothing) if already present.
  bool insert(Tick t) {
    if (empty() || t > max_) {
      sorted_.push_back(t);  // > max_ >= sorted_.back(): stays sorted
      max_ = t;
      return true;
    }
    auto p = std::lower_bound(pending_.begin(), pending_.end(), t);
    if (p != pending_.end() && *p == t) return false;
    if (std::binary_search(sorted_.begin(), sorted_.end(), t)) return false;
    pending_.insert(p, t);
    if (pending_.size() >= kFlushLimit) flush();
    return true;
  }

  [[nodiscard]] bool contains(Tick t) const {
    return std::binary_search(sorted_.begin(), sorted_.end(), t) ||
           std::binary_search(pending_.begin(), pending_.end(), t);
  }

  /// Smallest member in [from, to], if any.
  [[nodiscard]] std::optional<Tick> first_in(Tick from, Tick to) const {
    std::optional<Tick> best;
    auto consider = [&](const std::vector<Tick>& run) {
      auto it = std::lower_bound(run.begin(), run.end(), from);
      if (it != run.end() && *it <= to && (!best || *it < *best)) best = *it;
    };
    consider(sorted_);
    consider(pending_);
    return best;
  }

  /// Removes every member strictly greater than `t` (checkpoint rewind).
  void erase_above(Tick t) {
    auto chop = [t](std::vector<Tick>& run) {
      run.erase(std::upper_bound(run.begin(), run.end(), t), run.end());
    };
    chop(sorted_);
    chop(pending_);
    max_ = t;  // safe upper bound; only read as an append threshold
  }

  void clear() {
    sorted_.clear();
    pending_.clear();
    max_ = 0;
  }

  [[nodiscard]] bool empty() const { return sorted_.empty() && pending_.empty(); }
  [[nodiscard]] std::size_t size() const { return sorted_.size() + pending_.size(); }

  /// All members, ascending. Merges the side buffer (amortized).
  [[nodiscard]] const std::vector<Tick>& ticks() const {
    flush();
    return sorted_;
  }

  /// Calls `fn(t)` for every member with lo < t <= hi, ascending.
  template <typename Fn>
  void for_each_in(Tick lo, Tick hi, Fn&& fn) const {
    flush();
    for (auto it = std::upper_bound(sorted_.begin(), sorted_.end(), lo);
         it != sorted_.end() && *it <= hi; ++it) {
      fn(*it);
    }
  }

 private:
  static constexpr std::size_t kFlushLimit = 1024;

  void flush() const {
    if (pending_.empty()) return;
    const std::size_t mid = sorted_.size();
    sorted_.insert(sorted_.end(), pending_.begin(), pending_.end());
    std::inplace_merge(sorted_.begin(), sorted_.begin() + static_cast<std::ptrdiff_t>(mid),
                       sorted_.end());
    pending_.clear();
  }

  mutable std::vector<Tick> sorted_;   // ascending
  mutable std::vector<Tick> pending_;  // ascending side run, < kFlushLimit
  Tick max_ = 0;                       // largest member while non-empty
};

}  // namespace gryphon
