// LatencyRecorder — folds sampled TraceMilestone transitions into per-stage
// delivery-latency histograms.
//
// The broker pipeline the paper's figures reason about is staged: a publish
// is persisted at the PHB, matched at an SHB, logged to the PFS, delivered,
// and acked. The tracer already records those milestones per (pubend, tick);
// this recorder consumes them through the TraceSink seam and pairs
// consecutive milestones into stage latencies:
//
//   publish -> persist -> match -> pfs-log -> deliver -> ack
//
// plus end-to-end (publish -> first delivery) and the catchup admission-
// queue wait (kCatchupQueued -> kCatchupAdmitted, paired per subscriber).
//
// Clock-source seam: the recorder never reads a clock. It consumes the
// timestamps already stamped on the records by whoever produced them — the
// simulator's SimTime today, a wall-clock event loop's microsecond stamps
// tomorrow — and converts raw timestamp units into histogram milliseconds
// through Options::time_to_ms. Nothing else in the recorder assumes a time
// source, so the same object works unchanged on either loop.
//
// Pairing rules (the edge cases tests/test_observability.cpp pins down):
//  * Each stage latches once per (pubend, tick): the FIRST matching
//    transition feeds the histogram, duplicates (multiple SHBs matching the
//    same tick, a recovery re-persist) are ignored.
//  * A transition whose key was never opened by a kPublish — or was already
//    retired — counts as an orphan, not a sample.
//  * Range milestones (kPfsLog, kAck, kGap, kReleaseToL) apply to every open
//    key inside [tick, tick2] for that pubend.
//  * kGap retires a key without an end-to-end sample (the event was
//    gap-notified, not delivered); kReleaseToL retires it too (storage is
//    gone, no further milestones can be trusted).
//  * Sampling bias: the tracer hands over a deterministic 1-in-N tick
//    subset, so every histogram is over the sample, not the population.
//
// Determinism: all state lives in ordered maps and fixed histograms; same
// record stream => bit-identical buckets.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "util/stats.hpp"
#include "util/trace.hpp"

namespace gryphon {

enum class LatencyStage : std::uint8_t {
  kPublishToPersist = 0,
  kPersistToMatch,
  kMatchToPfsLog,
  kPfsLogToDeliver,
  kDeliverToAck,
  kEndToEnd,     // publish -> first delivery
  kCatchupWait,  // kCatchupQueued -> kCatchupAdmitted, per subscriber
};
constexpr std::size_t kNumLatencyStages = 7;

/// Snake-case stage name ("publish_to_persist", ...), stable across runs:
/// it keys the JSON output and the bench latency blocks.
[[nodiscard]] const char* latency_stage_name(LatencyStage s);

class LatencyRecorder final : public TraceSink {
 public:
  struct Options {
    /// Raw record-timestamp units -> histogram milliseconds. SimTime is
    /// microseconds, so the default is 1e-3; a wall-clock loop stamping
    /// nanoseconds would pass 1e-6. This is the whole clock-source seam.
    double time_to_ms = 1e-3;
    /// Bound on concurrently open (pubend, tick) keys; the oldest key is
    /// evicted (and counted in dropped_keys()) when a publish would exceed
    /// it, so an ack-less workload cannot grow the recorder unboundedly.
    std::size_t max_open_keys = 1 << 16;
    /// Bound on outstanding catchup-queue waits, same eviction rule.
    std::size_t max_open_waits = 1 << 16;
    /// Histogram range in milliseconds (log-spaced buckets).
    double hist_min_ms = 0.01;
    double hist_max_ms = 1e7;
    int buckets_per_decade = 10;
  };

  LatencyRecorder();  // default Options
  explicit LatencyRecorder(Options options);

  void on_trace(std::uint32_t node_id, const TraceRecord& rec) override;

  [[nodiscard]] const Histogram& stage(LatencyStage s) const {
    return stages_[static_cast<std::size_t>(s)];
  }
  /// Transitions that arrived for a key never opened / already retired.
  [[nodiscard]] std::uint64_t orphan_transitions() const { return orphans_; }
  /// Keys evicted by the max_open_keys / max_open_waits bounds.
  [[nodiscard]] std::uint64_t dropped_keys() const { return dropped_; }
  /// Keys retired by a gap notification instead of a delivery.
  [[nodiscard]] std::uint64_t gap_terminated_keys() const { return gap_terminated_; }
  [[nodiscard]] std::size_t open_key_count() const { return open_.size(); }
  [[nodiscard]] std::size_t open_wait_count() const { return waits_.size(); }

  /// Appends the recorder as a JSON object: a "stages" map of
  /// {count, p50, p90, p99, p999} per stage (milliseconds) plus the
  /// bookkeeping counters. pretty=false emits the compact single-line form
  /// the NDJSON scrape uses; both styles share this one serializer.
  void append_json(std::string& out, const std::string& indent,
                   bool pretty = true) const;

  void clear();

 private:
  struct OpenKey {
    SimTime publish = -1;
    SimTime persist = -1;
    SimTime match = -1;
    SimTime pfs_log = -1;
    SimTime deliver = -1;
    bool acked = false;
  };
  using Key = std::pair<std::int64_t, Tick>;      // (pubend, tick)
  using WaitKey = std::pair<std::uint32_t, std::int64_t>;  // (subscriber, pubend)

  void add_sample(LatencyStage s, SimTime from, SimTime to) {
    stages_[static_cast<std::size_t>(s)].add(
        static_cast<double>(to - from) * options_.time_to_ms);
  }
  /// Applies `fn` to every open key of `pubend` inside [from, to].
  template <typename Fn>
  void for_range(std::int64_t pubend, Tick from, Tick to, Fn&& fn);

  Options options_;
  std::vector<Histogram> stages_;
  // Ordered maps: range milestones become lower_bound scans, and iteration
  // order (hence eviction and histogram feed order) is deterministic.
  std::map<Key, OpenKey> open_;
  std::map<WaitKey, SimTime> waits_;
  std::uint64_t orphans_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t gap_terminated_ = 0;
};

}  // namespace gryphon
