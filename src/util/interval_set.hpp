// A set of disjoint, closed integer intervals over Tick.
//
// Used wherever the protocols reason about timestamp ranges: outstanding
// nacks (curiosity streams), nack consolidation at intermediate brokers,
// gap bookkeeping at subscribers, and the exactly-once delivery checker.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <ostream>
#include <vector>

#include "util/assert.hpp"
#include "util/time.hpp"

namespace gryphon {

struct TickRange {
  Tick from;  // inclusive
  Tick to;    // inclusive

  [[nodiscard]] Tick length() const { return to - from + 1; }
  friend bool operator==(const TickRange&, const TickRange&) = default;
  friend std::ostream& operator<<(std::ostream& os, const TickRange& r) {
    return os << '[' << r.from << ',' << r.to << ']';
  }
};

class IntervalSet {
 public:
  IntervalSet() = default;

  /// Inserts [from, to], merging with overlapping/adjacent intervals.
  void add(Tick from, Tick to);
  void add(TickRange r) { add(r.from, r.to); }

  /// Removes [from, to] (splitting intervals as needed).
  void subtract(Tick from, Tick to);
  void subtract(TickRange r) { subtract(r.from, r.to); }

  [[nodiscard]] bool contains(Tick t) const;

  /// The interval containing t, if any.
  [[nodiscard]] std::optional<TickRange> interval_containing(Tick t) const;

  /// True iff [from, to] is entirely covered.
  [[nodiscard]] bool covers(Tick from, Tick to) const;

  /// True iff [from, to] overlaps any interval.
  [[nodiscard]] bool intersects(Tick from, Tick to) const;

  /// The sub-ranges of [from, to] that are covered.
  [[nodiscard]] std::vector<TickRange> intersection(Tick from, Tick to) const;

  /// The sub-ranges of [from, to] that are NOT covered.
  [[nodiscard]] std::vector<TickRange> complement_within(Tick from, Tick to) const;

  [[nodiscard]] bool empty() const { return intervals_.empty(); }
  void clear() { intervals_.clear(); }

  /// Number of disjoint intervals.
  [[nodiscard]] std::size_t interval_count() const { return intervals_.size(); }

  /// Total ticks covered.
  [[nodiscard]] Tick total_length() const;

  /// Smallest / largest covered tick; invalid to call when empty.
  [[nodiscard]] Tick min() const;
  [[nodiscard]] Tick max() const;

  [[nodiscard]] std::vector<TickRange> ranges() const;

  friend std::ostream& operator<<(std::ostream& os, const IntervalSet& s);

 private:
  // from -> to, disjoint and non-adjacent (gap of >= 1 between intervals).
  std::map<Tick, Tick> intervals_;
};

inline void IntervalSet::add(Tick from, Tick to) {
  GRYPHON_CHECK_MSG(from <= to, "bad range [" << from << ',' << to << ']');
  // Find the first interval that could merge: any with start <= to+1 and
  // end >= from-1.
  auto it = intervals_.upper_bound(to + 1);  // first with start > to+1
  // Walk left while mergeable.
  while (it != intervals_.begin()) {
    auto prev = std::prev(it);
    if (prev->second < from - 1) break;  // ends before from-1: disjoint
    from = std::min(from, prev->first);
    to = std::max(to, prev->second);
    it = intervals_.erase(prev);
  }
  intervals_.emplace(from, to);
}

inline void IntervalSet::subtract(Tick from, Tick to) {
  GRYPHON_CHECK_MSG(from <= to, "bad range [" << from << ',' << to << ']');
  auto it = intervals_.upper_bound(to);  // first with start > to
  // Collect the split remainders and re-insert after the walk — inserting
  // inside the loop would revisit the freshly inserted right piece forever.
  std::vector<std::pair<Tick, Tick>> keep;
  while (it != intervals_.begin()) {
    auto cur = std::prev(it);
    if (cur->second < from) break;  // entirely before: done
    const Tick cfrom = cur->first;
    const Tick cto = cur->second;
    it = intervals_.erase(cur);
    if (cfrom < from) keep.emplace_back(cfrom, from - 1);
    if (cto > to) keep.emplace_back(to + 1, cto);
  }
  for (const auto& [a, b] : keep) intervals_.emplace(a, b);
}

inline bool IntervalSet::contains(Tick t) const {
  auto it = intervals_.upper_bound(t);
  if (it == intervals_.begin()) return false;
  return std::prev(it)->second >= t;
}

inline std::optional<TickRange> IntervalSet::interval_containing(Tick t) const {
  auto it = intervals_.upper_bound(t);
  if (it == intervals_.begin()) return std::nullopt;
  auto cur = std::prev(it);
  if (cur->second < t) return std::nullopt;
  return TickRange{cur->first, cur->second};
}

inline bool IntervalSet::covers(Tick from, Tick to) const {
  auto it = intervals_.upper_bound(from);
  if (it == intervals_.begin()) return false;
  auto cur = std::prev(it);
  return cur->first <= from && cur->second >= to;
}

inline bool IntervalSet::intersects(Tick from, Tick to) const {
  auto it = intervals_.upper_bound(to);
  if (it == intervals_.begin()) return false;
  return std::prev(it)->second >= from;
}

inline std::vector<TickRange> IntervalSet::intersection(Tick from, Tick to) const {
  std::vector<TickRange> out;
  auto it = intervals_.upper_bound(from);
  if (it != intervals_.begin() && std::prev(it)->second >= from) --it;
  for (; it != intervals_.end() && it->first <= to; ++it) {
    out.push_back({std::max(from, it->first), std::min(to, it->second)});
  }
  return out;
}

inline std::vector<TickRange> IntervalSet::complement_within(Tick from, Tick to) const {
  std::vector<TickRange> out;
  Tick cursor = from;
  for (const TickRange& r : intersection(from, to)) {
    if (r.from > cursor) out.push_back({cursor, r.from - 1});
    cursor = r.to + 1;
  }
  if (cursor <= to) out.push_back({cursor, to});
  return out;
}

inline Tick IntervalSet::total_length() const {
  Tick n = 0;
  for (const auto& [from, to] : intervals_) n += to - from + 1;
  return n;
}

inline Tick IntervalSet::min() const {
  GRYPHON_CHECK(!intervals_.empty());
  return intervals_.begin()->first;
}

inline Tick IntervalSet::max() const {
  GRYPHON_CHECK(!intervals_.empty());
  return intervals_.rbegin()->second;
}

inline std::vector<TickRange> IntervalSet::ranges() const {
  std::vector<TickRange> out;
  out.reserve(intervals_.size());
  for (const auto& [from, to] : intervals_) out.push_back({from, to});
  return out;
}

inline std::ostream& operator<<(std::ostream& os, const IntervalSet& s) {
  os << '{';
  bool first = true;
  for (const auto& [from, to] : s.intervals_) {
    if (!first) os << ", ";
    os << '[' << from << ',' << to << ']';
    first = false;
  }
  return os << '}';
}

}  // namespace gryphon
