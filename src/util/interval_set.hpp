// A set of disjoint, closed integer intervals over Tick.
//
// Used wherever the protocols reason about timestamp ranges: outstanding
// nacks (curiosity streams), nack consolidation at intermediate brokers,
// gap bookkeeping at subscribers, the TickMap knowledge ladder, and the
// exactly-once delivery checker.
//
// Stored as a flat sorted vector of runs: the sets are small (a handful of
// runs in steady state — silence and data coalesce) but queried constantly,
// so binary search over contiguous storage beats a node-based map, and the
// common mutation — extending the last run (monotone accumulation) — is
// O(1) with no allocation.
#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <ostream>
#include <vector>

#include "util/assert.hpp"
#include "util/time.hpp"

namespace gryphon {

struct TickRange {
  Tick from;  // inclusive
  Tick to;    // inclusive

  [[nodiscard]] Tick length() const { return to - from + 1; }
  friend bool operator==(const TickRange&, const TickRange&) = default;
  friend std::ostream& operator<<(std::ostream& os, const TickRange& r) {
    return os << '[' << r.from << ',' << r.to << ']';
  }
};

class IntervalSet {
 public:
  IntervalSet() = default;

  /// Inserts [from, to], merging with overlapping/adjacent intervals.
  void add(Tick from, Tick to);
  void add(TickRange r) { add(r.from, r.to); }

  /// Removes [from, to] (splitting intervals as needed).
  void subtract(Tick from, Tick to);
  void subtract(TickRange r) { subtract(r.from, r.to); }

  [[nodiscard]] bool contains(Tick t) const;

  /// The interval containing t, if any.
  [[nodiscard]] std::optional<TickRange> interval_containing(Tick t) const;

  /// True iff [from, to] is entirely covered.
  [[nodiscard]] bool covers(Tick from, Tick to) const;

  /// True iff [from, to] overlaps any interval.
  [[nodiscard]] bool intersects(Tick from, Tick to) const;

  /// The sub-ranges of [from, to] that are covered.
  [[nodiscard]] std::vector<TickRange> intersection(Tick from, Tick to) const;

  /// The sub-ranges of [from, to] that are NOT covered.
  [[nodiscard]] std::vector<TickRange> complement_within(Tick from, Tick to) const;

  [[nodiscard]] bool empty() const { return runs_.empty(); }
  void clear() { runs_.clear(); }

  /// Number of disjoint intervals.
  [[nodiscard]] std::size_t interval_count() const { return runs_.size(); }

  /// Total ticks covered.
  [[nodiscard]] Tick total_length() const;

  /// Smallest / largest covered tick; invalid to call when empty.
  [[nodiscard]] Tick min() const;
  [[nodiscard]] Tick max() const;

  [[nodiscard]] std::vector<TickRange> ranges() const { return runs_; }

  /// Zero-copy view of the runs, ascending and disjoint (hot-path iteration).
  [[nodiscard]] const std::vector<TickRange>& spans() const { return runs_; }

  friend std::ostream& operator<<(std::ostream& os, const IntervalSet& s);

 private:
  /// Index of the first run with run.to >= t (i.e. the run containing or
  /// following t); runs_.size() if none.
  [[nodiscard]] std::size_t first_reaching(Tick t) const {
    return static_cast<std::size_t>(
        std::lower_bound(runs_.begin(), runs_.end(), t,
                         [](const TickRange& r, Tick v) { return r.to < v; }) -
        runs_.begin());
  }

  // Ascending, disjoint, non-adjacent (gap of >= 1 between runs).
  std::vector<TickRange> runs_;
};

inline void IntervalSet::add(Tick from, Tick to) {
  GRYPHON_CHECK_MSG(from <= to, "bad range [" << from << ',' << to << ']');
  // Fast path: append or extend at the tail (monotone accumulation).
  if (runs_.empty() || from > runs_.back().to + 1) {
    runs_.push_back({from, to});
    return;
  }
  if (from >= runs_.back().from) {
    runs_.back().to = std::max(runs_.back().to, to);
    runs_.back().from = std::min(runs_.back().from, from);
    return;
  }
  // General case: merge every run overlapping or adjacent to [from, to].
  const std::size_t lo = first_reaching(from - 1);
  std::size_t hi = lo;  // one past the last run with run.from <= to+1
  Tick nfrom = from;
  Tick nto = to;
  while (hi < runs_.size() && runs_[hi].from <= to + 1) {
    nfrom = std::min(nfrom, runs_[hi].from);
    nto = std::max(nto, runs_[hi].to);
    ++hi;
  }
  if (lo == hi) {
    runs_.insert(runs_.begin() + static_cast<std::ptrdiff_t>(lo), {nfrom, nto});
  } else {
    runs_[lo] = {nfrom, nto};
    runs_.erase(runs_.begin() + static_cast<std::ptrdiff_t>(lo) + 1,
                runs_.begin() + static_cast<std::ptrdiff_t>(hi));
  }
}

inline void IntervalSet::subtract(Tick from, Tick to) {
  GRYPHON_CHECK_MSG(from <= to, "bad range [" << from << ',' << to << ']');
  const std::size_t lo = first_reaching(from);
  std::size_t hi = lo;  // one past the last overlapping run
  while (hi < runs_.size() && runs_[hi].from <= to) ++hi;
  if (lo == hi) return;  // no overlap

  // Remainders of the boundary runs survive the cut.
  TickRange pieces[2];
  std::size_t n = 0;
  if (runs_[lo].from < from) pieces[n++] = {runs_[lo].from, from - 1};
  if (runs_[hi - 1].to > to) pieces[n++] = {to + 1, runs_[hi - 1].to};
  const auto first = runs_.begin() + static_cast<std::ptrdiff_t>(lo);
  if (n == hi - lo) {
    std::copy(pieces, pieces + n, first);
  } else if (n < hi - lo) {
    std::copy(pieces, pieces + n, first);
    runs_.erase(first + static_cast<std::ptrdiff_t>(n),
                runs_.begin() + static_cast<std::ptrdiff_t>(hi));
  } else {  // n == 2, one run split in two
    runs_[lo] = pieces[0];
    runs_.insert(first + 1, pieces[1]);
  }
}

inline bool IntervalSet::contains(Tick t) const {
  const std::size_t i = first_reaching(t);
  return i < runs_.size() && runs_[i].from <= t;
}

inline std::optional<TickRange> IntervalSet::interval_containing(Tick t) const {
  const std::size_t i = first_reaching(t);
  if (i >= runs_.size() || runs_[i].from > t) return std::nullopt;
  return runs_[i];
}

inline bool IntervalSet::covers(Tick from, Tick to) const {
  const std::size_t i = first_reaching(from);
  return i < runs_.size() && runs_[i].from <= from && runs_[i].to >= to;
}

inline bool IntervalSet::intersects(Tick from, Tick to) const {
  const std::size_t i = first_reaching(from);
  return i < runs_.size() && runs_[i].from <= to;
}

inline std::vector<TickRange> IntervalSet::intersection(Tick from, Tick to) const {
  std::vector<TickRange> out;
  for (std::size_t i = first_reaching(from); i < runs_.size() && runs_[i].from <= to;
       ++i) {
    out.push_back({std::max(from, runs_[i].from), std::min(to, runs_[i].to)});
  }
  return out;
}

inline std::vector<TickRange> IntervalSet::complement_within(Tick from, Tick to) const {
  std::vector<TickRange> out;
  Tick cursor = from;
  for (std::size_t i = first_reaching(from); i < runs_.size() && runs_[i].from <= to;
       ++i) {
    const Tick rfrom = std::max(from, runs_[i].from);
    const Tick rto = std::min(to, runs_[i].to);
    if (rfrom > cursor) out.push_back({cursor, rfrom - 1});
    cursor = rto + 1;
  }
  if (cursor <= to) out.push_back({cursor, to});
  return out;
}

inline Tick IntervalSet::total_length() const {
  Tick n = 0;
  for (const TickRange& r : runs_) n += r.length();
  return n;
}

inline Tick IntervalSet::min() const {
  GRYPHON_CHECK(!runs_.empty());
  return runs_.front().from;
}

inline Tick IntervalSet::max() const {
  GRYPHON_CHECK(!runs_.empty());
  return runs_.back().to;
}

inline std::ostream& operator<<(std::ostream& os, const IntervalSet& s) {
  os << '{';
  bool first = true;
  for (const TickRange& r : s.runs_) {
    if (!first) os << ", ";
    os << '[' << r.from << ',' << r.to << ']';
    first = false;
  }
  return os << '}';
}

}  // namespace gryphon
