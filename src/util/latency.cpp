#include "util/latency.hpp"

#include <cinttypes>
#include <cstdio>

#include "util/metrics.hpp"

namespace gryphon {

const char* latency_stage_name(LatencyStage s) {
  switch (s) {
    case LatencyStage::kPublishToPersist: return "publish_to_persist";
    case LatencyStage::kPersistToMatch: return "persist_to_match";
    case LatencyStage::kMatchToPfsLog: return "match_to_pfs_log";
    case LatencyStage::kPfsLogToDeliver: return "pfs_log_to_deliver";
    case LatencyStage::kDeliverToAck: return "deliver_to_ack";
    case LatencyStage::kEndToEnd: return "end_to_end";
    case LatencyStage::kCatchupWait: return "catchup_wait";
  }
  return "?";
}

LatencyRecorder::LatencyRecorder() : LatencyRecorder(Options()) {}

LatencyRecorder::LatencyRecorder(Options options) : options_(options) {
  stages_.reserve(kNumLatencyStages);
  for (std::size_t i = 0; i < kNumLatencyStages; ++i) {
    stages_.emplace_back(options_.hist_min_ms, options_.hist_max_ms,
                         options_.buckets_per_decade);
  }
}

template <typename Fn>
void LatencyRecorder::for_range(std::int64_t pubend, Tick from, Tick to,
                                Fn&& fn) {
  auto it = open_.lower_bound({pubend, from});
  const auto end = open_.upper_bound({pubend, to});
  while (it != end) {
    // fn may ask for the key to be retired; advance first so erase is safe.
    auto cur = it++;
    if (fn(cur->second)) open_.erase(cur);
  }
}

void LatencyRecorder::on_trace(std::uint32_t /*node_id*/,
                               const TraceRecord& rec) {
  switch (rec.milestone) {
    case TraceMilestone::kPublish: {
      auto [it, inserted] = open_.try_emplace({rec.pubend, rec.tick});
      if (inserted) {
        if (open_.size() > options_.max_open_keys) {
          // Evict the oldest key (smallest (pubend, tick)) so an ack-less
          // or gap-less workload cannot grow the table without bound.
          open_.erase(open_.begin());
          ++dropped_;
        }
        it->second.publish = rec.at;
      }
      break;
    }
    case TraceMilestone::kPersist: {
      auto it = open_.find({rec.pubend, rec.tick});
      if (it == open_.end()) { ++orphans_; break; }
      if (it->second.persist >= 0) break;  // latch once; recovery re-persists
      it->second.persist = rec.at;
      if (it->second.publish >= 0) {
        add_sample(LatencyStage::kPublishToPersist, it->second.publish, rec.at);
      }
      break;
    }
    case TraceMilestone::kMatch: {
      auto it = open_.find({rec.pubend, rec.tick});
      if (it == open_.end()) { ++orphans_; break; }
      if (it->second.match >= 0) break;  // first SHB to match wins
      it->second.match = rec.at;
      if (it->second.persist >= 0) {
        add_sample(LatencyStage::kPersistToMatch, it->second.persist, rec.at);
      }
      break;
    }
    case TraceMilestone::kPfsLog: {
      for_range(rec.pubend, rec.tick, rec.tick2, [&](OpenKey& k) {
        if (k.pfs_log < 0) {
          k.pfs_log = rec.at;
          if (k.match >= 0) {
            add_sample(LatencyStage::kMatchToPfsLog, k.match, rec.at);
          }
        }
        return false;
      });
      break;
    }
    case TraceMilestone::kDeliverConstream:
    case TraceMilestone::kDeliverCatchup: {
      auto it = open_.find({rec.pubend, rec.tick});
      if (it == open_.end()) { ++orphans_; break; }
      if (it->second.deliver >= 0) break;  // first subscriber delivery wins
      it->second.deliver = rec.at;
      // Under imprecise-PFS batching the log write can land after delivery;
      // a key delivered with no pfs_log yet simply contributes no
      // pfs_log_to_deliver sample (end_to_end still covers it).
      if (it->second.pfs_log >= 0) {
        add_sample(LatencyStage::kPfsLogToDeliver, it->second.pfs_log, rec.at);
      }
      if (it->second.publish >= 0) {
        add_sample(LatencyStage::kEndToEnd, it->second.publish, rec.at);
      }
      break;
    }
    case TraceMilestone::kAck: {
      for_range(rec.pubend, rec.tick, rec.tick2, [&](OpenKey& k) {
        if (!k.acked && k.deliver >= 0) {
          k.acked = true;
          add_sample(LatencyStage::kDeliverToAck, k.deliver, rec.at);
        }
        return false;  // keep open: other subscribers may still deliver
      });
      break;
    }
    case TraceMilestone::kGap: {
      for_range(rec.pubend, rec.tick, rec.tick2, [&](OpenKey& k) {
        // Gap instead of delivery: retire without an end-to-end sample.
        if (k.deliver < 0) ++gap_terminated_;
        return true;
      });
      break;
    }
    case TraceMilestone::kReleaseToL: {
      // Storage released; no further milestones for these ticks are
      // meaningful, so retire whatever is still open in the range.
      for_range(rec.pubend, rec.tick, rec.tick2, [](OpenKey&) { return true; });
      break;
    }
    case TraceMilestone::kCatchupQueued: {
      auto [it, inserted] = waits_.try_emplace({rec.detail, rec.pubend}, rec.at);
      (void)it;
      if (inserted && waits_.size() > options_.max_open_waits) {
        waits_.erase(waits_.begin());
        ++dropped_;
      }
      break;
    }
    case TraceMilestone::kCatchupAdmitted: {
      // Admission without a preceding queue record means the stream never
      // waited — by design that contributes no (zero) wait sample.
      auto it = waits_.find({rec.detail, rec.pubend});
      if (it != waits_.end()) {
        add_sample(LatencyStage::kCatchupWait, it->second, rec.at);
        waits_.erase(it);
      }
      break;
    }
    case TraceMilestone::kCatchupCaughtUp:
      break;  // switchover milestone; no stage boundary
  }
}

void LatencyRecorder::append_json(std::string& out, const std::string& indent,
                                  bool pretty) const {
  const char* nl = pretty ? "\n" : "";
  const std::string in1 = pretty ? indent + "  " : "";
  const std::string in2 = pretty ? indent + "    " : "";
  const char* sp = pretty ? " " : "";

  out += "{";
  out += nl;
  out += in1;
  out += "\"stages\":";
  out += sp;
  out += "{";
  out += nl;
  bool first = true;
  for (std::size_t i = 0; i < kNumLatencyStages; ++i) {
    const Histogram& h = stages_[i];
    if (!first) {
      out += ",";
      out += nl;
    }
    first = false;
    out += in2;
    out += '"';
    out += latency_stage_name(static_cast<LatencyStage>(i));
    out += "\":";
    out += sp;
    out += "{\"count\":";
    out += sp;
    append_json_number(out, static_cast<double>(h.count()));
    out += ",";
    out += sp;
    out += "\"p50\":";
    out += sp;
    append_json_number(out, h.percentile(50.0));
    out += ",";
    out += sp;
    out += "\"p90\":";
    out += sp;
    append_json_number(out, h.percentile(90.0));
    out += ",";
    out += sp;
    out += "\"p99\":";
    out += sp;
    append_json_number(out, h.percentile(99.0));
    out += ",";
    out += sp;
    out += "\"p999\":";
    out += sp;
    append_json_number(out, h.percentile(99.9));
    out += "}";
  }
  out += nl;
  out += in1;
  out += "},";
  out += nl;
  out += in1;
  out += "\"orphan_transitions\":";
  out += sp;
  append_json_number(out, static_cast<double>(orphans_));
  out += ",";
  out += nl;
  out += in1;
  out += "\"dropped_keys\":";
  out += sp;
  append_json_number(out, static_cast<double>(dropped_));
  out += ",";
  out += nl;
  out += in1;
  out += "\"gap_terminated_keys\":";
  out += sp;
  append_json_number(out, static_cast<double>(gap_terminated_));
  out += ",";
  out += nl;
  out += in1;
  out += "\"open_keys\":";
  out += sp;
  append_json_number(out, static_cast<double>(open_.size()));
  out += nl;
  if (pretty) out += indent;
  out += "}";
}

void LatencyRecorder::clear() {
  for (auto& h : stages_) h = Histogram(options_.hist_min_ms, options_.hist_max_ms,
                                        options_.buckets_per_decade);
  open_.clear();
  waits_.clear();
  orphans_ = 0;
  dropped_ = 0;
  gap_terminated_ = 0;
}

}  // namespace gryphon
