// Bounded recycling pool of byte buffers — the allocation backbone of the
// hot encode paths (wire/codec_transport arenas, mirroring the LogVolume
// record-buffer pool from the substrate PR).
//
// acquire() hands out an empty vector with retained capacity when the free
// list has one, and falls back to a fresh heap allocation when it is empty
// (exhaustion is never an error — just an allocation). release() returns a
// buffer for reuse unless the pool is already full or the buffer grew past
// the retain bound, in which case the buffer is simply freed: the pool's
// steady-state footprint stays <= max_buffers * max_retained_bytes.
//
// Shared ownership matters: in-flight FrameArenas (sim/message.hpp) return
// their buffers on destruction, which can happen after the transport that
// acquired them is gone, so holders keep the pool alive via shared_ptr.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace gryphon {

class BufferPool {
 public:
  struct Options {
    /// Free-list bound: buffers returned beyond this are freed.
    std::size_t max_buffers = 8;
    /// Buffers that grew past this are not retained (keeps one pathological
    /// message from pinning a giant allocation forever).
    std::size_t max_retained_bytes = 1u << 20;
    /// Capacity reserved into freshly allocated buffers, so the first use
    /// of a buffer does not grow it byte by byte.
    std::size_t initial_bytes = 64 * 1024;
  };

  BufferPool() = default;
  explicit BufferPool(const Options& options) : options_(options) {}
  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// An empty buffer: recycled capacity on a pool hit, a fresh reserve on a
  /// miss (pool exhausted / cold).
  [[nodiscard]] std::vector<std::byte> acquire() {
    ++acquires_;
    if (!free_.empty()) {
      ++pool_hits_;
      std::vector<std::byte> buf = std::move(free_.back());
      free_.pop_back();
      buf.clear();
      return buf;
    }
    std::vector<std::byte> buf;
    buf.reserve(options_.initial_bytes);
    return buf;
  }

  /// Returns a buffer for reuse; frees it when the pool is full or the
  /// buffer outgrew the retain bound.
  void release(std::vector<std::byte>&& buf) {
    if (free_.size() >= options_.max_buffers ||
        buf.capacity() > options_.max_retained_bytes) {
      ++releases_dropped_;
      return;  // freed by the destructor — exhaustion degrades, never breaks
    }
    free_.push_back(std::move(buf));
  }

  [[nodiscard]] std::size_t free_buffers() const { return free_.size(); }
  [[nodiscard]] std::uint64_t acquires() const { return acquires_; }
  [[nodiscard]] std::uint64_t pool_hits() const { return pool_hits_; }
  [[nodiscard]] std::uint64_t heap_fallbacks() const {
    return acquires_ - pool_hits_;
  }
  [[nodiscard]] std::uint64_t releases_dropped() const { return releases_dropped_; }

 private:
  Options options_;  // default-constructed => the Options{} defaults
  std::vector<std::vector<std::byte>> free_;
  std::uint64_t acquires_ = 0;
  std::uint64_t pool_hits_ = 0;
  std::uint64_t releases_dropped_ = 0;
};

using BufferPoolPtr = std::shared_ptr<BufferPool>;

}  // namespace gryphon
