#include "util/metrics.hpp"

#include <algorithm>
#include <cstdio>

namespace gryphon {

MetricsRegistry::Probe& MetricsRegistry::Probe::operator=(Probe&& o) noexcept {
  if (this != &o) {
    release();
    registry_ = o.registry_;
    token_ = o.token_;
    o.registry_ = nullptr;
  }
  return *this;
}

void MetricsRegistry::Probe::release() {
  if (registry_ == nullptr) return;
  auto& probes = registry_->probes_;
  probes.erase(std::remove_if(probes.begin(), probes.end(),
                              [this](const ProbeEntry& e) { return e.token == token_; }),
               probes.end());
  registry_ = nullptr;
}

MetricsRegistry::Counter* MetricsRegistry::counter(std::string_view name) {
  if (auto it = counter_index_.find(name); it != counter_index_.end()) {
    return &counters_[it->second];
  }
  counters_.emplace_back();
  counter_index_.emplace(std::string(name), counters_.size() - 1);
  return &counters_.back();
}

MetricsRegistry::Gauge* MetricsRegistry::gauge(std::string_view name) {
  if (auto it = gauge_index_.find(name); it != gauge_index_.end()) {
    return &gauges_[it->second];
  }
  gauges_.emplace_back();
  gauge_index_.emplace(std::string(name), gauges_.size() - 1);
  return &gauges_.back();
}

Histogram* MetricsRegistry::histogram(std::string_view name, double min_value,
                                      double max_value, int buckets_per_decade) {
  if (auto it = histogram_index_.find(name); it != histogram_index_.end()) {
    return &histograms_[it->second];
  }
  histograms_.emplace_back(min_value, max_value, buckets_per_decade);
  histogram_index_.emplace(std::string(name), histograms_.size() - 1);
  return &histograms_.back();
}

MetricsRegistry::Probe MetricsRegistry::probe(std::string_view gauge_name,
                                              std::function<double()> fn) {
  ProbeEntry e;
  e.token = next_token_++;
  e.target = gauge(gauge_name);
  e.fn = std::move(fn);
  probes_.push_back(std::move(e));
  return Probe(this, probes_.back().token);
}

void MetricsRegistry::refresh_probes() {
  for (ProbeEntry& e : probes_) e.target->set(e.fn());
}

void MetricsRegistry::for_each_counter(
    const std::function<void(const std::string&, std::uint64_t)>& f) const {
  for (const auto& [name, idx] : counter_index_) f(name, counters_[idx].get());
}

void MetricsRegistry::for_each_gauge(
    const std::function<void(const std::string&, double)>& f) const {
  for (const auto& [name, idx] : gauge_index_) f(name, gauges_[idx].get());
}

void append_json_number(std::string& out, double v) {
  char buf[48];
  // Integral values (the common case: counters mirrored into gauges) print
  // without a fractional part so the JSON is stable and diffable.
  if (v == static_cast<double>(static_cast<long long>(v)) && v > -1e15 && v < 1e15) {
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof buf, "%.6g", v);
  }
  out += buf;
}

void MetricsRegistry::append_json(std::string& out, const std::string& indent,
                                  bool pretty) {
  refresh_probes();
  // pretty=true reproduces the historical --metrics-json layout byte for
  // byte; pretty=false strips all whitespace for one-line NDJSON scrapes.
  const std::string in2 = pretty ? indent + "  " : "";
  const std::string in3 = pretty ? in2 + "  " : "";
  const char* nl = pretty ? "\n" : "";
  const char* sp = pretty ? " " : "";

  out += "{";
  out += nl;

  out += in2 + "\"counters\":" + sp + "{";
  bool first = true;
  for (const auto& [name, idx] : counter_index_) {
    out += first ? nl : (std::string(",") + nl);
    first = false;
    out += in3 + "\"" + name + "\":" + sp;
    append_json_number(out, static_cast<double>(counters_[idx].get()));
  }
  out += first ? std::string("},") + nl : nl + in2 + "}," + nl;

  out += in2 + "\"gauges\":" + sp + "{";
  first = true;
  for (const auto& [name, idx] : gauge_index_) {
    out += first ? nl : (std::string(",") + nl);
    first = false;
    out += in3 + "\"" + name + "\":" + sp;
    append_json_number(out, gauges_[idx].get());
  }
  out += first ? std::string("},") + nl : nl + in2 + "}," + nl;

  out += in2 + "\"histograms\":" + sp + "{";
  first = true;
  for (const auto& [name, idx] : histogram_index_) {
    out += first ? nl : (std::string(",") + nl);
    first = false;
    const Histogram& h = histograms_[idx];
    out += in3 + "\"" + name + "\":" + sp + "{\"count\":" + sp;
    append_json_number(out, static_cast<double>(h.count()));
    for (const auto& [label, p] :
         {std::pair<const char*, double>{"p50", 50.0}, {"p95", 95.0}, {"p99", 99.0}}) {
      out += ",";
      out += sp;
      out += "\"";
      out += label;
      out += "\":";
      out += sp;
      append_json_number(out, h.count() > 0 ? h.percentile(p) : 0.0);
    }
    out += "}";
  }
  out += first ? std::string("}") + nl : nl + in2 + "}" + nl;

  if (pretty) out += indent;
  out += "}";
}

}  // namespace gryphon
