// Metrics primitives used by tests and the benchmark harness: time series
// (the paper's figures are all time-series or bar charts derived from them),
// windowed rate meters, and summary statistics / histograms.
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "util/assert.hpp"
#include "util/time.hpp"

namespace gryphon {

/// Running summary statistics (count/mean/min/max/stddev) without storing
/// samples. Welford's algorithm for numerical stability.
class Summary {
 public:
  void add(double x) {
    ++n_;
    const double d = x - mean_;
    mean_ += d / static_cast<double>(n_);
    m2_ += d * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  [[nodiscard]] std::uint64_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double min() const { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ ? max_ : 0.0; }
  [[nodiscard]] double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const;

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// A (sim-time, value) series, e.g. latestDelivered(p) over time (Fig. 6/7).
class TimeSeries {
 public:
  struct Point {
    SimTime time;
    double value;
  };

  explicit TimeSeries(std::string name) : name_(std::move(name)) {}

  void record(SimTime t, double v) { points_.push_back({t, v}); }

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const std::vector<Point>& points() const { return points_; }
  [[nodiscard]] bool empty() const { return points_.empty(); }

  /// Resamples the series onto fixed windows and reports the per-second rate
  /// of change of the value in each window (used to plot "rate of advance of
  /// latestDelivered in tick-ms per second", Fig. 6).
  ///
  /// Degenerate inputs: with fewer than two points there is no measurable
  /// change, so the result is empty (not a zero-rate window) — callers must
  /// not assume at least one window exists. Windows are anchored at the
  /// first point's time; a trailing partial window is dropped.
  [[nodiscard]] std::vector<Point> rate_of_change(SimDuration window) const;

  /// Average value of the series in [from, to) by step interpolation
  /// (requires from < to).
  ///
  /// Degenerate inputs: an empty series averages to 0.0. A series whose
  /// first point lies after `from` is extrapolated backwards at that first
  /// value (a sampler's first poll defines the value "since the start"), so
  /// a single-point series averages to exactly that point's value over any
  /// window.
  [[nodiscard]] double average_over(SimTime from, SimTime to) const;

 private:
  std::string name_;
  std::vector<Point> points_;
};

/// Counts events into fixed windows of sim time and reports per-second rates
/// (used for "aggregate events/s at each client machine", Fig. 8).
class RateMeter {
 public:
  explicit RateMeter(SimDuration window = sec(1)) : window_(window) {
    GRYPHON_CHECK(window_ > 0);
  }

  void record(SimTime t, std::uint64_t n = 1);

  struct Window {
    SimTime start;
    double per_second;
  };

  /// Completed windows (the still-open trailing window is excluded).
  [[nodiscard]] std::vector<Window> windows() const;

  [[nodiscard]] std::uint64_t total() const { return total_; }

 private:
  SimDuration window_;
  std::vector<std::uint64_t> counts_;
  SimTime last_time_ = 0;
  std::uint64_t total_ = 0;
};

/// Fixed-bucket histogram over a positive range, log-spaced, for latency
/// distributions.
class Histogram {
 public:
  Histogram(double min_value, double max_value, int buckets_per_decade = 10);

  void add(double v);

  [[nodiscard]] std::uint64_t count() const { return count_; }
  /// p in [0, 100]. Returns a bucket upper bound: p=0 reports the first
  /// non-empty bucket, p=100 the last; values at or below min_value clamp
  /// into the first bucket and values above max_value into the overflow
  /// bucket. An empty histogram reports 0.0 for every p.
  [[nodiscard]] double percentile(double p) const;
  /// Raw bucket counts (log-spaced; index 0 is the <= min_value bucket, the
  /// last index the overflow bucket). Exposed so determinism tests can
  /// assert bit-identical distributions, not just matching percentiles.
  [[nodiscard]] const std::vector<std::uint64_t>& buckets() const { return buckets_; }

 private:
  [[nodiscard]] std::size_t bucket_of(double v) const;
  [[nodiscard]] double bucket_upper(std::size_t i) const;

  double min_value_;
  double log_min_;
  double log_step_;
  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
};

}  // namespace gryphon
