// Deterministic pseudo-random number generation.
//
// Experiments must be bit-for-bit reproducible across runs and platforms, so
// we carry our own small generator (splitmix64 seeding a xoshiro256**)
// instead of relying on unspecified standard-library distributions.
#pragma once

#include <cstdint>

#include "util/assert.hpp"

namespace gryphon {

/// xoshiro256** seeded via splitmix64. Deterministic across platforms.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    std::uint64_t x = seed;
    for (auto& word : s_) {
      // splitmix64 step
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound) {
    GRYPHON_CHECK(bound > 0);
    // Lemire's multiply-shift rejection method, bias-free.
    std::uint64_t x = next_u64();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = -bound % bound;
      while (lo < threshold) {
        x = next_u64();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t next_in(std::int64_t lo, std::int64_t hi) {
    GRYPHON_CHECK(lo <= hi);
    return lo + static_cast<std::int64_t>(
                    next_below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// True with probability p (clamped to [0,1]).
  bool next_bool(double p) { return next_double() < p; }

  /// Exponentially distributed value with the given mean (> 0).
  double next_exponential(double mean);

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4] = {};
};

}  // namespace gryphon
