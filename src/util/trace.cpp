#include "util/trace.hpp"

#include <algorithm>
#include <array>
#include <cinttypes>

#include "util/assert.hpp"

namespace gryphon {

const char* trace_milestone_name(TraceMilestone m) {
  switch (m) {
    case TraceMilestone::kPublish: return "publish";
    case TraceMilestone::kPersist: return "persist";
    case TraceMilestone::kMatch: return "match";
    case TraceMilestone::kPfsLog: return "pfs-log";
    case TraceMilestone::kDeliverConstream: return "deliver-constream";
    case TraceMilestone::kDeliverCatchup: return "deliver-catchup";
    case TraceMilestone::kAck: return "ack";
    case TraceMilestone::kReleaseToL: return "release-to-L";
    case TraceMilestone::kGap: return "gap";
    case TraceMilestone::kCatchupQueued: return "catchup-queued";
    case TraceMilestone::kCatchupAdmitted: return "catchup-admitted";
    case TraceMilestone::kCatchupCaughtUp: return "catchup-caught-up";
  }
  return "?";
}

void Tracer::set_sample_every(std::uint32_t n) {
  GRYPHON_CHECK(n >= 1);
  std::uint64_t pow2 = 1;
  while (pow2 < n) pow2 <<= 1;
  mask_ = pow2 - 1;
}

void Tracer::set_capacity(std::size_t capacity) {
  GRYPHON_CHECK(capacity >= 1);
  ring_.assign(capacity, TraceRecord{});
  next_ = 0;
  total_ = 0;
}

std::vector<TraceRecord> Tracer::in_order() const {
  std::vector<TraceRecord> out;
  const std::size_t n = std::min<std::uint64_t>(total_, ring_.size());
  out.reserve(n);
  // Oldest record sits at next_ once the ring has wrapped, at 0 before.
  const std::size_t start = total_ > ring_.size() ? next_ : 0;
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(ring_[(start + i) % ring_.size()]);
  }
  return out;
}

void Tracer::clear() {
  next_ = 0;
  total_ = 0;
}

std::string format_trace_record(const TraceRecord& r, const std::string& node) {
  char buf[192];
  if (r.tick2 != r.tick) {
    std::snprintf(buf, sizeof buf, "t=%10.6fs  %-12s %" PRId64 ":%" PRId64 "..%" PRId64
                  "  %-17s",
                  to_seconds(r.at), node.c_str(), r.pubend, r.tick, r.tick2,
                  trace_milestone_name(r.milestone));
  } else {
    std::snprintf(buf, sizeof buf, "t=%10.6fs  %-12s %" PRId64 ":%-8" PRId64 "  %-17s",
                  to_seconds(r.at), node.c_str(), r.pubend, r.tick,
                  trace_milestone_name(r.milestone));
  }
  std::string out = buf;
  if (r.detail != 0) {
    std::snprintf(buf, sizeof buf, " sub=%u", r.detail);
    out += buf;
  }
  return out;
}

std::string merged_flight_record(const std::vector<const Tracer*>& tracers,
                                 const FlightRecorderFocus* focus) {
  struct Entry {
    TraceRecord rec;
    std::size_t node_index;  // position in `tracers`: deterministic tiebreak
    std::uint64_t seq;       // ring order within the node; 0 = wrap marker
    std::uint64_t lost = 0;  // marker only: records evicted by wraparound
  };
  std::vector<Entry> all;
  std::uint64_t total_lost = 0;
  std::size_t record_count = 0;
  for (std::size_t n = 0; n < tracers.size(); ++n) {
    const auto recs = tracers[n]->in_order();
    record_count += recs.size();
    // A wrapped ring starts mid-history: mark the truncation point at the
    // oldest surviving record so the merged timeline says "older records
    // lost here" instead of silently reading like this node went quiet.
    if (tracers[n]->wrapped() && !recs.empty()) {
      total_lost += tracers[n]->dropped_records();
      all.push_back({recs.front(), n, /*seq=*/0, tracers[n]->dropped_records()});
    }
    for (std::size_t i = 0; i < recs.size(); ++i) {
      all.push_back({recs[i], n, i + 1});
    }
  }
  std::sort(all.begin(), all.end(), [](const Entry& a, const Entry& b) {
    if (a.rec.at != b.rec.at) return a.rec.at < b.rec.at;
    if (a.node_index != b.node_index) return a.node_index < b.node_index;
    return a.seq < b.seq;
  });

  std::string out = "=== flight recorder: merged tick trace (" +
                    std::to_string(record_count) + " records";
  if (total_lost > 0) {
    out += ", " + std::to_string(total_lost) + " lost to ring wraparound";
  }
  if (!tracers.empty()) {
    out += ", sample_every=" + std::to_string(tracers.front()->sample_every());
  }
  out += ") ===\n";
  for (const Entry& e : all) {
    if (e.seq == 0) {
      char buf[160];
      std::snprintf(buf, sizeof buf,
                    "t=%10.6fs  %-12s --- ring wrapped: %" PRIu64
                    " older records lost ---",
                    to_seconds(e.rec.at), tracers[e.node_index]->node().c_str(),
                    e.lost);
      out += buf;
      out += '\n';
      continue;
    }
    out += format_trace_record(e.rec, tracers[e.node_index]->node());
    out += '\n';
  }

  if (focus != nullptr) {
    char buf[160];
    std::snprintf(buf, sizeof buf,
                  "--- milestone checklist for pubend %" PRId64 " tick %" PRId64 " ---\n",
                  focus->pubend, focus->tick);
    out += buf;
    if (!tracers.empty() && !tracers.front()->sampled(focus->tick)) {
      std::snprintf(buf, sizeof buf,
                    "(tick %" PRId64 " not in trace sample; sample_every=%u — rerun "
                    "with sample_every=1 for full coverage)\n",
                    focus->tick, tracers.front()->sample_every());
      out += buf;
    }
    std::array<const Entry*, kNumTraceMilestones> first{};
    for (const Entry& e : all) {
      if (e.seq == 0) continue;  // wrap marker, not a milestone
      if (e.rec.pubend != focus->pubend) continue;
      if (focus->tick < e.rec.tick || focus->tick > e.rec.tick2) continue;
      auto& slot = first[static_cast<std::size_t>(e.rec.milestone)];
      if (slot == nullptr) slot = &e;
    }
    for (std::size_t m = 0; m < kNumTraceMilestones; ++m) {
      const char* name = trace_milestone_name(static_cast<TraceMilestone>(m));
      if (first[m] != nullptr) {
        std::snprintf(buf, sizeof buf, "  %-17s PASSED   t=%10.6fs on %s\n", name,
                      to_seconds(first[m]->rec.at),
                      tracers[first[m]->node_index]->node().c_str());
      } else {
        std::snprintf(buf, sizeof buf, "  %-17s NOT REACHED\n", name);
      }
      out += buf;
    }
  }
  return out;
}

void write_flight_record(std::FILE* out, const std::vector<const Tracer*>& tracers,
                         const FlightRecorderFocus* focus) {
  const std::string dump = merged_flight_record(tracers, focus);
  std::fwrite(dump.data(), 1, dump.size(), out);
}

}  // namespace gryphon
