// Lightweight checked-invariant support used throughout the library.
//
// GRYPHON_CHECK is always on (release builds included): protocol invariants
// in a messaging system are cheap relative to I/O and catching a violated
// invariant at the point of corruption is worth far more than the branch.
// GRYPHON_DCHECK compiles away in NDEBUG builds and is meant for hot paths.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <string>

namespace gryphon {

/// Thrown when a checked invariant fails. Tests assert on this type so
/// deliberate misuse of an API is observable rather than UB.
class InvariantViolation : public std::logic_error {
 public:
  explicit InvariantViolation(const std::string& what) : std::logic_error(what) {}
};

namespace detail {

[[noreturn]] inline void check_failed(const char* expr, const char* file, int line,
                                      const std::string& msg) {
  std::ostringstream os;
  os << "invariant violated: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw InvariantViolation(os.str());
}

}  // namespace detail
}  // namespace gryphon

#define GRYPHON_CHECK(expr)                                                       \
  do {                                                                            \
    if (!(expr)) ::gryphon::detail::check_failed(#expr, __FILE__, __LINE__, {});  \
  } while (false)

#define GRYPHON_CHECK_MSG(expr, msg)                                            \
  do {                                                                          \
    if (!(expr)) {                                                              \
      std::ostringstream os_;                                                   \
      os_ << msg; /* NOLINT */                                                  \
      ::gryphon::detail::check_failed(#expr, __FILE__, __LINE__, os_.str());    \
    }                                                                           \
  } while (false)

#ifdef NDEBUG
#define GRYPHON_DCHECK(expr) \
  do {                       \
  } while (false)
#else
#define GRYPHON_DCHECK(expr) GRYPHON_CHECK(expr)
#endif
