// Strongly-typed integer identifiers.
//
// The protocols in this library juggle several id spaces (brokers, pubends,
// subscribers, log streams...). A raw uint32_t invites silently swapping a
// subscriber id for a pubend id; a tagged wrapper makes that a compile error
// while staying a trivially-copyable register-sized value.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <ostream>

namespace gryphon {

/// A strongly typed id. `Tag` is an empty struct naming the id space.
template <typename Tag>
class Id {
 public:
  using underlying_type = std::uint32_t;

  constexpr Id() = default;
  constexpr explicit Id(underlying_type v) : value_(v) {}

  [[nodiscard]] constexpr underlying_type value() const { return value_; }
  friend constexpr auto operator<=>(Id, Id) = default;

  friend std::ostream& operator<<(std::ostream& os, Id id) { return os << id.value_; }

 private:
  underlying_type value_ = 0;
};

struct BrokerTag {};
struct PubendTag {};
struct SubscriberTag {};
struct PublisherTag {};
struct LinkTag {};

using BrokerId = Id<BrokerTag>;
using PubendId = Id<PubendTag>;
using SubscriberId = Id<SubscriberTag>;
using PublisherId = Id<PublisherTag>;

}  // namespace gryphon

namespace std {
template <typename Tag>
struct hash<gryphon::Id<Tag>> {
  size_t operator()(gryphon::Id<Tag> id) const noexcept {
    return std::hash<typename gryphon::Id<Tag>::underlying_type>{}(id.value());
  }
};
}  // namespace std
