// Causal tick tracing + flight recorder.
//
// An event's journey through the broker graph is keyed by its (pubend, tick)
// identity (the paper's knowledge/curiosity streams are all phrased over
// ticks), so the trace layer records protocol *milestones* against that key:
// publish accept, durable persist, match, PFS log, constream/catchup
// delivery, ack, release-to-L, gap. Each record is stamped with sim time and
// implicitly with the node (one Tracer per NodeResources).
//
// Sampling: milestones fire on every event on the hot path, so recording is
// gated by a deterministic power-of-two tick mask — tick T is traced iff
// (T & (sample_every-1)) == 0. Same seed + same sample rate => bit-identical
// trace streams (no RNG involved), and the untraced-path cost is one AND and
// one compare. sample_every == 1 traces everything (chaos runs want this).
//
// Flight recorder: each Tracer is a fixed-size ring (preallocated, no
// steady-state allocation). The Tracer lives in NodeResources, so the ring
// survives broker process crashes — after a violation the harness merges all
// node rings into one time-ordered narrative and, given a focus
// (pubend, tick), prints which milestones that tick did and did not pass.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "util/time.hpp"

namespace gryphon {

enum class TraceMilestone : std::uint8_t {
  kPublish,          // pubend accepted the publish and assigned the tick
  kPersist,          // event durable at the PHB, announced into the stream
  kMatch,            // SHB constream matched the event against hosted subs
  kPfsLog,           // filtering record handed to the PFS log
  kDeliverConstream, // live delivery to a subscriber (detail = subscriber)
  kDeliverCatchup,   // catchup-stream delivery (detail = subscriber)
  kAck,              // subscriber CT ack consumed the tick (detail = subscriber)
  kReleaseToL,       // early release forced the range to L, log chopped
  kGap,              // gap notification sent to a subscriber (detail = subscriber)
  kCatchupQueued,    // catchup stream waiting on an admission slot (detail = subscriber)
  kCatchupAdmitted,  // admission slot granted, stream activated (detail = subscriber)
  kCatchupCaughtUp,  // switchover back to the constream (detail = subscriber)
};
constexpr std::size_t kNumTraceMilestones = 12;

[[nodiscard]] const char* trace_milestone_name(TraceMilestone m);

struct TraceRecord {
  SimTime at = 0;
  std::int64_t pubend = 0;  // PubendId::value()
  Tick tick = 0;            // range [tick, tick2]; single-tick records have tick2 == tick
  Tick tick2 = 0;
  TraceMilestone milestone{};
  std::uint32_t detail = 0;  // subscriber id where applicable, else 0
};

/// Live consumer of accepted (post-sampling) trace records: the latency
/// recorder folds them into per-stage histograms, the trace exporter into a
/// Chrome trace-event file. `node_id` is whatever the installer passed to
/// Tracer::set_sink — the harness uses the node's position in topology
/// order. Records arrive in the exact order Tracer::push accepted them;
/// because sim time is monotone and tasks run one at a time, the stream
/// across all of one simulation's tracers is globally time-ordered and
/// deterministic. Sinks must not re-enter the tracer.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void on_trace(std::uint32_t node_id, const TraceRecord& rec) = 0;
};

/// Broadcasts each record to several sinks (the harness hangs the latency
/// recorder and the optional trace exporter off one fanout).
class TraceFanout final : public TraceSink {
 public:
  void add(TraceSink* sink) { sinks_.push_back(sink); }
  void on_trace(std::uint32_t node_id, const TraceRecord& rec) override {
    for (TraceSink* sink : sinks_) sink->on_trace(node_id, rec);
  }

 private:
  std::vector<TraceSink*> sinks_;
};

class Tracer {
 public:
  explicit Tracer(std::string node, std::size_t capacity = 4096,
                  std::uint32_t sample_every = 64)
      : node_(std::move(node)) {
    set_capacity(capacity);
    set_sample_every(sample_every);
  }
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Rounds up to a power of two; 1 => trace every tick.
  void set_sample_every(std::uint32_t n);
  [[nodiscard]] std::uint32_t sample_every() const { return mask_ + 1; }

  /// Resizes the ring (drops recorded history).
  void set_capacity(std::size_t capacity);

  /// Hot-path gate: is this tick in the deterministic sample?
  [[nodiscard]] bool sampled(Tick t) const {
    return (static_cast<std::uint64_t>(t) & mask_) == 0;
  }
  /// Range gate: does [from, to] contain any sampled tick?
  [[nodiscard]] bool sampled_range(Tick from, Tick to) const {
    const auto f = static_cast<std::uint64_t>(from);
    return ((f + mask_) & ~static_cast<std::uint64_t>(mask_)) <=
           static_cast<std::uint64_t>(to);
  }

  /// Records a single-tick milestone if sampled. `now` is the caller's sim
  /// clock (the tracer deliberately holds no simulator reference).
  void record(SimTime now, std::int64_t pubend, Tick tick, TraceMilestone m,
              std::uint32_t detail = 0) {
    if (!sampled(tick)) return;
    push({now, pubend, tick, tick, m, detail});
  }

  /// Records a range milestone (release-to-L, gap) if any tick is sampled.
  void record_range(SimTime now, std::int64_t pubend, Tick from, Tick to,
                    TraceMilestone m, std::uint32_t detail = 0) {
    if (!sampled_range(from, to)) return;
    push({now, pubend, from, to, m, detail});
  }

  /// Installs a live record consumer (nullptr detaches). `node_id` tags this
  /// tracer's records at the sink. Costs one null-check per accepted record;
  /// the untraced hot path is unchanged.
  void set_sink(TraceSink* sink, std::uint32_t node_id) {
    sink_ = sink;
    sink_node_id_ = node_id;
  }

  [[nodiscard]] const std::string& node() const { return node_; }
  [[nodiscard]] std::uint64_t total_recorded() const { return total_; }
  /// Has the ring evicted records? (total recorded exceeds capacity)
  [[nodiscard]] bool wrapped() const { return total_ > ring_.size(); }
  /// Records evicted by wraparound (0 while the ring has not wrapped).
  [[nodiscard]] std::uint64_t dropped_records() const {
    return wrapped() ? total_ - ring_.size() : 0;
  }
  /// Ring contents, oldest first (preallocated scratch-free copy-out).
  [[nodiscard]] std::vector<TraceRecord> in_order() const;

  void clear();

 private:
  void push(const TraceRecord& r) {
    ring_[next_] = r;
    next_ = (next_ + 1) % ring_.size();
    ++total_;
    if (sink_ != nullptr) sink_->on_trace(sink_node_id_, r);
  }

  std::string node_;
  std::vector<TraceRecord> ring_;
  std::size_t next_ = 0;
  std::uint64_t total_ = 0;
  std::uint64_t mask_ = 63;
  TraceSink* sink_ = nullptr;
  std::uint32_t sink_node_id_ = 0;
};

/// One line per record: "t=...s node pubend:tick[..tick2] milestone [sub=N]".
[[nodiscard]] std::string format_trace_record(const TraceRecord& r,
                                              const std::string& node);

struct FlightRecorderFocus {
  std::int64_t pubend = 0;
  Tick tick = 0;
};

/// Merges the given rings into one time-ordered dump (ties broken by node
/// order then ring order, so output is deterministic). A ring that has
/// wrapped contributes a truncation marker ("ring wrapped: N older records
/// lost") at its oldest surviving record's time, so the merged narrative
/// never silently interleaves one node's complete history with another's
/// truncated one. With a focus, appends a milestone checklist for that
/// (pubend, tick): first time each milestone was reached, or "NOT REACHED".
/// Returns the dump; write_flight_record prints it.
[[nodiscard]] std::string merged_flight_record(
    const std::vector<const Tracer*>& tracers,
    const FlightRecorderFocus* focus = nullptr);

void write_flight_record(std::FILE* out, const std::vector<const Tracer*>& tracers,
                         const FlightRecorderFocus* focus = nullptr);

}  // namespace gryphon
