#include "sim/simulator.hpp"

namespace gryphon::sim {

TaskId Simulator::schedule_at(SimTime t, Task fn) {
  GRYPHON_CHECK_MSG(t >= now_, "scheduling into the past: " << t << " < " << now_);
  GRYPHON_CHECK(fn != nullptr);
  const TaskId id = next_seq_++;
  queue_.push(Entry{t, id, id});
  tasks_.emplace(id, std::move(fn));
  return id;
}

void Simulator::cancel(TaskId id) {
  if (id == kInvalidTask) return;
  if (tasks_.erase(id) > 0) cancelled_.insert(id);
}

bool Simulator::run_one() {
  while (!queue_.empty()) {
    Entry e = queue_.top();
    queue_.pop();
    if (cancelled_.erase(e.id) > 0) continue;  // lazily dropped
    auto it = tasks_.find(e.id);
    GRYPHON_CHECK(it != tasks_.end());
    Task fn = std::move(it->second);
    tasks_.erase(it);
    GRYPHON_DCHECK(e.time >= now_);
    now_ = e.time;
    ++executed_;
    fn();
    return true;
  }
  return false;
}

void Simulator::run_until(SimTime t) {
  GRYPHON_CHECK(t >= now_);
  while (!queue_.empty()) {
    // Peek past cancelled entries without executing.
    Entry e = queue_.top();
    if (cancelled_.erase(e.id) > 0) {
      queue_.pop();
      continue;
    }
    if (e.time > t) break;
    run_one();
  }
  now_ = t;
}

void Simulator::run_until_idle() {
  while (run_one()) {
  }
}

}  // namespace gryphon::sim
