#include "sim/simulator.hpp"

namespace gryphon::sim {

TaskId Simulator::schedule_at(SimTime t, Task fn) {
  GRYPHON_CHECK_MSG(t >= now_, "scheduling into the past: " << t << " < " << now_);
  GRYPHON_CHECK(fn != nullptr);
  std::uint32_t index;
  if (free_head_ != kNoFreeSlot) {
    index = free_head_;
    free_head_ = slots_[index].next_free;
  } else {
    GRYPHON_CHECK_MSG(slots_.size() < kNoFreeSlot, "task slab exhausted");
    slots_.emplace_back();
    index = static_cast<std::uint32_t>(slots_.size() - 1);
  }
  Slot& s = slots_[index];
  s.fn = std::move(fn);
  queue_.push(Entry{t, next_seq_++, index, s.gen});
  ++live_;
  return pack(s.gen, index);
}

void Simulator::cancel(TaskId id) {
  if (id == kInvalidTask) return;
  const auto index = static_cast<std::uint32_t>(id);
  const auto gen = static_cast<std::uint32_t>(id >> 32);
  if (index >= slots_.size() || slots_[index].gen != gen) return;  // already ran
  release_slot(index);  // the heap entry goes stale and is skipped when popped
  --live_;
}

bool Simulator::run_one() {
  while (!queue_.empty()) {
    const Entry e = queue_.top();
    queue_.pop();
    if (slots_[e.slot].gen != e.gen) continue;  // cancelled: lazily dropped
    Task fn = std::move(slots_[e.slot].fn);
    release_slot(e.slot);
    --live_;
    GRYPHON_DCHECK(e.time >= now_);
    now_ = e.time;
    ++executed_;
    fn();
    return true;
  }
  return false;
}

void Simulator::run_until(SimTime t) {
  GRYPHON_CHECK(t >= now_);
  while (!queue_.empty()) {
    // Peek past stale (cancelled) entries without executing.
    const Entry& e = queue_.top();
    if (slots_[e.slot].gen != e.gen) {
      queue_.pop();
      continue;
    }
    if (e.time > t) break;
    run_one();
  }
  now_ = t;
}

void Simulator::run_until_idle() {
  while (run_one()) {
  }
}

SimTime Simulator::next_due() {
  while (!queue_.empty()) {
    const Entry& e = queue_.top();
    if (slots_[e.slot].gen != e.gen) {
      queue_.pop();  // cancelled: lazily dropped
      continue;
    }
    return e.time;
  }
  return kNoTaskDue;
}

}  // namespace gryphon::sim
