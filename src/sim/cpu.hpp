// Per-broker CPU cost model.
//
// The paper's scalability results (Fig. 4) and CPU-idle plots (Fig. 8) are
// consequences of broker CPU saturation, so broker message processing runs
// through this model rather than executing for free. A Cpu is a fluid-flow
// multi-core server: work items queue FIFO and each item of cost `c` on `n`
// cores occupies the server for c/n microseconds. That approximation keeps
// per-item ordering (brokers are logically single event loops) while letting
// an F80-class 6-way machine process ~6x the work per second.
//
// inject_stall() models anything that blocks the whole process — the paper
// attributes the periodic dips in latestDelivered's advance rate (Fig. 6) to
// Java GC pauses, which we reproduce with a periodic stall injector.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/scheduler.hpp"
#include "util/assert.hpp"
#include "util/time.hpp"

namespace gryphon::sim {

class Cpu {
 public:
  using Task = SmallTask;

  Cpu(Scheduler& scheduler, std::string name, int cores = 1,
      SimDuration accounting_window = msec(500));

  /// Queues a work item. `fn` runs (at the earliest) when all previously
  /// queued work has finished plus this item's service time. A zero-cost item
  /// still serializes behind the queue. Templated so the caller's closure is
  /// stored directly in the scheduled task (one SmallTask, no re-wrapping).
  template <typename F>
  void execute(SimDuration cost, F&& fn) {
    const SimTime end = admit(cost);
    sim_.schedule_at(end, [this, gen = generation_, fn = std::forward<F>(fn)]() mutable {
      if (gen != generation_) return;  // cleared by a crash
      ++tasks_executed_;
      fn();
    });
  }

  /// Blocks the whole server for `d` (e.g. a GC pause).
  void inject_stall(SimDuration d);

  /// Drops all queued-but-unstarted work (crash). Busy accounting of already
  /// "executed" service time is retained.
  void clear();

  /// How far behind the server currently is (0 when idle).
  [[nodiscard]] SimDuration backlog() const;

  /// Fraction of [from, to) the server spent idle, in [0, 1].
  [[nodiscard]] double idle_fraction(SimTime from, SimTime to) const;

  /// Idle fraction per accounting window, for time-series plots.
  struct WindowIdle {
    SimTime start;
    double idle;
  };
  [[nodiscard]] std::vector<WindowIdle> idle_series() const;

  [[nodiscard]] std::uint64_t tasks_executed() const { return tasks_executed_; }
  [[nodiscard]] SimDuration total_busy() const { return total_busy_; }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] int cores() const { return cores_; }

 private:
  /// Books a work item of `cost` into the fluid-flow queue; returns its
  /// completion time.
  SimTime admit(SimDuration cost);

  /// Records that the server was busy over [start, end), spread across the
  /// accounting windows it overlaps.
  void account_busy(SimTime start, SimTime end);

  Scheduler& sim_;
  std::string name_;
  int cores_;
  SimDuration window_;
  SimTime busy_until_ = 0;
  std::uint64_t generation_ = 0;  // bumped by clear(); stale completions drop
  std::uint64_t tasks_executed_ = 0;
  SimDuration total_busy_ = 0;
  std::vector<SimDuration> busy_per_window_;
  SimTime horizon_ = 0;  // latest time busy accounting has reached
};

}  // namespace gryphon::sim
