// Deterministic discrete-event simulator.
//
// Everything in a reproduction run — broker protocol timers, link delivery,
// disk sync completion, CPU queueing, crash/restart schedules — executes as
// tasks on this single event loop. Determinism comes from (time, sequence)
// ordering: tasks scheduled for the same instant run in scheduling order.
//
// Task storage is a slab of reusable slots addressed by generation-tagged
// ids: a TaskId packs (generation << 32 | slot), the heap entries carry the
// same tag, and cancellation just releases the slot — a stale heap entry is
// recognized by its generation mismatch and skipped when popped (lazy
// deletion). Steady-state schedule/cancel/run touches no allocator at all:
// slots and heap storage are recycled, and the callable itself lives inline
// in the slot (SmallTask). pending_tasks() counts live slots, so it is exact
// even with cancelled entries still parked in the heap.
#pragma once

#include <cstdint>
#include <queue>
#include <tuple>
#include <vector>

#include "sim/scheduler.hpp"
#include "util/assert.hpp"
#include "util/small_task.hpp"
#include "util/time.hpp"

namespace gryphon::sim {

class Simulator : public Scheduler {
 public:
  using Task = SmallTask;

  Simulator() = default;

  /// Schedules `fn` to run at absolute sim time `t` (>= now).
  TaskId schedule_at(SimTime t, Task fn) override;

  /// Cancels a pending task. Cancelling an already-run or invalid id is a
  /// no-op (timers race with the events that obsolete them); a reused slot is
  /// protected by the generation tag.
  void cancel(TaskId id) override;

  /// Runs the next pending task, if any. Returns false when the queue is
  /// empty.
  bool run_one();

  /// Runs tasks until sim time would exceed `t`; leaves now() == t.
  void run_until(SimTime t);

  /// Runs until no tasks remain.
  void run_until_idle();

  /// Due time of the earliest pending task, or kNoTaskDue when the queue is
  /// empty. Pops stale (cancelled) heap heads as a side effect. The event
  /// loop uses this to size its poll timeout.
  static constexpr SimTime kNoTaskDue = -1;
  [[nodiscard]] SimTime next_due();

  /// Exact count of scheduled-but-not-run tasks (cancelled ones excluded,
  /// however many stale heap entries remain).
  [[nodiscard]] std::size_t pending_tasks() const { return live_; }
  [[nodiscard]] std::uint64_t executed_tasks() const { return executed_; }

 private:
  struct Entry {
    SimTime time;
    std::uint64_t seq;
    std::uint32_t slot;
    std::uint32_t gen;
    // Ordered for a min-heap via std::greater.
    friend bool operator>(const Entry& a, const Entry& b) {
      return std::tie(a.time, a.seq) > std::tie(b.time, b.seq);
    }
  };

  struct Slot {
    Task fn;
    std::uint32_t gen = 1;  // bumped on release; pending iff tag matches
    std::uint32_t next_free = kNoFreeSlot;
  };
  static constexpr std::uint32_t kNoFreeSlot = 0xffffffffu;

  [[nodiscard]] static TaskId pack(std::uint32_t gen, std::uint32_t slot) {
    return (static_cast<TaskId>(gen) << 32) | slot;
  }

  /// Retires a slot's current incarnation and recycles it.
  void release_slot(std::uint32_t index) {
    Slot& s = slots_[index];
    s.fn = nullptr;
    if (++s.gen == 0) s.gen = 1;  // generation 0 is reserved for kInvalidTask
    s.next_free = free_head_;
    free_head_ = index;
  }

  std::uint64_t next_seq_ = 1;
  std::uint64_t executed_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> queue_;
  std::vector<Slot> slots_;
  std::uint32_t free_head_ = kNoFreeSlot;
  std::size_t live_ = 0;
};

}  // namespace gryphon::sim
