// Deterministic discrete-event simulator.
//
// Everything in a reproduction run — broker protocol timers, link delivery,
// disk sync completion, CPU queueing, crash/restart schedules — executes as
// tasks on this single event loop. Determinism comes from (time, sequence)
// ordering: tasks scheduled for the same instant run in scheduling order.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <tuple>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "util/assert.hpp"
#include "util/time.hpp"

namespace gryphon::sim {

/// Handle for cancelling a scheduled task.
using TaskId = std::uint64_t;
constexpr TaskId kInvalidTask = 0;

class Simulator {
 public:
  using Task = std::function<void()>;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedules `fn` to run at absolute sim time `t` (>= now).
  TaskId schedule_at(SimTime t, Task fn);

  /// Schedules `fn` to run `d` microseconds from now (d >= 0).
  TaskId schedule_after(SimDuration d, Task fn) {
    GRYPHON_CHECK_MSG(d >= 0, "negative delay " << d);
    return schedule_at(now_ + d, std::move(fn));
  }

  /// Cancels a pending task. Cancelling an already-run or invalid id is a
  /// no-op (timers race with the events that obsolete them).
  void cancel(TaskId id);

  /// Runs the next pending task, if any. Returns false when the queue is
  /// empty.
  bool run_one();

  /// Runs tasks until sim time would exceed `t`; leaves now() == t.
  void run_until(SimTime t);

  /// Runs until no tasks remain.
  void run_until_idle();

  [[nodiscard]] std::size_t pending_tasks() const {
    return queue_.size() - cancelled_.size();
  }
  [[nodiscard]] std::uint64_t executed_tasks() const { return executed_; }

 private:
  struct Entry {
    SimTime time;
    std::uint64_t seq;
    TaskId id;
    // Ordered for a min-heap via std::greater.
    friend bool operator>(const Entry& a, const Entry& b) {
      return std::tie(a.time, a.seq) > std::tie(b.time, b.seq);
    }
  };

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 1;
  std::uint64_t executed_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> queue_;
  std::unordered_map<TaskId, Task> tasks_{};
  std::unordered_set<TaskId> cancelled_;
};

}  // namespace gryphon::sim
