// Transport — the seam between protocol endpoints and the Network's links.
//
// Every message handed to Network::send passes through to_wire() before the
// latency/bandwidth model sees it, and every delivery passes through
// from_wire() before the endpoint handler runs. The two implementations:
//
//  * StructTransport (default): pass-through. Messages travel as shared
//    in-memory structs — today's simulation fast path, schedules unchanged.
//  * wire::CodecTransport (src/wire/): every send is encoded into a
//    versioned, CRC32C-framed byte frame (FrameMessage) and every receive is
//    decoded back from those bytes. A frame that fails to decode is counted
//    and dropped, exactly like a lost message.
//
// The contract that keeps struct- and codec-mode runs bit-identical on the
// same seed: to_wire() must preserve wire_size() (the codec asserts
// encoded-frame size == the message's analytic estimate), and from_wire()
// must reproduce the message exactly (the codec asserts a canonical
// re-encode). Timing then depends only on byte counts, which agree.
#pragma once

#include "sim/message.hpp"

namespace gryphon::sim {

using EndpointId = std::uint32_t;

class Transport {
 public:
  virtual ~Transport() = default;

  /// Mode tag for reports and CLI flags ("struct", "codec").
  [[nodiscard]] virtual const char* name() const = 0;

  /// Translates a protocol message into what travels on the from->to link.
  /// Must preserve wire_size(). Never returns nullptr.
  [[nodiscard]] virtual MessagePtr to_wire(EndpointId from, EndpointId to,
                                           MessagePtr msg) = 0;

  /// Translates a wire message back into the protocol message the endpoint
  /// handler expects. Returns nullptr to reject (corrupt frame): the Network
  /// counts a decode reject and drops the delivery.
  [[nodiscard]] virtual MessagePtr from_wire(EndpointId from, EndpointId to,
                                             MessagePtr msg) = 0;
};

/// Today's shared-pointer pass-through: the wire carries the struct itself.
class StructTransport final : public Transport {
 public:
  [[nodiscard]] const char* name() const override { return "struct"; }
  [[nodiscard]] MessagePtr to_wire(EndpointId, EndpointId, MessagePtr msg) override {
    return msg;
  }
  [[nodiscard]] MessagePtr from_wire(EndpointId, EndpointId, MessagePtr msg) override {
    return msg;
  }
};

}  // namespace gryphon::sim
