// Simulated network of reliable FIFO point-to-point links (TCP stand-in).
//
// Semantics the protocols rely on, and which this class guarantees:
//  * per-directed-link FIFO delivery,
//  * no loss, no duplication, no corruption while both endpoints are up
//    and the link is healthy,
//  * messages in flight to a *down* endpoint are dropped (connection severed
//    by the crash), exactly like TCP connections dying with a broker.
//
// Latency model per message: arrival = departure + latency, where
// departure = max(send time, link free time) + wire_size/bandwidth. The link
// serializes messages, so a burst queues behind itself like a socket buffer.
//
// Fault injection (link level, endpoints stay alive):
//  * partition(a, b) severs the link in both directions: everything in
//    flight is dropped and subsequent sends are refused (send() returns
//    false) until heal(a, b). A partition+heal cycle always drops what was
//    in flight — like a TCP connection reset — so protocols must recover by
//    retransmission, not by hoping the pipe survived.
//  * degrade(a, b, ...) stretches latency and shrinks bandwidth by given
//    factors (a congested or flaky path); restore(a, b) reverts to the
//    configured values.
//  * schedule_flaps(a, b, ...) scripts a partition/heal square wave.
//  * corrupt_frames(a, b, ...) mangles the next N frames delivered on a
//    directed link (seeded byte flips / truncations). Only byte-encoded
//    messages (Transport = codec) can be mangled; struct messages under a
//    corruption window are dropped outright, the closest struct-mode
//    equivalent. A mangled frame that the transport then rejects is counted
//    as a decode reject at the destination and dropped like a lost message.
//
// All traffic crosses the Transport seam (sim/transport.hpp): to_wire() at
// send time — before the bandwidth model prices the message — and
// from_wire() at delivery time, before the endpoint handler runs.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/message.hpp"
#include "sim/scheduler.hpp"
#include "sim/transport.hpp"
#include "util/assert.hpp"

namespace gryphon::sim {

struct LinkConfig {
  SimDuration latency = msec(1);
  double bandwidth_bytes_per_sec = 1e9;  // effectively unconstrained default
};

class Network {
 public:
  /// Receives (source endpoint, message).
  using Handler = std::function<void(EndpointId, MessagePtr)>;

  explicit Network(Scheduler& scheduler) : sim_(scheduler) {}
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Installs the transport every send/delivery is translated through. The
  /// default (none installed) behaves like StructTransport. The transport
  /// must outlive the network.
  void set_transport(Transport* transport) { transport_ = transport; }
  [[nodiscard]] Transport* transport() const { return transport_; }

  /// Registers an endpoint. The handler is invoked at delivery time.
  EndpointId add_endpoint(std::string name, Handler handler);

  /// Replaces an endpoint's handler (used when a broker restarts as a fresh
  /// object on the same address).
  void set_handler(EndpointId id, Handler handler);

  /// Creates a bidirectional link. Both directions share the config but have
  /// independent FIFO queues.
  void connect(EndpointId a, EndpointId b, LinkConfig config = {});

  [[nodiscard]] bool are_connected(EndpointId a, EndpointId b) const;

  /// Sends a message. Requires a link. Returns false when the send is
  /// refused (sender down or link partitioned); a true return still only
  /// means "handed to the wire" — delivery is dropped if the destination is
  /// down at (or goes down before) arrival, or the link partitions before
  /// arrival.
  bool send(EndpointId from, EndpointId to, MessagePtr msg);

  /// Marks an endpoint down: queued and in-flight messages to it are dropped
  /// on arrival, and nothing can be sent from it.
  void set_down(EndpointId id, bool down);
  [[nodiscard]] bool is_down(EndpointId id) const;

  /// Severs the a<->b link without touching either endpoint. In-flight
  /// messages (both directions) are dropped; sends are refused until heal().
  /// Idempotent.
  void partition(EndpointId a, EndpointId b);

  /// Reopens a partitioned link. Messages that were in flight when the
  /// partition hit stay lost. Idempotent.
  void heal(EndpointId a, EndpointId b);

  [[nodiscard]] bool is_partitioned(EndpointId a, EndpointId b) const;

  /// Degrades the a<->b link: latency is multiplied by `latency_factor`
  /// (>= 1) and bandwidth by `bandwidth_factor` (in (0, 1]). Messages
  /// already in flight keep their arrival times. Calling again re-derives
  /// from the values given at connect() time (factors do not compound).
  void degrade(EndpointId a, EndpointId b, double latency_factor,
               double bandwidth_factor);

  /// Reverts a degraded link to its connect()-time configuration.
  void restore(EndpointId a, EndpointId b);

  /// Scripts `cycles` partition/heal pairs on the a<->b link starting now:
  /// down for `down`, then up for `up`, repeated. Overlapping manual
  /// partition()/heal() calls compose (both are idempotent).
  void schedule_flaps(EndpointId a, EndpointId b, SimDuration down,
                      SimDuration up, int cycles);

  /// Arms frame corruption on the *directed* from->to link: the next `count`
  /// messages delivered on it are mangled (a seeded byte flip or truncation
  /// when the message carries wire bytes; dropped outright when it does
  /// not). Deterministic in (seed, delivery order). Re-arming replaces any
  /// remaining budget.
  void corrupt_frames(EndpointId from, EndpointId to, int count, std::uint64_t seed);

  /// Disarms any remaining corruption budget on the directed from->to link.
  void clear_corruption(EndpointId from, EndpointId to);

  [[nodiscard]] const std::string& name_of(EndpointId id) const;

  /// Total messages/bytes ever delivered (diagnostics & tests).
  [[nodiscard]] std::uint64_t delivered_messages() const { return delivered_msgs_; }
  [[nodiscard]] std::uint64_t delivered_bytes() const { return delivered_bytes_; }

  /// Messages/bytes delivered per destination endpoint.
  [[nodiscard]] std::uint64_t delivered_messages_to(EndpointId id) const;
  [[nodiscard]] std::uint64_t delivered_bytes_to(EndpointId id) const;

  /// Messages/bytes accepted onto the wire per source endpoint.
  [[nodiscard]] std::uint64_t sent_messages_from(EndpointId id) const;
  [[nodiscard]] std::uint64_t sent_bytes_from(EndpointId id) const;

  /// Deliveries the transport rejected (corrupt frame) at this endpoint.
  [[nodiscard]] std::uint64_t decode_rejects_at(EndpointId id) const;

  /// Byte frames put on the wire by this endpoint / decoded at it (zero in
  /// struct mode — these count FrameMessages, i.e. codec-transport work).
  [[nodiscard]] std::uint64_t frames_encoded_from(EndpointId id) const;
  [[nodiscard]] std::uint64_t frames_decoded_at(EndpointId id) const;

  /// Sends refused because the link was partitioned (diagnostics & tests).
  [[nodiscard]] std::uint64_t refused_sends() const { return refused_sends_; }

  /// Total transport decode rejects / frames mangled by corrupt_frames().
  [[nodiscard]] std::uint64_t decode_rejects() const { return decode_rejects_; }
  [[nodiscard]] std::uint64_t corrupted_frames() const { return corrupted_frames_; }

 private:
  struct Endpoint {
    std::string name;
    Handler handler;
    bool down = false;
    std::uint64_t epoch = 0;  // bumped on set_down(true); stale deliveries drop
    std::uint64_t delivered_msgs = 0;
    std::uint64_t delivered_bytes = 0;
    std::uint64_t sent_msgs = 0;
    std::uint64_t sent_bytes = 0;
    std::uint64_t decode_rejects = 0;
    std::uint64_t frames_encoded = 0;
    std::uint64_t frames_decoded = 0;
  };

  struct Link {
    LinkConfig config;        // effective (possibly degraded) parameters
    LinkConfig base;          // connect()-time parameters, for restore()
    SimTime free_at = 0;      // serialization point for FIFO + bandwidth
    bool partitioned = false;
    std::uint64_t epoch = 0;  // bumped on partition(); in-flight msgs drop
    int corrupt_remaining = 0;     // frames still to mangle on this link
    std::uint64_t corrupt_seed = 0;
    std::uint64_t corrupt_drawn = 0;  // mangles performed (mixer input)
  };

  static std::uint64_t link_key(EndpointId a, EndpointId b) {
    return (static_cast<std::uint64_t>(a) << 32) | b;
  }

  Endpoint& endpoint(EndpointId id) {
    GRYPHON_CHECK_MSG(id < endpoints_.size(), "unknown endpoint " << id);
    return endpoints_[id];
  }
  [[nodiscard]] const Endpoint& endpoint(EndpointId id) const {
    GRYPHON_CHECK_MSG(id < endpoints_.size(), "unknown endpoint " << id);
    return endpoints_[id];
  }

  Link& link(EndpointId a, EndpointId b);
  [[nodiscard]] const Link& link(EndpointId a, EndpointId b) const;

  /// Applies one armed corruption to a wire message: a mangled copy, or
  /// nullptr when the message must be dropped instead (no bytes to flip).
  [[nodiscard]] MessagePtr mangle(Link& l, const MessagePtr& msg);

  Scheduler& sim_;
  Transport* transport_ = nullptr;
  std::vector<Endpoint> endpoints_;
  std::unordered_map<std::uint64_t, Link> links_;
  std::uint64_t delivered_msgs_ = 0;
  std::uint64_t delivered_bytes_ = 0;
  std::uint64_t refused_sends_ = 0;
  std::uint64_t decode_rejects_ = 0;
  std::uint64_t corrupted_frames_ = 0;
};

}  // namespace gryphon::sim
