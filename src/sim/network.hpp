// Simulated network of reliable FIFO point-to-point links (TCP stand-in).
//
// Semantics the protocols rely on, and which this class guarantees:
//  * per-directed-link FIFO delivery,
//  * no loss, no duplication, no corruption while both endpoints are up,
//  * messages in flight to a *down* endpoint are dropped (connection severed
//    by the crash), exactly like TCP connections dying with a broker.
//
// Latency model per message: arrival = departure + latency, where
// departure = max(send time, link free time) + wire_size/bandwidth. The link
// serializes messages, so a burst queues behind itself like a socket buffer.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/message.hpp"
#include "sim/simulator.hpp"
#include "util/assert.hpp"

namespace gryphon::sim {

using EndpointId = std::uint32_t;

struct LinkConfig {
  SimDuration latency = msec(1);
  double bandwidth_bytes_per_sec = 1e9;  // effectively unconstrained default
};

class Network {
 public:
  /// Receives (source endpoint, message).
  using Handler = std::function<void(EndpointId, MessagePtr)>;

  explicit Network(Simulator& simulator) : sim_(simulator) {}
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Registers an endpoint. The handler is invoked at delivery time.
  EndpointId add_endpoint(std::string name, Handler handler);

  /// Replaces an endpoint's handler (used when a broker restarts as a fresh
  /// object on the same address).
  void set_handler(EndpointId id, Handler handler);

  /// Creates a bidirectional link. Both directions share the config but have
  /// independent FIFO queues.
  void connect(EndpointId a, EndpointId b, LinkConfig config = {});

  [[nodiscard]] bool are_connected(EndpointId a, EndpointId b) const;

  /// Sends a message. Requires a link. Delivery is dropped if the
  /// destination is down at (or goes down before) arrival time.
  void send(EndpointId from, EndpointId to, MessagePtr msg);

  /// Marks an endpoint down: queued and in-flight messages to it are dropped
  /// on arrival, and nothing can be sent from it.
  void set_down(EndpointId id, bool down);
  [[nodiscard]] bool is_down(EndpointId id) const;

  [[nodiscard]] const std::string& name_of(EndpointId id) const;

  /// Total messages/bytes ever delivered (diagnostics & tests).
  [[nodiscard]] std::uint64_t delivered_messages() const { return delivered_msgs_; }
  [[nodiscard]] std::uint64_t delivered_bytes() const { return delivered_bytes_; }

  /// Messages/bytes delivered per destination endpoint.
  [[nodiscard]] std::uint64_t delivered_messages_to(EndpointId id) const;
  [[nodiscard]] std::uint64_t delivered_bytes_to(EndpointId id) const;

 private:
  struct Endpoint {
    std::string name;
    Handler handler;
    bool down = false;
    std::uint64_t epoch = 0;  // bumped on set_down(true); stale deliveries drop
    std::uint64_t delivered_msgs = 0;
    std::uint64_t delivered_bytes = 0;
  };

  struct Link {
    LinkConfig config;
    SimTime free_at = 0;  // serialization point for FIFO + bandwidth
  };

  static std::uint64_t link_key(EndpointId a, EndpointId b) {
    return (static_cast<std::uint64_t>(a) << 32) | b;
  }

  Endpoint& endpoint(EndpointId id) {
    GRYPHON_CHECK_MSG(id < endpoints_.size(), "unknown endpoint " << id);
    return endpoints_[id];
  }
  [[nodiscard]] const Endpoint& endpoint(EndpointId id) const {
    GRYPHON_CHECK_MSG(id < endpoints_.size(), "unknown endpoint " << id);
    return endpoints_[id];
  }

  Simulator& sim_;
  std::vector<Endpoint> endpoints_;
  std::unordered_map<std::uint64_t, Link> links_;
  std::uint64_t delivered_msgs_ = 0;
  std::uint64_t delivered_bytes_ = 0;
};

}  // namespace gryphon::sim
