// Base type for everything that travels over a simulated link.
//
// Messages are immutable once sent (shared by sender retransmit buffers,
// intermediate caches and receivers), so they are passed as
// shared_ptr<const Message>. wire_size() feeds the bandwidth model and the
// byte counters that several of the paper's claims are stated in.
#pragma once

#include <cstddef>
#include <memory>

namespace gryphon::sim {

class Message {
 public:
  virtual ~Message() = default;

  /// Serialized size in bytes, headers included.
  [[nodiscard]] virtual std::size_t wire_size() const = 0;
};

using MessagePtr = std::shared_ptr<const Message>;

}  // namespace gryphon::sim
