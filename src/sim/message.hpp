// Base type for everything that travels over a simulated link.
//
// Messages are immutable once sent (shared by sender retransmit buffers,
// intermediate caches and receivers), so they are passed as
// shared_ptr<const Message>. wire_size() feeds the bandwidth model and the
// byte counters that several of the paper's claims are stated in.
//
// Two representations travel on links, selected by the Transport seam
// (sim/transport.hpp):
//  * struct messages (wire_bytes() == nullptr): shared in-memory protocol
//    structs, the default pass-through;
//  * FrameMessage: an encoded byte frame (wire/ codecs). Only this form can
//    be corrupted at the byte level by Network link faults.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

namespace gryphon::sim {

class Message {
 public:
  virtual ~Message() = default;

  /// Serialized size in bytes, headers included.
  [[nodiscard]] virtual std::size_t wire_size() const = 0;

  /// Encoded frame bytes when this message *is* its own serialization
  /// (CodecTransport); nullptr for in-memory struct messages. Byte-level
  /// link faults (flips, truncations) only apply when this is non-null.
  [[nodiscard]] virtual const std::vector<std::byte>* wire_bytes() const {
    return nullptr;
  }
};

using MessagePtr = std::shared_ptr<const Message>;

/// An opaque byte frame in flight: its wire size IS its byte count, so the
/// bandwidth model charges exactly what the codec produced.
class FrameMessage final : public Message {
 public:
  explicit FrameMessage(std::vector<std::byte> bytes) : bytes_(std::move(bytes)) {}

  [[nodiscard]] std::size_t wire_size() const override { return bytes_.size(); }
  [[nodiscard]] const std::vector<std::byte>* wire_bytes() const override {
    return &bytes_;
  }

 private:
  std::vector<std::byte> bytes_;
};

}  // namespace gryphon::sim
