// Base type for everything that travels over a simulated link.
//
// Messages are immutable once sent (shared by sender retransmit buffers,
// intermediate caches and receivers), so they are passed as
// shared_ptr<const Message>. wire_size() feeds the bandwidth model and the
// byte counters that several of the paper's claims are stated in.
//
// Two representations travel on links, selected by the Transport seam
// (sim/transport.hpp):
//  * struct messages (wire_bytes() empty): shared in-memory protocol
//    structs, the default pass-through;
//  * FrameMessage: a view into an encoded byte frame (wire/ codecs). Only
//    this form can be corrupted at the byte level by Network link faults.
//
// Frames live in FrameArenas: one pooled byte buffer carries the frames of
// many coalesced sends, and every FrameMessage is an (arena, offset, len)
// view with shared ownership of the arena. The arena's buffer is reserved
// up front and NEVER reallocates while views exist (the writer seals the
// arena before it would have to grow), so views — and the zero-copy decode
// views layered on top of them — stay stable for the arena's lifetime. When
// the last view dies, the arena returns its buffer to the pool it was
// acquired from.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "util/buffer_pool.hpp"

namespace gryphon::sim {

class Message {
 public:
  virtual ~Message() = default;

  /// Serialized size in bytes, headers included.
  [[nodiscard]] virtual std::size_t wire_size() const = 0;

  /// Encoded frame bytes when this message *is* its own serialization
  /// (CodecTransport); an empty span for in-memory struct messages (frames
  /// are never empty: they carry at least their 64-byte header). Byte-level
  /// link faults (flips, truncations) only apply when this is non-empty.
  [[nodiscard]] virtual std::span<const std::byte> wire_bytes() const { return {}; }

  /// Shared ownership of the storage behind wire_bytes(): anything that
  /// keeps views into the frame (zero-copy decoded fields) must hold this.
  /// Null for struct messages.
  [[nodiscard]] virtual std::shared_ptr<const void> wire_owner() const {
    return nullptr;
  }
};

using MessagePtr = std::shared_ptr<const Message>;

/// One byte buffer carrying the back-to-back frames of a coalesced flush.
/// Returns the buffer to its pool (if any) once the last view dies.
class FrameArena {
 public:
  FrameArena(BufferPoolPtr pool, std::vector<std::byte> buf)
      : pool_(std::move(pool)), buf_(std::move(buf)) {}
  explicit FrameArena(std::vector<std::byte> buf) : buf_(std::move(buf)) {}
  FrameArena(const FrameArena&) = delete;
  FrameArena& operator=(const FrameArena&) = delete;
  ~FrameArena() {
    if (pool_ != nullptr) pool_->release(std::move(buf_));
  }

  /// The writer appends frames here; it must seal the arena (stop writing)
  /// before an append would exceed the buffer's reserved capacity, so the
  /// data never moves under live views.
  [[nodiscard]] std::vector<std::byte>& buffer() { return buf_; }
  [[nodiscard]] const std::vector<std::byte>& buffer() const { return buf_; }

  [[nodiscard]] std::span<const std::byte> view(std::size_t offset,
                                                std::size_t len) const {
    return std::span<const std::byte>(buf_).subspan(offset, len);
  }

 private:
  BufferPoolPtr pool_;  // null when the buffer is owned outright
  std::vector<std::byte> buf_;
};

/// An opaque byte frame in flight: a view into its arena. Its wire size IS
/// its byte count, so the bandwidth model charges exactly what the codec
/// produced.
class FrameMessage final : public Message {
 public:
  /// A frame written at [offset, offset+len) of a (possibly shared) arena.
  FrameMessage(std::shared_ptr<const FrameArena> arena, std::size_t offset,
               std::size_t len)
      : arena_(std::move(arena)), offset_(offset), len_(len) {}

  /// Convenience: a frame that owns its bytes outright (tests, mangled
  /// copies under chaos corruption).
  explicit FrameMessage(std::vector<std::byte> bytes)
      : arena_(std::make_shared<FrameArena>(std::move(bytes))),
        offset_(0),
        len_(arena_->buffer().size()) {}

  [[nodiscard]] std::size_t wire_size() const override { return len_; }
  [[nodiscard]] std::span<const std::byte> wire_bytes() const override {
    return arena_->view(offset_, len_);
  }
  [[nodiscard]] std::shared_ptr<const void> wire_owner() const override {
    return arena_;
  }

 private:
  std::shared_ptr<const FrameArena> arena_;
  std::size_t offset_;
  std::size_t len_;
};

}  // namespace gryphon::sim
