// The timer/scheduler seam between broker logic and whatever drives it.
//
// Everything below the harness — brokers, clients, the network model, CPU
// and disk models — schedules work against this interface instead of the
// concrete Simulator, so the same state machines run in two worlds:
//
//  * `sim::Simulator` (simulator.hpp): deterministic discrete-event time.
//    The harness owns the clock and the (time, sequence) ordering contract.
//  * `net::EventLoop` (net/event_loop.hpp): real wall-clock time over
//    nonblocking sockets. now() is microseconds since the loop started, and
//    timers fire from poll(2) timeouts.
//
// now() is non-virtual on purpose: it is called on every hot path, and both
// implementations maintain `now_` as plain state (the simulator when a task
// runs, the event loop when poll returns). Only schedule/cancel dispatch
// virtually, and those already do slab + heap work that dwarfs the call.
#pragma once

#include <cstdint>

#include "util/assert.hpp"
#include "util/small_task.hpp"
#include "util/time.hpp"

namespace gryphon::sim {

/// Handle for cancelling a scheduled task: (generation << 32) | slot.
/// Generations start at 1, so 0 never names a task.
using TaskId = std::uint64_t;
constexpr TaskId kInvalidTask = 0;

class Scheduler {
 public:
  using Task = SmallTask;

  Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Current time in microseconds. Simulated time under the Simulator,
  /// elapsed wall-clock time under the EventLoop.
  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedules `fn` to run at absolute time `t` (>= now).
  virtual TaskId schedule_at(SimTime t, Task fn) = 0;

  /// Schedules `fn` to run `d` microseconds from now (d >= 0).
  TaskId schedule_after(SimDuration d, Task fn) {
    GRYPHON_CHECK_MSG(d >= 0, "negative delay " << d);
    return schedule_at(now_ + d, std::move(fn));
  }

  /// Cancels a pending task. Cancelling an already-run or invalid id is a
  /// no-op (timers race with the events that obsolete them).
  virtual void cancel(TaskId id) = 0;

 protected:
  ~Scheduler() = default;  // never deleted through the interface

  SimTime now_ = 0;
};

}  // namespace gryphon::sim
