#include "sim/cpu.hpp"

#include <algorithm>

namespace gryphon::sim {

Cpu::Cpu(Scheduler& scheduler, std::string name, int cores,
         SimDuration accounting_window)
    : sim_(scheduler), name_(std::move(name)), cores_(cores), window_(accounting_window) {
  GRYPHON_CHECK(cores_ >= 1);
  GRYPHON_CHECK(window_ > 0);
}

SimTime Cpu::admit(SimDuration cost) {
  GRYPHON_CHECK(cost >= 0);
  const SimTime start = std::max(sim_.now(), busy_until_);
  const SimDuration service = cost / cores_;
  const SimTime end = start + service;
  busy_until_ = end;
  account_busy(start, end);
  total_busy_ += service;
  return end;
}

void Cpu::inject_stall(SimDuration d) {
  GRYPHON_CHECK(d >= 0);
  const SimTime start = std::max(sim_.now(), busy_until_);
  busy_until_ = start + d;
  account_busy(start, busy_until_);
  total_busy_ += d;
}

void Cpu::clear() {
  ++generation_;
  busy_until_ = sim_.now();
}

SimDuration Cpu::backlog() const { return std::max<SimDuration>(0, busy_until_ - sim_.now()); }

void Cpu::account_busy(SimTime start, SimTime end) {
  if (end <= start) return;
  horizon_ = std::max(horizon_, end);
  auto first = static_cast<std::size_t>(start / window_);
  auto last = static_cast<std::size_t>((end - 1) / window_);
  if (last >= busy_per_window_.size()) busy_per_window_.resize(last + 1, 0);
  for (auto w = first; w <= last; ++w) {
    const SimTime wstart = static_cast<SimTime>(w) * window_;
    const SimTime wend = wstart + window_;
    busy_per_window_[w] += std::min(end, wend) - std::max(start, wstart);
  }
}

double Cpu::idle_fraction(SimTime from, SimTime to) const {
  GRYPHON_CHECK(from < to);
  SimDuration busy = 0;
  const auto first = static_cast<std::size_t>(from / window_);
  const auto last = static_cast<std::size_t>((to - 1) / window_);
  for (auto w = first; w <= last && w < busy_per_window_.size(); ++w) {
    // Windows partially covered by [from,to) contribute proportionally; busy
    // time is assumed uniform within a window.
    const SimTime wstart = static_cast<SimTime>(w) * window_;
    const SimTime wend = wstart + window_;
    const auto overlap =
        static_cast<double>(std::min(to, wend) - std::max(from, wstart));
    busy += static_cast<SimDuration>(
        static_cast<double>(busy_per_window_[w]) * overlap / static_cast<double>(window_));
  }
  const auto span = static_cast<double>(to - from);
  return std::clamp(1.0 - static_cast<double>(busy) / span, 0.0, 1.0);
}

std::vector<Cpu::WindowIdle> Cpu::idle_series() const {
  std::vector<WindowIdle> out;
  out.reserve(busy_per_window_.size());
  for (std::size_t w = 0; w < busy_per_window_.size(); ++w) {
    const double idle =
        1.0 - static_cast<double>(busy_per_window_[w]) / static_cast<double>(window_);
    out.push_back({static_cast<SimTime>(w) * window_, std::clamp(idle, 0.0, 1.0)});
  }
  return out;
}

}  // namespace gryphon::sim
