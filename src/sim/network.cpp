#include "sim/network.hpp"

#include <cmath>

namespace gryphon::sim {

EndpointId Network::add_endpoint(std::string name, Handler handler) {
  GRYPHON_CHECK(handler != nullptr);
  endpoints_.push_back(Endpoint{std::move(name), std::move(handler)});
  return static_cast<EndpointId>(endpoints_.size() - 1);
}

void Network::set_handler(EndpointId id, Handler handler) {
  GRYPHON_CHECK(handler != nullptr);
  endpoint(id).handler = std::move(handler);
}

void Network::connect(EndpointId a, EndpointId b, LinkConfig config) {
  GRYPHON_CHECK_MSG(a != b, "self-link");
  GRYPHON_CHECK(config.latency >= 0 && config.bandwidth_bytes_per_sec > 0);
  endpoint(a);
  endpoint(b);
  GRYPHON_CHECK_MSG(!are_connected(a, b), "duplicate link " << a << "<->" << b);
  links_.emplace(link_key(a, b), Link{config, config, 0, false, 0});
  links_.emplace(link_key(b, a), Link{config, config, 0, false, 0});
}

bool Network::are_connected(EndpointId a, EndpointId b) const {
  return links_.contains(link_key(a, b));
}

Network::Link& Network::link(EndpointId a, EndpointId b) {
  auto it = links_.find(link_key(a, b));
  GRYPHON_CHECK_MSG(it != links_.end(),
                    "no link " << name_of(a) << " -> " << name_of(b));
  return it->second;
}

const Network::Link& Network::link(EndpointId a, EndpointId b) const {
  auto it = links_.find(link_key(a, b));
  GRYPHON_CHECK_MSG(it != links_.end(),
                    "no link " << name_of(a) << " -> " << name_of(b));
  return it->second;
}

namespace {
/// splitmix64 — the deterministic mixer behind seeded frame mangling.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}
}  // namespace

bool Network::send(EndpointId from, EndpointId to, MessagePtr msg) {
  GRYPHON_CHECK(msg != nullptr);
  Link& l = link(from, to);
  if (endpoint(from).down) return false;  // a crashed node sends nothing
  if (l.partitioned) {
    // Connection refused / send error: the caller sees the failure
    // immediately (a real TCP send into a severed link eventually errors).
    ++refused_sends_;
    return false;
  }

  // Transport seam: what travels (and what the bandwidth model prices) is
  // the wire form — the struct itself, or its encoded frame.
  if (transport_ != nullptr) {
    msg = transport_->to_wire(from, to, std::move(msg));
    GRYPHON_CHECK_MSG(msg != nullptr, "transport refused to encode a message");
  }

  const std::size_t sent_bytes = msg->wire_size();
  Endpoint& src = endpoint(from);
  ++src.sent_msgs;
  src.sent_bytes += sent_bytes;
  if (!msg->wire_bytes().empty()) ++src.frames_encoded;

  const auto ser_time = static_cast<SimDuration>(
      std::ceil(static_cast<double>(sent_bytes) /
                l.config.bandwidth_bytes_per_sec * 1e6));
  const SimTime departure = std::max(sim_.now(), l.free_at) + ser_time;
  l.free_at = departure;
  const SimTime arrival = departure + l.config.latency;

  const std::uint64_t send_epoch = endpoint(to).epoch;
  const std::uint64_t link_epoch = l.epoch;
  // Capture the link by pointer: links_ is node-based and links are never
  // erased, so the pointer stays valid and delivery skips the hash lookup.
  Link* lp = &l;
  sim_.schedule_at(arrival, [this, lp, from, to, send_epoch, link_epoch,
                             msg = std::move(msg)]() mutable {
    // Dropped if the link partitioned after the send (even if since healed —
    // the connection was reset) …
    if (lp->epoch != link_epoch) return;
    Endpoint& dst = endpoint(to);
    // … or the destination crashed after the send (connection severed) or is
    // currently down.
    if (dst.down || dst.epoch != send_epoch) return;
    if (lp->corrupt_remaining > 0) {
      --lp->corrupt_remaining;
      msg = mangle(*lp, msg);
      if (msg == nullptr) return;  // struct message under corruption: dropped
    }
    const std::size_t bytes = msg->wire_size();
    ++delivered_msgs_;
    delivered_bytes_ += bytes;
    ++dst.delivered_msgs;
    dst.delivered_bytes += bytes;
    const bool was_frame = !msg->wire_bytes().empty();
    if (transport_ != nullptr) {
      msg = transport_->from_wire(from, to, std::move(msg));
      if (msg == nullptr) {
        // Corrupt frame: counted, then dropped exactly like a lost message —
        // the protocols recover by retransmission.
        ++decode_rejects_;
        ++dst.decode_rejects;
        return;
      }
      if (was_frame) ++dst.frames_decoded;
    }
    dst.handler(from, std::move(msg));
  });
  return true;
}

MessagePtr Network::mangle(Link& l, const MessagePtr& msg) {
  ++corrupted_frames_;
  const std::uint64_t draw = mix64(l.corrupt_seed + l.corrupt_drawn++);
  // Frames are told apart by their ownership handle: even a zero-length
  // mangled frame is still a frame, while struct messages have no bytes.
  const std::span<const std::byte> bytes = msg->wire_bytes();
  if (msg->wire_owner() == nullptr || bytes.empty()) {
    // Struct messages have no byte representation to flip: the closest
    // struct-mode equivalent of an unreadable frame is losing the message.
    return nullptr;
  }
  std::vector<std::byte> mutated(bytes.begin(), bytes.end());
  const std::size_t pos = (draw >> 1) % mutated.size();
  if ((draw & 1) == 0) {
    // Byte flip: XOR with a non-zero pattern so the frame always changes.
    mutated[pos] ^= static_cast<std::byte>(0x5A | ((draw >> 8) & 0xA5) | 1);
  } else {
    // Truncation: a torn prefix, as if the connection died mid-frame.
    mutated.resize(pos);
  }
  return std::make_shared<FrameMessage>(std::move(mutated));
}

void Network::set_down(EndpointId id, bool down) {
  Endpoint& ep = endpoint(id);
  if (down && !ep.down) ++ep.epoch;  // sever in-flight deliveries
  ep.down = down;
}

bool Network::is_down(EndpointId id) const { return endpoint(id).down; }

void Network::partition(EndpointId a, EndpointId b) {
  for (Link* l : {&link(a, b), &link(b, a)}) {
    if (l->partitioned) continue;
    l->partitioned = true;
    ++l->epoch;               // drop everything currently in flight
    l->free_at = sim_.now();  // the queue behind the cut is gone too
  }
}

void Network::heal(EndpointId a, EndpointId b) {
  link(a, b).partitioned = false;
  link(b, a).partitioned = false;
}

bool Network::is_partitioned(EndpointId a, EndpointId b) const {
  return link(a, b).partitioned;
}

void Network::degrade(EndpointId a, EndpointId b, double latency_factor,
                      double bandwidth_factor) {
  GRYPHON_CHECK_MSG(latency_factor >= 1.0 && bandwidth_factor > 0.0 &&
                        bandwidth_factor <= 1.0,
                    "degrade factors out of range: latency x" << latency_factor
                        << ", bandwidth x" << bandwidth_factor);
  for (Link* l : {&link(a, b), &link(b, a)}) {
    l->config.latency = static_cast<SimDuration>(
        std::llround(static_cast<double>(l->base.latency) * latency_factor));
    l->config.bandwidth_bytes_per_sec =
        l->base.bandwidth_bytes_per_sec * bandwidth_factor;
  }
}

void Network::restore(EndpointId a, EndpointId b) {
  link(a, b).config = link(a, b).base;
  link(b, a).config = link(b, a).base;
}

void Network::schedule_flaps(EndpointId a, EndpointId b, SimDuration down,
                             SimDuration up, int cycles) {
  GRYPHON_CHECK(down > 0 && up > 0 && cycles > 0);
  link(a, b);  // validated up front, not at first fire
  SimDuration at = 0;
  for (int i = 0; i < cycles; ++i) {
    sim_.schedule_after(at, [this, a, b] { partition(a, b); });
    sim_.schedule_after(at + down, [this, a, b] { heal(a, b); });
    at += down + up;
  }
}

void Network::corrupt_frames(EndpointId from, EndpointId to, int count,
                             std::uint64_t seed) {
  GRYPHON_CHECK(count > 0);
  Link& l = link(from, to);
  l.corrupt_remaining = count;
  l.corrupt_seed = seed;
  l.corrupt_drawn = 0;
}

void Network::clear_corruption(EndpointId from, EndpointId to) {
  link(from, to).corrupt_remaining = 0;
}

const std::string& Network::name_of(EndpointId id) const {
  return endpoint(id).name;
}

std::uint64_t Network::delivered_messages_to(EndpointId id) const {
  return endpoint(id).delivered_msgs;
}

std::uint64_t Network::delivered_bytes_to(EndpointId id) const {
  return endpoint(id).delivered_bytes;
}

std::uint64_t Network::sent_messages_from(EndpointId id) const {
  return endpoint(id).sent_msgs;
}

std::uint64_t Network::sent_bytes_from(EndpointId id) const {
  return endpoint(id).sent_bytes;
}

std::uint64_t Network::decode_rejects_at(EndpointId id) const {
  return endpoint(id).decode_rejects;
}

std::uint64_t Network::frames_encoded_from(EndpointId id) const {
  return endpoint(id).frames_encoded;
}

std::uint64_t Network::frames_decoded_at(EndpointId id) const {
  return endpoint(id).frames_decoded;
}

}  // namespace gryphon::sim
