#include "sim/network.hpp"

#include <cmath>

namespace gryphon::sim {

EndpointId Network::add_endpoint(std::string name, Handler handler) {
  GRYPHON_CHECK(handler != nullptr);
  endpoints_.push_back(Endpoint{std::move(name), std::move(handler)});
  return static_cast<EndpointId>(endpoints_.size() - 1);
}

void Network::set_handler(EndpointId id, Handler handler) {
  GRYPHON_CHECK(handler != nullptr);
  endpoint(id).handler = std::move(handler);
}

void Network::connect(EndpointId a, EndpointId b, LinkConfig config) {
  GRYPHON_CHECK_MSG(a != b, "self-link");
  GRYPHON_CHECK(config.latency >= 0 && config.bandwidth_bytes_per_sec > 0);
  endpoint(a);
  endpoint(b);
  GRYPHON_CHECK_MSG(!are_connected(a, b), "duplicate link " << a << "<->" << b);
  links_.emplace(link_key(a, b), Link{config, 0});
  links_.emplace(link_key(b, a), Link{config, 0});
}

bool Network::are_connected(EndpointId a, EndpointId b) const {
  return links_.contains(link_key(a, b));
}

void Network::send(EndpointId from, EndpointId to, MessagePtr msg) {
  GRYPHON_CHECK(msg != nullptr);
  auto it = links_.find(link_key(from, to));
  GRYPHON_CHECK_MSG(it != links_.end(),
                    "no link " << name_of(from) << " -> " << name_of(to));
  if (endpoint(from).down) return;  // a crashed node sends nothing

  Link& link = it->second;
  const auto ser_time = static_cast<SimDuration>(
      std::ceil(static_cast<double>(msg->wire_size()) /
                link.config.bandwidth_bytes_per_sec * 1e6));
  const SimTime departure = std::max(sim_.now(), link.free_at) + ser_time;
  link.free_at = departure;
  const SimTime arrival = departure + link.config.latency;

  const std::uint64_t send_epoch = endpoint(to).epoch;
  const std::size_t bytes = msg->wire_size();
  sim_.schedule_at(arrival, [this, from, to, send_epoch, bytes,
                             msg = std::move(msg)]() mutable {
    Endpoint& dst = endpoint(to);
    // Dropped if the destination crashed after the send (connection severed)
    // or is currently down.
    if (dst.down || dst.epoch != send_epoch) return;
    ++delivered_msgs_;
    delivered_bytes_ += bytes;
    ++dst.delivered_msgs;
    dst.delivered_bytes += bytes;
    dst.handler(from, std::move(msg));
  });
}

void Network::set_down(EndpointId id, bool down) {
  Endpoint& ep = endpoint(id);
  if (down && !ep.down) ++ep.epoch;  // sever in-flight deliveries
  ep.down = down;
}

bool Network::is_down(EndpointId id) const { return endpoint(id).down; }

const std::string& Network::name_of(EndpointId id) const {
  return endpoint(id).name;
}

std::uint64_t Network::delivered_messages_to(EndpointId id) const {
  return endpoint(id).delivered_msgs;
}

std::uint64_t Network::delivered_bytes_to(EndpointId id) const {
  return endpoint(id).delivered_bytes;
}

}  // namespace gryphon::sim
