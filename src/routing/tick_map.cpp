#include "routing/tick_map.hpp"

#include <algorithm>

namespace gryphon::routing {

TickValue TickMap::value_at(Tick t) const {
  GRYPHON_CHECK_MSG(t > origin_, "tick " << t << " at or below origin " << origin_);
  if (events_.find(t) != nullptr) return TickValue::kD;
  if (silence_.contains(t)) return TickValue::kS;
  if (lost_.contains(t)) return TickValue::kL;
  return TickValue::kQ;
}

matching::EventDataPtr TickMap::event_at(Tick t) const {
  const matching::EventDataPtr* e = events_.find(t);
  return e == nullptr ? nullptr : *e;
}

void TickMap::set_data(Tick t, matching::EventDataPtr event) {
  GRYPHON_CHECK(event != nullptr);
  if (t <= origin_) return;  // stale: already consumed/discarded here
  if (events_.find(t) != nullptr) return;  // idempotent redelivery
  // D upgrades both L (a cache can supply what the pubend discarded) and S:
  // with dynamic subscriptions, S means "was not relevant to this link's
  // subscription set at filter time", and an authoritative re-fetch after a
  // subscription change may legitimately reveal the event (reconnect-
  // anywhere refiltering). Consumers that already passed the tick treated
  // it as S, which was correct for *their* subscription set.
  if (lost_.contains(t)) lost_.subtract(t, t);
  if (silence_.contains(t)) silence_.subtract(t, t);
  event_bytes_ += event->encoded_size();
  events_.insert(t, std::move(event));
  covered_.add(t, t);
}

void TickMap::set_silence(Tick from, Tick to) {
  GRYPHON_CHECK(from <= to);
  from = std::max(from, origin_ + 1);
  if (from > to) return;
  for (const TickRange& gap : covered_.complement_within(from, to)) {
    silence_.add(gap);
    covered_.add(gap);
  }
}

void TickMap::set_lost(Tick from, Tick to) {
  GRYPHON_CHECK(from <= to);
  from = std::max(from, origin_ + 1);
  if (from > to) return;
  for (const TickRange& gap : covered_.complement_within(from, to)) {
    lost_.add(gap);
    covered_.add(gap);
  }
}

void TickMap::force_lost(Tick from, Tick to) {
  GRYPHON_CHECK(from <= to);
  from = std::max(from, origin_ + 1);
  if (from > to) return;
  silence_.subtract(from, to);
  const std::size_t lo = events_.lower_bound(from);
  std::size_t hi = lo;
  while (hi < events_.size() && events_.at(hi).tick <= to) {
    event_bytes_ -= events_.at(hi).event->encoded_size();
    ++hi;
  }
  events_.erase(lo, hi - lo);
  lost_.add(from, to);
  covered_.add(from, to);
}

Tick TickMap::doubt_horizon(Tick base) const {
  GRYPHON_CHECK_MSG(base >= origin_, "doubt horizon base below origin");
  // First Q tick after base: if base+1 is covered, the containing interval
  // ends at e and e+1 is uncovered (intervals are coalesced); else base+1.
  auto r = covered_.interval_containing(base + 1);
  return r ? r->to : base;
}

std::vector<TickRange> TickMap::q_ranges(Tick from, Tick to) const {
  GRYPHON_CHECK(from <= to);
  from = std::max(from, origin_ + 1);
  if (from > to) return {};
  return covered_.complement_within(from, to);
}

std::vector<KnowledgeItem> TickMap::items(Tick from, Tick to) const {
  GRYPHON_CHECK(from <= to);
  std::vector<KnowledgeItem> out;
  from = std::max(from, origin_ + 1);
  if (from > to) return out;

  // Cursors into the S/L runs and the D ring; everything is clipped to
  // [from, to] on the fly — no intermediate vectors.
  const auto& sspans = silence_.spans();
  const auto& lspans = lost_.spans();
  auto reaches = [](const TickRange& r, Tick v) { return r.to < v; };
  auto sit = std::lower_bound(sspans.begin(), sspans.end(), from, reaches);
  auto lit = std::lower_bound(lspans.begin(), lspans.end(), from, reaches);
  std::size_t ei = events_.lower_bound(from);

  out.reserve(static_cast<std::size_t>(sspans.end() - sit) +
              static_cast<std::size_t>(lspans.end() - lit) +
              (events_.lower_bound(to) - ei) + 1);

  // Three-way ordered merge; S/L ranges and D points are pairwise disjoint.
  while (true) {
    const Tick snext = (sit != sspans.end() && sit->from <= to)
                           ? std::max(from, sit->from)
                           : kTickInfinity;
    const Tick lnext = (lit != lspans.end() && lit->from <= to)
                           ? std::max(from, lit->from)
                           : kTickInfinity;
    const Tick enext = (ei < events_.size() && events_.at(ei).tick <= to)
                           ? events_.at(ei).tick
                           : kTickInfinity;
    const Tick first = std::min({snext, lnext, enext});
    if (first == kTickInfinity) break;
    if (first == enext) {
      out.push_back({TickValue::kD, {enext, enext}, events_.at(ei).event});
      ++ei;
    } else if (first == snext) {
      out.push_back({TickValue::kS, {snext, std::min(to, sit->to)}, nullptr});
      ++sit;
    } else {
      out.push_back({TickValue::kL, {lnext, std::min(to, lit->to)}, nullptr});
      ++lit;
    }
  }
  return out;
}

void TickMap::apply(const KnowledgeItem& item) {
  switch (item.value) {
    case TickValue::kD:
      GRYPHON_CHECK(item.range.from == item.range.to);
      set_data(item.range.from, item.event);
      break;
    case TickValue::kS:
      set_silence(item.range.from, item.range.to);
      break;
    case TickValue::kL:
      set_lost(item.range.from, item.range.to);
      break;
    case TickValue::kQ:
      GRYPHON_CHECK_MSG(false, "Q is not transferable knowledge");
  }
}

void TickMap::discard_upto(Tick t) {
  if (t <= origin_) return;
  covered_.subtract(INT64_MIN / 2, t);
  silence_.subtract(INT64_MIN / 2, t);
  lost_.subtract(INT64_MIN / 2, t);
  std::size_t n = 0;
  while (n < events_.size() && events_.at(n).tick <= t) {
    event_bytes_ -= events_.at(n).event->encoded_size();
    ++n;
  }
  events_.erase(0, n);
  origin_ = t;
}

}  // namespace gryphon::routing
