#include "routing/tick_map.hpp"

#include <algorithm>

namespace gryphon::routing {

TickValue TickMap::value_at(Tick t) const {
  GRYPHON_CHECK_MSG(t > origin_, "tick " << t << " at or below origin " << origin_);
  if (events_.contains(t)) return TickValue::kD;
  if (silence_.contains(t)) return TickValue::kS;
  if (lost_.contains(t)) return TickValue::kL;
  return TickValue::kQ;
}

matching::EventDataPtr TickMap::event_at(Tick t) const {
  auto it = events_.find(t);
  return it == events_.end() ? nullptr : it->second;
}

void TickMap::set_data(Tick t, matching::EventDataPtr event) {
  GRYPHON_CHECK(event != nullptr);
  if (t <= origin_) return;  // stale: already consumed/discarded here
  if (events_.contains(t)) return;  // idempotent redelivery
  // D upgrades both L (a cache can supply what the pubend discarded) and S:
  // with dynamic subscriptions, S means "was not relevant to this link's
  // subscription set at filter time", and an authoritative re-fetch after a
  // subscription change may legitimately reveal the event (reconnect-
  // anywhere refiltering). Consumers that already passed the tick treated
  // it as S, which was correct for *their* subscription set.
  if (lost_.contains(t)) lost_.subtract(t, t);
  if (silence_.contains(t)) silence_.subtract(t, t);
  event_bytes_ += event->encoded_size();
  events_.emplace(t, std::move(event));
  covered_.add(t, t);
}

void TickMap::set_silence(Tick from, Tick to) {
  GRYPHON_CHECK(from <= to);
  from = std::max(from, origin_ + 1);
  if (from > to) return;
  for (const TickRange& gap : covered_.complement_within(from, to)) {
    silence_.add(gap);
    covered_.add(gap);
  }
}

void TickMap::set_lost(Tick from, Tick to) {
  GRYPHON_CHECK(from <= to);
  from = std::max(from, origin_ + 1);
  if (from > to) return;
  for (const TickRange& gap : covered_.complement_within(from, to)) {
    lost_.add(gap);
    covered_.add(gap);
  }
}

void TickMap::force_lost(Tick from, Tick to) {
  GRYPHON_CHECK(from <= to);
  from = std::max(from, origin_ + 1);
  if (from > to) return;
  silence_.subtract(from, to);
  for (auto it = events_.lower_bound(from); it != events_.end() && it->first <= to;) {
    event_bytes_ -= it->second->encoded_size();
    it = events_.erase(it);
  }
  lost_.add(from, to);
  covered_.add(from, to);
}

Tick TickMap::doubt_horizon(Tick base) const {
  GRYPHON_CHECK_MSG(base >= origin_, "doubt horizon base below origin");
  // First Q tick after base: if base+1 is covered, the containing interval
  // ends at e and e+1 is uncovered (intervals are coalesced); else base+1.
  auto r = covered_.interval_containing(base + 1);
  return r ? r->to : base;
}

std::vector<TickRange> TickMap::q_ranges(Tick from, Tick to) const {
  GRYPHON_CHECK(from <= to);
  from = std::max(from, origin_ + 1);
  if (from > to) return {};
  return covered_.complement_within(from, to);
}

std::vector<KnowledgeItem> TickMap::items(Tick from, Tick to) const {
  GRYPHON_CHECK(from <= to);
  from = std::max(from, origin_ + 1);
  std::vector<KnowledgeItem> out;
  if (from > to) return out;

  auto silences = silence_.intersection(from, to);
  auto losts = lost_.intersection(from, to);
  auto sit = silences.begin();
  auto lit = losts.begin();
  auto eit = events_.lower_bound(from);

  // Three-way ordered merge; S/L ranges and D points are pairwise disjoint.
  while (true) {
    const Tick snext = sit != silences.end() ? sit->from : kTickInfinity;
    const Tick lnext = lit != losts.end() ? lit->from : kTickInfinity;
    const Tick enext =
        (eit != events_.end() && eit->first <= to) ? eit->first : kTickInfinity;
    const Tick first = std::min({snext, lnext, enext});
    if (first == kTickInfinity) break;
    if (first == enext) {
      out.push_back({TickValue::kD, {enext, enext}, eit->second});
      ++eit;
    } else if (first == snext) {
      out.push_back({TickValue::kS, *sit, nullptr});
      ++sit;
    } else {
      out.push_back({TickValue::kL, *lit, nullptr});
      ++lit;
    }
  }
  return out;
}

void TickMap::apply(const KnowledgeItem& item) {
  switch (item.value) {
    case TickValue::kD:
      GRYPHON_CHECK(item.range.from == item.range.to);
      set_data(item.range.from, item.event);
      break;
    case TickValue::kS:
      set_silence(item.range.from, item.range.to);
      break;
    case TickValue::kL:
      set_lost(item.range.from, item.range.to);
      break;
    case TickValue::kQ:
      GRYPHON_CHECK_MSG(false, "Q is not transferable knowledge");
  }
}

void TickMap::for_each_data(
    Tick from, Tick to,
    const std::function<void(Tick, const matching::EventDataPtr&)>& fn) const {
  for (auto it = events_.lower_bound(from); it != events_.end() && it->first <= to;
       ++it) {
    fn(it->first, it->second);
  }
}

std::size_t TickMap::data_count(Tick from, Tick to) const {
  auto lo = events_.lower_bound(from);
  auto hi = events_.upper_bound(to);
  return static_cast<std::size_t>(std::distance(lo, hi));
}

void TickMap::discard_upto(Tick t) {
  if (t <= origin_) return;
  covered_.subtract(INT64_MIN / 2, t);
  silence_.subtract(INT64_MIN / 2, t);
  lost_.subtract(INT64_MIN / 2, t);
  for (auto it = events_.begin(); it != events_.end() && it->first <= t;) {
    event_bytes_ -= it->second->encoded_size();
    it = events_.erase(it);
  }
  origin_ = t;
}

}  // namespace gryphon::routing
