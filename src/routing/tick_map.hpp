// TickMap — one node's knowledge of one pubend's stream.
//
// Conceptually a total function Tick -> {Q,S,D,L} that starts all-Q and
// monotonically gains knowledge; D ticks carry the event payload. Every
// knowledge stream in the system — the pubend's authoritative ladder, the
// caches at intermediate brokers, the SHB istream, per-subscriber catchup
// streams — is a TickMap plus protocol-specific cursors.
//
// Knowledge-upgrade rules (protocol invariants, checked):
//   Q -> S, Q -> D, Q -> L   normal accumulation
//   L -> D                   a downstream cache can still supply an event
//                            the pubend discarded; D is strictly better
//   S -> D, D -> S, S <-> L  forbidden: would contradict prior guarantees
// force_lost() is the pubend-side exception: the release protocol rewrites
// its own prefix to L, dropping payloads (that is what "discarding" means).
//
// discard_upto() models cache eviction / consumption: knowledge below the
// new origin is forgotten entirely (reverts to "don't ask me").
//
// Representation: S and L are run-length interval sets; the D window is a
// ring buffer of (tick, event) items in tick order. The stream's access
// pattern is append-at-head (live knowledge arrives in tick order) and
// discard-at-tail (release protocol / cache eviction / consumption), which
// the ring serves in O(1) with no per-item allocation; lookups are binary
// searches. The ring is dense in *retained events*, not in ticks — a
// per-subscriber map whose predicate matches 1% of a long disconnect window
// stores 1% of the window, which a tick-indexed array would not.
#pragma once

#include <algorithm>
#include <cstddef>
#include <vector>

#include "matching/event.hpp"
#include "routing/ticks.hpp"
#include "util/assert.hpp"
#include "util/interval_set.hpp"
#include "util/time.hpp"

namespace gryphon::routing {

/// One unit of transferable knowledge: a D tick with its event, or an S/L
/// range. Produced by TickMap::items() and shipped in StreamDataMsg.
struct KnowledgeItem {
  TickValue value = TickValue::kS;  // kD, kS or kL (never kQ)
  TickRange range{0, 0};            // for kD, range.from == range.to
  matching::EventDataPtr event;     // set iff value == kD
};

/// Ring buffer of (tick, event) items in strictly ascending tick order.
/// O(1) push at the head, O(1) pop at the tail, O(log n) lookup; the rare
/// out-of-order insert (a curiosity fill below the head) shifts in place.
class EventRing {
 public:
  struct Item {
    Tick tick = 0;
    matching::EventDataPtr event;
  };

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  /// i-th item in tick order (0 = lowest tick).
  [[nodiscard]] const Item& at(std::size_t i) const {
    GRYPHON_DCHECK(i < size_);
    return buf_[(head_ + i) & mask()];
  }

  /// Index of the first item with tick >= t; size() if none.
  [[nodiscard]] std::size_t lower_bound(Tick t) const {
    std::size_t lo = 0;
    std::size_t hi = size_;
    while (lo < hi) {
      const std::size_t mid = lo + (hi - lo) / 2;
      if (at(mid).tick < t) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

  [[nodiscard]] const matching::EventDataPtr* find(Tick t) const {
    const std::size_t i = lower_bound(t);
    if (i < size_ && at(i).tick == t) return &at(i).event;
    return nullptr;
  }

  /// Inserts a new tick (must not be present). Appending above the current
  /// maximum is O(1).
  void insert(Tick t, matching::EventDataPtr event) {
    if (size_ == buf_.size()) grow();
    if (size_ == 0 || t > at(size_ - 1).tick) {
      buf_[(head_ + size_) & mask()] = Item{t, std::move(event)};
      ++size_;
      return;
    }
    const std::size_t pos = lower_bound(t);
    GRYPHON_DCHECK(at(pos).tick != t);
    ++size_;
    for (std::size_t i = size_ - 1; i > pos; --i) slot(i) = std::move(slot(i - 1));
    slot(pos) = Item{t, std::move(event)};
  }

  /// Removes the n items starting at index pos. Removing a prefix is O(n)
  /// pointer releases with no shifting (the ring advances its tail).
  void erase(std::size_t pos, std::size_t n) {
    GRYPHON_DCHECK(pos + n <= size_);
    if (n == 0) return;
    if (pos == 0) {
      for (std::size_t i = 0; i < n; ++i) {
        buf_[head_] = Item{};
        head_ = (head_ + 1) & mask();
      }
      size_ -= n;
      return;
    }
    for (std::size_t i = pos; i + n < size_; ++i) slot(i) = std::move(slot(i + n));
    for (std::size_t i = size_ - n; i < size_; ++i) slot(i) = Item{};
    size_ -= n;
  }

 private:
  [[nodiscard]] std::size_t mask() const { return buf_.size() - 1; }
  [[nodiscard]] Item& slot(std::size_t i) { return buf_[(head_ + i) & mask()]; }

  void grow() {
    std::vector<Item> bigger(std::max<std::size_t>(16, buf_.size() * 2));
    for (std::size_t i = 0; i < size_; ++i) bigger[i] = std::move(slot(i));
    buf_ = std::move(bigger);
    head_ = 0;
  }

  std::vector<Item> buf_;  // power-of-2 capacity
  std::size_t head_ = 0;
  std::size_t size_ = 0;
};

class TickMap {
 public:
  /// Ticks <= origin are out of scope (consumed / before subscription start).
  explicit TickMap(Tick origin) : origin_(origin) {}

  [[nodiscard]] Tick origin() const { return origin_; }

  /// Highest tick with any knowledge (origin() if none).
  [[nodiscard]] Tick head() const {
    return covered_.empty() ? origin_ : std::max(origin_, covered_.max());
  }

  /// Value at tick t (t must be > origin()).
  [[nodiscard]] TickValue value_at(Tick t) const;

  /// Event at a D tick, nullptr otherwise.
  [[nodiscard]] matching::EventDataPtr event_at(Tick t) const;

  /// Records an event. Idempotent for the same tick; upgrades L; forbidden
  /// over S. Ticks <= origin are ignored (stale knowledge).
  void set_data(Tick t, matching::EventDataPtr event);

  /// Records silence over [from, to]: fills Q gaps only; existing S/L/D in
  /// the range are left as-is (they are at least as strong).
  void set_silence(Tick from, Tick to);

  /// Records loss over [from, to]: fills Q gaps only.
  void set_lost(Tick from, Tick to);

  /// Pubend-only: rewrites [from, to] to L unconditionally, dropping events.
  void force_lost(Tick from, Tick to);

  /// The doubt horizon relative to `base`: the largest h >= base such that
  /// no tick in (base, h] is Q.
  [[nodiscard]] Tick doubt_horizon(Tick base) const;

  /// Q sub-ranges of [from, to] (what a curiosity stream would nack).
  [[nodiscard]] std::vector<TickRange> q_ranges(Tick from, Tick to) const;

  /// Knowledge items covering the known (non-Q) parts of [from, to], in
  /// tick order. S/L runs are emitted as single range items.
  [[nodiscard]] std::vector<KnowledgeItem> items(Tick from, Tick to) const;

  /// Applies a received knowledge item (clipped to ticks > origin).
  void apply(const KnowledgeItem& item);

  /// Invokes fn(tick, event) for each D tick in [from, to], in order.
  template <typename Fn>
  void for_each_data(Tick from, Tick to, const Fn& fn) const {
    for (std::size_t i = events_.lower_bound(from); i < events_.size(); ++i) {
      const EventRing::Item& item = events_.at(i);
      if (item.tick > to) break;
      fn(item.tick, item.event);
    }
  }

  /// Number of D ticks in [from, to].
  [[nodiscard]] std::size_t data_count(Tick from, Tick to) const {
    return events_.lower_bound(to + 1) - events_.lower_bound(from);
  }

  /// Forgets all knowledge at ticks <= t and advances origin to at least t.
  void discard_upto(Tick t);

  /// Retained D events (for cache-size accounting).
  [[nodiscard]] std::size_t retained_events() const { return events_.size(); }
  [[nodiscard]] std::size_t retained_event_bytes() const { return event_bytes_; }

 private:
  Tick origin_;
  IntervalSet covered_;  // union of silence_, lost_ and D points
  IntervalSet silence_;
  IntervalSet lost_;
  EventRing events_;  // the D window, in tick order
  std::size_t event_bytes_ = 0;
};

}  // namespace gryphon::routing
