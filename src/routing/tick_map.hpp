// TickMap — one node's knowledge of one pubend's stream.
//
// Conceptually a total function Tick -> {Q,S,D,L} that starts all-Q and
// monotonically gains knowledge; D ticks carry the event payload. Every
// knowledge stream in the system — the pubend's authoritative ladder, the
// caches at intermediate brokers, the SHB istream, per-subscriber catchup
// streams — is a TickMap plus protocol-specific cursors.
//
// Knowledge-upgrade rules (protocol invariants, checked):
//   Q -> S, Q -> D, Q -> L   normal accumulation
//   L -> D                   a downstream cache can still supply an event
//                            the pubend discarded; D is strictly better
//   S -> D, D -> S, S <-> L  forbidden: would contradict prior guarantees
// force_lost() is the pubend-side exception: the release protocol rewrites
// its own prefix to L, dropping payloads (that is what "discarding" means).
//
// discard_upto() models cache eviction / consumption: knowledge below the
// new origin is forgotten entirely (reverts to "don't ask me").
#pragma once

#include <functional>
#include <map>
#include <vector>

#include "matching/event.hpp"
#include "routing/ticks.hpp"
#include "util/assert.hpp"
#include "util/interval_set.hpp"
#include "util/time.hpp"

namespace gryphon::routing {

/// One unit of transferable knowledge: a D tick with its event, or an S/L
/// range. Produced by TickMap::items() and shipped in StreamDataMsg.
struct KnowledgeItem {
  TickValue value = TickValue::kS;  // kD, kS or kL (never kQ)
  TickRange range{0, 0};            // for kD, range.from == range.to
  matching::EventDataPtr event;     // set iff value == kD
};

class TickMap {
 public:
  /// Ticks <= origin are out of scope (consumed / before subscription start).
  explicit TickMap(Tick origin) : origin_(origin) {}

  [[nodiscard]] Tick origin() const { return origin_; }

  /// Highest tick with any knowledge (origin() if none).
  [[nodiscard]] Tick head() const {
    return covered_.empty() ? origin_ : std::max(origin_, covered_.max());
  }

  /// Value at tick t (t must be > origin()).
  [[nodiscard]] TickValue value_at(Tick t) const;

  /// Event at a D tick, nullptr otherwise.
  [[nodiscard]] matching::EventDataPtr event_at(Tick t) const;

  /// Records an event. Idempotent for the same tick; upgrades L; forbidden
  /// over S. Ticks <= origin are ignored (stale knowledge).
  void set_data(Tick t, matching::EventDataPtr event);

  /// Records silence over [from, to]: fills Q gaps only; existing S/L/D in
  /// the range are left as-is (they are at least as strong).
  void set_silence(Tick from, Tick to);

  /// Records loss over [from, to]: fills Q gaps only.
  void set_lost(Tick from, Tick to);

  /// Pubend-only: rewrites [from, to] to L unconditionally, dropping events.
  void force_lost(Tick from, Tick to);

  /// The doubt horizon relative to `base`: the largest h >= base such that
  /// no tick in (base, h] is Q.
  [[nodiscard]] Tick doubt_horizon(Tick base) const;

  /// Q sub-ranges of [from, to] (what a curiosity stream would nack).
  [[nodiscard]] std::vector<TickRange> q_ranges(Tick from, Tick to) const;

  /// Knowledge items covering the known (non-Q) parts of [from, to], in
  /// tick order. S/L runs are emitted as single range items.
  [[nodiscard]] std::vector<KnowledgeItem> items(Tick from, Tick to) const;

  /// Applies a received knowledge item (clipped to ticks > origin).
  void apply(const KnowledgeItem& item);

  /// Invokes fn(tick, event) for each D tick in [from, to], in order.
  void for_each_data(Tick from, Tick to,
                     const std::function<void(Tick, const matching::EventDataPtr&)>& fn) const;

  /// Number of D ticks in [from, to].
  [[nodiscard]] std::size_t data_count(Tick from, Tick to) const;

  /// Forgets all knowledge at ticks <= t and advances origin to at least t.
  void discard_upto(Tick t);

  /// Retained D events (for cache-size accounting).
  [[nodiscard]] std::size_t retained_events() const { return events_.size(); }
  [[nodiscard]] std::size_t retained_event_bytes() const { return event_bytes_; }

 private:
  Tick origin_;
  IntervalSet covered_;  // union of silence_, lost_ and D points
  IntervalSet silence_;
  IntervalSet lost_;
  std::map<Tick, matching::EventDataPtr> events_;
  std::size_t event_bytes_ = 0;
};

}  // namespace gryphon::routing
