// The four tick values of the extended knowledge stream (paper §3):
//   Q — unknown: this node has no information for the timestamp yet,
//   S — silence: no event at the timestamp, or it was filtered upstream,
//   D — data: an event published by an application,
//   L — lost: the pubend discarded whether this tick was S or D
//       (release protocol / early-release).
#pragma once

#include <cstdint>

namespace gryphon::routing {

enum class TickValue : std::uint8_t { kQ, kS, kD, kL };

constexpr char to_char(TickValue v) {
  switch (v) {
    case TickValue::kQ: return 'Q';
    case TickValue::kS: return 'S';
    case TickValue::kD: return 'D';
    case TickValue::kL: return 'L';
  }
  return '?';
}

}  // namespace gryphon::routing
