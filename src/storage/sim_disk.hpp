// Simulated durable disk (SSA-drive stand-in).
//
// Only timing, byte accounting and crash semantics live here; the *contents*
// being persisted are managed by the clients (LogVolume, Database), which
// keep a pending/durable split and advance it when a sync completes.
//
// Timing model: a sync covering `bytes` of dirty data completes at
//   max(now, disk_free) + bytes/bandwidth + sync_latency
// and the disk is busy until then, so concurrent syncs serialize (one
// spindle). `sync_latency` is the fixed cost of a forced write barrier; a
// battery-backed write cache (the §5.2 JMS configuration) is modeled by
// configuring a much smaller sync_latency.
//
// Crash semantics: crash() drops every outstanding completion callback —
// whatever the client had not yet been told is durable must be discarded by
// the client's own crash() handler. A crashed disk rejects new IO until
// restart() (a dead broker must not issue requests); NodeResources::restart
// brings the device back together with the node.
//
// Fault injection:
//  * inject_stall(d) freezes the spindle for `d` — every request issued
//    during or after the stall (and any whose start the stall overtakes)
//    completes at least `d` later. Models firmware hiccups / RAID battery
//    relearn cycles.
//  * drop_unsynced() silently discards every outstanding write completion
//    without taking the device down (torn sync / lost write). Clients must
//    be told via their own torn-sync handlers so they re-issue the lost
//    barriers.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "sim/scheduler.hpp"
#include "util/assert.hpp"
#include "util/time.hpp"

namespace gryphon::storage {

struct DiskConfig {
  SimDuration sync_latency = msec(4);
  double write_bandwidth_bytes_per_sec = 40e6;
  double read_bandwidth_bytes_per_sec = 60e6;
  SimDuration read_seek_latency = msec(6);
};

class SimDisk {
 public:
  SimDisk(sim::Scheduler& scheduler, std::string name, DiskConfig config = {});
  SimDisk(const SimDisk&) = delete;
  SimDisk& operator=(const SimDisk&) = delete;

  /// Schedules a write barrier for `bytes` of dirty data; `done` fires when
  /// the data is durable. Callbacks fire in issue order (one spindle).
  void write_and_sync(std::size_t bytes, std::function<void()> done);

  /// Schedules a read of `bytes` (one seek + sequential transfer, sharing
  /// the spindle with writes); `done` fires with the data "in memory".
  void read(std::size_t bytes, std::function<void()> done);

  /// Drops all outstanding completions (power loss) and marks the device
  /// crashed: further IO is an invariant violation until restart().
  void crash();

  /// Brings a crashed device back. Idempotent.
  void restart();

  [[nodiscard]] bool is_crashed() const { return crashed_; }

  /// Freezes the spindle for `duration`: outstanding and subsequent
  /// requests complete at least `duration` later. Legal while crashed (the
  /// device is simply still cold when it comes back).
  void inject_stall(SimDuration duration);

  /// Arms a seeded read-fault window: each of the next `count` read() calls
  /// eats a deterministic extra penalty drawn from [penalty_lo, penalty_hi]
  /// (a retried-sector / media-error stall on the read path — the data still
  /// arrives, late). Deterministic in (seed, read order); re-arming replaces
  /// any remaining budget. Chaos arms these across catchup windows, where
  /// PFS batch reads are the disk's hot read path.
  void arm_read_faults(int count, std::uint64_t seed, SimDuration penalty_lo,
                       SimDuration penalty_hi);

  /// Disarms any remaining read-fault budget.
  void clear_read_faults();

  /// Reads that actually drew a fault penalty (fired-at-least-once guards).
  [[nodiscard]] std::uint64_t read_faults_injected() const { return read_faults_; }

  /// Torn sync: every outstanding *write* completion is silently lost, but
  /// the device stays up (in-flight reads still complete). The client-side
  /// dirty data those completions covered is gone from the write path;
  /// clients re-issue via their torn-sync handlers
  /// (LogVolume/Database::on_torn_sync).
  void drop_unsynced();

  [[nodiscard]] std::uint64_t total_bytes_written() const { return bytes_written_; }
  /// Dirty bytes whose covering barrier actually completed, vs. bytes whose
  /// barrier was lost to a crash or torn sync before acking. Counted when
  /// the (simulated) completion fires, so `written == synced + dropped +
  /// in-flight` at any instant.
  [[nodiscard]] std::uint64_t total_synced_bytes() const { return bytes_synced_; }
  [[nodiscard]] std::uint64_t total_dropped_bytes() const { return bytes_dropped_; }
  [[nodiscard]] std::uint64_t total_bytes_read() const { return bytes_read_; }
  [[nodiscard]] std::uint64_t total_syncs() const { return syncs_; }
  [[nodiscard]] std::uint64_t total_reads() const { return reads_; }
  [[nodiscard]] SimDuration total_busy() const { return busy_; }
  [[nodiscard]] std::uint64_t total_stalls() const { return stalls_; }
  /// Cumulative injected stall time (sum of inject_stall durations).
  [[nodiscard]] SimDuration total_stall_time() const { return stall_time_; }
  [[nodiscard]] std::uint64_t total_torn_syncs() const { return dropped_syncs_; }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const DiskConfig& config() const { return config_; }

 private:
  /// Seeded penalty for the read fault just consumed from the window.
  [[nodiscard]] SimDuration draw_read_fault_penalty();

  sim::Scheduler& sim_;
  std::string name_;
  DiskConfig config_;
  SimTime free_at_ = 0;
  bool crashed_ = false;
  std::uint64_t generation_ = 0;   // bumped by crash(): drops all completions
  std::uint64_t sync_epoch_ = 0;   // bumped by drop_unsynced(): writes only
  std::uint64_t stalls_ = 0;
  SimDuration stall_time_ = 0;
  int read_fault_remaining_ = 0;
  std::uint64_t read_fault_seed_ = 0;
  std::uint64_t read_fault_drawn_ = 0;
  SimDuration read_fault_lo_ = 0;
  SimDuration read_fault_hi_ = 0;
  std::uint64_t read_faults_ = 0;
  std::uint64_t dropped_syncs_ = 0;
  std::uint64_t bytes_written_ = 0;
  std::uint64_t bytes_synced_ = 0;
  std::uint64_t bytes_dropped_ = 0;
  std::uint64_t bytes_read_ = 0;
  std::uint64_t syncs_ = 0;
  std::uint64_t reads_ = 0;
  SimDuration busy_ = 0;
};

}  // namespace gryphon::storage
