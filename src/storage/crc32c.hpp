// CRC32C (Castagnoli) — the frame checksum of the on-disk WAL format and
// the wire frames (src/wire/frame.*).
//
// Three implementations behind one function, all producing identical bits:
//  * slice-by-8 software tables (8 KiB, constexpr-built): the portable fast
//    path, ~4-6x the classic byte-at-a-time loop — this checksum runs twice
//    over every wire frame (encode + decode), so it is squarely on the
//    codec-tax hot path;
//  * x86 SSE4.2 CRC32 instructions, dispatched at runtime (the binary stays
//    runnable on CPUs without them);
//  * the byte-at-a-time loop, kept as the big-endian / tail fallback.
// The polynomial choice matches what real log formats use (iSCSI, ext4,
// RocksDB, LevelDB): better burst-error detection than CRC32 (IEEE).
#pragma once

#include <array>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>

namespace gryphon::storage {

namespace detail {
/// Reflected Castagnoli polynomial (0x1EDC6F41 bit-reversed).
constexpr std::uint32_t kCrc32cPoly = 0x82F63B78u;

constexpr std::array<std::array<std::uint32_t, 256>, 8> make_crc32c_tables() {
  std::array<std::array<std::uint32_t, 256>, 8> t{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) != 0 ? (c >> 1) ^ kCrc32cPoly : c >> 1;
    }
    t[0][i] = c;
  }
  // t[k][i]: the CRC contribution of byte value i seen k positions before
  // the end of an 8-byte block (slice-by-8).
  for (std::uint32_t k = 1; k < 8; ++k) {
    for (std::uint32_t i = 0; i < 256; ++i) {
      t[k][i] = (t[k - 1][i] >> 8) ^ t[0][t[k - 1][i] & 0xFFu];
    }
  }
  return t;
}

inline constexpr std::array<std::array<std::uint32_t, 256>, 8> kCrc32cTables =
    make_crc32c_tables();

/// Classic byte-at-a-time update (raw, no pre/post inversion).
inline std::uint32_t crc32c_bytes(const std::byte* p, std::size_t n,
                                  std::uint32_t crc) {
  for (std::size_t i = 0; i < n; ++i) {
    crc = kCrc32cTables[0][(crc ^ static_cast<std::uint32_t>(p[i])) & 0xFFu] ^
          (crc >> 8);
  }
  return crc;
}

inline std::uint32_t crc32c_sw(const std::byte* p, std::size_t n,
                               std::uint32_t crc) {
  if constexpr (std::endian::native == std::endian::little) {
    while (n >= 8) {
      std::uint64_t v;
      std::memcpy(&v, p, 8);
      v ^= crc;
      crc = kCrc32cTables[7][v & 0xFFu] ^ kCrc32cTables[6][(v >> 8) & 0xFFu] ^
            kCrc32cTables[5][(v >> 16) & 0xFFu] ^
            kCrc32cTables[4][(v >> 24) & 0xFFu] ^
            kCrc32cTables[3][(v >> 32) & 0xFFu] ^
            kCrc32cTables[2][(v >> 40) & 0xFFu] ^
            kCrc32cTables[1][(v >> 48) & 0xFFu] ^
            kCrc32cTables[0][(v >> 56) & 0xFFu];
      p += 8;
      n -= 8;
    }
  }
  return crc32c_bytes(p, n, crc);
}

#if defined(__x86_64__) && defined(__GNUC__)
__attribute__((target("sse4.2"))) inline std::uint32_t crc32c_hw(
    const std::byte* p, std::size_t n, std::uint32_t crc) {
  std::uint64_t c = crc;
  while (n >= 8) {
    std::uint64_t v;
    std::memcpy(&v, p, 8);
    c = __builtin_ia32_crc32di(c, v);
    p += 8;
    n -= 8;
  }
  crc = static_cast<std::uint32_t>(c);
  while (n > 0) {
    crc = __builtin_ia32_crc32qi(crc, static_cast<unsigned char>(*p));
    ++p;
    --n;
  }
  return crc;
}

inline bool crc32c_have_hw() {
  static const bool have = __builtin_cpu_supports("sse4.2");
  return have;
}
#endif
}  // namespace detail

/// CRC32C of `data`, continuing from a previous (finalized) `crc` so multi-
/// span frames can be checksummed without concatenation. crc32c("123456789")
/// == 0xE3069283 (the RFC 3720 known-answer vector; asserted in test_wal).
[[nodiscard]] inline std::uint32_t crc32c(std::span<const std::byte> data,
                                          std::uint32_t crc = 0) {
  crc = ~crc;
#if defined(__x86_64__) && defined(__GNUC__)
  if (detail::crc32c_have_hw()) {
    return ~detail::crc32c_hw(data.data(), data.size(), crc);
  }
#endif
  return ~detail::crc32c_sw(data.data(), data.size(), crc);
}

}  // namespace gryphon::storage
