// CRC32C (Castagnoli) — the frame checksum of the on-disk WAL format.
//
// Software table implementation (the container has no guaranteed SSE4.2 /
// ARM CRC extensions, and the WAL is not bandwidth-bound in the simulator).
// The polynomial choice matches what real log formats use (iSCSI, ext4,
// RocksDB, LevelDB): better burst-error detection than CRC32 (IEEE) and a
// hardware path on modern CPUs if we ever want one.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>

namespace gryphon::storage {

namespace detail {
/// Reflected Castagnoli polynomial (0x1EDC6F41 bit-reversed).
constexpr std::uint32_t kCrc32cPoly = 0x82F63B78u;

constexpr std::array<std::uint32_t, 256> make_crc32c_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) != 0 ? (c >> 1) ^ kCrc32cPoly : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

inline constexpr std::array<std::uint32_t, 256> kCrc32cTable = make_crc32c_table();
}  // namespace detail

/// CRC32C of `data`, continuing from a previous (finalized) `crc` so multi-
/// span frames can be checksummed without concatenation. crc32c("123456789")
/// == 0xE3069283 (the RFC 3720 known-answer vector; asserted in test_wal).
[[nodiscard]] inline std::uint32_t crc32c(std::span<const std::byte> data,
                                          std::uint32_t crc = 0) {
  crc = ~crc;
  for (const std::byte b : data) {
    crc = detail::kCrc32cTable[(crc ^ static_cast<std::uint32_t>(b)) & 0xFFu] ^
          (crc >> 8);
  }
  return ~crc;
}

}  // namespace gryphon::storage
