// Log Volume — the logger-based recovery subsystem of Bagchi et al. [8],
// which the paper's PFS and the PHB event log are built on.
//
// A LogVolume multiplexes multiple *log streams* onto a single append-only
// volume (one "file" / one disk). Per stream (paper §4.2):
//   * append(record) assigns a unique monotonically increasing index,
//   * chop(index) discards all records with index <= the argument,
//   * records are efficiently retrievable by index.
//
// Durability: appends are volatile until a sync() completes. Syncs are
// group-committed — while one disk barrier is in flight, further appends and
// sync requests accumulate and are covered by the next single barrier, which
// is what makes "sync every 200 events" cheap in the PFS microbenchmark.
//
// The LogVolume object itself survives a broker crash (it *is* the disk
// contents plus the dirty page cache); crash() rolls volatile state back to
// the durable prefix, exactly what a restart would find on disk.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "storage/sim_disk.hpp"
#include "util/assert.hpp"

namespace gryphon::storage {

using LogStreamId = std::uint32_t;
using LogIndex = std::uint64_t;

/// Sentinel: "no previous record" (the paper's ⊥ back-pointer).
constexpr LogIndex kNoIndex = 0;

/// Per-record volume overhead: stream id (4) + index (8) + length (4).
constexpr std::size_t kLogRecordHeaderBytes = 16;

class LogVolume {
 public:
  explicit LogVolume(SimDisk& disk) : disk_(disk) {}
  LogVolume(const LogVolume&) = delete;
  LogVolume& operator=(const LogVolume&) = delete;

  /// Creates (or reopens after recovery) a named stream.
  LogStreamId open_stream(const std::string& name);

  /// An empty payload buffer recycled from chopped records (capacity
  /// retained). Encode into it and hand it back via append(): steady-state
  /// appends then never touch the allocator.
  [[nodiscard]] std::vector<std::byte> acquire_buffer();

  /// Appends a record; returns its index (indices start at 1 and are dense
  /// per stream). Volatile until a subsequent sync() completes.
  LogIndex append(LogStreamId stream, std::vector<std::byte> payload);

  /// Requests durability of everything appended so far (on any stream).
  /// `on_durable` fires once a covering disk barrier completes. Multiple
  /// outstanding requests share barriers (group commit).
  void sync(std::function<void()> on_durable);

  /// Reads a record. Returns nullptr if the index was chopped, never
  /// existed, or was lost to a crash before syncing.
  [[nodiscard]] const std::vector<std::byte>* read(LogStreamId stream,
                                                   LogIndex index) const;

  /// Discards all records of `stream` with index <= `upto`. Chopping beyond
  /// the end is clamped; chopping frees both volatile and durable space.
  void chop(LogStreamId stream, LogIndex upto);

  /// First retained index (kNoIndex+1 if nothing chopped), one past last.
  [[nodiscard]] LogIndex first_index(LogStreamId stream) const;
  [[nodiscard]] LogIndex next_index(LogStreamId stream) const;

  /// Index of the last *durable* record of the stream (kNoIndex if none).
  [[nodiscard]] LogIndex durable_index(LogStreamId stream) const;

  /// Broker crash: discard unsynced appends and pending sync waiters.
  void crash();

  /// Torn sync (SimDisk::drop_unsynced on the underlying disk): the barrier
  /// in flight never completed, but the process is still up — the appends it
  /// covered are dirty again and a fresh barrier is issued, so every pending
  /// sync() waiter still eventually fires. Call right after drop_unsynced().
  void on_torn_sync();

  /// Bytes currently retained in the volume (payload + headers); the
  /// early-release experiments report reclaimed storage from this.
  [[nodiscard]] std::uint64_t retained_bytes() const { return retained_bytes_; }
  [[nodiscard]] std::uint64_t appended_records() const { return appended_records_; }
  [[nodiscard]] std::uint64_t appended_bytes() const { return appended_bytes_; }
  /// Disk barriers issued; appends/barriers is the group-commit batch size.
  [[nodiscard]] std::uint64_t barrier_batches() const { return barrier_batches_; }

 private:
  struct Stream {
    std::string name;
    LogIndex base = 1;             // index of records_.front()
    LogIndex durable = kNoIndex;   // highest durable index
    std::deque<std::vector<std::byte>> records;
  };

  struct SyncWaiter {
    std::uint64_t watermark;  // append sequence the waiter must cover
    std::function<void()> callback;
  };

  Stream& stream(LogStreamId id) {
    GRYPHON_CHECK_MSG(id < streams_.size(), "unknown log stream " << id);
    return streams_[id];
  }
  [[nodiscard]] const Stream& stream(LogStreamId id) const {
    GRYPHON_CHECK_MSG(id < streams_.size(), "unknown log stream " << id);
    return streams_[id];
  }

  void maybe_start_barrier();
  void on_barrier_complete(std::uint64_t watermark,
                           std::vector<std::pair<LogStreamId, LogIndex>> covered);

  /// Returns a retired record's storage to the buffer pool (bounded).
  void recycle(std::vector<std::byte>&& buf) {
    if (pool_.size() < kMaxPooledBuffers) {
      buf.clear();
      pool_.push_back(std::move(buf));
    }
  }

  static constexpr std::size_t kMaxPooledBuffers = 256;

  SimDisk& disk_;
  std::vector<Stream> streams_;
  std::unordered_map<std::string, LogStreamId> by_name_;
  std::vector<std::vector<std::byte>> pool_;

  std::uint64_t generation_ = 0;     // bumped by crash(); stale barriers drop
  std::uint64_t append_seq_ = 0;     // counts appends, for sync watermarks
  std::uint64_t pending_bytes_ = 0;  // dirty payload bytes not yet under a barrier
  std::uint64_t pending_headers_ = 0;  // appends since the last barrier start:
                                       // their headers are encoded and charged
                                       // in one batch when the barrier begins
  bool barrier_in_flight_ = false;
  std::deque<SyncWaiter> waiters_;

  std::uint64_t retained_bytes_ = 0;
  std::uint64_t appended_records_ = 0;
  std::uint64_t appended_bytes_ = 0;
  std::uint64_t barrier_batches_ = 0;
};

}  // namespace gryphon::storage
