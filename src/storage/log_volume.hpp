// Log Volume — the logger-based recovery subsystem of Bagchi et al. [8],
// which the paper's PFS and the PHB event log are built on.
//
// A LogVolume multiplexes multiple *log streams* onto a single append-only
// volume (one "file" / one disk). Per stream (paper §4.2):
//   * append(record) assigns a unique monotonically increasing index,
//   * chop(index) discards all records with index <= the argument,
//   * records are efficiently retrievable by index.
//
// Durability: appends are volatile until a sync() completes. Syncs are
// group-committed — while one disk barrier is in flight, further appends and
// sync requests accumulate and are covered by the next single barrier, which
// is what makes "sync every 200 events" cheap in the PFS microbenchmark.
//
// Persistence is byte-accurate (DESIGN.md §4.4): every append/open/chop is
// also written as a CRC32C frame into a segmented Wal, and crash() rebuilds
// every stream *from those bytes* — scan the segments, stop at the first
// torn/corrupt frame, truncate the tail, replay. The SimDisk timing charge
// stays the original logical model (payload + kLogRecordHeaderBytes per
// record), so deterministic schedules are unchanged by the wire format.
//
// The LogVolume object itself survives a broker crash (it *is* the disk
// contents plus the dirty page cache); crash() rolls volatile state back to
// what the Wal's surviving bytes decode to — exactly what a restart finds.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "storage/sim_disk.hpp"
#include "storage/wal.hpp"
#include "util/assert.hpp"
#include "util/metrics.hpp"

namespace gryphon::storage {

/// Per-record *logical* volume overhead charged to the disk timing model:
/// stream id (4) + index (8) + length (4). The physical wire frame is
/// wire::kFrameHeaderBytes (21); keeping the timing charge separate keeps
/// every pre-existing deterministic schedule identical (DESIGN.md §4.4).
constexpr std::size_t kLogRecordHeaderBytes = 16;

class LogVolume {
 public:
  /// Recovery/garbage instruments, bound by NodeResources so torn-tail
  /// truncations surface as registry *counters* (bench JSON metrics block).
  struct Instruments {
    MetricsRegistry::Counter* recoveries = nullptr;
    MetricsRegistry::Counter* recovery_truncated_bytes = nullptr;
    MetricsRegistry::Counter* torn_tail_recoveries = nullptr;
    Histogram* group_commit_bytes = nullptr;
  };

  explicit LogVolume(SimDisk& disk, StorageOptions options = {},
                     std::string wal_prefix = "log");
  LogVolume(const LogVolume&) = delete;
  LogVolume& operator=(const LogVolume&) = delete;

  void bind_instruments(const Instruments& instruments) {
    instruments_ = instruments;
  }

  /// Creates (or reopens after recovery) a named stream.
  LogStreamId open_stream(const std::string& name);

  /// An empty payload buffer recycled from chopped records (capacity
  /// retained). Encode into it and hand it back via append(): steady-state
  /// appends then never touch the allocator.
  [[nodiscard]] std::vector<std::byte> acquire_buffer();

  /// Appends a record; returns its index (indices start at 1 and are dense
  /// per stream). Volatile until a subsequent sync() completes.
  LogIndex append(LogStreamId stream, std::vector<std::byte> payload);

  /// Requests durability of everything appended so far (on any stream).
  /// `on_durable` fires once a covering disk barrier completes. Multiple
  /// outstanding requests share barriers (group commit).
  void sync(std::function<void()> on_durable);

  /// Reads a record. Returns nullptr if the index was chopped, never
  /// existed, or was lost to a crash before syncing.
  [[nodiscard]] const std::vector<std::byte>* read(LogStreamId stream,
                                                   LogIndex index) const;

  /// Discards all records of `stream` with index <= `upto`. Chopping beyond
  /// the end is clamped; chopping frees both volatile and durable space.
  void chop(LogStreamId stream, LogIndex upto);

  /// First retained index (kNoIndex+1 if nothing chopped), one past last.
  [[nodiscard]] LogIndex first_index(LogStreamId stream) const;
  [[nodiscard]] LogIndex next_index(LogStreamId stream) const;

  /// Index of the last *durable* record of the stream (kNoIndex if none).
  [[nodiscard]] LogIndex durable_index(LogStreamId stream) const;

  /// Broker crash: the page cache is gone. The Wal truncates its segments
  /// to the surviving byte prefix (durable, plus a seeded slice of the
  /// in-flight barrier — see set_crash_entropy) and every stream is rebuilt
  /// from the surviving frames alone.
  void crash();

  /// Fresh-process adoption of pre-existing WAL files: rebuilds every stream
  /// from whatever bytes the backend holds, with NO watermark truncation
  /// (this object's in-memory watermarks are all zero — crash() here would
  /// wipe the inherited bytes). The scan still truncates at the first
  /// torn/corrupt frame. This is the real-restart path: a new gryphon_broker
  /// process constructing over a --wal-dir its predecessor wrote.
  void adopt();

  /// Seeds how much of the submitted-but-unacked WAL region the next crash
  /// preserves (0 = durable prefix only). Chaos schedules and the recovery
  /// fuzzer use this to land crash points mid-frame.
  void set_crash_entropy(std::uint64_t entropy) { wal_.set_crash_entropy(entropy); }

  /// Torn sync (SimDisk::drop_unsynced on the underlying disk): the barrier
  /// in flight never completed, but the process is still up — the appends it
  /// covered are dirty again and a fresh barrier is issued, so every pending
  /// sync() waiter still eventually fires. Call right after drop_unsynced().
  void on_torn_sync();

  /// Bytes currently retained in the volume (payload + headers); the
  /// early-release experiments report reclaimed storage from this.
  [[nodiscard]] std::uint64_t retained_bytes() const { return retained_bytes_; }
  [[nodiscard]] std::uint64_t appended_records() const { return appended_records_; }
  [[nodiscard]] std::uint64_t appended_bytes() const { return appended_bytes_; }
  /// Disk barriers issued; appends/barriers is the group-commit batch size.
  [[nodiscard]] std::uint64_t barrier_batches() const { return barrier_batches_; }

  [[nodiscard]] const Wal& wal() const { return wal_; }
  [[nodiscard]] Wal& wal() { return wal_; }

 private:
  struct Stream {
    std::string name;
    LogIndex base = 1;             // index of records_.front()
    LogIndex durable = kNoIndex;   // highest durable index
    std::deque<std::vector<std::byte>> records;
  };

  struct SyncWaiter {
    std::uint64_t watermark;  // append sequence the waiter must cover
    std::function<void()> callback;
  };

  class Rebuild;  // Wal::Delegate rebuilding streams_ during crash()/adopt()

  /// Shared body of crash()/adopt(): wipe volatile state, rescan the Wal.
  void rebuild_from_wal(bool adopt);

  Stream& stream(LogStreamId id) {
    GRYPHON_CHECK_MSG(id < streams_.size(), "unknown log stream " << id);
    return streams_[id];
  }
  [[nodiscard]] const Stream& stream(LogStreamId id) const {
    GRYPHON_CHECK_MSG(id < streams_.size(), "unknown log stream " << id);
    return streams_[id];
  }

  void maybe_start_barrier();
  void on_barrier_complete(std::uint64_t watermark,
                           std::vector<std::pair<LogStreamId, LogIndex>> covered);
  /// Ensures streams_ has a slot for `id` named `name` (recovery scan).
  Stream& ensure_stream(LogStreamId id, const std::string& name);
  /// Drops records with index <= upto from the in-memory deque (no frame).
  void drop_prefix(Stream& s, LogIndex upto);

  /// Returns a retired record's storage to the buffer pool (bounded).
  void recycle(std::vector<std::byte>&& buf) {
    if (pool_.size() < kMaxPooledBuffers) {
      buf.clear();
      pool_.push_back(std::move(buf));
    }
  }

  static constexpr std::size_t kMaxPooledBuffers = 256;

  SimDisk& disk_;
  std::unique_ptr<StorageBackend> backend_;
  Wal wal_;
  Instruments instruments_;
  std::vector<Stream> streams_;
  std::unordered_map<std::string, LogStreamId> by_name_;
  std::vector<std::vector<std::byte>> pool_;

  std::uint64_t generation_ = 0;     // bumped by crash(); stale barriers drop
  std::uint64_t append_seq_ = 0;     // counts appends, for sync watermarks
  std::uint64_t pending_bytes_ = 0;  // dirty payload bytes not yet under a barrier
  std::uint64_t pending_headers_ = 0;  // appends since the last barrier start:
                                       // their headers are encoded and charged
                                       // in one batch when the barrier begins
  bool barrier_in_flight_ = false;
  std::deque<SyncWaiter> waiters_;

  std::uint64_t retained_bytes_ = 0;
  std::uint64_t appended_records_ = 0;
  std::uint64_t appended_bytes_ = 0;
  std::uint64_t barrier_batches_ = 0;
};

}  // namespace gryphon::storage
