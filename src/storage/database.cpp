#include "storage/database.hpp"

namespace gryphon::storage {

Database::Database(SimDisk& disk, int connections) : disk_(disk) {
  GRYPHON_CHECK(connections >= 1);
  conns_.resize(static_cast<std::size_t>(connections));
}

void Database::commit(int connection, std::vector<Put> puts,
                      std::function<void()> on_committed) {
  GRYPHON_CHECK(connection >= 0 && connection < static_cast<int>(conns_.size()));
  GRYPHON_CHECK(!puts.empty());
  conns_[static_cast<std::size_t>(connection)].queue.push_back(
      Txn{std::move(puts), std::move(on_committed)});
  maybe_start_commit(connection);
}

std::size_t Database::txn_bytes(const Txn& txn) {
  // Row image plus a fixed per-row and per-transaction log overhead,
  // approximating a write-ahead-logged RDBMS.
  constexpr std::size_t kPerTxnOverhead = 64;
  constexpr std::size_t kPerRowOverhead = 32;
  std::size_t bytes = kPerTxnOverhead;
  for (const auto& put : txn.puts) {
    bytes += kPerRowOverhead + put.table.size() + put.key.size() + put.value.size();
  }
  return bytes;
}

void Database::maybe_start_commit(int connection) {
  Connection& conn = conns_[static_cast<std::size_t>(connection)];
  if (conn.busy || conn.queue.empty()) return;
  conn.busy = true;

  // Explicit batching: everything waiting on this connection goes into one
  // database transaction / one commit barrier (paper §5.2). The batch is
  // parked on the connection (not moved into the callback) so a torn sync
  // can push it back and retry.
  conn.inflight.clear();
  while (!conn.queue.empty()) {
    conn.inflight.push_back(std::move(conn.queue.front()));
    conn.queue.pop_front();
  }
  std::size_t bytes = 0;
  for (const auto& txn : conn.inflight) bytes += txn_bytes(txn);
  // Express per-transaction engine work as equivalent device occupancy so
  // it is shared (serialized) across connections like the DB log is.
  bytes += static_cast<std::size_t>(
      static_cast<double>(per_txn_overhead_) * 1e-6 *
      disk_.config().write_bandwidth_bytes_per_sec *
      static_cast<double>(conn.inflight.size()));

  const std::uint64_t gen = generation_;
  ++barriers_;
  disk_.write_and_sync(bytes, [this, gen, connection] {
    if (gen != generation_) return;  // crashed mid-commit: nothing applied
    Connection& conn = conns_[static_cast<std::size_t>(connection)];
    std::vector<Txn> batch = std::move(conn.inflight);
    conn.inflight.clear();
    for (auto& txn : batch) {
      for (auto& put : txn.puts) {
        if (put.value.empty()) {
          tables_[put.table].erase(put.key);
        } else {
          tables_[put.table][put.key] = std::move(put.value);
        }
      }
      ++committed_txns_;
    }
    conn.busy = false;
    // Callbacks may enqueue follow-up transactions; run them after state is
    // applied and the connection freed.
    for (auto& txn : batch) {
      if (txn.on_committed) txn.on_committed();
    }
    maybe_start_commit(connection);
  });
}

std::optional<std::vector<std::byte>> Database::get(const std::string& table,
                                                    const std::string& key) const {
  auto t = tables_.find(table);
  if (t == tables_.end()) return std::nullopt;
  auto r = t->second.find(key);
  if (r == t->second.end()) return std::nullopt;
  return r->second;
}

std::vector<std::pair<std::string, std::vector<std::byte>>> Database::scan(
    const std::string& table) const {
  std::vector<std::pair<std::string, std::vector<std::byte>>> out;
  auto t = tables_.find(table);
  if (t == tables_.end()) return out;
  out.reserve(t->second.size());
  for (const auto& [k, v] : t->second) out.emplace_back(k, v);
  return out;
}

void Database::crash() {
  ++generation_;
  for (Connection& conn : conns_) {
    conn.queue.clear();
    conn.inflight.clear();
    conn.busy = false;
  }
}

void Database::on_torn_sync() {
  ++generation_;  // a completion that somehow survives the drop is stale
  for (Connection& conn : conns_) {
    if (!conn.busy) continue;
    // The lost batch goes back to the front, in order, and is re-committed.
    for (auto it = conn.inflight.rbegin(); it != conn.inflight.rend(); ++it) {
      conn.queue.push_front(std::move(*it));
    }
    conn.inflight.clear();
    conn.busy = false;
  }
  for (int c = 0; c < static_cast<int>(conns_.size()); ++c) {
    maybe_start_commit(c);
  }
}

}  // namespace gryphon::storage
