#include "storage/database.hpp"

#include "util/byte_buffer.hpp"
#include "util/logging.hpp"

namespace gryphon::storage {

Database::Database(SimDisk& disk, int connections, StorageOptions options,
                   std::string wal_prefix)
    : disk_(disk),
      options_(options),
      backend_(make_backend(options, disk.name() + "." + wal_prefix)),
      wal_(*backend_, stable_node_id(disk.name()), options.segment_bytes) {
  GRYPHON_CHECK(connections >= 1);
  conns_.resize(static_cast<std::size_t>(connections));
}

void Database::commit(int connection, std::vector<Put> puts,
                      std::function<void()> on_committed) {
  GRYPHON_CHECK(connection >= 0 && connection < static_cast<int>(conns_.size()));
  GRYPHON_CHECK(!puts.empty());
  conns_[static_cast<std::size_t>(connection)].queue.push_back(
      Txn{std::move(puts), std::move(on_committed)});
  maybe_start_commit(connection);
}

std::size_t Database::txn_bytes(const Txn& txn) {
  // Row image plus a fixed per-row and per-transaction log overhead,
  // approximating a write-ahead-logged RDBMS.
  constexpr std::size_t kPerTxnOverhead = 64;
  constexpr std::size_t kPerRowOverhead = 32;
  std::size_t bytes = kPerTxnOverhead;
  for (const auto& put : txn.puts) {
    bytes += kPerRowOverhead + put.table.size() + put.key.size() + put.value.size();
  }
  return bytes;
}

std::uint64_t Database::maybe_write_snapshot(int connection) {
  if (snapshot_inflight_ || wal_.live_bytes() <= options_.db_compact_bytes) return 0;
  for (int c = 0; c < static_cast<int>(conns_.size()); ++c) {
    // A busy connection has a serialized-but-unapplied batch at an earlier
    // WAL offset; a snapshot now would not contain it, and replay would
    // resurrect the pre-batch state. Wait for a quiet moment.
    if (c != connection && conns_[static_cast<std::size_t>(c)].busy) return 0;
  }
  BufWriter w;
  w.put_u32(static_cast<std::uint32_t>(tables_.size()));
  for (const auto& [table, rows] : tables_) {
    w.put_string(table);
    w.put_u32(static_cast<std::uint32_t>(rows.size()));
    for (const auto& [key, value] : rows) {
      w.put_string(key);
      w.put_u32(static_cast<std::uint32_t>(value.size()));
      w.put_bytes(value);
    }
  }
  wal_.append(wire::FrameKind::kDbSnapshot, 0, ++snapshot_seq_, w.bytes());
  snapshot_inflight_ = true;
  return wal_.active_segment_seq();
}

void Database::maybe_start_commit(int connection) {
  Connection& conn = conns_[static_cast<std::size_t>(connection)];
  if (conn.busy || conn.queue.empty()) return;
  conn.busy = true;

  // Explicit batching: everything waiting on this connection goes into one
  // database transaction / one commit barrier (paper §5.2). The batch is
  // parked on the connection (not moved into the callback) so a torn sync
  // can push it back and retry.
  conn.inflight.clear();
  while (!conn.queue.empty()) {
    conn.inflight.push_back(std::move(conn.queue.front()));
    conn.queue.pop_front();
  }
  std::size_t bytes = 0;
  for (const auto& txn : conn.inflight) bytes += txn_bytes(txn);
  // Express per-transaction engine work as equivalent device occupancy so
  // it is shared (serialized) across connections like the DB log is.
  bytes += static_cast<std::size_t>(
      static_cast<double>(per_txn_overhead_) * 1e-6 *
      disk_.config().write_bandwidth_bytes_per_sec *
      static_cast<double>(conn.inflight.size()));

  // Serialize the batch into the WAL at barrier-issue time: the frame's
  // bytes are what this barrier physically makes durable. Opportunistic
  // snapshot compaction rides the same barrier when the WAL has outgrown
  // its budget and every other connection is idle.
  const std::uint64_t snapshot_keep_seq = maybe_write_snapshot(connection);
  BufWriter w;
  w.put_u32(static_cast<std::uint32_t>(conn.inflight.size()));
  for (const auto& txn : conn.inflight) {
    w.put_u32(static_cast<std::uint32_t>(txn.puts.size()));
    for (const auto& put : txn.puts) {
      w.put_string(put.table);
      w.put_string(put.key);
      w.put_u32(static_cast<std::uint32_t>(put.value.size()));
      w.put_bytes(put.value);
    }
  }
  wal_.append(wire::FrameKind::kDbBatch, 0, ++batch_seq_, w.bytes());
  const std::uint64_t wal_mark = wal_.tail_offset();
  wal_.mark_submitted(wal_mark);

  const std::uint64_t gen = generation_;
  ++barriers_;
  disk_.write_and_sync(bytes, [this, gen, connection, wal_mark, snapshot_keep_seq] {
    if (gen != generation_) return;  // crashed mid-commit: nothing applied
    wal_.mark_durable(wal_mark);
    if (snapshot_keep_seq != 0) {
      wal_.drop_segments_below(snapshot_keep_seq);
      snapshot_inflight_ = false;
      ++compactions_;
    }
    Connection& conn = conns_[static_cast<std::size_t>(connection)];
    std::vector<Txn> batch = std::move(conn.inflight);
    conn.inflight.clear();
    for (auto& txn : batch) {
      apply_puts(txn.puts);
      ++committed_txns_;
    }
    conn.busy = false;
    // Callbacks may enqueue follow-up transactions; run them after state is
    // applied and the connection freed.
    for (auto& txn : batch) {
      if (txn.on_committed) txn.on_committed();
    }
    maybe_start_commit(connection);
  });
}

void Database::apply_puts(std::vector<Put>& puts) {
  for (auto& put : puts) {
    if (put.value.empty()) {
      tables_[put.table].erase(put.key);
    } else {
      tables_[put.table][put.key] = std::move(put.value);
    }
  }
}

std::optional<std::vector<std::byte>> Database::get(const std::string& table,
                                                    const std::string& key) const {
  auto t = tables_.find(table);
  if (t == tables_.end()) return std::nullopt;
  auto r = t->second.find(key);
  if (r == t->second.end()) return std::nullopt;
  return r->second;
}

std::vector<std::pair<std::string, std::vector<std::byte>>> Database::scan(
    const std::string& table) const {
  std::vector<std::pair<std::string, std::vector<std::byte>>> out;
  auto t = tables_.find(table);
  if (t == tables_.end()) return out;
  out.reserve(t->second.size());
  for (const auto& [k, v] : t->second) out.emplace_back(k, v);
  return out;
}

std::vector<std::pair<std::string, std::vector<std::byte>>> Database::scan_prefix(
    const std::string& table, const std::string& prefix) const {
  std::vector<std::pair<std::string, std::vector<std::byte>>> out;
  auto t = tables_.find(table);
  if (t == tables_.end()) return out;
  // The table is an ordered index: seek to the first candidate key and walk
  // forward until a key leaves the prefix. Cost is O(log n + hits), never a
  // full-table pass.
  for (auto r = t->second.lower_bound(prefix); r != t->second.end(); ++r) {
    if (r->first.compare(0, prefix.size(), prefix) != 0) break;
    out.emplace_back(r->first, r->second);
  }
  return out;
}

/// Rebuilds tables_ from surviving frames: the latest surviving snapshot
/// resets the image, each batch after it applies last-write-wins puts.
/// Frames before a snapshot re-apply harmlessly (the snapshot supersedes
/// them); duplicate batches from torn-sync retries are idempotent.
class Database::Rebuild final : public Wal::Delegate {
 public:
  explicit Rebuild(Database& db) : db_(db) {}

  void on_stream(const wire::StreamSnapshot&) override {}

  void on_frame(const wire::FrameView& frame) override {
    BufReader r(frame.payload);
    switch (frame.kind) {
      case wire::FrameKind::kDbSnapshot: {
        db_.tables_.clear();
        const auto ntables = r.get_u32();
        for (std::uint32_t t = 0; t < ntables; ++t) {
          auto& rows = db_.tables_[r.get_string()];
          const auto nrows = r.get_u32();
          for (std::uint32_t i = 0; i < nrows; ++i) {
            std::string key = r.get_string();
            const auto len = r.get_u32();
            const auto bytes = r.get_bytes(len);
            rows[std::move(key)].assign(bytes.begin(), bytes.end());
          }
        }
        break;
      }
      case wire::FrameKind::kDbBatch: {
        const auto ntxns = r.get_u32();
        for (std::uint32_t t = 0; t < ntxns; ++t) {
          const auto nputs = r.get_u32();
          for (std::uint32_t i = 0; i < nputs; ++i) {
            Put put;
            put.table = r.get_string();
            put.key = r.get_string();
            const auto len = r.get_u32();
            const auto bytes = r.get_bytes(len);
            put.value.assign(bytes.begin(), bytes.end());
            if (put.value.empty()) {
              db_.tables_[put.table].erase(put.key);
            } else {
              db_.tables_[put.table][put.key] = std::move(put.value);
            }
          }
        }
        break;
      }
      case wire::FrameKind::kOpenStream:
      case wire::FrameKind::kAppend:
      case wire::FrameKind::kChop:
        GRYPHON_CHECK_MSG(false, "log-volume frame in a database WAL");
    }
  }

 private:
  Database& db_;
};

void Database::crash() { rebuild_from_wal(/*adopt=*/false); }

void Database::adopt() { rebuild_from_wal(/*adopt=*/true); }

void Database::rebuild_from_wal(bool adopt) {
  ++generation_;
  for (Connection& conn : conns_) {
    conn.queue.clear();
    conn.inflight.clear();
    conn.busy = false;
  }
  snapshot_inflight_ = false;
  tables_.clear();

  Rebuild rebuild(*this);
  // Adoption rescans the backend's bytes as-is (no watermark truncation —
  // the previous process's watermarks are gone); see LogVolume::adopt.
  const Wal::RecoveryStats stats =
      adopt ? wal_.replay(rebuild) : wal_.crash_and_recover(rebuild);

  if (instruments_.recoveries != nullptr) instruments_.recoveries->inc();
  if (stats.truncated_bytes > 0) {
    if (instruments_.recovery_truncated_bytes != nullptr) {
      instruments_.recovery_truncated_bytes->inc(stats.truncated_bytes);
    }
    if (instruments_.torn_tail_recoveries != nullptr) {
      instruments_.torn_tail_recoveries->inc();
    }
    GRYPHON_LOG(kWarn, disk_.name(),
                "torn DB WAL tail truncated on recovery: "
                    << stats.truncated_bytes << " bytes at "
                    << Wal::format_corruption(stats.corruption));
  }
}

void Database::on_torn_sync() {
  ++generation_;  // a completion that somehow survives the drop is stale
  // A pending snapshot's barrier died with the tear; its frame stays in the
  // WAL (harmless — a future snapshot supersedes it) but compaction must
  // not drop the segments it was meant to cover.
  snapshot_inflight_ = false;
  for (Connection& conn : conns_) {
    if (!conn.busy) continue;
    // The lost batch goes back to the front, in order, and is re-committed.
    for (auto it = conn.inflight.rbegin(); it != conn.inflight.rend(); ++it) {
      conn.queue.push_front(std::move(*it));
    }
    conn.inflight.clear();
    conn.busy = false;
  }
  for (int c = 0; c < static_cast<int>(conns_.size()); ++c) {
    maybe_start_commit(c);
  }
}

}  // namespace gryphon::storage
