// StorageBackend — where WAL segment bytes actually live.
//
// The SimDisk stays the *timing* model (barrier latency, bandwidth, torn
// syncs); a StorageBackend is the *contents* model: an ordered set of
// append-only segments the recovery scanner reads back after a crash.
//
//  * MemoryBackend (default): segments are std::vector<std::byte> — tier-1
//    tests stay hermetic and deterministic, no filesystem involved.
//  * FileBackend (behind StorageOptions::file_dir): segments are real
//    "<prefix>-<seq>.wal" files, so a recovery scan genuinely round-trips
//    through the OS. Used by bench_recovery_fuzz --wal-dir.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace gryphon::storage {

struct StorageOptions {
  /// Roll the active segment once it reaches this many bytes.
  std::size_t segment_bytes = 256 * 1024;
  /// Snapshot-compact the Database WAL once its live bytes exceed this.
  std::size_t db_compact_bytes = 1u << 20;
  /// When non-empty, WAL segments are real files under this directory
  /// (created if missing) instead of in-memory vectors.
  std::string file_dir;
};

class StorageBackend {
 public:
  virtual ~StorageBackend() = default;

  virtual void create_segment(std::uint64_t seq) = 0;
  virtual void append(std::uint64_t seq, std::span<const std::byte> bytes) = 0;
  /// Discards everything past `new_size` (torn-tail truncation).
  virtual void truncate(std::uint64_t seq, std::size_t new_size) = 0;
  virtual void drop_segment(std::uint64_t seq) = 0;

  /// Segment sequence numbers in ascending order (the recovery scan order).
  [[nodiscard]] virtual std::vector<std::uint64_t> segments() const = 0;
  [[nodiscard]] virtual std::vector<std::byte> load(std::uint64_t seq) const = 0;
  [[nodiscard]] virtual std::size_t size(std::uint64_t seq) const = 0;
};

class MemoryBackend final : public StorageBackend {
 public:
  void create_segment(std::uint64_t seq) override;
  void append(std::uint64_t seq, std::span<const std::byte> bytes) override;
  void truncate(std::uint64_t seq, std::size_t new_size) override;
  void drop_segment(std::uint64_t seq) override;
  [[nodiscard]] std::vector<std::uint64_t> segments() const override;
  [[nodiscard]] std::vector<std::byte> load(std::uint64_t seq) const override;
  [[nodiscard]] std::size_t size(std::uint64_t seq) const override;

 private:
  std::map<std::uint64_t, std::vector<std::byte>> segs_;
};

class FileBackend final : public StorageBackend {
 public:
  /// Segments live at `<dir>/<prefix>-<seq>.wal`; `dir` is created if
  /// missing. Pre-existing files for `prefix` are adopted (recovery).
  FileBackend(std::string dir, std::string prefix);

  void create_segment(std::uint64_t seq) override;
  void append(std::uint64_t seq, std::span<const std::byte> bytes) override;
  void truncate(std::uint64_t seq, std::size_t new_size) override;
  void drop_segment(std::uint64_t seq) override;
  [[nodiscard]] std::vector<std::uint64_t> segments() const override;
  [[nodiscard]] std::vector<std::byte> load(std::uint64_t seq) const override;
  [[nodiscard]] std::size_t size(std::uint64_t seq) const override;

 private:
  [[nodiscard]] std::string path(std::uint64_t seq) const;

  std::string dir_;
  std::string prefix_;
};

/// Builds the backend `options` asks for; `prefix` namespaces one WAL's
/// files within a shared directory (e.g. "phb-log", "shb0-db").
std::unique_ptr<StorageBackend> make_backend(const StorageOptions& options,
                                             const std::string& prefix);

/// Deterministic 32-bit FNV-1a of a node name — the node id stamped into
/// segment headers (self-describing files, stable across runs/platforms).
[[nodiscard]] std::uint32_t stable_node_id(std::string_view name);

}  // namespace gryphon::storage
