// Database tables with transactional, batched commits (DB2 stand-in).
//
// The SHB keeps latestDelivered(p), released(s,p), PFS metadata and (for the
// JMS layer) subscriber checkpoint tokens "in database tables" (paper §4.1,
// §5.2). What the experiments depend on is the *commit* behaviour:
//
//  * a transaction's puts become visible to recovery only after its commit
//    barrier completes on disk,
//  * transactions issued on one connection commit serially,
//  * a connection batches all transactions waiting on it into a single
//    commit (the explicit batching the paper uses to reach 7.6K ev/s with
//    200 JMS auto-ack subscribers over 4 JDBC connections),
//  * commit cost is dominated by the disk barrier — with a battery-backed
//    write cache (their SSA controller) the barrier is cheap.
//
// Persistence is byte-accurate (DESIGN.md §4.4): every commit batch is one
// CRC32C-framed WAL record written at barrier-issue time, and crash()
// rebuilds the tables by replaying the surviving frames (snapshot frame
// first if one survived, then the batches after it). The WAL is compacted
// by writing a full-table snapshot frame once it outgrows
// StorageOptions::db_compact_bytes — only while no other connection has a
// commit in flight, so no unapplied batch can precede the snapshot. The
// SimDisk timing charge stays the original logical txn_bytes model.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "storage/sim_disk.hpp"
#include "storage/wal.hpp"
#include "util/assert.hpp"
#include "util/metrics.hpp"

namespace gryphon::storage {

class Database {
 public:
  struct Put {
    std::string table;
    std::string key;
    std::vector<std::byte> value;  // empty value deletes the row
  };

  /// Recovery instruments (shared counter slots with the LogVolume's, so
  /// wal.* totals cover both WALs of a node).
  struct Instruments {
    MetricsRegistry::Counter* recoveries = nullptr;
    MetricsRegistry::Counter* recovery_truncated_bytes = nullptr;
    MetricsRegistry::Counter* torn_tail_recoveries = nullptr;
  };

  /// `connections` models the pool of JDBC connections, each with its own
  /// serial commit thread.
  Database(SimDisk& disk, int connections = 1, StorageOptions options = {},
           std::string wal_prefix = "db");

  void bind_instruments(const Instruments& instruments) {
    instruments_ = instruments;
  }

  /// Per-transaction engine work (row update + log-record path), charged as
  /// device occupancy shared across connections — batching transactions
  /// into one barrier amortizes the barrier, not this. Default zero.
  void set_per_txn_overhead(SimDuration d) {
    GRYPHON_CHECK(d >= 0);
    per_txn_overhead_ = d;
  }
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  /// Queues a transaction on a connection. `on_committed` (optional) fires
  /// when its covering commit barrier completes.
  void commit(int connection, std::vector<Put> puts,
              std::function<void()> on_committed = nullptr);

  /// Committed (crash-surviving) value of a row, or nullopt.
  [[nodiscard]] std::optional<std::vector<std::byte>> get(
      const std::string& table, const std::string& key) const;

  /// All committed rows of a table, in key order (recovery scans).
  [[nodiscard]] std::vector<std::pair<std::string, std::vector<std::byte>>>
  scan(const std::string& table) const;

  /// Committed rows whose key starts with `prefix`, in key order: an
  /// ordered-index range scan (lower_bound seek + forward walk), so a
  /// recovery that only needs one (pubend, shard)'s rows never pays for the
  /// whole table. Use a terminated prefix (e.g. "7:") so "7" does not also
  /// capture "70:...".
  [[nodiscard]] std::vector<std::pair<std::string, std::vector<std::byte>>>
  scan_prefix(const std::string& table, const std::string& prefix) const;

  /// Broker crash: queued and in-flight transactions are lost; the tables
  /// are wiped and rebuilt from the WAL's surviving bytes.
  void crash();

  /// Fresh-process adoption of pre-existing WAL files: rebuilds the tables
  /// from whatever bytes the backend holds, with no watermark truncation
  /// (see LogVolume::adopt).
  void adopt();

  /// Seeds the surviving slice of the in-flight commit barrier for the next
  /// crash (see LogVolume::set_crash_entropy).
  void set_crash_entropy(std::uint64_t entropy) { wal_.set_crash_entropy(entropy); }

  /// Torn sync (SimDisk::drop_unsynced on the underlying disk): the commit
  /// barrier in flight was lost, but the process is still up — the batch is
  /// pushed back to the front of its connection's queue and re-committed,
  /// like a WAL write error being retried. Call right after drop_unsynced().
  void on_torn_sync();

  [[nodiscard]] int connections() const { return static_cast<int>(conns_.size()); }
  [[nodiscard]] std::uint64_t committed_transactions() const { return committed_txns_; }
  [[nodiscard]] std::uint64_t commit_barriers() const { return barriers_; }
  [[nodiscard]] std::uint64_t snapshot_compactions() const { return compactions_; }

  [[nodiscard]] const Wal& wal() const { return wal_; }
  [[nodiscard]] Wal& wal() { return wal_; }

 private:
  struct Txn {
    std::vector<Put> puts;
    std::function<void()> on_committed;
  };

  struct Connection {
    std::deque<Txn> queue;
    std::vector<Txn> inflight;  // the batch under the in-flight barrier
    bool busy = false;
  };

  class Rebuild;  // Wal::Delegate rebuilding tables_ during crash()/adopt()

  /// Shared body of crash()/adopt(): wipe volatile state, rescan the Wal.
  void rebuild_from_wal(bool adopt);

  void maybe_start_commit(int connection);
  /// Writes a full-table kDbSnapshot frame when the WAL outgrew its budget
  /// and no other connection's batch is in flight. Returns the first
  /// segment seq to keep once the snapshot is durable, or 0.
  std::uint64_t maybe_write_snapshot(int connection);
  void apply_puts(std::vector<Put>& puts);

  /// Estimated on-disk size of a transaction (row images + per-txn log
  /// overhead), fed to the disk model.
  static std::size_t txn_bytes(const Txn& txn);

  SimDisk& disk_;
  StorageOptions options_;
  std::unique_ptr<StorageBackend> backend_;
  Wal wal_;
  Instruments instruments_;
  SimDuration per_txn_overhead_ = 0;
  std::vector<Connection> conns_;
  std::map<std::string, std::map<std::string, std::vector<std::byte>>> tables_;
  std::uint64_t generation_ = 0;
  std::uint64_t committed_txns_ = 0;
  std::uint64_t barriers_ = 0;
  std::uint64_t batch_seq_ = 0;
  std::uint64_t snapshot_seq_ = 0;
  bool snapshot_inflight_ = false;
  std::uint64_t compactions_ = 0;
};

}  // namespace gryphon::storage
