// Database tables with transactional, batched commits (DB2 stand-in).
//
// The SHB keeps latestDelivered(p), released(s,p), PFS metadata and (for the
// JMS layer) subscriber checkpoint tokens "in database tables" (paper §4.1,
// §5.2). What the experiments depend on is the *commit* behaviour:
//
//  * a transaction's puts become visible to recovery only after its commit
//    barrier completes on disk,
//  * transactions issued on one connection commit serially,
//  * a connection batches all transactions waiting on it into a single
//    commit (the explicit batching the paper uses to reach 7.6K ev/s with
//    200 JMS auto-ack subscribers over 4 JDBC connections),
//  * commit cost is dominated by the disk barrier — with a battery-backed
//    write cache (their SSA controller) the barrier is cheap.
//
// Committed state survives crash(); queued/in-flight transactions do not.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "storage/sim_disk.hpp"
#include "util/assert.hpp"

namespace gryphon::storage {

class Database {
 public:
  struct Put {
    std::string table;
    std::string key;
    std::vector<std::byte> value;  // empty value deletes the row
  };

  /// `connections` models the pool of JDBC connections, each with its own
  /// serial commit thread.
  Database(SimDisk& disk, int connections = 1);

  /// Per-transaction engine work (row update + log-record path), charged as
  /// device occupancy shared across connections — batching transactions
  /// into one barrier amortizes the barrier, not this. Default zero.
  void set_per_txn_overhead(SimDuration d) {
    GRYPHON_CHECK(d >= 0);
    per_txn_overhead_ = d;
  }
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  /// Queues a transaction on a connection. `on_committed` (optional) fires
  /// when its covering commit barrier completes.
  void commit(int connection, std::vector<Put> puts,
              std::function<void()> on_committed = nullptr);

  /// Committed (crash-surviving) value of a row, or nullopt.
  [[nodiscard]] std::optional<std::vector<std::byte>> get(
      const std::string& table, const std::string& key) const;

  /// All committed rows of a table, in key order (recovery scans).
  [[nodiscard]] std::vector<std::pair<std::string, std::vector<std::byte>>>
  scan(const std::string& table) const;

  /// Broker crash: queued and in-flight transactions are lost.
  void crash();

  /// Torn sync (SimDisk::drop_unsynced on the underlying disk): the commit
  /// barrier in flight was lost, but the process is still up — the batch is
  /// pushed back to the front of its connection's queue and re-committed,
  /// like a WAL write error being retried. Call right after drop_unsynced().
  void on_torn_sync();

  [[nodiscard]] int connections() const { return static_cast<int>(conns_.size()); }
  [[nodiscard]] std::uint64_t committed_transactions() const { return committed_txns_; }
  [[nodiscard]] std::uint64_t commit_barriers() const { return barriers_; }

 private:
  struct Txn {
    std::vector<Put> puts;
    std::function<void()> on_committed;
  };

  struct Connection {
    std::deque<Txn> queue;
    std::vector<Txn> inflight;  // the batch under the in-flight barrier
    bool busy = false;
  };

  void maybe_start_commit(int connection);

  /// Estimated on-disk size of a transaction (row images + per-txn log
  /// overhead), fed to the disk model.
  static std::size_t txn_bytes(const Txn& txn);

  SimDisk& disk_;
  SimDuration per_txn_overhead_ = 0;
  std::vector<Connection> conns_;
  std::map<std::string, std::map<std::string, std::vector<std::byte>>> tables_;
  std::uint64_t generation_ = 0;
  std::uint64_t committed_txns_ = 0;
  std::uint64_t barriers_ = 0;
};

}  // namespace gryphon::storage
