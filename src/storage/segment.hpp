// On-disk WAL wire format: segment headers and CRC32C-framed records.
//
// A WAL is a sequence of segments; each segment is
//
//   +--------------------------------------------------------------+
//   | segment header: magic(8) version(2) node(4) seq(8)           |
//   |                 body_len(4) crc32c(4) body                   |
//   |   body = stream-registry snapshot at segment creation:       |
//   |          count(4) then per stream id(4) name(str) base(8)    |
//   |          next(8)                                             |
//   +--------------------------------------------------------------+
//   | frame | frame | frame | ...                                  |
//   +--------------------------------------------------------------+
//
// and each frame is length-prefixed and checksummed:
//
//   +------------+-----------+---------+------------+----------+---------+
//   | len u32    | crc32c u32| kind u8 | stream u32 | index u64| payload |
//   +------------+-----------+---------+------------+----------+---------+
//        |             |________ crc covers kind..payload ________|
//        |______ len = payload bytes (frame total = 21 + len) ____|
//
// Parsing never throws: a torn or corrupt frame yields FrameParse with
// consumed == 0 and a reason + expected/found CRC, which the recovery
// scanner turns into a truncate-the-tail decision (DESIGN.md §4.4).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "storage/crc32c.hpp"

namespace gryphon::storage {

using LogStreamId = std::uint32_t;
using LogIndex = std::uint64_t;

/// Sentinel: "no previous record" (the paper's ⊥ back-pointer).
constexpr LogIndex kNoIndex = 0;

namespace wire {

/// "GRYWAL01" little-endian; bump the trailing digits with the version.
constexpr std::uint64_t kSegmentMagic = 0x31304C4157595247ull;
constexpr std::uint16_t kWalVersion = 1;

/// magic(8) + version(2) + node(4) + seq(8) + body_len(4) + crc(4).
constexpr std::size_t kSegmentPreambleBytes = 8 + 2 + 4 + 8 + 4 + 4;

/// len(4) + crc(4) + kind(1) + stream(4) + index(8).
constexpr std::size_t kFrameHeaderBytes = 4 + 4 + 1 + 4 + 8;

/// Upper bound on a single frame payload; anything larger in a length
/// prefix is treated as corruption, bounding how far a scan can be fooled.
constexpr std::size_t kMaxFramePayloadBytes = 64u << 20;

enum class FrameKind : std::uint8_t {
  kOpenStream = 1,  // payload = stream name; index = initial base
  kAppend = 2,      // payload = record bytes; index = record index
  kChop = 3,        // index = chopped-upto boundary; empty payload
  kDbBatch = 4,     // payload = serialized commit batch; index = batch seq
  kDbSnapshot = 5,  // payload = full table snapshot; index = snapshot seq
};

/// Stream registry entry snapshotted into each segment header, so chop/open
/// frames living only in GC'd segments stay recoverable.
struct StreamSnapshot {
  LogStreamId id = 0;
  std::string name;
  LogIndex base = 1;       // first retained index (chopped_upto + 1)
  LogIndex next = 1;       // one past the last appended index
};

struct SegmentHeader {
  std::uint32_t node_id = 0;
  std::uint64_t seq = 0;
  std::vector<StreamSnapshot> streams;
};

void append_segment_header(std::vector<std::byte>& out, const SegmentHeader& header);

struct HeaderParse {
  std::size_t consumed = 0;  // 0 => torn/corrupt
  SegmentHeader header;
  std::uint32_t crc_expected = 0;
  std::uint32_t crc_found = 0;
  const char* reason = nullptr;  // set when consumed == 0
};
[[nodiscard]] HeaderParse parse_segment_header(std::span<const std::byte> bytes);

void append_frame(std::vector<std::byte>& out, FrameKind kind, LogStreamId stream,
                  LogIndex index, std::span<const std::byte> payload);

struct FrameView {
  FrameKind kind{};
  LogStreamId stream = 0;
  LogIndex index = 0;
  std::span<const std::byte> payload;
};

struct FrameParse {
  std::size_t consumed = 0;  // 0 => torn/corrupt
  FrameView frame;
  std::uint32_t crc_expected = 0;
  std::uint32_t crc_found = 0;
  const char* reason = nullptr;  // set when consumed == 0
};
[[nodiscard]] FrameParse parse_frame(std::span<const std::byte> bytes);

}  // namespace wire
}  // namespace gryphon::storage
