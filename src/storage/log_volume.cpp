#include "storage/log_volume.hpp"

#include <algorithm>

namespace gryphon::storage {

LogStreamId LogVolume::open_stream(const std::string& name) {
  if (auto it = by_name_.find(name); it != by_name_.end()) return it->second;
  const auto id = static_cast<LogStreamId>(streams_.size());
  streams_.push_back(Stream{name, /*base=*/1, kNoIndex, {}});
  by_name_.emplace(name, id);
  return id;
}

std::vector<std::byte> LogVolume::acquire_buffer() {
  if (pool_.empty()) return {};
  std::vector<std::byte> buf = std::move(pool_.back());
  pool_.pop_back();
  return buf;
}

LogIndex LogVolume::append(LogStreamId stream_id, std::vector<std::byte> payload) {
  Stream& s = stream(stream_id);
  const LogIndex index = s.base + s.records.size();
  const std::size_t bytes = payload.size() + kLogRecordHeaderBytes;
  s.records.push_back(std::move(payload));
  ++append_seq_;
  // Header bytes are charged in one batch when the covering barrier starts
  // (group commit writes the headers of all batched records contiguously);
  // only the payload is accounted per append.
  pending_bytes_ += bytes - kLogRecordHeaderBytes;
  ++pending_headers_;
  retained_bytes_ += bytes;
  ++appended_records_;
  appended_bytes_ += bytes;
  return index;
}

void LogVolume::sync(std::function<void()> on_durable) {
  GRYPHON_CHECK(on_durable != nullptr);
  waiters_.push_back(SyncWaiter{append_seq_, std::move(on_durable)});
  maybe_start_barrier();
}

void LogVolume::maybe_start_barrier() {
  if (barrier_in_flight_ || waiters_.empty()) return;
  barrier_in_flight_ = true;
  ++barrier_batches_;

  // The barrier covers everything appended before it starts.
  const std::uint64_t watermark = append_seq_;
  std::vector<std::pair<LogStreamId, LogIndex>> covered;
  covered.reserve(streams_.size());
  for (LogStreamId id = 0; id < streams_.size(); ++id) {
    const Stream& s = streams_[id];
    const LogIndex last = s.base + s.records.size() - 1;
    if (!s.records.empty() && last > s.durable) covered.emplace_back(id, last);
  }
  const std::uint64_t bytes = pending_bytes_ + pending_headers_ * kLogRecordHeaderBytes;
  pending_bytes_ = 0;
  pending_headers_ = 0;

  const std::uint64_t gen = generation_;
  disk_.write_and_sync(bytes, [this, gen, watermark, covered = std::move(covered)] {
    if (gen != generation_) return;  // volume crashed while barrier in flight
    on_barrier_complete(watermark, covered);
  });
}

void LogVolume::on_barrier_complete(
    std::uint64_t watermark, std::vector<std::pair<LogStreamId, LogIndex>> covered) {
  barrier_in_flight_ = false;
  for (const auto& [id, last] : covered) {
    Stream& s = streams_[id];
    s.durable = std::max(s.durable, last);
  }
  // Release every waiter the barrier covers, then start the next batch.
  std::vector<std::function<void()>> ready;
  while (!waiters_.empty() && waiters_.front().watermark <= watermark) {
    ready.push_back(std::move(waiters_.front().callback));
    waiters_.pop_front();
  }
  maybe_start_barrier();
  for (auto& cb : ready) cb();
}

const std::vector<std::byte>* LogVolume::read(LogStreamId stream_id,
                                              LogIndex index) const {
  const Stream& s = stream(stream_id);
  if (index < s.base || index >= s.base + s.records.size()) return nullptr;
  return &s.records[index - s.base];
}

void LogVolume::chop(LogStreamId stream_id, LogIndex upto) {
  Stream& s = stream(stream_id);
  const LogIndex last = s.base + s.records.size() - 1;
  const LogIndex clamped = s.records.empty() ? s.base - 1 : std::min(upto, last);
  while (s.base <= clamped) {
    retained_bytes_ -= s.records.front().size() + kLogRecordHeaderBytes;
    recycle(std::move(s.records.front()));
    s.records.pop_front();
    ++s.base;
  }
}

LogIndex LogVolume::first_index(LogStreamId stream_id) const {
  return stream(stream_id).base;
}

LogIndex LogVolume::next_index(LogStreamId stream_id) const {
  const Stream& s = stream(stream_id);
  return s.base + s.records.size();
}

LogIndex LogVolume::durable_index(LogStreamId stream_id) const {
  return stream(stream_id).durable;
}

void LogVolume::crash() {
  ++generation_;
  barrier_in_flight_ = false;
  pending_bytes_ = 0;
  pending_headers_ = 0;
  waiters_.clear();
  for (Stream& s : streams_) {
    // Keep only the durable prefix; anything later was in the page cache.
    const LogIndex keep_last = std::max(s.durable, s.base - 1);
    while (s.base + s.records.size() - 1 > keep_last && !s.records.empty()) {
      retained_bytes_ -= s.records.back().size() + kLogRecordHeaderBytes;
      recycle(std::move(s.records.back()));
      s.records.pop_back();
    }
  }
}

void LogVolume::on_torn_sync() {
  ++generation_;  // a completion that somehow survives the drop is stale
  barrier_in_flight_ = false;
  // Everything above the durable prefix is dirty again; re-cover it so the
  // pending waiters (which stay queued) still get their durability.
  pending_bytes_ = 0;
  pending_headers_ = 0;
  for (const Stream& s : streams_) {
    if (s.records.empty()) continue;
    const LogIndex first_dirty = std::max(s.durable + 1, s.base);
    const LogIndex last = s.base + s.records.size() - 1;
    for (LogIndex i = first_dirty; i <= last; ++i) {
      pending_bytes_ += s.records[i - s.base].size() + kLogRecordHeaderBytes;
    }
  }
  maybe_start_barrier();
}

}  // namespace gryphon::storage
