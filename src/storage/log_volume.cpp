#include "storage/log_volume.hpp"

#include <algorithm>

#include "util/logging.hpp"

namespace gryphon::storage {

LogVolume::LogVolume(SimDisk& disk, StorageOptions options, std::string wal_prefix)
    : disk_(disk),
      backend_(make_backend(options, disk.name() + "." + wal_prefix)),
      wal_(*backend_, stable_node_id(disk.name()), options.segment_bytes) {}

LogStreamId LogVolume::open_stream(const std::string& name) {
  if (auto it = by_name_.find(name); it != by_name_.end()) return it->second;
  const auto id = static_cast<LogStreamId>(streams_.size());
  streams_.push_back(Stream{name, /*base=*/1, kNoIndex, {}});
  by_name_.emplace(name, id);
  const auto* bytes = reinterpret_cast<const std::byte*>(name.data());
  wal_.append(wire::FrameKind::kOpenStream, id, /*index=*/1,
              std::span<const std::byte>(bytes, name.size()));
  return id;
}

std::vector<std::byte> LogVolume::acquire_buffer() {
  if (pool_.empty()) return {};
  std::vector<std::byte> buf = std::move(pool_.back());
  pool_.pop_back();
  return buf;
}

LogIndex LogVolume::append(LogStreamId stream_id, std::vector<std::byte> payload) {
  Stream& s = stream(stream_id);
  const LogIndex index = s.base + s.records.size();
  const std::size_t bytes = payload.size() + kLogRecordHeaderBytes;
  wal_.append(wire::FrameKind::kAppend, stream_id, index, payload);
  s.records.push_back(std::move(payload));
  ++append_seq_;
  // Header bytes are charged in one batch when the covering barrier starts
  // (group commit writes the headers of all batched records contiguously);
  // only the payload is accounted per append.
  pending_bytes_ += bytes - kLogRecordHeaderBytes;
  ++pending_headers_;
  retained_bytes_ += bytes;
  ++appended_records_;
  appended_bytes_ += bytes;
  return index;
}

void LogVolume::sync(std::function<void()> on_durable) {
  GRYPHON_CHECK(on_durable != nullptr);
  waiters_.push_back(SyncWaiter{append_seq_, std::move(on_durable)});
  maybe_start_barrier();
}

void LogVolume::maybe_start_barrier() {
  if (barrier_in_flight_ || waiters_.empty()) return;
  barrier_in_flight_ = true;
  ++barrier_batches_;

  // The barrier covers everything appended before it starts.
  const std::uint64_t watermark = append_seq_;
  std::vector<std::pair<LogStreamId, LogIndex>> covered;
  covered.reserve(streams_.size());
  for (LogStreamId id = 0; id < streams_.size(); ++id) {
    const Stream& s = streams_[id];
    const LogIndex last = s.base + s.records.size() - 1;
    if (!s.records.empty() && last > s.durable) covered.emplace_back(id, last);
  }
  const std::uint64_t bytes = pending_bytes_ + pending_headers_ * kLogRecordHeaderBytes;
  pending_bytes_ = 0;
  pending_headers_ = 0;

  // The barrier's physical coverage: every WAL byte appended so far is
  // handed to the device now and becomes durable when the barrier completes.
  const std::uint64_t wal_mark = wal_.tail_offset();
  wal_.mark_submitted(wal_mark);

  const std::uint64_t gen = generation_;
  disk_.write_and_sync(
      bytes, [this, gen, watermark, wal_mark, covered = std::move(covered)] {
        if (gen != generation_) return;  // volume crashed while barrier in flight
        const std::uint64_t delta = wal_mark - wal_.durable_offset();
        if (delta > 0 && instruments_.group_commit_bytes != nullptr) {
          instruments_.group_commit_bytes->add(static_cast<double>(delta));
        }
        wal_.mark_durable(wal_mark);
        on_barrier_complete(watermark, covered);
      });
}

void LogVolume::on_barrier_complete(
    std::uint64_t watermark, std::vector<std::pair<LogStreamId, LogIndex>> covered) {
  barrier_in_flight_ = false;
  for (const auto& [id, last] : covered) {
    Stream& s = streams_[id];
    s.durable = std::max(s.durable, last);
  }
  // Release every waiter the barrier covers, then start the next batch.
  std::vector<std::function<void()>> ready;
  while (!waiters_.empty() && waiters_.front().watermark <= watermark) {
    ready.push_back(std::move(waiters_.front().callback));
    waiters_.pop_front();
  }
  maybe_start_barrier();
  for (auto& cb : ready) cb();
}

const std::vector<std::byte>* LogVolume::read(LogStreamId stream_id,
                                              LogIndex index) const {
  const Stream& s = stream(stream_id);
  if (index < s.base || index >= s.base + s.records.size()) return nullptr;
  return &s.records[index - s.base];
}

void LogVolume::drop_prefix(Stream& s, LogIndex upto) {
  while (s.base <= upto && !s.records.empty()) {
    retained_bytes_ -= s.records.front().size() + kLogRecordHeaderBytes;
    recycle(std::move(s.records.front()));
    s.records.pop_front();
    ++s.base;
  }
  if (s.records.empty() && s.base <= upto) s.base = upto + 1;
}

void LogVolume::chop(LogStreamId stream_id, LogIndex upto) {
  Stream& s = stream(stream_id);
  const LogIndex last = s.base + s.records.size() - 1;
  const LogIndex clamped = s.records.empty() ? s.base - 1 : std::min(upto, last);
  if (clamped < s.base) return;
  wal_.append(wire::FrameKind::kChop, stream_id, clamped, {});
  drop_prefix(s, clamped);
  wal_.gc();
}

LogIndex LogVolume::first_index(LogStreamId stream_id) const {
  return stream(stream_id).base;
}

LogIndex LogVolume::next_index(LogStreamId stream_id) const {
  const Stream& s = stream(stream_id);
  return s.base + s.records.size();
}

LogIndex LogVolume::durable_index(LogStreamId stream_id) const {
  return stream(stream_id).durable;
}

LogVolume::Stream& LogVolume::ensure_stream(LogStreamId id, const std::string& name) {
  while (streams_.size() <= id) streams_.push_back(Stream{});
  Stream& s = streams_[id];
  if (s.name.empty() && !name.empty()) {
    s.name = name;
    by_name_.emplace(name, id);
  }
  return s;
}

/// Rebuilds streams_ from the Wal's surviving frames. Stream ids are dense
/// in open order and every dropped segment's effects are captured by a later
/// segment header, so the scan arrives in a replayable order by construction.
class LogVolume::Rebuild final : public Wal::Delegate {
 public:
  explicit Rebuild(LogVolume& volume) : v_(volume) {}

  void on_stream(const wire::StreamSnapshot& snapshot) override {
    Stream& s = v_.ensure_stream(snapshot.id, snapshot.name);
    GRYPHON_CHECK_MSG(s.records.empty() || snapshot.base <= s.base,
                      "segment snapshot chops into replayed records");
    if (s.records.empty()) s.base = std::max(s.base, snapshot.base);
  }

  void on_frame(const wire::FrameView& frame) override {
    switch (frame.kind) {
      case wire::FrameKind::kOpenStream: {
        std::string name;
        if (!frame.payload.empty()) {
          name.assign(reinterpret_cast<const char*>(frame.payload.data()),
                      frame.payload.size());
        }
        v_.ensure_stream(frame.stream, name);
        break;
      }
      case wire::FrameKind::kAppend: {
        Stream& s = v_.stream(frame.stream);
        if (s.records.empty() && frame.index > s.base) {
          // Leading gap: the records before frame.index lived in GC'd head
          // segments, and the chop frames that advanced base past them sit
          // *later* in the byte stream than this segment's header snapshot
          // (headers are written at roll time). A gap at the front is
          // therefore always a chopped prefix — corruption truncates the
          // tail, it can never skip frames mid-stream.
          s.base = frame.index;
        }
        GRYPHON_CHECK_MSG(frame.index == s.base + s.records.size(),
                          "non-dense append replay: stream " << frame.stream
                              << " index " << frame.index);
        std::vector<std::byte> buf = v_.acquire_buffer();
        buf.assign(frame.payload.begin(), frame.payload.end());
        v_.retained_bytes_ += buf.size() + kLogRecordHeaderBytes;
        s.records.push_back(std::move(buf));
        break;
      }
      case wire::FrameKind::kChop:
        v_.drop_prefix(v_.stream(frame.stream), frame.index);
        break;
      case wire::FrameKind::kDbBatch:
      case wire::FrameKind::kDbSnapshot:
        GRYPHON_CHECK_MSG(false, "database frame in a log volume WAL");
    }
  }

 private:
  LogVolume& v_;
};

void LogVolume::crash() { rebuild_from_wal(/*adopt=*/false); }

void LogVolume::adopt() { rebuild_from_wal(/*adopt=*/true); }

void LogVolume::rebuild_from_wal(bool adopt) {
  ++generation_;
  barrier_in_flight_ = false;
  pending_bytes_ = 0;
  pending_headers_ = 0;
  waiters_.clear();

  // Forget the in-memory image entirely; what survives is whatever the Wal
  // scan can re-derive from bytes (the whole point of the persistence
  // engine: a crash test *is* a recovery-from-bytes test).
  for (Stream& s : streams_) {
    while (!s.records.empty()) {
      recycle(std::move(s.records.back()));
      s.records.pop_back();
    }
  }
  streams_.clear();
  by_name_.clear();
  retained_bytes_ = 0;

  Rebuild rebuild(*this);
  // A crash truncates to this process's watermarks; adoption has no
  // watermarks to truncate to (they died with the previous process) and
  // rescans whatever bytes the backend holds.
  const Wal::RecoveryStats stats =
      adopt ? wal_.replay(rebuild) : wal_.crash_and_recover(rebuild);

  // Every surviving record is durable (it was just read back from "disk").
  for (Stream& s : streams_) {
    s.durable = s.base + s.records.size() - 1;
  }

  if (instruments_.recoveries != nullptr) instruments_.recoveries->inc();
  if (stats.truncated_bytes > 0) {
    if (instruments_.recovery_truncated_bytes != nullptr) {
      instruments_.recovery_truncated_bytes->inc(stats.truncated_bytes);
    }
    if (instruments_.torn_tail_recoveries != nullptr) {
      instruments_.torn_tail_recoveries->inc();
    }
    GRYPHON_LOG(kWarn, disk_.name(),
                "torn WAL tail truncated on recovery: "
                    << stats.truncated_bytes << " bytes at "
                    << Wal::format_corruption(stats.corruption));
  }
}

void LogVolume::on_torn_sync() {
  ++generation_;  // a completion that somehow survives the drop is stale
  barrier_in_flight_ = false;
  // Everything above the durable prefix is dirty again; re-cover it so the
  // pending waiters (which stay queued) still get their durability.
  pending_bytes_ = 0;
  pending_headers_ = 0;
  for (const Stream& s : streams_) {
    if (s.records.empty()) continue;
    const LogIndex first_dirty = std::max(s.durable + 1, s.base);
    const LogIndex last = s.base + s.records.size() - 1;
    for (LogIndex i = first_dirty; i <= last; ++i) {
      pending_bytes_ += s.records[i - s.base].size() + kLogRecordHeaderBytes;
    }
  }
  maybe_start_barrier();
}

}  // namespace gryphon::storage
