// Wal — a segmented append-only write-ahead log over a StorageBackend.
//
// The Wal is the byte-accurate half of the storage split: SimDisk decides
// *when* bytes become durable (barrier timing, torn syncs), the Wal decides
// *which* bytes exist and what survives a crash. Clients (LogVolume,
// Database) append CRC32C-framed records, track group-commit barriers with
// two watermarks over the global byte offset —
//
//   durable  <=  submitted  <=  tail
//      |             |            |
//      |             |            '-- appended (page cache only)
//      |             '-- under an issued-but-unacked disk barrier
//      '-- covered by a completed barrier
//
// — and on crash ask the Wal to truncate to what physically survived and
// replay the remaining frames through a Delegate. The surviving prefix is
//
//   durable + (crash_entropy % (submitted - durable + 1))
//
// clamped to [durable, submitted]: everything acked survives, nothing that
// was never handed to the device survives, and the seeded entropy (chaos
// schedules, bench_recovery_fuzz) picks how much of the in-flight barrier
// made it — landing mid-frame exercises the torn-tail truncation rule.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "storage/segment.hpp"
#include "storage/storage_backend.hpp"

namespace gryphon::storage {

class Wal {
 public:
  struct Corruption {
    bool valid = false;  // true once a scan has found a torn/corrupt frame
    std::uint64_t segment_seq = 0;
    std::uint64_t offset = 0;  // byte offset within the segment
    std::uint32_t crc_expected = 0;
    std::uint32_t crc_found = 0;
    std::string reason;
  };

  struct RecoveryStats {
    std::uint64_t frames = 0;           // frames replayed through the delegate
    std::uint64_t truncated_bytes = 0;  // discarded past the valid prefix
    std::uint64_t dropped_segments = 0;
    Corruption corruption;  // valid iff truncated_bytes > 0
  };

  /// Receives the surviving log during a recovery scan, in byte order.
  class Delegate {
   public:
    virtual ~Delegate() = default;
    /// A stream-registry snapshot entry (from a segment header). May fire
    /// several times per stream with monotonically growing base/next.
    virtual void on_stream(const wire::StreamSnapshot& snapshot) = 0;
    /// A validated frame; `frame.payload` is only valid during the call.
    virtual void on_frame(const wire::FrameView& frame) = 0;
  };

  Wal(StorageBackend& backend, std::uint32_t node_id, std::size_t segment_bytes);
  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;

  /// Appends one frame (rolling the segment first if full); returns the new
  /// tail offset — capture it before issuing the covering disk barrier.
  std::uint64_t append(wire::FrameKind kind, LogStreamId stream, LogIndex index,
                       std::span<const std::byte> payload);

  [[nodiscard]] std::uint64_t tail_offset() const { return tail_; }
  [[nodiscard]] std::uint64_t durable_offset() const { return durable_; }
  [[nodiscard]] std::uint64_t submitted_offset() const { return submitted_; }

  /// A disk barrier covering bytes up to `offset` was issued / completed.
  void mark_submitted(std::uint64_t offset);
  void mark_durable(std::uint64_t offset);

  /// Seeds how much of the in-flight (submitted-but-unacked) region the next
  /// crash preserves; 0 (default) keeps only the durable prefix.
  void set_crash_entropy(std::uint64_t entropy) { crash_entropy_ = entropy; }

  /// Crash: truncate the backend to the surviving prefix (see header
  /// comment), rescan every byte, replay surviving frames through `delegate`
  /// and truncate the tail at the first torn/corrupt frame.
  RecoveryStats crash_and_recover(Delegate& delegate);

  /// Same, with an explicit surviving prefix (still clamped to
  /// [durable, submitted]) — the fuzzer's seeded crash points.
  RecoveryStats recover_surviving(std::uint64_t survive_offset, Delegate& delegate);

  /// Rescan of whatever the backend holds (no watermark truncation): adopt
  /// pre-existing WAL files from a previous process.
  RecoveryStats replay(Delegate& delegate);

  /// Drops dead head segments: sealed, fully durable, every append chopped.
  void gc();

  /// Drops all (sealed, fully durable) segments with seq < `first_keep` —
  /// Database snapshot compaction, once the snapshot frame is durable.
  void drop_segments_below(std::uint64_t first_keep);

  [[nodiscard]] std::uint64_t active_segment_seq() const {
    return segments_.back().seq;
  }
  [[nodiscard]] std::size_t segment_count() const { return segments_.size(); }
  [[nodiscard]] std::uint64_t live_bytes() const;
  [[nodiscard]] std::uint64_t gc_dropped_segments() const { return gc_dropped_; }
  [[nodiscard]] std::uint64_t recoveries() const { return recoveries_; }
  /// Cumulative torn-tail bytes discarded across all recoveries.
  [[nodiscard]] std::uint64_t truncated_bytes_total() const {
    return truncated_bytes_total_;
  }
  [[nodiscard]] const Corruption& last_corruption() const { return last_corruption_; }

  /// "segment 3 offset 1289: bad frame crc (expected 0x... found 0x...)" —
  /// the dump format the recovery fuzzer prints on a violation.
  [[nodiscard]] static std::string format_corruption(const Corruption& c);

 private:
  struct SegmentMeta {
    std::uint64_t seq = 0;
    std::uint64_t base_offset = 0;  // global offset of the segment's byte 0
    std::uint64_t size = 0;
    bool sealed = false;
    bool has_db_snapshot = false;
    /// Highest append index per stream in this segment (GC liveness).
    std::map<LogStreamId, LogIndex> max_index;
  };

  struct StreamMeta {
    std::string name;
    LogIndex base = 1;
    LogIndex next = 1;
  };

  void roll_segment();
  void maybe_roll();
  /// Registers a frame's effect on stream/segment metadata (shared between
  /// the append path and the recovery scan).
  void note_frame(SegmentMeta& seg, const wire::FrameView& frame);
  void merge_stream(const wire::StreamSnapshot& snapshot);
  RecoveryStats scan_and_rebuild(Delegate& delegate);

  StorageBackend& backend_;
  const std::uint32_t node_id_;
  const std::size_t segment_bytes_;

  std::deque<SegmentMeta> segments_;
  std::map<LogStreamId, StreamMeta> streams_;
  std::uint64_t next_seq_ = 1;

  std::uint64_t tail_ = 0;
  std::uint64_t durable_ = 0;
  std::uint64_t submitted_ = 0;
  std::uint64_t crash_entropy_ = 0;

  std::uint64_t gc_dropped_ = 0;
  std::uint64_t recoveries_ = 0;
  std::uint64_t truncated_bytes_total_ = 0;
  Corruption last_corruption_;

  std::vector<std::byte> frame_buf_;  // reused append scratch
};

}  // namespace gryphon::storage
