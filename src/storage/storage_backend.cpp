#include "storage/storage_backend.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>

#include "util/assert.hpp"

namespace gryphon::storage {

// --- MemoryBackend -------------------------------------------------------

void MemoryBackend::create_segment(std::uint64_t seq) {
  const auto [it, inserted] = segs_.try_emplace(seq);
  GRYPHON_CHECK_MSG(inserted, "segment " << seq << " already exists");
  (void)it;
}

void MemoryBackend::append(std::uint64_t seq, std::span<const std::byte> bytes) {
  auto it = segs_.find(seq);
  GRYPHON_CHECK_MSG(it != segs_.end(), "append to unknown segment " << seq);
  it->second.insert(it->second.end(), bytes.begin(), bytes.end());
}

void MemoryBackend::truncate(std::uint64_t seq, std::size_t new_size) {
  auto it = segs_.find(seq);
  GRYPHON_CHECK_MSG(it != segs_.end(), "truncate of unknown segment " << seq);
  GRYPHON_CHECK(new_size <= it->second.size());
  it->second.resize(new_size);
}

void MemoryBackend::drop_segment(std::uint64_t seq) {
  GRYPHON_CHECK_MSG(segs_.erase(seq) == 1, "drop of unknown segment " << seq);
}

std::vector<std::uint64_t> MemoryBackend::segments() const {
  std::vector<std::uint64_t> out;
  out.reserve(segs_.size());
  for (const auto& [seq, bytes] : segs_) out.push_back(seq);
  return out;
}

std::vector<std::byte> MemoryBackend::load(std::uint64_t seq) const {
  auto it = segs_.find(seq);
  GRYPHON_CHECK_MSG(it != segs_.end(), "load of unknown segment " << seq);
  return it->second;
}

std::size_t MemoryBackend::size(std::uint64_t seq) const {
  auto it = segs_.find(seq);
  GRYPHON_CHECK_MSG(it != segs_.end(), "size of unknown segment " << seq);
  return it->second.size();
}

// --- FileBackend ---------------------------------------------------------

FileBackend::FileBackend(std::string dir, std::string prefix)
    : dir_(std::move(dir)), prefix_(std::move(prefix)) {
  std::filesystem::create_directories(dir_);
}

std::string FileBackend::path(std::uint64_t seq) const {
  return dir_ + "/" + prefix_ + "-" + std::to_string(seq) + ".wal";
}

void FileBackend::create_segment(std::uint64_t seq) {
  std::FILE* f = std::fopen(path(seq).c_str(), "wb");
  GRYPHON_CHECK_MSG(f != nullptr, "cannot create " << path(seq));
  std::fclose(f);
}

void FileBackend::append(std::uint64_t seq, std::span<const std::byte> bytes) {
  if (bytes.empty()) return;
  std::FILE* f = std::fopen(path(seq).c_str(), "ab");
  GRYPHON_CHECK_MSG(f != nullptr, "cannot append to " << path(seq));
  const std::size_t n = std::fwrite(bytes.data(), 1, bytes.size(), f);
  std::fclose(f);
  GRYPHON_CHECK_MSG(n == bytes.size(), "short write to " << path(seq));
}

void FileBackend::truncate(std::uint64_t seq, std::size_t new_size) {
  std::filesystem::resize_file(path(seq), new_size);
}

void FileBackend::drop_segment(std::uint64_t seq) {
  GRYPHON_CHECK_MSG(std::filesystem::remove(path(seq)),
                    "drop of unknown segment file " << path(seq));
}

std::vector<std::uint64_t> FileBackend::segments() const {
  std::vector<std::uint64_t> out;
  const std::string head = prefix_ + "-";
  const std::string tail = ".wal";
  for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
    const std::string name = entry.path().filename().string();
    if (name.size() <= head.size() + tail.size()) continue;
    if (name.compare(0, head.size(), head) != 0) continue;
    if (name.compare(name.size() - tail.size(), tail.size(), tail) != 0) continue;
    const std::string digits =
        name.substr(head.size(), name.size() - head.size() - tail.size());
    if (digits.empty() ||
        digits.find_first_not_of("0123456789") != std::string::npos) {
      continue;
    }
    out.push_back(std::strtoull(digits.c_str(), nullptr, 10));
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::byte> FileBackend::load(std::uint64_t seq) const {
  std::FILE* f = std::fopen(path(seq).c_str(), "rb");
  GRYPHON_CHECK_MSG(f != nullptr, "cannot load " << path(seq));
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  std::vector<std::byte> bytes(static_cast<std::size_t>(size));
  const std::size_t n =
      bytes.empty() ? 0 : std::fread(bytes.data(), 1, bytes.size(), f);
  std::fclose(f);
  GRYPHON_CHECK_MSG(n == bytes.size(), "short read from " << path(seq));
  return bytes;
}

std::size_t FileBackend::size(std::uint64_t seq) const {
  return static_cast<std::size_t>(std::filesystem::file_size(path(seq)));
}

std::unique_ptr<StorageBackend> make_backend(const StorageOptions& options,
                                             const std::string& prefix) {
  if (options.file_dir.empty()) return std::make_unique<MemoryBackend>();
  return std::make_unique<FileBackend>(options.file_dir, prefix);
}

std::uint32_t stable_node_id(std::string_view name) {
  std::uint32_t h = 2166136261u;
  for (const char c : name) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 16777619u;
  }
  return h;
}

}  // namespace gryphon::storage
