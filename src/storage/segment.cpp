#include "storage/segment.hpp"

#include <cstring>

namespace gryphon::storage::wire {
namespace {

void put_u16(std::vector<std::byte>& out, std::uint16_t v) {
  const auto* b = reinterpret_cast<const std::byte*>(&v);
  out.insert(out.end(), b, b + sizeof v);
}
void put_u32(std::vector<std::byte>& out, std::uint32_t v) {
  const auto* b = reinterpret_cast<const std::byte*>(&v);
  out.insert(out.end(), b, b + sizeof v);
}
void put_u64(std::vector<std::byte>& out, std::uint64_t v) {
  const auto* b = reinterpret_cast<const std::byte*>(&v);
  out.insert(out.end(), b, b + sizeof v);
}

/// Tolerant little-endian reads: the scanner must classify arbitrary bytes,
/// so parsing here never throws (unlike BufReader).
template <typename T>
T read_le(std::span<const std::byte> bytes, std::size_t at) {
  T v;
  std::memcpy(&v, bytes.data() + at, sizeof(T));
  return v;
}

}  // namespace

void append_segment_header(std::vector<std::byte>& out, const SegmentHeader& header) {
  std::vector<std::byte> body;
  put_u32(body, static_cast<std::uint32_t>(header.streams.size()));
  for (const StreamSnapshot& s : header.streams) {
    put_u32(body, s.id);
    put_u32(body, static_cast<std::uint32_t>(s.name.size()));
    const auto* nb = reinterpret_cast<const std::byte*>(s.name.data());
    body.insert(body.end(), nb, nb + s.name.size());
    put_u64(body, s.base);
    put_u64(body, s.next);
  }

  // The CRC covers everything after the magic (version..body): a valid magic
  // with a bad CRC is a torn header, a bad magic is not a segment at all.
  std::vector<std::byte> meta;
  put_u16(meta, kWalVersion);
  put_u32(meta, header.node_id);
  put_u64(meta, header.seq);
  put_u32(meta, static_cast<std::uint32_t>(body.size()));
  std::uint32_t crc = crc32c(meta);
  crc = crc32c(body, crc);

  put_u64(out, kSegmentMagic);
  out.insert(out.end(), meta.begin(), meta.end());
  put_u32(out, crc);
  out.insert(out.end(), body.begin(), body.end());
}

HeaderParse parse_segment_header(std::span<const std::byte> bytes) {
  HeaderParse r;
  if (bytes.size() < kSegmentPreambleBytes) {
    r.reason = "torn segment header";
    return r;
  }
  if (read_le<std::uint64_t>(bytes, 0) != kSegmentMagic) {
    r.reason = "bad segment magic";
    return r;
  }
  const auto version = read_le<std::uint16_t>(bytes, 8);
  r.header.node_id = read_le<std::uint32_t>(bytes, 10);
  r.header.seq = read_le<std::uint64_t>(bytes, 14);
  const auto body_len = read_le<std::uint32_t>(bytes, 22);
  r.crc_found = read_le<std::uint32_t>(bytes, 26);
  if (version != kWalVersion) {
    r.reason = "unsupported wal version";
    return r;
  }
  if (body_len > kMaxFramePayloadBytes ||
      bytes.size() < kSegmentPreambleBytes + body_len) {
    r.reason = "torn segment header body";
    return r;
  }
  const auto body = bytes.subspan(kSegmentPreambleBytes, body_len);
  r.crc_expected = crc32c(bytes.subspan(8, 18));  // version..body_len
  r.crc_expected = crc32c(body, r.crc_expected);
  if (r.crc_expected != r.crc_found) {
    r.reason = "bad segment header crc";
    return r;
  }

  // Body parse: sizes were covered by the CRC, so inconsistencies past this
  // point would be encoder bugs; treat them as corruption anyway.
  std::size_t at = 0;
  auto have = [&](std::size_t n) { return body.size() - at >= n; };
  if (!have(4)) {
    r.reason = "bad segment header body";
    return r;
  }
  const auto count = read_le<std::uint32_t>(body, at);
  at += 4;
  r.header.streams.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    StreamSnapshot s;
    if (!have(8)) {
      r.reason = "bad segment header body";
      return r;
    }
    s.id = read_le<std::uint32_t>(body, at);
    const auto name_len = read_le<std::uint32_t>(body, at + 4);
    at += 8;
    if (!have(name_len) || name_len > body.size()) {
      r.reason = "bad segment header body";
      return r;
    }
    s.name.assign(reinterpret_cast<const char*>(body.data() + at), name_len);
    at += name_len;
    if (!have(16)) {
      r.reason = "bad segment header body";
      return r;
    }
    s.base = read_le<std::uint64_t>(body, at);
    s.next = read_le<std::uint64_t>(body, at + 8);
    at += 16;
    r.header.streams.push_back(std::move(s));
  }
  r.consumed = kSegmentPreambleBytes + body_len;
  return r;
}

void append_frame(std::vector<std::byte>& out, FrameKind kind, LogStreamId stream,
                  LogIndex index, std::span<const std::byte> payload) {
  std::byte meta[1 + 4 + 8];
  meta[0] = static_cast<std::byte>(kind);
  std::memcpy(meta + 1, &stream, sizeof stream);
  std::memcpy(meta + 5, &index, sizeof index);
  std::uint32_t crc = crc32c(std::span<const std::byte>(meta, sizeof meta));
  crc = crc32c(payload, crc);

  put_u32(out, static_cast<std::uint32_t>(payload.size()));
  put_u32(out, crc);
  out.insert(out.end(), meta, meta + sizeof meta);
  out.insert(out.end(), payload.begin(), payload.end());
}

FrameParse parse_frame(std::span<const std::byte> bytes) {
  FrameParse r;
  if (bytes.size() < kFrameHeaderBytes) {
    r.reason = "torn frame header";
    return r;
  }
  const auto len = read_le<std::uint32_t>(bytes, 0);
  r.crc_found = read_le<std::uint32_t>(bytes, 4);
  if (len > kMaxFramePayloadBytes) {
    r.reason = "implausible frame length";
    return r;
  }
  if (bytes.size() < kFrameHeaderBytes + len) {
    r.reason = "torn frame payload";
    return r;
  }
  const auto checked = bytes.subspan(8, 13 + len);  // kind..payload
  r.crc_expected = crc32c(checked);
  if (r.crc_expected != r.crc_found) {
    r.reason = "bad frame crc";
    return r;
  }
  const auto kind = static_cast<std::uint8_t>(bytes[8]);
  if (kind < static_cast<std::uint8_t>(FrameKind::kOpenStream) ||
      kind > static_cast<std::uint8_t>(FrameKind::kDbSnapshot)) {
    r.reason = "unknown frame kind";
    return r;
  }
  r.frame.kind = static_cast<FrameKind>(kind);
  r.frame.stream = read_le<std::uint32_t>(bytes, 9);
  r.frame.index = read_le<std::uint64_t>(bytes, 13);
  r.frame.payload = bytes.subspan(kFrameHeaderBytes, len);
  r.consumed = kFrameHeaderBytes + len;
  return r;
}

}  // namespace gryphon::storage::wire
