#include "storage/sim_disk.hpp"

#include <algorithm>
#include <cmath>

namespace gryphon::storage {

SimDisk::SimDisk(sim::Simulator& simulator, std::string name, DiskConfig config)
    : sim_(simulator), name_(std::move(name)), config_(config) {
  GRYPHON_CHECK(config_.sync_latency >= 0);
  GRYPHON_CHECK(config_.write_bandwidth_bytes_per_sec > 0);
}

void SimDisk::write_and_sync(std::size_t bytes, std::function<void()> done) {
  GRYPHON_CHECK(done != nullptr);
  const auto transfer = static_cast<SimDuration>(
      std::ceil(static_cast<double>(bytes) /
                config_.write_bandwidth_bytes_per_sec * 1e6));
  // The transfer occupies the device; the sync latency is pipeline latency
  // (a barrier draining the controller cache), so concurrent commits from
  // independent callers overlap their barriers rather than queueing them —
  // the behaviour battery-backed write caches are bought for.
  const SimTime start = std::max(sim_.now(), free_at_);
  const SimTime transferred = start + transfer;
  free_at_ = transferred;
  const SimTime end = transferred + config_.sync_latency;
  busy_ += transferred - start;
  bytes_written_ += bytes;
  ++syncs_;

  const std::uint64_t gen = generation_;
  sim_.schedule_at(end, [this, gen, done = std::move(done)] {
    if (gen != generation_) return;  // lost to a crash
    done();
  });
}

void SimDisk::read(std::size_t bytes, std::function<void()> done) {
  GRYPHON_CHECK(done != nullptr);
  const auto transfer = static_cast<SimDuration>(
      std::ceil(static_cast<double>(bytes) /
                config_.read_bandwidth_bytes_per_sec * 1e6));
  const SimTime start = std::max(sim_.now(), free_at_);
  const SimTime end = start + config_.read_seek_latency + transfer;
  free_at_ = end;
  busy_ += end - start;
  bytes_read_ += bytes;
  ++reads_;

  const std::uint64_t gen = generation_;
  sim_.schedule_at(end, [this, gen, done = std::move(done)] {
    if (gen != generation_) return;
    done();
  });
}

void SimDisk::crash() {
  ++generation_;
  free_at_ = sim_.now();
}

}  // namespace gryphon::storage
