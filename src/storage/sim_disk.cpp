#include "storage/sim_disk.hpp"

#include <algorithm>
#include <cmath>

namespace gryphon::storage {

SimDisk::SimDisk(sim::Scheduler& scheduler, std::string name, DiskConfig config)
    : sim_(scheduler), name_(std::move(name)), config_(config) {
  GRYPHON_CHECK(config_.sync_latency >= 0);
  GRYPHON_CHECK(config_.write_bandwidth_bytes_per_sec > 0);
}

void SimDisk::write_and_sync(std::size_t bytes, std::function<void()> done) {
  GRYPHON_CHECK(done != nullptr);
  GRYPHON_CHECK_MSG(!crashed_,
                    "write_and_sync on crashed disk '" << name_ << "'");
  const auto transfer = static_cast<SimDuration>(
      std::ceil(static_cast<double>(bytes) /
                config_.write_bandwidth_bytes_per_sec * 1e6));
  // The transfer occupies the device; the sync latency is pipeline latency
  // (a barrier draining the controller cache), so concurrent commits from
  // independent callers overlap their barriers rather than queueing them —
  // the behaviour battery-backed write caches are bought for.
  const SimTime start = std::max(sim_.now(), free_at_);
  const SimTime transferred = start + transfer;
  free_at_ = transferred;
  const SimTime end = transferred + config_.sync_latency;
  busy_ += transferred - start;
  bytes_written_ += bytes;
  ++syncs_;

  const std::uint64_t gen = generation_;
  const std::uint64_t epoch = sync_epoch_;
  sim_.schedule_at(end, [this, gen, epoch, bytes, done = std::move(done)] {
    if (gen != generation_ || epoch != sync_epoch_) {
      bytes_dropped_ += bytes;  // lost to a crash / torn sync
      return;
    }
    bytes_synced_ += bytes;
    done();
  });
}

void SimDisk::read(std::size_t bytes, std::function<void()> done) {
  GRYPHON_CHECK(done != nullptr);
  GRYPHON_CHECK_MSG(!crashed_, "read on crashed disk '" << name_ << "'");
  const auto transfer = static_cast<SimDuration>(
      std::ceil(static_cast<double>(bytes) /
                config_.read_bandwidth_bytes_per_sec * 1e6));
  const SimTime start = std::max(sim_.now(), free_at_);
  SimTime end = start + config_.read_seek_latency + transfer;
  if (read_fault_remaining_ > 0) {
    --read_fault_remaining_;
    ++read_faults_;
    end += draw_read_fault_penalty();
  }
  free_at_ = end;
  busy_ += end - start;
  bytes_read_ += bytes;
  ++reads_;

  const std::uint64_t gen = generation_;
  sim_.schedule_at(end, [this, gen, done = std::move(done)] {
    if (gen != generation_) return;
    done();
  });
}

void SimDisk::crash() {
  ++generation_;
  free_at_ = sim_.now();
  crashed_ = true;
}

void SimDisk::restart() { crashed_ = false; }

void SimDisk::inject_stall(SimDuration duration) {
  GRYPHON_CHECK(duration > 0);
  // Outstanding completions already have their fire times scheduled; a real
  // stall would delay them too, but re-scheduling would break FIFO with the
  // generation checks. Instead the stall pushes the serialization point, so
  // everything *issued* from now on (the overwhelming majority in a group-
  // committed workload) eats the stall. Good enough for a fault model.
  free_at_ = std::max(free_at_, sim_.now()) + duration;
  ++stalls_;
  stall_time_ += duration;
}

namespace {
/// splitmix64 — same deterministic mixer the network uses for frame mangling.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}
}  // namespace

void SimDisk::arm_read_faults(int count, std::uint64_t seed,
                              SimDuration penalty_lo, SimDuration penalty_hi) {
  GRYPHON_CHECK(count > 0);
  GRYPHON_CHECK(penalty_lo >= 0 && penalty_hi >= penalty_lo);
  read_fault_remaining_ = count;
  read_fault_seed_ = seed;
  read_fault_drawn_ = 0;
  read_fault_lo_ = penalty_lo;
  read_fault_hi_ = penalty_hi;
}

void SimDisk::clear_read_faults() { read_fault_remaining_ = 0; }

SimDuration SimDisk::draw_read_fault_penalty() {
  const std::uint64_t draw = mix64(read_fault_seed_ + read_fault_drawn_++);
  const auto span = static_cast<std::uint64_t>(read_fault_hi_ - read_fault_lo_) + 1;
  return read_fault_lo_ + static_cast<SimDuration>(draw % span);
}

void SimDisk::drop_unsynced() {
  GRYPHON_CHECK_MSG(!crashed_, "drop_unsynced on crashed disk '" << name_
                                   << "' (crash already dropped everything)");
  // Only write barriers are torn; in-flight reads (the data is on the
  // platter already) still complete.
  ++sync_epoch_;
  ++dropped_syncs_;
}

}  // namespace gryphon::storage
