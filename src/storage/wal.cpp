#include "storage/wal.hpp"

#include <algorithm>
#include <cstdio>

#include "util/assert.hpp"

namespace gryphon::storage {

Wal::Wal(StorageBackend& backend, std::uint32_t node_id, std::size_t segment_bytes)
    : backend_(backend), node_id_(node_id), segment_bytes_(segment_bytes) {
  GRYPHON_CHECK(segment_bytes_ >= wire::kSegmentPreambleBytes + wire::kFrameHeaderBytes);
  if (backend_.segments().empty()) {
    roll_segment();
  } else {
    // Pre-existing files (FileBackend adoption): the caller must replay()
    // before appending; a placeholder keeps the invariants trivially true.
    next_seq_ = backend_.segments().back() + 1;
    roll_segment();
  }
}

void Wal::roll_segment() {
  if (!segments_.empty()) segments_.back().sealed = true;
  SegmentMeta meta;
  meta.seq = next_seq_++;
  meta.base_offset = tail_;
  backend_.create_segment(meta.seq);

  wire::SegmentHeader header;
  header.node_id = node_id_;
  header.seq = meta.seq;
  header.streams.reserve(streams_.size());
  for (const auto& [id, s] : streams_) {
    header.streams.push_back(wire::StreamSnapshot{id, s.name, s.base, s.next});
  }
  frame_buf_.clear();
  wire::append_segment_header(frame_buf_, header);
  backend_.append(meta.seq, frame_buf_);
  meta.size = frame_buf_.size();
  tail_ += frame_buf_.size();
  segments_.push_back(std::move(meta));
}

void Wal::maybe_roll() {
  if (segments_.back().size >= segment_bytes_) roll_segment();
}

void Wal::note_frame(SegmentMeta& seg, const wire::FrameView& frame) {
  switch (frame.kind) {
    case wire::FrameKind::kOpenStream: {
      StreamMeta& s = streams_[frame.stream];
      s.name.clear();
      if (!frame.payload.empty()) {
        s.name.assign(reinterpret_cast<const char*>(frame.payload.data()),
                      frame.payload.size());
      }
      s.base = std::max(s.base, frame.index);
      s.next = std::max(s.next, frame.index);
      break;
    }
    case wire::FrameKind::kAppend: {
      StreamMeta& s = streams_[frame.stream];
      s.next = std::max(s.next, frame.index + 1);
      LogIndex& max_idx = seg.max_index[frame.stream];
      max_idx = std::max(max_idx, frame.index);
      break;
    }
    case wire::FrameKind::kChop: {
      StreamMeta& s = streams_[frame.stream];
      s.base = std::max(s.base, frame.index + 1);
      s.next = std::max(s.next, s.base);
      break;
    }
    case wire::FrameKind::kDbBatch:
      break;
    case wire::FrameKind::kDbSnapshot:
      seg.has_db_snapshot = true;
      break;
  }
}

std::uint64_t Wal::append(wire::FrameKind kind, LogStreamId stream, LogIndex index,
                          std::span<const std::byte> payload) {
  maybe_roll();
  SegmentMeta& seg = segments_.back();
  frame_buf_.clear();
  wire::append_frame(frame_buf_, kind, stream, index, payload);
  backend_.append(seg.seq, frame_buf_);
  seg.size += frame_buf_.size();
  tail_ += frame_buf_.size();

  wire::FrameView view{kind, stream, index, payload};
  note_frame(seg, view);
  return tail_;
}

void Wal::mark_submitted(std::uint64_t offset) {
  GRYPHON_CHECK(offset <= tail_);
  submitted_ = std::max(submitted_, offset);
}

void Wal::mark_durable(std::uint64_t offset) {
  GRYPHON_CHECK(offset <= tail_);
  durable_ = std::max(durable_, offset);
  submitted_ = std::max(submitted_, durable_);
}

void Wal::merge_stream(const wire::StreamSnapshot& snapshot) {
  StreamMeta& s = streams_[snapshot.id];
  if (s.name.empty()) s.name = snapshot.name;
  s.base = std::max(s.base, snapshot.base);
  s.next = std::max(s.next, snapshot.next);
}

Wal::RecoveryStats Wal::crash_and_recover(Delegate& delegate) {
  const std::uint64_t dirty = submitted_ - durable_;
  const std::uint64_t survive = durable_ + (dirty == 0 ? 0 : crash_entropy_ % (dirty + 1));
  crash_entropy_ = 0;
  return recover_surviving(survive, delegate);
}

Wal::RecoveryStats Wal::recover_surviving(std::uint64_t survive_offset,
                                          Delegate& delegate) {
  const std::uint64_t survive =
      std::clamp(survive_offset, durable_, submitted_);
  // Physical page-cache loss: everything past the surviving prefix is gone
  // from the backend before the scan even starts. Not counted as "truncated"
  // — these bytes were never promised to anyone; the truncation metric
  // counts only the torn tail the *scanner* has to discard.
  while (!segments_.empty() && segments_.back().base_offset >= survive) {
    backend_.drop_segment(segments_.back().seq);
    segments_.pop_back();
  }
  if (!segments_.empty()) {
    SegmentMeta& back = segments_.back();
    if (back.base_offset + back.size > survive) {
      backend_.truncate(back.seq, survive - back.base_offset);
    }
  }
  return scan_and_rebuild(delegate);
}

Wal::RecoveryStats Wal::replay(Delegate& delegate) { return scan_and_rebuild(delegate); }

Wal::RecoveryStats Wal::scan_and_rebuild(Delegate& delegate) {
  RecoveryStats stats;
  segments_.clear();
  streams_.clear();
  std::uint64_t offset = 0;
  bool corrupt = false;

  for (const std::uint64_t seq : backend_.segments()) {
    if (corrupt) {
      // Everything after the first corruption is past the valid prefix.
      stats.truncated_bytes += backend_.size(seq);
      backend_.drop_segment(seq);
      ++stats.dropped_segments;
      continue;
    }
    const std::vector<std::byte> bytes = backend_.load(seq);
    const auto hp = wire::parse_segment_header(bytes);
    if (hp.consumed == 0) {
      corrupt = true;
      last_corruption_ = Corruption{true, seq, 0, hp.crc_expected, hp.crc_found,
                                    hp.reason != nullptr ? hp.reason : "?"};
      stats.truncated_bytes += bytes.size();
      backend_.drop_segment(seq);
      ++stats.dropped_segments;
      continue;
    }

    SegmentMeta meta;
    meta.seq = seq;
    meta.base_offset = offset;
    for (const auto& snapshot : hp.header.streams) {
      merge_stream(snapshot);
      delegate.on_stream(snapshot);
    }

    std::size_t at = hp.consumed;
    const std::span<const std::byte> all(bytes);
    while (at < bytes.size()) {
      const auto fp = wire::parse_frame(all.subspan(at));
      if (fp.consumed == 0) {
        corrupt = true;
        last_corruption_ = Corruption{true, seq, at, fp.crc_expected, fp.crc_found,
                                      fp.reason != nullptr ? fp.reason : "?"};
        stats.truncated_bytes += bytes.size() - at;
        backend_.truncate(seq, at);
        break;
      }
      note_frame(meta, fp.frame);
      delegate.on_frame(fp.frame);
      ++stats.frames;
      at += fp.consumed;
    }
    meta.size = at;
    meta.sealed = true;
    offset += meta.size;
    segments_.push_back(std::move(meta));
  }

  tail_ = offset;
  if (segments_.empty()) {
    roll_segment();
  } else {
    segments_.back().sealed = false;
  }
  durable_ = tail_;
  submitted_ = tail_;
  ++recoveries_;
  truncated_bytes_total_ += stats.truncated_bytes;
  if (stats.truncated_bytes > 0) stats.corruption = last_corruption_;
  return stats;
}

void Wal::gc() {
  while (segments_.size() > 1) {
    const SegmentMeta& head = segments_.front();
    if (!head.sealed || head.has_db_snapshot) break;
    if (head.base_offset + head.size > durable_) break;
    bool dead = true;
    for (const auto& [stream, max_idx] : head.max_index) {
      const auto it = streams_.find(stream);
      if (it == streams_.end() || max_idx >= it->second.base) {
        dead = false;
        break;
      }
    }
    if (!dead) break;
    backend_.drop_segment(head.seq);
    ++gc_dropped_;
    segments_.pop_front();
  }
}

void Wal::drop_segments_below(std::uint64_t first_keep) {
  while (segments_.size() > 1 && segments_.front().seq < first_keep) {
    const SegmentMeta& head = segments_.front();
    GRYPHON_CHECK_MSG(head.sealed && head.base_offset + head.size <= durable_,
                      "snapshot compaction dropping a live segment");
    backend_.drop_segment(head.seq);
    ++gc_dropped_;
    segments_.pop_front();
  }
}

std::uint64_t Wal::live_bytes() const {
  std::uint64_t sum = 0;
  for (const SegmentMeta& s : segments_) sum += s.size;
  return sum;
}

std::string Wal::format_corruption(const Corruption& c) {
  if (!c.valid) return "no corruption recorded";
  char buf[192];
  std::snprintf(buf, sizeof buf,
                "segment %llu offset %llu: %s (crc expected 0x%08X found 0x%08X)",
                static_cast<unsigned long long>(c.segment_seq),
                static_cast<unsigned long long>(c.offset), c.reason.c_str(),
                c.crc_expected, c.crc_found);
  return buf;
}

}  // namespace gryphon::storage
