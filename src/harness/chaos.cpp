#include "harness/chaos.hpp"

#include <algorithm>
#include <cinttypes>

namespace gryphon::harness {

namespace {
/// Cooldown appended after a target's repair before it may be picked again,
/// so consecutive faults on one target never race their repair actions.
constexpr SimDuration kTargetCooldown = msec(200);

std::string fmt_line(SimTime rel, const char* kind, const std::string& detail) {
  char buf[192];
  std::snprintf(buf, sizeof buf, "+%8.3fs  %-16s %s", to_seconds(rel), kind,
                detail.c_str());
  return buf;
}
}  // namespace

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kPartition: return "partition";
    case FaultKind::kFlap: return "flap";
    case FaultKind::kDegrade: return "degrade";
    case FaultKind::kDiskStall: return "disk-stall";
    case FaultKind::kTornSync: return "torn-sync";
    case FaultKind::kCrashRestart: return "crash";
    case FaultKind::kCrashDuringRecovery: return "crash-in-recovery";
    case FaultKind::kDoubleFault: return "double-fault";
    case FaultKind::kFrameCorrupt: return "frame-corrupt";
    case FaultKind::kPowerLoss: return "power-loss";
    case FaultKind::kCatchupReadFault: return "catchup-read-fault";
  }
  return "?";
}

ChaosSchedule::ChaosSchedule(System& system, ChaosConfig config)
    : system_(system), config_(config), rng_(config.seed) {
  GRYPHON_CHECK(config_.horizon > 0 && config_.min_gap > 0 &&
                config_.max_gap >= config_.min_gap && config_.settle >= 0);
  armed_at_ = system_.simulator().now();
  repaired_at_ = armed_at_;
  enumerate_targets();
  plan();
}

void ChaosSchedule::enumerate_targets() {
  auto& net = system_.network();
  brokers_.push_back({BrokerTarget::Type::kPhb, 0, net.name_of(system_.phb_endpoint())});
  for (int i = 0; i < system_.num_intermediates(); ++i) {
    brokers_.push_back({BrokerTarget::Type::kIntermediate, i,
                        net.name_of(system_.intermediate_endpoint(i))});
  }
  for (int i = 0; i < system_.num_shbs(); ++i) {
    brokers_.push_back(
        {BrokerTarget::Type::kShb, i, net.name_of(system_.shb_endpoint(i))});
  }
  auto link_name = [&net](sim::EndpointId a, sim::EndpointId b) {
    return net.name_of(a) + "<->" + net.name_of(b);
  };
  for (int i = 0; i < system_.num_intermediates(); ++i) {
    const auto up = system_.intermediate_uplink_endpoint(i);
    const auto down = system_.intermediate_endpoint(i);
    links_.push_back({up, down, -1, link_name(up, down)});
  }
  for (int i = 0; i < system_.num_shbs(); ++i) {
    const auto up = system_.shb_uplink_endpoint(i);
    const auto down = system_.shb_endpoint(i);
    links_.push_back({up, down, i, link_name(up, down)});
  }
  broker_busy_until_.assign(brokers_.size(), armed_at_);
  link_busy_until_.assign(links_.size(), armed_at_);
}

SimDuration ChaosSchedule::draw_duration(SimDuration lo, SimDuration hi) {
  GRYPHON_CHECK(lo > 0 && hi >= lo);
  return lo + static_cast<SimDuration>(
                  rng_.next_below(static_cast<std::uint64_t>(hi - lo) + 1));
}

void ChaosSchedule::record(SimTime at, FaultKind kind, std::string description) {
  timeline_.push_back({at, kind, std::move(description)});
}

void ChaosSchedule::plan() {
  const SimTime end = armed_at_ + config_.horizon;
  SimTime t = armed_at_ + draw_duration(config_.min_gap, config_.max_gap);
  while (t < end) {
    // Candidate kinds: positive weight AND at least one target free at t.
    // Collected in enum order so the weighted draw is deterministic.
    std::vector<std::size_t> free_links, free_brokers, free_double_links, free_shbs;
    for (std::size_t i = 0; i < links_.size(); ++i) {
      if (link_busy_until_[i] > t) continue;
      free_links.push_back(i);
      if (links_[i].shb_index >= 0 &&
          broker_busy_until_[broker_index_of_shb(links_[i].shb_index)] <= t) {
        free_double_links.push_back(i);
      }
    }
    for (std::size_t i = 0; i < brokers_.size(); ++i) {
      if (broker_busy_until_[i] > t) continue;
      free_brokers.push_back(i);
      if (brokers_[i].type == BrokerTarget::Type::kShb) free_shbs.push_back(i);
    }

    struct Cand {
      FaultKind kind;
      int weight;
      const std::vector<std::size_t>* targets;
    };
    const ChaosWeights& w = config_.weights;
    std::vector<Cand> cands;
    if (w.partition > 0 && !free_links.empty())
      cands.push_back({FaultKind::kPartition, w.partition, &free_links});
    if (w.flap > 0 && !free_links.empty())
      cands.push_back({FaultKind::kFlap, w.flap, &free_links});
    if (w.degrade > 0 && !free_links.empty())
      cands.push_back({FaultKind::kDegrade, w.degrade, &free_links});
    if (w.disk_stall > 0 && !free_brokers.empty())
      cands.push_back({FaultKind::kDiskStall, w.disk_stall, &free_brokers});
    if (w.torn_sync > 0 && !free_brokers.empty())
      cands.push_back({FaultKind::kTornSync, w.torn_sync, &free_brokers});
    if (w.crash_restart > 0 && !free_brokers.empty())
      cands.push_back({FaultKind::kCrashRestart, w.crash_restart, &free_brokers});
    if (w.crash_during_recovery > 0 && !free_brokers.empty())
      cands.push_back(
          {FaultKind::kCrashDuringRecovery, w.crash_during_recovery, &free_brokers});
    if (w.double_fault > 0 && !free_double_links.empty())
      cands.push_back({FaultKind::kDoubleFault, w.double_fault, &free_double_links});
    if (w.frame_corrupt > 0 && !free_links.empty())
      cands.push_back({FaultKind::kFrameCorrupt, w.frame_corrupt, &free_links});
    // Power loss takes the whole cluster down at once, so it is a candidate
    // only when no broker has an outstanding fault.
    if (w.power_loss > 0 && free_brokers.size() == brokers_.size())
      cands.push_back({FaultKind::kPowerLoss, w.power_loss, &free_brokers});
    if (w.catchup_read_fault > 0 && !free_shbs.empty())
      cands.push_back({FaultKind::kCatchupReadFault, w.catchup_read_fault, &free_shbs});

    if (cands.empty()) {
      // Everything is busy with an outstanding fault: skip forward.
      t += draw_duration(config_.min_gap, config_.max_gap);
      continue;
    }
    int total = 0;
    for (const Cand& c : cands) total += c.weight;
    auto pick = static_cast<int>(rng_.next_below(static_cast<std::uint64_t>(total)));
    std::size_t chosen = 0;
    while (pick >= cands[chosen].weight) pick -= cands[chosen++].weight;
    const Cand& cand = cands[chosen];
    const std::size_t target =
        (*cand.targets)[rng_.next_below(cand.targets->size())];

    switch (cand.kind) {
      case FaultKind::kPartition: plan_partition(t, target); break;
      case FaultKind::kFlap: plan_flap(t, target); break;
      case FaultKind::kDegrade: plan_degrade(t, target); break;
      case FaultKind::kDiskStall: plan_disk_stall(t, target); break;
      case FaultKind::kTornSync: plan_torn_sync(t, target); break;
      case FaultKind::kCrashRestart: plan_crash_restart(t, target); break;
      case FaultKind::kCrashDuringRecovery: plan_crash_during_recovery(t, target); break;
      case FaultKind::kDoubleFault: plan_double_fault(t, target); break;
      case FaultKind::kFrameCorrupt: plan_frame_corrupt(t, target); break;
      case FaultKind::kPowerLoss: plan_power_loss(t); break;  // target unused
      case FaultKind::kCatchupReadFault: plan_catchup_read_fault(t, target); break;
    }
    t += draw_duration(config_.min_gap, config_.max_gap);
  }
}

std::size_t ChaosSchedule::broker_index_of_shb(int shb_index) const {
  // brokers_ = [phb, intermediates..., shbs...] in construction order.
  return 1 + static_cast<std::size_t>(system_.num_intermediates()) +
         static_cast<std::size_t>(shb_index);
}

void ChaosSchedule::plan_partition(SimTime t, std::size_t link) {
  const LinkTarget& l = links_[link];
  const SimDuration dur = draw_duration(msec(200), sec(3));
  auto& sim = system_.simulator();
  sim.schedule_at(t, [this, link] {
    system_.network().partition(links_[link].a, links_[link].b);
  });
  sim.schedule_at(t + dur, [this, link] {
    system_.network().heal(links_[link].a, links_[link].b);
  });
  link_busy_until_[link] = t + dur + kTargetCooldown;
  note_repair(t + dur);
  system_.note_fault_span(t, t + dur, "partition " + l.name);
  char d[96];
  std::snprintf(d, sizeof d, "%s for %.3fs", l.name.c_str(), to_seconds(dur));
  record(t, FaultKind::kPartition,
         fmt_line(t - armed_at_, fault_kind_name(FaultKind::kPartition), d));
}

void ChaosSchedule::plan_flap(SimTime t, std::size_t link) {
  const LinkTarget& l = links_[link];
  const int cycles = static_cast<int>(rng_.next_in(2, 4));
  const SimDuration down = draw_duration(msec(100), msec(500));
  const SimDuration up = draw_duration(msec(200), msec(800));
  auto& sim = system_.simulator();
  sim.schedule_at(t, [this, link, down, up, cycles] {
    system_.network().schedule_flaps(links_[link].a, links_[link].b, down, up, cycles);
  });
  const SimTime healed = t + static_cast<SimDuration>(cycles) * (down + up);
  link_busy_until_[link] = healed + kTargetCooldown;
  note_repair(healed);
  system_.note_fault_span(t, healed, "flap " + l.name);
  char d[128];
  std::snprintf(d, sizeof d, "%s x%d (down %.3fs / up %.3fs)", l.name.c_str(), cycles,
                to_seconds(down), to_seconds(up));
  record(t, FaultKind::kFlap, fmt_line(t - armed_at_, fault_kind_name(FaultKind::kFlap), d));
}

void ChaosSchedule::plan_degrade(SimTime t, std::size_t link) {
  const LinkTarget& l = links_[link];
  const SimDuration dur = draw_duration(sec(1), sec(4));
  const double latency_factor = static_cast<double>(rng_.next_in(2, 8));
  const double bandwidth_factor =
      static_cast<double>(rng_.next_in(10, 100)) / 100.0;
  auto& sim = system_.simulator();
  sim.schedule_at(t, [this, link, latency_factor, bandwidth_factor] {
    system_.network().degrade(links_[link].a, links_[link].b, latency_factor,
                              bandwidth_factor);
  });
  sim.schedule_at(t + dur, [this, link] {
    system_.network().restore(links_[link].a, links_[link].b);
  });
  link_busy_until_[link] = t + dur + kTargetCooldown;
  note_repair(t + dur);
  system_.note_fault_span(t, t + dur, "degrade " + l.name);
  char d[128];
  std::snprintf(d, sizeof d, "%s latency x%.0f bandwidth x%.2f for %.3fs",
                l.name.c_str(), latency_factor, bandwidth_factor, to_seconds(dur));
  record(t, FaultKind::kDegrade,
         fmt_line(t - armed_at_, fault_kind_name(FaultKind::kDegrade), d));
}

storage::SimDisk& ChaosSchedule::disk_of(const BrokerTarget& b) {
  switch (b.type) {
    case BrokerTarget::Type::kIntermediate: return system_.intermediate_disk(b.index);
    case BrokerTarget::Type::kShb: return system_.shb_disk(b.index);
    case BrokerTarget::Type::kPhb:
    default: return system_.phb_disk();
  }
}

void ChaosSchedule::plan_disk_stall(SimTime t, std::size_t broker) {
  const BrokerTarget& b = brokers_[broker];
  const SimDuration dur = draw_duration(msec(50), msec(500));
  system_.simulator().schedule_at(t, [this, broker, dur] {
    disk_of(brokers_[broker]).inject_stall(dur);
  });
  broker_busy_until_[broker] = t + dur + kTargetCooldown;
  note_repair(t + dur);
  system_.note_fault_span(t, t + dur, "disk-stall " + b.name);
  char d[96];
  std::snprintf(d, sizeof d, "%s.disk frozen %.3fs", b.name.c_str(), to_seconds(dur));
  record(t, FaultKind::kDiskStall,
         fmt_line(t - armed_at_, fault_kind_name(FaultKind::kDiskStall), d));
}

core::NodeResources& ChaosSchedule::node_of(const BrokerTarget& b) {
  switch (b.type) {
    case BrokerTarget::Type::kIntermediate: return system_.intermediate_node(b.index);
    case BrokerTarget::Type::kShb: return system_.shb_node(b.index);
    case BrokerTarget::Type::kPhb:
    default: return system_.phb_node();
  }
}

void ChaosSchedule::torn_sync_at(SimTime t, const BrokerTarget& b,
                                 std::uint64_t entropy) {
  const auto type = b.type;
  const int index = b.index;
  system_.simulator().schedule_at(t, [this, type, index, entropy] {
    switch (type) {
      case BrokerTarget::Type::kPhb: system_.torn_sync_phb(entropy); break;
      case BrokerTarget::Type::kIntermediate:
        system_.torn_sync_intermediate(index, entropy);
        break;
      case BrokerTarget::Type::kShb: system_.torn_sync_shb(index, entropy); break;
    }
  });
}

void ChaosSchedule::plan_torn_sync(SimTime t, std::size_t broker) {
  const BrokerTarget& b = brokers_[broker];
  torn_sync_at(t, b, rng_.next_u64());
  broker_busy_until_[broker] = t + kTargetCooldown;
  note_repair(t);
  system_.note_fault_instant(t, "torn-sync " + b.name);
  record(t, FaultKind::kTornSync,
         fmt_line(t - armed_at_, fault_kind_name(FaultKind::kTornSync),
                  b.name + ".disk in-flight barriers lost"));
}

void ChaosSchedule::crash_broker_at(SimTime t, const BrokerTarget& b,
                                    std::uint64_t entropy) {
  const auto type = b.type;
  const int index = b.index;
  system_.simulator().schedule_at(t, [this, type, index, entropy] {
    // Seed the WAL tear point before the crash so recovery scans a tail torn
    // somewhere inside the dirty window, not always at the durable watermark.
    BrokerTarget key{type, index, ""};
    core::NodeResources& node = node_of(key);
    node.log_volume.set_crash_entropy(entropy);
    node.database.set_crash_entropy(entropy >> 7);
    switch (type) {
      case BrokerTarget::Type::kPhb: system_.crash_phb(); break;
      case BrokerTarget::Type::kIntermediate: system_.crash_intermediate(index); break;
      case BrokerTarget::Type::kShb: system_.crash_shb(index); break;
    }
  });
}

void ChaosSchedule::restart_broker_at(SimTime t, const BrokerTarget& b) {
  const auto type = b.type;
  const int index = b.index;
  system_.simulator().schedule_at(t, [this, type, index] {
    switch (type) {
      case BrokerTarget::Type::kPhb: system_.restart_phb(); break;
      case BrokerTarget::Type::kIntermediate: system_.restart_intermediate(index); break;
      case BrokerTarget::Type::kShb: system_.restart_shb(index); break;
    }
  });
}

void ChaosSchedule::plan_crash_restart(SimTime t, std::size_t broker) {
  const BrokerTarget& b = brokers_[broker];
  const SimDuration outage = draw_duration(msec(300), sec(3));
  crash_broker_at(t, b, rng_.next_u64());
  restart_broker_at(t + outage, b);
  broker_busy_until_[broker] = t + outage + kTargetCooldown;
  note_repair(t + outage);
  system_.note_fault_span(t, t + outage, "crash " + b.name);
  char d[96];
  std::snprintf(d, sizeof d, "%s down %.3fs", b.name.c_str(), to_seconds(outage));
  record(t, FaultKind::kCrashRestart,
         fmt_line(t - armed_at_, fault_kind_name(FaultKind::kCrashRestart), d));
}

void ChaosSchedule::plan_crash_during_recovery(SimTime t, std::size_t broker) {
  const BrokerTarget& b = brokers_[broker];
  const SimDuration outage1 = draw_duration(msec(300), sec(2));
  // A PFS metadata / DB reload read costs >= the 6ms seek, so a second crash
  // 1-40ms into the restart reliably lands inside recovery IO.
  const SimDuration recovery_window = draw_duration(msec(1), msec(40));
  const SimDuration outage2 = draw_duration(msec(300), sec(2));
  crash_broker_at(t, b, rng_.next_u64());
  restart_broker_at(t + outage1, b);
  crash_broker_at(t + outage1 + recovery_window, b, rng_.next_u64());
  const SimTime back = t + outage1 + recovery_window + outage2;
  restart_broker_at(back, b);
  broker_busy_until_[broker] = back + kTargetCooldown;
  note_repair(back);
  system_.note_fault_span(t, back, "crash-in-recovery " + b.name);
  system_.note_fault_instant(t + outage1 + recovery_window, "re-crash " + b.name);
  char d[128];
  std::snprintf(d, sizeof d, "%s down %.3fs, re-crashed %.3fs into recovery, down %.3fs",
                b.name.c_str(), to_seconds(outage1), to_seconds(recovery_window),
                to_seconds(outage2));
  record(t, FaultKind::kCrashDuringRecovery,
         fmt_line(t - armed_at_, fault_kind_name(FaultKind::kCrashDuringRecovery), d));
}

void ChaosSchedule::plan_double_fault(SimTime t, std::size_t link) {
  const LinkTarget& l = links_[link];
  GRYPHON_CHECK(l.shb_index >= 0);
  const std::size_t broker = broker_index_of_shb(l.shb_index);
  const BrokerTarget& b = brokers_[broker];
  const SimDuration partition_len = draw_duration(sec(1), sec(4));
  const SimDuration crash_offset = draw_duration(msec(100), msec(800));
  const SimDuration outage = draw_duration(msec(300), sec(2));

  auto& sim = system_.simulator();
  sim.schedule_at(t, [this, link] {
    system_.network().partition(links_[link].a, links_[link].b);
  });
  crash_broker_at(t + crash_offset, b, rng_.next_u64());
  // The restart may land inside or after the partition window: a broker
  // recovering behind a severed uplink must keep retrying its nacks until
  // the heal, not wedge on the first refused send.
  restart_broker_at(t + crash_offset + outage, b);
  sim.schedule_at(t + partition_len, [this, link] {
    system_.network().heal(links_[link].a, links_[link].b);
  });

  const SimTime repaired = std::max(t + partition_len, t + crash_offset + outage);
  link_busy_until_[link] = repaired + kTargetCooldown;
  broker_busy_until_[broker] = repaired + kTargetCooldown;
  note_repair(repaired);
  system_.note_fault_span(t, t + partition_len, "partition " + l.name);
  system_.note_fault_span(t + crash_offset, t + crash_offset + outage,
                          "crash " + b.name);
  char d[160];
  std::snprintf(d, sizeof d,
                "%s severed %.3fs; %s crashed +%.3fs in, down %.3fs (restart %s heal)",
                l.name.c_str(), to_seconds(partition_len), b.name.c_str(),
                to_seconds(crash_offset), to_seconds(outage),
                crash_offset + outage < partition_len ? "before" : "after");
  record(t, FaultKind::kDoubleFault,
         fmt_line(t - armed_at_, fault_kind_name(FaultKind::kDoubleFault), d));
}

void ChaosSchedule::plan_frame_corrupt(SimTime t, std::size_t link) {
  const LinkTarget& l = links_[link];
  // Direction matters: upstream frames (nacks, acks) and downstream frames
  // (stream data, deliveries) exercise different retransmission paths.
  const bool downstream = rng_.next_below(2) == 0;
  const int count = static_cast<int>(rng_.next_in(3, 12));
  const std::uint64_t seed = rng_.next_u64();
  const SimDuration window = draw_duration(msec(500), sec(2));
  const sim::EndpointId from = downstream ? l.a : l.b;
  const sim::EndpointId to = downstream ? l.b : l.a;
  auto& sim = system_.simulator();
  sim.schedule_at(t, [this, from, to, count, seed] {
    system_.network().corrupt_frames(from, to, count, seed);
  });
  // The budget usually drains inside the window; the explicit disarm bounds
  // the fault so an idle link cannot carry armed corruption into the settle
  // phase and break quiescence.
  sim.schedule_at(t + window, [this, from, to] {
    system_.network().clear_corruption(from, to);
  });
  link_busy_until_[link] = t + window + kTargetCooldown;
  note_repair(t + window);
  system_.note_fault_span(t, t + window, "frame-corrupt " + l.name);
  char d[128];
  std::snprintf(d, sizeof d, "%s %s: next %d frames mangled (window %.3fs)",
                l.name.c_str(), downstream ? "downstream" : "upstream", count,
                to_seconds(window));
  record(t, FaultKind::kFrameCorrupt,
         fmt_line(t - armed_at_, fault_kind_name(FaultKind::kFrameCorrupt), d));
}

void ChaosSchedule::plan_power_loss(SimTime t) {
  // Correlated failure: the machine room loses power. Every broker crashes
  // at the same instant, each with its own independently drawn WAL-tear
  // entropy (the tails tear at different byte offsets, as real disks would).
  // Restarts are staggered root-first — PHB, intermediates, then SHBs —
  // so every recovering broker finds a live parent for its resume handshake.
  const SimDuration outage = draw_duration(msec(500), sec(3));
  std::vector<std::uint64_t> entropies;
  entropies.reserve(brokers_.size());
  for (std::size_t i = 0; i < brokers_.size(); ++i) entropies.push_back(rng_.next_u64());
  for (std::size_t i = 0; i < brokers_.size(); ++i) {
    crash_broker_at(t, brokers_[i], entropies[i]);
  }
  SimTime back = t + outage;
  for (std::size_t i = 0; i < brokers_.size(); ++i) {
    back = t + outage + static_cast<SimDuration>(i) * msec(100);
    restart_broker_at(back, brokers_[i]);
  }
  for (std::size_t i = 0; i < brokers_.size(); ++i) {
    broker_busy_until_[i] = back + kTargetCooldown;
  }
  note_repair(back);
  system_.note_fault_span(t, back, "power-loss: all brokers");
  char d[96];
  std::snprintf(d, sizeof d, "all %zu brokers down %.3fs (restarts staggered over %.1fs)",
                brokers_.size(), to_seconds(outage),
                to_seconds(static_cast<SimDuration>(brokers_.size() - 1) * msec(100)));
  record(t, FaultKind::kPowerLoss,
         fmt_line(t - armed_at_, fault_kind_name(FaultKind::kPowerLoss), d));

  // Composition with frame corruption (codec runs): in-flight bytes around a
  // power event are exactly where torn frames appear in practice, so up to
  // two free links arm a seeded corruption window spanning the cluster-wide
  // crash instant — from shortly before the blackout until every broker's
  // staggered restart has completed. The receiving transports must reject
  // every mangled frame (decode rejects are counted at the Network, which
  // survives broker restarts) and the retransmission paths close the holes.
  // All rng draws here are gated on the frame_corrupt weight so struct-mode
  // power-loss schedules are byte-identical with and without this feature.
  if (config_.weights.frame_corrupt > 0 && !links_.empty()) {
    std::vector<std::size_t> free;
    for (std::size_t i = 0; i < links_.size(); ++i) {
      if (link_busy_until_[i] <= t) free.push_back(i);
    }
    // A link free at t was repaired no later than t - cooldown, so arming
    // cooldown-early can never overlap the previous fault's own window.
    const SimTime arm = std::max(armed_at_, t - kTargetCooldown);
    const SimTime disarm = back + msec(300);
    const std::size_t picks = std::min<std::size_t>(2, free.size());
    for (std::size_t k = 0; k < picks; ++k) {
      const auto pos = static_cast<std::size_t>(rng_.next_below(free.size()));
      const std::size_t link = free[pos];
      free.erase(free.begin() + static_cast<std::ptrdiff_t>(pos));
      const LinkTarget& l = links_[link];
      const bool downstream = rng_.next_below(2) == 0;
      const int count = static_cast<int>(rng_.next_in(4, 16));
      const std::uint64_t cseed = rng_.next_u64();
      const sim::EndpointId from = downstream ? l.a : l.b;
      const sim::EndpointId to = downstream ? l.b : l.a;
      auto& sim = system_.simulator();
      sim.schedule_at(arm, [this, from, to, count, cseed] {
        system_.network().corrupt_frames(from, to, count, cseed);
      });
      sim.schedule_at(disarm, [this, from, to] {
        system_.network().clear_corruption(from, to);
      });
      link_busy_until_[link] = disarm + kTargetCooldown;
      note_repair(disarm);
      system_.note_fault_span(arm, disarm, "frame-corrupt " + l.name);
      char cd[160];
      std::snprintf(cd, sizeof cd,
                    "%s %s: %d frames mangled across the blackout (disarm %.3fs)",
                    l.name.c_str(), downstream ? "downstream" : "upstream", count,
                    to_seconds(disarm - arm));
      record(arm, FaultKind::kFrameCorrupt,
             fmt_line(arm - armed_at_, fault_kind_name(FaultKind::kFrameCorrupt), cd));
    }
  }
}

void ChaosSchedule::plan_catchup_read_fault(SimTime t, std::size_t broker) {
  const BrokerTarget& b = brokers_[broker];
  GRYPHON_CHECK(b.type == BrokerTarget::Type::kShb);
  // Crash the SHB, then mine its recovery: when it comes back every durable
  // subscriber reconnects at once and the catchup streams all walk PFS
  // back-pointer chains on its disk. A stall plus a budget of seeded read
  // faults (per-read latency spikes) armed just as recovery completes lands
  // squarely on those reads — the catchup path must absorb slow, bursty PFS
  // IO without reordering or double-delivering.
  const SimDuration outage = draw_duration(msec(400), sec(2));
  const int count = static_cast<int>(rng_.next_in(15, 60));
  const std::uint64_t seed = rng_.next_u64();
  const SimDuration stall = draw_duration(msec(20), msec(120));
  crash_broker_at(t, b, rng_.next_u64());
  restart_broker_at(t + outage, b);
  // +5ms: after the restart task but before the first catchup read (the PFS
  // metadata/DB reload alone costs a >= 6ms seek).
  const SimTime armed = t + outage + msec(5);
  const SimTime window_end = armed + sec(4);
  system_.simulator().schedule_at(armed, [this, broker, stall, count, seed] {
    auto& disk = disk_of(brokers_[broker]);
    disk.inject_stall(stall);
    disk.arm_read_faults(count, seed, msec(1), msec(20));
  });
  // Any unspent budget is disarmed so a quiet disk cannot carry read faults
  // into the settle phase (mirrors the frame-corrupt window bound).
  system_.simulator().schedule_at(window_end, [this, broker] {
    disk_of(brokers_[broker]).clear_read_faults();
  });
  broker_busy_until_[broker] = window_end + kTargetCooldown;
  note_repair(window_end);
  system_.note_fault_span(t, window_end, "catchup-read-fault " + b.name);
  char d[160];
  std::snprintf(d, sizeof d,
                "%s down %.3fs; %d PFS read faults + %.3fs stall armed at restart",
                b.name.c_str(), to_seconds(outage), count, to_seconds(stall));
  record(t, FaultKind::kCatchupReadFault,
         fmt_line(t - armed_at_, fault_kind_name(FaultKind::kCatchupReadFault), d));
}

void ChaosSchedule::run() {
  system_.enable_invariants(config_.monitor);
  try {
    const SimTime target = repaired_at_ + config_.settle;
    auto& sim = system_.simulator();
    if (target > sim.now()) system_.run_for(target - sim.now());
    system_.verify_quiescent(config_.require_connected);
  } catch (const InvariantViolation&) {
    dump(stderr);
    throw;
  }
}

std::string ChaosSchedule::timeline_string() const {
  char head[96];
  std::snprintf(head, sizeof head, "chaos seed=%" PRIu64 " faults=%zu\n", config_.seed,
                timeline_.size());
  std::string out = head;
  for (const FaultEvent& e : timeline_) {
    out += e.description;
    out += '\n';
  }
  return out;
}

void ChaosSchedule::dump(std::FILE* out) const {
  std::fprintf(out,
               "\n=== chaos schedule seed %" PRIu64
               " violated an invariant at t=%.3fs ===\n"
               "replay: rerun this schedule with ChaosConfig{.seed = %" PRIu64
               "} over the same topology\n"
               "fault timeline (times relative to arming at t=%.3fs):\n%s\n",
               config_.seed, to_seconds(system_.simulator().now()), config_.seed,
               to_seconds(armed_at_), timeline_string().c_str());

  // Flight recorder: merge every node's milestone ring into one time-ordered
  // narrative, focused on the oracle's recorded violation when it has one —
  // the checklist then says exactly which milestones the offending
  // (pubend, tick) did and did not pass.
  const auto& v = system_.oracle().last_violation();
  FlightRecorderFocus focus;
  const FlightRecorderFocus* focus_ptr = nullptr;
  if (v.valid) {
    std::fprintf(out, "violation focus: subscriber %u, pubend %u, tick %lld — %s\n",
                 v.subscriber.value(), v.pubend.value(),
                 static_cast<long long>(v.tick), v.what.c_str());
    focus.pubend = static_cast<std::int64_t>(v.pubend.value());
    focus.tick = v.tick;
    focus_ptr = &focus;
  }
  system_.dump_flight_recorder(out, focus_ptr);
}

}  // namespace gryphon::harness
