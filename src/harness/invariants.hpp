// InvariantMonitor — the always-on invariant checker behind chaos runs.
//
// The DeliveryOracle already fails *at the violating event* for duplicate,
// out-of-order, spurious and malformed-gap deliveries (its observer hooks
// throw). What it cannot see from deliveries alone is broker-side progress
// state, and its exactly-once sweep only runs when someone calls it. The
// monitor closes both holes: registered with a System, it wakes every
// `period` of simulated time and checks
//
//  * exactly-once (oracle.verify_all) — sound mid-run, because a
//    subscriber's CT horizon only advances at consumption, so anything the
//    CT covers must already be delivered or gapped;
//  * per live SHB and pubend, latestDelivered(p) and released(p) never
//    regress within one broker incarnation;
//  * across a crash/restart, the first recovered values never exceed the
//    values the broker held at the instant it died (recovery may lose the
//    tail past the last commit, never invent progress).
//
// A violation throws InvariantViolation from the simulated task that found
// it, so a chaos run stops within one period of the offending fault.
//
// released(p) monotonicity assumes no subscriber migration: reconnect-
// anywhere legitimately lowers the min when a subscription moves in with an
// older released pin. Disable check_released_monotonic for such workloads.
#pragma once

#include <cstdint>
#include <map>
#include <utility>

#include "util/ids.hpp"
#include "util/time.hpp"

namespace gryphon::harness {

class System;

class InvariantMonitor {
 public:
  struct Options {
    SimDuration period = msec(200);
    bool check_exactly_once = true;
    bool check_released_monotonic = true;
  };

  InvariantMonitor(System& system, Options options);
  InvariantMonitor(const InvariantMonitor&) = delete;
  InvariantMonitor& operator=(const InvariantMonitor&) = delete;

  /// Called by System::crash_shb while the broker is still alive: snapshots
  /// the progress values recovery must not exceed.
  void note_shb_crash(int shb_index);

  /// Called by System::restart_shb immediately after recovery: checks the
  /// recovered latestDelivered/released against the crash snapshot (recovery
  /// may lose the tail past the last commit, never invent progress) and
  /// re-baselines the monotonicity tracking for the new incarnation.
  void note_shb_restart(int shb_index);

  /// Runs all checks immediately (also invoked by the periodic task).
  void sweep();

  [[nodiscard]] std::uint64_t sweeps() const { return sweeps_; }

 private:
  struct Track {
    Tick latest_delivered = kTickZero;
    Tick released = kTickZero;
    bool fresh = true;  // no sample yet in this incarnation
  };

  void schedule_next();
  void check_shb(int shb_index);

  System& system_;
  Options options_;
  std::map<std::pair<int, PubendId>, Track> tracks_;
  std::map<std::pair<int, PubendId>, Track> crash_snapshots_;
  std::uint64_t sweeps_ = 0;
};

}  // namespace gryphon::harness
