#include "harness/workload.hpp"

#include <cmath>

namespace gryphon::harness {

core::Publisher::EventFactory group_event_factory(int groups,
                                                  std::size_t payload_bytes) {
  GRYPHON_CHECK(groups >= 1);
  return [groups, payload_bytes](std::uint64_t seq) {
    matching::EventData::AttributeList attrs;
    attrs.reserve(2);
    attrs.emplace_back("g", matching::Value(static_cast<std::int64_t>(
                                seq % static_cast<std::uint64_t>(groups))));
    attrs.emplace_back("seq", matching::Value(static_cast<std::int64_t>(seq)));
    return std::make_shared<matching::EventData>(std::move(attrs), std::string{},
                                                 payload_bytes);
  };
}

std::string group_predicate(int k) { return "g == " + std::to_string(k); }

void start_paper_publishers(System& system, const PaperWorkloadConfig& config) {
  const int n = static_cast<int>(system.pubends().size());
  const double per_pubend = config.input_rate_eps / n;
  const auto interval = static_cast<SimDuration>(std::llround(1e6 / per_pubend));
  int i = 0;
  for (PubendId p : system.pubends()) {
    auto& pub = system.add_publisher(p, interval,
                                     group_event_factory(config.groups,
                                                         config.payload_bytes),
                                     /*start_offset=*/interval * i / n);
    pub.start();
    ++i;
  }
}

std::vector<core::DurableSubscriber*> add_group_subscribers(
    System& system, int shb_index, int count, int groups, std::uint32_t first_id,
    int machines, SimDuration ack_interval) {
  std::vector<core::DurableSubscriber*> out;
  out.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    core::DurableSubscriber::Options options;
    options.id = SubscriberId{first_id + static_cast<std::uint32_t>(i)};
    options.predicate = group_predicate(i % groups);
    options.ack_interval = ack_interval;
    auto& sub = system.add_subscriber(options, shb_index, i % machines);
    sub.connect();
    out.push_back(&sub);
  }
  return out;
}

ChurnDriver::ChurnDriver(System& system, std::vector<core::DurableSubscriber*> subs,
                         SimDuration period, SimDuration down_time)
    : system_(system), subs_(std::move(subs)), period_(period), down_time_(down_time) {
  GRYPHON_CHECK(period_ > down_time_ && down_time_ > 0);
  for (std::size_t i = 0; i < subs_.size(); ++i) {
    // Stagger first disconnects uniformly across the period.
    schedule(i, period_ * static_cast<SimDuration>(i + 1) /
                    static_cast<SimDuration>(subs_.size() + 1));
  }
}

StormDriver::StormDriver(System& system, std::vector<core::DurableSubscriber*> subs,
                         Options options)
    : system_(system), subs_(std::move(subs)), opt_(options) {
  GRYPHON_CHECK(opt_.waves >= 1 && opt_.down_time > 0);
  GRYPHON_CHECK(opt_.drop_fraction > 0.0 && opt_.drop_fraction <= 1.0);
  // The whole storm is planned here, up front, from one seeded stream: which
  // subscribers each wave drops, and (if spread > 0) each straggler's
  // reconnect offset. Nothing later consumes randomness.
  Rng rng(opt_.seed);
  for (int w = 0; w < opt_.waves; ++w) {
    const SimDuration drop_at = opt_.wave_interval * static_cast<SimDuration>(w + 1);
    for (std::size_t i = 0; i < subs_.size(); ++i) {
      if (opt_.drop_fraction < 1.0 && !rng.next_bool(opt_.drop_fraction)) {
        continue;
      }
      const SimDuration offset =
          opt_.reconnect_spread > 0
              ? static_cast<SimDuration>(rng.next_below(
                    static_cast<std::uint64_t>(opt_.reconnect_spread)))
              : 0;
      core::DurableSubscriber* sub = subs_[i];
      system_.simulator().schedule_after(drop_at, [this, sub] {
        if (!sub->connected()) return;
        sub->disconnect();
        ++disconnects_;
      });
      system_.simulator().schedule_after(drop_at + opt_.down_time + offset,
                                         [this, sub] {
                                           if (sub->connected()) return;
                                           sub->connect();
                                           ++reconnects_;
                                         });
    }
  }
}

void ChurnDriver::schedule(std::size_t idx, SimDuration delay) {
  system_.simulator().schedule_after(delay, [this, idx] {
    if (stopped_) return;
    core::DurableSubscriber* sub = subs_[idx];
    if (sub->connected()) {
      sub->disconnect();
      ++disconnects_;
      system_.simulator().schedule_after(down_time_, [sub] { sub->connect(); });
    }
    schedule(idx, period_);
  });
}

}  // namespace gryphon::harness
