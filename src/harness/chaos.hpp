// ChaosSchedule — deterministic, seeded fault-injection schedules.
//
// Draws a random sequence of faults (link partitions, flaps, degradation
// windows, disk stalls, torn syncs, broker crash/restart cycles, crashes
// landing inside recovery, partition+crash double faults, and — under
// WireMode::kCodec — frame-corruption windows of seeded byte flips and
// truncations) over a running
// System, entirely from one seed: the same seed over the same topology
// always produces a byte-identical fault timeline, and — because the
// simulator itself is deterministic — a bit-identical run. A failing seed is
// therefore a complete reproduction recipe.
//
// The plan is generated up front at construction (so the decoded timeline is
// available before anything runs) and injected via simulator tasks. Per-
// target bookkeeping keeps fault windows on the same broker or link disjoint
// — every crash is paired with a restart, every partition with a heal — so
// the schedule is always legal; faults on *different* targets overlap
// freely, which is where the interesting double-fault interleavings come
// from. Only broker-to-broker links are partitioned: a severed client link
// has no reset signal in the current client model, while brokers recover via
// periodic nacks and resume handshakes.
//
// run() registers the always-on InvariantMonitor, drives the simulation to
// quiescence (all faults repaired + a settle window), and then applies the
// quiescence oracle (exactly-once, zero residual catchup streams, everybody
// reconnected). Any invariant violation — from the per-delivery oracle
// hooks, the periodic monitor sweep, or the final check — dumps the seed and
// the decoded fault timeline to stderr and rethrows, so a chaos failure is
// actionable without re-running under a debugger.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "harness/invariants.hpp"
#include "harness/system.hpp"
#include "util/rng.hpp"

namespace gryphon::harness {

enum class FaultKind {
  kPartition,            // sever a broker link, heal later
  kFlap,                 // partition/heal square wave on a link
  kDegrade,              // latency/bandwidth degradation window
  kDiskStall,            // frozen spindle on a broker's disk
  kTornSync,             // in-flight write barriers lost, process stays up
  kCrashRestart,         // whole-broker crash + restart
  kCrashDuringRecovery,  // second crash lands milliseconds into recovery
  kDoubleFault,          // SHB uplink partitioned, then the SHB crashes
  kFrameCorrupt,         // seeded byte flips / truncations on a link's frames
  kPowerLoss,            // correlated full-cluster crash, staggered restarts
  kCatchupReadFault,     // SHB crash, then faulty PFS reads during catchup
};

[[nodiscard]] const char* fault_kind_name(FaultKind kind);

/// Relative draw weights per fault kind; 0 disables a kind entirely.
struct ChaosWeights {
  int partition = 4;
  int flap = 2;
  int degrade = 2;
  int disk_stall = 2;
  int torn_sync = 2;
  int crash_restart = 3;
  int crash_during_recovery = 1;
  int double_fault = 2;
  /// Frame-level corruption (byte flips / truncations the receiving
  /// transport must reject). Off by default: it is meaningful under
  /// WireMode::kCodec — in struct mode an armed window silently drops the
  /// affected messages instead (there are no bytes to flip) — and existing
  /// struct-mode schedules must not shift. Enable in codec chaos runs.
  int frame_corrupt = 0;
  /// Correlated full-cluster power loss: every broker crashes at the same
  /// instant (each with an independently seeded WAL tear) and restarts are
  /// staggered root-first so each recovering broker finds a live parent.
  /// Off by default — it needs the whole cluster free at once and existing
  /// schedules must not shift. Enable in correlated-failure runs.
  ///
  /// When frame_corrupt is also positive, each power loss additionally arms
  /// seeded corruption windows on up to two free links spanning the
  /// cluster-wide crash instant (armed shortly before the blackout, cleared
  /// after the last restart) — in-flight bytes around a power event are
  /// exactly where torn frames appear in practice. The extra rng draws are
  /// gated on frame_corrupt > 0 so struct-mode power-loss schedules do not
  /// shift.
  int power_loss = 0;
  /// SHB crash + restart with seeded read faults (latency spikes) and a
  /// stall armed on its disk just as recovery completes — every durable
  /// subscriber reconnects at once and the catchup streams walk PFS
  /// back-pointer chains through exactly that faulty IO window. Off by
  /// default so existing schedules don't shift.
  int catchup_read_fault = 0;
};

struct ChaosConfig {
  std::uint64_t seed = 1;
  /// Fault injections are drawn over [arm time, arm time + horizon).
  SimDuration horizon = sec(20);
  /// Spacing between consecutive fault injections.
  SimDuration min_gap = msec(400);
  SimDuration max_gap = msec(2500);
  /// Quiescence window after the last repair before the final oracle.
  SimDuration settle = sec(25);
  /// Final oracle also requires every subscriber on a live SHB reconnected.
  bool require_connected = true;
  ChaosWeights weights{};
  InvariantMonitor::Options monitor{};
};

struct FaultEvent {
  SimTime at = 0;
  FaultKind kind{};
  std::string description;  // decoded, human-readable, parameter-complete
};

class ChaosSchedule {
 public:
  /// Generates the fault plan from (seed, config, topology) and schedules
  /// it on the system's simulator, starting from the current sim time.
  ChaosSchedule(System& system, ChaosConfig config);
  ChaosSchedule(const ChaosSchedule&) = delete;
  ChaosSchedule& operator=(const ChaosSchedule&) = delete;

  /// Enables the always-on invariant monitor, runs until quiescence
  /// (repaired_at() + settle) and applies the final quiescence oracle. On
  /// any InvariantViolation, prints the seed + decoded timeline and
  /// rethrows.
  void run();

  [[nodiscard]] const ChaosConfig& config() const { return config_; }
  [[nodiscard]] const std::vector<FaultEvent>& timeline() const { return timeline_; }
  /// Byte-identical across runs with the same seed/config/topology.
  [[nodiscard]] std::string timeline_string() const;
  /// Simulated time by which every injected fault has been repaired.
  [[nodiscard]] SimTime repaired_at() const { return repaired_at_; }

  void dump(std::FILE* out) const;

 private:
  struct BrokerTarget {
    enum class Type { kPhb, kIntermediate, kShb } type;
    int index;
    std::string name;
  };
  struct LinkTarget {
    sim::EndpointId a = 0;  // upstream endpoint
    sim::EndpointId b = 0;  // downstream endpoint
    int shb_index = -1;     // >= 0 when b is an SHB (double-fault capable)
    std::string name;
  };

  void enumerate_targets();
  void plan();
  [[nodiscard]] SimDuration draw_duration(SimDuration lo, SimDuration hi);
  [[nodiscard]] std::size_t broker_index_of_shb(int shb_index) const;
  storage::SimDisk& disk_of(const BrokerTarget& broker);
  void record(SimTime at, FaultKind kind, std::string description);
  void note_repair(SimTime at) { repaired_at_ = std::max(repaired_at_, at); }

  // Fault planners: draw parameters, schedule actions, update bookkeeping.
  void plan_partition(SimTime t, std::size_t link);
  void plan_flap(SimTime t, std::size_t link);
  void plan_degrade(SimTime t, std::size_t link);
  void plan_disk_stall(SimTime t, std::size_t broker);
  void plan_torn_sync(SimTime t, std::size_t broker);
  void plan_crash_restart(SimTime t, std::size_t broker);
  void plan_crash_during_recovery(SimTime t, std::size_t broker);
  void plan_double_fault(SimTime t, std::size_t link);
  void plan_frame_corrupt(SimTime t, std::size_t link);
  void plan_power_loss(SimTime t);
  void plan_catchup_read_fault(SimTime t, std::size_t broker);

  // `entropy` is drawn at PLAN time (the rng must not be touched while the
  // simulation runs) and seeds where the WAL tail tears on the byte store.
  void crash_broker_at(SimTime t, const BrokerTarget& b, std::uint64_t entropy);
  void restart_broker_at(SimTime t, const BrokerTarget& b);
  void torn_sync_at(SimTime t, const BrokerTarget& b, std::uint64_t entropy);
  core::NodeResources& node_of(const BrokerTarget& b);

  System& system_;
  ChaosConfig config_;
  Rng rng_;

  std::vector<BrokerTarget> brokers_;
  std::vector<LinkTarget> links_;
  std::vector<SimTime> broker_busy_until_;
  std::vector<SimTime> link_busy_until_;

  std::vector<FaultEvent> timeline_;
  SimTime armed_at_ = 0;
  SimTime repaired_at_ = 0;
};

}  // namespace gryphon::harness
