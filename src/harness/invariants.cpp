#include "harness/invariants.hpp"

#include "harness/system.hpp"
#include "util/assert.hpp"

namespace gryphon::harness {

InvariantMonitor::InvariantMonitor(System& system, Options options)
    : system_(system), options_(options) {
  GRYPHON_CHECK(options_.period > 0);
  schedule_next();
}

void InvariantMonitor::schedule_next() {
  system_.simulator().schedule_after(options_.period, [this] {
    sweep();
    schedule_next();
  });
}

void InvariantMonitor::note_shb_crash(int shb_index) {
  // The broker is still alive: capture the values recovery must not exceed.
  auto& broker = system_.shb(shb_index);
  for (PubendId p : system_.pubends()) {
    Track snap;
    snap.latest_delivered = broker.latest_delivered(p);
    snap.released = broker.released(p);
    crash_snapshots_[{shb_index, p}] = snap;
  }
}

void InvariantMonitor::note_shb_restart(int shb_index) {
  // Check the recovered values against the crash snapshot *now*: by the next
  // periodic sweep the constream re-nack has legitimately advanced past the
  // pre-crash state, so a deferred comparison would be meaningless (or a
  // false positive the other way).
  auto& broker = system_.shb(shb_index);
  for (PubendId p : system_.pubends()) {
    const Tick ld = broker.latest_delivered(p);
    const Tick rel = broker.released(p);
    if (auto snap = crash_snapshots_.find({shb_index, p});
        snap != crash_snapshots_.end()) {
      GRYPHON_CHECK_MSG(ld <= snap->second.latest_delivered,
                        "shb" << shb_index << " recovered latestDelivered(" << p
                              << ") = " << ld << " ahead of pre-crash value "
                              << snap->second.latest_delivered);
      GRYPHON_CHECK_MSG(rel <= snap->second.released,
                        "shb" << shb_index << " recovered released(" << p
                              << ") = " << rel << " ahead of pre-crash value "
                              << snap->second.released);
    }
    // Seed the fresh incarnation's monotonicity baseline from the recovered
    // values.
    Track& track = tracks_[{shb_index, p}];
    track.latest_delivered = ld;
    track.released = rel;
    track.fresh = false;
  }
}

void InvariantMonitor::sweep() {
  ++sweeps_;
  for (int i = 0; i < system_.num_shbs(); ++i) {
    if (system_.shb_alive(i)) check_shb(i);
  }
  if (options_.check_exactly_once) {
    // Incremental: each sweep only re-checks ticks acknowledged since the
    // last one; end-of-run verification still does the full scan.
    const auto violations = system_.oracle().verify_all_incremental();
    GRYPHON_CHECK_MSG(violations.empty(),
                      "invariant sweep: " << violations.size()
                                          << " exactly-once violations; first: "
                                          << violations.front());
  }
}

void InvariantMonitor::check_shb(int shb_index) {
  auto& broker = system_.shb(shb_index);
  for (PubendId p : system_.pubends()) {
    const Tick ld = broker.latest_delivered(p);
    const Tick rel = broker.released(p);
    Track& track = tracks_[{shb_index, p}];
    if (track.fresh) {
      // First sample ever for this (SHB, pubend): just set the baseline.
      // Post-restart bounds are checked synchronously in note_shb_restart.
      track.fresh = false;
    } else {
      GRYPHON_CHECK_MSG(ld >= track.latest_delivered,
                        "shb" << shb_index << " latestDelivered(" << p
                              << ") regressed " << track.latest_delivered << " -> "
                              << ld);
      if (options_.check_released_monotonic) {
        GRYPHON_CHECK_MSG(rel >= track.released,
                          "shb" << shb_index << " released(" << p << ") regressed "
                                << track.released << " -> " << rel);
      }
    }
    track.latest_delivered = ld;
    track.released = rel;
  }
}

}  // namespace gryphon::harness
