#include "harness/oracle.hpp"

#include <algorithm>
#include <sstream>

#include "util/assert.hpp"

namespace gryphon::harness {

void DeliveryOracle::register_subscriber(const core::DurableSubscriber* client,
                                         matching::PredicatePtr predicate, int machine) {
  GRYPHON_CHECK(client != nullptr && predicate != nullptr);
  SubState state;
  state.client = client;
  state.predicate = std::move(predicate);
  state.machine = machine;
  subs_.emplace(client->id(), std::move(state));
  machine_rates_.try_emplace(machine, sec(1));
}

void DeliveryOracle::on_published(PublisherId, PubendId pubend, Tick tick,
                                  const matching::EventDataPtr& event,
                                  SimTime publish_time, SimTime ack_time) {
  auto [it, inserted] = published_[pubend].emplace(tick, event);
  if (!inserted) return;  // duplicate ack of a retried publish
  publish_times_[pubend].emplace(tick, publish_time);
  publish_latency_.add(to_millis(ack_time - publish_time));
  ++published_count_;
}

void DeliveryOracle::on_event(SubscriberId s, PubendId p, Tick t,
                              const matching::EventDataPtr& event, bool catchup,
                              SimTime now) {
  auto it = subs_.find(s);
  GRYPHON_CHECK_MSG(it != subs_.end(), "delivery to unregistered subscriber " << s);
  SubState& state = it->second;

  if (!state.predicate->matches(*event)) {
    note_violation(s, p, t, "spurious delivery (predicate mismatch)");
  }
  GRYPHON_CHECK_MSG(state.predicate->matches(*event),
                    "spurious delivery: event at " << p << ':' << t
                                                   << " does not match subscriber " << s);
  const bool fresh = state.delivered[p].insert(t);
  if (!fresh) note_violation(s, p, t, "duplicate delivery");
  GRYPHON_CHECK_MSG(fresh, "duplicate delivery " << p << ':' << t << " to " << s);

  ++delivered_count_;
  delivery_rate_.record(now);
  machine_rates_.at(state.machine).record(now);
  if (!catchup) {
    auto [floor_it, first] = state.constream_floor.try_emplace(p, t);
    if (!first && t > floor_it->second) floor_it->second = t;
  }
  if (catchup) {
    ++catchup_delivered_count_;
  } else if (auto pt = publish_times_.find(p); pt != publish_times_.end()) {
    if (auto tick_it = pt->second.find(t); tick_it != pt->second.end()) {
      e2e_latency_.add(to_millis(now - tick_it->second));
    }
  }
}

void DeliveryOracle::on_silence(SubscriberId, PubendId, Tick, SimTime) {}

void DeliveryOracle::on_gap(SubscriberId s, PubendId p, TickRange range, SimTime) {
  auto it = subs_.find(s);
  GRYPHON_CHECK(it != subs_.end());
  SubState& state = it->second;
  GRYPHON_CHECK_MSG(range.from <= range.to,
                    "malformed gap [" << range.from << ',' << range.to << "] for "
                                      << s << " on " << p);
  // A gap asserts "these will never arrive" — it may not cover an event we
  // already saw delivered …
  if (auto d = state.delivered.find(p); d != state.delivered.end()) {
    const auto covered = d->second.first_in(range.from, range.to);
    if (covered) note_violation(s, p, *covered, "gap covers delivered event");
    GRYPHON_CHECK_MSG(!covered, "gap [" << range.from << ',' << range.to << "] to " << s
                                        << " covers delivered event " << p << ':'
                                        << covered.value_or(0));
  }
  // … and may not open at/behind the live constream position (the constream
  // is lossless; only catchup may declare holes, always ahead of it).
  if (auto f = state.constream_floor.find(p); f != state.constream_floor.end()) {
    if (range.from <= f->second) {
      note_violation(s, p, range.from, "gap opens behind the constream position");
    }
    GRYPHON_CHECK_MSG(range.from > f->second,
                      "gap [" << range.from << ',' << range.to << "] to " << s
                              << " opens behind the constream position " << p << ':'
                              << f->second);
  }
  state.gaps[p].add(range);
  ++gap_count_;
}

void DeliveryOracle::on_connected(SubscriberId s, SimTime) {
  auto it = subs_.find(s);
  GRYPHON_CHECK(it != subs_.end());
  SubState& state = it->second;
  if (!state.saw_first_connect) {
    state.saw_first_connect = true;
    state.start_ct = state.client->checkpoint();
    return;
  }
  // Reconnection with a CT behind what we saw delivered: the acknowledgment
  // was lost (e.g. a JMS auto-ack CT commit dying with the SHB), so the
  // suffix past the CT is legitimately re-deliverable. Forget it; the
  // exactly-once check then requires it to be delivered again.
  const core::CheckpointToken& ct = state.client->checkpoint();
  for (auto& [p, ticks] : state.delivered) {
    ticks.erase_above(ct.of(p));
  }
  for (auto& [p, gaps] : state.gaps) {
    if (!gaps.empty()) gaps.subtract(ct.of(p) + 1, kTickInfinity - 1);
  }
  for (auto& [p, floor] : state.constream_floor) {
    floor = std::min(floor, ct.of(p));
  }
  // The re-deliverable suffix must be re-verified once it is re-delivered.
  for (auto& [p, upto] : state.verified_upto) {
    upto = std::min(upto, ct.of(p));
  }
}

void DeliveryOracle::reset_subscriber(SubscriberId s) {
  auto it = subs_.find(s);
  GRYPHON_CHECK(it != subs_.end());
  it->second.delivered.clear();
  it->second.gaps.clear();
  it->second.constream_floor.clear();
  it->second.verified_upto.clear();
  it->second.saw_first_connect = false;
}

void DeliveryOracle::verify_stream(SubscriberId s, const SubState& state, PubendId p,
                                   const std::map<Tick, matching::EventDataPtr>& events,
                                   Tick lo, Tick hi,
                                   std::vector<std::string>& out) const {
  const auto delivered_it = state.delivered.find(p);
  const auto gaps_it = state.gaps.find(p);
  const Tick upto = state.client->checkpoint().of(p);
  for (auto e = events.upper_bound(lo); e != events.end() && e->first <= hi; ++e) {
    const Tick t = e->first;
    if (!state.predicate->matches(*e->second)) continue;
    const bool got =
        delivered_it != state.delivered.end() && delivered_it->second.contains(t);
    const bool gapped = gaps_it != state.gaps.end() && gaps_it->second.contains(t);
    if (!got && !gapped) {
      std::ostringstream os;
      os << "subscriber " << s << " missed matching event " << p << ':' << t
         << " (horizon " << upto << ", no gap notification)";
      // Capture the pass's first finding — the one error messages quote —
      // as the flight-recorder focus.
      if (out.empty()) note_violation(s, p, t, os.str());
      out.push_back(os.str());
    }
  }
  // Deliveries in range must correspond to known published events.
  if (delivered_it != state.delivered.end()) {
    delivered_it->second.for_each_in(lo, hi, [&](Tick t) {
      if (!events.contains(t)) {
        std::ostringstream os;
        os << "subscriber " << s << " received unknown event " << p << ':' << t;
        if (out.empty()) note_violation(s, p, t, os.str());
        out.push_back(os.str());
      }
    });
  }
}

void DeliveryOracle::note_violation(SubscriberId s, PubendId p, Tick t,
                                    std::string what) const {
  last_violation_.valid = true;
  last_violation_.subscriber = s;
  last_violation_.pubend = p;
  last_violation_.tick = t;
  last_violation_.what = std::move(what);
}

std::vector<std::string> DeliveryOracle::verify(SubscriberId s) const {
  auto it = subs_.find(s);
  GRYPHON_CHECK_MSG(it != subs_.end(), "unregistered subscriber " << s);
  const SubState& state = it->second;
  std::vector<std::string> violations;
  if (!state.saw_first_connect) return violations;  // never joined: vacuous

  const core::CheckpointToken& horizon = state.client->checkpoint();
  for (const auto& [p, events] : published_) {
    verify_stream(s, state, p, events, state.start_ct.of(p), horizon.of(p), violations);
    // Deliveries outside (start, horizon] must still be known events.
    if (auto d = state.delivered.find(p); d != state.delivered.end()) {
      auto check_unknown = [&](Tick t) {
        if (!events.contains(t)) {
          std::ostringstream os;
          os << "subscriber " << s << " received unknown event " << p << ':' << t;
          violations.push_back(os.str());
        }
      };
      d->second.for_each_in(INT64_MIN, state.start_ct.of(p), check_unknown);
      d->second.for_each_in(horizon.of(p), kTickInfinity, check_unknown);
    }
  }
  return violations;
}

std::vector<std::string> DeliveryOracle::verify_all() const {
  std::vector<std::string> all;
  for (const auto& [s, state] : subs_) {
    auto v = verify(s);
    all.insert(all.end(), v.begin(), v.end());
  }
  return all;
}

std::vector<std::string> DeliveryOracle::verify_all_incremental() {
  std::vector<std::string> all;
  for (auto& [s, state] : subs_) {
    if (!state.saw_first_connect) continue;
    const core::CheckpointToken& horizon = state.client->checkpoint();
    for (const auto& [p, events] : published_) {
      const Tick hi = horizon.of(p);
      const Tick lo = std::max(state.start_ct.of(p), state.verified_upto[p]);
      if (hi <= lo) continue;  // nothing new acknowledged on this stream
      verify_stream(s, state, p, events, lo, hi, all);
      state.verified_upto[p] = hi;
    }
  }
  return all;
}

const RateMeter& DeliveryOracle::machine_rate(int machine) const {
  auto it = machine_rates_.find(machine);
  GRYPHON_CHECK_MSG(it != machine_rates_.end(), "unknown machine " << machine);
  return it->second;
}

std::vector<int> DeliveryOracle::machines() const {
  std::vector<int> out;
  out.reserve(machine_rates_.size());
  for (const auto& [m, meter] : machine_rates_) out.push_back(m);
  return out;
}

const std::map<Tick, matching::EventDataPtr>& DeliveryOracle::published(
    PubendId p) const {
  static const std::map<Tick, matching::EventDataPtr> kEmpty;
  auto it = published_.find(p);
  return it == published_.end() ? kEmpty : it->second;
}

}  // namespace gryphon::harness
