#include "harness/system.hpp"

#include "matching/parser.hpp"
#include "wire/codec_transport.hpp"

namespace gryphon::harness {

namespace {
std::vector<PubendId> make_pubend_ids(int n) {
  std::vector<PubendId> out;
  out.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) out.emplace_back(static_cast<std::uint32_t>(i + 1));
  return out;
}

void configure_tracer(core::NodeResources& node, const SystemConfig& config) {
  node.tracer.set_capacity(config.trace_ring_capacity);
  node.tracer.set_sample_every(config.trace_sample_every);
}
}  // namespace

System::System(SystemConfig config)
    : config_(std::move(config)), net_(sim_), oracle_(sim_) {
  // Log entries carry simulated time (the only meaningful clock here).
  Logger::instance().set_clock([this] { return sim_.now(); });
  GRYPHON_CHECK(config_.num_pubends >= 1);
  GRYPHON_CHECK(config_.num_intermediates >= 0);
  GRYPHON_CHECK(config_.num_shbs >= 1);
  GRYPHON_CHECK(config_.pfs_shards >= 1);
  // The broker-level knob is what SHB construction (and restart_shb) read;
  // the system-level knob is authoritative.
  config_.broker.pfs_shards = config_.pfs_shards;

  if (config_.wire == WireMode::kCodec) {
    wire::CodecTransport::Options topts;
    topts.verify_every = config_.wire_verify_every;
    transport_ = std::make_unique<wire::CodecTransport>(topts);
    net_.set_transport(transport_.get());
  }

  const auto pubend_ids = make_pubend_ids(config_.num_pubends);

  phb_node_ = std::make_unique<core::NodeResources>(sim_, net_, "phb", config_.broker,
                                                    config_.phb_disk,
                                                    /*db_connections=*/1, config_.storage);
  configure_tracer(*phb_node_, config_);
  phb_ = std::make_unique<core::PublisherHostingBroker>(*phb_node_, config_.broker,
                                                        pubend_ids, config_.policy);

  sim::EndpointId tail = phb_node_->endpoint;
  for (int i = 0; i < config_.num_intermediates; ++i) {
    auto node = std::make_unique<core::NodeResources>(
        sim_, net_, "imb" + std::to_string(i), config_.broker, config_.shb_disk,
        /*db_connections=*/1, config_.storage);
    configure_tracer(*node, config_);
    auto broker = std::make_unique<core::IntermediateBroker>(*node, config_.broker,
                                                             pubend_ids);
    net_.connect(tail, node->endpoint, config_.broker_link);
    broker->set_parent(tail);
    if (tail == phb_node_->endpoint) {
      phb_->add_child(node->endpoint);
    } else {
      intermediates_.back()->add_child(node->endpoint);
    }
    tail = node->endpoint;
    intermediate_nodes_.push_back(std::move(node));
    intermediates_.push_back(std::move(broker));
  }

  for (int i = 0; i < config_.num_shbs; ++i) {
    auto node = std::make_unique<core::NodeResources>(
        sim_, net_, "shb" + std::to_string(i), config_.broker, config_.shb_disk,
        config_.shb_db_connections, config_.storage);
    node->database.set_per_txn_overhead(config_.shb_db_per_txn_overhead);
    configure_tracer(*node, config_);
    auto broker = std::make_unique<core::SubscriberHostingBroker>(*node, config_.broker,
                                                                  pubend_ids);
    net_.connect(tail, node->endpoint, config_.broker_link);
    broker->set_parent(tail);
    if (tail == phb_node_->endpoint) {
      phb_->add_child(node->endpoint);
    } else {
      intermediates_.back()->add_child(node->endpoint);
    }
    shb_nodes_.push_back(std::move(node));
    shbs_.push_back(std::move(broker));
  }
  shb_hooks_.resize(shbs_.size());

  if (config_.shb_gc_period > 0) {
    GRYPHON_CHECK(config_.shb_gc_pause > 0);
    // Recurring JVM GC pause on each SHB machine, independent of broker
    // restarts (the machine keeps collecting garbage either way).
    for (auto& node : shb_nodes_) schedule_gc_tick(&node->cpu);
  }

  // Live trace consumers: the latency recorder always, the trace exporter
  // when asked. One fanout per system, installed on every node tracer
  // before boot so no accepted record is missed. node_id = topology order
  // (the same order nodes() reports).
  trace_fanout_.add(&latency_);
  if (config_.trace_export) {
    trace_export_ = std::make_unique<TraceExporter>();
    trace_fanout_.add(trace_export_.get());
  }
  {
    const auto all = nodes();
    for (std::size_t i = 0; i < all.size(); ++i) {
      all[i]->tracer.set_sink(&trace_fanout_, static_cast<std::uint32_t>(i));
      if (trace_export_ != nullptr) {
        trace_export_->set_node_name(static_cast<std::uint32_t>(i), all[i]->name);
      }
    }
  }

  // Boot order: root first so resume handshakes find live parents.
  phb_->start();
  for (auto& imb : intermediates_) imb->start(/*fresh=*/true);
  for (auto& shb : shbs_) shb->start();
}

void System::schedule_gc_tick(sim::Cpu* cpu) {
  sim_.schedule_after(config_.shb_gc_period, [this, cpu] {
    cpu->inject_stall(config_.shb_gc_pause);
    schedule_gc_tick(cpu);
  });
}

core::IntermediateBroker& System::intermediate(int i) {
  GRYPHON_CHECK(i >= 0 && i < static_cast<int>(intermediates_.size()));
  return *intermediates_[static_cast<std::size_t>(i)];
}

core::SubscriberHostingBroker& System::shb(int i) {
  GRYPHON_CHECK(i >= 0 && i < static_cast<int>(shbs_.size()));
  auto& ptr = shbs_[static_cast<std::size_t>(i)];
  GRYPHON_CHECK_MSG(ptr != nullptr, "SHB " << i << " is crashed");
  return *ptr;
}

bool System::intermediate_alive(int i) const {
  GRYPHON_CHECK(i >= 0 && i < static_cast<int>(intermediates_.size()));
  return intermediates_[static_cast<std::size_t>(i)] != nullptr;
}

sim::EndpointId System::intermediate_endpoint(int i) const {
  GRYPHON_CHECK(i >= 0 && i < static_cast<int>(intermediate_nodes_.size()));
  return intermediate_nodes_[static_cast<std::size_t>(i)]->endpoint;
}

sim::EndpointId System::shb_endpoint(int i) const {
  GRYPHON_CHECK(i >= 0 && i < static_cast<int>(shb_nodes_.size()));
  return shb_nodes_[static_cast<std::size_t>(i)]->endpoint;
}

sim::EndpointId System::shb_uplink_endpoint(int i) const {
  GRYPHON_CHECK(i >= 0 && i < static_cast<int>(shb_nodes_.size()));
  return intermediate_nodes_.empty() ? phb_node_->endpoint
                                     : intermediate_nodes_.back()->endpoint;
}

sim::EndpointId System::intermediate_uplink_endpoint(int i) const {
  GRYPHON_CHECK(i >= 0 && i < static_cast<int>(intermediate_nodes_.size()));
  return i == 0 ? phb_node_->endpoint
                : intermediate_nodes_[static_cast<std::size_t>(i - 1)]->endpoint;
}

storage::SimDisk& System::intermediate_disk(int i) {
  GRYPHON_CHECK(i >= 0 && i < static_cast<int>(intermediate_nodes_.size()));
  return intermediate_nodes_[static_cast<std::size_t>(i)]->disk;
}

storage::SimDisk& System::shb_disk(int i) {
  GRYPHON_CHECK(i >= 0 && i < static_cast<int>(shb_nodes_.size()));
  return shb_nodes_[static_cast<std::size_t>(i)]->disk;
}

std::vector<PubendId> System::pubends() const {
  return make_pubend_ids(config_.num_pubends);
}

sim::Cpu& System::shb_cpu(int i) {
  GRYPHON_CHECK(i >= 0 && i < static_cast<int>(shb_nodes_.size()));
  return shb_nodes_[static_cast<std::size_t>(i)]->cpu;
}

core::Publisher& System::add_publisher(PubendId pubend, SimDuration interval,
                                       core::Publisher::EventFactory factory,
                                       SimDuration start_offset) {
  core::Publisher::Options options;
  options.id = PublisherId{static_cast<std::uint32_t>(publishers_.size() + 1)};
  options.pubend = pubend;
  options.interval = interval;
  options.start_offset = start_offset;
  auto pub = std::make_unique<core::Publisher>(sim_, net_, options,
                                               phb_node_->endpoint, std::move(factory),
                                               &oracle_);
  net_.connect(pub->endpoint(), phb_node_->endpoint, config_.client_link);
  publishers_.push_back(std::move(pub));
  return *publishers_.back();
}

core::DurableSubscriber& System::add_subscriber(core::DurableSubscriber::Options options,
                                                int shb_index, int machine) {
  GRYPHON_CHECK(shb_index >= 0 && shb_index < static_cast<int>(shb_nodes_.size()));
  auto predicate = matching::parse_predicate(options.predicate);
  auto sub = std::make_unique<core::DurableSubscriber>(
      sim_, net_, options, shb_nodes_[static_cast<std::size_t>(shb_index)]->endpoint,
      &oracle_);
  net_.connect(sub->endpoint(), shb_nodes_[static_cast<std::size_t>(shb_index)]->endpoint,
               config_.client_link);
  oracle_.register_subscriber(sub.get(), std::move(predicate), machine);
  subscribers_.push_back({std::move(sub), shb_index});
  return *subscribers_.back().client;
}

std::vector<core::DurableSubscriber*> System::subscribers() {
  std::vector<core::DurableSubscriber*> out;
  out.reserve(subscribers_.size());
  for (auto& entry : subscribers_) out.push_back(entry.client.get());
  return out;
}

void System::migrate_subscriber(core::DurableSubscriber& subscriber,
                                int new_shb_index) {
  GRYPHON_CHECK(new_shb_index >= 0 &&
                new_shb_index < static_cast<int>(shb_nodes_.size()));
  auto it = std::find_if(subscribers_.begin(), subscribers_.end(),
                         [&](const SubEntry& e) { return e.client.get() == &subscriber; });
  GRYPHON_CHECK_MSG(it != subscribers_.end(), "unknown subscriber client");
  const auto new_endpoint =
      shb_nodes_[static_cast<std::size_t>(new_shb_index)]->endpoint;
  if (!net_.are_connected(subscriber.endpoint(), new_endpoint)) {
    net_.connect(subscriber.endpoint(), new_endpoint, config_.client_link);
  }
  it->shb_index = new_shb_index;
  subscriber.migrate(new_endpoint);
}

void System::crash_shb(int i) {
  GRYPHON_CHECK(i >= 0 && i < static_cast<int>(shbs_.size()));
  auto& ptr = shbs_[static_cast<std::size_t>(i)];
  GRYPHON_CHECK_MSG(ptr != nullptr, "SHB " << i << " already crashed");
  // The monitor snapshots progress *before* the broker dies: recovery may
  // roll back to the last durable commit but must never be ahead of this.
  if (monitor_ != nullptr) monitor_->note_shb_crash(i);
  shb_nodes_[static_cast<std::size_t>(i)]->crash();
  ptr.reset();
  // TCP connections die with the broker: clients observe a reset.
  for (auto& entry : subscribers_) {
    if (entry.shb_index == i) entry.client->notify_connection_reset();
  }
}

void System::restart_shb(int i) {
  GRYPHON_CHECK(i >= 0 && i < static_cast<int>(shbs_.size()));
  auto& ptr = shbs_[static_cast<std::size_t>(i)];
  GRYPHON_CHECK_MSG(ptr == nullptr, "SHB " << i << " is not crashed");
  auto& node = *shb_nodes_[static_cast<std::size_t>(i)];
  ptr = std::make_unique<core::SubscriberHostingBroker>(node, config_.broker, pubends());
  ptr->set_parent(intermediates_.empty() ? phb_node_->endpoint
                                         : intermediate_nodes_.back()->endpoint);
  node.restart();
  ptr->recover();
  if (monitor_ != nullptr) monitor_->note_shb_restart(i);
  for (auto& hook : shb_hooks_[static_cast<std::size_t>(i)]) hook(*ptr);
}

void System::crash_phb() {
  phb_node_->crash();
  phb_.reset();
}

void System::restart_phb() {
  GRYPHON_CHECK(phb_ == nullptr);
  phb_ = std::make_unique<core::PublisherHostingBroker>(*phb_node_, config_.broker,
                                                        pubends(), config_.policy);
  for (auto& node : intermediate_nodes_) phb_->add_child(node->endpoint);
  if (intermediates_.empty()) {
    for (auto& node : shb_nodes_) phb_->add_child(node->endpoint);
  }
  phb_node_->restart();
  phb_->recover();
  phb_->start();
}

void System::crash_intermediate(int i) {
  GRYPHON_CHECK(i >= 0 && i < static_cast<int>(intermediates_.size()));
  intermediate_nodes_[static_cast<std::size_t>(i)]->crash();
  intermediates_[static_cast<std::size_t>(i)].reset();
}

void System::restart_intermediate(int i) {
  GRYPHON_CHECK(i >= 0 && i < static_cast<int>(intermediates_.size()));
  auto& ptr = intermediates_[static_cast<std::size_t>(i)];
  GRYPHON_CHECK(ptr == nullptr);
  auto& node = *intermediate_nodes_[static_cast<std::size_t>(i)];
  ptr = std::make_unique<core::IntermediateBroker>(node, config_.broker, pubends());
  const sim::EndpointId parent =
      i == 0 ? phb_node_->endpoint : intermediate_nodes_[static_cast<std::size_t>(i - 1)]->endpoint;
  ptr->set_parent(parent);
  if (i + 1 < static_cast<int>(intermediate_nodes_.size())) {
    ptr->add_child(intermediate_nodes_[static_cast<std::size_t>(i + 1)]->endpoint);
  } else {
    for (auto& node2 : shb_nodes_) ptr->add_child(node2->endpoint);
  }
  node.restart();
  ptr->recover();
  ptr->start(/*fresh=*/false);
}

void System::torn_sync_phb(std::uint64_t entropy) {
  GRYPHON_CHECK_MSG(phb_ != nullptr, "torn sync on crashed PHB");
  phb_node_->torn_sync(entropy);
}

void System::torn_sync_intermediate(int i, std::uint64_t entropy) {
  GRYPHON_CHECK(i >= 0 && i < static_cast<int>(intermediates_.size()));
  GRYPHON_CHECK_MSG(intermediate_alive(i), "torn sync on crashed intermediate " << i);
  intermediate_nodes_[static_cast<std::size_t>(i)]->torn_sync(entropy);
}

void System::torn_sync_shb(int i, std::uint64_t entropy) {
  GRYPHON_CHECK(i >= 0 && i < static_cast<int>(shbs_.size()));
  GRYPHON_CHECK_MSG(shb_alive(i), "torn sync on crashed SHB " << i);
  shb_nodes_[static_cast<std::size_t>(i)]->torn_sync(entropy);
}

void System::verify_exactly_once() {
  const auto violations = oracle_.verify_all();
  GRYPHON_CHECK_MSG(violations.empty(),
                    violations.size() << " delivery violations; first: "
                                      << violations.front());
}

void System::verify_quiescent(bool require_connected) {
  verify_exactly_once();
  for (int i = 0; i < num_shbs(); ++i) {
    if (!shb_alive(i)) continue;
    const std::size_t catchups = shb(i).catchup_stream_count();
    GRYPHON_CHECK_MSG(catchups == 0, "SHB " << i << " still has " << catchups
                                            << " catchup streams after quiescence");
  }
  if (require_connected) {
    for (auto& entry : subscribers_) {
      if (!shb_alive(entry.shb_index)) continue;
      GRYPHON_CHECK_MSG(entry.client->connected(),
                        "subscriber " << entry.client->id()
                                      << " not reconnected to live SHB "
                                      << entry.shb_index << " after quiescence");
    }
  }
}

core::NodeResources& System::intermediate_node(int i) {
  GRYPHON_CHECK(i >= 0 && i < static_cast<int>(intermediate_nodes_.size()));
  return *intermediate_nodes_[static_cast<std::size_t>(i)];
}

core::NodeResources& System::shb_node(int i) {
  GRYPHON_CHECK(i >= 0 && i < static_cast<int>(shb_nodes_.size()));
  return *shb_nodes_[static_cast<std::size_t>(i)];
}

std::vector<core::NodeResources*> System::nodes() {
  std::vector<core::NodeResources*> out;
  out.reserve(1 + intermediate_nodes_.size() + shb_nodes_.size());
  out.push_back(phb_node_.get());
  for (auto& node : intermediate_nodes_) out.push_back(node.get());
  for (auto& node : shb_nodes_) out.push_back(node.get());
  return out;
}

void System::append_metrics_json(std::string& out, const std::string& indent,
                                 bool pretty) {
  out += pretty ? "{\n" : "{";
  const std::string inner = pretty ? indent + "  " : "";
  bool first = true;
  for (core::NodeResources* node : nodes()) {
    if (!first) out += pretty ? ",\n" : ",";
    first = false;
    out += inner;
    out += '"';
    out += node->name;
    out += pretty ? "\": " : "\":";
    node->metrics.append_json(out, inner, pretty);
  }
  if (pretty) {
    out += '\n';
    out += indent;
  }
  out += '}';
}

bool System::write_trace_json(const std::string& path) {
  if (trace_export_ == nullptr) return false;
  return trace_export_->write(path);
}

void System::note_fault_span(SimTime from, SimTime to, const std::string& name) {
  if (trace_export_ != nullptr) trace_export_->add_fault_span(from, to, name);
}

void System::note_fault_instant(SimTime at, const std::string& name) {
  if (trace_export_ != nullptr) trace_export_->add_fault_instant(at, name);
}

std::string System::metrics_scrape_line() {
  std::string line;
  char buf[48];
  std::snprintf(buf, sizeof buf, "{\"t\":%.6f,", to_seconds(sim_.now()));
  line = buf;
  line += "\"latency\":";
  latency_.append_json(line, "", /*pretty=*/false);
  line += ",\"nodes\":";
  append_metrics_json(line, "", /*pretty=*/false);
  line += "}\n";
  return line;
}

bool System::write_metrics_json(const std::string& path) {
  std::string doc;
  append_metrics_json(doc, "");
  doc += '\n';
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fwrite(doc.data(), 1, doc.size(), f);
  std::fclose(f);
  return true;
}

void System::dump_flight_recorder(std::FILE* out, const FlightRecorderFocus* focus) {
  std::vector<const Tracer*> tracers;
  for (core::NodeResources* node : nodes()) tracers.push_back(&node->tracer);
  write_flight_record(out, tracers, focus);
}

InvariantMonitor& System::enable_invariants(InvariantMonitor::Options options) {
  if (monitor_ == nullptr) {
    monitor_ = std::make_unique<InvariantMonitor>(*this, options);
  }
  return *monitor_;
}

void System::on_shb_ready(int i,
                          std::function<void(core::SubscriberHostingBroker&)> hook) {
  GRYPHON_CHECK(i >= 0 && i < static_cast<int>(shbs_.size()));
  hook(shb(i));
  shb_hooks_[static_cast<std::size_t>(i)].push_back(std::move(hook));
}

}  // namespace gryphon::harness
