// System — builds and operates a whole simulated deployment: broker
// topology, links, clients, failure injection, and verification.
//
// Topology shape (paper Fig. 3): one PHB hosting all pubends, an optional
// chain of intermediate brokers, and N SHBs fanning out from the chain tail.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/intermediate.hpp"
#include "core/phb.hpp"
#include "core/publisher_client.hpp"
#include "core/shb.hpp"
#include "core/subscriber_client.hpp"
#include "harness/oracle.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"

namespace gryphon::harness {

struct SystemConfig {
  int num_pubends = 4;
  int num_intermediates = 0;  // chain length between the PHB and the SHBs
  int num_shbs = 1;
  core::BrokerConfig broker{};
  storage::DiskConfig phb_disk{};
  storage::DiskConfig shb_disk{};
  int shb_db_connections = 1;
  /// Per-transaction DB-engine cost at the SHB (JMS auto-ack bottleneck).
  SimDuration shb_db_per_txn_overhead = 0;
  sim::LinkConfig broker_link{msec(1), 1e9};
  sim::LinkConfig client_link{msec(1), 1e9};
  /// Periodic whole-process stall at each SHB (the paper attributes the
  /// periodic dips in latestDelivered's advance rate to JVM GC pauses).
  /// Disabled when period == 0.
  SimDuration shb_gc_period = 0;
  SimDuration shb_gc_pause = 0;
  core::ReleasePolicyPtr policy = std::make_shared<core::NoEarlyReleasePolicy>();
};

class System {
 public:
  explicit System(SystemConfig config);

  [[nodiscard]] sim::Simulator& simulator() { return sim_; }
  [[nodiscard]] sim::Network& network() { return net_; }
  [[nodiscard]] DeliveryOracle& oracle() { return oracle_; }

  [[nodiscard]] core::PublisherHostingBroker& phb() { return *phb_; }
  [[nodiscard]] core::IntermediateBroker& intermediate(int i);
  [[nodiscard]] core::SubscriberHostingBroker& shb(int i = 0);
  [[nodiscard]] bool shb_alive(int i = 0) const {
    return shbs_[static_cast<std::size_t>(i)] != nullptr;
  }
  [[nodiscard]] int num_shbs() const { return static_cast<int>(shbs_.size()); }
  [[nodiscard]] std::vector<PubendId> pubends() const;

  [[nodiscard]] sim::Cpu& phb_cpu() { return phb_node_->cpu; }
  [[nodiscard]] sim::Cpu& shb_cpu(int i = 0);

  /// Adds a publisher feeding `pubend` at fixed `interval` (manual-only if
  /// interval <= 0), using `factory` to build events.
  core::Publisher& add_publisher(PubendId pubend, SimDuration interval,
                                 core::Publisher::EventFactory factory,
                                 SimDuration start_offset = 0);

  /// Adds a durable subscriber on SHB `shb_index` (machine groups delivery
  /// rates per simulated client machine, as in the paper's figures). The
  /// client is registered with the oracle but not yet connected.
  core::DurableSubscriber& add_subscriber(core::DurableSubscriber::Options options,
                                          int shb_index = 0, int machine = 0);

  [[nodiscard]] std::vector<core::DurableSubscriber*> subscribers();

  /// Reconnect-anywhere: moves a subscriber's durable subscription to
  /// another SHB (creating the client link if needed).
  void migrate_subscriber(core::DurableSubscriber& subscriber, int new_shb_index);

  // --- failure injection ---
  /// Kills SHB i: its address goes dark, volatile state is lost, connected
  /// subscribers see a connection reset.
  void crash_shb(int i);
  /// Restarts SHB i over its surviving node resources and runs recovery.
  void restart_shb(int i);
  void crash_phb();
  void restart_phb();
  void crash_intermediate(int i);
  void restart_intermediate(int i);

  /// Runs the simulation for `d` of simulated time.
  void run_for(SimDuration d) { sim_.run_until(sim_.now() + d); }

  /// Checks the exactly-once contract for every subscriber; throws on
  /// violation (callable repeatedly, e.g. at the end of every benchmark).
  void verify_exactly_once();

 private:
  struct SubEntry {
    std::unique_ptr<core::DurableSubscriber> client;
    int shb_index;
  };

  void schedule_gc_tick(sim::Cpu* cpu);

  SystemConfig config_;
  sim::Simulator sim_;
  sim::Network net_;
  DeliveryOracle oracle_;

  std::unique_ptr<core::NodeResources> phb_node_;
  std::vector<std::unique_ptr<core::NodeResources>> intermediate_nodes_;
  std::vector<std::unique_ptr<core::NodeResources>> shb_nodes_;

  std::unique_ptr<core::PublisherHostingBroker> phb_;
  std::vector<std::unique_ptr<core::IntermediateBroker>> intermediates_;
  std::vector<std::unique_ptr<core::SubscriberHostingBroker>> shbs_;
  std::vector<std::vector<std::function<void(core::SubscriberHostingBroker&)>>> shb_hooks_;

  std::vector<std::unique_ptr<core::Publisher>> publishers_;
  std::vector<SubEntry> subscribers_;

 public:
  /// Installs a hook run on every (re)constructed SHB i (e.g. to reattach
  /// the catchup-completion callback after a restart).
  void on_shb_ready(int i, std::function<void(core::SubscriberHostingBroker&)> hook);
};

}  // namespace gryphon::harness
