// System — builds and operates a whole simulated deployment: broker
// topology, links, clients, failure injection, and verification.
//
// Topology shape (paper Fig. 3): one PHB hosting all pubends, an optional
// chain of intermediate brokers, and N SHBs fanning out from the chain tail.
#pragma once

#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/intermediate.hpp"
#include "core/phb.hpp"
#include "core/publisher_client.hpp"
#include "core/shb.hpp"
#include "core/subscriber_client.hpp"
#include "harness/invariants.hpp"
#include "harness/oracle.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"
#include "util/latency.hpp"
#include "util/trace_export.hpp"

namespace gryphon::harness {

/// What travels on the simulated links: shared in-memory structs (the fast
/// default) or CRC32C-framed encoded bytes (wire::CodecTransport — byte-
/// accurate, corruptible, schedule-identical on the same seed).
enum class WireMode { kStruct, kCodec };

[[nodiscard]] constexpr const char* to_string(WireMode mode) {
  return mode == WireMode::kCodec ? "codec" : "struct";
}

struct SystemConfig {
  int num_pubends = 4;
  int num_intermediates = 0;  // chain length between the PHB and the SHBs
  int num_shbs = 1;
  core::BrokerConfig broker{};
  /// SHB session-table / PFS log-stream shards by subscriber-id hash
  /// (copied into broker.pfs_shards at construction). 1 keeps today's
  /// single-shard behavior bit-identically (DESIGN.md §4.8).
  std::size_t pfs_shards = 1;
  storage::DiskConfig phb_disk{};
  storage::DiskConfig shb_disk{};
  /// Byte-level WAL knobs shared by every node's LogVolume + Database
  /// (segment roll size, DB compaction threshold, optional real-file dir).
  storage::StorageOptions storage{};
  int shb_db_connections = 1;
  /// Per-transaction DB-engine cost at the SHB (JMS auto-ack bottleneck).
  SimDuration shb_db_per_txn_overhead = 0;
  sim::LinkConfig broker_link{msec(1), 1e9};
  sim::LinkConfig client_link{msec(1), 1e9};
  /// Periodic whole-process stall at each SHB (the paper attributes the
  /// periodic dips in latestDelivered's advance rate to JVM GC pauses).
  /// Disabled when period == 0.
  SimDuration shb_gc_period = 0;
  SimDuration shb_gc_pause = 0;
  core::ReleasePolicyPtr policy = std::make_shared<core::NoEarlyReleasePolicy>();
  /// Causal tick tracing (util/trace.hpp): tick T is traced iff
  /// T % trace_sample_every == 0 (rounded up to a power of two; 1 = trace
  /// everything, what chaos/debug runs want). Applied to every node tracer.
  std::uint32_t trace_sample_every = 64;
  /// Per-node flight-recorder ring size (records; preallocated).
  std::size_t trace_ring_capacity = 4096;
  /// Transport under every link (gryphon_sim --wire=struct|codec).
  WireMode wire = WireMode::kStruct;
  /// Codec mode only: canonical re-encode check cadence — verify ~1 in N
  /// decoded frames (seeded, deterministic). 1 verifies every frame
  /// (--wire-verify=always; what the tests and the chaos ASan leg use).
  std::uint32_t wire_verify_every = 64;
  /// Capture every accepted trace record for Chrome trace-event export
  /// (gryphon_sim --trace-out). Off by default: the exporter buffers the
  /// full record stream, which a long soak would rather not pay for.
  /// The latency recorder is always on — it only keeps histograms.
  bool trace_export = false;
};

class System {
 public:
  explicit System(SystemConfig config);

  [[nodiscard]] sim::Simulator& simulator() { return sim_; }
  [[nodiscard]] sim::Network& network() { return net_; }
  [[nodiscard]] DeliveryOracle& oracle() { return oracle_; }

  [[nodiscard]] core::PublisherHostingBroker& phb() { return *phb_; }
  [[nodiscard]] core::IntermediateBroker& intermediate(int i);
  [[nodiscard]] core::SubscriberHostingBroker& shb(int i = 0);
  [[nodiscard]] bool shb_alive(int i = 0) const {
    return shbs_[static_cast<std::size_t>(i)] != nullptr;
  }
  [[nodiscard]] int num_shbs() const { return static_cast<int>(shbs_.size()); }
  [[nodiscard]] int num_intermediates() const {
    return static_cast<int>(intermediate_nodes_.size());
  }
  [[nodiscard]] bool phb_alive() const { return phb_ != nullptr; }
  [[nodiscard]] bool intermediate_alive(int i) const;
  [[nodiscard]] std::vector<PubendId> pubends() const;

  [[nodiscard]] sim::Cpu& phb_cpu() { return phb_node_->cpu; }
  [[nodiscard]] sim::Cpu& shb_cpu(int i = 0);

  // --- topology / device accessors (fault injection targets) ---
  [[nodiscard]] sim::EndpointId phb_endpoint() const { return phb_node_->endpoint; }
  [[nodiscard]] sim::EndpointId intermediate_endpoint(int i) const;
  [[nodiscard]] sim::EndpointId shb_endpoint(int i = 0) const;
  /// Endpoint of the broker directly upstream of SHB i (the chain tail, or
  /// the PHB when there are no intermediates).
  [[nodiscard]] sim::EndpointId shb_uplink_endpoint(int i = 0) const;
  /// Endpoint directly upstream of intermediate i (i-1, or the PHB).
  [[nodiscard]] sim::EndpointId intermediate_uplink_endpoint(int i) const;
  [[nodiscard]] storage::SimDisk& phb_disk() { return phb_node_->disk; }
  [[nodiscard]] storage::SimDisk& intermediate_disk(int i);
  [[nodiscard]] storage::SimDisk& shb_disk(int i = 0);

  /// Adds a publisher feeding `pubend` at fixed `interval` (manual-only if
  /// interval <= 0), using `factory` to build events.
  core::Publisher& add_publisher(PubendId pubend, SimDuration interval,
                                 core::Publisher::EventFactory factory,
                                 SimDuration start_offset = 0);

  /// Adds a durable subscriber on SHB `shb_index` (machine groups delivery
  /// rates per simulated client machine, as in the paper's figures). The
  /// client is registered with the oracle but not yet connected.
  core::DurableSubscriber& add_subscriber(core::DurableSubscriber::Options options,
                                          int shb_index = 0, int machine = 0);

  [[nodiscard]] std::vector<core::DurableSubscriber*> subscribers();

  /// Reconnect-anywhere: moves a subscriber's durable subscription to
  /// another SHB (creating the client link if needed).
  void migrate_subscriber(core::DurableSubscriber& subscriber, int new_shb_index);

  // --- failure injection ---
  /// Kills SHB i: its address goes dark, volatile state is lost, connected
  /// subscribers see a connection reset.
  void crash_shb(int i);
  /// Restarts SHB i over its surviving node resources and runs recovery.
  void restart_shb(int i);
  void crash_phb();
  void restart_phb();
  void crash_intermediate(int i);
  void restart_intermediate(int i);

  /// Torn sync on a live broker's disk (in-flight write barriers lost, the
  /// process stays up; LogVolume/Database re-issue the lost barriers).
  /// `entropy` seeds the byte offset a subsequent crash would tear the WAL
  /// tail at (0 = tear exactly at the durable watermark).
  void torn_sync_phb(std::uint64_t entropy = 0);
  void torn_sync_intermediate(int i, std::uint64_t entropy = 0);
  void torn_sync_shb(int i = 0, std::uint64_t entropy = 0);

  /// Runs the simulation for `d` of simulated time.
  void run_for(SimDuration d) { sim_.run_until(sim_.now() + d); }

  /// Checks the exactly-once contract for every subscriber; throws on
  /// violation (callable repeatedly, e.g. at the end of every benchmark).
  void verify_exactly_once();

  /// Quiescence oracle for chaos runs: exactly-once holds, every live SHB
  /// has drained its catchup streams, and (optionally) every subscriber
  /// hosted on a live SHB is connected again.
  void verify_quiescent(bool require_connected = true);

  /// Registers the always-on InvariantMonitor (periodic exactly-once +
  /// progress-monotonicity sweeps). Idempotent: a second call returns the
  /// existing monitor, ignoring the new options.
  InvariantMonitor& enable_invariants(InvariantMonitor::Options options = {});
  [[nodiscard]] InvariantMonitor* invariants() { return monitor_.get(); }

  // --- observability (ROADMAP "metrics registry + flight recorder") ---
  /// Node resources (metrics registry + tracer) survive broker crashes, so
  /// these are valid even while the corresponding broker is down.
  [[nodiscard]] core::NodeResources& phb_node() { return *phb_node_; }
  [[nodiscard]] core::NodeResources& intermediate_node(int i);
  [[nodiscard]] core::NodeResources& shb_node(int i = 0);
  /// Every node in deterministic topology order: PHB, intermediates, SHBs.
  [[nodiscard]] std::vector<core::NodeResources*> nodes();

  /// Per-stage delivery-latency histograms fed live from every node tracer
  /// (publish->persist->match->pfs-log->deliver->ack, end-to-end, catchup
  /// admission wait). Always on; sampled at trace_sample_every like the
  /// flight recorder, so percentiles are over the deterministic sample.
  [[nodiscard]] LatencyRecorder& latency() { return latency_; }

  /// Chrome trace-event exporter (nullptr unless config.trace_export).
  [[nodiscard]] TraceExporter* trace_exporter() { return trace_export_.get(); }
  /// Writes the Perfetto-loadable trace to `path`. Returns false when the
  /// exporter is disabled or the file could not be written.
  bool write_trace_json(const std::string& path);
  /// Publishes a chaos fault window / instant onto the trace's faults
  /// track. No-ops when the exporter is disabled, so fault planners can
  /// call these unconditionally.
  void note_fault_span(SimTime from, SimTime to, const std::string& name);
  void note_fault_instant(SimTime at, const std::string& name);

  /// Appends a JSON object `{ "node": {snapshot}, ... }` covering every
  /// node's registry (probes refreshed; sorted names => deterministic).
  /// pretty=false emits the compact one-line form (NDJSON scrapes).
  void append_metrics_json(std::string& out, const std::string& indent = "",
                           bool pretty = true);
  /// Writes the per-node snapshots as one JSON document. Returns false if
  /// the file could not be opened.
  bool write_metrics_json(const std::string& path);
  /// One NDJSON scrape line: {"t":<sim seconds>,"latency":{...},
  /// "nodes":{...}} + newline — the periodic --metrics-interval record.
  /// Deterministic (sim-time driven, sorted names, canonical numbers).
  [[nodiscard]] std::string metrics_scrape_line();

  /// Merges every node's trace ring into one time-ordered dump; with a
  /// focus, appends the milestone checklist for that (pubend, tick).
  void dump_flight_recorder(std::FILE* out,
                            const FlightRecorderFocus* focus = nullptr);

 private:
  struct SubEntry {
    std::unique_ptr<core::DurableSubscriber> client;
    int shb_index;
  };

  void schedule_gc_tick(sim::Cpu* cpu);

  SystemConfig config_;
  sim::Simulator sim_;
  sim::Network net_;
  /// Owned transport installed into net_ (nullptr in struct mode: the
  /// Network's no-transport path is already the struct pass-through).
  std::unique_ptr<sim::Transport> transport_;
  DeliveryOracle oracle_;

  std::unique_ptr<core::NodeResources> phb_node_;
  std::vector<std::unique_ptr<core::NodeResources>> intermediate_nodes_;
  std::vector<std::unique_ptr<core::NodeResources>> shb_nodes_;

  std::unique_ptr<core::PublisherHostingBroker> phb_;
  std::vector<std::unique_ptr<core::IntermediateBroker>> intermediates_;
  std::vector<std::unique_ptr<core::SubscriberHostingBroker>> shbs_;
  std::vector<std::vector<std::function<void(core::SubscriberHostingBroker&)>>> shb_hooks_;

  std::vector<std::unique_ptr<core::Publisher>> publishers_;
  std::vector<SubEntry> subscribers_;
  std::unique_ptr<InvariantMonitor> monitor_;

  // Live trace consumers, fed by every node tracer through one fanout.
  // Declared after the node vectors: the tracers (inside NodeResources)
  // outlive the sink installation either way, and System never destroys
  // nodes before itself.
  LatencyRecorder latency_;
  std::unique_ptr<TraceExporter> trace_export_;
  TraceFanout trace_fanout_;

 public:
  /// Installs a hook run on every (re)constructed SHB i (e.g. to reattach
  /// the catchup-completion callback after a restart).
  void on_shb_ready(int i, std::function<void(core::SubscriberHostingBroker&)> hook);
};

}  // namespace gryphon::harness
