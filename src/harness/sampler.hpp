// Periodic sampler: turns protocol getters (latestDelivered, released,
// catchup-stream counts, ...) into TimeSeries for the figure benchmarks.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sim/simulator.hpp"
#include "util/metrics.hpp"
#include "util/stats.hpp"

namespace gryphon::harness {

class Sampler {
 public:
  explicit Sampler(sim::Simulator& simulator, SimDuration period = msec(100))
      : sim_(simulator), period_(period) {
    GRYPHON_CHECK(period_ > 0);
  }

  ~Sampler() { stop(); }

  /// Registers a sampled series; `getter` is polled every period. Getters
  /// must tolerate being called at any simulation time (e.g. return the last
  /// value while a broker is crashed). The returned reference is stable.
  TimeSeries& add(std::string name, std::function<double()> getter) {
    GRYPHON_CHECK_MSG(!stopped_, "Sampler::add after stop()");
    auto entry = std::make_unique<Entry>();
    entry->series = std::make_unique<TimeSeries>(std::move(name));
    entry->getter = std::move(getter);
    Entry* raw = entry.get();
    series_.push_back(std::move(entry));
    poll(raw);
    return *raw->series;
  }

  /// Registers a series polled straight from a registry gauge — the figure
  /// benches can plot broker-internal state without bespoke getters. The
  /// gauge slot must outlive the sampler (registry slots do: they live in
  /// NodeResources, which survives broker crashes).
  TimeSeries& add_gauge(std::string name, const MetricsRegistry::Gauge* gauge) {
    GRYPHON_CHECK(gauge != nullptr);
    return add(std::move(name), [gauge] { return static_cast<double>(gauge->get()); });
  }

  /// Cancels every pending poll. Terminal: without this, each series
  /// reschedules itself forever and `run_until` past the measurement window
  /// burns one wakeup per series per period. Call from a benchmark's
  /// shutdown path once sampling is no longer wanted.
  void stop() {
    stopped_ = true;
    for (auto& entry : series_) {
      if (entry->task != sim::kInvalidTask) sim_.cancel(entry->task);
      entry->task = sim::kInvalidTask;
    }
  }

 private:
  struct Entry {
    std::unique_ptr<TimeSeries> series;
    std::function<double()> getter;
    sim::TaskId task = sim::kInvalidTask;
  };

  void poll(Entry* entry) {
    entry->series->record(sim_.now(), entry->getter());
    entry->task = sim_.schedule_after(period_, [this, entry] { poll(entry); });
  }

  sim::Simulator& sim_;
  SimDuration period_;
  bool stopped_ = false;
  std::vector<std::unique_ptr<Entry>> series_;
};

}  // namespace gryphon::harness
