// Periodic sampler: turns protocol getters (latestDelivered, released,
// catchup-stream counts, ...) into TimeSeries for the figure benchmarks.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sim/simulator.hpp"
#include "util/stats.hpp"

namespace gryphon::harness {

class Sampler {
 public:
  explicit Sampler(sim::Simulator& simulator, SimDuration period = msec(100))
      : sim_(simulator), period_(period) {
    GRYPHON_CHECK(period_ > 0);
  }

  /// Registers a sampled series; `getter` is polled every period. Getters
  /// must tolerate being called at any simulation time (e.g. return the last
  /// value while a broker is crashed). The returned reference is stable.
  TimeSeries& add(std::string name, std::function<double()> getter) {
    auto entry = std::make_unique<Entry>();
    entry->series = std::make_unique<TimeSeries>(std::move(name));
    entry->getter = std::move(getter);
    Entry* raw = entry.get();
    series_.push_back(std::move(entry));
    poll(raw);
    return *raw->series;
  }

 private:
  struct Entry {
    std::unique_ptr<TimeSeries> series;
    std::function<double()> getter;
  };

  void poll(Entry* entry) {
    entry->series->record(sim_.now(), entry->getter());
    sim_.schedule_after(period_, [this, entry] { poll(entry); });
  }

  sim::Simulator& sim_;
  SimDuration period_;
  std::vector<std::unique_ptr<Entry>> series_;
};

}  // namespace gryphon::harness
