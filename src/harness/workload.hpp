// Workload builders for the paper's evaluation setup (§5):
//   * events with a 250-byte payload (418 bytes on the wire with headers),
//     partitioned into `groups` by a "g" attribute so that a subscriber of
//     "g == k" receives exactly rate/groups events per second,
//   * one publisher per pubend at a fixed rate,
//   * per-subscriber periodic disconnect/reconnect churn (Fig. 4-6),
//   * a deterministic default of 4 pubends x 200 ev/s = 800 ev/s input and
//     200 ev/s per subscriber (groups = 4).
#pragma once

#include <string>
#include <vector>

#include "core/publisher_client.hpp"
#include "core/subscriber_client.hpp"
#include "harness/system.hpp"
#include "util/rng.hpp"

namespace gryphon::harness {

struct PaperWorkloadConfig {
  double input_rate_eps = 800.0;  // aggregate over all pubends
  int groups = 4;                 // subscriber matches input_rate / groups
  std::size_t payload_bytes = 250;
};

/// Event factory: cycles the "g" attribute deterministically so every group
/// receives exactly 1/groups of the stream.
[[nodiscard]] core::Publisher::EventFactory group_event_factory(int groups,
                                                                std::size_t payload_bytes);

/// The predicate a group-`k` subscriber uses.
[[nodiscard]] std::string group_predicate(int k);

/// Starts one publisher per pubend at input_rate/num_pubends each, phase
/// staggered so the aggregate stream is smooth.
void start_paper_publishers(System& system, const PaperWorkloadConfig& config);

/// Adds `count` subscribers to SHB `shb_index`, round-robining groups and
/// client machines, and connects them. Ids must not collide across calls —
/// pass a distinct `first_id` block per SHB.
std::vector<core::DurableSubscriber*> add_group_subscribers(
    System& system, int shb_index, int count, int groups, std::uint32_t first_id,
    int machines = 1, SimDuration ack_interval = msec(250));

/// Periodic churn (paper §5.1): each subscriber independently disconnects
/// every `period`, stays down for `down_time`, then reconnects. Offsets are
/// staggered deterministically across subscribers.
class ChurnDriver {
 public:
  ChurnDriver(System& system, std::vector<core::DurableSubscriber*> subs,
              SimDuration period, SimDuration down_time);

  /// Stops scheduling further disconnects (already-down subscribers still
  /// reconnect).
  void stop() { stopped_ = true; }

  [[nodiscard]] std::uint64_t disconnects() const { return disconnects_; }

 private:
  void schedule(std::size_t idx, SimDuration delay);

  System& system_;
  std::vector<core::DurableSubscriber*> subs_;
  SimDuration period_;
  SimDuration down_time_;
  bool stopped_ = false;
  std::uint64_t disconnects_ = 0;
};

/// Churn storms: seeded waves that drop a large fraction of the subscriber
/// population at one instant and reconnect the whole herd `down_time` later
/// (optionally fuzzed over `reconnect_spread`), so thousands of catchup
/// streams arrive at the SHB simultaneously. The entire schedule is drawn
/// from Rng(seed) at construction — same seed, same storm, bit-identical.
class StormDriver {
 public:
  struct Options {
    std::uint64_t seed = 1;
    int waves = 3;
    SimDuration wave_interval = sec(8);   // wave k drops at k * interval
    SimDuration down_time = sec(4);       // herd reconnects this much later
    double drop_fraction = 1.0;           // share of subscribers per wave
    SimDuration reconnect_spread = 0;     // 0 = perfectly simultaneous herd
  };

  StormDriver(System& system, std::vector<core::DurableSubscriber*> subs,
              Options options);

  [[nodiscard]] std::uint64_t disconnects() const { return disconnects_; }
  [[nodiscard]] std::uint64_t reconnects() const { return reconnects_; }

 private:
  System& system_;
  std::vector<core::DurableSubscriber*> subs_;
  Options opt_;
  std::uint64_t disconnects_ = 0;
  std::uint64_t reconnects_ = 0;
};

}  // namespace gryphon::harness
