// DeliveryOracle — global ground truth for every experiment.
//
// Observes every publish acknowledgment and every client-side delivery, and
// can then verify the paper's delivery contract per subscriber:
//   * no duplicates / ordering violations (also enforced on the wire by
//     DurableSubscriber),
//   * no spurious deliveries (event must match the predicate),
//   * exactly-once: every published event that matches the subscription,
//     with a timestamp within the subscriber's consumed horizon, was either
//     delivered or covered by an explicit gap notification (early release)
//     or predates the subscription.
//
// Doubles as the metrics sink: end-to-end latency summary, aggregate and
// per-machine delivery rate meters (the paper's client machines), and gap /
// catchup counters.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/client_observer.hpp"
#include "sim/simulator.hpp"
#include "core/subscriber_client.hpp"
#include "matching/predicate.hpp"
#include "util/stats.hpp"
#include "util/tick_set.hpp"

namespace gryphon::harness {

class DeliveryOracle final : public core::SubscriberObserver,
                             public core::PublisherObserver {
 public:
  explicit DeliveryOracle(sim::Simulator& simulator) : sim_(simulator) {}

  /// Registers a subscriber for verification. `machine` groups delivery
  /// rates the way the paper groups subscribers onto client machines.
  void register_subscriber(const core::DurableSubscriber* client,
                           matching::PredicatePtr predicate, int machine = 0);

  // --- PublisherObserver ---
  void on_published(PublisherId publisher, PubendId pubend, Tick tick,
                    const matching::EventDataPtr& event, SimTime publish_time,
                    SimTime ack_time) override;

  // --- SubscriberObserver ---
  void on_event(SubscriberId s, PubendId p, Tick t, const matching::EventDataPtr& e,
                bool catchup, SimTime now) override;
  void on_silence(SubscriberId s, PubendId p, Tick upto, SimTime now) override;
  void on_gap(SubscriberId s, PubendId p, TickRange range, SimTime now) override;
  void on_connected(SubscriberId s, SimTime now) override;

  /// Forgets a subscriber's delivery history and start point. Call when the
  /// experiment deliberately rewinds a subscriber's CT (paper §2's "older
  /// CT" case): redelivery of previously seen events becomes legitimate.
  void reset_subscriber(SubscriberId s);

  /// Exactly-once verification for one subscriber against its current CT.
  /// Returns human-readable violations (empty = contract held).
  [[nodiscard]] std::vector<std::string> verify(SubscriberId s) const;

  /// Verifies every registered subscriber.
  [[nodiscard]] std::vector<std::string> verify_all() const;

  /// Incremental variant for periodic sweeps: per (subscriber, pubend) it
  /// re-checks only ticks above the horizon already verified by an earlier
  /// call, then advances that horizon to the current CT. Sound because a
  /// verified fact only changes when the CT rewinds (on_connected clamps the
  /// horizon back) or the subscriber resets (horizons are cleared); finding
  /// nothing therefore means the full verify() would find nothing new below
  /// the horizon. End-of-run checks still use verify_all().
  [[nodiscard]] std::vector<std::string> verify_all_incremental();

  // --- metrics ---
  [[nodiscard]] const Summary& e2e_latency() const { return e2e_latency_; }
  [[nodiscard]] const Summary& publish_log_latency() const { return publish_latency_; }
  [[nodiscard]] const RateMeter& delivery_rate() const { return delivery_rate_; }
  [[nodiscard]] const RateMeter& machine_rate(int machine) const;
  [[nodiscard]] std::vector<int> machines() const;

  [[nodiscard]] std::uint64_t published_count() const { return published_count_; }
  [[nodiscard]] std::uint64_t delivered_count() const { return delivered_count_; }
  [[nodiscard]] std::uint64_t catchup_delivered_count() const {
    return catchup_delivered_count_;
  }
  [[nodiscard]] std::uint64_t gap_count() const { return gap_count_; }

  /// Published events of one pubend (tick -> event), for custom assertions.
  [[nodiscard]] const std::map<Tick, matching::EventDataPtr>& published(PubendId p) const;

  /// Structured identity of the most recent contract violation: the fatal
  /// on_event / on_gap checks record it just before throwing, and each
  /// verify pass records its *first* finding (the one error messages quote).
  /// The chaos harness feeds this to the flight recorder so the merged trace
  /// dump can focus its milestone checklist on the offending (pubend, tick).
  struct LastViolation {
    bool valid = false;
    SubscriberId subscriber{};
    PubendId pubend{};
    Tick tick = 0;
    std::string what;
  };
  [[nodiscard]] const LastViolation& last_violation() const { return last_violation_; }

 private:
  struct SubState {
    const core::DurableSubscriber* client = nullptr;
    matching::PredicatePtr predicate;
    int machine = 0;
    bool saw_first_connect = false;
    core::CheckpointToken start_ct;  // captured at first successful connect
    std::map<PubendId, TickSet> delivered;
    std::map<PubendId, IntervalSet> gaps;
    /// Highest live (non-catchup) delivery per pubend: the constream
    /// position. Gap notifications must never open at or behind it.
    std::map<PubendId, Tick> constream_floor;
    /// Per pubend: ticks at or below this are already checked by
    /// verify_all_incremental(). Clamped on CT rewind, cleared on reset.
    std::map<PubendId, Tick> verified_upto;
  };

  /// Checks one (subscriber, pubend) stream over (lo, hi]: every matching
  /// published event delivered or gapped, every delivered tick published.
  void verify_stream(SubscriberId s, const SubState& state, PubendId p,
                     const std::map<Tick, matching::EventDataPtr>& events, Tick lo,
                     Tick hi, std::vector<std::string>& out) const;

  /// Records the violation identity (mutable: verification is const).
  void note_violation(SubscriberId s, PubendId p, Tick t, std::string what) const;

  sim::Simulator& sim_;
  std::map<PubendId, std::map<Tick, matching::EventDataPtr>> published_;
  std::map<PubendId, std::unordered_map<Tick, SimTime>> publish_times_;
  std::map<SubscriberId, SubState> subs_;
  std::map<int, RateMeter> machine_rates_;

  Summary e2e_latency_;      // publish() call -> non-catchup client delivery
  Summary publish_latency_;  // publish() call -> PHB durable ack
  RateMeter delivery_rate_{sec(1)};
  std::uint64_t published_count_ = 0;
  std::uint64_t delivered_count_ = 0;
  std::uint64_t catchup_delivered_count_ = 0;
  std::uint64_t gap_count_ = 0;
  mutable LastViolation last_violation_;
};

}  // namespace gryphon::harness
