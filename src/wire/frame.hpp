// The broker network's wire frame — the byte envelope every protocol
// message travels in under CodecTransport.
//
//   +--------+---------+------+-----+--------+-----------+------------+
//   | magic  | version | kind | pad | len    | crc32c    | reserved   |
//   | 8      | u16     | u8   | u8  | u32    | u32       | zeros → 64 |
//   +--------+---------+------+-----+--------+-----------+------------+
//   | payload (len bytes)                                             |
//   +-----------------------------------------------------------------+
//
// The header is padded to exactly 64 bytes = core::kEnvelopeBytes, so the
// frame's total size equals the envelope constant the analytic wire_size()
// formulas (and every paper byte-accounting claim) are stated in. The CRC
// covers magic..len, the reserved padding and the payload — every byte of
// the frame except the CRC field itself — so any single flipped byte or
// torn tail is detected.
//
// Parsing never throws: a torn or corrupt frame yields FrameParse with
// consumed == 0 and a reason + expected/found CRC, mirroring the WAL's
// storage/segment.* contract (DESIGN.md §4.4).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace gryphon::wire {

/// "GRYMSG01" little-endian; bump the trailing digits with the version.
constexpr std::uint64_t kFrameMagic = 0x313047534D595247ull;
constexpr std::uint16_t kWireVersion = 1;

/// Total header size, reserved padding included.
constexpr std::size_t kFrameHeaderBytes = 64;

/// Upper bound on a single frame payload; anything larger in a length
/// prefix is treated as corruption, bounding how far a parse can be fooled.
constexpr std::size_t kMaxFramePayloadBytes = 64u << 20;

/// Appends a complete frame (header + payload) for message kind `kind`.
void append_frame(std::vector<std::byte>& out, std::uint8_t kind,
                  std::span<const std::byte> payload);

/// Split-phase framing for pooled/arena encoders: begin_frame() appends a
/// zeroed header and returns its offset; the caller then appends the payload
/// bytes directly behind it (no staging buffer, no copy) and finish_frame()
/// patches kind, length and CRC over everything appended since. Equivalent
/// byte-for-byte to append_frame().
[[nodiscard]] std::size_t begin_frame(std::vector<std::byte>& out);
void finish_frame(std::vector<std::byte>& out, std::size_t base, std::uint8_t kind);

struct FrameParse {
  std::size_t consumed = 0;  // 0 => torn/corrupt
  std::uint8_t kind = 0;
  std::span<const std::byte> payload;
  std::uint32_t crc_expected = 0;
  std::uint32_t crc_found = 0;
  const char* reason = nullptr;  // set when consumed == 0
};

/// Parses one frame from the start of `bytes`. `max_kind` is the largest
/// valid message-kind byte (the frame layer itself is vocabulary-agnostic).
[[nodiscard]] FrameParse parse_frame(std::span<const std::byte> bytes,
                                     std::uint8_t max_kind);

}  // namespace gryphon::wire
