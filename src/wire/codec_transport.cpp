#include "wire/codec_transport.hpp"

#include <algorithm>

#include "util/assert.hpp"
#include "wire/codec.hpp"

namespace gryphon::wire {

CodecTransport::CodecTransport(const Options& options)
    : options_(options),
      pool_(std::make_shared<BufferPool>(BufferPool::Options{
          .max_buffers = options.pool_max_buffers,
          .max_retained_bytes = std::max<std::size_t>(options.arena_bytes, 1u << 20),
          .initial_bytes = options.arena_bytes,
      })) {}

sim::MessagePtr CodecTransport::to_wire(sim::EndpointId, sim::EndpointId,
                                        sim::MessagePtr msg) {
  const auto* m = dynamic_cast<const core::Msg*>(msg.get());
  GRYPHON_CHECK_MSG(m != nullptr, "non-protocol message on a codec link");
  const std::size_t need = m->wire_size();

  // Seal-before-grow: a frame is only appended when it provably fits in the
  // arena's remaining reserved capacity, so the buffer never reallocates
  // under the (arena, offset, len) views already handed out. The wire-size
  // parity check below is what makes this pre-check exact.
  if (open_arena_ == nullptr ||
      open_arena_->buffer().capacity() - open_arena_->buffer().size() < need) {
    std::vector<std::byte> buf = pool_->acquire();
    if (buf.capacity() < need) buf.reserve(need);  // oversized: dedicated arena
    open_arena_ = std::make_shared<sim::FrameArena>(pool_, std::move(buf));
    ++arenas_opened_;
  }

  std::vector<std::byte>& buf = open_arena_->buffer();
  const std::size_t base = buf.size();
  const std::size_t encoded = append_encoded_frame(buf, *m);
  GRYPHON_CHECK_MSG(encoded == need, "wire-size parity violation for kind "
                                         << static_cast<int>(m->kind())
                                         << ": encoded " << encoded
                                         << " bytes, wire_size() says " << need);
  ++frames_encoded_;
  return std::make_shared<sim::FrameMessage>(open_arena_, base, encoded);
}

sim::MessagePtr CodecTransport::from_wire(sim::EndpointId, sim::EndpointId,
                                          sim::MessagePtr msg) {
  // Frames are discriminated by their ownership handle, not by span
  // emptiness: a chaos truncation can shear a frame down to zero bytes and
  // it must still be treated (and rejected) as a frame.
  std::shared_ptr<const void> owner = msg->wire_owner();
  GRYPHON_CHECK_MSG(owner != nullptr, "struct message delivered on a codec link");
  const std::span<const std::byte> bytes = msg->wire_bytes();
  DecodeResult r = decode(bytes, owner);
  if (r.msg == nullptr) {
    ++frames_rejected_;
    return nullptr;  // corrupt frame: Network counts + drops
  }
  // Canonical-encoding rule: the decoded struct must re-encode to the exact
  // frame that arrived; anything else means sender and receiver disagree
  // about the message, which must never be silent. Sampled 1-in-N (seeded,
  // deterministic) in steady state; every frame when verify_every <= 1.
  if (should_verify()) {
    ++verifies_run_;
    std::vector<std::byte> scratch = pool_->acquire();
    append_encoded_frame(scratch, *r.msg);
    const bool canonical =
        scratch.size() == bytes.size() &&
        std::equal(scratch.begin(), scratch.end(), bytes.begin());
    GRYPHON_CHECK_MSG(canonical, "non-canonical re-encode for kind "
                                     << static_cast<int>(r.msg->kind()));
    pool_->release(std::move(scratch));
  }
  ++frames_decoded_;
  return r.msg;
}

bool CodecTransport::should_verify() {
  if (options_.verify_every <= 1) return true;
  // splitmix64 over (seed, decode ordinal): deterministic for a given seed,
  // uncorrelated with the traffic pattern.
  std::uint64_t x = options_.verify_seed + 0x9E3779B97F4A7C15ull * ++decode_draws_;
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ull;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBull;
  x ^= x >> 31;
  return x % options_.verify_every == 0;
}

}  // namespace gryphon::wire
