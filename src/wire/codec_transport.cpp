#include "wire/codec_transport.hpp"

#include "wire/codec.hpp"

namespace gryphon::wire {

sim::MessagePtr CodecTransport::to_wire(sim::EndpointId, sim::EndpointId,
                                        sim::MessagePtr msg) {
  const auto* m = dynamic_cast<const core::Msg*>(msg.get());
  GRYPHON_CHECK_MSG(m != nullptr, "non-protocol message on a codec link");
  std::vector<std::byte> frame = encode(*m);
  GRYPHON_CHECK_MSG(frame.size() == m->wire_size(),
                    "wire-size parity violation for kind "
                        << static_cast<int>(m->kind()) << ": encoded "
                        << frame.size() << " bytes, wire_size() says "
                        << m->wire_size());
  ++frames_encoded_;
  return std::make_shared<sim::FrameMessage>(std::move(frame));
}

sim::MessagePtr CodecTransport::from_wire(sim::EndpointId, sim::EndpointId,
                                          sim::MessagePtr msg) {
  const std::vector<std::byte>* bytes = msg->wire_bytes();
  GRYPHON_CHECK_MSG(bytes != nullptr, "struct message delivered on a codec link");
  DecodeResult r = decode(*bytes);
  if (r.msg == nullptr) {
    ++frames_rejected_;
    return nullptr;  // corrupt frame: Network counts + drops
  }
  // Canonical-encoding rule: the decoded struct must re-encode to the exact
  // frame that arrived; anything else means sender and receiver disagree
  // about the message, which must never be silent.
  GRYPHON_CHECK_MSG(encode(*r.msg) == *bytes,
                    "non-canonical re-encode for kind "
                        << static_cast<int>(r.msg->kind()));
  ++frames_decoded_;
  return r.msg;
}

}  // namespace gryphon::wire
