// encode()/decode() between core::Msg protocol structs and wire frames.
//
// One canonical encoding per message: encode(decode(bytes)) == bytes for
// every frame decode accepts, and encode always produces exactly
// msg.wire_size() bytes (CodecTransport asserts both, so the analytic
// formulas in core/messages.hpp and the timing model stay honest).
//
// decode() never throws. A torn or corrupt frame — or a structurally
// invalid payload behind a valid CRC (encoder version skew) — yields
// consumed == 0, msg == nullptr and a reason, exactly like
// storage/segment.*'s parse contract.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "core/messages.hpp"
#include "wire/frame.hpp"

namespace gryphon::wire {

// The envelope constant every wire_size() formula charges IS the frame
// header: satellite of ISSUE 5, single source of truth.
static_assert(kFrameHeaderBytes == core::kEnvelopeBytes,
              "wire frame header must equal the analytic envelope size");

/// Encodes `msg` into a complete frame (header + payload). The result's
/// size equals msg.wire_size() for every message kind.
[[nodiscard]] std::vector<std::byte> encode(const core::Msg& msg);

/// Pooled/arena variant: appends the complete frame for `msg` directly to
/// `out` (no staging buffer, no copy) and returns the frame's byte count —
/// always exactly msg.wire_size(). Many frames coalesce back-to-back in one
/// buffer this way; encode() above is this over a fresh vector.
std::size_t append_encoded_frame(std::vector<std::byte>& out, const core::Msg& msg);

struct DecodeResult {
  std::size_t consumed = 0;  // 0 => rejected
  std::shared_ptr<const core::Msg> msg;
  const char* reason = nullptr;  // set when rejected
};

/// Decodes exactly one frame spanning all of `bytes` (trailing bytes are a
/// reject: the network delivers whole frames).
///
/// `owner` (optional) enables zero-copy decode: when non-null, the decoded
/// message's event payload fields are views into `bytes`, pinned by `owner`
/// (the frame's arena — FrameMessage::wire_owner()). The decoded message
/// then stays valid however long it outlives the frame. Callers whose
/// buffer dies independently of any ownership handle must pass null.
[[nodiscard]] DecodeResult decode(std::span<const std::byte> bytes,
                                  std::shared_ptr<const void> owner = nullptr);

}  // namespace gryphon::wire
