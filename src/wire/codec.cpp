#include "wire/codec.hpp"

#include "core/event_codec.hpp"
#include "routing/ticks.hpp"
#include "util/assert.hpp"
#include "util/byte_buffer.hpp"

namespace gryphon::wire {
namespace {

using core::MsgKind;

constexpr std::uint8_t kMaxKind = static_cast<std::uint8_t>(MsgKind::kJmsConsumed);

// ConnectMsg flag bits.
constexpr std::uint8_t kFlagFirstConnect = 1u << 0;
constexpr std::uint8_t kFlagJmsAutoAck = 1u << 1;
constexpr std::uint8_t kFlagUseStoredCt = 1u << 2;
constexpr std::uint8_t kKnownConnectFlags =
    kFlagFirstConnect | kFlagJmsAutoAck | kFlagUseStoredCt;

void put_range(BufWriter& w, const TickRange& r) {
  w.put_i64(r.from);
  w.put_i64(r.to);
}

TickRange get_range(BufReader& r) {
  const Tick from = r.get_i64();
  const Tick to = r.get_i64();
  return TickRange{from, to};
}

void put_heads(BufWriter& w, const std::vector<std::pair<PubendId, Tick>>& heads) {
  w.put_u32(static_cast<std::uint32_t>(heads.size()));
  for (const auto& [p, t] : heads) {
    w.put_u32(p.value());
    w.put_i64(t);
  }
}

std::vector<std::pair<PubendId, Tick>> get_heads(BufReader& r) {
  const auto n = r.get_u32();
  std::vector<std::pair<PubendId, Tick>> heads;
  heads.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    const PubendId p{r.get_u32()};
    const Tick t = r.get_i64();
    heads.emplace_back(p, t);
  }
  return heads;
}

/// Thrown (and caught inside decode()) when a CRC-valid payload is
/// structurally invalid — encoder version skew, never wire damage.
struct BadPayload {
  const char* reason;
};

void encode_payload(BufWriter& w, const core::Msg& msg) {
  switch (msg.kind()) {
    case MsgKind::kStreamData: {
      const auto& m = static_cast<const core::StreamDataMsg&>(msg);
      w.put_u32(m.pubend.value());
      w.put_u32(static_cast<std::uint32_t>(m.items.size()));
      for (const auto& item : m.items) {
        w.put_u8(static_cast<std::uint8_t>(item.value));
        put_range(w, item.range);
        if (item.value == routing::TickValue::kD) {
          GRYPHON_CHECK_MSG(item.event != nullptr, "D item without event");
          core::encode_event_data(w, *item.event);
        }
      }
      return;
    }
    case MsgKind::kNack: {
      const auto& m = static_cast<const core::NackMsg&>(msg);
      w.put_u32(m.pubend.value());
      w.put_u8(m.authoritative_only ? 1 : 0);
      w.put_u32(static_cast<std::uint32_t>(m.ranges.size()));
      for (const auto& r : m.ranges) put_range(w, r);
      return;
    }
    case MsgKind::kReleaseUpdate: {
      const auto& m = static_cast<const core::ReleaseUpdateMsg&>(msg);
      w.put_u32(m.pubend.value());
      w.put_i64(m.released);
      w.put_i64(m.latest_delivered);
      return;
    }
    case MsgKind::kSubscribe: {
      const auto& m = static_cast<const core::SubscribeMsg&>(msg);
      w.put_u32(m.subscriber.value());
      w.put_string(m.predicate_text);
      return;
    }
    case MsgKind::kSubscribeAck: {
      const auto& m = static_cast<const core::SubscribeAckMsg&>(msg);
      w.put_u32(m.subscriber.value());
      put_heads(w, m.heads);
      return;
    }
    case MsgKind::kUnsubscribe: {
      const auto& m = static_cast<const core::UnsubscribeMsg&>(msg);
      w.put_u32(m.subscriber.value());
      return;
    }
    case MsgKind::kBrokerResume: {
      const auto& m = static_cast<const core::BrokerResumeMsg&>(msg);
      put_heads(w, m.resume_from);
      return;
    }
    case MsgKind::kPublish: {
      const auto& m = static_cast<const core::PublishMsg&>(msg);
      w.put_u32(m.publisher.value());
      w.put_u64(m.seq);
      w.put_u64(m.acked_below);
      w.put_u32(m.pubend.value());
      GRYPHON_CHECK_MSG(m.event != nullptr, "publish without event");
      core::encode_event_data(w, *m.event);
      return;
    }
    case MsgKind::kPublishAck: {
      const auto& m = static_cast<const core::PublishAckMsg&>(msg);
      w.put_u32(m.publisher.value());
      w.put_u64(m.seq);
      w.put_i64(m.assigned_tick);
      return;
    }
    case MsgKind::kConnect: {
      const auto& m = static_cast<const core::ConnectMsg&>(msg);
      w.put_u32(m.subscriber.value());
      std::uint8_t flags = 0;
      if (m.first_connect) flags |= kFlagFirstConnect;
      if (m.jms_auto_ack) flags |= kFlagJmsAutoAck;
      if (m.use_stored_ct) flags |= kFlagUseStoredCt;
      w.put_u8(flags);
      w.put_string(m.predicate_text);
      m.ct.serialize(w);
      return;
    }
    case MsgKind::kConnected: {
      const auto& m = static_cast<const core::ConnectedMsg&>(msg);
      w.put_u32(m.subscriber.value());
      m.initial_ct.serialize(w);
      return;
    }
    case MsgKind::kDisconnect: {
      const auto& m = static_cast<const core::DisconnectMsg&>(msg);
      w.put_u32(m.subscriber.value());
      return;
    }
    case MsgKind::kUnsubscribeReq: {
      const auto& m = static_cast<const core::UnsubscribeReqMsg&>(msg);
      w.put_u32(m.subscriber.value());
      return;
    }
    case MsgKind::kAck: {
      const auto& m = static_cast<const core::AckMsg&>(msg);
      w.put_u32(m.subscriber.value());
      m.ct.serialize(w);
      return;
    }
    case MsgKind::kEventDelivery: {
      const auto& m = static_cast<const core::EventDeliveryMsg&>(msg);
      w.put_u32(m.subscriber.value());
      w.put_u32(m.pubend.value());
      w.put_i64(m.tick);
      w.put_u8(m.from_catchup ? 1 : 0);
      GRYPHON_CHECK_MSG(m.event != nullptr, "delivery without event");
      core::encode_event_data(w, *m.event);
      return;
    }
    case MsgKind::kSilenceDelivery: {
      const auto& m = static_cast<const core::SilenceDeliveryMsg&>(msg);
      w.put_u32(m.subscriber.value());
      w.put_u32(m.pubend.value());
      w.put_i64(m.upto);
      return;
    }
    case MsgKind::kGapDelivery: {
      const auto& m = static_cast<const core::GapDeliveryMsg&>(msg);
      w.put_u32(m.subscriber.value());
      w.put_u32(m.pubend.value());
      put_range(w, m.range);
      return;
    }
    case MsgKind::kJmsConsumed: {
      const auto& m = static_cast<const core::JmsConsumedMsg&>(msg);
      w.put_u32(m.subscriber.value());
      w.put_u32(m.pubend.value());
      w.put_i64(m.tick);
      return;
    }
  }
  GRYPHON_CHECK_MSG(false, "unencodable message kind "
                               << static_cast<int>(msg.kind()));
}

/// A wire bool is exactly 0 or 1; anything else is a non-canonical payload.
bool get_bool(BufReader& r) {
  const std::uint8_t b = r.get_u8();
  if (b > 1) throw BadPayload{"bad bool byte"};
  return b != 0;
}

std::shared_ptr<const core::Msg> decode_payload(
    MsgKind kind, BufReader& r, const std::shared_ptr<const void>& owner) {
  switch (kind) {
    case MsgKind::kStreamData: {
      const PubendId pubend{r.get_u32()};
      const auto n = r.get_u32();
      std::vector<routing::KnowledgeItem> items;
      items.reserve(n);
      for (std::uint32_t i = 0; i < n; ++i) {
        routing::KnowledgeItem item;
        const auto tag = r.get_u8();
        if (tag < static_cast<std::uint8_t>(routing::TickValue::kS) ||
            tag > static_cast<std::uint8_t>(routing::TickValue::kL)) {
          throw BadPayload{"bad knowledge tag"};
        }
        item.value = static_cast<routing::TickValue>(tag);
        item.range = get_range(r);
        if (item.value == routing::TickValue::kD) {
          if (item.range.from != item.range.to) throw BadPayload{"bad D range"};
          item.event = core::decode_event_data(r, owner);
        }
        items.push_back(std::move(item));
      }
      return std::make_shared<core::StreamDataMsg>(pubend, std::move(items));
    }
    case MsgKind::kNack: {
      const PubendId pubend{r.get_u32()};
      const bool authoritative = get_bool(r);
      const auto n = r.get_u32();
      std::vector<TickRange> ranges;
      ranges.reserve(n);
      for (std::uint32_t i = 0; i < n; ++i) ranges.push_back(get_range(r));
      return std::make_shared<core::NackMsg>(pubend, std::move(ranges), authoritative);
    }
    case MsgKind::kReleaseUpdate: {
      const PubendId pubend{r.get_u32()};
      const Tick released = r.get_i64();
      const Tick latest = r.get_i64();
      return std::make_shared<core::ReleaseUpdateMsg>(pubend, released, latest);
    }
    case MsgKind::kSubscribe: {
      const SubscriberId sub{r.get_u32()};
      return std::make_shared<core::SubscribeMsg>(sub, r.get_string());
    }
    case MsgKind::kSubscribeAck: {
      const SubscriberId sub{r.get_u32()};
      return std::make_shared<core::SubscribeAckMsg>(sub, get_heads(r));
    }
    case MsgKind::kUnsubscribe:
      return std::make_shared<core::UnsubscribeMsg>(SubscriberId{r.get_u32()});
    case MsgKind::kBrokerResume:
      return std::make_shared<core::BrokerResumeMsg>(get_heads(r));
    case MsgKind::kPublish: {
      const PublisherId pub{r.get_u32()};
      const std::uint64_t seq = r.get_u64();
      const std::uint64_t acked_below = r.get_u64();
      const PubendId pubend{r.get_u32()};
      auto event = core::decode_event_data(r, owner);
      return std::make_shared<core::PublishMsg>(pub, seq, acked_below, pubend,
                                                std::move(event));
    }
    case MsgKind::kPublishAck: {
      const PublisherId pub{r.get_u32()};
      const std::uint64_t seq = r.get_u64();
      const Tick tick = r.get_i64();
      return std::make_shared<core::PublishAckMsg>(pub, seq, tick);
    }
    case MsgKind::kConnect: {
      const SubscriberId sub{r.get_u32()};
      const std::uint8_t flags = r.get_u8();
      if ((flags & ~kKnownConnectFlags) != 0) throw BadPayload{"bad connect flags"};
      std::string pred = r.get_string();
      auto ct = core::CheckpointToken::deserialize(r);
      return std::make_shared<core::ConnectMsg>(
          sub, (flags & kFlagFirstConnect) != 0, std::move(pred), std::move(ct),
          (flags & kFlagJmsAutoAck) != 0, (flags & kFlagUseStoredCt) != 0);
    }
    case MsgKind::kConnected: {
      const SubscriberId sub{r.get_u32()};
      return std::make_shared<core::ConnectedMsg>(
          sub, core::CheckpointToken::deserialize(r));
    }
    case MsgKind::kDisconnect:
      return std::make_shared<core::DisconnectMsg>(SubscriberId{r.get_u32()});
    case MsgKind::kUnsubscribeReq:
      return std::make_shared<core::UnsubscribeReqMsg>(SubscriberId{r.get_u32()});
    case MsgKind::kAck: {
      const SubscriberId sub{r.get_u32()};
      return std::make_shared<core::AckMsg>(sub,
                                            core::CheckpointToken::deserialize(r));
    }
    case MsgKind::kEventDelivery: {
      const SubscriberId sub{r.get_u32()};
      const PubendId pubend{r.get_u32()};
      const Tick tick = r.get_i64();
      const bool catchup = get_bool(r);
      auto event = core::decode_event_data(r, owner);
      return std::make_shared<core::EventDeliveryMsg>(sub, pubend, tick,
                                                      std::move(event), catchup);
    }
    case MsgKind::kSilenceDelivery: {
      const SubscriberId sub{r.get_u32()};
      const PubendId pubend{r.get_u32()};
      return std::make_shared<core::SilenceDeliveryMsg>(sub, pubend, r.get_i64());
    }
    case MsgKind::kGapDelivery: {
      const SubscriberId sub{r.get_u32()};
      const PubendId pubend{r.get_u32()};
      return std::make_shared<core::GapDeliveryMsg>(sub, pubend, get_range(r));
    }
    case MsgKind::kJmsConsumed: {
      const SubscriberId sub{r.get_u32()};
      const PubendId pubend{r.get_u32()};
      return std::make_shared<core::JmsConsumedMsg>(sub, pubend, r.get_i64());
    }
  }
  throw BadPayload{"unknown message kind"};
}

}  // namespace

std::size_t append_encoded_frame(std::vector<std::byte>& out, const core::Msg& msg) {
  const std::size_t base = begin_frame(out);
  // Move the vector through an appending writer so the payload lands
  // directly behind the header — no staging buffer, no copy-out.
  BufWriter w = BufWriter::appending(std::move(out));
  encode_payload(w, msg);
  out = w.take();
  finish_frame(out, base, static_cast<std::uint8_t>(msg.kind()));
  return out.size() - base;
}

std::vector<std::byte> encode(const core::Msg& msg) {
  std::vector<std::byte> out;
  out.reserve(msg.wire_size());
  append_encoded_frame(out, msg);
  return out;
}

DecodeResult decode(std::span<const std::byte> bytes,
                    std::shared_ptr<const void> owner) {
  DecodeResult res;
  const FrameParse fp = parse_frame(bytes, kMaxKind);
  if (fp.consumed == 0) {
    res.reason = fp.reason;
    return res;
  }
  if (fp.consumed != bytes.size()) {
    res.reason = "trailing bytes after frame";
    return res;
  }
  // The CRC passed, so payload-structure failures here are encoder version
  // skew rather than wire damage — rejected all the same, never thrown out.
  try {
    BufReader r(fp.payload);
    res.msg = decode_payload(static_cast<MsgKind>(fp.kind), r, owner);
    if (!r.done()) {
      res.msg = nullptr;
      res.reason = "trailing payload bytes";
      return res;
    }
  } catch (const BadPayload& bad) {
    res.msg = nullptr;
    res.reason = bad.reason;
    return res;
  } catch (const InvariantViolation&) {
    res.msg = nullptr;
    res.reason = "truncated payload field";
    return res;
  }
  res.consumed = fp.consumed;
  return res;
}

}  // namespace gryphon::wire
