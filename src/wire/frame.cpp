#include "wire/frame.hpp"

#include <cstring>

#include "storage/crc32c.hpp"

namespace gryphon::wire {
namespace {

/// Tolerant little-endian reads: the parser must classify arbitrary bytes,
/// so it never throws (unlike BufReader).
template <typename T>
T read_le(std::span<const std::byte> bytes, std::size_t at) {
  T v;
  std::memcpy(&v, bytes.data() + at, sizeof(T));
  return v;
}

// Header field offsets.
constexpr std::size_t kVersionAt = 8;
constexpr std::size_t kKindAt = 10;
constexpr std::size_t kPadAt = 11;
constexpr std::size_t kLenAt = 12;
constexpr std::size_t kCrcAt = 16;
constexpr std::size_t kReservedAt = 20;

}  // namespace

std::size_t begin_frame(std::vector<std::byte>& out) {
  const std::size_t base = out.size();
  out.resize(base + kFrameHeaderBytes, std::byte{0});
  return base;
}

void finish_frame(std::vector<std::byte>& out, std::size_t base, std::uint8_t kind) {
  std::byte* h = out.data() + base;
  std::memcpy(h, &kFrameMagic, sizeof kFrameMagic);
  std::memcpy(h + kVersionAt, &kWireVersion, sizeof kWireVersion);
  h[kKindAt] = static_cast<std::byte>(kind);
  const auto len = static_cast<std::uint32_t>(out.size() - base - kFrameHeaderBytes);
  std::memcpy(h + kLenAt, &len, sizeof len);

  // CRC over every frame byte except the CRC field itself.
  std::uint32_t crc = storage::crc32c({h, kCrcAt});
  crc = storage::crc32c({h + kReservedAt, kFrameHeaderBytes - kReservedAt + len}, crc);
  std::memcpy(h + kCrcAt, &crc, sizeof crc);
}

void append_frame(std::vector<std::byte>& out, std::uint8_t kind,
                  std::span<const std::byte> payload) {
  const std::size_t base = begin_frame(out);
  out.insert(out.end(), payload.begin(), payload.end());
  finish_frame(out, base, kind);
}

FrameParse parse_frame(std::span<const std::byte> bytes, std::uint8_t max_kind) {
  FrameParse r;
  if (bytes.size() < kFrameHeaderBytes) {
    r.reason = "torn frame header";
    return r;
  }
  if (read_le<std::uint64_t>(bytes, 0) != kFrameMagic) {
    r.reason = "bad frame magic";
    return r;
  }
  if (read_le<std::uint16_t>(bytes, kVersionAt) != kWireVersion) {
    r.reason = "unsupported wire version";
    return r;
  }
  const auto len = read_le<std::uint32_t>(bytes, kLenAt);
  r.crc_found = read_le<std::uint32_t>(bytes, kCrcAt);
  if (len > kMaxFramePayloadBytes) {
    r.reason = "implausible frame length";
    return r;
  }
  if (bytes.size() < kFrameHeaderBytes + len) {
    r.reason = "torn frame payload";
    return r;
  }
  r.crc_expected = storage::crc32c(bytes.first(kCrcAt));
  r.crc_expected = storage::crc32c(
      bytes.subspan(kReservedAt, kFrameHeaderBytes - kReservedAt + len),
      r.crc_expected);
  if (r.crc_expected != r.crc_found) {
    r.reason = "bad frame crc";
    return r;
  }
  // CRC has passed: anything wrong past this point is encoder version skew,
  // not wire damage — still rejected, never trusted.
  const auto kind = static_cast<std::uint8_t>(bytes[kKindAt]);
  if (kind > max_kind) {
    r.reason = "unknown message kind";
    return r;
  }
  // Canonical frames zero-fill the pad byte and the whole reserved region;
  // anything else would survive decode but fail the canonical re-encode.
  if (bytes[kPadAt] != std::byte{0}) {
    r.reason = "nonzero header padding";
    return r;
  }
  for (std::size_t i = kReservedAt; i < kFrameHeaderBytes; ++i) {
    if (bytes[i] != std::byte{0}) {
      r.reason = "nonzero header padding";
      return r;
    }
  }
  r.kind = kind;
  r.payload = bytes.subspan(kFrameHeaderBytes, len);
  r.consumed = kFrameHeaderBytes + len;
  return r;
}

}  // namespace gryphon::wire
