// CodecTransport — the byte-accurate Transport: every send is encoded into
// a CRC32C-framed byte frame and every delivery is decoded back.
//
// The encode path is pooled and coalescing: consecutive sends append their
// frames back-to-back into one shared FrameArena (a recycled buffer from a
// bounded BufferPool), and each send returns an (arena, offset, len)
// FrameMessage view. The arena's capacity is checked against the message's
// exact wire_size() *before* encoding, and the arena is sealed (a fresh one
// acquired) when the frame would not fit — so the buffer never reallocates
// under live views. The decode path is zero-copy: event payload fields of
// the decoded message are views into the frame, pinned by the arena's
// shared ownership handle.
//
// Honesty checks (GRYPHON_CHECK — a failure is a bug, not a tolerable
// fault):
//  * wire-size parity at send, on every message: the encoded frame must be
//    exactly msg.wire_size() bytes, so struct- and codec-mode runs price
//    identical byte counts and stay schedule-identical on the same seed
//    (this same check is what guarantees the arena pre-check was exact);
//  * canonical re-encode at receive, SAMPLED: re-encoding the decoded
//    message must reproduce the frame bit-for-bit. Running it on every
//    message roughly doubles decode cost, so steady state verifies a
//    seeded, deterministic 1-in-N sample (Options::verify_every, default
//    64). verify_every <= 1 means every message — tests and the chaos
//    ASan leg run that way (--wire-verify=always).
//
// A frame that fails to decode (chaos byte flips / truncations) is not a
// bug: from_wire() returns nullptr and the Network counts a decode reject
// and drops the delivery, which the protocols must survive like any lost
// message.
#pragma once

#include <cstdint>

#include "sim/transport.hpp"
#include "util/buffer_pool.hpp"

namespace gryphon::wire {

class CodecTransport final : public sim::Transport {
 public:
  struct Options {
    /// Arena capacity: how many frame bytes coalesce into one pooled buffer
    /// before it seals. A message larger than this gets a dedicated arena.
    std::size_t arena_bytes = 64 * 1024;
    /// Bound on recycled arena/scratch buffers (see util/buffer_pool.hpp).
    std::size_t pool_max_buffers = 8;
    /// Canonical re-encode check cadence: verify ~1 in N decoded frames.
    /// <= 1 verifies every frame (the tests' and chaos legs' setting).
    std::uint32_t verify_every = 64;
    /// Seed for the deterministic verification sample.
    std::uint64_t verify_seed = 1;
  };

  CodecTransport() : CodecTransport(Options{}) {}
  explicit CodecTransport(const Options& options);

  [[nodiscard]] const char* name() const override { return "codec"; }

  [[nodiscard]] sim::MessagePtr to_wire(sim::EndpointId from, sim::EndpointId to,
                                        sim::MessagePtr msg) override;
  [[nodiscard]] sim::MessagePtr from_wire(sim::EndpointId from, sim::EndpointId to,
                                          sim::MessagePtr msg) override;

  /// Codec-tax accounting (bench_wallclock and the net.frames_* probes).
  [[nodiscard]] std::uint64_t frames_encoded() const { return frames_encoded_; }
  [[nodiscard]] std::uint64_t frames_decoded() const { return frames_decoded_; }
  [[nodiscard]] std::uint64_t frames_rejected() const { return frames_rejected_; }
  /// Arenas opened so far; frames_encoded() >> arenas_opened() is the
  /// coalescing working.
  [[nodiscard]] std::uint64_t arenas_opened() const { return arenas_opened_; }
  /// Canonical re-encode checks actually run (= frames_decoded() when
  /// verify_every <= 1).
  [[nodiscard]] std::uint64_t verifies_run() const { return verifies_run_; }
  [[nodiscard]] const BufferPool& pool() const { return *pool_; }

 private:
  [[nodiscard]] bool should_verify();

  Options options_;
  BufferPoolPtr pool_;  // shared: in-flight arenas outlive the transport
  std::shared_ptr<sim::FrameArena> open_arena_;
  std::uint64_t frames_encoded_ = 0;
  std::uint64_t frames_decoded_ = 0;
  std::uint64_t frames_rejected_ = 0;
  std::uint64_t arenas_opened_ = 0;
  std::uint64_t verifies_run_ = 0;
  std::uint64_t decode_draws_ = 0;
};

}  // namespace gryphon::wire
