// CodecTransport — the byte-accurate Transport: every send is encoded into
// a CRC32C-framed byte frame and every delivery is decoded back.
//
// Two honesty checks run on every message (GRYPHON_CHECK — a failure is a
// bug, not a tolerable fault):
//  * wire-size parity at send: the encoded frame must be exactly
//    msg.wire_size() bytes, so struct- and codec-mode runs price identical
//    byte counts and stay schedule-identical on the same seed;
//  * canonical re-encode at receive: re-encoding the decoded message must
//    reproduce the frame bit-for-bit, so no state can silently diverge
//    between the struct that was sent and the struct that was handled.
//
// A frame that fails to decode (chaos byte flips / truncations) is not a
// bug: from_wire() returns nullptr and the Network counts a decode reject
// and drops the delivery, which the protocols must survive like any lost
// message.
#pragma once

#include <cstdint>

#include "sim/transport.hpp"

namespace gryphon::wire {

class CodecTransport final : public sim::Transport {
 public:
  [[nodiscard]] const char* name() const override { return "codec"; }

  [[nodiscard]] sim::MessagePtr to_wire(sim::EndpointId from, sim::EndpointId to,
                                        sim::MessagePtr msg) override;
  [[nodiscard]] sim::MessagePtr from_wire(sim::EndpointId from, sim::EndpointId to,
                                          sim::MessagePtr msg) override;

  /// Codec-tax accounting (bench_wallclock reports these).
  [[nodiscard]] std::uint64_t frames_encoded() const { return frames_encoded_; }
  [[nodiscard]] std::uint64_t frames_decoded() const { return frames_decoded_; }
  [[nodiscard]] std::uint64_t frames_rejected() const { return frames_rejected_; }

 private:
  std::uint64_t frames_encoded_ = 0;
  std::uint64_t frames_decoded_ = 0;
  std::uint64_t frames_rejected_ = 0;
};

}  // namespace gryphon::wire
