// gryphon_report — offline analyzer for the observability artifacts.
//
// Two modes:
//
//   gryphon_report SCRAPE.ndjson
//     Reads a --metrics-interval NDJSON scrape (one snapshot per line) and
//     prints per-counter totals and rates ((last - first) / elapsed) plus
//     the per-stage latency percentile table from the final snapshot.
//
//   gryphon_report --validate-trace trace.json [--expect-fault-track]
//     Minimal Chrome trace-event validation: the file must parse as JSON,
//     have a traceEvents array, and its event timestamps must be
//     non-decreasing (metadata "M" events are exempt — they carry no ts).
//     --expect-fault-track additionally requires the dedicated faults
//     process plus at least one fault event (what a chaos export promises).
//
// Exit code 0 on success, 1 on validation/analysis failure, 2 on usage.
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

namespace {

// ------------------------------------------------------------ tiny JSON
// Self-contained recursive-descent parser (the repo deliberately has no
// third-party deps). Good enough for machine-generated JSON: objects,
// arrays, strings with standard escapes, numbers, true/false/null.
struct JValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JValue> array;
  std::vector<std::pair<std::string, JValue>> object;  // insertion order

  [[nodiscard]] const JValue* find(const std::string& key) const {
    if (kind != Kind::kObject) return nullptr;
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : s_(text) {}

  bool parse(JValue& out) {
    skip_ws();
    if (!parse_value(out)) return false;
    skip_ws();
    return pos_ == s_.size();  // no trailing garbage
  }

  [[nodiscard]] std::string error() const {
    char buf[96];
    std::snprintf(buf, sizeof buf, "%s at byte %zu", err_.c_str(), pos_);
    return buf;
  }

 private:
  void skip_ws() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_]))) ++pos_;
  }
  bool fail(const char* what) {
    if (err_.empty()) err_ = what;
    return false;
  }
  bool literal(const char* word) {
    const std::size_t n = std::strlen(word);
    if (s_.compare(pos_, n, word) != 0) return fail("bad literal");
    pos_ += n;
    return true;
  }

  bool parse_value(JValue& out) {
    if (pos_ >= s_.size()) return fail("unexpected end");
    switch (s_[pos_]) {
      case '{': return parse_object(out);
      case '[': return parse_array(out);
      case '"': out.kind = JValue::Kind::kString; return parse_string(out.string);
      case 't': out.kind = JValue::Kind::kBool; out.boolean = true; return literal("true");
      case 'f': out.kind = JValue::Kind::kBool; out.boolean = false; return literal("false");
      case 'n': out.kind = JValue::Kind::kNull; return literal("null");
      default: return parse_number(out);
    }
  }

  bool parse_object(JValue& out) {
    out.kind = JValue::Kind::kObject;
    ++pos_;  // '{'
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == '}') { ++pos_; return true; }
    while (true) {
      skip_ws();
      std::string key;
      if (pos_ >= s_.size() || s_[pos_] != '"' || !parse_string(key)) {
        return fail("expected object key");
      }
      skip_ws();
      if (pos_ >= s_.size() || s_[pos_] != ':') return fail("expected ':'");
      ++pos_;
      skip_ws();
      JValue value;
      if (!parse_value(value)) return false;
      out.object.emplace_back(std::move(key), std::move(value));
      skip_ws();
      if (pos_ >= s_.size()) return fail("unterminated object");
      if (s_[pos_] == ',') { ++pos_; continue; }
      if (s_[pos_] == '}') { ++pos_; return true; }
      return fail("expected ',' or '}'");
    }
  }

  bool parse_array(JValue& out) {
    out.kind = JValue::Kind::kArray;
    ++pos_;  // '['
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == ']') { ++pos_; return true; }
    while (true) {
      skip_ws();
      JValue value;
      if (!parse_value(value)) return false;
      out.array.push_back(std::move(value));
      skip_ws();
      if (pos_ >= s_.size()) return fail("unterminated array");
      if (s_[pos_] == ',') { ++pos_; continue; }
      if (s_[pos_] == ']') { ++pos_; return true; }
      return fail("expected ',' or ']'");
    }
  }

  bool parse_string(std::string& out) {
    ++pos_;  // opening quote
    while (pos_ < s_.size()) {
      const char c = s_[pos_++];
      if (c == '"') return true;
      if (c != '\\') { out += c; continue; }
      if (pos_ >= s_.size()) break;
      const char e = s_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u':
          if (pos_ + 4 > s_.size()) return fail("bad \\u escape");
          pos_ += 4;  // validated length only; analyzer never needs the glyph
          out += '?';
          break;
        default: return fail("bad escape");
      }
    }
    return fail("unterminated string");
  }

  bool parse_number(JValue& out) {
    const char* start = s_.c_str() + pos_;
    char* end = nullptr;
    out.number = std::strtod(start, &end);
    if (end == start) return fail("bad number");
    out.kind = JValue::Kind::kNumber;
    pos_ += static_cast<std::size_t>(end - start);
    return true;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
  std::string err_;
};

bool read_file(const char* path, std::string& out) {
  std::FILE* f = std::fopen(path, "rb");
  if (f == nullptr) return false;
  char buf[1 << 16];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) out.append(buf, n);
  std::fclose(f);
  return true;
}

// ------------------------------------------------------- trace validation
int validate_trace(const char* path, bool expect_fault_track) {
  std::string text;
  if (!read_file(path, text)) {
    std::fprintf(stderr, "gryphon_report: cannot read %s\n", path);
    return 1;
  }
  JValue root;
  JsonParser parser(text);
  if (!parser.parse(root)) {
    std::fprintf(stderr, "gryphon_report: %s is not valid JSON: %s\n", path,
                 parser.error().c_str());
    return 1;
  }
  const JValue* events = root.find("traceEvents");
  if (events == nullptr || events->kind != JValue::Kind::kArray) {
    std::fprintf(stderr, "gryphon_report: %s has no traceEvents array\n", path);
    return 1;
  }

  double last_ts = -1.0;
  std::size_t timed_events = 0;
  bool fault_track_named = false;
  std::size_t fault_events = 0;
  for (std::size_t i = 0; i < events->array.size(); ++i) {
    const JValue& e = events->array[i];
    if (e.kind != JValue::Kind::kObject) {
      std::fprintf(stderr, "gryphon_report: event %zu is not an object\n", i);
      return 1;
    }
    const JValue* ph = e.find("ph");
    if (ph == nullptr || ph->kind != JValue::Kind::kString) {
      std::fprintf(stderr, "gryphon_report: event %zu has no ph\n", i);
      return 1;
    }
    if (ph->string == "M") {
      const JValue* name = e.find("name");
      const JValue* args = e.find("args");
      const JValue* aname = args != nullptr ? args->find("name") : nullptr;
      if (name != nullptr && name->string == "process_name" && aname != nullptr &&
          aname->string == "faults") {
        fault_track_named = true;
      }
      continue;  // metadata carries no timeline position
    }
    const JValue* ts = e.find("ts");
    if (ts == nullptr || ts->kind != JValue::Kind::kNumber) {
      std::fprintf(stderr, "gryphon_report: event %zu has no numeric ts\n", i);
      return 1;
    }
    if (ts->number < last_ts) {
      std::fprintf(stderr,
                   "gryphon_report: event %zu goes backwards in time "
                   "(ts %.0f after %.0f)\n",
                   i, ts->number, last_ts);
      return 1;
    }
    last_ts = ts->number;
    ++timed_events;
    const JValue* cat = e.find("cat");
    if (cat != nullptr && cat->string == "fault") ++fault_events;
  }

  if (expect_fault_track && (!fault_track_named || fault_events == 0)) {
    std::fprintf(stderr,
                 "gryphon_report: %s lacks a faults track (named: %s, fault "
                 "events: %zu)\n",
                 path, fault_track_named ? "yes" : "no", fault_events);
    return 1;
  }
  std::printf("%s: OK — %zu timed events, monotonic timestamps, %zu fault events\n",
              path, timed_events, fault_events);
  return 0;
}

// --------------------------------------------------------- scrape report
int report_scrape(const char* path) {
  std::string text;
  if (!read_file(path, text)) {
    std::fprintf(stderr, "gryphon_report: cannot read %s\n", path);
    return 1;
  }
  std::vector<JValue> snapshots;
  std::size_t line_no = 0;
  std::size_t start = 0;
  while (start < text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    ++line_no;
    if (end > start) {
      const std::string line = text.substr(start, end - start);
      JValue v;
      JsonParser parser(line);
      if (!parser.parse(v)) {
        std::fprintf(stderr, "gryphon_report: %s line %zu: %s\n", path, line_no,
                     parser.error().c_str());
        return 1;
      }
      snapshots.push_back(std::move(v));
    }
    start = end + 1;
  }
  if (snapshots.empty()) {
    std::fprintf(stderr, "gryphon_report: %s has no snapshots\n", path);
    return 1;
  }

  const JValue& first = snapshots.front();
  const JValue& last = snapshots.back();
  const JValue* t0 = first.find("t");
  const JValue* t1 = last.find("t");
  if (t0 == nullptr || t1 == nullptr) {
    std::fprintf(stderr, "gryphon_report: snapshots lack a \"t\" field\n");
    return 1;
  }
  const double elapsed = t1->number - t0->number;
  std::printf("scrape: %zu snapshots over %.1f sim-seconds (t=%.1f .. %.1f)\n\n",
              snapshots.size(), elapsed, t0->number, t1->number);

  // Per-counter totals and rates, node by node.
  const JValue* nodes1 = last.find("nodes");
  const JValue* nodes0 = first.find("nodes");
  if (nodes1 != nullptr && nodes1->kind == JValue::Kind::kObject) {
    std::printf("%-8s %-34s %14s %12s\n", "node", "counter", "total", "rate/s");
    for (const auto& [node_name, node1] : nodes1->object) {
      const JValue* counters1 = node1.find("counters");
      if (counters1 == nullptr) continue;
      const JValue* node0 =
          nodes0 != nullptr ? nodes0->find(node_name) : nullptr;
      const JValue* counters0 = node0 != nullptr ? node0->find("counters") : nullptr;
      for (const auto& [name, v1] : counters1->object) {
        if (v1.number == 0) continue;
        const JValue* v0 =
            counters0 != nullptr ? counters0->find(name) : nullptr;
        const double delta = v1.number - (v0 != nullptr ? v0->number : 0.0);
        if (elapsed > 0) {
          std::printf("%-8s %-34s %14.0f %12.1f\n", node_name.c_str(), name.c_str(),
                      v1.number, delta / elapsed);
        } else {
          std::printf("%-8s %-34s %14.0f %12s\n", node_name.c_str(), name.c_str(),
                      v1.number, "-");
        }
      }
    }
    std::printf("\n");
  }

  // Latency percentile table from the final snapshot.
  const JValue* latency = last.find("latency");
  const JValue* stages = latency != nullptr ? latency->find("stages") : nullptr;
  if (stages != nullptr && stages->kind == JValue::Kind::kObject) {
    std::printf("%-22s %10s %10s %10s %10s %10s\n", "latency stage (ms)", "count",
                "p50", "p90", "p99", "p999");
    for (const auto& [stage_name, s] : stages->object) {
      const JValue* count = s.find("count");
      if (count == nullptr || count->number == 0) continue;
      const auto p = [&s](const char* key) {
        const JValue* v = s.find(key);
        return v != nullptr ? v->number : 0.0;
      };
      std::printf("%-22s %10.0f %10.2f %10.2f %10.2f %10.2f\n", stage_name.c_str(),
                  count->number, p("p50"), p("p90"), p("p99"), p("p999"));
    }
    const JValue* orphans = latency->find("orphan_transitions");
    const JValue* dropped = latency->find("dropped_keys");
    std::printf("\nbookkeeping: orphan transitions %.0f, dropped keys %.0f\n",
                orphans != nullptr ? orphans->number : 0.0,
                dropped != nullptr ? dropped->number : 0.0);
  } else {
    std::printf("(no latency block in final snapshot)\n");
  }
  return 0;
}

void usage() {
  std::fputs(
      "gryphon_report — analyze observability artifacts\n"
      "  gryphon_report SCRAPE.ndjson\n"
      "      per-counter totals/rates + latency percentile table from a\n"
      "      gryphon_sim --metrics-interval scrape\n"
      "  gryphon_report --validate-trace trace.json [--expect-fault-track]\n"
      "      JSON well-formedness + monotonic-timestamp check for a\n"
      "      --trace-out export\n",
      stderr);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 3 && std::strcmp(argv[1], "--validate-trace") == 0) {
    bool expect_faults = false;
    for (int i = 3; i < argc; ++i) {
      if (std::strcmp(argv[i], "--expect-fault-track") == 0) {
        expect_faults = true;
      } else {
        usage();
        return 2;
      }
    }
    return validate_trace(argv[2], expect_faults);
  }
  if (argc == 2 && argv[1][0] != '-') {
    return report_scrape(argv[1]);
  }
  usage();
  return 2;
}
