// gryphon_broker — stand-alone process hosting one broker or client role
// over real TCP sockets (src/net runtime).
//
// A topology is a set of these processes wired parent-to-child:
//
//   gryphon_broker --role phb --name phb --listen 7700 --children 2 \
//       --wal-dir /tmp/demo/phb &
//   gryphon_broker --role imb --name imb0 --listen 7701 --children 2 \
//       --parent 127.0.0.1:7700 --wal-dir /tmp/demo/imb0 &
//   gryphon_broker --role shb --name shb0 --listen 7710 \
//       --parent 127.0.0.1:7701 --wal-dir /tmp/demo/shb0 &
//   gryphon_broker --role pub --name pub1 --client-id 1 \
//       --parent 127.0.0.1:7700 --events 2000 &
//   gryphon_broker --role sub --name sub1 --client-id 1 \
//       --parent 127.0.0.1:7710 --expect 8000 --result-file sub1.json
//
// Brokers run until SIGTERM (graceful: write the result file and exit 0) or
// SIGKILL (the crash the WAL recovery path exists for — restart with the
// same --wal-dir and --listen to recover). Client processes exit on their
// own once the configured workload completes. A subscriber that observes a
// non-monotonic delivery aborts the process — every run doubles as an
// exactly-once oracle.
//
// See tools/run_broker_demo.sh for the scripted 7-process demo.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "net/broker_process.hpp"
#include "net/event_loop.hpp"
#include "util/logging.hpp"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void on_signal(int /*sig*/) { g_stop = 1; }

struct Flags {
  gryphon::net::ProcessOptions process;
  std::string port_file;
  std::string started_file;
  std::string result_file;
  double run_for_sec = 0;  // 0 = unbounded (clients stop on completion)
  std::string log_level = "warn";
};

void usage() {
  std::cerr <<
      "usage: gryphon_broker --role {phb|imb|shb|pub|sub} --name NAME [options]\n"
      "  --listen PORT        broker listen port (0 = ephemeral)\n"
      "  --port-file PATH     write the bound port here after listen\n"
      "  --started-file PATH  write '1' once the role has started\n"
      "  --parent HOST:PORT   upstream broker (everyone except the PHB)\n"
      "  --children N         broker children to await before starting\n"
      "  --wal-dir DIR        FileBackend WAL directory (restart recovers)\n"
      "  --pubends N          pubend count, must match across the topology (4)\n"
      "  --client-id N        publisher/subscriber id (1)\n"
      "  --events N           pub: publish N events then exit when acked\n"
      "  --interval-usec N    pub: inter-publish gap (2000)\n"
      "  --burst N            pub: events per publish tick (1)\n"
      "  --payload N          pub: event payload bytes (64)\n"
      "  --groups N           pub: event group modulus (4)\n"
      "  --predicate EXPR     sub: selector ('g >= 0' matches all)\n"
      "  --expect N           sub: exit once N events consumed\n"
      "  --run-for-sec S      hard runtime bound (safety net for scripts)\n"
      "  --result-file PATH   write a one-line JSON summary on exit\n"
      "  --disk-sync-usec N   disk sync latency (4000)\n"
      "  --log-level L        off|debug|info|warn|error (warn)\n";
}

bool parse_flags(int argc, char** argv, Flags& flags) {
  auto& p = flags.process;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](std::string& out) {
      if (i + 1 >= argc) return false;
      out = argv[++i];
      return true;
    };
    std::string v;
    if (arg == "--role" && value(v)) {
      p.role = v;
    } else if (arg == "--name" && value(v)) {
      p.name = v;
    } else if (arg == "--listen" && value(v)) {
      p.listen_port = static_cast<std::uint16_t>(std::atoi(v.c_str()));
    } else if (arg == "--port-file" && value(v)) {
      flags.port_file = v;
    } else if (arg == "--started-file" && value(v)) {
      flags.started_file = v;
    } else if (arg == "--parent" && value(v)) {
      const auto colon = v.rfind(':');
      if (colon == std::string::npos) return false;
      p.parent_host = v.substr(0, colon);
      p.parent_port = static_cast<std::uint16_t>(std::atoi(v.c_str() + colon + 1));
    } else if (arg == "--children" && value(v)) {
      p.expected_children = std::atoi(v.c_str());
    } else if (arg == "--wal-dir" && value(v)) {
      p.storage.file_dir = v;
    } else if (arg == "--pubends" && value(v)) {
      p.num_pubends = std::atoi(v.c_str());
    } else if (arg == "--client-id" && value(v)) {
      p.client_id = static_cast<std::uint32_t>(std::atoi(v.c_str()));
    } else if (arg == "--events" && value(v)) {
      p.publish_count = static_cast<std::uint64_t>(std::atoll(v.c_str()));
    } else if (arg == "--interval-usec" && value(v)) {
      p.publish_interval = std::atoll(v.c_str());
    } else if (arg == "--burst" && value(v)) {
      p.publish_burst = std::atoi(v.c_str());
    } else if (arg == "--payload" && value(v)) {
      p.payload_bytes = static_cast<std::size_t>(std::atoll(v.c_str()));
    } else if (arg == "--groups" && value(v)) {
      p.groups = std::atoi(v.c_str());
    } else if (arg == "--predicate" && value(v)) {
      p.predicate = v;
    } else if (arg == "--expect" && value(v)) {
      p.expect_events = static_cast<std::uint64_t>(std::atoll(v.c_str()));
    } else if (arg == "--run-for-sec" && value(v)) {
      flags.run_for_sec = std::atof(v.c_str());
    } else if (arg == "--result-file" && value(v)) {
      flags.result_file = v;
    } else if (arg == "--disk-sync-usec" && value(v)) {
      p.disk.sync_latency = std::atoll(v.c_str());
    } else if (arg == "--log-level" && value(v)) {
      flags.log_level = v;
    } else {
      std::cerr << "unknown or incomplete flag: " << arg << "\n";
      return false;
    }
  }
  return !p.role.empty() && !p.name.empty();
}

gryphon::LogLevel parse_level(const std::string& name) {
  using gryphon::LogLevel;
  if (name == "debug") return LogLevel::kDebug;
  if (name == "info") return LogLevel::kInfo;
  if (name == "error") return LogLevel::kError;
  if (name == "off") return LogLevel::kOff;
  return LogLevel::kWarn;
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path + ".tmp", std::ios::trunc);
  out << content << "\n";
  out.close();
  std::rename((path + ".tmp").c_str(), path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  if (!parse_flags(argc, argv, flags)) {
    usage();
    return 2;
  }
  gryphon::Logger::instance().set_level(parse_level(flags.log_level));
  std::signal(SIGTERM, on_signal);
  std::signal(SIGINT, on_signal);
  std::signal(SIGPIPE, SIG_IGN);

  gryphon::net::EventLoop loop;
  gryphon::net::BrokerProcess process(loop, flags.process);
  if (!flags.port_file.empty() && process.port() != 0) {
    write_file(flags.port_file, std::to_string(process.port()));
  }

  // Started beacon for scripts: a durable subscription covers ticks from its
  // establishment onward, so a launcher must not start publishing until the
  // subscribers are up — this file is the wait target.
  std::function<void()> announce_started = [&] {
    if (process.started()) {
      write_file(flags.started_file, "1");
      return;
    }
    loop.schedule_after(gryphon::msec(10), [&] { announce_started(); });
  };
  if (!flags.started_file.empty()) announce_started();

  // Signal poll: SIGTERM interrupts poll(2); this timer turns the flag into
  // a loop exit so the process can write its result file and leave cleanly.
  std::function<void()> watch = [&] {
    if (g_stop != 0) {
      loop.stop();
      return;
    }
    loop.schedule_after(gryphon::msec(50), [&] { watch(); });
  };
  watch();

  if (flags.run_for_sec > 0) {
    loop.run_for(static_cast<gryphon::SimDuration>(flags.run_for_sec * 1e6));
  } else {
    loop.run();
  }

  const std::string result = process.result_json();
  if (!flags.result_file.empty()) write_file(flags.result_file, result);
  std::cout << result << "\n";
  return 0;
}
