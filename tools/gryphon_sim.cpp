// gryphon_sim — scenario driver CLI.
//
// Builds a broker deployment from command-line flags, runs a workload with
// optional churn and broker-failure injection, verifies the exactly-once
// contract, and prints a run report. Useful for exploring configurations
// beyond the canned benchmarks.
//
//   gryphon_sim --shbs 2 --subscribers 40 --rate 800 --duration 60 \
//               --churn-period 30 --churn-down 2 \
//               --crash-shb-at 20 --crash-down 5 --max-retain 10
//
// Run with --help for the full flag list.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>

#include "harness/sampler.hpp"
#include "harness/system.hpp"
#include "harness/workload.hpp"

namespace {

using namespace gryphon;

struct Flags {
  int pubends = 4;
  int intermediates = 0;
  int shbs = 1;
  int subscribers = 20;  // total, spread round-robin over SHBs
  int groups = 4;
  double rate = 800.0;
  double duration_s = 30.0;
  double churn_period_s = 0.0;  // 0 = no churn
  double churn_down_s = 2.0;
  double crash_shb_at_s = 0.0;  // 0 = no crash
  double crash_down_s = 5.0;
  double max_retain_s = 0.0;  // 0 = no early release
  int imprecise_batch = 1;
  int trace_sample = 64;
  std::string metrics_json;  // empty = no snapshot file
  double metrics_interval_s = 0.0;  // 0 = one end-of-run snapshot
  std::string trace_out;  // empty = no Chrome trace export
  std::string wire = "struct";
  int wire_verify = 0;  // 0 = SystemConfig default (sampled 1-in-64)
  double segment_kib = 0.0;     // 0 = StorageOptions default
  double db_compact_kib = 0.0;  // 0 = StorageOptions default
  std::string wal_dir;          // empty = in-memory WAL segments
  bool quiet = false;
};

void usage() {
  std::puts(
      "gryphon_sim — durable pub/sub scenario driver\n"
      "  --pubends N          publishing endpoints at the PHB     [4]\n"
      "  --intermediates N    chain length between PHB and SHBs   [0]\n"
      "  --shbs N             subscriber hosting brokers          [1]\n"
      "  --subscribers N      durable subscribers (round-robin)   [20]\n"
      "  --groups N           subscriber matches rate/groups      [4]\n"
      "  --rate EPS           aggregate publish rate              [800]\n"
      "  --duration S         measured run length (sim seconds)   [30]\n"
      "  --churn-period S     each subscriber bounces every S     [off]\n"
      "  --churn-down S       ...staying down for S               [2]\n"
      "  --crash-shb-at S     crash SHB 0 at this time            [off]\n"
      "  --crash-down S       ...restarting after S               [5]\n"
      "  --max-retain S       early-release retention window      [off]\n"
      "  --imprecise-batch N  PFS precision (1 = precise)         [1]\n"
      "  --trace-sample N     trace 1-in-N ticks (power of two)   [64]\n"
      "  --metrics-json PATH  write per-node registry snapshots\n"
      "  --metrics-interval S scrape every S sim-seconds: --metrics-json\n"
      "                       becomes NDJSON (one snapshot per line; feed\n"
      "                       it to gryphon_report)\n"
      "  --trace-out PATH     write a Chrome trace-event (Perfetto) JSON of\n"
      "                       all sampled tick milestones + fault windows\n"
      "  --wire MODE          link transport: struct | codec       [struct]\n"
      "  --wire-verify N      re-encode-check 1-in-N decodes; N=1 or\n"
      "                       'always' checks every frame           [64]\n"
      "  --segment-bytes KIB  WAL segment roll size (KiB)          [256]\n"
      "  --db-compact-bytes KIB  DB WAL compaction threshold (KiB) [1024]\n"
      "  --wal-dir PATH       file-backed WAL segments under PATH  [in-memory]\n"
      "  --quiet              suppress the per-second rate table\n");
}

bool parse_flags(int argc, char** argv, Flags& flags) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next_value = [&](double& out) {
      if (i + 1 >= argc) return false;
      out = std::atof(argv[++i]);
      return true;
    };
    double v = 0;
    if (arg == "--help" || arg == "-h") return false;
    // The observability flags also accept the --flag=value spelling.
    if (arg.rfind("--trace-out=", 0) == 0) {
      flags.trace_out = arg.substr(12);
    } else if (arg.rfind("--metrics-json=", 0) == 0) {
      flags.metrics_json = arg.substr(15);
    } else if (arg.rfind("--metrics-interval=", 0) == 0) {
      flags.metrics_interval_s = std::atof(arg.c_str() + 19);
    } else if (arg == "--quiet") {
      flags.quiet = true;
    } else if (arg == "--pubends" && next_value(v)) {
      flags.pubends = static_cast<int>(v);
    } else if (arg == "--intermediates" && next_value(v)) {
      flags.intermediates = static_cast<int>(v);
    } else if (arg == "--shbs" && next_value(v)) {
      flags.shbs = static_cast<int>(v);
    } else if (arg == "--subscribers" && next_value(v)) {
      flags.subscribers = static_cast<int>(v);
    } else if (arg == "--groups" && next_value(v)) {
      flags.groups = static_cast<int>(v);
    } else if (arg == "--rate" && next_value(v)) {
      flags.rate = v;
    } else if (arg == "--duration" && next_value(v)) {
      flags.duration_s = v;
    } else if (arg == "--churn-period" && next_value(v)) {
      flags.churn_period_s = v;
    } else if (arg == "--churn-down" && next_value(v)) {
      flags.churn_down_s = v;
    } else if (arg == "--crash-shb-at" && next_value(v)) {
      flags.crash_shb_at_s = v;
    } else if (arg == "--crash-down" && next_value(v)) {
      flags.crash_down_s = v;
    } else if (arg == "--max-retain" && next_value(v)) {
      flags.max_retain_s = v;
    } else if (arg == "--imprecise-batch" && next_value(v)) {
      flags.imprecise_batch = static_cast<int>(v);
    } else if (arg == "--trace-sample" && next_value(v)) {
      flags.trace_sample = static_cast<int>(v);
    } else if (arg == "--metrics-json" && i + 1 < argc) {
      flags.metrics_json = argv[++i];
    } else if (arg == "--metrics-interval" && next_value(v)) {
      flags.metrics_interval_s = v;
    } else if (arg == "--trace-out" && i + 1 < argc) {
      flags.trace_out = argv[++i];
    } else if (arg == "--wire" && i + 1 < argc) {
      flags.wire = argv[++i];
      if (flags.wire != "struct" && flags.wire != "codec") {
        std::fprintf(stderr, "--wire must be struct or codec, got %s\n",
                     flags.wire.c_str());
        return false;
      }
    } else if (arg == "--wire-verify" && i + 1 < argc) {
      const std::string n = argv[++i];
      flags.wire_verify = n == "always" ? 1 : std::atoi(n.c_str());
      if (flags.wire_verify < 1) {
        std::fprintf(stderr, "--wire-verify must be 'always' or N >= 1, got %s\n",
                     n.c_str());
        return false;
      }
    } else if (arg == "--segment-bytes" && next_value(v)) {
      flags.segment_kib = v;
    } else if (arg == "--db-compact-bytes" && next_value(v)) {
      flags.db_compact_kib = v;
    } else if (arg == "--wal-dir" && i + 1 < argc) {
      flags.wal_dir = argv[++i];
    } else {
      std::fprintf(stderr, "unknown or incomplete flag: %s\n", arg.c_str());
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  if (!parse_flags(argc, argv, flags)) {
    usage();
    return 2;
  }

  harness::SystemConfig config;
  config.num_pubends = flags.pubends;
  config.num_intermediates = flags.intermediates;
  config.num_shbs = flags.shbs;
  config.broker.costs.pfs_imprecise_batch =
      static_cast<std::size_t>(flags.imprecise_batch);
  if (flags.max_retain_s > 0) {
    config.policy = std::make_shared<core::MaxRetainPolicy>(
        static_cast<Tick>(flags.max_retain_s * 1000));
  }
  if (flags.trace_sample >= 1) {
    config.trace_sample_every = static_cast<std::uint32_t>(flags.trace_sample);
  }
  if (flags.wire == "codec") config.wire = harness::WireMode::kCodec;
  if (flags.wire_verify > 0) {
    config.wire_verify_every = static_cast<std::uint32_t>(flags.wire_verify);
  }
  if (flags.segment_kib > 0) {
    config.storage.segment_bytes = static_cast<std::size_t>(flags.segment_kib * 1024);
  }
  if (flags.db_compact_kib > 0) {
    config.storage.db_compact_bytes =
        static_cast<std::size_t>(flags.db_compact_kib * 1024);
  }
  config.storage.file_dir = flags.wal_dir;
  config.trace_export = !flags.trace_out.empty();
  if (flags.metrics_interval_s > 0 && flags.metrics_json.empty()) {
    std::fprintf(stderr, "--metrics-interval needs --metrics-json PATH for the scrape\n");
    return 2;
  }
  harness::System system(config);

  // Periodic NDJSON scrape: one deterministic snapshot line per interval,
  // plus a final line at exit (written in the report section below).
  std::FILE* scrape_file = nullptr;
  if (flags.metrics_interval_s > 0) {
    scrape_file = std::fopen(flags.metrics_json.c_str(), "w");
    if (scrape_file == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", flags.metrics_json.c_str());
      return 1;
    }
    const auto interval = static_cast<SimDuration>(flags.metrics_interval_s * 1e6);
    // Self-rescheduling tick; static so the reschedule lambda needs no
    // capture of a local that would go out of scope (main outlives the run,
    // but the function object must be addressable from inside itself).
    static std::function<void()> scrape_tick;
    scrape_tick = [&system, scrape_file, interval] {
      const std::string line = system.metrics_scrape_line();
      std::fwrite(line.data(), 1, line.size(), scrape_file);
      system.simulator().schedule_after(interval, [] { scrape_tick(); });
    };
    system.simulator().schedule_after(interval, [] { scrape_tick(); });
  }

  harness::PaperWorkloadConfig wl;
  wl.input_rate_eps = flags.rate;
  wl.groups = flags.groups;
  harness::start_paper_publishers(system, wl);

  std::vector<core::DurableSubscriber*> subs;
  for (int i = 0; i < flags.subscribers; ++i) {
    core::DurableSubscriber::Options options;
    options.id = SubscriberId{static_cast<std::uint32_t>(i + 1)};
    options.predicate = harness::group_predicate(i % flags.groups);
    auto& sub = system.add_subscriber(options, i % flags.shbs, i % 5);
    sub.connect();
    subs.push_back(&sub);
  }

  Summary catchup_durations;
  for (int i = 0; i < flags.shbs; ++i) {
    system.on_shb_ready(i, [&](core::SubscriberHostingBroker& shb) {
      shb.on_catchup_complete = [&](SubscriberId, SimTime from, SimTime to) {
        catchup_durations.add(to_seconds(to - from));
      };
    });
  }

  system.run_for(sec(3));  // connect + warm up
  std::unique_ptr<harness::ChurnDriver> churn;
  if (flags.churn_period_s > 0) {
    churn = std::make_unique<harness::ChurnDriver>(
        system, subs, static_cast<SimDuration>(flags.churn_period_s * 1e6),
        static_cast<SimDuration>(flags.churn_down_s * 1e6));
  }
  if (flags.crash_shb_at_s > 0) {
    const SimTime crash_at =
        system.simulator().now() + static_cast<SimDuration>(flags.crash_shb_at_s * 1e6);
    const SimTime back_at =
        crash_at + static_cast<SimDuration>(flags.crash_down_s * 1e6);
    system.simulator().schedule_at(crash_at, [&system] { system.crash_shb(0); });
    system.simulator().schedule_at(back_at, [&system] { system.restart_shb(0); });
    system.note_fault_span(crash_at, back_at, "crash shb0");
  }

  const SimTime measure_from = system.simulator().now();
  const auto delivered_before = system.oracle().delivered_count();
  system.run_for(static_cast<SimDuration>(flags.duration_s * 1e6));
  const SimTime measure_to = system.simulator().now();

  if (churn) churn->stop();
  system.run_for(sec(15));  // quiesce before verification
  system.verify_exactly_once();

  // ------------------------------------------------------------- report
  const auto delivered =
      system.oracle().delivered_count() - delivered_before;
  std::printf("== gryphon_sim report ==\n");
  std::printf(
      "topology: %d pubend(s), %d intermediate(s), %d SHB(s); %d subscribers; "
      "wire=%s\n",
      flags.pubends, flags.intermediates, flags.shbs, flags.subscribers,
      flags.wire.c_str());
  std::printf("published: %llu events at %.0f ev/s aggregate input\n",
              (unsigned long long)system.oracle().published_count(), flags.rate);
  std::printf("delivered: %llu in the %.0fs window (%.0f ev/s aggregate)\n",
              (unsigned long long)delivered, flags.duration_s,
              static_cast<double>(delivered) / flags.duration_s);
  std::printf("catchup deliveries: %llu; gap notifications: %llu\n",
              (unsigned long long)system.oracle().catchup_delivered_count(),
              (unsigned long long)system.oracle().gap_count());
  if (catchup_durations.count() > 0) {
    std::printf("catchup durations: n=%llu mean=%.2fs max=%.2fs\n",
                (unsigned long long)catchup_durations.count(),
                catchup_durations.mean(), catchup_durations.max());
  }
  std::printf("end-to-end latency (steady deliveries): mean %.1f ms\n",
              system.oracle().e2e_latency().mean());
  {
    const Histogram& e2e = system.latency().stage(LatencyStage::kEndToEnd);
    const Histogram& wait = system.latency().stage(LatencyStage::kCatchupWait);
    std::printf("sampled per-stage latency (1-in-%d ticks): e2e n=%llu "
                "p50=%.2fms p99=%.2fms",
                flags.trace_sample, (unsigned long long)e2e.count(),
                e2e.percentile(50.0), e2e.percentile(99.0));
    if (wait.count() > 0) {
      std::printf("; catchup wait n=%llu p99=%.2fms",
                  (unsigned long long)wait.count(), wait.percentile(99.0));
    }
    std::printf("\n");
  }
  std::printf("PHB idle %.0f%%", 100 * system.phb_cpu().idle_fraction(
                                           measure_from, measure_to));
  for (int i = 0; i < flags.shbs; ++i) {
    std::printf("  SHB%d idle %.0f%%", i,
                100 * system.shb_cpu(i).idle_fraction(measure_from, measure_to));
  }
  std::printf("\n");

  if (!flags.quiet) {
    std::printf("\nper-second aggregate delivery rate:\n");
    for (const auto& w : system.oracle().delivery_rate().windows()) {
      if (w.start < measure_from || w.start >= measure_to) continue;
      std::printf("  t=%-5.0f %8.0f ev/s\n", to_seconds(w.start), w.per_second);
    }
  }
  if (scrape_file != nullptr) {
    // Final scrape line so the file always covers the full run.
    const std::string line = system.metrics_scrape_line();
    std::fwrite(line.data(), 1, line.size(), scrape_file);
    std::fclose(scrape_file);
    std::printf("wrote NDJSON metrics scrape to %s (interval %.1fs)\n",
                flags.metrics_json.c_str(), flags.metrics_interval_s);
  } else if (!flags.metrics_json.empty()) {
    if (system.write_metrics_json(flags.metrics_json)) {
      std::printf("wrote per-node metrics snapshot to %s\n",
                  flags.metrics_json.c_str());
    } else {
      std::fprintf(stderr, "cannot write %s\n", flags.metrics_json.c_str());
      return 1;
    }
  }
  if (!flags.trace_out.empty()) {
    if (system.write_trace_json(flags.trace_out)) {
      std::printf("wrote Chrome trace (%zu records, %zu faults) to %s\n",
                  system.trace_exporter()->record_count(),
                  system.trace_exporter()->fault_count(), flags.trace_out.c_str());
    } else {
      std::fprintf(stderr, "cannot write %s\n", flags.trace_out.c_str());
      return 1;
    }
  }
  std::printf("\nexactly-once contract verified for all %d subscribers.\n",
              flags.subscribers);
  return 0;
}
