#!/usr/bin/env bash
# Substrate wall-clock regression gate: builds the Release preset, runs
# bench_wallclock, and compares simulated-events-per-wall-second against the
# post_pr numbers committed in BENCH_substrate.json. Exits non-zero when any
# workload regresses by more than the tolerance (default 15%).
#
# Usage: tools/run_bench.sh [tolerance] [reps]
#
# The fresh numbers land in BENCH_substrate.json.new next to the committed
# file; after an intentional perf change, re-record with
#   ./build-release/bench/bench_wallclock --out BENCH_substrate.json
# and update the variant tags (pre_pr_baseline / post_pr) by hand.
#
# Each workload entry in the JSON also carries a nested "metrics" block of
# broker-internal registry counters (summed over nodes). bench_wallclock
# itself fails on protocol-counter regressions (e.g. shb.gaps_sent > 0 on
# the steady fig4 workload), so a counter drifting into pathological
# territory fails this gate even when throughput looks fine. It also fails
# outright if the codec-mode steady workload runs slower than 2.0x its
# struct-mode twin or allocates more than 10 heap blocks per simulated
# event — the codec-tax ceiling, enforced independently of the committed
# baseline numbers.
set -euo pipefail
cd "$(dirname "$0")/.."

TOLERANCE="${1:-0.15}"
REPS="${2:-3}"

cmake --preset release
cmake --build --preset release -j "$(nproc)" --target bench_wallclock bench_scale_1m

./build-release/bench/bench_wallclock \
  --out BENCH_substrate.json.new \
  --check BENCH_substrate.json \
  --tolerance "${TOLERANCE}" \
  --reps "${REPS}"

# Million-subscriber scale gates (DESIGN.md §4.8): the smoke tier self-asserts
# covering compression, sublinear match cost and shard parity, exiting
# non-zero on any gate failure.
./build-release/bench/bench_scale_1m --smoke --out BENCH_scale_1m.json.smoke
rm -f BENCH_scale_1m.json.smoke

# The committed full-scale artifact must carry passing gates — catches a
# re-recorded BENCH_scale_1m.json that silently shipped a failing gate.
for gate in gate_covering_compression gate_sublinear_match gate_shard_parity; do
  if ! grep -qE "\"${gate}\": 1" BENCH_scale_1m.json; then
    echo "ERROR: committed BENCH_scale_1m.json missing passing ${gate}" >&2
    exit 1
  fi
done

# The metrics block must have been recorded for the steady workload —
# guards against the registry silently going dark.
if ! grep -qF '"metrics": {' BENCH_substrate.json.new; then
  echo "ERROR: BENCH_substrate.json.new has no registry metrics block" >&2
  exit 1
fi

# Same for the per-stage latency percentiles: a fresh run with no "latency"
# block means the LatencyRecorder pipeline went dark, and the committed
# churn-storm artifact must keep carrying its catchup-wait histogram.
if ! grep -qF '"latency": {' BENCH_substrate.json.new; then
  echo "ERROR: BENCH_substrate.json.new has no latency percentile block" >&2
  exit 1
fi
if ! grep -qF '"latency": {' BENCH_churn_storm.json; then
  echo "ERROR: committed BENCH_churn_storm.json has no latency block" >&2
  exit 1
fi
