#!/usr/bin/env bash
# Crash-point recovery fuzz gate: builds the Release preset and runs
# bench_recovery_fuzz — seeded broker crashes whose WAL tails are torn at
# seeded byte offsets, each followed by a recovery-from-bytes and an
# exactly-once verification against the DeliveryOracle.
#
# Usage: tools/run_recovery_fuzz.sh [num_seeds] [first_seed] [--wal-dir DIR]
#
# Defaults to 100 seeds x 2 crash points = 200 seeded crash points, plus a
# codec-mode leg (max(3, seeds/4) seeds) that reruns the same crash schedule
# over the byte-codec transport with seeded frame-corruption windows armed
# around every crash — the crash × frame-fault cross product. The run fails
# on any oracle violation, when no crash point produced a torn-tail
# truncation (the fuzzer must keep reaching mid-frame tears —
# wal.recovery_truncated_bytes > 0 in the written snapshot is the evidence),
# and when the codec leg never rejected a corrupted frame.
# Pass --wal-dir to run every WAL on real files (FileBackend) instead of the
# default in-memory backend. Rerun one violating seed exactly with
#   bench_recovery_fuzz 1 <seed>
set -euo pipefail
cd "$(dirname "$0")/.."

NUM_SEEDS="${1:-100}"
FIRST_SEED="${2:-1}"
shift $(( $# > 2 ? 2 : $# )) || true
EXTRA_ARGS=("$@")

cmake --preset release
cmake --build --preset release -j "$(nproc)" --target bench_recovery_fuzz

./build-release/bench/bench_recovery_fuzz "${NUM_SEEDS}" "${FIRST_SEED}" \
  --out BENCH_recovery_fuzz.json "${EXTRA_ARGS[@]+"${EXTRA_ARGS[@]}"}"

echo "ok: ${NUM_SEEDS} seeds survived; snapshot in BENCH_recovery_fuzz.json"
