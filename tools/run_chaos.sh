#!/usr/bin/env bash
# Chaos soak under ASan+UBSan: builds the sanitizer preset and runs N seeded
# fault schedules plus the chaos test suite. Any invariant violation prints
# the offending seed and its decoded fault timeline; rerun with
#   bench_chaos_soak 1 <seed>
# (or ChaosConfig{.seed = <seed>} in a test) to replay it exactly.
#
# Usage: tools/run_chaos.sh [num_seeds] [first_seed] [horizon_s]
set -euo pipefail
cd "$(dirname "$0")/.."

NUM_SEEDS="${1:-10}"
FIRST_SEED="${2:-1}"
HORIZON_S="${3:-10}"

cmake --preset asan-ubsan
cmake --build --preset asan-ubsan -j "$(nproc)" --target test_chaos bench_chaos_soak bench_wallclock bench_recovery_fuzz bench_churn_storm bench_scale_1m gryphon_report

echo "== chaos test suite (asan-ubsan) =="
./build-asan/tests/test_chaos

echo "== substrate smoke (asan-ubsan): bench_wallclock 1 seed =="
./build-asan/bench/bench_wallclock --smoke

echo "== recovery fuzz smoke (asan-ubsan): seeded crash points =="
./build-asan/bench/bench_recovery_fuzz --smoke

echo "== churn storm smoke (asan-ubsan): reconnect herd under admission control =="
./build-asan/bench/bench_churn_storm --smoke

echo "== scale smoke (asan-ubsan): covering index + sharded PFS gates =="
SCALE_SMOKE_JSON="$(mktemp)"
./build-asan/bench/bench_scale_1m --smoke --out "${SCALE_SMOKE_JSON}"
rm -f "${SCALE_SMOKE_JSON}"

echo "== flight recorder negative test: injected violation must dump =="
# A fabricated exactly-once violation must (a) fail the run and (b) produce
# the merged flight-recorder dump with a milestone checklist focused on the
# offending (pubend, tick). A "passing" injected run means the recorder is
# broken, so this asserts the failure.
INJECT_LOG="$(mktemp)"
if ./build-asan/bench/bench_chaos_soak 1 "${FIRST_SEED}" 5 --inject-violation \
    >"${INJECT_LOG}" 2>&1; then
  echo "ERROR: injected violation did not fail the run" >&2
  cat "${INJECT_LOG}" >&2
  rm -f "${INJECT_LOG}"
  exit 1
fi
for marker in "=== flight recorder: merged tick trace" \
              "--- milestone checklist for pubend" \
              "violation focus:"; do
  if ! grep -qF -e "${marker}" "${INJECT_LOG}"; then
    echo "ERROR: flight-recorder dump missing marker: ${marker}" >&2
    cat "${INJECT_LOG}" >&2
    rm -f "${INJECT_LOG}"
    exit 1
  fi
done
rm -f "${INJECT_LOG}"
echo "ok: injected violation produced the focused flight-recorder dump"

echo "== chaos trace export: fault windows on a Perfetto-loadable track =="
# One seeded schedule exported as a Chrome trace-event JSON, then validated:
# well-formed JSON, monotonically non-decreasing timestamps, and at least one
# chaos fault window on the dedicated "faults" track.
CHAOS_TRACE="$(mktemp --suffix=.trace.json)"
./build-asan/bench/bench_chaos_soak 1 "${FIRST_SEED}" 5 \
    --trace-out="${CHAOS_TRACE}"
./build-asan/tools/gryphon_report --validate-trace "${CHAOS_TRACE}" \
    --expect-fault-track
rm -f "${CHAOS_TRACE}"

echo "== chaos soak: ${NUM_SEEDS} seeds from ${FIRST_SEED}, ${HORIZON_S}s horizon =="
./build-asan/bench/bench_chaos_soak "${NUM_SEEDS}" "${FIRST_SEED}" "${HORIZON_S}"

echo "== codec chaos soak: byte transport + seeded frame corruption =="
# Same fault schedules, but every link runs through the wire codec (encode on
# send, CRC-checked decode on delivery) and frame-corruption windows flip or
# truncate bytes in flight. The receiving transport must reject every mangled
# frame as a drop — under ASan this also shakes out any decoder that reads
# past a truncated buffer. --wire-verify=always disables the 1-in-N sampling
# of the canonical re-encode check so every accepted decode is round-trip
# verified while the sanitizers watch.
./build-asan/bench/bench_chaos_soak "${NUM_SEEDS}" "${FIRST_SEED}" "${HORIZON_S}" \
    --wire=codec --frame-faults --wire-verify=always
