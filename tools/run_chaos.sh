#!/usr/bin/env bash
# Chaos soak under ASan+UBSan: builds the sanitizer preset and runs N seeded
# fault schedules plus the chaos test suite. Any invariant violation prints
# the offending seed and its decoded fault timeline; rerun with
#   bench_chaos_soak 1 <seed>
# (or ChaosConfig{.seed = <seed>} in a test) to replay it exactly.
#
# Usage: tools/run_chaos.sh [num_seeds] [first_seed] [horizon_s]
set -euo pipefail
cd "$(dirname "$0")/.."

NUM_SEEDS="${1:-10}"
FIRST_SEED="${2:-1}"
HORIZON_S="${3:-10}"

cmake --preset asan-ubsan
cmake --build --preset asan-ubsan -j "$(nproc)" --target test_chaos bench_chaos_soak bench_wallclock

echo "== chaos test suite (asan-ubsan) =="
./build-asan/tests/test_chaos

echo "== substrate smoke (asan-ubsan): bench_wallclock 1 seed =="
./build-asan/bench/bench_wallclock --smoke

echo "== chaos soak: ${NUM_SEEDS} seeds from ${FIRST_SEED}, ${HORIZON_S}s horizon =="
./build-asan/bench/bench_chaos_soak "${NUM_SEEDS}" "${FIRST_SEED}" "${HORIZON_S}"
