#!/usr/bin/env bash
# Multi-process broker demo over real TCP sockets.
#
# Launches the full stand-alone runtime topology as 7 broker processes —
#   1 PHB  <-  2 intermediates  <-  4 SHBs (two per intermediate)
# — plus one publisher and four durable subscribers (one per SHB), every
# link a real loopback socket, every broker on FileBackend WALs. Mid-run it
# SIGKILLs one SHB and restarts it on the same port over its surviving WAL
# directory; the restarted process must adopt the segments (recover(), not a
# cold start) and its subscriber must still end with exactly-once delivery.
#
# The oracle applied at the end:
#   - every process exits 0,
#   - publisher: published == acked == EVENTS,
#   - every subscriber: received == EVENTS, gaps == 0, decode_rejects == 0,
#   - the restarted SHB reports "adopted":true.
#
# Usage: tools/run_broker_demo.sh [events]   (default 3000)
set -uo pipefail
cd "$(dirname "$0")/.."

BIN="${GRYPHON_BROKER_BIN:-build/tools/gryphon_broker}"
EVENTS="${1:-3000}"
PUBENDS=4
RUN_CAP=180   # hard wall-clock cap handed to every process (seconds)

if [ ! -x "$BIN" ]; then
  echo "broker binary not found at $BIN (build it or set GRYPHON_BROKER_BIN)" >&2
  exit 2
fi

DIR="$(mktemp -d "${TMPDIR:-/tmp}/gryphon_demo.XXXXXX")"
PIDS=()
cleanup() {
  kill "${PIDS[@]}" >/dev/null 2>&1 || true
  wait >/dev/null 2>&1 || true
  rm -rf "$DIR"
}
trap cleanup EXIT

fail() { echo "FAIL: $*" >&2; exit 1; }

# Blocks until the process writes its port file (brokers write it only once
# the listener is live), then echoes the port.
wait_port() {
  local file=$1
  for _ in $(seq 150); do
    if [ -s "$file" ]; then cat "$file"; return 0; fi
    sleep 0.1
  done
  return 1
}

# field <json-file> <key> — pulls a bare integer/bool out of the one-line
# result JSON without needing jq.
field() { sed -n "s/.*\"$2\":\([a-z0-9]*\).*/\1/p" "$1"; }

broker() {  # broker <name> <role> <extra args...>
  local name=$1 role=$2; shift 2
  mkdir -p "$DIR/$name"
  "$BIN" --role "$role" --name "$name" --listen 0 --port-file "$DIR/$name.port" \
         --wal-dir "$DIR/$name" --pubends $PUBENDS --run-for-sec $RUN_CAP \
         --result-file "$DIR/$name.json" "$@" &
  PIDS+=($!)
}

echo "== demo dir $DIR, $EVENTS events over $PUBENDS pubends =="

broker phb phb --children 2
PHB_PORT=$(wait_port "$DIR/phb.port") || fail "phb never opened its port"

broker imb0 imb --children 2 --parent "127.0.0.1:$PHB_PORT"
broker imb1 imb --children 2 --parent "127.0.0.1:$PHB_PORT"
IMB0_PORT=$(wait_port "$DIR/imb0.port") || fail "imb0 never opened its port"
IMB1_PORT=$(wait_port "$DIR/imb1.port") || fail "imb1 never opened its port"

SHB_PORT=()
SHB_PID=()
for s in 0 1 2 3; do
  parent=$IMB0_PORT; [ $s -ge 2 ] && parent=$IMB1_PORT
  broker "shb$s" shb --parent "127.0.0.1:$parent"
  SHB_PID[$s]=${PIDS[-1]}
  SHB_PORT[$s]=$(wait_port "$DIR/shb$s.port") || fail "shb$s never opened its port"
done
echo "== 7 brokers up (phb:$PHB_PORT imb:$IMB0_PORT,$IMB1_PORT shb:${SHB_PORT[*]}) =="

SUB_PID=()
for s in 0 1 2 3; do
  "$BIN" --role sub --name "sub$s" --client-id $((s + 1)) \
         --parent "127.0.0.1:${SHB_PORT[$s]}" --pubends $PUBENDS \
         --expect "$EVENTS" --run-for-sec $RUN_CAP \
         --started-file "$DIR/sub$s.started" \
         --result-file "$DIR/sub$s.json" &
  SUB_PID[$s]=$!
  PIDS+=($!)
done
# Durable subscriptions cover ticks from their establishment onward: wait
# until every subscriber is up, then give the subscribe round trips a beat
# to settle before the stream starts.
for s in 0 1 2 3; do
  wait_port "$DIR/sub$s.started" >/dev/null || fail "sub$s never started"
done
sleep 0.5
"$BIN" --role pub --name pub0 --client-id 1 --parent "127.0.0.1:$PHB_PORT" \
       --pubends $PUBENDS --events "$EVENTS" --interval-usec 1000 \
       --run-for-sec $RUN_CAP --result-file "$DIR/pub.json" &
PUB_PID=$!
PIDS+=($!)

# Let the stream run, then murder shb1 mid-flight and bring it back on the
# same port over the WAL segments the dead process left behind.
sleep 2
echo "== SIGKILL shb1 (pid ${SHB_PID[1]}) mid-stream =="
kill -9 "${SHB_PID[1]}" 2>/dev/null || true
sleep 1
echo "== restarting shb1 on port ${SHB_PORT[1]} over its WAL =="
mkdir -p "$DIR/shb1"
"$BIN" --role shb --name shb1 --listen "${SHB_PORT[1]}" \
       --parent "127.0.0.1:$IMB0_PORT" --wal-dir "$DIR/shb1" \
       --pubends $PUBENDS --run-for-sec $RUN_CAP \
       --result-file "$DIR/shb1.json" &
SHB_PID[1]=$!
PIDS+=($!)

wait "$PUB_PID" || fail "publisher exited nonzero"
for s in 0 1 2 3; do
  wait "${SUB_PID[$s]}" || fail "sub$s exited nonzero"
done
echo "== clients done; stopping brokers =="

# Graceful stop so every broker writes its result file (SIGTERM -> result).
for s in 0 1 2 3; do kill "${SHB_PID[$s]}" 2>/dev/null || true; done
for _ in $(seq 100); do
  [ -s "$DIR/shb1.json" ] && break
  sleep 0.1
done

echo "== results =="
cat "$DIR/pub.json" "$DIR"/sub?.json "$DIR/shb1.json" 2>/dev/null

[ "$(field "$DIR/pub.json" published)" = "$EVENTS" ] || fail "publisher published != $EVENTS"
[ "$(field "$DIR/pub.json" acked)" = "$EVENTS" ]     || fail "publisher acked != $EVENTS"
for s in 0 1 2 3; do
  f="$DIR/sub$s.json"
  [ "$(field "$f" received)" = "$EVENTS" ] || fail "sub$s received != $EVENTS"
  [ "$(field "$f" gaps)" = "0" ]           || fail "sub$s saw delivery gaps"
  [ "$(field "$f" decode_rejects)" = "0" ] || fail "sub$s saw decode rejects"
done
[ "$(field "$DIR/shb1.json" adopted)" = "true" ] || fail "restarted shb1 did not adopt its WAL"

echo "PASS: $EVENTS events exactly-once across 4 subscribers, shb1 WAL-recovered mid-stream"
