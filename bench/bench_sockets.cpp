// Real-socket vs simulated throughput on the same workload.
//
// The stand-alone runtime (src/net) hosts the exact broker state machines
// the simulator runs, so the same delivery workload can be timed both ways:
//
//   * real    — one OS process, four threads, each thread an EventLoop +
//               BrokerProcess (PHB <- SHB brokers, one publisher, one
//               durable subscriber), every hop a real loopback TCP socket
//               with codec frames, FileBackend WALs under a temp dir.
//   * sim     — the harness System on the same PHB <- SHB topology with
//               paper publishers and one match-everything subscriber,
//               driven as fast as the simulator can execute.
//
// Both legs run until N events are delivered exactly-once; the report is
// wall-clock events/second for each, plus the ratio. The real leg also
// asserts the demo oracle (received == published, zero gaps, zero decode /
// reassembly rejects) — a bench run that loses an event is a failure, not a
// data point.
//
//   bench_sockets [--events N] [--out FILE] [--smoke]
#include "bench/bench_common.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <functional>
#include <future>
#include <string>
#include <thread>

#include <unistd.h>

#include "net/broker_process.hpp"
#include "net/event_loop.hpp"
#include "util/logging.hpp"

namespace gryphon::bench {
namespace {

namespace fs = std::filesystem;

double wall_seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

struct RealLeg {
  bool completed = false;
  double wall_s = 0;
  std::uint64_t received = 0;
  std::uint64_t gaps = 0;
  std::uint64_t decode_rejects = 0;
  std::uint64_t reassembly_rejects = 0;
};

/// Runs a role to completion on its own thread: construct, publish the bound
/// port, then spin the loop until the stop flag (brokers) or the client
/// workload finishes. `on_exit` samples the process before teardown.
void run_role(net::ProcessOptions opt, std::atomic<bool>& stop,
              std::promise<std::uint16_t>* port_out, SimDuration run_cap,
              std::function<void(net::BrokerProcess&)> on_exit,
              std::promise<void>* started_out = nullptr) {
  net::EventLoop loop;
  net::BrokerProcess proc(loop, std::move(opt));
  if (port_out != nullptr) port_out->set_value(proc.port());
  std::function<void()> poll_started = [&] {
    if (proc.started()) {
      started_out->set_value();
      return;
    }
    loop.schedule_after(msec(5), [&] { poll_started(); });
  };
  if (started_out != nullptr) poll_started();
  std::function<void()> watch = [&] {
    if (stop.load(std::memory_order_relaxed)) {
      loop.stop();
      return;
    }
    loop.schedule_after(msec(10), [&] { watch(); });
  };
  watch();
  loop.run_for(run_cap);
  if (on_exit) on_exit(proc);
}

RealLeg run_real(std::uint64_t events, std::size_t payload_bytes) {
  const fs::path dir =
      fs::temp_directory_path() /
      ("gryphon_bench_sockets." + std::to_string(::getpid()));
  fs::remove_all(dir);
  fs::create_directories(dir / "phb");
  fs::create_directories(dir / "shb");

  std::atomic<bool> stop{false};
  std::promise<std::uint16_t> phb_port_p, shb_port_p;
  auto phb_port_f = phb_port_p.get_future();
  auto shb_port_f = shb_port_p.get_future();
  const SimDuration cap = sec(120);

  std::thread phb_thread([&] {
    net::ProcessOptions o;
    o.name = "phb";
    o.role = "phb";
    o.expected_children = 1;
    o.storage.file_dir = (dir / "phb").string();
    run_role(std::move(o), stop, &phb_port_p, cap, nullptr);
  });
  const std::uint16_t phb_port = phb_port_f.get();

  std::thread shb_thread([&] {
    net::ProcessOptions o;
    o.name = "shb0";
    o.role = "shb";
    o.parent_port = phb_port;
    o.storage.file_dir = (dir / "shb").string();
    run_role(std::move(o), stop, &shb_port_p, cap, nullptr);
  });
  const std::uint16_t shb_port = shb_port_f.get();

  // Clock starts as the clients launch: it covers the hello/READY handshake
  // (a few round trips) plus the full publish -> persist -> deliver stream.
  RealLeg leg;
  bool pub_done = false;
  std::promise<void> sub_started_p;
  auto sub_started_f = sub_started_p.get_future();
  std::thread sub_thread([&] {
    net::ProcessOptions o;
    o.name = "sub1";
    o.role = "sub";
    o.parent_port = shb_port;
    o.expect_events = events;
    run_role(
        std::move(o), stop, nullptr, cap,
        [&](net::BrokerProcess& p) {
          leg.completed = p.done();
          leg.received = p.subscriber()->events_received();
          leg.gaps = p.subscriber()->gaps_received();
          leg.decode_rejects = p.network().decode_rejects();
          leg.reassembly_rejects = p.reassembly_rejects();
        },
        &sub_started_p);
  });
  // A durable subscription covers ticks from its establishment onward, so
  // the first publish must land after the subscribe round trip — wait for
  // the subscriber to start, plus a margin for the subscribe to settle.
  sub_started_f.wait_for(std::chrono::seconds(30));
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  // Clock covers the measured stream only: publish -> persist -> deliver.
  const auto t0 = std::chrono::steady_clock::now();
  std::thread pub_thread([&] {
    net::ProcessOptions o;
    o.name = "pub1";
    o.role = "pub";
    o.parent_port = phb_port;
    o.publish_count = events;
    o.publish_interval = msec(1);
    o.publish_burst = 16;
    o.payload_bytes = payload_bytes;
    run_role(std::move(o), stop, nullptr, cap,
             [&](net::BrokerProcess& p) { pub_done = p.done(); });
  });

  pub_thread.join();
  sub_thread.join();
  leg.wall_s = wall_seconds_since(t0);
  leg.completed = leg.completed && pub_done;
  stop.store(true, std::memory_order_relaxed);
  phb_thread.join();
  shb_thread.join();
  fs::remove_all(dir);
  return leg;
}

struct SimLeg {
  double wall_s = 0;
  double sim_s = 0;
  std::uint64_t delivered = 0;
};

SimLeg run_sim(std::uint64_t events, std::size_t payload_bytes) {
  harness::SystemConfig config;
  config.num_shbs = 1;
  config.num_intermediates = 0;
  harness::System system(config);
  harness::PaperWorkloadConfig wl;
  wl.input_rate_eps = 8000;
  wl.groups = 1;  // the single subscriber matches every event
  wl.payload_bytes = payload_bytes;
  harness::start_paper_publishers(system, wl);
  harness::add_group_subscribers(system, 0, 1, 1, 1);

  SimLeg leg;
  const SimTime sim0 = system.simulator().now();
  const auto t0 = std::chrono::steady_clock::now();
  while (system.oracle().delivered_count() < events) {
    system.run_for(msec(100));
  }
  leg.wall_s = wall_seconds_since(t0);
  leg.sim_s = to_seconds(system.simulator().now() - sim0);
  leg.delivered = system.oracle().delivered_count();
  return leg;
}

int run(std::uint64_t events, std::size_t payload_bytes, const std::string& out) {
  print_header("bench_sockets: real loopback TCP vs simulation, " +
               std::to_string(events) + " events");

  const RealLeg real = run_real(events, payload_bytes);
  std::printf("real: %s in %.3fs (%.0f ev/s), gaps=%llu rejects=%llu/%llu\n",
              real.completed ? "completed" : "INCOMPLETE", real.wall_s,
              static_cast<double>(real.received) / real.wall_s,
              static_cast<unsigned long long>(real.gaps),
              static_cast<unsigned long long>(real.decode_rejects),
              static_cast<unsigned long long>(real.reassembly_rejects));
  if (!real.completed || real.received != events || real.gaps != 0 ||
      real.decode_rejects != 0 || real.reassembly_rejects != 0) {
    std::fprintf(stderr, "FAIL: the socket leg broke the exactly-once oracle\n");
    return 1;
  }

  const SimLeg sim = run_sim(events, payload_bytes);
  std::printf("sim:  %llu delivered in %.3fs wall / %.3fs simulated (%.0f ev/wall-s)\n",
              static_cast<unsigned long long>(sim.delivered), sim.wall_s,
              sim.sim_s, static_cast<double>(sim.delivered) / sim.wall_s);

  const double real_eps = static_cast<double>(real.received) / real.wall_s;
  const double sim_eps = static_cast<double>(sim.delivered) / sim.wall_s;
  std::printf("real/sim wall throughput: %.2fx\n", real_eps / sim_eps);

  char buf[1536];
  std::snprintf(
      buf, sizeof buf,
      "{\n"
      "  \"schema\": \"gryphon-sockets-bench-v1\",\n"
      "  \"workloads\": [\n"
      "    {\n"
      "      \"name\": \"sockets_vs_sim\",\n"
      "      \"variant\": \"run\",\n"
      "      \"events\": %llu,\n"
      "      \"payload_bytes\": %zu,\n"
      "      \"real\": {\n"
      "        \"topology\": \"phb<-shb brokers + pub + sub, 4 threads, loopback TCP, FileBackend WALs\",\n"
      "        \"wall_s\": %.3f,\n"
      "        \"events_per_wall_s\": %.0f,\n"
      "        \"gaps\": %llu,\n"
      "        \"decode_rejects\": %llu,\n"
      "        \"reassembly_rejects\": %llu\n"
      "      },\n"
      "      \"sim\": {\n"
      "        \"topology\": \"phb<-shb System, paper publishers, 1 match-all subscriber\",\n"
      "        \"wall_s\": %.3f,\n"
      "        \"sim_s\": %.3f,\n"
      "        \"events_per_wall_s\": %.0f\n"
      "      },\n"
      "      \"real_over_sim_wall_throughput\": %.3f\n"
      "    }\n"
      "  ]\n"
      "}",
      static_cast<unsigned long long>(events), payload_bytes, real.wall_s,
      real_eps, static_cast<unsigned long long>(real.gaps),
      static_cast<unsigned long long>(real.decode_rejects),
      static_cast<unsigned long long>(real.reassembly_rejects), sim.wall_s,
      sim.sim_s, sim_eps, real_eps / sim_eps);
  if (!out.empty()) {
    std::ofstream f(out, std::ios::trunc);
    f << buf << "\n";
    std::printf("wrote %s\n", out.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace gryphon::bench

int main(int argc, char** argv) {
  std::uint64_t events = 20000;
  std::size_t payload = 64;
  std::string out;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--events") == 0 && i + 1 < argc) {
      events = static_cast<std::uint64_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out = argv[++i];
    } else if (std::strcmp(argv[i], "--payload") == 0 && i + 1 < argc) {
      payload = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      events = 2000;
      out.clear();
    } else {
      std::fprintf(stderr,
                   "usage: bench_sockets [--events N] [--payload B] [--out FILE] "
                   "[--smoke]\n");
      return 2;
    }
  }
  gryphon::Logger::instance().set_level(gryphon::LogLevel::kWarn);
  return gryphon::bench::run(events, payload, out);
}
