// Figure 6 — Rate of advance of latestDelivered(p) and released(p) with
// subscriber disconnections (paper §5.1.1). latestDelivered advances at
// ~1000 tick-ms per second with periodic dips to ~700 (JVM GC pauses);
// released(p) varies widely because any disconnected subscriber pins it.
#include "bench/bench_common.hpp"

#include "harness/sampler.hpp"

int main() {
  using namespace gryphon;
  using namespace gryphon::bench;

  auto config = paper_config();
  config.num_shbs = 1;
  // The paper's SHB ran in a JVM: periodic collector pauses.
  config.shb_gc_period = sec(25);
  config.shb_gc_pause = msec(300);
  harness::System system(config);
  harness::start_paper_publishers(system, paper_workload());
  auto subs = harness::add_group_subscribers(system, 0, 88, 4, 1, /*machines=*/5);

  const PubendId p1 = system.pubends()[0];
  harness::Sampler sampler(system.simulator(), msec(100));
  // latestDelivered is plotted straight from the broker's registry gauge
  // (set by the SHB whenever the value advances) rather than a bespoke
  // getter — the observability surface *is* the figure's data source.
  auto& ld_series = sampler.add_gauge(
      "latestDelivered_1",
      system.shb_node().metrics.gauge("shb.p" + std::to_string(p1.value()) +
                                      ".latest_delivered"));
  auto& rel_series = sampler.add("released_1", [&] {
    return static_cast<double>(system.shb().released(p1));
  });

  system.run_for(sec(10));
  harness::ChurnDriver churn(system, subs, sec(300), sec(5));
  system.run_for(sec(250));

  print_header(
      "Figure 6: rate of advance (tick-ms per second, 1s windows)\n"
      "paper: latestDelivered ~1000 with GC dips to ~700; released varies\n"
      "from ~500 to ~4500 as disconnected subscribers pin and release it");
  const auto ld_rates = ld_series.rate_of_change(sec(1));
  const auto rel_rates = rel_series.rate_of_change(sec(1));
  print_row({"t(s)", "latestDelivered rate", "released rate"}, 24);
  Summary ld_summary;
  Summary rel_summary;
  for (std::size_t i = 10; i < ld_rates.size() && i < rel_rates.size(); ++i) {
    print_row({fmt(to_seconds(ld_rates[i].time), 0), fmt(ld_rates[i].value, 0),
               fmt(rel_rates[i].value, 0)},
              24);
    ld_summary.add(ld_rates[i].value);
    rel_summary.add(rel_rates[i].value);
  }
  std::printf(
      "\nlatestDelivered rate: mean=%.0f min=%.0f max=%.0f (paper ~1000, dips ~700)\n"
      "released rate:        mean=%.0f min=%.0f max=%.0f (paper: high variance)\n",
      ld_summary.mean(), ld_summary.min(), ld_summary.max(), rel_summary.mean(),
      rel_summary.min(), rel_summary.max());

  churn.stop();
  sampler.stop();  // measurement over: cancel the periodic polls
  system.run_for(sec(15));
  system.verify_exactly_once();
  return 0;
}
