// Crash-point recovery fuzzer for the byte-level persistence engine.
//
// Each seed builds a small deployment (2 pubends -> PHB -> intermediate ->
// 1 SHB, 4 durable subscribers), warms it up, then injects a sequence of
// seeded broker
// crashes. Before every crash the target node's LogVolume and Database WALs
// are seeded with crash entropy, so recovery finds a surviving byte prefix
// torn somewhere inside the in-flight group-commit window — usually
// mid-frame, exercising the scanner's torn-tail truncation rule — instead
// of always exactly at the durable watermark. After every crash the broker
// restarts, rebuilds its state from the surviving WAL bytes alone, and the
// run must settle back to quiescence with the DeliveryOracle's exactly-once
// contract intact.
//
//   bench_recovery_fuzz [num_seeds] [first_seed] [--smoke] [--out FILE]
//                       [--wal-dir DIR]
//
// Defaults: 100 seeds x 2 crashes per seed = 200+ seeded crash points spread
// across PHB, intermediate and SHB WALs (the intermediate's knowledge/DB
// recovery path crashes just like the edges do). About a third of the
// crashes compose a second kill 1-40 ms after the restart, so the crash
// point lands inside the recovery window itself. A quarter of the seed
// count then re-runs in codec mode — byte frames on every link, canonical
// re-encode verified on every decode — with seeded frame corruption armed
// on the broker chain across each crash window: the crash x frame-fault
// cross product. The run fails (exit 1) if any seed violates the oracle,
// and — unless --smoke — if not a single crash point produced a torn-tail
// truncation, not a single re-crash landed inside a recovery window, or the
// codec leg rejected no frames (any of which would mean the fuzzer stopped
// reaching the interesting crash points, not that the engine got better).
// --smoke runs 3 struct + 1 codec seeds with none of those requirements:
// the sanitizer entry point for tools/run_chaos.sh.
// --wal-dir runs every node's WAL on real files (FileBackend) under
// DIR/seed<N>/ so the byte-level recovery path is exercised through the
// filesystem; --out writes a bench-JSON snapshot whose metrics block carries
// the accumulated wal.* totals (wal.recovery_truncated_bytes > 0 is the
// committed evidence that mid-frame tears were reached).
#include "bench/bench_common.hpp"

#include <cstdlib>
#include <exception>
#include <filesystem>

#include "storage/wal.hpp"
#include "util/rng.hpp"

namespace gryphon::bench {
namespace {

constexpr int kCrashesPerSeed = 2;

struct SeedResult {
  std::uint64_t seed = 0;
  int crashes = 0;
  int recovery_crashes = 0;  // re-crashes landed milliseconds into recovery
  std::uint64_t recoveries = 0;
  std::uint64_t truncated_bytes = 0;
  std::uint64_t torn_tail_recoveries = 0;
  std::uint64_t corrupted_frames = 0;  // codec leg: mangles armed + fired
  std::uint64_t decode_rejects = 0;    // codec leg: mangles caught + dropped
  std::uint64_t published = 0;
  std::uint64_t delivered = 0;
  bool violated = false;
};

/// Prints each WAL's last recorded corruption (the torn/corrupt frame the
/// recovery scan truncated at) — the post-mortem a violating seed needs.
void dump_corruptions(harness::System& system) {
  for (core::NodeResources* node : system.nodes()) {
    const auto dump_wal = [&](const char* which, const storage::Wal& wal) {
      if (!wal.last_corruption().valid) return;
      std::fprintf(stderr, "  %s.%s: %s\n", node->name.c_str(), which,
                   storage::Wal::format_corruption(wal.last_corruption()).c_str());
    };
    dump_wal("log", node->log_volume.wal());
    dump_wal("db", node->database.wal());
  }
}

/// `codec` runs the whole seed over the byte-level wire (CodecTransport,
/// canonical re-encode verified on every frame) and arms seeded frame
/// corruption on the broker chain across each crash window — the crash x
/// frame-fault cross product: recovery must hold when torn WAL tails and
/// mangled in-flight frames compose.
SeedResult run_seed(std::uint64_t seed, const std::string& wal_dir, bool codec) {
  Rng rng(seed);
  harness::SystemConfig sc;
  sc.num_pubends = 2;
  sc.num_intermediates = 1;  // crash points also land mid-chain
  sc.num_shbs = 1;
  if (codec) {
    sc.wire = harness::WireMode::kCodec;
    sc.wire_verify_every = 1;
  }
  // Small segments + an aggressive DB compaction budget so a few seconds of
  // traffic already rolls, GCs and snapshot-compacts segments — recovery
  // then scans a multi-segment WAL, not one young segment.
  sc.storage.segment_bytes = 8 * 1024;
  sc.storage.db_compact_bytes = 64 * 1024;
  // A wide PHB barrier keeps a group commit in flight most of the time, so
  // seeded crash points usually land inside a dirty window (mid-frame).
  sc.phb_disk.sync_latency = msec(20);
  sc.shb_disk.sync_latency = msec(4);
  if (!wal_dir.empty()) {
    const std::string dir = wal_dir + "/seed" + std::to_string(seed);
    std::filesystem::remove_all(dir);
    sc.storage.file_dir = dir;
  }

  harness::System system(sc);
  harness::PaperWorkloadConfig wl;
  wl.input_rate_eps = 400;
  harness::start_paper_publishers(system, wl);
  harness::add_group_subscribers(system, 0, /*count=*/4, /*groups=*/4,
                                 /*first_id=*/1);
  system.run_for(sec(2));

  // Codec leg: mangle a seeded handful of frames on every broker-chain
  // direction across the upcoming crash window, so decode rejects, torn WAL
  // tails and recovery handshakes all land in the same few hundred ms.
  const auto arm_chain_corruption = [&] {
    const sim::EndpointId phb = system.phb_endpoint();
    const sim::EndpointId mid = system.intermediate_endpoint(0);
    const sim::EndpointId shb = system.shb_endpoint(0);
    for (const auto& [a, b] : {std::pair{phb, mid}, std::pair{mid, shb}}) {
      system.network().corrupt_frames(a, b, 2 + static_cast<int>(rng.next_below(6)),
                                      rng.next_u64());
      system.network().corrupt_frames(b, a, 2 + static_cast<int>(rng.next_below(6)),
                                      rng.next_u64());
    }
  };

  SeedResult r;
  r.seed = seed;
  try {
    for (int c = 0; c < kCrashesPerSeed; ++c) {
      // Drift a seed-dependent slice so the crash instant (and with it the
      // barrier phase the entropy tears into) varies across seeds.
      system.run_for(msec(50 + static_cast<SimDuration>(rng.next_below(400))));
      // 0 = PHB, 1 = intermediate, 2 = SHB — every hop in the chain is a
      // legal crash target.
      const std::uint64_t target = rng.next_below(3);
      if (codec) arm_chain_corruption();
      const std::uint64_t entropy = rng.next_u64();
      core::NodeResources& node = target == 0   ? system.phb_node()
                                  : target == 1 ? system.intermediate_node(0)
                                                : system.shb_node(0);
      node.log_volume.set_crash_entropy(entropy);
      node.database.set_crash_entropy(entropy >> 7);
      switch (target) {
        case 0: system.crash_phb(); break;
        case 1: system.crash_intermediate(0); break;
        default: system.crash_shb(0); break;
      }
      ++r.crashes;
      system.run_for(msec(300 + static_cast<SimDuration>(rng.next_below(1200))));
      switch (target) {
        case 0: system.restart_phb(); break;
        case 1: system.restart_intermediate(0); break;
        default: system.restart_shb(0); break;
      }
      if (rng.next_below(3) == 0) {
        // Crash-during-recovery composition: kill the freshly restarted
        // broker again milliseconds into recovery, with fresh tear entropy.
        // The WAL written *by recovery itself* (resume handshakes, replayed
        // state) must be as crash-consistent as steady-state appends.
        system.run_for(msec(1 + static_cast<SimDuration>(rng.next_below(39))));
        const std::uint64_t entropy2 = rng.next_u64();
        node.log_volume.set_crash_entropy(entropy2);
        node.database.set_crash_entropy(entropy2 >> 7);
        switch (target) {
          case 0: system.crash_phb(); break;
          case 1: system.crash_intermediate(0); break;
          default: system.crash_shb(0); break;
        }
        ++r.crashes;
        ++r.recovery_crashes;
        system.run_for(msec(300 + static_cast<SimDuration>(rng.next_below(1200))));
        switch (target) {
          case 0: system.restart_phb(); break;
          case 1: system.restart_intermediate(0); break;
          default: system.restart_shb(0); break;
        }
      }
      system.run_for(sec(2));
    }
    system.run_for(sec(4));
    system.verify_quiescent();
  } catch (const std::exception& e) {
    r.violated = true;
    std::fprintf(stderr, "\nseed %llu violated the oracle: %s\n",
                 static_cast<unsigned long long>(seed), e.what());
    std::fprintf(stderr, "last truncation per WAL:\n");
    dump_corruptions(system);
    system.dump_flight_recorder(stderr);
  }

  for (core::NodeResources* node : system.nodes()) {
    r.recoveries += node->metrics.counter("wal.recoveries")->get();
    r.truncated_bytes += node->metrics.counter("wal.recovery_truncated_bytes")->get();
    r.torn_tail_recoveries += node->metrics.counter("wal.torn_tail_recoveries")->get();
  }
  r.corrupted_frames = system.network().corrupted_frames();
  r.decode_rejects = system.network().decode_rejects();
  r.published = system.oracle().published_count();
  r.delivered = system.oracle().delivered_count();
  return r;
}

}  // namespace
}  // namespace gryphon::bench

int main(int argc, char** argv) {
  using namespace gryphon;
  using namespace gryphon::bench;

  std::string out_path;
  std::string wal_dir;
  bool smoke = false;
  std::vector<std::string> pos;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      GRYPHON_CHECK_MSG(i + 1 < argc, "missing value for " << arg);
      return argv[++i];
    };
    if (arg == "--out") out_path = next();
    else if (arg == "--wal-dir") wal_dir = next();
    else if (arg == "--smoke") smoke = true;
    else pos.push_back(arg);
  }
  int num_seeds = !pos.empty() ? std::atoi(pos[0].c_str()) : 100;
  const std::uint64_t first_seed =
      pos.size() > 1 ? std::strtoull(pos[1].c_str(), nullptr, 10) : 1;
  if (smoke && pos.empty()) num_seeds = 3;

  // The codec leg re-runs a slice of the seed range over the byte-level
  // wire with frame corruption armed across every crash window (the
  // crash x frame-fault cross product).
  const int codec_seeds = smoke ? 1 : std::max(3, num_seeds / 4);

  print_header("Recovery fuzz: " + std::to_string(num_seeds) + " struct + " +
               std::to_string(codec_seeds) + " codec seeds x " +
               std::to_string(kCrashesPerSeed) + " seeded crash points" +
               (wal_dir.empty() ? " (in-memory WAL)" : " (file WAL: " + wal_dir + ")"));
  print_row({"seed", "wire", "crashes", "rec_crash", "recoveries", "torn_tails",
             "trunc_bytes", "rejects", "published", "delivered", "verdict"}, 11);

  int violations = 0;
  int crash_points = 0;
  int recovery_crashes = 0;
  std::uint64_t recoveries = 0;
  std::uint64_t truncated_bytes = 0;
  std::uint64_t torn_tails = 0;
  std::uint64_t corrupted_frames = 0;
  std::uint64_t decode_rejects = 0;
  const auto run_leg = [&](int leg_seeds, bool codec) {
    for (int i = 0; i < leg_seeds; ++i) {
      const std::uint64_t seed = first_seed + static_cast<std::uint64_t>(i);
      const SeedResult r = run_seed(seed, wal_dir, codec);
      crash_points += r.crashes;
      recovery_crashes += r.recovery_crashes;
      recoveries += r.recoveries;
      truncated_bytes += r.truncated_bytes;
      torn_tails += r.torn_tail_recoveries;
      corrupted_frames += r.corrupted_frames;
      decode_rejects += r.decode_rejects;
      if (r.violated) ++violations;
      print_row({std::to_string(seed), codec ? "codec" : "struct",
                 std::to_string(r.crashes), std::to_string(r.recovery_crashes),
                 std::to_string(r.recoveries), std::to_string(r.torn_tail_recoveries),
                 std::to_string(r.truncated_bytes), std::to_string(r.decode_rejects),
                 std::to_string(r.published), std::to_string(r.delivered),
                 r.violated ? "VIOLATION" : "ok"}, 11);
    }
  };
  run_leg(num_seeds, /*codec=*/false);
  run_leg(codec_seeds, /*codec=*/true);

  std::printf("\n%d crash points (%d landed inside recovery), %llu recoveries, "
              "%llu torn-tail truncations (%llu bytes discarded), %llu frames "
              "mangled (%llu rejected), %d oracle violations\n",
              crash_points, recovery_crashes,
              static_cast<unsigned long long>(recoveries),
              static_cast<unsigned long long>(torn_tails),
              static_cast<unsigned long long>(truncated_bytes),
              static_cast<unsigned long long>(corrupted_frames),
              static_cast<unsigned long long>(decode_rejects), violations);

  bool failed = violations > 0;
  if (!smoke && torn_tails == 0) {
    std::printf("FUZZ GAP: no crash point tore a WAL tail mid-frame — the fuzzer "
                "is no longer reaching the interesting crash points\n");
    failed = true;
  }
  if (!smoke && recovery_crashes == 0) {
    std::printf("FUZZ GAP: no crash landed inside a recovery window — the "
                "crash-during-recovery composition stopped firing\n");
    failed = true;
  }
  if (!smoke && decode_rejects == 0) {
    std::printf("FUZZ GAP: the codec leg rejected no frames — the crash x "
                "frame-fault cross product stopped firing\n");
    failed = true;
  }

  if (!out_path.empty()) {
    WorkloadReport report;
    report.name = "recovery_fuzz";
    report.variant = "run";
    report.metrics = {
        {"seeds", static_cast<double>(num_seeds)},
        {"codec_seeds", static_cast<double>(codec_seeds)},
        {"crash_points", static_cast<double>(crash_points)},
        {"recovery_crashes", static_cast<double>(recovery_crashes)},
        {"oracle_violations", static_cast<double>(violations)},
    };
    report.registry = {
        {"wal.recoveries", static_cast<double>(recoveries)},
        {"wal.recovery_truncated_bytes", static_cast<double>(truncated_bytes)},
        {"wal.torn_tail_recoveries", static_cast<double>(torn_tails)},
        {"net.corrupted_frames", static_cast<double>(corrupted_frames)},
        {"net.decode_rejects", static_cast<double>(decode_rejects)},
    };
    write_bench_json(out_path, {report});
    std::printf("wrote %s\n", out_path.c_str());
  }
  return failed ? 1 : 0;
}
