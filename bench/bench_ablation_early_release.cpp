// Ablation A2 — early-release policy sweep (paper §3's maxRetain policy).
// A subscriber disconnects for 30s while the system publishes on. Sweeping
// maxRetain trades PHB storage pinned by the laggard against explicit gap
// notifications it receives on reconnection. maxRetain = infinite (no early
// release) pins storage indefinitely; small maxRetain bounds storage but
// gaps the laggard.
#include "bench/bench_common.hpp"

namespace gryphon::bench {
namespace {

struct Result {
  std::size_t peak_retained_events;
  std::uint64_t gaps;
  std::uint64_t events_after_reconnect;
};

Result run(Tick max_retain_ticks) {
  auto config = paper_config();
  config.num_shbs = 1;
  config.num_pubends = 4;
  if (max_retain_ticks > 0) {
    config.policy = std::make_shared<core::MaxRetainPolicy>(max_retain_ticks);
  }
  // Small SHB cache so the laggard's recovery truly depends on the pubend's
  // retention, not on a fat istream cache.
  config.broker.costs.cache_span_ticks = 2000;
  harness::System system(config);
  auto wl = paper_workload();
  wl.input_rate_eps = 400;
  harness::start_paper_publishers(system, wl);
  auto subs = harness::add_group_subscribers(system, 0, 8, 4, 1);
  system.run_for(sec(5));

  auto* laggard = subs[0];
  const auto before = laggard->events_received();
  laggard->disconnect();

  std::size_t peak_retained = 0;
  for (int i = 0; i < 60; ++i) {
    system.run_for(msec(500));
    std::size_t retained = 0;
    for (PubendId p : system.pubends()) {
      retained += system.phb().pubend(p).retained_events();
    }
    peak_retained = std::max(peak_retained, retained);
  }

  laggard->connect();
  system.run_for(sec(40));
  system.verify_exactly_once();
  return {peak_retained, laggard->gaps_received(),
          laggard->events_received() - before};
}

}  // namespace
}  // namespace gryphon::bench

int main() {
  using namespace gryphon;
  using namespace gryphon::bench;

  print_header(
      "Ablation: early-release maxRetain sweep\n"
      "(one subscriber disconnected 30s @ 400 ev/s input; storage pinned at\n"
      "the PHB vs gap notifications on reconnect; 0 = no early release)");

  print_row({"maxRetain (s)", "peak retained evts", "gaps to laggard",
             "events recovered"},
            22);
  for (const Tick retain_s : {Tick{0}, Tick{60}, Tick{20}, Tick{10}, Tick{5}}) {
    const auto r = run(retain_s * 1000);
    print_row({retain_s == 0 ? "infinite" : std::to_string(retain_s),
               std::to_string(r.peak_retained_events), std::to_string(r.gaps),
               std::to_string(r.events_after_reconnect)},
              22);
  }
  std::printf(
      "\nshape: storage pinned grows with maxRetain; gaps appear once\n"
      "maxRetain < disconnection time; the constream path never sees gaps.\n");
  return 0;
}
