// Figure 5 — Catchup durations under periodic disconnection (paper §5.1.1).
// 2-broker network (1 PHB + 1 SHB), 88 subscribers at 200 ev/s each, every
// subscriber independently disconnects for 5s every 300s. Paper: catchup
// durations usually between 5 and 6 seconds.
#include "bench/bench_common.hpp"

int main() {
  using namespace gryphon;
  using namespace gryphon::bench;

  auto config = paper_config();
  config.num_shbs = 1;
  harness::System system(config);
  harness::start_paper_publishers(system, paper_workload());
  auto subs = harness::add_group_subscribers(system, 0, 88, 4, 1, /*machines=*/5);

  struct Completion {
    SimTime at;
    SimDuration duration;
  };
  std::vector<Completion> completions;
  system.on_shb_ready(0, [&](core::SubscriberHostingBroker& shb) {
    shb.on_catchup_complete = [&](SubscriberId, SimTime from, SimTime to) {
      completions.push_back({to, to - from});
    };
  });

  system.run_for(sec(10));
  harness::ChurnDriver churn(system, subs, sec(300), sec(5));
  system.run_for(sec(250));

  print_header(
      "Figure 5: catchup duration per reconnection over a 250s window\n"
      "(88 subscribers, disconnect 5s every 300s; paper: 5-6s durations)");
  print_row({"t(s)", "catchup duration (s)"});
  Summary summary;
  for (const auto& c : completions) {
    print_row({fmt(to_seconds(c.at), 1), fmt(to_seconds(c.duration), 2)});
    summary.add(to_seconds(c.duration));
  }
  std::printf("\ncompletions=%llu  mean=%.2fs  min=%.2fs  max=%.2fs  (paper: 5-6s)\n",
              static_cast<unsigned long long>(summary.count()), summary.mean(),
              summary.min(), summary.max());

  churn.stop();
  system.run_for(sec(15));
  system.verify_exactly_once();
  return 0;
}
