// Shared scaffolding for the figure/table reproduction benchmarks: the
// paper-default system configuration (§5's testbed translated through the
// DESIGN.md §4 substitutions) and small table/series printers.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "harness/system.hpp"
#include "harness/workload.hpp"

namespace gryphon::bench {

/// §5 defaults: RS/6000 F80-class brokers (6 cores), event logging at the
/// PHB dominating end-to-end latency at ~44 ms, SSA-class SHB disks, 1 ms
/// broker links, 4 pubends.
inline harness::SystemConfig paper_config() {
  harness::SystemConfig config;
  config.num_pubends = 4;
  config.broker.cores = 6;
  config.broker.costs.publish_base = usec(2000);
  config.phb_disk.sync_latency = msec(43);
  config.phb_disk.write_bandwidth_bytes_per_sec = 40e6;
  config.shb_disk.sync_latency = msec(4);
  config.shb_disk.read_seek_latency = msec(6);
  return config;
}

inline harness::PaperWorkloadConfig paper_workload() {
  harness::PaperWorkloadConfig wl;
  wl.input_rate_eps = 800.0;  // over 4 pubends
  wl.groups = 4;              // each subscriber matches 200 ev/s
  wl.payload_bytes = 250;     // 418 bytes with headers
  return wl;
}

inline void print_header(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

inline void print_row(const std::vector<std::string>& cells, int width = 18) {
  for (const auto& cell : cells) std::printf("%-*s", width, cell.c_str());
  std::printf("\n");
}

inline std::string fmt(double v, int precision = 1) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

/// Prints a (time, value) series as aligned columns.
inline void print_series(const std::string& name,
                         const std::vector<TimeSeries::Point>& points,
                         double scale = 1.0, int precision = 1) {
  std::printf("\n-- %s --\n%-12s%s\n", name.c_str(), "t(s)", "value");
  for (const auto& p : points) {
    std::printf("%-12.1f%.*f\n", to_seconds(p.time), precision, p.value * scale);
  }
}

}  // namespace gryphon::bench
