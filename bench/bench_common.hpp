// Shared scaffolding for the figure/table reproduction benchmarks: the
// paper-default system configuration (§5's testbed translated through the
// DESIGN.md §4 substitutions) and small table/series printers.
#pragma once

#include <cstdio>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "harness/system.hpp"
#include "harness/workload.hpp"

namespace gryphon::bench {

/// §5 defaults: RS/6000 F80-class brokers (6 cores), event logging at the
/// PHB dominating end-to-end latency at ~44 ms, SSA-class SHB disks, 1 ms
/// broker links, 4 pubends.
inline harness::SystemConfig paper_config() {
  harness::SystemConfig config;
  config.num_pubends = 4;
  config.broker.cores = 6;
  config.broker.costs.publish_base = usec(2000);
  config.phb_disk.sync_latency = msec(43);
  config.phb_disk.write_bandwidth_bytes_per_sec = 40e6;
  config.shb_disk.sync_latency = msec(4);
  config.shb_disk.read_seek_latency = msec(6);
  return config;
}

inline harness::PaperWorkloadConfig paper_workload() {
  harness::PaperWorkloadConfig wl;
  wl.input_rate_eps = 800.0;  // over 4 pubends
  wl.groups = 4;              // each subscriber matches 200 ev/s
  wl.payload_bytes = 250;     // 418 bytes with headers
  return wl;
}

inline void print_header(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

inline void print_row(const std::vector<std::string>& cells, int width = 18) {
  for (const auto& cell : cells) std::printf("%-*s", width, cell.c_str());
  std::printf("\n");
}

inline std::string fmt(double v, int precision = 1) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

// --- wall-clock reporting (bench_wallclock / tools/run_bench.sh) ---------
//
// Minimal JSON emission for the substrate perf trajectory. The file format
// is deliberately flat (one key per line) so the matching reader below can
// stay a line scanner instead of a JSON parser: BENCH_substrate.json is our
// own artifact, produced only by write_bench_json().

struct BenchMetric {
  std::string name;
  double value;
};

/// One measured workload under one build variant ("pre_pr_baseline",
/// "post_pr", ...). Variants let a single file carry the committed perf
/// trajectory: baseline and current numbers side by side.
struct WorkloadReport {
  std::string name;
  std::string variant;
  std::vector<BenchMetric> metrics;
  /// Broker-internal registry counters (summed across nodes), emitted as a
  /// nested "metrics" object so run_bench.sh can diff protocol-level
  /// behaviour (e.g. gaps_sent creeping above zero) alongside throughput.
  std::vector<BenchMetric> registry;
  /// Per-stage latency percentiles (LatencyRecorder), emitted as a nested
  /// "latency" object: <stage>.count / .p50_ms / .p99_ms / .p999_ms. Keeps
  /// every perf PR accountable to tail latency, not just throughput.
  std::vector<BenchMetric> latency;

  [[nodiscard]] const BenchMetric* find(const std::string& metric) const {
    for (const auto& m : metrics) {
      if (m.name == metric) return &m;
    }
    return nullptr;
  }
};

/// Sums every node's registry counters into the report's nested `registry`
/// block (probes refreshed first so storage totals are current). Counter
/// names are per-node-unique, so the sum over nodes is the system total.
inline void attach_registry_metrics(WorkloadReport& report, harness::System& system) {
  std::map<std::string, double> sums;
  for (auto* node : system.nodes()) {
    node->metrics.refresh_probes();
    node->metrics.for_each_counter(
        [&](const std::string& name, std::uint64_t v) {
          sums[name] += static_cast<double>(v);
        });
  }
  for (const auto& [name, v] : sums) report.registry.push_back({name, v});
}

/// Flattens the recorder's histograms into nested-"latency"-block metrics.
/// Every stage is emitted (zero-count stages included) so the committed
/// JSON's key set never shifts between runs.
inline std::vector<BenchMetric> latency_percentile_metrics(
    const LatencyRecorder& recorder) {
  std::vector<BenchMetric> out;
  out.reserve(kNumLatencyStages * 4);
  for (std::size_t i = 0; i < kNumLatencyStages; ++i) {
    const auto stage = static_cast<LatencyStage>(i);
    const Histogram& h = recorder.stage(stage);
    const std::string prefix = latency_stage_name(stage);
    out.push_back({prefix + ".count", static_cast<double>(h.count())});
    out.push_back({prefix + ".p50_ms", h.percentile(50.0)});
    out.push_back({prefix + ".p99_ms", h.percentile(99.0)});
    out.push_back({prefix + ".p999_ms", h.percentile(99.9)});
  }
  return out;
}

inline void write_bench_json(const std::string& path,
                             const std::vector<WorkloadReport>& reports) {
  std::ofstream out(path);
  GRYPHON_CHECK_MSG(out.good(), "cannot write " << path);
  out << "{\n  \"schema\": \"gryphon-substrate-bench-v1\",\n  \"workloads\": [\n";
  for (std::size_t i = 0; i < reports.size(); ++i) {
    const auto& r = reports[i];
    out << "    {\n      \"name\": \"" << r.name << "\",\n      \"variant\": \""
        << r.variant << "\"";
    for (const auto& m : r.metrics) {
      char buf[64];
      std::snprintf(buf, sizeof buf, "%.6g", m.value);
      out << ",\n      \"" << m.name << "\": " << buf;
    }
    if (!r.registry.empty()) {
      out << ",\n      \"metrics\": {";
      for (std::size_t j = 0; j < r.registry.size(); ++j) {
        char buf[64];
        std::snprintf(buf, sizeof buf, "%.6g", r.registry[j].value);
        out << (j == 0 ? "\n" : ",\n") << "        \"" << r.registry[j].name
            << "\": " << buf;
      }
      out << "\n      }";
    }
    if (!r.latency.empty()) {
      out << ",\n      \"latency\": {";
      for (std::size_t j = 0; j < r.latency.size(); ++j) {
        char buf[64];
        std::snprintf(buf, sizeof buf, "%.6g", r.latency[j].value);
        out << (j == 0 ? "\n" : ",\n") << "        \"" << r.latency[j].name
            << "\": " << buf;
      }
      out << "\n      }";
    }
    out << "\n    }" << (i + 1 < reports.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

/// Reads one metric back out of a write_bench_json() file. Returns nullopt
/// when the (workload, variant, metric) triple is absent.
inline std::optional<double> read_bench_metric(const std::string& path,
                                               const std::string& workload,
                                               const std::string& variant,
                                               const std::string& metric) {
  std::ifstream in(path);
  if (!in.good()) return std::nullopt;
  auto quoted_value = [](const std::string& line) -> std::string {
    const auto colon = line.find(':');
    if (colon == std::string::npos) return {};
    const auto open = line.find('"', colon);
    if (open == std::string::npos) return {};
    const auto close = line.find('"', open + 1);
    if (close == std::string::npos) return {};
    return line.substr(open + 1, close - open - 1);
  };
  std::string line;
  std::string cur_name;
  std::string cur_variant;
  while (std::getline(in, line)) {
    // A bare "{" opens a new workload object. Keyed opens (e.g. the nested
    // "metrics": { block) stay inside the current workload.
    if (line.find('{') != std::string::npos &&
        line.find('"') == std::string::npos) {
      cur_name.clear();
      cur_variant.clear();
      continue;
    }
    if (line.find("\"name\"") != std::string::npos) cur_name = quoted_value(line);
    if (line.find("\"variant\"") != std::string::npos) cur_variant = quoted_value(line);
    const std::string key = '"' + metric + '"';
    const auto pos = line.find(key);
    if (pos == std::string::npos) continue;
    if (cur_name != workload || cur_variant != variant) continue;
    const auto colon = line.find(':', pos);
    if (colon == std::string::npos) continue;
    return std::strtod(line.c_str() + colon + 1, nullptr);
  }
  return std::nullopt;
}

/// Prints a (time, value) series as aligned columns.
inline void print_series(const std::string& name,
                         const std::vector<TimeSeries::Point>& points,
                         double scale = 1.0, int precision = 1) {
  std::printf("\n-- %s --\n%-12s%s\n", name.c_str(), "t(s)", "value");
  for (const auto& p : points) {
    std::printf("%-12.1f%.*f\n", to_seconds(p.time), precision, p.value * scale);
  }
}

}  // namespace gryphon::bench
