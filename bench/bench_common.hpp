// Shared scaffolding for the figure/table reproduction benchmarks: the
// paper-default system configuration (§5's testbed translated through the
// DESIGN.md §4 substitutions) and small table/series printers.
#pragma once

#include <cstdio>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "harness/system.hpp"
#include "harness/workload.hpp"

namespace gryphon::bench {

/// §5 defaults: RS/6000 F80-class brokers (6 cores), event logging at the
/// PHB dominating end-to-end latency at ~44 ms, SSA-class SHB disks, 1 ms
/// broker links, 4 pubends.
inline harness::SystemConfig paper_config() {
  harness::SystemConfig config;
  config.num_pubends = 4;
  config.broker.cores = 6;
  config.broker.costs.publish_base = usec(2000);
  config.phb_disk.sync_latency = msec(43);
  config.phb_disk.write_bandwidth_bytes_per_sec = 40e6;
  config.shb_disk.sync_latency = msec(4);
  config.shb_disk.read_seek_latency = msec(6);
  return config;
}

inline harness::PaperWorkloadConfig paper_workload() {
  harness::PaperWorkloadConfig wl;
  wl.input_rate_eps = 800.0;  // over 4 pubends
  wl.groups = 4;              // each subscriber matches 200 ev/s
  wl.payload_bytes = 250;     // 418 bytes with headers
  return wl;
}

inline void print_header(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

inline void print_row(const std::vector<std::string>& cells, int width = 18) {
  for (const auto& cell : cells) std::printf("%-*s", width, cell.c_str());
  std::printf("\n");
}

inline std::string fmt(double v, int precision = 1) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

// --- wall-clock reporting (bench_wallclock / tools/run_bench.sh) ---------
//
// Minimal JSON emission for the substrate perf trajectory. The file format
// is deliberately flat (one key per line) so the matching reader below can
// stay a line scanner instead of a JSON parser: BENCH_substrate.json is our
// own artifact, produced only by write_bench_json().

struct BenchMetric {
  std::string name;
  double value;
};

/// One measured workload under one build variant ("pre_pr_baseline",
/// "post_pr", ...). Variants let a single file carry the committed perf
/// trajectory: baseline and current numbers side by side.
struct WorkloadReport {
  std::string name;
  std::string variant;
  std::vector<BenchMetric> metrics;

  [[nodiscard]] const BenchMetric* find(const std::string& metric) const {
    for (const auto& m : metrics) {
      if (m.name == metric) return &m;
    }
    return nullptr;
  }
};

inline void write_bench_json(const std::string& path,
                             const std::vector<WorkloadReport>& reports) {
  std::ofstream out(path);
  GRYPHON_CHECK_MSG(out.good(), "cannot write " << path);
  out << "{\n  \"schema\": \"gryphon-substrate-bench-v1\",\n  \"workloads\": [\n";
  for (std::size_t i = 0; i < reports.size(); ++i) {
    const auto& r = reports[i];
    out << "    {\n      \"name\": \"" << r.name << "\",\n      \"variant\": \""
        << r.variant << "\"";
    for (const auto& m : r.metrics) {
      char buf[64];
      std::snprintf(buf, sizeof buf, "%.6g", m.value);
      out << ",\n      \"" << m.name << "\": " << buf;
    }
    out << "\n    }" << (i + 1 < reports.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

/// Reads one metric back out of a write_bench_json() file. Returns nullopt
/// when the (workload, variant, metric) triple is absent.
inline std::optional<double> read_bench_metric(const std::string& path,
                                               const std::string& workload,
                                               const std::string& variant,
                                               const std::string& metric) {
  std::ifstream in(path);
  if (!in.good()) return std::nullopt;
  auto quoted_value = [](const std::string& line) -> std::string {
    const auto colon = line.find(':');
    if (colon == std::string::npos) return {};
    const auto open = line.find('"', colon);
    if (open == std::string::npos) return {};
    const auto close = line.find('"', open + 1);
    if (close == std::string::npos) return {};
    return line.substr(open + 1, close - open - 1);
  };
  std::string line;
  std::string cur_name;
  std::string cur_variant;
  while (std::getline(in, line)) {
    if (line.find('{') != std::string::npos) {
      cur_name.clear();
      cur_variant.clear();
      continue;
    }
    if (line.find("\"name\"") != std::string::npos) cur_name = quoted_value(line);
    if (line.find("\"variant\"") != std::string::npos) cur_variant = quoted_value(line);
    const std::string key = '"' + metric + '"';
    const auto pos = line.find(key);
    if (pos == std::string::npos) continue;
    if (cur_name != workload || cur_variant != variant) continue;
    const auto colon = line.find(':', pos);
    if (colon == std::string::npos) continue;
    return std::strtod(line.c_str() + colon + 1, nullptr);
  }
  return std::nullopt;
}

/// Prints a (time, value) series as aligned columns.
inline void print_series(const std::string& name,
                         const std::vector<TimeSeries::Point>& points,
                         double scale = 1.0, int precision = 1) {
  std::printf("\n-- %s --\n%-12s%s\n", name.c_str(), "t(s)", "value");
  for (const auto& p : points) {
    std::printf("%-12.1f%.*f\n", to_seconds(p.time), precision, p.value * scale);
  }
}

}  // namespace gryphon::bench
