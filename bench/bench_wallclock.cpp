// Wall-clock perf harness for the simulation substrate.
//
// Every figure bench and chaos soak reports *simulated* time; this binary is
// the one place that measures how fast the substrate turns simulated events
// into wall-clock progress, so optimizations to the event loop, TickMap,
// matching and log layers have a number to move (and a regression guard).
//
// Workloads:
//   * fig4_steady_4shb — the Figure-4 4-SHB steady-state deployment (800
//     ev/s input over 4 pubends, 400 subscribers) run for a fixed window of
//     simulated time,
//   * chaos_soak_seed1 — one seeded chaos schedule over the 5-broker soak
//     topology (the workload tools/run_chaos.sh loops on).
//
// Reported per workload: simulated-events-per-wall-second (an "event" is one
// executed simulator task), deliveries-per-wall-second, and heap
// allocations-per-event via the counting operator-new hook below. Each
// workload runs `--reps` times and the fastest rep is reported (wall-clock
// noise is one-sided).
//
//   bench_wallclock [--out FILE] [--check FILE] [--tolerance F]
//                   [--reps N] [--smoke]
//
// --check compares this run's events/wall-second against the post_pr (or,
// failing that, "run") variant recorded in FILE (tools/run_bench.sh points
// it at the committed BENCH_substrate.json) and exits non-zero on a regression beyond
// --tolerance (default 0.15). --smoke runs a single short chaos schedule
// with the oracle armed and no timing checks — the sanitizer entry point
// wired into tools/run_chaos.sh.
#include "bench/bench_common.hpp"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <new>

#include "harness/chaos.hpp"

// ------------------------------------------------------------------------
// Counting allocator hook: every heap allocation in the process bumps one
// relaxed atomic. Deletes are uncounted (allocs-per-event is the budget the
// substrate model in DESIGN.md §4.2 talks about).
namespace {
std::atomic<std::uint64_t> g_alloc_count{0};

inline void* counted_alloc(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  void* p = nullptr;
  if (posix_memalign(&p, static_cast<std::size_t>(align), size ? size : 1) != 0) {
    throw std::bad_alloc();
  }
  return p;
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return operator new(size, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }

namespace gryphon::bench {
namespace {

struct Measurement {
  double wall_seconds = 0;
  double sim_seconds = 0;
  std::uint64_t executed_tasks = 0;
  std::uint64_t delivered = 0;
  std::uint64_t allocs = 0;
  /// System-wide registry counter totals, captured after the run (the
  /// nested "metrics" block in the bench JSON).
  std::vector<BenchMetric> registry;
  /// Per-stage latency percentiles (the nested "latency" block).
  std::vector<BenchMetric> latency;

  [[nodiscard]] double events_per_wall_sec() const {
    return static_cast<double>(executed_tasks) / wall_seconds;
  }
  [[nodiscard]] double registry_counter(const std::string& name) const {
    for (const auto& m : registry) {
      if (m.name == name) return m.value;
    }
    return 0;
  }
  [[nodiscard]] double latency_metric(const std::string& name) const {
    for (const auto& m : latency) {
      if (m.name == name) return m.value;
    }
    return 0;
  }
};

/// Runs `body` (which advances `system` by some simulated time) and counts
/// executed tasks, oracle deliveries, allocations and wall time around it.
template <typename Body>
Measurement measure(harness::System& system, Body&& body) {
  Measurement m;
  const std::uint64_t tasks0 = system.simulator().executed_tasks();
  const std::uint64_t delivered0 = system.oracle().delivered_count();
  const SimTime sim0 = system.simulator().now();
  const std::uint64_t allocs0 = g_alloc_count.load(std::memory_order_relaxed);
  const auto wall0 = std::chrono::steady_clock::now();
  body();
  const auto wall1 = std::chrono::steady_clock::now();
  m.wall_seconds = std::chrono::duration<double>(wall1 - wall0).count();
  m.sim_seconds = to_seconds(system.simulator().now() - sim0);
  m.executed_tasks = system.simulator().executed_tasks() - tasks0;
  m.delivered = system.oracle().delivered_count() - delivered0;
  m.allocs = g_alloc_count.load(std::memory_order_relaxed) - allocs0;
  return m;
}

/// Figure-4 4-SHB steady state: build, warm up, then time a fixed window.
/// Run once per wire mode: the codec variant prices the encode/decode tax
/// (every message framed + CRC'd + parsed) against the struct fast path.
Measurement run_fig4_steady(harness::WireMode wire) {
  auto config = paper_config();
  config.num_shbs = 4;
  config.wire = wire;
  harness::System system(config);
  harness::start_paper_publishers(system, paper_workload());
  for (int i = 0; i < config.num_shbs; ++i) {
    harness::add_group_subscribers(system, i, /*count=*/100, /*groups=*/4,
                                   static_cast<std::uint32_t>(1000 * (i + 1)),
                                   /*machines=*/5);
  }
  system.run_for(sec(10));  // warmup: connect, fill pipelines

  auto m = measure(system, [&] { system.run_for(sec(20)); });
  system.run_for(sec(5));  // quiesce outside the timed window
  system.verify_exactly_once();
  WorkloadReport snapshot;
  attach_registry_metrics(snapshot, system);
  m.registry = std::move(snapshot.registry);
  // A clean steady-state run must never reject a frame: any decode reject
  // here means the codec (not the network) corrupted a message.
  m.registry.push_back(
      {"net.decode_rejects", static_cast<double>(system.network().decode_rejects())});
  m.latency = latency_percentile_metrics(system.latency());
  return m;
}

/// One seeded chaos schedule over the soak topology (bench_chaos_soak's
/// per-seed body), timed end to end including quiescence verification.
Measurement run_chaos_soak(std::uint64_t seed, double horizon_s) {
  harness::SystemConfig sc;
  sc.num_pubends = 2;
  sc.num_shbs = 2;
  sc.num_intermediates = 1;
  harness::System system(sc);
  harness::PaperWorkloadConfig wl;
  wl.input_rate_eps = 300;
  harness::start_paper_publishers(system, wl);
  auto subs = harness::add_group_subscribers(system, 0, 4, 4, 1);
  auto more = harness::add_group_subscribers(system, 1, 4, 4, 100);
  subs.insert(subs.end(), more.begin(), more.end());
  system.run_for(sec(3));

  harness::ChurnDriver churn(system, subs, sec(6), sec(2));
  harness::ChaosConfig config;
  config.seed = seed;
  config.horizon = static_cast<SimDuration>(horizon_s * 1e6);
  harness::ChaosSchedule chaos(system, config);
  system.simulator().schedule_at(chaos.repaired_at(), [&churn] { churn.stop(); });

  auto m = measure(system, [&] { chaos.run(); });
  m.latency = latency_percentile_metrics(system.latency());
  return m;
}

WorkloadReport to_report(const std::string& name, const Measurement& m) {
  WorkloadReport r;
  r.name = name;
  r.variant = "run";
  const double events = static_cast<double>(m.executed_tasks);
  r.metrics = {
      {"sim_seconds", m.sim_seconds},
      {"wall_seconds", m.wall_seconds},
      {"executed_tasks", events},
      {"delivered_events", static_cast<double>(m.delivered)},
      {"sim_events_per_wall_sec", m.events_per_wall_sec()},
      {"deliveries_per_wall_sec", static_cast<double>(m.delivered) / m.wall_seconds},
      {"allocs_per_event", static_cast<double>(m.allocs) / events},
  };
  r.registry = m.registry;
  r.latency = m.latency;
  return r;
}

}  // namespace
}  // namespace gryphon::bench

int main(int argc, char** argv) {
  using namespace gryphon;
  using namespace gryphon::bench;

  std::string out_path;
  std::string check_path;
  double tolerance = 0.15;
  int reps = 3;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      GRYPHON_CHECK_MSG(i + 1 < argc, "missing value for " << arg);
      return argv[++i];
    };
    if (arg == "--out") out_path = next();
    else if (arg == "--check") check_path = next();
    else if (arg == "--tolerance") tolerance = std::atof(next());
    else if (arg == "--reps") reps = std::atoi(next());
    else if (arg == "--smoke") smoke = true;
    else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return 2;
    }
  }

  if (smoke) {
    // Sanitizer entry point: one short schedule, oracle armed, no timing.
    print_header("bench_wallclock --smoke: 1 chaos seed, oracle armed");
    const auto m = run_chaos_soak(/*seed=*/1, /*horizon_s=*/5.0);
    std::printf("ok: %llu tasks, %llu deliveries, %.1f sim-s\n",
                static_cast<unsigned long long>(m.executed_tasks),
                static_cast<unsigned long long>(m.delivered), m.sim_seconds);
    return 0;
  }

  print_header("Substrate wall-clock harness (fastest of " + std::to_string(reps) +
               " reps per workload)");
  print_row({"workload", "sim_s", "wall_s", "tasks", "ev/wall-s", "deliv/wall-s",
             "allocs/ev"});

  const auto run_chaos = [] { return run_chaos_soak(/*seed=*/1, /*horizon_s=*/8.0); };
  const std::vector<std::pair<std::string, std::function<Measurement()>>> specs = {
      {"fig4_steady_4shb", [] { return run_fig4_steady(harness::WireMode::kStruct); }},
      {"fig4_steady_4shb_codec",
       [] { return run_fig4_steady(harness::WireMode::kCodec); }},
      {"chaos_soak_seed1", run_chaos},
  };

  std::vector<WorkloadReport> reports;
  bool regression = false;
  for (const auto& [name, run] : specs) {
    Measurement best;
    for (int r = 0; r < reps; ++r) {
      const Measurement m = run();
      if (r == 0 || m.events_per_wall_sec() > best.events_per_wall_sec()) best = m;
    }
    print_row({name, fmt(best.sim_seconds, 1), fmt(best.wall_seconds, 2),
               std::to_string(best.executed_tasks), fmt(best.events_per_wall_sec(), 0),
               fmt(static_cast<double>(best.delivered) / best.wall_seconds, 0),
               fmt(static_cast<double>(best.allocs) /
                       static_cast<double>(best.executed_tasks),
                   2)});
    reports.push_back(to_report(name, best));

    // Counter regression guard: the steady fig4 workload never loses
    // knowledge, so any gap notification means the protocol (not the clock)
    // regressed. Checked unconditionally — it needs no committed reference.
    if (name.rfind("fig4_steady_4shb", 0) == 0) {
      const double gaps = best.registry_counter("shb.gaps_sent");
      if (gaps > 0) {
        std::printf("  METRIC REGRESSION: %s sent %.0f gap notifications on a "
                    "steady workload (expected 0)\n",
                    name.c_str(), gaps);
        regression = true;
      }
      // No broker crashes in the steady workload: a recovery scan that had
      // to discard a torn WAL tail means the persistence engine corrupted or
      // lost bytes on a fault-free run.
      const double truncated = best.registry_counter("wal.recovery_truncated_bytes");
      if (truncated > 0) {
        std::printf("  METRIC REGRESSION: %s truncated %.0f WAL bytes on a "
                    "steady workload (expected 0)\n",
                    name.c_str(), truncated);
        regression = true;
      }
      // No frame corruption is injected here, so a transport decode reject
      // means the wire codec itself produced or mis-parsed a frame.
      const double rejects = best.registry_counter("net.decode_rejects");
      if (rejects > 0) {
        std::printf("  METRIC REGRESSION: %s rejected %.0f frames on a clean "
                    "steady workload (expected 0)\n",
                    name.c_str(), rejects);
        regression = true;
      }
      // Steady-state tail-latency guard. End-to-end is dominated by the
      // announce/consolidation batching windows on top of the PHB's 43 ms
      // sync: a healthy run's sampled p50 sits near 500 ms and the p99 near
      // 800 ms (log buckets: 631 / 794 / 1000). The 1500 ms absolute
      // ceiling is ~2 buckets of headroom — it catches a batching or
      // delivery stall without flapping on bucket quantization. Zero
      // samples means the latency plumbing itself broke (tracer sink
      // unhooked, sampling off).
      const double e2e_count = best.latency_metric("end_to_end.count");
      const double e2e_p99 = best.latency_metric("end_to_end.p99_ms");
      if (e2e_count == 0) {
        std::printf("  METRIC REGRESSION: %s recorded no sampled end-to-end "
                    "latencies (latency pipeline broken?)\n",
                    name.c_str());
        regression = true;
      } else if (e2e_p99 > 1500.0) {
        std::printf("  LATENCY REGRESSION: %s end-to-end p99 %.1f ms over the "
                    "1500 ms steady-state ceiling (n=%.0f)\n",
                    name.c_str(), e2e_p99, e2e_count);
        regression = true;
      } else {
        std::printf("  latency ok: e2e p99 %.1f ms over %.0f sampled ticks "
                    "(ceiling 1500 ms)\n",
                    e2e_p99, e2e_count);
      }
    }

    if (!check_path.empty()) {
      // Prefer an explicitly tagged post_pr baseline; fall back to the
      // recorded "run" variant --out writes, so a plain re-recorded file
      // still arms the check instead of silently skipping every workload.
      auto committed = read_bench_metric(check_path, name, "post_pr",
                                         "sim_events_per_wall_sec");
      if (!committed) {
        committed = read_bench_metric(check_path, name, "run",
                                      "sim_events_per_wall_sec");
      }
      if (!committed) {
        std::printf("  (no reference for %s in %s — skipping check)\n",
                    name.c_str(), check_path.c_str());
      } else {
        const double floor = *committed * (1.0 - tolerance);
        const double got = reports.back().find("sim_events_per_wall_sec")->value;
        if (got < floor) {
          std::printf("  REGRESSION: %s %.0f ev/wall-s < floor %.0f (committed %.0f, "
                      "tolerance %.0f%%)\n",
                      name.c_str(), got, floor, *committed, 100 * tolerance);
          regression = true;
        } else {
          std::printf("  check ok: %.0f ev/wall-s vs committed %.0f (floor %.0f)\n",
                      got, *committed, floor);
        }
      }
    }
  }

  // Codec-tax ceiling: the byte path must stay within 2.0x the struct
  // path's wall-clock and within 10 allocations per event. Absolute bounds
  // (unlike the --check floor they need no committed reference), so the
  // pooled-arena/zero-copy/sampled-verify encode path cannot silently rot
  // back toward the old 5x tax.
  {
    const auto metric = [&](const std::string& name, const char* key) -> double {
      for (const auto& r : reports) {
        if (r.name == name) {
          if (const auto* m = r.find(key)) return m->value;
        }
      }
      return 0;
    };
    const double struct_rate = metric("fig4_steady_4shb", "sim_events_per_wall_sec");
    const double codec_rate =
        metric("fig4_steady_4shb_codec", "sim_events_per_wall_sec");
    const double codec_allocs = metric("fig4_steady_4shb_codec", "allocs_per_event");
    if (struct_rate > 0 && codec_rate > 0) {
      const double tax = struct_rate / codec_rate;
      if (tax > 2.0) {
        std::printf("  CODEC TAX REGRESSION: codec runs %.2fx slower than struct "
                    "(ceiling 2.0x): %.0f vs %.0f ev/wall-s\n",
                    tax, codec_rate, struct_rate);
        regression = true;
      } else {
        std::printf("  codec tax ok: %.2fx struct wall-clock (ceiling 2.0x)\n", tax);
      }
    }
    if (codec_allocs > 10.0) {
      std::printf("  CODEC TAX REGRESSION: %.2f allocs/event in codec mode "
                  "(ceiling 10)\n",
                  codec_allocs);
      regression = true;
    }
  }

  if (!out_path.empty()) {
    write_bench_json(out_path, reports);
    std::printf("\nwrote %s\n", out_path.c_str());
  }
  return regression ? 1 : 0;
}
