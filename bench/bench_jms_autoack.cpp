// JMS auto-acknowledge throughput (paper §5.2). The SHB owns each JMS
// subscriber's CT in database tables and commits it per consumed event,
// with explicit batching of waiting CT updates across 4 JDBC connections
// and a battery-backed disk write cache.
// Paper: peak aggregate rate 4K ev/s with 25 subscribers, 7.6K with 200 —
// the bottleneck is database update+commit throughput, so adding
// subscribers grows batches and aggregate rate sublinearly.
#include "bench/bench_common.hpp"

namespace gryphon::bench {
namespace {

double run(int subscribers) {
  auto config = paper_config();
  config.num_shbs = 1;
  config.num_pubends = 4;
  config.shb_db_connections = 4;             // 4 JDBC connections + threads
  config.shb_disk.sync_latency = msec(2);    // battery-backed write cache
  config.shb_db_per_txn_overhead = usec(120);  // DB2 commit-path work per txn
  harness::System system(config);

  // Saturating input: every subscriber matches the full 800 ev/s stream, so
  // delivery is gated purely by the CT commit path.
  auto wl = paper_workload();
  wl.groups = 1;
  harness::start_paper_publishers(system, wl);

  for (int i = 0; i < subscribers; ++i) {
    core::DurableSubscriber::Options options;
    options.id = SubscriberId{static_cast<std::uint32_t>(i + 1)};
    options.predicate = harness::group_predicate(0);
    options.jms_auto_ack = true;
    system.add_subscriber(options, 0, i % 4).connect();
  }

  system.run_for(sec(5));  // warmup
  const auto before = system.oracle().delivered_count();
  const SimDuration window = sec(20);
  system.run_for(window);
  return static_cast<double>(system.oracle().delivered_count() - before) /
         to_seconds(window);
}

}  // namespace
}  // namespace gryphon::bench

int main() {
  using namespace gryphon;
  using namespace gryphon::bench;

  print_header(
      "JMS auto-acknowledge peak rate (paper 5.2)\n"
      "CT(s) committed per consumed event, batched over 4 JDBC connections\n"
      "paper: 4K ev/s @ 25 subscribers, 7.6K ev/s @ 200 subscribers");

  print_row({"subscribers", "aggregate ev/s", "per-sub ev/s"});
  double small = 0;
  double large = 0;
  for (const int n : {25, 200}) {
    const double rate = run(n);
    if (n == 25) small = rate;
    if (n == 200) large = rate;
    print_row({std::to_string(n), fmt(rate, 0), fmt(rate / n, 1)});
  }
  std::printf(
      "\ngrowth with 8x subscribers: %.2fx (paper: 7.6K/4K = 1.9x) — batching\n"
      "helps, but the commit path stays the bottleneck\n",
      large / small);
  return 0;
}
