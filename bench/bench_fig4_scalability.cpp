// Figure 4 — Peak event rate: aggregate subscriber delivery rate for 1, 2
// and 4 SHBs, without and with periodic subscriber disconnection (paper
// §5.1). Paper values: 20K -> 79.2K ev/s (no churn) and 17.6K -> 69.6K
// (churn; each subscriber disconnects for 5s every 300s), with PHB idle
// falling from 69% to 59%. The "1 broker" network of Fig. 3 is reported by
// the 1-SHB row (the paper found their capacities equivalent because disk
// logging CPU is negligible).
#include "bench/bench_common.hpp"

namespace gryphon::bench {
namespace {

struct Result {
  int shbs;
  int subscribers;
  double aggregate_eps;
  double phb_idle;
  double shb_idle;
  std::uint64_t gaps;
};

Result run_config(int shbs, bool churn) {
  auto config = paper_config();
  config.num_shbs = shbs;
  harness::System system(config);
  harness::start_paper_publishers(system, paper_workload());

  const int per_shb = churn ? 88 : 100;  // paper's populations
  std::vector<core::DurableSubscriber*> subs;
  for (int i = 0; i < shbs; ++i) {
    auto added = harness::add_group_subscribers(
        system, i, per_shb, 4, static_cast<std::uint32_t>(1000 * (i + 1)),
        /*machines=*/5);
    subs.insert(subs.end(), added.begin(), added.end());
  }

  system.run_for(sec(10));  // warmup: connect, fill pipelines
  std::unique_ptr<harness::ChurnDriver> driver;
  if (churn) {
    driver = std::make_unique<harness::ChurnDriver>(system, subs, sec(300), sec(5));
  }

  const SimTime measure_from = system.simulator().now();
  const std::uint64_t delivered_before = system.oracle().delivered_count();
  const SimDuration window = sec(60);
  system.run_for(window);
  const std::uint64_t delivered = system.oracle().delivered_count() - delivered_before;

  Result r;
  r.shbs = shbs;
  r.subscribers = shbs * per_shb;
  r.aggregate_eps = static_cast<double>(delivered) / to_seconds(window);
  r.phb_idle = system.phb_cpu().idle_fraction(measure_from, measure_from + window);
  r.shb_idle = system.shb_cpu(0).idle_fraction(measure_from, measure_from + window);
  std::uint64_t gaps = 0;
  for (auto* sub : subs) gaps += sub->gaps_received();
  r.gaps = gaps;

  if (driver) driver->stop();
  system.run_for(sec(15));  // quiesce so the contract check sees a fixpoint
  system.verify_exactly_once();
  return r;
}

}  // namespace
}  // namespace gryphon::bench

int main() {
  using namespace gryphon;
  using namespace gryphon::bench;

  print_header(
      "Figure 4: peak aggregate subscriber rate vs number of SHBs\n"
      "input 800 ev/s over 4 pubends, 200 ev/s per subscriber\n"
      "paper: no-churn 20K/40.4K/79.2K ev/s; churn 17.6K/35.4K/69.6K ev/s");

  print_row({"mode", "SHBs", "subs", "aggregate ev/s", "PHB idle %", "SHB0 idle %",
             "gaps"});
  double base_no_churn = 0;
  double base_churn = 0;
  for (const bool churn : {false, true}) {
    for (const int shbs : {1, 2, 4}) {
      const auto r = run_config(shbs, churn);
      if (shbs == 1) (churn ? base_churn : base_no_churn) = r.aggregate_eps;
      print_row({churn ? "churn" : "steady", std::to_string(r.shbs),
                 std::to_string(r.subscribers), fmt(r.aggregate_eps, 0),
                 fmt(100 * r.phb_idle, 1), fmt(100 * r.shb_idle, 1),
                 std::to_string(r.gaps)});
    }
  }
  std::printf(
      "\nlinearity: 4-SHB/1-SHB aggregate ratio (paper: ~3.96x both modes)\n"
      "churn penalty at 4 SHBs (paper: churn peak ~88%% of no-churn peak)\n");
  std::printf("1-SHB no-churn baseline: %.0f ev/s (paper 20K)\n", base_no_churn);
  std::printf("1-SHB churn baseline:    %.0f ev/s (paper 17.6K)\n", base_churn);
  return 0;
}
