// Figure 8 — per-client-machine message rates and broker CPU idle across an
// SHB crash and recovery (paper §5.3). Same experiment as Figure 7:
//   * 40 subscribers on 5 client machines (1600 ev/s per machine normally),
//   * SHB down 25s, subscribers reconnect after constream recovery.
// Paper shapes: per-machine rate 1600 before the crash, bursty and above
// normal during catchup; SHB CPU idle drops hard during catchup while the
// PHB barely notices (nack consolidation). The SHB's aggregate rate during
// mass catchup is ~10K ev/s vs 20K through the constream — the cost of 40
// separate catchup streams (the consolidation argument, §5 result 3).
#include "bench/bench_common.hpp"

int main() {
  using namespace gryphon;
  using namespace gryphon::bench;

  auto config = paper_config();
  config.num_shbs = 1;
  harness::System system(config);
  harness::start_paper_publishers(system, paper_workload());
  auto subs = harness::add_group_subscribers(system, 0, 40, 4, 1, /*machines=*/5);

  std::size_t catchup_completed = 0;
  system.on_shb_ready(0, [&](core::SubscriberHostingBroker& shb) {
    shb.on_catchup_complete = [&](SubscriberId, SimTime, SimTime) {
      ++catchup_completed;
    };
  });

  system.run_for(sec(30));
  for (auto* sub : subs) sub->set_reconnect_hold(true);
  const SimTime crash_at = system.simulator().now();
  system.crash_shb(0);
  system.run_for(sec(25));
  system.restart_shb(0);

  SimTime recovered_at = 0;
  while (recovered_at == 0) {
    system.run_for(msec(500));
    bool ready = true;
    for (PubendId p : system.pubends()) {
      if (system.shb().latest_delivered(p) <
          tick_of_simtime(system.simulator().now()) - 1500) {
        ready = false;
        break;
      }
    }
    if (ready) recovered_at = system.simulator().now();
  }
  for (auto* sub : subs) sub->set_reconnect_hold(false);
  const SimTime reconnect_at = system.simulator().now();

  SimTime catchup_done_at = 0;
  while (catchup_done_at == 0) {
    system.run_for(sec(1));
    if (catchup_completed >= subs.size()) catchup_done_at = system.simulator().now();
    if (system.simulator().now() > reconnect_at + sec(400)) break;
  }
  system.run_for(sec(20));

  print_header(
      "Figure 8: per-machine delivery rate and CPU idle across SHB crash\n"
      "(40 subscribers on 5 machines; paper: 1600 ev/s per machine, bursty\n"
      "above-normal during catchup; SHB idle drops, PHB barely affected)");
  std::printf("crash t=%.0fs  constream-recovered t=%.0fs  reconnect t=%.0fs  "
              "all-caught-up t=%.0fs\n",
              to_seconds(crash_at), to_seconds(recovered_at),
              to_seconds(reconnect_at), to_seconds(catchup_done_at));

  // Per-machine rates, 1s windows, printed every 2s.
  print_row({"t(s)", "m0", "m1", "m2", "m3", "m4", "phb idle%", "shb idle%"}, 11);
  std::vector<std::vector<RateMeter::Window>> machine_windows;
  for (int m = 0; m < 5; ++m) machine_windows.push_back(system.oracle().machine_rate(m).windows());
  const auto phb_idle = [&](SimTime t) {
    return 100 * system.phb_cpu().idle_fraction(t, t + sec(1));
  };
  const auto shb_idle = [&](SimTime t) {
    return 100 * system.shb_cpu(0).idle_fraction(t, t + sec(1));
  };
  const std::size_t n_windows = machine_windows[0].size();
  for (std::size_t i = 10; i < n_windows; i += 2) {
    std::vector<std::string> cells{fmt(to_seconds(machine_windows[0][i].start), 0)};
    for (int m = 0; m < 5; ++m) {
      cells.push_back(fmt(machine_windows[static_cast<std::size_t>(m)][i].per_second, 0));
    }
    cells.push_back(fmt(phb_idle(machine_windows[0][i].start), 0));
    cells.push_back(fmt(shb_idle(machine_windows[0][i].start), 0));
    print_row(cells, 11);
  }

  // Shape summary: aggregate rates and CPU in the three phases.
  auto aggregate_between = [&](SimTime from, SimTime to) {
    double total = 0;
    for (int m = 0; m < 5; ++m) {
      for (const auto& w : machine_windows[static_cast<std::size_t>(m)]) {
        if (w.start >= from && w.start + sec(1) <= to) total += w.per_second;
      }
    }
    return total / to_seconds(to - from);
  };
  const double normal_rate = aggregate_between(sec(10), crash_at - sec(2));
  const double catchup_rate = aggregate_between(reconnect_at + sec(5),
                                                std::min(catchup_done_at, reconnect_at + sec(60)));
  std::printf(
      "\naggregate SHB delivery rate: steady %.0f ev/s; during mass catchup "
      "%.0f ev/s\n(paper result 3: ~10K ev/s with 40 separate catchup streams "
      "vs 20K via the constream)\n",
      normal_rate, catchup_rate);
  std::printf("PHB idle: steady %.0f%%, during catchup %.0f%% (paper: barely "
              "affected, thanks to nack consolidation)\n",
              100 * system.phb_cpu().idle_fraction(sec(10), crash_at),
              100 * system.phb_cpu().idle_fraction(reconnect_at,
                                                   std::min(catchup_done_at,
                                                            reconnect_at + sec(60))));
  std::printf("SHB idle: steady %.0f%%, during catchup %.0f%% (paper: drops "
              "significantly)\n",
              100 * system.shb_cpu(0).idle_fraction(sec(10), crash_at),
              100 * system.shb_cpu(0).idle_fraction(reconnect_at,
                                                    std::min(catchup_done_at,
                                                             reconnect_at + sec(60))));
  std::printf("PFS reads reaching lastTimestamp: %llu of %llu (paper: 87%%)\n",
              static_cast<unsigned long long>(system.shb().pfs().reads_reached_last()),
              static_cast<unsigned long long>(system.shb().pfs().reads_issued()));

  system.verify_exactly_once();
  std::printf("exactly-once contract verified for all 40 subscribers\n");
  return 0;
}
