// PFS microbenchmark (paper §5.1.2) — the Persistent Filtering Subsystem vs
// per-subscriber event logging at the SHB, on the paper's workload:
//   800 ev/s input, 100 subscribers, 200 ev/s per subscriber (every event
//   matches 25 subscribers), 418-byte events (250-byte payload), both logs
//   synced every 200 events per subscriber (= once per workload second),
//   retention of the last 1000 events per subscriber, 100s of workload
//   (80,000 events total), replayed as fast as the storage allows.
// Paper: the PFS logged 25x less data and finished >5x faster.
#include "sim/simulator.hpp"
#include "bench/bench_common.hpp"

#include <functional>
#include <memory>

#include "core/baseline_event_log.hpp"
#include "core/event_codec.hpp"
#include "core/pfs.hpp"

namespace gryphon::bench {
namespace {

constexpr int kEvents = 80'000;
constexpr int kSubscribers = 100;
constexpr int kMatchPerEvent = 25;      // 200 of 800 ev/s per subscriber
constexpr int kSyncEveryPerSub = 200;   // per-subscriber sync cadence
constexpr int kRetainEvents = 1000;     // last 5s per subscriber

matching::EventDataPtr make_event(int g) {
  // Padded so one logged event record is 418 bytes - the paper.s on-disk
  // event size (250-byte application payload + headers).
  return std::make_shared<matching::EventData>(
      std::map<std::string, matching::Value>{{"g", matching::Value(g)}}, "", 372);
}

std::vector<SubscriberId> matching_subs(int event_index) {
  // Events cycle over 4 groups of 25 subscribers.
  std::vector<SubscriberId> out;
  out.reserve(kMatchPerEvent);
  const int group = event_index % 4;
  for (int i = 0; i < kMatchPerEvent; ++i) {
    out.emplace_back(static_cast<std::uint32_t>(group * kMatchPerEvent + i + 1));
  }
  return out;
}

struct RunResult {
  double seconds;
  std::uint64_t payload_bytes;
  std::uint64_t disk_bytes;
  std::uint64_t barriers;
};

/// Event-driven replay at disk speed: append a batch of kSyncEveryPerSub
/// events, force a sync, continue when it completes ("replays the 100s
/// workload as fast as the log can absorb it").
template <typename AppendBatch, typename Sync>
double replay(sim::Simulator& sim, AppendBatch&& append_one, Sync&& sync) {
  auto next_event = std::make_shared<int>(0);
  auto step = std::make_shared<std::function<void()>>();
  *step = [&sim, next_event, step, append_one, sync] {
    if (*next_event >= kEvents) return;
    const int batch_end = std::min(kEvents, *next_event + kSyncEveryPerSub);
    for (; *next_event < batch_end; ++*next_event) append_one(*next_event);
    sync([step] { (*step)(); });
  };
  (*step)();
  sim.run_until_idle();
  return to_seconds(sim.now());
}

RunResult run_pfs() {
  sim::Simulator sim;
  sim::Network net(sim);
  core::BrokerConfig broker;
  auto disk_config = paper_config().shb_disk;
  core::NodeResources node(sim, net, "shb", broker, disk_config);
  core::CostModel costs;
  core::PersistentFilteringSubsystem pfs(node, costs);
  const PubendId p{1};
  pfs.open({p});

  const double seconds = replay(
      sim,
      [&](int i) {
        pfs.append(p, i + 1, matching_subs(i));
        // Retention: drop filtering records older than 1000 events.
        if (i >= kRetainEvents && i % kSyncEveryPerSub == 0) {
          pfs.chop_upto(p, i - kRetainEvents);
        }
      },
      [&](std::function<void()> done) { pfs.sync(std::move(done)); });
  return {seconds, pfs.payload_bytes_written(), node.disk.total_bytes_written(),
          node.disk.total_syncs()};
}

RunResult run_baseline() {
  sim::Simulator sim;
  sim::Network net(sim);
  core::BrokerConfig broker;
  auto disk_config = paper_config().shb_disk;
  core::NodeResources node(sim, net, "shb", broker, disk_config);
  core::PerSubscriberEventLog log(node.log_volume);
  for (int s = 1; s <= kSubscribers; ++s) {
    log.register_subscriber(SubscriberId{static_cast<std::uint32_t>(s)});
  }

  const double seconds = replay(
      sim,
      [&](int i) {
        log.log_event(i + 1, make_event(i % 4), matching_subs(i));
        if (i >= kRetainEvents && i % kSyncEveryPerSub == 0) {
          for (int s = 1; s <= kSubscribers; ++s) {
            log.ack(SubscriberId{static_cast<std::uint32_t>(s)}, i - kRetainEvents);
          }
        }
      },
      [&](std::function<void()> done) { log.sync(std::move(done)); });
  return {seconds, log.payload_bytes_written(), node.disk.total_bytes_written(),
          node.disk.total_syncs()};
}

}  // namespace
}  // namespace gryphon::bench

int main() {
  using namespace gryphon;
  using namespace gryphon::bench;

  print_header(
      "PFS microbenchmark (paper 5.1.2): 80,000 events, 100 subscribers,\n"
      "25 matches/event, sync every 200 events, replayed at disk speed.\n"
      "Paper: PFS = 11.088s, >5x faster than per-subscriber event logging,\n"
      "with 25x less data.");

  const auto pfs = run_pfs();
  const auto baseline = run_baseline();

  print_row({"variant", "time (s)", "log bytes", "disk bytes", "barriers"});
  print_row({"PFS", fmt(pfs.seconds, 2), std::to_string(pfs.payload_bytes),
             std::to_string(pfs.disk_bytes), std::to_string(pfs.barriers)});
  print_row({"per-sub event log", fmt(baseline.seconds, 2),
             std::to_string(baseline.payload_bytes), std::to_string(baseline.disk_bytes),
             std::to_string(baseline.barriers)});

  std::printf("\nPFS wrote %.1fx less log data (paper: 25x)\n",
              static_cast<double>(baseline.payload_bytes) /
                  static_cast<double>(pfs.payload_bytes));
  std::printf("PFS finished %.1fx faster (paper: >5x)\n",
              baseline.seconds / pfs.seconds);
  std::printf("per-event PFS record: %zu bytes (8 + 16 x 25 matches)\n",
              core::PersistentFilteringSubsystem::record_bytes(25));
  return 0;
}
