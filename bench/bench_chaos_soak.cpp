// Chaos soak — many seeded fault schedules back to back over a churning
// workload, with the always-on invariant monitor armed the whole time.
//
//   bench_chaos_soak [num_seeds] [first_seed] [horizon_s]
//
// Each seed plans a fresh randomized fault sequence (partitions, flaps,
// degradations, disk stalls, torn syncs, crashes, crash-during-recovery,
// double faults) over a 5-broker topology with 8 churning subscribers, runs
// it to quiescence, and verifies exactly-once + zero residual catchup
// streams. On a violation the decoded fault timeline and the seed are
// printed, and the process exits non-zero — rerunning with that first_seed
// replays the identical schedule.
#include "bench/bench_common.hpp"

#include <cstdlib>
#include <exception>

#include "harness/chaos.hpp"

int main(int argc, char** argv) {
  using namespace gryphon;
  using namespace gryphon::bench;

  const int num_seeds = argc > 1 ? std::atoi(argv[1]) : 10;
  const std::uint64_t first_seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 1;
  const double horizon_s = argc > 3 ? std::atof(argv[3]) : 10.0;

  print_header("Chaos soak: " + std::to_string(num_seeds) + " seeded schedules, " +
               fmt(horizon_s, 0) + "s fault horizon each");
  print_row({"seed", "faults", "published", "delivered", "catchup", "sim_s", "verdict"});

  int failures = 0;
  for (int i = 0; i < num_seeds; ++i) {
    const std::uint64_t seed = first_seed + static_cast<std::uint64_t>(i);

    harness::SystemConfig sc;
    sc.num_pubends = 2;
    sc.num_shbs = 2;
    sc.num_intermediates = 1;
    harness::System system(sc);
    harness::PaperWorkloadConfig wl;
    wl.input_rate_eps = 300;
    harness::start_paper_publishers(system, wl);
    auto subs = harness::add_group_subscribers(system, 0, 4, 4, 1);
    auto more = harness::add_group_subscribers(system, 1, 4, 4, 100);
    subs.insert(subs.end(), more.begin(), more.end());
    system.run_for(sec(3));

    // Subscriber churn rides along under the faults; stop disconnecting
    // once the last fault is repaired so quiescence is reachable.
    harness::ChurnDriver churn(system, subs, sec(6), sec(2));

    harness::ChaosConfig config;
    config.seed = seed;
    config.horizon = static_cast<SimDuration>(horizon_s * 1e6);
    harness::ChaosSchedule chaos(system, config);
    system.simulator().schedule_at(chaos.repaired_at(), [&churn] { churn.stop(); });

    try {
      chaos.run();
      print_row({std::to_string(seed), std::to_string(chaos.timeline().size()),
                 std::to_string(system.oracle().published_count()),
                 std::to_string(system.oracle().delivered_count()),
                 std::to_string(system.oracle().catchup_delivered_count()),
                 fmt(to_seconds(system.simulator().now()), 1), "ok"});
    } catch (const std::exception& e) {
      ++failures;
      print_row({std::to_string(seed), std::to_string(chaos.timeline().size()),
                 std::to_string(system.oracle().published_count()),
                 std::to_string(system.oracle().delivered_count()),
                 std::to_string(system.oracle().catchup_delivered_count()),
                 fmt(to_seconds(system.simulator().now()), 1), "VIOLATION"});
      std::printf("\n%s\n", e.what());
    }
  }

  std::printf("\n%d/%d schedules quiescent with exactly-once intact\n",
              num_seeds - failures, num_seeds);
  return failures == 0 ? 0 : 1;
}
