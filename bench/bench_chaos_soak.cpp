// Chaos soak — many seeded fault schedules back to back over a churning
// workload, with the always-on invariant monitor armed the whole time.
//
//   bench_chaos_soak [num_seeds] [first_seed] [horizon_s] [--inject-violation]
//                    [--wire=codec] [--frame-faults] [--wire-verify=always]
//                    [--trace-out=FILE]
//
// Each seed plans a fresh randomized fault sequence (partitions, flaps,
// degradations, disk stalls, torn syncs, crashes, crash-during-recovery,
// double faults) over a 5-broker topology with 8 churning subscribers, runs
// it to quiescence, and verifies exactly-once + zero residual catchup
// streams. --wire=codec runs every link through the byte codec transport;
// --frame-faults additionally arms seeded frame-corruption windows (byte
// flips / truncations the receiving transport must reject and survive);
// --wire-verify=always forces the canonical re-encode check on every decode
// instead of the sampled 1-in-64 default (the ASan soak leg uses this). On a violation the decoded fault timeline, the seed, and the
// flight-recorder trace dump are printed, and the process exits non-zero —
// rerunning with that first_seed replays the identical schedule.
//
// --trace-out=FILE exports the LAST seed's run as a Chrome trace-event JSON
// (milestone instants + per-tick spans, chaos fault windows on a dedicated
// "faults" track) loadable in Perfetto / chrome://tracing.
//
// --inject-violation deliberately feeds the oracle a fabricated
// exactly-once violation mid-run (a gap notification covering an
// already-delivered event) with the trace sample rate forced to 1. This is
// the flight recorder's negative test: the run MUST die with a merged trace
// dump whose milestone checklist names the offending (pubend, tick).
#include "bench/bench_common.hpp"

#include <algorithm>
#include <cstdlib>
#include <exception>

#include "harness/chaos.hpp"

int main(int argc, char** argv) {
  using namespace gryphon;
  using namespace gryphon::bench;

  bool inject_violation = false;
  bool codec_wire = false;
  bool frame_faults = false;
  bool verify_always = false;
  std::string trace_out;
  std::vector<std::string> pos;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--inject-violation") inject_violation = true;
    else if (arg == "--wire=codec") codec_wire = true;
    else if (arg == "--wire=struct") codec_wire = false;
    else if (arg == "--frame-faults") frame_faults = true;
    else if (arg == "--wire-verify=always") verify_always = true;
    else if (arg.rfind("--trace-out=", 0) == 0) trace_out = arg.substr(12);
    else pos.push_back(arg);
  }
  const int num_seeds = !pos.empty() ? std::atoi(pos[0].c_str()) : 10;
  const std::uint64_t first_seed =
      pos.size() > 1 ? std::strtoull(pos[1].c_str(), nullptr, 10) : 1;
  const double horizon_s = pos.size() > 2 ? std::atof(pos[2].c_str()) : 10.0;

  print_header("Chaos soak: " + std::to_string(num_seeds) + " seeded schedules, " +
               fmt(horizon_s, 0) + "s fault horizon each, wire=" +
               (codec_wire ? "codec" : "struct") +
               (frame_faults ? " + frame faults" : ""));
  print_row({"seed", "faults", "published", "delivered", "catchup", "rejects",
             "sim_s", "verdict"});

  int failures = 0;
  for (int i = 0; i < num_seeds; ++i) {
    const std::uint64_t seed = first_seed + static_cast<std::uint64_t>(i);

    harness::SystemConfig sc;
    sc.num_pubends = 2;
    sc.num_shbs = 2;
    sc.num_intermediates = 1;
    if (codec_wire) sc.wire = harness::WireMode::kCodec;
    if (verify_always) sc.wire_verify_every = 1;
    // Export the final seed only: one trace file, bounded memory.
    const bool export_this_seed = !trace_out.empty() && i == num_seeds - 1;
    if (export_this_seed) sc.trace_export = true;
    if (inject_violation) {
      // Full-resolution tracing so the injected tick is guaranteed to be in
      // the sample, with a deeper ring so its milestones are still there.
      sc.trace_sample_every = 1;
      sc.trace_ring_capacity = 1 << 16;
    }
    harness::System system(sc);
    harness::PaperWorkloadConfig wl;
    wl.input_rate_eps = 300;
    harness::start_paper_publishers(system, wl);
    auto subs = harness::add_group_subscribers(system, 0, 4, 4, 1);
    auto more = harness::add_group_subscribers(system, 1, 4, 4, 100);
    subs.insert(subs.end(), more.begin(), more.end());
    system.run_for(sec(3));

    // Subscriber churn rides along under the faults; stop disconnecting
    // once the last fault is repaired so quiescence is reachable.
    harness::ChurnDriver churn(system, subs, sec(6), sec(2));

    harness::ChaosConfig config;
    config.seed = seed;
    config.horizon = static_cast<SimDuration>(horizon_s * 1e6);
    if (frame_faults) config.weights.frame_corrupt = 3;
    harness::ChaosSchedule chaos(system, config);
    system.simulator().schedule_at(chaos.repaired_at(), [&churn] { churn.stop(); });

    if (inject_violation) {
      // Fabricate an exactly-once violation once the faults are repaired:
      // a gap notification covering ticks the subscriber already consumed.
      // The oracle records the offending (pubend, tick) and throws; the
      // chaos dump must then include a focused flight-recorder checklist.
      core::DurableSubscriber* victim = subs.front();
      system.simulator().schedule_at(chaos.repaired_at(), [&system, victim] {
        const PubendId p = system.pubends()[0];
        const Tick ct = victim->checkpoint().of(p);
        const TickRange range{std::max<Tick>(1, ct - 50), std::max<Tick>(1, ct)};
        core::SubscriberObserver& observer = system.oracle();
        observer.on_gap(victim->id(), p, range, system.simulator().now());
      });
    }

    try {
      chaos.run();
      if (export_this_seed) {
        if (!system.write_trace_json(trace_out)) {
          std::printf("ERROR: cannot write trace to %s\n", trace_out.c_str());
          ++failures;
        } else {
          const auto* exporter = system.trace_exporter();
          std::printf("trace: %zu records, %zu fault windows -> %s\n",
                      exporter->record_count(), exporter->fault_count(),
                      trace_out.c_str());
        }
      }
      print_row({std::to_string(seed), std::to_string(chaos.timeline().size()),
                 std::to_string(system.oracle().published_count()),
                 std::to_string(system.oracle().delivered_count()),
                 std::to_string(system.oracle().catchup_delivered_count()),
                 std::to_string(system.network().decode_rejects()),
                 fmt(to_seconds(system.simulator().now()), 1), "ok"});
    } catch (const std::exception& e) {
      ++failures;
      print_row({std::to_string(seed), std::to_string(chaos.timeline().size()),
                 std::to_string(system.oracle().published_count()),
                 std::to_string(system.oracle().delivered_count()),
                 std::to_string(system.oracle().catchup_delivered_count()),
                 std::to_string(system.network().decode_rejects()),
                 fmt(to_seconds(system.simulator().now()), 1), "VIOLATION"});
      std::printf("\n%s\n", e.what());
    }
  }

  std::printf("\n%d/%d schedules quiescent with exactly-once intact\n",
              num_seeds - failures, num_seeds);
  return failures == 0 ? 0 : 1;
}
