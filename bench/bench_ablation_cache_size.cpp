// Ablation A3 — the paper's stated future work: the effect of event cache
// size on reconnecting subscribers. Sweeps the SHB istream cache span and
// measures where catchup traffic is served from: the local istream cache vs
// nacks that travel to the PHB.
#include "bench/bench_common.hpp"

namespace gryphon::bench {
namespace {

struct Result {
  std::uint64_t served_from_istream;
  std::uint64_t nacks_to_phb;
  std::uint64_t phb_nack_events;
  double catchup_seconds;
};

Result run(Tick cache_span_ticks) {
  auto config = paper_config();
  config.num_shbs = 1;
  config.broker.costs.cache_span_ticks = cache_span_ticks;
  harness::System system(config);
  auto wl = paper_workload();
  wl.input_rate_eps = 400;
  harness::start_paper_publishers(system, wl);
  auto subs = harness::add_group_subscribers(system, 0, 8, 4, 1);

  double catchup_s = 0;
  system.on_shb_ready(0, [&](core::SubscriberHostingBroker& shb) {
    shb.on_catchup_complete = [&](SubscriberId, SimTime from, SimTime to) {
      catchup_s = to_seconds(to - from);
    };
  });

  system.run_for(sec(5));
  subs[0]->disconnect();
  system.run_for(sec(20));
  const auto nacks_before = system.phb().stats().nacks_received;
  const auto nack_events_before = system.phb().stats().nack_response_events;
  const auto istream_before = system.shb().stats().catchup_events_served_from_istream;
  subs[0]->connect();
  system.run_for(sec(60));
  system.verify_exactly_once();

  return {system.shb().stats().catchup_events_served_from_istream - istream_before,
          system.phb().stats().nacks_received - nacks_before,
          system.phb().stats().nack_response_events - nack_events_before, catchup_s};
}

}  // namespace
}  // namespace gryphon::bench

int main() {
  using namespace gryphon;
  using namespace gryphon::bench;

  print_header(
      "Ablation: SHB event-cache span vs catchup traffic reaching the PHB\n"
      "(one subscriber reconnects after missing 20s @ 100 matching ev/s;\n"
      "the paper lists cache-size effects as future work)");

  print_row({"cache span (s)", "served from cache", "nacks to PHB",
             "events from PHB", "catchup (s)"},
            20);
  for (const Tick span_s : {Tick{30}, Tick{20}, Tick{10}, Tick{5}, Tick{1}}) {
    const auto r = run(span_s * 1000);
    print_row({std::to_string(span_s), std::to_string(r.served_from_istream),
               std::to_string(r.nacks_to_phb), std::to_string(r.phb_nack_events),
               fmt(r.catchup_seconds, 1)},
              20);
  }
  std::printf(
      "\nshape: with a cache covering the disconnection, recovery is local to\n"
      "the SHB; as the span shrinks, recovery load shifts to the PHB —\n"
      "correctness is unaffected either way (caches are an optimization).\n");
  return 0;
}
