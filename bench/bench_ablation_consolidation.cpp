// Ablation E10 — the value of the consolidated stream (paper §4 / §5
// result 3). Compares the SHB's sustainable aggregate delivery rate when
// all subscribers ride the constream vs when every subscriber runs its own
// catchup stream (forced by a mass reconnection after a long outage).
// Paper: ~20K ev/s consolidated vs ~10K with 40 separate catchup streams.
#include "bench/bench_common.hpp"

namespace gryphon::bench {
namespace {

double steady_constream_rate() {
  auto config = paper_config();
  config.num_shbs = 1;
  harness::System system(config);
  harness::start_paper_publishers(system, paper_workload());
  harness::add_group_subscribers(system, 0, 100, 4, 1, /*machines=*/5);
  system.run_for(sec(10));
  const auto before = system.oracle().delivered_count();
  system.run_for(sec(30));
  system.verify_exactly_once();
  return static_cast<double>(system.oracle().delivered_count() - before) / 30.0;
}

double mass_catchup_rate(int subscribers) {
  auto config = paper_config();
  config.num_shbs = 1;
  // Unlimited client-side flow control so the separate-stream CPU cost is
  // the binding constraint, as in the paper's capacity statement.
  config.broker.costs.catchup_rate_limit_eps = 1e9;
  harness::System system(config);
  harness::start_paper_publishers(system, paper_workload());
  auto subs = harness::add_group_subscribers(system, 0, subscribers, 4, 1, 5);
  system.run_for(sec(5));

  for (auto* sub : subs) sub->disconnect();
  system.run_for(sec(30));  // everyone misses 30s of events
  const auto before = system.oracle().delivered_count();
  for (auto* sub : subs) sub->connect();
  const SimDuration window = sec(20);  // all streams concurrently catching up
  system.run_for(window);
  return static_cast<double>(system.oracle().delivered_count() - before) /
         to_seconds(window);
}

}  // namespace
}  // namespace gryphon::bench

int main() {
  using namespace gryphon;
  using namespace gryphon::bench;

  print_header(
      "Ablation: stream consolidation (paper 5, result 3)\n"
      "aggregate SHB delivery rate, consolidated constream vs per-subscriber\n"
      "catchup streams; paper: ~20K vs ~10K ev/s");

  const double consolidated = steady_constream_rate();
  print_row({"mode", "subs", "aggregate ev/s"});
  print_row({"constream (consolidated)", "100", fmt(consolidated, 0)});
  for (const int subs : {40, 100}) {
    const double rate = mass_catchup_rate(subs);
    print_row({"separate catchup streams", std::to_string(subs), fmt(rate, 0)});
  }
  std::printf(
      "\nshape: per-subscriber catchup streams cost roughly twice the CPU per\n"
      "delivered event, halving SHB capacity — the reason the SHB\n"
      "consolidates all non-catchup subscribers onto one stream.\n");
  return 0;
}
