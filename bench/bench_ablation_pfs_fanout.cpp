// Ablation A1 — PFS advantage as a function of matching fan-out. The PFS
// record costs 8 + 16n bytes for n matching subscribers, while per-
// subscriber event logging costs n full event copies; this sweep shows the
// byte and time advantage across fan-outs (the paper reports the n = 25
// point: 25x data, >5x time).
#include "sim/simulator.hpp"
#include "bench/bench_common.hpp"

#include "core/baseline_event_log.hpp"
#include "core/pfs.hpp"

namespace gryphon::bench {
namespace {

constexpr int kEvents = 20'000;

struct RunResult {
  double seconds;
  std::uint64_t bytes;
};

std::vector<SubscriberId> first_n(int n) {
  std::vector<SubscriberId> out;
  for (int i = 1; i <= n; ++i) out.emplace_back(static_cast<std::uint32_t>(i));
  return out;
}

RunResult run_pfs(int fanout) {
  sim::Simulator sim;
  sim::Network net(sim);
  core::BrokerConfig broker;
  core::NodeResources node(sim, net, "shb", broker, paper_config().shb_disk);
  core::CostModel costs;
  core::PersistentFilteringSubsystem pfs(node, costs);
  pfs.open({PubendId{1}});
  const auto matching = first_n(fanout);
  for (int i = 0; i < kEvents; ++i) {
    pfs.append(PubendId{1}, i + 1, matching);
    if (i % 200 == 199) pfs.sync([] {});
  }
  pfs.sync([] {});
  sim.run_until_idle();
  return {to_seconds(sim.now()), pfs.payload_bytes_written()};
}

RunResult run_baseline(int fanout) {
  sim::Simulator sim;
  sim::Network net(sim);
  core::BrokerConfig broker;
  core::NodeResources node(sim, net, "shb", broker, paper_config().shb_disk);
  core::PerSubscriberEventLog log(node.log_volume);
  for (auto s : first_n(fanout)) log.register_subscriber(s);
  auto event = std::make_shared<matching::EventData>(
      std::map<std::string, matching::Value>{{"g", matching::Value(0)}}, "", 372);
  const auto matching = first_n(fanout);
  for (int i = 0; i < kEvents; ++i) {
    log.log_event(i + 1, event, matching);
    if (i % 200 == 199) log.sync([] {});
  }
  log.sync([] {});
  sim.run_until_idle();
  return {to_seconds(sim.now()), log.payload_bytes_written()};
}

}  // namespace
}  // namespace gryphon::bench

int main() {
  using namespace gryphon;
  using namespace gryphon::bench;

  print_header(
      "Ablation: PFS vs per-subscriber logging across matching fan-out n\n"
      "(20,000 events, sync every 200; paper reports the n=25 point)");

  print_row({"fanout n", "PFS bytes", "eventlog bytes", "bytes ratio", "time ratio"},
            16);
  for (const int n : {1, 5, 25, 50, 100}) {
    const auto pfs = run_pfs(n);
    const auto base = run_baseline(n);
    print_row({std::to_string(n), std::to_string(pfs.bytes),
               std::to_string(base.bytes),
               fmt(static_cast<double>(base.bytes) / static_cast<double>(pfs.bytes), 1),
               fmt(base.seconds / pfs.seconds, 1)},
              16);
  }
  std::printf(
      "\nshape: the byte advantage approaches eventbytes/16 per subscriber as\n"
      "n grows (the 8-byte timestamp amortizes); even n=1 wins because the\n"
      "PFS logs positions, not payloads.\n");
  return 0;
}
