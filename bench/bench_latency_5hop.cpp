// End-to-end latency on a 5-hop broker network (paper §5 result 1):
// publisher -> PHB -> 3 intermediate brokers -> SHB -> subscriber.
// Paper: 50ms end to end, of which 44ms is event logging at the PHB (the
// event is announced only after it is durable — only-once logging means the
// system cannot take responsibility for it earlier).
#include "bench/bench_common.hpp"

int main() {
  using namespace gryphon;
  using namespace gryphon::bench;

  auto config = paper_config();
  config.num_pubends = 1;
  config.num_intermediates = 3;  // PHB + 3 + SHB = 5 brokers
  config.num_shbs = 1;
  harness::System system(config);

  // Light load: latency, not throughput.
  harness::PaperWorkloadConfig wl;
  wl.input_rate_eps = 20;
  wl.groups = 1;
  harness::start_paper_publishers(system, wl);

  core::DurableSubscriber::Options options;
  options.id = SubscriberId{1};
  options.predicate = "true";
  system.add_subscriber(options).connect();

  system.run_for(sec(60));
  system.verify_exactly_once();

  print_header(
      "End-to-end latency, 5-hop broker network (paper 5, result 1)\n"
      "paper: 50ms end-to-end, 44ms from event logging at the PHB");
  const auto& e2e = system.oracle().e2e_latency();
  const auto& logging = system.oracle().publish_log_latency();
  print_row({"metric", "mean ms", "min ms", "max ms", "samples"});
  print_row({"end-to-end", fmt(e2e.mean(), 1), fmt(e2e.min(), 1), fmt(e2e.max(), 1),
             std::to_string(e2e.count())});
  print_row({"publish->durable", fmt(logging.mean(), 1), fmt(logging.min(), 1),
             fmt(logging.max(), 1), std::to_string(logging.count())});
  std::printf("\nlogging share of end-to-end latency: %.0f%% (paper: 44/50 = 88%%)\n",
              100.0 * logging.mean() / e2e.mean());
  return 0;
}
