// Ablation A1 — precise vs imprecise PFS (paper §4.2): "An imprecise
// implementation may represent some S ticks as Q, which does not affect
// correctness... It can be used to trade off PFS write performance with
// respect to the cost of retrieving and refiltering unnecessary events."
// Sweeps the coalescing batch factor and reports both sides of the trade:
// filtering-log bytes written vs positions inspected and events refiltered
// during a catchup.
#include "bench/bench_common.hpp"

namespace gryphon::bench {
namespace {

struct Result {
  std::uint64_t pfs_records;
  std::uint64_t pfs_bytes;
  std::uint64_t catchup_served;  // positions served/inspected via the cache
  double catchup_seconds;
  std::uint64_t delivered;
};

Result run(std::size_t batch) {
  auto config = paper_config();
  config.num_shbs = 1;
  config.broker.costs.pfs_imprecise_batch = batch;
  harness::System system(config);
  auto wl = paper_workload();
  wl.input_rate_eps = 400;
  harness::start_paper_publishers(system, wl);
  auto subs = harness::add_group_subscribers(system, 0, 8, 4, 1);

  double catchup_s = 0;
  system.on_shb_ready(0, [&](core::SubscriberHostingBroker& shb) {
    shb.on_catchup_complete = [&](SubscriberId, SimTime from, SimTime to) {
      catchup_s = to_seconds(to - from);
    };
  });

  system.run_for(sec(5));
  subs[0]->disconnect();
  system.run_for(sec(10));
  const auto served_before = system.shb().stats().catchup_events_served_from_istream;
  subs[0]->connect();
  system.run_for(sec(30));
  system.verify_exactly_once();

  return {system.shb().stats().pfs_records, system.shb().pfs().payload_bytes_written(),
          system.shb().stats().catchup_events_served_from_istream - served_before,
          catchup_s, system.oracle().delivered_count()};
}

}  // namespace
}  // namespace gryphon::bench

int main() {
  using namespace gryphon;
  using namespace gryphon::bench;

  print_header(
      "Ablation: PFS precision (paper 4.2) — write volume vs refiltering\n"
      "(batch 1 = the paper's precise implementation; one subscriber\n"
      "reconnects after missing 10s @ 100 matching ev/s)");

  print_row({"batch", "PFS log bytes", "positions inspected", "catchup (s)",
             "exactly-once"},
            22);
  for (const std::size_t batch : {std::size_t{1}, std::size_t{2}, std::size_t{4},
                                  std::size_t{8}, std::size_t{16}}) {
    const auto r = run(batch);
    print_row({std::to_string(batch), std::to_string(r.pfs_bytes),
               std::to_string(r.catchup_served), fmt(r.catchup_seconds, 1), "yes"},
              22);
  }
  std::printf(
      "\nshape: bytes written fall roughly with the batch factor while the\n"
      "positions a catching-up subscriber must inspect (and refilter) grow;\n"
      "the delivery contract verifies at every setting.\n");
  return 0;
}
