// Figure 7 — latestDelivered(p) and released(p) across an SHB crash and
// recovery (paper §5.3). Protocol of the experiment:
//   * 1 PHB + 1 SHB, 40 durable subscribers on 5 client machines,
//   * the SHB is failed for 25 seconds,
//   * subscriber reconnection is DELAYED until the constream has re-nacked
//     everything it missed (separating constream recovery from catchup),
//   * then all 40 subscribers reconnect at once.
// Paper shapes: latestDelivered flat while down, then a ~5x slope during
// constream nacking, then normal; released flat until the subscribers
// reconnect and ack, then slightly above normal until catchup ends (their
// catchup takes ~116s because all 40 streams are concurrent).
#include "bench/bench_common.hpp"

#include "harness/sampler.hpp"

int main() {
  using namespace gryphon;
  using namespace gryphon::bench;

  auto config = paper_config();
  config.num_shbs = 1;
  harness::System system(config);
  harness::start_paper_publishers(system, paper_workload());
  auto subs = harness::add_group_subscribers(system, 0, 40, 4, 1, /*machines=*/5);

  Summary catchup_durations;
  system.on_shb_ready(0, [&](core::SubscriberHostingBroker& shb) {
    shb.on_catchup_complete = [&](SubscriberId, SimTime from, SimTime to) {
      catchup_durations.add(to_seconds(to - from));
    };
  });

  const PubendId p1 = system.pubends()[0];
  Tick last_rel = 0;
  harness::Sampler sampler(system.simulator(), msec(200));
  // The registry gauge lives in NodeResources, which survives the crash, so
  // the plotted series naturally holds its last value while the broker is
  // down — no alive-check caching needed.
  auto& ld_series = sampler.add_gauge(
      "latestDelivered_1",
      system.shb_node().metrics.gauge("shb.p" + std::to_string(p1.value()) +
                                      ".latest_delivered"));
  auto& rel_series = sampler.add("released_1", [&] {
    if (system.shb_alive(0)) last_rel = system.shb().released(p1);
    return static_cast<double>(last_rel);
  });

  // Timeline: warmup 30s | crash 25s | recovery (held) | reconnect | catchup.
  system.run_for(sec(30));
  for (auto* sub : subs) sub->set_reconnect_hold(true);
  const SimTime crash_at = system.simulator().now();
  system.crash_shb(0);
  system.run_for(sec(25));
  system.restart_shb(0);

  // Hold reconnection until the constream has recovered to near-realtime.
  SimTime recovered_at = 0;
  while (recovered_at == 0) {
    system.run_for(msec(500));
    bool ready = true;
    for (PubendId p : system.pubends()) {
      if (system.shb().latest_delivered(p) <
          tick_of_simtime(system.simulator().now()) - 1500) {
        ready = false;
        break;
      }
    }
    if (ready) recovered_at = system.simulator().now();
  }
  for (auto* sub : subs) sub->set_reconnect_hold(false);
  const SimTime reconnect_at = system.simulator().now();

  // Let every subscriber finish catchup, then settle.
  system.run_for(sec(220));

  print_header(
      "Figure 7: latestDelivered(p) and released(p) across SHB crash/recovery\n"
      "(ticks; SHB down 25s; subscribers held until constream recovery)");
  std::printf("crash at t=%.1fs, recovered (constream) at t=%.1fs, reconnect at t=%.1fs\n",
              to_seconds(crash_at), to_seconds(recovered_at), to_seconds(reconnect_at));

  // Print at 2s granularity to keep the table readable.
  auto decimate = [](const std::vector<TimeSeries::Point>& pts) {
    std::vector<TimeSeries::Point> out;
    SimTime next = 0;
    for (const auto& p : pts) {
      if (p.time >= next) {
        out.push_back(p);
        next = p.time + sec(2);
      }
    }
    return out;
  };
  print_row({"t(s)", "latestDelivered", "released"}, 20);
  const auto ld_pts = decimate(ld_series.points());
  const auto rel_pts = decimate(rel_series.points());
  for (std::size_t i = 0; i < ld_pts.size() && i < rel_pts.size(); ++i) {
    print_row({fmt(to_seconds(ld_pts[i].time), 0), fmt(ld_pts[i].value, 0),
               fmt(rel_pts[i].value, 0)},
              20);
  }

  // The shape numbers the paper calls out.
  const auto ld_rates = ld_series.rate_of_change(sec(1));
  double recovery_slope = 0;
  double normal_slope = 0;
  int recovery_n = 0;
  int normal_n = 0;
  for (const auto& r : ld_rates) {
    if (r.time >= crash_at + sec(25) && r.time < recovered_at) {
      recovery_slope += r.value;
      ++recovery_n;
    } else if (r.time < crash_at - sec(5) && r.time > sec(10)) {
      normal_slope += r.value;
      ++normal_n;
    }
  }
  if (recovery_n > 0) recovery_slope /= recovery_n;
  if (normal_n > 0) normal_slope /= normal_n;
  std::printf(
      "\nlatestDelivered slope: normal %.0f tick-ms/s, during constream "
      "recovery %.0f (%.1fx; paper ~5x)\n",
      normal_slope, recovery_slope, recovery_slope / std::max(1.0, normal_slope));
  std::printf("catchup durations: mean %.1fs over %llu subscribers (paper ~116s "
              "with all 40 concurrent)\n",
              catchup_durations.mean(),
              static_cast<unsigned long long>(catchup_durations.count()));

  sampler.stop();  // measurement over: cancel the periodic polls
  system.run_for(sec(10));
  system.verify_exactly_once();
  std::printf("exactly-once contract verified for all 40 subscribers\n");
  return 0;
}
